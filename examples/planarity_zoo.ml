(* A zoo of networks through the distributed planarity pipeline.

   For every animal in the zoo, run the distributed algorithm and the
   centralized DMP reference, and print verdicts, rounds and basic stats.
   Demonstrates that the distributed verdict always matches the
   centralized one, and that non-planar networks are rejected with an
   early certificate (some partial embedding fails).

     dune exec examples/planarity_zoo.exe *)

let () =
  let zoo =
    [
      ("path-50", Gen.path 50);
      ("cycle-40", Gen.cycle 40);
      ("binary-tree-63", Gen.binary_tree 63);
      ("star-30", Gen.star 30);
      ("wheel-20", Gen.wheel 20);
      ("grid-8x8", Gen.grid 8 8);
      ("triangular-grid-6x6", Gen.triangular_grid 6 6);
      ("maximal-planar-100", Gen.random_maximal_planar ~seed:11 100);
      ("outerplanar-60", Gen.random_outerplanar ~seed:5 ~n:60 ~chord_prob:0.5);
      ("K4-subdivided-10", Gen.k4_subdivision 10);
      ("K4", Gen.complete 4);
      ("K5", Gen.k5 ());
      ("K6", Gen.complete 6);
      ("K3,3", Gen.k33 ());
      ("K3,3-subdivided-4", Gen.subdivide (Gen.k33 ()) 4);
      ("Petersen", Gen.petersen ());
      ("toroidal-grid-4x5", Gen.toroidal_grid 4 5);
      ("dense-random", Gen.random_connected_graph ~seed:3 ~n:20 ~m:80);
    ]
  in
  Printf.printf "%-22s %6s %6s %12s %8s %10s %6s\n" "network" "n" "m"
    "distributed" "rounds" "central" "agree";
  List.iter
    (fun (name, g) ->
      let o = Embedder.run g in
      let dist_planar = o.Embedder.rotation <> None in
      let central_planar = Planarity.is_planar g in
      (match o.Embedder.rotation with
      | Some r -> assert (Rotation.is_planar_embedding r)
      | None -> ());
      Printf.printf "%-22s %6d %6d %12s %8d %10s %6s\n" name (Gr.n g) (Gr.m g)
        (if dist_planar then "planar" else "NOT planar")
        o.Embedder.report.Embedder.rounds
        (if central_planar then "planar" else "NOT planar")
        (if dist_planar = central_planar then "yes" else "NO!");
      assert (dist_planar = central_planar))
    zoo;
  Printf.printf
    "\nAll distributed verdicts match the centralized reference; every\n\
     accepted embedding passed the independent Euler-formula check.\n"
