(* Figures 1-4 and 6 of the paper, as runnable constructions.

   The paper's Section 3 machinery, on a concrete part:
   - Figure 1: a part of a planar network with its half-embedded edges on
     one face (the apex construction realizes the contraction of G \ P);
   - Figure 2/4(a,b): the biconnected-component decomposition and its
     block-cut tree;
   - Figure 4(c,d): the two degrees of freedom — flipping a component,
     permuting components around a cut vertex — as PQ-tree operations;
   - Figure 6: a safe and an unsafe pairwise merge.

     dune exec examples/interface_demo.exe *)

let pp_leaf ppf (u, v) = Format.fprintf ppf "%d~%d" u v

let () =
  (* The network: two triangles sharing a cut vertex (a "bowtie" part),
     surrounded by outside nodes it half-connects to. Part vertices are
     0..4 with cut vertex 2; outside vertices 5..9. *)
  let part = [ 0; 1; 2; 3; 4 ] in
  let half = [ (0, 5); (1, 6); (3, 7); (4, 8) ] in
  let g =
    Gr.of_edges ~n:10
      ([
         (0, 1); (1, 2); (0, 2);  (* left triangle *)
         (2, 3); (3, 4); (2, 4);  (* right triangle *)
         (* the outside is connected (safety property, Def 3.1) *)
         (5, 9); (6, 9); (7, 9); (8, 9);
       ]
      @ half)
  in
  Format.printf "network: n=%d m=%d; part P = {0,1,2,3,4} (a bowtie),@ %d half-embedded edges@.@."
    (Gr.n g) (Gr.m g) (List.length half);

  (* Figure 4(a,b): biconnected decomposition and block-cut tree. *)
  let (sub, old_of_new, new_of_old) = Gr.induced g part in
  ignore new_of_old;
  let dec = Bicon.decompose sub in
  Format.printf "biconnected components of P (Figure 4a):@.";
  for c = 0 to dec.Bicon.n_components - 1 do
    Format.printf "  component %d: edges %s@." c
      (String.concat " "
         (List.map
            (fun (a, b) ->
              Printf.sprintf "{%d,%d}" old_of_new.(a) old_of_new.(b))
            (Bicon.component_edges dec c)))
  done;
  let cuts =
    List.filteri (fun v _ -> dec.Bicon.is_cut.(v)) (Array.to_list old_of_new)
  in
  ignore cuts;
  Array.iteri
    (fun v cut ->
      if cut then Format.printf "  cut vertex: %d@." old_of_new.(v))
    dec.Bicon.is_cut;
  let bct = Bicon.block_cut_tree sub dec in
  Format.printf "  block-cut tree (Figure 4b): %d nodes, %d edges@.@."
    (Gr.n bct.Bicon.tree) (Gr.m bct.Bicon.tree);

  (* Figure 1: the partial embedding with all half-embedded edges on one
     face, via the apex construction. *)
  (match Constrained.embed g ~part ~half with
  | None -> failwith "safe part of a planar graph must embed"
  | Some emb ->
      Format.printf
        "partial embedding of P (Figure 1): cyclic order of half-embedded@ \
         edges around the shared face:@.  %s@.@."
        (String.concat " "
           (List.map (fun (u, v) -> Printf.sprintf "%d~%d" u v)
              emb.Constrained.outer)));

  (* Observation 3.2: the interface as a PQ-tree. *)
  match Iface.of_part g ~part ~half with
  | None -> failwith "interface construction must succeed"
  | Some t ->
      Format.printf "interface PQ-tree (Observation 3.2; [..] = Q rigid up to \
                     flip, (..) = P free):@.  %a@.@."
        (Pqtree.pp pp_leaf) t;
      let show what t' =
        Format.printf "%-42s %s@." what
          (String.concat " "
             (List.map (fun (u, v) -> Printf.sprintf "%d~%d" u v)
                (Pqtree.leaves t')))
      in
      show "original leaf order:" t;
      (* Figure 4(c): flip a biconnected component (the first Q child). *)
      (match t with
      | Pqtree.P children ->
          List.iteri
            (fun i c ->
              match c with
              | Pqtree.Q _ ->
                  show
                    (Printf.sprintf "after flipping component #%d (Fig 4c):" i)
                    (Pqtree.flip t ~path:[ i ])
              | Pqtree.Leaf _ | Pqtree.P _ -> ())
            children;
          (* Figure 4(d): permute the components around the cut vertex. *)
          let k = List.length children in
          if k >= 2 then begin
            let perm = Array.init k (fun i -> (i + 1) mod k) in
            show "after permuting around the cut vertex (Fig 4d):"
              (Pqtree.permute t ~path:[] ~perm)
          end
      | Pqtree.Q _ | Pqtree.Leaf _ -> ());
      Format.printf "@.";
      (* Count the whole space of realizable orders. *)
      Format.printf "this interface realizes %d distinct edge orders@.@."
        (Pqtree.count_orders t);

      (* Figure 6: a safe and an unsafe merge, on a cycle partition. *)
      let c = Gen.cycle 8 in
      let parts = [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ] ] in
      Format.printf "Figure 6 (safety of merges) on an 8-cycle partitioned@ \
                     into four arcs:@.";
      Format.printf "  merge arcs {0,1} and {2,3} (adjacent): safe? %b@."
        (Partition.merge_is_safe c parts 0 1);
      (* Merging the two *opposite* arcs {0,1} and {4,5} leaves {2,3} and
         {6,7} separated once the merged part is ever non-trivial; on the
         pure cycle the union is disconnected, which the safety check also
         rejects. *)
      Format.printf "  merge arcs {0,1} and {4,5} (opposite): safe? %b@."
        (Partition.merge_is_safe c parts 0 2)
