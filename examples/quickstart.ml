(* Quickstart: embed a small planar network distributedly.

   Build a graph, run the Theorem 1.1 algorithm, read each node's
   clockwise edge order, and verify the result independently with the
   Euler-formula face-tracing checker.

     dune exec examples/quickstart.exe *)

let () =
  (* A 12-node planar network: a wheel (hub-and-ring) with two extra
     spokes of sensors hanging off it. *)
  let g =
    Gr.of_edges ~n:12
      [
        (* ring *)
        (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0);
        (* hub *)
        (6, 0); (6, 1); (6, 2); (6, 3); (6, 4); (6, 5);
        (* two chains hanging off ring nodes *)
        (1, 7); (7, 8); (4, 9); (9, 10); (10, 11);
      ]
  in
  Printf.printf "network: n=%d m=%d diameter=%d\n\n" (Gr.n g) (Gr.m g)
    (Traverse.diameter g);

  (* Run the distributed algorithm. Every node starts knowing only its own
     id and its neighbors' ids; the run simulates the CONGEST rounds. *)
  let outcome = Embedder.run ~checks:true g in
  let report = outcome.Embedder.report in
  Printf.printf "distributed run: %d rounds at %d bits/edge/round\n"
    report.Embedder.rounds report.Embedder.bandwidth;
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-28s %4d rounds\n" phase rounds)
    report.Embedder.phases;

  match outcome.Embedder.rotation with
  | None -> failwith "a planar input was rejected — this is a bug"
  | Some rotation ->
      (* The output: each node's clockwise cyclic order of neighbors in
         one fixed planar drawing. *)
      Printf.printf "\ncombinatorial planar embedding (clockwise orders):\n";
      for v = 0 to Gr.n g - 1 do
        Printf.printf "  node %2d : (%s)\n" v
          (String.concat " "
             (List.map string_of_int
                (Array.to_list (Rotation.rotation rotation v))))
      done;
      (* Independent verification: trace the faces and check Euler's
         formula n - m + f = 2. *)
      let f = Rotation.face_count rotation in
      Printf.printf "\nverification: %d faces, n - m + f = %d (%s)\n" f
        (Gr.n g - Gr.m g + f)
        (if Rotation.is_planar_embedding rotation then "planar, Euler check passed"
         else "EULER CHECK FAILED");
      (* Compare against the trivial O(n) baseline. *)
      let b = Baseline.run g in
      Printf.printf
        "\nbaseline (gather everything at the leader): %d rounds\n"
        b.Baseline.report.Baseline.rounds;
      Printf.printf
        "(on a %d-node toy network the baseline wins; run\n\
        \ `dune exec bench/main.exe -- e2` to see the crossover at scale)\n"
        (Gr.n g);

      (* The engine underneath, directly: write a protocol as an
         init/round/msg_bits triple and hand it to Network.exec. The
         result carries the final states, the round count and a report;
         asking for a bounds verdict via the Observe sink makes the run
         check itself against the paper's inequalities. *)
      let flood_leader =
        {
          Network.init =
            (fun g v ->
              (v, Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, v) :: acc)));
          round =
            (fun g v best inbox ->
              let best' =
                List.fold_left (fun acc (_, x) -> max acc x) best inbox
              in
              if best' = best then (best, [])
              else
                (best',
                 Gr.fold_neighbors g v ~init:[] ~f:(fun acc w ->
                     (w, best') :: acc)));
          msg_bits = (fun _ -> 4);
        }
      in
      let r =
        Network.exec
          ~config:
            (Network.Config.default
            |> Network.Config.with_observe
                 (Observe.make
                    ~bounds:(Observe.bounds_spec ~d:(Traverse.diameter g) ())
                    ()))
          g flood_leader
      in
      Printf.printf
        "\nraw engine demo (max-id flood): leader %d after %d rounds,\n\
        \ %d messages / %d bits, peak %d active nodes, bounds %s\n"
        r.Network.states.(0) r.Network.rounds
        r.Network.report.Network.messages r.Network.report.Network.bits
        r.Network.report.Network.active_peak
        (match r.Network.report.Network.verdict with
        | Some v when Bounds.ok v -> "OK"
        | Some _ -> "VIOLATED"
        | None -> "unchecked")
