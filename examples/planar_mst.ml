(* The downstream story: minimum spanning tree on a planar network.

   The paper's abstract promises that its embedding is "used, in a
   black-box manner" by part II of the project [GH16] to compute MST and
   min-cut in planar networks in O~(D) rounds. This example runs the
   repository's pipeline the way that program does: first the distributed
   planar embedding (part I, this paper), then a distributed MST over the
   same simulated network — here the classic Borůvka fragment merging,
   with part II's shortcut acceleration noted as the open follow-up.

   The weights model link latencies on a sensor mesh.

     dune exec examples/planar_mst.exe *)

let () =
  let n = 600 in
  let g = Gen.random_planar ~seed:77 ~n ~m:(2 * n) in
  (* Deterministic pseudo-latencies per link. *)
  let weight u v = (((u + 1) * 48271) lxor ((v + 1) * 16807)) mod 1000 in
  Printf.printf "planar network: n=%d m=%d diameter=%d\n\n" (Gr.n g) (Gr.m g)
    (Traverse.diameter g);

  (* Part I: the planar embedding (each node learns its clockwise link
     order; usable afterwards for face routing, duals, separators...). *)
  let emb = Embedder.run ~mode:Part.Economy g in
  (match emb.Embedder.rotation with
  | Some r -> assert (Rotation.is_planar_embedding r)
  | None -> failwith "planar input rejected");
  Printf.printf "part I  (planar embedding)  : %6d rounds\n"
    emb.Embedder.report.Embedder.rounds;

  (* Part II consumer: distributed MST. *)
  let (mst, rep) = Mst.run ~weight g in
  Printf.printf "part II consumer (MST)      : %6d rounds, %d Boruvka phases\n"
    rep.Mst.rounds rep.Mst.boruvka_phases;
  let total_weight =
    List.fold_left (fun acc (u, v) -> acc + weight u v) 0 mst
  in
  Printf.printf "MST: %d edges, total latency %d\n" (List.length mst)
    total_weight;

  (* Verify against the centralized reference. *)
  let reference = Mst.kruskal ~weight g in
  assert (List.sort compare mst = List.sort compare reference);
  Printf.printf "matches centralized Kruskal : yes\n\n";

  (* And the embedding is immediately useful on the result: the MST is a
     planar subgraph whose embedding is induced by restricting each node's
     clockwise order — e.g. for collision-free tree broadcast schedules. *)
  let t = Gr.of_edges ~n mst in
  (match Planarity.embed t with
  | Planarity.Planar rt ->
      Printf.printf "the MST itself embeds with %d face(s) (a tree: exactly 1)\n"
        (Rotation.face_count rt)
  | Planarity.Nonplanar -> assert false);
  Printf.printf
    "\n[GH16] (part II of the program) accelerates exactly this MST to\n\
     O~(D) rounds with low-congestion shortcuts built from the embedding.\n"
