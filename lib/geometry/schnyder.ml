(* Schnyder wood via decremental canonical ordering, coordinates via
   region counts (path sums of subtree sizes, SNIPPETS.md snippet 1).

   Boundary of the shrinking triangulation is a doubly-linked cycle
   (cnext / cprev). The invariant cnext.(a) = b holds throughout — the
   edge (a, b) of the outer face never leaves the boundary — which is
   what makes left-parent chains end at b and right-parent chains end
   at a. Chord counts per boundary vertex are maintained incrementally;
   a stack holds chord-free candidates (possibly stale — entries are
   revalidated when popped). *)

type t = {
  tri : Triangulate.t;
  roots : int * int * int;
  x : int array;
  y : int array;
  par : int array array; (* par.(i).(v): parent in tree i, -1 if none *)
}

let canonical rot n (a, b, c) =
  let removed = Array.make n false in
  let on_outer = Array.make n false in
  let cnext = Array.make n (-1) and cprev = Array.make n (-1) in
  let chords = Array.make n 0 in
  let stamp = Array.make n (-1) in
  let par0 = Array.make n (-1)
  and par1 = Array.make n (-1)
  and par2 = Array.make n (-1) in
  let cand = ref [ c ] in
  on_outer.(a) <- true;
  on_outer.(b) <- true;
  on_outer.(c) <- true;
  cnext.(a) <- b;
  cnext.(b) <- c;
  cnext.(c) <- a;
  cprev.(b) <- a;
  cprev.(c) <- b;
  cprev.(a) <- c;
  (* The unremoved neighbors of a boundary vertex form one contiguous arc
     of its rotation running from cprev to cnext (the region below the
     boundary is internally triangulated); extract it in order, trying
     both rotation directions. *)
  let path_of x cl cr =
    let nb = Rotation.rotation rot x in
    let deg = Array.length nb in
    let ucnt = ref 0 in
    Array.iter (fun w -> if not removed.(w) then incr ucnt) nb;
    let pos = ref (-1) in
    Array.iteri (fun i w -> if w = cl then pos := i) nb;
    if !pos < 0 then failwith "Schnyder: internal error: cprev not adjacent";
    let try_dir step =
      let acc = ref [ cl ] and cnt = ref 1 in
      let i = ref !pos and reached = ref false in
      (try
         for _ = 1 to deg do
           i := (!i + step + deg) mod deg;
           let w = nb.(!i) in
           if w = cr then begin
             acc := cr :: !acc;
             incr cnt;
             reached := true;
             raise Exit
           end
           else if not removed.(w) then begin
             acc := w :: !acc;
             incr cnt
           end
         done
       with Exit -> ());
      if !reached && !cnt = !ucnt then Some (List.rev !acc) else None
    in
    match try_dir 1 with
    | Some p -> p
    | None -> (
        match try_dir (-1) with
        | Some p -> p
        | None -> failwith "Schnyder: internal error: boundary arc split")
  in
  for step = 1 to n - 2 do
    (* Pop a valid candidate: still on the boundary, chord-free, not a
       root of the (a, b) base edge. *)
    let x = ref (-1) in
    while !x < 0 do
      match !cand with
      | [] -> failwith "Schnyder: internal error: no removable vertex"
      | v :: rest ->
          cand := rest;
          if on_outer.(v) && chords.(v) = 0 && v <> a && v <> b then x := v
    done;
    let x = !x in
    let cl = cprev.(x) and cr = cnext.(x) in
    let path = path_of x cl cr in
    removed.(x) <- true;
    on_outer.(x) <- false;
    (* The first removal is c itself: an outer vertex, so its two outer
       edges (c, a) and (c, b) belong to no tree. *)
    if step > 1 then begin
      par1.(x) <- cl;
      par2.(x) <- cr
    end;
    let interior =
      match path with
      | _ :: tl -> List.filter (fun w -> w <> cr) tl
      | [] -> []
    in
    (* Chord bookkeeping when x had exactly two unremoved neighbors: the
       edge (cl, cr) must exist (their common face with x is a triangle)
       and turns from chord into boundary edge — unless the boundary is
       the triangle (cl, x, cr) itself, where it already was one. *)
    if interior = [] then begin
      if cnext.(cr) <> cl then begin
        chords.(cl) <- chords.(cl) - 1;
        if chords.(cl) = 0 then cand := cl :: !cand;
        chords.(cr) <- chords.(cr) - 1;
        if chords.(cr) = 0 then cand := cr :: !cand
      end
    end;
    (* Splice the uncovered path into the boundary cycle. *)
    let rec splice prev = function
      | [] -> ()
      | w :: tl ->
          cnext.(prev) <- w;
          cprev.(w) <- prev;
          splice w tl
    in
    (match path with
    | first :: tl -> splice first tl
    | [] -> ());
    List.iter
      (fun w ->
        par0.(w) <- x;
        on_outer.(w) <- true;
        stamp.(w) <- step)
      interior;
    (* Count chords of each newly exposed vertex; edges between two
       same-step joiners must be counted once, hence the stamp check. *)
    List.iter
      (fun w ->
        let nb = Rotation.rotation rot w in
        Array.iter
          (fun u ->
            if on_outer.(u) && u <> cnext.(w) && u <> cprev.(w) && u <> w
            then begin
              chords.(w) <- chords.(w) + 1;
              if stamp.(u) <> step then chords.(u) <- chords.(u) + 1
            end)
          nb;
        if chords.(w) = 0 then cand := w :: !cand)
      interior
  done;
  [| par0; par1; par2 |]

(* Depth p and subtree size t per tree, iteratively; then region counts
   r by walking each tree accumulating path sums of the other trees'
   subtree sizes (snippet 1's dfs_pt / dfs_r, with explicit stacks). *)
let region_coords n par (r0, r1, r2) =
  let roots = [| r0; r1; r2 |] in
  let p = Array.init 3 (fun _ -> Array.make n 0) in
  let t = Array.init 3 (fun _ -> Array.make n 0) in
  let r = Array.init 3 (fun _ -> Array.make n 0) in
  let kids = Array.init 3 (fun _ -> Array.make n []) in
  for i = 0 to 2 do
    for v = n - 1 downto 0 do
      if par.(i).(v) >= 0 then
        kids.(i).(par.(i).(v)) <- v :: kids.(i).(par.(i).(v))
    done
  done;
  let pre = Array.make n (-1) in
  for i = 0 to 2 do
    let root = roots.(i) in
    let cnt = ref 0 in
    let stack = ref [ root ] in
    p.(i).(root) <- 1;
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | v :: rest ->
          stack := rest;
          pre.(!cnt) <- v;
          incr cnt;
          t.(i).(v) <- 1;
          List.iter
            (fun u ->
              p.(i).(u) <- p.(i).(v) + 1;
              stack := u :: !stack)
            kids.(i).(v)
    done;
    for k = !cnt - 1 downto 1 do
      let v = pre.(k) in
      t.(i).(par.(i).(v)) <- t.(i).(par.(i).(v)) + t.(i).(v)
    done
  done;
  (* Presets: both foreign roots of each tree weigh 1 — the closed
     region R̄_j(v) always contains both of them (the outer edge
     r_{j+1} — r_{j-1} is part of every region boundary). *)
  t.(0).(r1) <- 1;
  t.(0).(r2) <- 1;
  t.(1).(r2) <- 1;
  t.(1).(r0) <- 1;
  t.(2).(r0) <- 1;
  t.(2).(r1) <- 1;
  for i = 0 to 2 do
    let st = [| 0; 0; 0 |] in
    let stack = ref [ (roots.(i), true) ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | (v, enter) :: rest ->
          stack := rest;
          if enter then begin
            for j = 0 to 2 do
              st.(j) <- st.(j) + t.(j).(v);
              if j <> i then r.(j).(v) <- r.(j).(v) + st.(j)
            done;
            stack := (v, false) :: !stack;
            List.iter (fun u -> stack := (u, true) :: !stack) kids.(i).(v)
          end
          else
            for j = 0 to 2 do
              st.(j) <- st.(j) - t.(j).(v)
            done
    done
  done;
  (p, t, r)

let of_triangulation tri =
  let rot = Triangulate.rotation tri in
  let g = Triangulate.graph tri in
  let n = Gr.n g in
  if n <= 2 then begin
    let x = Array.init n (fun v -> v) and y = Array.make (max n 1) 0 in
    {
      tri;
      roots = (0, (min 1 (n - 1)), (min 1 (n - 1)));
      x = (if n = 0 then [||] else x);
      y = (if n = 0 then [||] else y);
      par = Array.init 3 (fun _ -> Array.make (max n 1) (-1));
    }
  end
  else begin
    (* Outer face: the face orbit of the first edge's dart, walked in
       the rotation's face order so the boundary orientation matches the
       embedding's handedness. *)
    let u0, v0 = List.hd (Gr.edges g) in
    let face = Rotation.face_of_dart rot (u0, v0) in
    let a0, b0, c0 =
      match face with
      | [ (p, _); (q, _); (s, _) ] -> (p, q, s)
      | _ -> failwith "Schnyder: internal error: non-triangular face"
    in
    let par0 = canonical rot n (a0, b0, c0) in
    let side = n - 2 in
    (* The chirality of the input rotation (which of the two boundary
       trees plays "left") is not observable combinatorially, so build
       the drawing for one handedness, validate it exactly, and fall
       back to the mirror if needed — never emit unvalidated geometry. *)
    let attempt mirror =
      let par, r0_, r1_, r2_ =
        if mirror then ([| par0.(0); par0.(2); par0.(1) |], c0, a0, b0)
        else ([| par0.(0); par0.(1); par0.(2) |], c0, b0, a0)
      in
      let p, t, r = region_coords n par (r0_, r1_, r2_) in
      let x = Array.make n 0 and y = Array.make n 0 in
      for v = 0 to n - 1 do
        if v <> r0_ && v <> r1_ && v <> r2_ then begin
          (* R̄_j(v) = path sums of t_j minus the doubly counted t_j(v);
             the coordinate is the region count minus one path length. *)
          x.(v) <- r.(0).(v) - t.(0).(v) - p.(2).(v);
          y.(v) <- r.(1).(v) - t.(1).(v) - p.(0).(v)
        end
      done;
      (* Corners: extreme grid points, cyclically shifted by one so no
         interior vertex can land on the outer edges. *)
      x.(r0_) <- side;
      y.(r0_) <- 1;
      x.(r1_) <- 0;
      y.(r1_) <- side;
      x.(r2_) <- 1;
      y.(r2_) <- 0;
      if n = 3 then begin
        x.(r0_) <- 1;
        y.(r0_) <- 1
      end;
      let ok =
        Drawing.within_grid ~x ~y ~side
        && Drawing.distinct ~x ~y
        && Drawing.valid_triangulation_drawing rot ~x ~y
      in
      (ok, par, (r0_, r1_, r2_), x, y)
    in
    let ok, par, roots, x, y =
      match attempt true with
      | (true, _, _, _, _) as res -> res
      | _ -> attempt false
    in
    if not ok then
      failwith "Schnyder: internal error: drawing failed validation";
    { tri; roots; x; y; par }
  end

let draw r = of_triangulation (Triangulate.make r)
let triangulation t = t.tri
let coords t = (t.x, t.y)
let coord t v = (t.x.(v), t.y.(v))

let grid_side t =
  let n = Gr.n (Triangulate.graph t.tri) in
  max 1 (n - 2)

let roots t = t.roots
let parent t i v = t.par.(i).(v)
