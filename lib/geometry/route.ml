(* Greedy-face-greedy routing on the real graph's straight-line drawing.

   All geometry is exact: distances are squared integers, face-crossing
   parameters are fractions compared by 128-bit cross multiplication
   (products of two ~2^35 cross products overflow 63-bit ints, so each
   product is carried as hi * 2^20 + lo). *)

type t = {
  sch : Schnyder.t;
  g : Gr.t;
  x : int array;
  y : int array;
  rot : int array array; (* neighbor cycle per vertex, real graph *)
  fnext : int array; (* dart -> face-successor dart *)
  dhead : int array; (* dart -> head vertex *)
  comp : int array; (* component id per vertex *)
  ccw : bool; (* drawing chirality: rotations counterclockwise? *)
}

type outcome =
  | Delivered of {
      path : int list;
      hops : int;
      greedy_hops : int;
      face_hops : int;
      recoveries : int;
    }
  | Unreachable
  | Stuck of { at : int; hops : int }

(* Dart ids: edge e spawns darts 2e (min -> max) and 2e + 1 (max -> min). *)
let did g u v =
  let e = Gr.edge_index g u v in
  if u < v then 2 * e else (2 * e) + 1

let make sch =
  let tri = Schnyder.triangulation sch in
  let src_rot = Triangulate.source tri in
  let g = Rotation.graph src_rot in
  let n = Gr.n g and m = Gr.m g in
  let x, y = Schnyder.coords sch in
  let rot = Array.init n (fun v -> Rotation.rotation src_rot v) in
  let fnext = Array.make (max 1 (2 * m)) (-1) in
  let dhead = Array.make (max 1 (2 * m)) (-1) in
  for v = 0 to n - 1 do
    let r = rot.(v) in
    let deg = Array.length r in
    for i = 0 to deg - 1 do
      let u = r.(i) and w = r.((i + 1) mod deg) in
      (* face-next of (u -> v) is (v -> succ_v u) *)
      fnext.(did g u v) <- did g v w;
      dhead.(did g u v) <- v
    done
  done;
  let comp = Array.make (max 1 n) (-1) in
  List.iteri
    (fun i vs -> List.iter (fun v -> comp.(v) <- i) vs)
    (Traverse.components g);
  (* Chirality: the triangulation's interior faces all share one
     orientation sign (only the outer face differs). When rotations run
     counterclockwise in the drawing, the face orbit of a dart lies to
     its right and is traced clockwise — negative orientation — so a
     negative majority means counterclockwise rotations. *)
  let ccw =
    let pos = ref 0 and neg = ref 0 in
    List.iter
      (fun f ->
        match f with
        | [ (a, _); (b, _); (c, _) ] ->
            let o =
              Drawing.orient (x.(a), y.(a)) (x.(b), y.(b)) (x.(c), y.(c))
            in
            if o > 0 then incr pos else if o < 0 then incr neg
        | _ -> ())
      (Rotation.faces (Triangulate.rotation tri));
    !pos < !neg
  in
  { sch; g; x; y; rot; fnext; dhead; comp; ccw }

let graph t = t.g
let schnyder t = t.sch

(* ---- exact arithmetic helpers ---------------------------------------- *)

let d2 t u (tx, ty) =
  let dx = t.x.(u) - tx and dy = t.y.(u) - ty in
  (dx * dx) + (dy * dy)

(* Cross product of (b - a) and (c - a), chirality-adjusted so that
   "left of" means the same thing whichever way the drawing is mirrored. *)
let cross_raw (ax, ay) (bx, by) (cx, cy) =
  ((bx - ax) * (cy - ay)) - ((by - ay) * (cx - ax))

(* a * b as hi * 2^20 + lo for 0 <= a, b < 2^40: exact 128-bit-ish carry. *)
let mulsplit a b =
  let ah = a asr 20 and al = a land 0xFFFFF in
  let low = al * b in
  ((ah * b) + (low asr 20), low land 0xFFFFF)

(* Compare n1/d1 vs n2/d2 with all components >= 0, d > 0. *)
let frac_cmp (n1, d1) (n2, d2) =
  let h1, l1 = mulsplit n1 d2 and h2, l2 = mulsplit n2 d1 in
  if h1 <> h2 then compare h1 h2 else compare l1 l2

(* Crossing parameter of segment (p, t) with edge (a, b), as a
   nonnegative fraction along p -> t. Caller guarantees a proper cross,
   so the denominator is nonzero. *)
let cross_param pp tt aa bb =
  let px, py = pp and tx, ty = tt in
  let ax, ay = aa and bx, by = bb in
  let den = ((tx - px) * (by - ay)) - ((ty - py) * (bx - ax)) in
  let num = ((ax - px) * (by - ay)) - ((ay - py) * (bx - ax)) in
  if den < 0 then (-num, -den) else (num, den)

(* Does the ray u -> r lie in the angular sector from neighbor va to
   neighbor vb (in rotation order)? Sector is inclusive at va, exclusive
   at vb; collinear-opposite and full-circle (degree-1) cases handled. *)
let in_wedge t u va vb (rx, ry) =
  let o = (t.x.(u), t.y.(u)) in
  let pa = (t.x.(va), t.y.(va)) and pb = (t.x.(vb), t.y.(vb)) in
  let cross a b c =
    let v = cross_raw a b c in
    if t.ccw then v else -v
  in
  let dot (axx, ayy) (bxx, byy) =
    let ox, oy = o in
    ((axx - ox) * (bxx - ox)) + ((ayy - oy) * (byy - oy))
  in
  let r = (rx, ry) in
  let c1 = cross o pa r and c2 = cross o r pb and c0 = cross o pa pb in
  if c1 = 0 && dot pa r > 0 then true (* on the opening ray *)
  else if c2 = 0 && dot pb r > 0 then false (* next sector's opening *)
  else if c0 > 0 then c1 > 0 && c2 > 0
  else if c0 < 0 then c1 > 0 || c2 > 0
  else if dot pa pb > 0 then true (* degree-1 vertex: full circle *)
  else c1 > 0 (* straight angle: the left half-plane *)

(* The dart at [u] opening the face whose sector contains the ray to
   (rx, ry): the face between consecutive neighbors (a, b = succ a) —
   the orbit lying to the right of dart (u -> b) for counterclockwise
   rotations, and its mirror image otherwise — is the orbit through
   (u -> b) in both chiralities. *)
let entry_dart t u (rx, ry) =
  let r = t.rot.(u) in
  let deg = Array.length r in
  let rec go i =
    if i >= deg then
      failwith "Route: internal error: no face sector contains the target"
    else
      let a = r.(i) and b = r.((i + 1) mod deg) in
      if in_wedge t u a b (rx, ry) then did t.g u b else go (i + 1)
  in
  go 0

let route t src dst =
  let n = Gr.n t.g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Route.route: vertex out of range";
  if src = dst then
    Delivered
      { path = [ src ]; hops = 0; greedy_hops = 0; face_hops = 0; recoveries = 0 }
  else if t.comp.(src) <> t.comp.(dst) then Unreachable
  else begin
    let tt = (t.x.(dst), t.y.(dst)) in
    let budget = (16 * n) + 64 in
    let path = ref [ src ] in
    let hops = ref 0 and greedy_hops = ref 0 and face_hops = ref 0 in
    let recoveries = ref 0 in
    let cur = ref src in
    let stuck = ref false in
    let step ~face v =
      incr hops;
      if face then incr face_hops else incr greedy_hops;
      path := v :: !path;
      cur := v;
      if !hops > budget then stuck := true
    in
    (* One greedy hop: the strictly closest neighbor, if any improves. *)
    let greedy_next () =
      let best = ref (-1) and bestd = ref (d2 t !cur tt) in
      Array.iter
        (fun w ->
          let dw = d2 t w tt in
          if dw < !bestd then begin
            bestd := dw;
            best := w
          end)
        t.rot.(!cur);
      !best
    in
    (* Face recovery episode: anchored at p, walk stabbed faces until a
       vertex strictly closer than p turns up. *)
    let recover () =
      incr recoveries;
      let p = !cur in
      let pp = (t.x.(p), t.y.(p)) in
      let anchor_d = d2 t p tt in
      let pt v = (t.x.(v), t.y.(v)) in
      let tau = ref (0, 1) in
      let d0 = ref (entry_dart t p tt) in
      let episode_done = ref false in
      while (not !episode_done) && not !stuck do
        (* Scan the whole face orbit of !d0: the first strictly closer
           vertex (by walk order), else the crossing furthest along the
           segment and strictly beyond the entry point. *)
        let closer_at = ref (-1) in
        let best_cross_at = ref (-1) and best_tau = ref (0, 0) in
        let d = ref !d0 and k = ref 0 in
        let guard = ref (4 * Gr.m t.g) in
        let continue = ref true in
        (* Source of the scan's start dart: the vertex we stand at —
           the anchor in the first scan, the crossing dart's source in
           every later one. *)
        let prev_src = ref !cur in
        while !continue do
          let head = t.dhead.(!d) in
          if !closer_at < 0 && d2 t head tt < anchor_d then begin
            closer_at := !k;
            continue := false
          end;
          let a = !prev_src and b = head in
          if
            !closer_at < 0
            && Drawing.proper_cross (pt a) (pt b) pp tt
          then begin
            let tau_c = cross_param pp tt (pt a) (pt b) in
            if
              frac_cmp tau_c !tau > 0
              && (!best_cross_at < 0 || frac_cmp tau_c !best_tau > 0)
            then begin
              best_cross_at := !k;
              best_tau := tau_c
            end
          end;
          prev_src := head;
          d := t.fnext.(!d);
          incr k;
          decr guard;
          if !d = !d0 || !guard <= 0 then continue := false
        done;
        if !guard <= 0 then stuck := true
        else if !closer_at >= 0 then begin
          (* Walk along the face to the closer vertex, resume greedy. *)
          let d = ref !d0 in
          for _ = 0 to !closer_at do
            if not !stuck then begin
              step ~face:true t.dhead.(!d);
              d := t.fnext.(!d)
            end
          done;
          episode_done := true
        end
        else if !best_cross_at >= 0 then begin
          (* Walk to the source of the crossing dart, hop over the edge
             combinatorially (stay at the same vertex, switch faces). *)
          let d = ref !d0 in
          for _ = 1 to !best_cross_at do
            if not !stuck then begin
              step ~face:true t.dhead.(!d);
              d := t.fnext.(!d)
            end
          done;
          (* !d is the crossing dart (alpha -> beta); continue scanning
             the face on its far side, from alpha. *)
          let alpha = !cur and beta = t.dhead.(!d) in
          tau := !best_tau;
          d0 := t.fnext.(did t.g beta alpha)
        end
        else
          (* No closer vertex and no forward crossing: the invariants of
             a plane drawing exclude this. *)
          stuck := true
      done
    in
    while (not !stuck) && !cur <> dst do
      let nxt = greedy_next () in
      if nxt >= 0 then step ~face:false nxt else recover ()
    done;
    if !stuck then Stuck { at = !cur; hops = !hops }
    else
      Delivered
        {
          path = List.rev !path;
          hops = !hops;
          greedy_hops = !greedy_hops;
          face_hops = !face_hops;
          recoveries = !recoveries;
        }
  end

let route_batch ?pool t pairs =
  let nq = Array.length pairs in
  let out = Array.make nq Unreachable in
  (match pool with
  | None ->
      for i = 0 to nq - 1 do
        let s, d = pairs.(i) in
        out.(i) <- route t s d
      done
  | Some p ->
      Pool.run p ~tasks:nq (fun i ->
          let s, d = pairs.(i) in
          out.(i) <- route t s d));
  out
