(** Schnyder wood and straight-line grid coordinates.

    Given a triangulation ({!Triangulate}), this module computes a
    {e Schnyder wood} — a partition of the interior edges into three
    trees rooted at the three outer vertices — and from it integer
    coordinates on the [(n-2) × (n-2)] grid such that drawing every
    edge as a straight segment yields a plane drawing (no two edges
    cross). This is Schnyder's classical result, and it is what turns
    the combinatorial embedding the paper's algorithm produces into
    actual geometry that the face-routing engine ({!Route}) can
    navigate.

    Construction, in two phases:

    + a {e canonical ordering} is peeled off the triangulation
      decrementally: starting from an outer face [(a, b, c)], the
      vertex [c] and then repeatedly any boundary vertex incident to no
      chord of the current boundary cycle is removed; the removed
      vertex's boundary predecessor becomes its parent in the left tree
      (rooted at [b]), its successor the parent in the right tree
      (rooted at [a]), and it becomes the up-tree parent (rooted at
      [c]) of every interior vertex it uncovers. Chord counts are
      maintained incrementally, so the whole ordering is linear time up
      to the union of vertex degrees.
    + coordinates come from the region-count trick: per tree, the depth
      [p] of every vertex and the subtree size [t]; then a traversal of
      each tree accumulating path sums of the other trees' subtree
      sizes yields region counts [r], and [(r0 - p2, r1 - p0)] is the
      grid point of each interior vertex. The three outer vertices are
      pinned to corners of the grid. All traversals are iterative —
      deep triangulations (paths, trees) must not blow the stack.

    The result is deterministic for a given rotation system. *)

type t
(** A Schnyder wood of a triangulation together with its grid
    drawing. *)

val of_triangulation : Triangulate.t -> t
(** Compute the wood and the coordinates. For [n <= 2] the degenerate
    drawing places the vertices at distinct points of the unit grid and
    the tree structure is empty. *)

val draw : Rotation.t -> t
(** [draw r] is [of_triangulation (Triangulate.make r)] — the one-call
    pipeline from an embedded graph to grid coordinates.
    @raise Invalid_argument if [r] is not planar. *)

val triangulation : t -> Triangulate.t
(** The underlying triangulation (graph, rotation, virtual-edge tags). *)

val coords : t -> int array * int array
(** [(x, y)] coordinate arrays indexed by vertex. Owned by [t]; callers
    must not mutate them. *)

val coord : t -> int -> int * int
(** [coord t v] is the grid point of vertex [v]. *)

val grid_side : t -> int
(** The grid side length: all coordinates lie in [[0, grid_side t]]²;
    equals [max 1 (n - 2)]. *)

val roots : t -> int * int * int
(** [(r0, r1, r2)]: the outer vertices used as roots of the up, left
    and right trees respectively (meaningless placeholders when
    [n <= 2]). *)

val parent : t -> int -> int -> int
(** [parent t i v] is the parent of [v] in tree [i] ([0] up, [1] left,
    [2] right), or [-1] when [v] is the root of that tree or not a
    member (each tree spans the interior vertices plus its own root). *)
