(** Geographic face-routing query engine over Schnyder coordinates.

    The engine answers point-to-point routing queries on the {e real}
    input graph using only the grid coordinates ({!Schnyder}) and the
    embedding's rotation — the greedy-face-greedy (GFG) discipline:

    - {e greedy mode}: forward to the neighbor strictly closest to the
      destination (squared Euclidean distance, exact integers) as long
      as one closer than the current vertex exists;
    - {e face recovery}: at a local minimum [p], walk the faces of the
      plane subdivision stabbed by the segment [p → t]. Each face is
      scanned combinatorially (the rotation's face orbits restricted to
      real edges); the walk crosses into the next face at the boundary
      edge whose intersection with the segment is furthest along it,
      comparing intersection parameters as exact fractions (128-bit
      cross-multiplication — no floating point, no misordering). The
      moment any vertex strictly closer to [t] than [p] is reached,
      greedy mode resumes.

    On a plane straight-line drawing of a connected graph this is the
    classical guaranteed-delivery argument: within a recovery episode
    the crossing parameter increases strictly, across episodes the
    anchor distance decreases strictly, so every query terminates at
    the destination. Virtual triangulation edges are never traversed —
    recovery happens on the real faces — so reported routes use input
    edges only. A generous hop budget backstops internal invariants;
    exhausting it yields {!Stuck} rather than a wrong route.

    Queries are read-only on the engine, so batches parallelize over a
    {!Pool} with plain array slots per query. *)

type t
(** A routing engine: coordinates, rotation, face-successor tables and
    component ids, built once per graph. *)

type outcome =
  | Delivered of {
      path : int list;  (** [src .. dst], real edges only *)
      hops : int;  (** [List.length path - 1] *)
      greedy_hops : int;  (** hops taken in greedy mode *)
      face_hops : int;  (** hops taken inside face recovery *)
      recoveries : int;  (** number of recovery episodes *)
    }
  | Unreachable  (** src and dst lie in different components *)
  | Stuck of {
      at : int;  (** vertex where the hop budget ran out *)
      hops : int;
    }
      (** Hop budget exhausted — never expected on validated drawings;
          the test suite and the bench gate treat this as failure. *)

val make : Schnyder.t -> t
(** Build the engine from a drawing. The routing graph is the drawing's
    {e source} graph (the real input edges), not the triangulation. *)

val graph : t -> Gr.t
(** The real graph queries are routed on. *)

val schnyder : t -> Schnyder.t
(** The drawing the engine was built from. *)

val route : t -> int -> int -> outcome
(** [route t src dst] routes one query.
    @raise Invalid_argument if [src] or [dst] is not a vertex. *)

val route_batch : ?pool:Pool.t -> t -> (int * int) array -> outcome array
(** Answer a batch of queries; result slot [i] answers query [i].
    With [?pool] the queries are spread across the pool's domains (the
    engine is immutable, so this is safe); results are identical to the
    serial run. *)
