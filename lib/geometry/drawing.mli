(** Exact primitives and validity checks for straight-line grid drawings.

    All predicates are computed in machine-integer arithmetic, which is
    exact for the coordinate ranges this library produces: Schnyder
    coordinates are bounded by the grid side [n - 2], so every cross
    product here stays far below [max_int]. No floating point is
    involved anywhere, which is what makes the routing engine's
    geometric decisions ({!Route}) deterministic and the test-suite
    verdicts trustworthy.

    Two validity checks are provided, one per scale:

    - {!first_crossing} is the exhaustive O(m²) oracle: it examines
      every pair of edges and reports the first pair that intersects
      anywhere except at a shared endpoint. Definitive on any graph,
      affordable on small ones.
    - {!valid_triangulation_drawing} is the O(n) check for
      triangulations: if every face of the rotation system is drawn
      with the same strict orientation except exactly one (the outer
      face, reversed), the signed faces tile the outer triangle with
      winding number one everywhere, so the drawing is plane. This is
      the gate the big family sweeps use. A plane drawing of a
      triangulation restricts to a plane drawing of any subgraph, so it
      also certifies the drawing of the embedded input graph. *)

val orient : int * int -> int * int -> int * int -> int
(** [orient a b c] is the sign of the cross product
    [(b - a) × (c - a)]: positive when the triangle [a b c] turns
    counterclockwise (in the usual y-up orientation), negative when
    clockwise, [0] when collinear. The magnitude is the doubled triangle
    area; callers that only branch on the sign should compare to 0. *)

val on_segment : int * int -> int * int -> int * int -> bool
(** [on_segment p a b] is [true] iff [p] lies on the closed segment
    [[a, b]] (collinear and within the bounding box). *)

val proper_cross :
  int * int -> int * int -> int * int -> int * int -> bool
(** [proper_cross p q a b] is [true] iff the open segments [(p, q)] and
    [(a, b)] intersect in exactly one point interior to both — the
    strict crossing test face recovery uses to pick its exit edge. *)

val segments_conflict :
  int * int -> int * int -> int * int -> int * int -> bool
(** [true] iff the closed segments intersect at all — proper crossing,
    endpoint touching an interior, or collinear overlap. Callers that
    allow a shared endpoint must exclude that case themselves (as
    {!first_crossing} does). *)

val first_crossing :
  Gr.t -> x:int array -> y:int array -> ((int * int) * (int * int)) option
(** Exhaustive plane-drawing oracle: the first pair of edges that
    intersect anywhere except at a common endpoint, or [None] if the
    drawing is plane. O(m²) — intended for small graphs in tests. *)

val valid_triangulation_drawing :
  Rotation.t -> x:int array -> y:int array -> bool
(** O(n) plane-drawing check for a rotation system whose faces are all
    triangles: [true] iff no face is degenerate (zero area) and exactly
    one face — the outer one — is oriented oppositely to all others.
    By the winding-number argument above this is equivalent to the
    drawing being plane. *)

val distinct : x:int array -> y:int array -> bool
(** [true] iff all coordinate pairs are pairwise distinct. *)

val within_grid : x:int array -> y:int array -> side:int -> bool
(** [true] iff every coordinate lies in [[0, side]] (both axes). *)
