(* Exact integer geometry for grid drawings.

   Coordinates are grid integers bounded by n - 2 <= ~30k in every
   workload this repo generates, so cross products stay below ~2^34 and
   native int arithmetic is exact. Nothing here allocates on the hot
   predicates. *)

let orient (ax, ay) (bx, by) (cx, cy) =
  let v = ((bx - ax) * (cy - ay)) - ((by - ay) * (cx - ax)) in
  compare v 0

let on_segment (px, py) (ax, ay) (bx, by) =
  orient (ax, ay) (bx, by) (px, py) = 0
  && min ax bx <= px
  && px <= max ax bx
  && min ay by <= py
  && py <= max ay by

let proper_cross p q a b =
  let d1 = orient a b p and d2 = orient a b q in
  let d3 = orient p q a and d4 = orient p q b in
  d1 * d2 < 0 && d3 * d4 < 0

let segments_conflict p q a b =
  proper_cross p q a b
  || on_segment a p q || on_segment b p q
  || on_segment p a b || on_segment q a b

let first_crossing g ~x ~y =
  let pt v = (x.(v), y.(v)) in
  let edges = Array.of_list (Gr.edges g) in
  let m = Array.length edges in
  let found = ref None in
  (try
     for i = 0 to m - 1 do
       let u1, v1 = edges.(i) in
       for j = i + 1 to m - 1 do
         let u2, v2 = edges.(j) in
         let bad =
           if u1 = u2 || u1 = v2 || v1 = u2 || v1 = v2 then begin
             (* One shared endpoint: only the three free endpoints can
                land on the other closed segment. *)
             let shared, p1, p2 =
               if u1 = u2 then (u1, v1, v2)
               else if u1 = v2 then (u1, v1, u2)
               else if v1 = u2 then (v1, u1, v2)
               else (v1, u1, u2)
             in
             on_segment (pt p1) (pt u2) (pt v2)
             || on_segment (pt p2) (pt u1) (pt v1)
             || on_segment (pt shared) (pt p1) (pt p2)
                && orient (pt shared) (pt p1) (pt p2) = 0
                && (pt p1 = pt shared || pt p2 = pt shared)
           end
           else segments_conflict (pt u1) (pt v1) (pt u2) (pt v2)
         in
         if bad then begin
           found := Some (edges.(i), edges.(j));
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let valid_triangulation_drawing r ~x ~y =
  let pt v = (x.(v), y.(v)) in
  let pos = ref 0 and neg = ref 0 and zero = ref 0 and other = ref 0 in
  List.iter
    (fun face ->
      match face with
      | [ (a, _); (b, _); (c, _) ] -> (
          match orient (pt a) (pt b) (pt c) with
          | 0 -> incr zero
          | s when s > 0 -> incr pos
          | _ -> incr neg)
      | _ -> incr other)
    (Rotation.faces r);
  !other = 0 && !zero = 0 && ((!pos = 1 && !neg > 0) || (!neg = 1 && !pos > 0))

let distinct ~x ~y =
  let n = Array.length x in
  if n <= 1 then true
  else begin
    let pts = Array.init n (fun i -> (x.(i), y.(i))) in
    Array.sort compare pts;
    let ok = ref true in
    for i = 0 to n - 2 do
      if pts.(i) = pts.(i + 1) then ok := false
    done;
    !ok
  end

let within_grid ~x ~y ~side =
  let ok = ref true in
  Array.iter (fun v -> if v < 0 || v > side then ok := false) x;
  Array.iter (fun v -> if v < 0 || v > side then ok := false) y;
  !ok
