(* Planarity-preserving triangulation on a mutable half-edge store.

   Half-edges are allocated in pairs (h, h+1 = reversal, h even), seeded
   from the input rotation's dart table and grown as fill edges arrive.
   [nxt]/[prv] link the half-edges out of one source vertex in rotation
   order, so the face-successor of h is nxt.(h lxor 1) — the same
   next (u, v) = (v, succ_v u) convention as Rotation's flat arrays.
   Splitting a triangle off a face is then two doubly-linked-list
   insertions; no hashtables are touched on the walk itself (only the
   duplicate-edge guard consults one). *)

type t = {
  graph : Gr.t;
  rotation : Rotation.t;
  source : Rotation.t;
  vmask : bool array;
  vcount : int;
}

(* Growable half-edge store. *)
type store = {
  mutable dst : int array;
  mutable src : int array;
  mutable nxt : int array;
  mutable prv : int array;
  mutable len : int;
  first : int array; (* an out-half-edge per vertex; -1 when isolated *)
  edges : (int, unit) Hashtbl.t; (* key (min u v) * n + (max u v) *)
  nv : int;
  mutable added : (int * int) list; (* virtual edges, newest first *)
}

let key st u v = if u < v then (u * st.nv) + v else (v * st.nv) + u
let has_edge st u v = Hashtbl.mem st.edges (key st u v)
let face_next st h = st.nxt.(h lxor 1)

let ensure st need =
  let cap = Array.length st.dst in
  if need > cap then begin
    let cap' = max need (2 * cap) in
    let grow a = Array.append a (Array.make (cap' - cap) (-1)) in
    st.dst <- grow st.dst;
    st.src <- grow st.src;
    st.nxt <- grow st.nxt;
    st.prv <- grow st.prv
  end

(* Allocate the pair (u -> v, v -> u); links are the caller's job. *)
let new_pair st u v =
  let h = st.len in
  ensure st (h + 2);
  st.src.(h) <- u;
  st.dst.(h) <- v;
  st.src.(h + 1) <- v;
  st.dst.(h + 1) <- u;
  st.len <- h + 2;
  Hashtbl.replace st.edges (key st u v) ();
  st.added <- (u, v) :: st.added;
  h

(* Insert half-edge [a] into the rotation of its source, right before [h]
   (which must share the source). *)
let insert_before st a h =
  let p = st.prv.(h) in
  st.nxt.(p) <- a;
  st.prv.(a) <- p;
  st.nxt.(a) <- h;
  st.prv.(h) <- a

(* Split the triangle (src h1, dst h1, dst h2) off the face of [h1],
   where h2 = face_next h1. Adds the chord (src h1, dst h2): the new
   half-edge a goes before h1 at its source, its reversal right after
   rev h2 at its destination, which rewires exactly the two face
   successors the split needs. Returns a. *)
let split st h1 =
  let h2 = face_next st h1 in
  let u = st.src.(h1) and w = st.dst.(h2) in
  let a = new_pair st u w in
  insert_before st a h1;
  let b = a + 1 in
  let g = h2 lxor 1 in
  let q = st.nxt.(g) in
  st.nxt.(g) <- b;
  st.prv.(b) <- g;
  st.nxt.(b) <- q;
  st.prv.(q) <- b;
  a

(* A bridge between components: insertion position is free (joining two
   faces of distinct components merges them at any corner, genus 0 is
   preserved either way), so each endpoint takes the slot before its
   first half-edge — or becomes its own 1-cycle when isolated. *)
let add_bridge st u v =
  let a = new_pair st u v in
  let attach h w =
    if st.first.(w) = -1 then begin
      st.nxt.(h) <- h;
      st.prv.(h) <- h;
      st.first.(w) <- h
    end
    else insert_before st h st.first.(w)
  in
  attach a u;
  attach (a + 1) v

let of_rotation r =
  let g = Rotation.graph r in
  let n = Gr.n g and m = Gr.m g in
  let cap = max 2 ((6 * n) + 16) in
  let st =
    {
      dst = Array.make cap (-1);
      src = Array.make cap (-1);
      nxt = Array.make cap (-1);
      prv = Array.make cap (-1);
      len = 2 * m;
      first = Array.make (max 1 n) (-1);
      edges = Hashtbl.create (max 16 (4 * m));
      nv = max 1 n;
      added = [];
    }
  in
  Gr.iter_edges g (fun u v ->
      let e = Gr.edge_index g u v in
      st.src.(2 * e) <- u;
      st.dst.(2 * e) <- v;
      st.src.((2 * e) + 1) <- v;
      st.dst.((2 * e) + 1) <- u;
      Hashtbl.replace st.edges (key st u v) ());
  (* Out-half-edge of v toward u: edge pairs are (min -> max, max -> min). *)
  let out v u =
    let e = Gr.edge_index g v u in
    if v < u then 2 * e else (2 * e) + 1
  in
  for v = 0 to n - 1 do
    let rot = Rotation.rotation r v in
    let deg = Array.length rot in
    if deg > 0 then begin
      st.first.(v) <- out v rot.(0);
      for i = 0 to deg - 1 do
        let h = out v rot.(i) and h' = out v rot.((i + 1) mod deg) in
        st.nxt.(h) <- h';
        st.prv.(h') <- h
      done
    end
  done;
  st

(* Pass 1: connect. One bridge from the first component to each other. *)
let connect st g =
  match Traverse.components g with
  | [] | [ _ ] -> ()
  | (rep :: _) :: rest ->
      List.iter
        (function
          | v :: _ -> add_bridge st rep v
          | [] -> ())
        rest
  | [] :: _ -> ()

(* Pass 2: biconnect. Walk every rotation once; whenever two consecutive
   darts lead into different biconnected components, the chord between
   their heads is guaranteed fresh (it would otherwise have merged the
   blocks already) and splitting it off merges exactly those two blocks:
   every u-w path runs through the shared cut vertex, so the union-find
   over block ids stays exact as edges arrive. *)
let biconnect st g =
  let bc = Bicon.decompose g in
  let bridges = List.length st.added in
  let uf = Unionfind.create (bc.Bicon.n_components + bridges + 1) in
  (* Block id per half-edge pair (index h / 2), grown alongside. *)
  let blk = ref (Array.make (max 1 (st.len / 2)) (-1)) in
  let blk_get p = if p < Array.length !blk then !blk.(p) else -1 in
  let blk_set p b =
    let cap = Array.length !blk in
    if p >= cap then
      blk := Array.append !blk (Array.make (max cap (p + 1 - cap)) (-1));
    !blk.(p) <- b
  in
  Gr.iter_edges g (fun u v ->
      let e = Gr.edge_index g u v in
      blk_set e bc.Bicon.comp_of_edge.(e));
  (* Bridges from pass 1 were appended after the graph's own pairs, in
     order: give each a fresh singleton block id. *)
  List.iteri
    (fun i _ -> blk_set (Gr.m g + i) (bc.Bicon.n_components + i))
    (List.rev st.added);
  for c = 0 to st.nv - 1 do
    let d0 = if c < Array.length st.first then st.first.(c) else -1 in
    if d0 >= 0 && st.nxt.(d0) <> d0 then begin
      let d = ref d0 in
      let continue = ref true in
      while !continue do
        let dn = st.nxt.(!d) in
        let b1 = Unionfind.find uf (blk_get (!d / 2))
        and b2 = Unionfind.find uf (blk_get (dn / 2)) in
        if b1 <> b2 then begin
          (* split at (head !d) -> c, whose face continues c -> head dn *)
          let a = split st (!d lxor 1) in
          ignore (Unionfind.union uf b1 b2);
          blk_set (a / 2) (Unionfind.find uf b1)
        end;
        d := dn;
        if !d = d0 then continue := false
      done
    end
  done

(* Pass 3: triangulate every face. Faces are simple cycles after pass 2,
   so the NetworkX-style moving window applies: split (v1, v3) off the
   front of the face, or — when that chord already exists elsewhere —
   split (v2, v4) instead, which interleaves with it on the face cycle
   and therefore cannot also be present in a planar graph. *)
let triangulate_faces st =
  let seen = ref (Array.make (max 1 st.len) false) in
  let seen_get h = h < Array.length !seen && !seen.(h) in
  let seen_set h =
    let cap = Array.length !seen in
    if h >= cap then
      seen := Array.append !seen (Array.make (max cap (h + 1 - cap)) false);
    !seen.(h) <- true
  in
  let h = ref 0 in
  while !h < st.len do
    if not (seen_get !h) then begin
      let h1 = ref !h in
      let h2 = ref (face_next st !h1) in
      let h3 = ref (face_next st !h2) in
      while st.dst.(!h3) <> st.src.(!h1) do
        let v1 = st.src.(!h1) and v3 = st.dst.(!h2) in
        if not (has_edge st v1 v3) then begin
          let a = split st !h1 in
          seen_set !h1;
          seen_set !h2;
          seen_set (a + 1);
          h1 := a;
          h2 := !h3;
          h3 := face_next st !h2
        end
        else begin
          let v2 = st.src.(!h2) and v4 = st.dst.(!h3) in
          if has_edge st v2 v4 then
            failwith
              "Triangulate: internal error: both interleaving chords present";
          let a = split st !h2 in
          seen_set !h2;
          seen_set !h3;
          seen_set (a + 1);
          h2 := a;
          h3 := face_next st !h2
        end
      done;
      seen_set !h1;
      seen_set !h2;
      seen_set !h3
    end;
    incr h
  done

let finalize st r =
  let g = Rotation.graph r in
  let n = Gr.n g in
  let g' = Gr.of_edges ~n (Gr.edges g @ List.rev st.added) in
  let rot =
    Array.init n (fun v ->
        if st.first.(v) = -1 then [||]
        else begin
          let out = ref [] and d = ref st.first.(v) in
          let continue = ref true in
          while !continue do
            out := st.dst.(!d) :: !out;
            d := st.nxt.(!d);
            if !d = st.first.(v) then continue := false
          done;
          Array.of_list (List.rev !out)
        end)
  in
  (* The rings list every neighbor exactly once by construction, and the
     Euler gate just below re-checks the packaged system — skip [make]'s
     O(n + m) stamp validation. *)
  let r' = Rotation.unsafe_of_validated g' rot in
  if not (Rotation.is_planar_embedding r') then
    failwith "Triangulate: internal error: fill edges broke planarity";
  if n >= 3 && Gr.m g' <> (3 * n) - 6 then
    failwith "Triangulate: internal error: result is not maximal planar";
  let vmask = Array.make (max 1 (Gr.m g')) false in
  List.iter (fun (u, v) -> vmask.(Gr.edge_index g' u v) <- true) st.added;
  {
    graph = g';
    rotation = r';
    source = r;
    vmask;
    vcount = List.length st.added;
  }

let make r =
  if not (Rotation.is_planar_embedding r) then
    invalid_arg "Triangulate.make: rotation system is not planar";
  let g = Rotation.graph r in
  let st = of_rotation r in
  connect st g;
  if Gr.n g >= 3 then begin
    biconnect st g;
    triangulate_faces st
  end;
  finalize st r

let graph t = t.graph
let rotation t = t.rotation
let source t = t.source
let virtual_count t = t.vcount

let is_virtual t u v =
  let e = Gr.edge_index t.graph u v in
  t.vmask.(e)

let virtual_mask t = t.vmask

let pp ppf t =
  Format.fprintf ppf "triangulation (n=%d, m=%d, %d virtual of %d)"
    (Gr.n t.graph) (Gr.m t.graph) t.vcount (Gr.m t.graph)
