(** Planarity-preserving triangulation of an embedded graph.

    The geometry pipeline (DESIGN.md §14) starts here: a rotation system —
    the embedder's or the LR kernel's output — is completed to a {e maximal}
    planar graph whose every face is a triangle, because that is the input
    the Schnyder-wood coordinate construction ({!Schnyder}) requires. The
    completion happens in three planarity-preserving passes on a mutable
    half-edge copy of the rotation:

    + {e connect}: components beyond the first are attached with one
      bridge edge each (any insertion point keeps genus 0);
    + {e biconnect}: at every vertex, rotation-consecutive neighbors lying
      in different biconnected components are joined, which is always a
      fresh edge (an existing edge would already have merged the blocks)
      and leaves every face a simple cycle;
    + {e triangulate}: each face of length [> 3] is split by fan diagonals,
      shifting the fan apex by one when the wanted chord already exists on
      the far side of the face (the two candidate chords interleave on the
      face cycle, so at most one of them can be present in a planar graph).

    Every edge added by any pass is {e virtual}: it exists so that the
    triangulation is well-formed, carries no capacity in the original
    network, and is tagged so that the routing layer ({!Route}) never
    traverses or reports it. The original graph's edges and the cyclic
    order of its rotation survive verbatim — the input rotation is the
    restriction of the output rotation to the original edges — so a
    straight-line drawing of the triangulation restricts to a straight-line
    drawing of the input embedding.

    The accepted result is re-validated with the face-tracing Euler check
    (the same discipline as the LR kernel): an internal inconsistency
    raises rather than silently emitting a bad triangulation. *)

type t
(** A triangulation of an embedded input graph, with its virtual-edge
    tags. *)

val make : Rotation.t -> t
(** [make r] triangulates the embedded graph of [r].

    For [n >= 3] the result is a maximal planar graph ([3n - 6] edges,
    every face a triangle, connected even if the input was not). For
    [n <= 2] there is nothing to triangulate: the result is the input
    graph (plus a connecting virtual edge when [n = 2] and the vertices
    are isolated), and {!graph} simply echoes it.

    @raise Invalid_argument if [r] is not a planar rotation system
    (genus > 0). *)

val graph : t -> Gr.t
(** The triangulated graph: the input vertices, the input edges, and the
    virtual fill edges. *)

val rotation : t -> Rotation.t
(** The planar rotation system of {!graph}. Restricted to the input
    edges it coincides with the input rotation (same cyclic orders). *)

val source : t -> Rotation.t
(** The input rotation system, as given to {!make}. *)

val virtual_count : t -> int
(** Number of virtual (added) edges: [Gr.m (graph t) - Gr.m] of the
    input. *)

val is_virtual : t -> int -> int -> bool
(** [is_virtual t u v] is [true] iff [{u, v}] is an edge of {!graph} that
    was added by the triangulation (i.e. is not an input edge).
    @raise Not_found if [{u, v}] is not an edge of {!graph}. *)

val virtual_mask : t -> bool array
(** Per-edge tags indexed by {!Gr.edge_index} of {!graph}: [true] for
    virtual fill edges. The array is owned by [t]; callers must not
    mutate it. *)

val pp : Format.formatter -> t -> unit
(** One-line human summary: vertex, edge and virtual-edge counts. *)
