(** Incremental planar embedding under edge churn.

    Maintains a genus-0 rotation system of a changing edge set over a
    fixed vertex universe without re-running the planarity kernel from
    scratch on every update:

    - {b insert, fast path}: if the endpoints already share a face of the
      current embedding, the new edge is spliced into that face in time
      proportional to the faces around the smaller-degree endpoint — no
      kernel run at all.
    - {b insert, slow path}: otherwise only the affected biconnected
      components (tracked conservatively in a union-find-with-relations
      over edge slots) are re-fed through {!Planarity.embed} as one small
      graph, and the fresh rotation is merged back in place. Rejection
      (the edge would make the graph non-planar) leaves the state
      untouched.
    - {b delete}: O(degree) unsplicing — a plane embedding minus an edge
      is still plane. Component records go stale-conservative and are
      re-tightened by scoped re-decomposition, amortized O(1) per
      delete.

    See DESIGN.md §15 for the data structure and the correctness
    argument for merge-back. *)

type t

(** Outcome of {!insert}. *)
type update =
  | Fast  (** spliced into a shared face; no kernel run *)
  | Linked  (** endpoints were in different connected components *)
  | Reembedded of int
      (** scoped kernel re-run over this many edges, accepted *)
  | Rejected  (** edge would break planarity; state unchanged *)
  | Duplicate  (** edge already present; state unchanged *)

type stats = {
  mutable fast : int;
  mutable linked : int;
  mutable reembedded : int;
  mutable rejected : int;
  mutable duplicates : int;
  mutable deletes : int;
  mutable missing : int;  (** deletes of absent edges *)
  mutable rescopes : int;  (** scoped re-decompositions after deletes *)
  mutable kernel_edges : int;  (** edges fed back through the kernel *)
  mutable face_steps : int;  (** darts visited by fast-path face walks *)
}

val create : ?kernel:Planarity.kernel -> Gr.t -> t
(** Embed [g] from scratch and start maintaining it.
    @raise Invalid_argument if [g] is not planar. *)

val of_rotation : ?kernel:Planarity.kernel -> Rotation.t -> t
(** Start from an existing embedding (kept verbatim).
    @raise Invalid_argument if it is not genus 0. *)

val insert : t -> int -> int -> update
(** [insert t u v] adds the edge [{u, v}] if doing so keeps the graph
    planar, returning how it was accommodated.
    @raise Invalid_argument on out-of-range or equal endpoints. *)

val delete : t -> int -> int -> bool
(** [delete t u v] removes the edge if present; [false] if absent. *)

val mem : t -> int -> int -> bool
val n : t -> int

val m : t -> int
(** Live edges currently embedded. *)

val live_edges : t -> (int * int) list

val rotation : t -> Rotation.t
(** Materialize the current embedding as an immutable {!Rotation.t}
    (O(n + m); uses the validated-path fast constructor). *)

val validate : t -> bool
(** Full Euler re-check of the maintained embedding (test hook). *)

val kernel : t -> Planarity.kernel
val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
