(* Union-find with relations: a disjoint-set forest over a growable
   universe where every root carries a payload ("relation") that is
   combined by a user merge function exactly when two sets join.

   The incremental maintainer keeps one node per biconnected component;
   the payload is the component's interval edge-set plus churn counters.
   Components are born (fresh), merged (insertions create cycles), and
   abandoned (scoped re-decompositions replace a stale root with fresh
   exact ones) — the universe only ever grows, which is what keeps every
   operation amortized near-constant: splitting is never needed because
   the maintainer re-scopes instead. *)

type 'a t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable payload : 'a option array;  (* Some at roots, None elsewhere. *)
  mutable len : int;
  merge : 'a -> 'a -> 'a;  (* winner's payload first; result kept at root *)
}

let create ?(capacity = 16) ~merge () =
  let capacity = max 1 capacity in
  {
    parent = Array.make capacity (-1);
    rank = Array.make capacity 0;
    payload = Array.make capacity None;
    len = 0;
    merge;
  }

let length t = t.len

let ensure t =
  if t.len >= Array.length t.parent then begin
    let cap = 2 * Array.length t.parent in
    let parent = Array.make cap (-1)
    and rank = Array.make cap 0
    and payload = Array.make cap None in
    Array.blit t.parent 0 parent 0 t.len;
    Array.blit t.rank 0 rank 0 t.len;
    Array.blit t.payload 0 payload 0 t.len;
    t.parent <- parent;
    t.rank <- rank;
    t.payload <- payload
  end

let fresh t p =
  ensure t;
  let i = t.len in
  t.parent.(i) <- i;
  t.rank.(i) <- 0;
  t.payload.(i) <- Some p;
  t.len <- i + 1;
  i

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let same t x y = find t x = find t y

let get t x =
  match t.payload.(find t x) with
  | Some p -> p
  | None -> assert false (* payload is maintained at every root *)

let set t x p = t.payload.(find t x) <- Some p

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then rx
  else begin
    let rx, ry = if t.rank.(rx) < t.rank.(ry) then (ry, rx) else (rx, ry) in
    t.parent.(ry) <- rx;
    if t.rank.(rx) = t.rank.(ry) then t.rank.(rx) <- t.rank.(rx) + 1;
    (match (t.payload.(rx), t.payload.(ry)) with
    | Some a, Some b -> t.payload.(rx) <- Some (t.merge a b)
    | _ -> assert false);
    t.payload.(ry) <- None;
    rx
  end

(* Abandon a root: its payload is dropped so stale component records can
   be garbage collected after a scoped re-decomposition replaced them.
   The node keeps resolving (to itself) but must not be referenced by any
   live slot afterwards — the maintainer rewrites slot -> node links in
   the same pass. *)
let abandon t x = t.payload.(find t x) <- None
