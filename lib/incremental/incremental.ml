(* Dynamic maintenance of a planar rotation system under edge churn.

   The maintained state is a mutable half-edge store over the fixed vertex
   set [0 .. n-1]: edge slot [e] owns darts [2e] (u -> v) and [2e+1]
   (v -> u); [rnext]/[rprev] link each vertex's out-darts into its cyclic
   clockwise ring. The face-routing permutation of Rotation is implicit:
   [face_next d = rnext.(d lxor 1)], so face walks never materialize
   anything. The invariant held between every two operations is that the
   rings form a genus-0 rotation system of the current live edge set.

   Updates:
   - insert, fast path: if the endpoints share a face of the current
     embedding, the new darts are spliced into that face's two corners in
     O(total length of the faces at the smaller-degree endpoint) — the
     kernel never runs.
   - insert, slow path: otherwise the affected biconnected components
     (everything along one endpoint-to-endpoint path, by the maintained
     conservative component records) are re-fed through the planarity
     kernel as one small graph; on acceptance the component's fresh
     rotation is merged back into the global rings in place (non-scope
     darts keep their relative cyclic order, the scope's darts take the
     kernel's), on rejection the state is untouched.
   - delete: O(degree) unsplicing — removing an edge from a plane
     embedding merges its two sides and stays plane, so no kernel run is
     needed for correctness. What deletion does break is the component
     records: union-find cannot split, so records go stale-conservative
     (a stored component is always a union of true biconnected
     components) and are re-tightened by a scoped Tarjan re-decomposition
     once a record has shed as many edges as it retains (amortized O(1)
     per delete).

   Component records live in a union-find-with-relations keyed by slots;
   each root's relation is an interval edge-set of its live slots plus a
   staleness counter. Connectivity is tracked by a merge-only vertex
   union-find, equally conservative: "different components" is always
   true, "same component" is re-checked by the slow path's BFS (whose
   failure downgrades the insert to a cheap cross-component link). *)

type payload = { edges : Intervalset.t; mutable scoured : int }

type stats = {
  mutable fast : int;
  mutable linked : int;
  mutable reembedded : int;
  mutable rejected : int;
  mutable duplicates : int;
  mutable deletes : int;
  mutable missing : int;
  mutable rescopes : int;
  mutable kernel_edges : int;
  mutable face_steps : int;
}

type update = Fast | Linked | Reembedded of int | Rejected | Duplicate

type t = {
  n : int;
  kernel : Planarity.kernel;
  mutable cap : int;  (* edge slots allocated *)
  mutable dst : int array;  (* 2*cap: head of each dart; -1 = free slot *)
  mutable rnext : int array;  (* 2*cap: ring successor around the source *)
  mutable rprev : int array;
  first_out : int array;  (* n: one out-dart per vertex, or -1 *)
  deg : int array;
  mutable live : int;  (* live edges *)
  edge_tbl : (int, int) Hashtbl.t;  (* min*n+max -> slot *)
  mutable free : int list;
  mutable next_slot : int;
  comps : payload Relations.t;
  mutable slot_comp : int array;  (* cap: Relations node per slot *)
  conn : Unionfind.t;
  (* scratch (stamped, reused across operations) *)
  mutable dart_stamp : int array;  (* 2*cap *)
  mutable stamp : int;
  vmark : int array;  (* n *)
  vdata : int array;  (* n: BFS parent dart / local vertex id *)
  mutable vstamp : int;
  queue : int array;  (* n *)
  stats : stats;
}

let n t = t.n
let m t = t.live
let stats t = t.stats
let kernel t = t.kernel

let fresh_stats () =
  {
    fast = 0;
    linked = 0;
    reembedded = 0;
    rejected = 0;
    duplicates = 0;
    deletes = 0;
    missing = 0;
    rescopes = 0;
    kernel_edges = 0;
    face_steps = 0;
  }

let key t u v = if u < v then (u * t.n) + v else (v * t.n) + u
let mem t u v = u <> v && Hashtbl.mem t.edge_tbl (key t u v)

(* The dart w -> x of the existing edge {w, x}. *)
let dart_to t w x =
  let e = Hashtbl.find t.edge_tbl (key t w x) in
  if t.dst.(2 * e) = x then 2 * e else (2 * e) + 1

let dart_src t d = t.dst.(d lxor 1)
let face_next t d = t.rnext.(d lxor 1)

(* --- slot allocation ------------------------------------------------- *)

let grow t =
  let cap = 2 * t.cap in
  let dst = Array.make (2 * cap) (-1)
  and rnext = Array.make (2 * cap) (-1)
  and rprev = Array.make (2 * cap) (-1)
  and dart_stamp = Array.make (2 * cap) 0
  and slot_comp = Array.make cap (-1) in
  Array.blit t.dst 0 dst 0 (2 * t.cap);
  Array.blit t.rnext 0 rnext 0 (2 * t.cap);
  Array.blit t.rprev 0 rprev 0 (2 * t.cap);
  Array.blit t.dart_stamp 0 dart_stamp 0 (2 * t.cap);
  Array.blit t.slot_comp 0 slot_comp 0 t.cap;
  t.dst <- dst;
  t.rnext <- rnext;
  t.rprev <- rprev;
  t.dart_stamp <- dart_stamp;
  t.slot_comp <- slot_comp;
  t.cap <- cap

let alloc_slot t u v =
  let e =
    match t.free with
    | e :: rest ->
        t.free <- rest;
        e
    | [] ->
        if t.next_slot >= t.cap then grow t;
        let e = t.next_slot in
        t.next_slot <- e + 1;
        e
  in
  t.dst.(2 * e) <- v;
  t.dst.((2 * e) + 1) <- u;
  Hashtbl.replace t.edge_tbl (key t u v) e;
  t.deg.(u) <- t.deg.(u) + 1;
  t.deg.(v) <- t.deg.(v) + 1;
  t.live <- t.live + 1;
  e

let free_slot t e =
  let u = t.dst.((2 * e) + 1) and v = t.dst.(2 * e) in
  Hashtbl.remove t.edge_tbl (key t u v);
  t.dst.(2 * e) <- -1;
  t.dst.((2 * e) + 1) <- -1;
  t.deg.(u) <- t.deg.(u) - 1;
  t.deg.(v) <- t.deg.(v) - 1;
  t.live <- t.live - 1;
  t.free <- e :: t.free

(* --- ring primitives -------------------------------------------------- *)

let ring_insert_lonely t v d =
  t.rnext.(d) <- d;
  t.rprev.(d) <- d;
  t.first_out.(v) <- d

let ring_insert_after t dref d =
  let nx = t.rnext.(dref) in
  t.rnext.(dref) <- d;
  t.rprev.(d) <- dref;
  t.rnext.(d) <- nx;
  t.rprev.(nx) <- d

let ring_remove t v d =
  if t.rnext.(d) = d then t.first_out.(v) <- -1
  else begin
    t.rnext.(t.rprev.(d)) <- t.rnext.(d);
    t.rprev.(t.rnext.(d)) <- t.rprev.(d);
    if t.first_out.(v) = d then t.first_out.(v) <- t.rnext.(d)
  end

(* --- construction ----------------------------------------------------- *)

let payload_merge a b =
  Intervalset.union_into ~dst:a.edges ~src:b.edges;
  a.scoured <- a.scoured + b.scoured;
  a

let of_rotation ?(kernel = Planarity.default_kernel) r =
  let g = Rotation.graph r in
  let n = Gr.n g in
  if not (Rotation.is_planar_embedding r) then
    invalid_arg "Incremental.of_rotation: rotation is not a planar embedding";
  let m0 = Gr.m g in
  let cap = max 8 (max m0 (3 * n)) in
  let t =
    {
      n;
      kernel;
      cap;
      dst = Array.make (2 * cap) (-1);
      rnext = Array.make (2 * cap) (-1);
      rprev = Array.make (2 * cap) (-1);
      first_out = Array.make (max 1 n) (-1);
      deg = Array.make (max 1 n) 0;
      live = 0;
      edge_tbl = Hashtbl.create (max 16 (2 * m0));
      free = [];
      next_slot = 0;
      comps = Relations.create ~merge:payload_merge ();
      slot_comp = Array.make cap (-1);
      conn = Unionfind.create (max 1 n);
      dart_stamp = Array.make (2 * cap) 0;
      stamp = 0;
      vmark = Array.make (max 1 n) 0;
      vdata = Array.make (max 1 n) (-1);
      vstamp = 0;
      queue = Array.make (max 1 n) 0;
      stats = fresh_stats ();
    }
  in
  (* Slot e = dense edge index e, so the initial component edge sets are
     long runs. *)
  for e = 0 to m0 - 1 do
    let (a, b) = Gr.edge_of_index g e in
    ignore (alloc_slot t a b);
    ignore (Unionfind.union t.conn a b)
  done;
  for v = 0 to n - 1 do
    let order = Rotation.rotation r v in
    let deg = Array.length order in
    if deg > 0 then begin
      let prev = ref (dart_to t v order.(0)) in
      t.first_out.(v) <- !prev;
      for i = 1 to deg - 1 do
        let d = dart_to t v order.(i) in
        t.rnext.(!prev) <- d;
        t.rprev.(d) <- !prev;
        prev := d
      done;
      t.rnext.(!prev) <- t.first_out.(v);
      t.rprev.(t.first_out.(v)) <- !prev
    end
  done;
  let dec = Bicon.decompose g in
  for c = 0 to dec.Bicon.n_components - 1 do
    let es = Intervalset.create ~capacity:4 () in
    Bicon.iter_component_edges dec c (fun e -> Intervalset.add es e);
    let node = Relations.fresh t.comps { edges = es; scoured = 0 } in
    Bicon.iter_component_edges dec c (fun e -> t.slot_comp.(e) <- node)
  done;
  t

let create ?kernel g = of_rotation ?kernel (Planarity.embed_exn ?kernel g)

(* --- materialization --------------------------------------------------- *)

let live_edges t =
  Hashtbl.fold
    (fun _ e acc -> (t.dst.((2 * e) + 1), t.dst.(2 * e)) :: acc)
    t.edge_tbl []

let rotation t =
  let g = Gr.of_edges ~n:t.n (live_edges t) in
  let rot =
    Array.init t.n (fun v ->
        let deg = t.deg.(v) in
        if deg = 0 then [||]
        else begin
          let out = Array.make deg (-1) in
          let d = ref t.first_out.(v) in
          for i = 0 to deg - 1 do
            out.(i) <- t.dst.(!d);
            d := t.rnext.(!d)
          done;
          out
        end)
  in
  (* Every ring lists each neighbor exactly once by the store's invariant:
     skip make's O(n + m) stamp validation (the satellite fast path). *)
  Rotation.unsafe_of_validated g rot

let validate t = Rotation.is_planar_embedding (rotation t)

(* --- component record maintenance -------------------------------------- *)

(* Mint fresh exact component records for the slots of [gloc] (a local
   graph whose vertex i is global [old_of_local.(i)]): one Relations node
   per biconnected component of [gloc], each holding the sorted interval
   set of its global slots. Callers abandon the stale roots themselves. *)
let refresh_comps t gloc old_of_local =
  let dec = Bicon.decompose gloc in
  for c = 0 to dec.Bicon.n_components - 1 do
    let k = Bicon.n_component_edges dec c in
    let slots = Array.make (max 1 k) 0 in
    let i = ref 0 in
    Bicon.iter_component_edges dec c (fun de ->
        let (la, lb) = Gr.edge_of_index gloc de in
        slots.(!i) <-
          Hashtbl.find t.edge_tbl (key t old_of_local.(la) old_of_local.(lb));
        incr i);
    let slots = if k = Array.length slots then slots else Array.sub slots 0 k in
    Array.sort (fun (a : int) b -> compare a b) slots;
    let es = Intervalset.create ~capacity:4 () in
    Array.iter (Intervalset.add es) slots;
    let node = Relations.fresh t.comps { edges = es; scoured = 0 } in
    Array.iter (fun sl -> t.slot_comp.(sl) <- node) slots
  done

(* Local graph of a slot list (plus optionally one extra edge): assigns
   local ids by vertex stamp; returns (gloc, old_of_local). *)
let build_local t slots extra =
  t.vstamp <- t.vstamp + 1;
  let s = t.vstamp in
  let nloc = ref 0 in
  let verts = ref [] in
  let lid w =
    if t.vmark.(w) <> s then begin
      t.vmark.(w) <- s;
      t.vdata.(w) <- !nloc;
      verts := w :: !verts;
      incr nloc
    end;
    t.vdata.(w)
  in
  let count =
    List.length slots + match extra with Some _ -> 1 | None -> 0
  in
  let las = Array.make (max 1 count) 0 and lbs = Array.make (max 1 count) 0 in
  let idx = ref 0 in
  let push a b =
    let a, b = if a < b then (a, b) else (b, a) in
    las.(!idx) <- a;
    lbs.(!idx) <- b;
    incr idx
  in
  List.iter
    (fun sl -> push (lid t.dst.((2 * sl) + 1)) (lid t.dst.(2 * sl)))
    slots;
  (match extra with None -> () | Some (u, v) -> push (lid u) (lid v));
  let k = !nloc in
  let old_of_local = Array.make (max 1 k) (-1) in
  List.iteri (fun i w -> old_of_local.(k - 1 - i) <- w) !verts;
  (* Slots are distinct edges (and the extra pair is absent by the
     caller's duplicate check), so the packed keys are unique: a
     monomorphic int sort yields the normalized, lex-sorted,
     duplicate-free array the unchecked CSR constructor wants —
     the generic of_edges sort was the hottest non-kernel cost of a
     scoped re-run. *)
  let keys = Array.init count (fun i -> (las.(i) * k) + lbs.(i)) in
  Array.sort (fun (a : int) b -> compare a b) keys;
  let edge_arr = Array.map (fun key -> (key / k, key mod k)) keys in
  (Gr.of_normalized_sorted_unchecked ~n:k edge_arr, old_of_local)

(* Re-tighten one stale component record: scoped Tarjan re-decomposition
   of its live slots, fresh exact records, stale root abandoned. *)
let rescope t root =
  t.stats.rescopes <- t.stats.rescopes + 1;
  let pl = Relations.get t.comps root in
  let slots = Intervalset.fold pl.edges ~init:[] ~f:(fun acc sl -> sl :: acc) in
  (match slots with
  | [] -> ()
  | _ ->
      let gloc, old_of_local = build_local t slots None in
      refresh_comps t gloc old_of_local);
  Relations.abandon t.comps root

(* --- insertion --------------------------------------------------------- *)

(* Cross-component (or isolated-endpoint) insertion: the two plane pieces
   are joined by one bridge, spliced into an arbitrary corner at each
   endpoint — always planar. *)
let link_new t u v =
  let d0u = t.first_out.(u) and d0v = t.first_out.(v) in
  let e = alloc_slot t u v in
  let p = 2 * e and q = (2 * e) + 1 in
  if d0u < 0 then ring_insert_lonely t u p else ring_insert_after t d0u p;
  if d0v < 0 then ring_insert_lonely t v q else ring_insert_after t d0v q;
  let es = Intervalset.create ~capacity:1 () in
  Intervalset.add es e;
  let node = Relations.fresh t.comps { edges = es; scoured = 0 } in
  t.slot_comp.(e) <- node;
  ignore (Unionfind.union t.conn u v);
  t.stats.linked <- t.stats.linked + 1;
  Linked

(* Walk the faces incident to [a] looking for a dart whose head is [b].
   Returns (d0, dF): an out-dart of [a] and a dart into [b] on the same
   face, or (-1, -1). Each face at [a] is walked once (dart stamps). *)
let find_common_face t a b =
  t.stamp <- t.stamp + 1;
  let s = t.stamp in
  let found_d0 = ref (-1) and found_df = ref (-1) in
  let d0 = ref t.first_out.(a) in
  let start = !d0 in
  let continue = ref (start >= 0) in
  while !continue do
    if t.dart_stamp.(!d0) <> s then begin
      (* Walk the face containing the out-dart !d0. *)
      let d = ref !d0 in
      let walking = ref true in
      while !walking do
        t.dart_stamp.(!d) <- s;
        t.stats.face_steps <- t.stats.face_steps + 1;
        if t.dst.(!d) = b && !found_d0 < 0 then begin
          found_d0 := !d0;
          found_df := !d
        end;
        d := face_next t !d;
        if !d = !d0 then walking := false
      done
    end;
    if !found_d0 >= 0 then continue := false
    else begin
      d0 := t.rnext.(!d0);
      if !d0 = start then continue := false
    end
  done;
  (!found_d0, !found_df)

(* Fast path: splice the new edge into the face that contains the corner
   before [d0] at its source and the corner after [dF] at [dF]'s head,
   splitting that face in two. Also merges the component records along
   the walked boundary segment (the new cycle passes through exactly
   those blocks). *)
let splice_into_face t u v d0 df =
  let a = dart_src t d0 and b = t.dst.(df) in
  (* Merge component records along the boundary segment d0 .. df before
     the splice changes the face. *)
  let root = ref (Relations.find t.comps t.slot_comp.(d0 / 2)) in
  let d = ref d0 in
  let continue = ref true in
  while !continue do
    root := Relations.union t.comps !root (t.slot_comp.(!d / 2));
    if !d = df then continue := false else d := face_next t !d
  done;
  let e = alloc_slot t u v in
  let p = dart_to t a b and q = dart_to t b a in
  (* p goes right before d0 in a's ring (works for degree 1, where
     rprev d0 = d0), q right after df's reversal in b's ring; both new
     corners then lie on the face being split. *)
  ring_insert_after t (t.rprev.(d0)) p;
  ring_insert_after t (df lxor 1) q;
  let pl = Relations.get t.comps !root in
  Intervalset.add pl.edges e;
  t.slot_comp.(e) <- Relations.find t.comps !root;
  ignore (Unionfind.union t.conn u v);
  t.stats.fast <- t.stats.fast + 1;
  Fast

(* BFS over the live rings from u towards v; returns true and leaves
   parent darts in vdata if v was reached. *)
let bfs_reaches t u v =
  t.vstamp <- t.vstamp + 1;
  let s = t.vstamp in
  t.vmark.(u) <- s;
  t.vdata.(u) <- -1;
  t.queue.(0) <- u;
  let head = ref 0 and tail = ref 1 in
  let found = ref false in
  while (not !found) && !head < !tail do
    let w = t.queue.(!head) in
    incr head;
    let d0 = t.first_out.(w) in
    if d0 >= 0 then begin
      let d = ref d0 in
      let continue = ref true in
      while !continue do
        let x = t.dst.(!d) in
        if t.vmark.(x) <> s then begin
          t.vmark.(x) <- s;
          t.vdata.(x) <- !d;
          if x = v then found := true
          else begin
            t.queue.(!tail) <- x;
            incr tail
          end
        end;
        d := t.rnext.(!d);
        if !d = d0 then continue := false
      done
    end
  done;
  !found

(* Slow path: scope = the union of the (conservative) component records
   along one u-v path, re-fed through the kernel together with the new
   edge. On acceptance the fresh rotation replaces the scope's darts in
   the global rings (non-scope darts keep their old cyclic order behind
   them — gluing whole blocks into one corner preserves genus 0); the
   component records are re-minted exactly. On rejection nothing has
   been written. *)
let reembed_scope t u v =
  (* Path slots from the BFS parent darts. *)
  let roots = Hashtbl.create 16 in
  let x = ref v in
  while !x <> u do
    let d = t.vdata.(!x) in
    let r = Relations.find t.comps t.slot_comp.(d / 2) in
    if not (Hashtbl.mem roots r) then Hashtbl.replace roots r ();
    x := dart_src t d
  done;
  let scope = ref [] and scope_n = ref 0 in
  Hashtbl.iter
    (fun r () ->
      Intervalset.iter (Relations.get t.comps r).edges (fun sl ->
          scope := sl :: !scope;
          incr scope_n))
    roots;
  let gloc, old_of_local = build_local t !scope (Some (u, v)) in
  t.stats.kernel_edges <- t.stats.kernel_edges + Gr.m gloc;
  match Planarity.embed ~kernel:t.kernel gloc with
  | Planarity.Nonplanar ->
      t.stats.rejected <- t.stats.rejected + 1;
      Rejected
  | Planarity.Planar rloc ->
      let e = alloc_slot t u v in
      (* Mark the scope's slots (including the new edge). *)
      t.stamp <- t.stamp + 1;
      let s = t.stamp in
      List.iter (fun sl -> t.dart_stamp.(2 * sl) <- s) !scope;
      t.dart_stamp.(2 * e) <- s;
      (* Adding (u, v) merges exactly the biconnected components along
         the path, so the merged record scope + e is as exact as its
         inputs — the interval sets are unioned in O(runs) with no
         re-decomposition (delete-staleness is inherited and repaired by
         the rescope trigger). *)
      let acc = ref None and scoured = ref 0 in
      Hashtbl.iter
        (fun r () ->
          let pl = Relations.get t.comps r in
          scoured := !scoured + pl.scoured;
          (match !acc with
          | None -> acc := Some pl.edges
          | Some dst -> Intervalset.union_into ~dst ~src:pl.edges);
          Relations.abandon t.comps r)
        roots;
      let es = match !acc with Some es -> es | None -> assert false in
      Intervalset.add es e;
      let node = Relations.fresh t.comps { edges = es; scoured = !scoured } in
      List.iter (fun sl -> t.slot_comp.(sl) <- node) !scope;
      t.slot_comp.(e) <- node;
      (* Merge the fresh rotation back into the rings in place. The ring
         walk that separates scope darts from the rest also caches each
         scope dart under its head vertex (stamped scratch), so the
         kernel-ordered pass resolves neighbor -> dart without hashing. *)
      let nloc = Array.length old_of_local in
      for i = 0 to nloc - 1 do
        let w = old_of_local.(i) in
        t.vstamp <- t.vstamp + 1;
        let vs = t.vstamp in
        let others = ref [] and n_others = ref 0 in
        let d0 = t.first_out.(w) in
        if d0 >= 0 then begin
          let d = ref d0 in
          let continue = ref true in
          while !continue do
            if t.dart_stamp.(2 * (!d / 2)) = s then begin
              let x = t.dst.(!d) in
              t.vmark.(x) <- vs;
              t.vdata.(x) <- !d
            end
            else begin
              others := !d :: !others;
              incr n_others
            end;
            d := t.rnext.(!d);
            if !d = d0 then continue := false
          done
        end;
        (* The new edge's darts are allocated but not yet in any ring. *)
        if w = u then begin
          t.vmark.(v) <- vs;
          t.vdata.(v) <- 2 * e
        end
        else if w = v then begin
          t.vmark.(u) <- vs;
          t.vdata.(u) <- (2 * e) + 1
        end;
        let others = List.rev !others in
        let fresh_order = Rotation.rotation rloc i in
        let nf = Array.length fresh_order in
        let len = nf + !n_others in
        let seq = Array.make len (-1) in
        Array.iteri
          (fun j lx ->
            let x = old_of_local.(lx) in
            assert (t.vmark.(x) = vs);
            seq.(j) <- t.vdata.(x))
          fresh_order;
        List.iteri (fun j d -> seq.(nf + j) <- d) others;
        for j = 0 to len - 1 do
          let d = seq.(j) and nx = seq.((j + 1) mod len) in
          t.rnext.(d) <- nx;
          t.rprev.(nx) <- d
        done;
        t.first_out.(w) <- seq.(0)
      done;
      ignore (Unionfind.union t.conn u v);
      t.stats.reembedded <- t.stats.reembedded + 1;
      Reembedded (!scope_n + 1)

let insert t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n || u = v then
    invalid_arg "Incremental.insert: bad endpoints";
  if Hashtbl.mem t.edge_tbl (key t u v) then begin
    t.stats.duplicates <- t.stats.duplicates + 1;
    Duplicate
  end
  else if t.deg.(u) = 0 || t.deg.(v) = 0 then link_new t u v
  else begin
    (* Search from the endpoint with the smaller degree. *)
    let a, b = if t.deg.(u) <= t.deg.(v) then (u, v) else (v, u) in
    let d0, df = find_common_face t a b in
    if d0 >= 0 then splice_into_face t u v d0 df
    else if not (Unionfind.same t.conn u v) then link_new t u v
    else if not (bfs_reaches t u v) then
      (* Connectivity record was stale (deletions disconnect silently):
         this is really a cross-component insert. *)
      link_new t u v
    else reembed_scope t u v
  end

(* --- deletion ----------------------------------------------------------- *)

let delete t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n || u = v then
    invalid_arg "Incremental.delete: bad endpoints";
  match Hashtbl.find_opt t.edge_tbl (key t u v) with
  | None ->
      t.stats.missing <- t.stats.missing + 1;
      false
  | Some e ->
      let p = 2 * e and q = (2 * e) + 1 in
      ring_remove t (dart_src t p) p;
      ring_remove t (dart_src t q) q;
      let root = Relations.find t.comps t.slot_comp.(e) in
      let pl = Relations.get t.comps root in
      Intervalset.remove pl.edges e;
      pl.scoured <- pl.scoured + 1;
      free_slot t e;
      let remaining = Intervalset.cardinal pl.edges in
      if remaining = 0 then Relations.abandon t.comps root
      else if pl.scoured >= max 16 remaining then rescope t root;
      t.stats.deletes <- t.stats.deletes + 1;
      true

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>inserts: %d fast, %d linked, %d reembedded, %d rejected, %d \
     duplicate@ deletes: %d (%d missing)@ rescopes: %d@ kernel edges: %d@ \
     face-walk steps: %d@]"
    s.fast s.linked s.reembedded s.rejected s.duplicates s.deletes s.missing
    s.rescopes s.kernel_edges s.face_steps
