(** Interval sets: sets of non-negative ints stored as sorted, disjoint,
    non-adjacent [(lo, hi)] runs in flat arrays.

    This is the incremental maintainer's {e edge-set-per-component}
    representation (after the interval-set idiom used for mergeable
    per-group state in constraint compilers): edge slots are allocated
    densely, so a biconnected component's slot set is a few long runs —
    O(runs) union when two components merge, O(cardinal) enumeration
    when a component is re-embedded, O(log runs) membership. *)

type t

val create : ?capacity:int -> unit -> t
(** An empty set; [capacity] pre-sizes the run arrays. *)

val cardinal : t -> int
(** Number of covered integers, in O(1). *)

val n_intervals : t -> int
(** Number of stored runs (a fragmentation measure), in O(1). *)

val mem : t -> int -> bool
(** Membership, in O(log runs). *)

val add : t -> int -> unit
(** Insert one element, coalescing with adjacent runs.
    O(runs) worst case (array shift), O(1) amortized for the dense
    ascending allocation pattern of edge slots.
    @raise Invalid_argument on a negative element. *)

val remove : t -> int -> unit
(** Remove one element (no-op if absent), splitting a run if needed. *)

val union_into : dst:t -> src:t -> unit
(** Destructive union: [dst] becomes [dst ∪ src] by a linear merge of the
    run lists. [src] must not be used afterwards — the maintainer calls
    this exactly once per union-find root merge. *)

val iter : t -> (int -> unit) -> unit
(** Enumerate elements in increasing order; O(cardinal). *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a

val clear : t -> unit
val intervals : t -> (int * int) list
val pp : Format.formatter -> t -> unit
