(* Reproducible edge-churn traces for the incremental maintainer.

   A trace is built against a planar "pool" graph: a held-out fraction of
   its edges starts absent, and each update either re-inserts a random
   absent pool edge or deletes a random present one. Because every subset
   of a planar edge set is planar, a pure within-pool trace never forces
   a rejection — which makes it the right workload for benchmarking the
   accept paths and a clean differential-testing substrate. A nonzero
   [fresh_prob] additionally proposes random non-pool pairs, exercising
   the rejection path. *)

type op = Insert of int * int | Delete of int * int

type trace = { n : int; initial : (int * int) list; ops : op array }

let initial_graph tr = Gr.of_edges ~n:tr.n tr.initial

let make ~seed ~updates ~insert_pct ?(fresh_prob = 0.0) ?(hold = 0.3) g =
  let n = Gr.n g in
  let m = Gr.m g in
  if m = 0 && fresh_prob = 0.0 then
    invalid_arg "Churn.make: empty pool and no fresh pairs";
  if insert_pct < 0 || insert_pct > 100 then
    invalid_arg "Churn.make: insert_pct out of [0, 100]";
  let rng = Random.State.make [| seed; 0x6368; 0x75726e |] in
  let pool = Array.init m (Gr.edge_of_index g) in
  for i = m - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  let key u v = if u < v then (u * n) + v else (v * n) + u in
  let pool_tbl = Hashtbl.create (max 16 (2 * m)) in
  Array.iter (fun (u, v) -> Hashtbl.replace pool_tbl (key u v) ()) pool;
  let held =
    if m = 0 then 0
    else min (m - 1) (max 1 (int_of_float (float_of_int m *. hold)))
  in
  (* Shuffled, so the held-out prefix is a uniform sample. *)
  let absent = Array.init (max 1 m) (fun i -> i) in
  let present = Array.init (max 1 m) (fun i -> i) in
  let absent_n = ref held and present_n = ref (m - held) in
  for i = 0 to m - held - 1 do
    present.(i) <- held + i
  done;
  let initial = ref [] in
  for i = held to m - 1 do
    initial := pool.(i) :: !initial
  done;
  let fresh_pair () =
    (* A uniform non-edge proposal; falls back to whatever pair comes up
       (a duplicate insert is a harmless no-op for the maintainer). *)
    let u = ref 0 and v = ref 0 and tries = ref 0 in
    let ok = ref false in
    while not !ok do
      u := Random.State.int rng n;
      v := Random.State.int rng n;
      incr tries;
      if !u <> !v && (!tries > 64 || not (Hashtbl.mem pool_tbl (key !u !v)))
      then ok := true
    done;
    (!u, !v)
  in
  let ops =
    Array.init updates (fun _ ->
        let want_insert =
          if !present_n = 0 then true
          else if !absent_n = 0 && fresh_prob = 0.0 then false
          else Random.State.int rng 100 < insert_pct
        in
        if want_insert then begin
          let use_fresh =
            n >= 2
            && fresh_prob > 0.0
            && (!absent_n = 0 || Random.State.float rng 1.0 < fresh_prob)
          in
          if use_fresh then begin
            let u, v = fresh_pair () in
            Insert (u, v)
          end
          else begin
            let j = Random.State.int rng !absent_n in
            let idx = absent.(j) in
            decr absent_n;
            absent.(j) <- absent.(!absent_n);
            present.(!present_n) <- idx;
            incr present_n;
            let u, v = pool.(idx) in
            Insert (u, v)
          end
        end
        else begin
          let j = Random.State.int rng !present_n in
          let idx = present.(j) in
          decr present_n;
          present.(j) <- present.(!present_n);
          absent.(!absent_n) <- idx;
          incr absent_n;
          let u, v = pool.(idx) in
          Delete (u, v)
        end)
  in
  { n; initial = !initial; ops }

let apply inc = function
  | Insert (u, v) -> ignore (Incremental.insert inc u v)
  | Delete (u, v) -> ignore (Incremental.delete inc u v)

let replay inc tr = Array.iter (apply inc) tr.ops

let pp_op ppf = function
  | Insert (u, v) -> Format.fprintf ppf "+(%d,%d)" u v
  | Delete (u, v) -> Format.fprintf ppf "-(%d,%d)" u v
