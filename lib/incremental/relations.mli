(** Union-find with relations: disjoint sets over a growable universe,
    with a mergeable payload maintained at every set root.

    Path compression and union by rank give amortized near-constant
    operations; the payload merge function runs exactly once per actual
    root merge. The universe only grows — the incremental maintainer
    handles splits by {e abandoning} stale roots and minting fresh exact
    ones from a scoped re-decomposition, never by un-merging. *)

type 'a t

val create : ?capacity:int -> merge:('a -> 'a -> 'a) -> unit -> 'a t
(** [create ~merge ()] is an empty structure. [merge kept absorbed] is
    called on the surviving root's payload and the absorbed root's
    payload; its result becomes the surviving root's payload. *)

val fresh : 'a t -> 'a -> int
(** Mint a new singleton set with the given payload; returns its node id. *)

val length : 'a t -> int
(** Number of nodes ever minted. *)

val find : 'a t -> int -> int
val same : 'a t -> int -> int -> bool

val get : 'a t -> int -> 'a
(** Payload at the root of [x]'s set. *)

val set : 'a t -> int -> 'a -> unit
(** Replace the payload at the root of [x]'s set. *)

val union : 'a t -> int -> int -> int
(** Merge two sets (payloads combined by [merge]); returns the surviving
    root. *)

val abandon : 'a t -> int -> unit
(** Drop the payload at [x]'s root so it can be collected. The caller
    must stop referencing the set afterwards (used when a scoped
    re-decomposition replaces a stale component record with fresh ones). *)
