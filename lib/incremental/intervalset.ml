(* Sets of non-negative ints as sorted, disjoint, non-adjacent [lo, hi]
   ranges in a pair of growable flat arrays.

   Edge slots are allocated densely and freed rarely relative to how often
   whole components are enumerated, so a component's edge set is a handful
   of long runs: iteration is O(cardinal) with no boxing, membership is a
   binary search over the runs, and set union (component merge) is a
   linear merge of two runs lists rather than of two element lists. *)

type t = {
  mutable lo : int array;
  mutable hi : int array;
  mutable len : int;  (* intervals in use *)
  mutable card : int;  (* covered integers *)
}

let create ?(capacity = 4) () =
  let capacity = max 1 capacity in
  { lo = Array.make capacity 0; hi = Array.make capacity 0; len = 0; card = 0 }

let cardinal t = t.card
let n_intervals t = t.len

let clear t =
  t.len <- 0;
  t.card <- 0

let intervals t = List.init t.len (fun i -> (t.lo.(i), t.hi.(i)))

let iter t f =
  for i = 0 to t.len - 1 do
    for x = t.lo.(i) to t.hi.(i) do
      f x
    done
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun x -> acc := f !acc x);
  !acc

(* Greatest i with lo.(i) <= x, or -1. *)
let rank t x =
  let lo = ref 0 and hi = ref (t.len - 1) and ans = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.lo.(mid) <= x then begin
      ans := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !ans

let mem t x =
  let i = rank t x in
  i >= 0 && x <= t.hi.(i)

let ensure t extra =
  let need = t.len + extra in
  if need > Array.length t.lo then begin
    let cap = max need (2 * Array.length t.lo) in
    let lo = Array.make cap 0 and hi = Array.make cap 0 in
    Array.blit t.lo 0 lo 0 t.len;
    Array.blit t.hi 0 hi 0 t.len;
    t.lo <- lo;
    t.hi <- hi
  end

(* Insert a fresh interval at index i, shifting the tail right. *)
let insert_at t i l h =
  ensure t 1;
  Array.blit t.lo i t.lo (i + 1) (t.len - i);
  Array.blit t.hi i t.hi (i + 1) (t.len - i);
  t.lo.(i) <- l;
  t.hi.(i) <- h;
  t.len <- t.len + 1

let remove_at t i =
  Array.blit t.lo (i + 1) t.lo i (t.len - i - 1);
  Array.blit t.hi (i + 1) t.hi i (t.len - i - 1);
  t.len <- t.len - 1

let add t x =
  if x < 0 then invalid_arg "Intervalset.add: negative";
  let i = rank t x in
  if i >= 0 && x <= t.hi.(i) then ()
  else begin
    let glue_left = i >= 0 && t.hi.(i) = x - 1 in
    let glue_right = i + 1 < t.len && t.lo.(i + 1) = x + 1 in
    (if glue_left && glue_right then begin
       t.hi.(i) <- t.hi.(i + 1);
       remove_at t (i + 1)
     end
     else if glue_left then t.hi.(i) <- x
     else if glue_right then t.lo.(i + 1) <- x
     else insert_at t (i + 1) x x);
    t.card <- t.card + 1
  end

let remove t x =
  let i = rank t x in
  if i < 0 || x > t.hi.(i) then ()
  else begin
    let l = t.lo.(i) and h = t.hi.(i) in
    (if l = h then remove_at t i
     else if x = l then t.lo.(i) <- l + 1
     else if x = h then t.hi.(i) <- h - 1
     else begin
       (* Split: [l, x-1] stays, [x+1, h] is inserted after it. *)
       t.hi.(i) <- x - 1;
       insert_at t (i + 1) (x + 1) h
     end);
    t.card <- t.card - 1
  end

(* Destructive union: after the call [dst] holds the union and [src] must
   no longer be used (component payloads are merged exactly once, when
   their union-find roots merge). Linear in the two interval counts. *)
let union_into ~dst ~src =
  if src.len > 0 then begin
    let la = Array.sub dst.lo 0 dst.len and ha = Array.sub dst.hi 0 dst.len in
    let alen = dst.len in
    dst.len <- 0;
    dst.card <- 0;
    ensure dst (alen + src.len);
    let i = ref 0 and j = ref 0 in
    let push l h =
      if dst.len > 0 && l <= dst.hi.(dst.len - 1) + 1 then begin
        if h > dst.hi.(dst.len - 1) then begin
          dst.card <- dst.card + (h - dst.hi.(dst.len - 1));
          dst.hi.(dst.len - 1) <- h
        end
      end
      else begin
        ensure dst 1;
        dst.lo.(dst.len) <- l;
        dst.hi.(dst.len) <- h;
        dst.len <- dst.len + 1;
        dst.card <- dst.card + (h - l + 1)
      end
    in
    while !i < alen || !j < src.len do
      if
        !j >= src.len
        || (!i < alen && la.(!i) <= src.lo.(!j))
      then begin
        push la.(!i) ha.(!i);
        incr i
      end
      else begin
        push src.lo.(!j) src.hi.(!j);
        incr j
      end
    done
  end

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  for i = 0 to t.len - 1 do
    if i > 0 then Format.fprintf ppf " ";
    if t.lo.(i) = t.hi.(i) then Format.fprintf ppf "%d" t.lo.(i)
    else Format.fprintf ppf "%d-%d" t.lo.(i) t.hi.(i)
  done;
  Format.fprintf ppf "}@]"
