(** Reproducible edge-churn traces over a planar pool graph, for
    benchmarking and differential-testing {!Incremental}. *)

type op = Insert of int * int | Delete of int * int

type trace = {
  n : int;  (** vertex universe *)
  initial : (int * int) list;  (** edges present before the first update *)
  ops : op array;
}

val make :
  seed:int ->
  updates:int ->
  insert_pct:int ->
  ?fresh_prob:float ->
  ?hold:float ->
  Gr.t ->
  trace
(** [make ~seed ~updates ~insert_pct g] builds a trace over the edge pool
    of the (planar) graph [g]: a [hold] fraction (default 0.3) of the
    pool starts absent, then each update inserts a random absent pool
    edge with probability [insert_pct]% and deletes a random present one
    otherwise. With [fresh_prob = 0.] (the default) every insert is a
    pool edge, so a trace whose state stays within the pool never forces
    a planarity rejection; a positive [fresh_prob] mixes in random
    non-pool pairs to exercise the rejection path. Deterministic in
    [seed]. *)

val initial_graph : trace -> Gr.t

val apply : Incremental.t -> op -> unit

val replay : Incremental.t -> trace -> unit
(** Apply every op in order (results discarded; see
    {!Incremental.stats}). *)

val pp_op : Format.formatter -> op -> unit
