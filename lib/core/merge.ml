type kind = Pairwise | Star | Vertex_coordinated | Path_coordinated

type stats = {
  mutable pairwise : int;
  mutable star : int;
  mutable vertex_coordinated : int;
  mutable path_coordinated : int;
  mutable retired : int;
  mutable safety_checks : int;
  mutable calls : int;
  mutable final_parts_max : int;
  mutable iface_bits_shipped : int;
}

type t = {
  g : Gr.t;
  mode : Part.mode;
  checks : bool;
  cost : Costmodel.t;
  part_of : int array;
  parts : (int, Part.t) Hashtbl.t;
  mutable next_id : int;
  stats : stats;
}

let create g ~mode ~checks ~cost =
  {
    g;
    mode;
    checks;
    cost;
    part_of = Array.make (Gr.n g) (-1);
    parts = Hashtbl.create 64;
    next_id = 0;
    stats =
      {
        pairwise = 0;
        star = 0;
        vertex_coordinated = 0;
        path_coordinated = 0;
        retired = 0;
        safety_checks = 0;
        calls = 0;
        final_parts_max = 0;
        iface_bits_shipped = 0;
      };
  }

let part t id =
  match Hashtbl.find_opt t.parts id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Merge.part: no alive part %d" id)

let half_of t id =
  let p = part t id in
  List.concat_map
    (fun v ->
      List.filter_map
        (fun w -> if t.part_of.(w) <> id then Some (v, w) else None)
        (Array.to_list (Gr.neighbors t.g v)))
    p.Part.vertices

let run_checks t p =
  if t.checks then begin
    t.stats.safety_checks <- t.stats.safety_checks + 1;
    if not (Partition.induces_connected t.g p.Part.vertices) then
      failwith "Merge: invariant violation: part not connected";
    if
      (not p.Part.trivial)
      && not (Partition.complement_connected t.g p.Part.vertices)
    then
      failwith
        "Merge: safety violation: non-trivial part with disconnected \
         complement (Definition 3.1)"
  end

let install t ?(anchors = []) vertices =
  let id = t.next_id in
  t.next_id <- id + 1;
  List.iter (fun v -> t.part_of.(v) <- id) vertices;
  let half =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun w -> if t.part_of.(w) <> id then Some (v, w) else None)
          (Array.to_list (Gr.neighbors t.g v)))
      vertices
  in
  let classify v = t.part_of.(v) in
  let p = Part.create t.g ~mode:t.mode ~classify ~half ~id ~vertices ~anchors in
  Hashtbl.replace t.parts id p;
  run_checks t p;
  id

let fresh_part t ?anchors vertices =
  List.iter
    (fun v ->
      if t.part_of.(v) >= 0 then
        invalid_arg "Merge.fresh_part: vertex already assigned")
    vertices;
  install t ?anchors vertices

let member_adjacent_to t id x =
  let p = part t id in
  let found = ref None in
  List.iter
    (fun v -> if !found = None && Gr.mem_edge t.g v x then found := Some v)
    p.Part.vertices;
  match !found with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Merge: vertex %d is not adjacent to part %d" x id)

let connecting_edge t ~from_part ~to_part =
  let p = part t from_part in
  let rec scan = function
    | [] -> raise Not_found
    | v :: rest -> (
        let hit = ref None in
        Gr.iter_neighbors t.g v (fun w ->
            if !hit = None && t.part_of.(w) = to_part then hit := Some w);
        match !hit with Some w -> (v, w) | None -> scan rest)
  in
  scan p.Part.vertices

let adjacent_parts t id =
  let p = part t id in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun v ->
      Gr.iter_neighbors t.g v (fun w ->
          let q = t.part_of.(w) in
          if q >= 0 && q <> id then Hashtbl.replace seen q ()))
    p.Part.vertices;
  Hashtbl.fold (fun q () acc -> q :: acc) seen []

(* Charge: fold the part's compressed interface up its spanning tree to
   the leader, then route it from the leader along tree edges to the
   member adjacent to [x] and across the connecting edge. *)
let ship_to_vertex t ~from_part x =
  let p = part t from_part in
  let bits = p.Part.iface_bits in
  t.stats.iface_bits_shipped <- t.stats.iface_bits_shipped + bits;
  Costmodel.charge_aggregate t.cost ~root:p.Part.leader
    ~parent:(Part.parent_fn p) ~members:p.Part.vertices ~bits;
  let u = member_adjacent_to t from_part x in
  let down = List.rev (Part.path_to_leader p u) in
  Costmodel.charge_path t.cost (down @ [ x ]) ~bits

let ship_between t ~from_part ~to_part =
  let p = part t from_part and q = part t to_part in
  let bits = p.Part.iface_bits in
  t.stats.iface_bits_shipped <- t.stats.iface_bits_shipped + bits;
  Costmodel.charge_aggregate t.cost ~root:p.Part.leader
    ~parent:(Part.parent_fn p) ~members:p.Part.vertices ~bits;
  let (u, v) = connecting_edge t ~from_part ~to_part in
  let down = List.rev (Part.path_to_leader p u) in
  let up = Part.path_to_leader q v in
  Costmodel.charge_path t.cost (down @ up) ~bits

let merge t ?(anchors = []) ~kind ids =
  (match ids with
  | [] | [ _ ] -> invalid_arg "Merge.merge: need at least two parts"
  | _ -> ());
  let olds = List.map (part t) ids in
  let vertices = List.concat_map (fun p -> p.Part.vertices) olds in
  let anchors =
    List.sort_uniq compare
      (anchors @ List.concat_map (fun p -> p.Part.anchors) olds)
  in
  List.iter (fun id -> Hashtbl.remove t.parts id) ids;
  let id = install t ~anchors vertices in
  let p = part t id in
  (* Update instructions: the merge only rearranges (flips/permutes) the
     biconnected components touched by the new connections, so the
     instruction list is proportional to the interface summary, not to the
     part size; it is disseminated over the part tree. *)
  let word = Part.word t.g in
  Costmodel.charge_aggregate t.cost ~root:p.Part.leader
    ~parent:(Part.parent_fn p) ~members:p.Part.vertices
    ~bits:((2 * word) + p.Part.iface_bits);
  let s = t.stats in
  (match kind with
  | Pairwise -> s.pairwise <- s.pairwise + 1
  | Star -> s.star <- s.star + 1
  | Vertex_coordinated -> s.vertex_coordinated <- s.vertex_coordinated + 1
  | Path_coordinated -> s.path_coordinated <- s.path_coordinated + 1);
  id
