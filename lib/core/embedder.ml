type report = {
  n : int;
  m : int;
  bandwidth : int;
  leader : int;
  bfs_depth : int;
  rounds : int;
  phases : (string * int) list;
  total_bits : int;
  max_edge_bits : int;
  recursion_depth : int;
  recursion_calls : int;
  max_parts_at_restricted_merge : int;
  merges_pairwise : int;
  merges_star : int;
  merges_vertex : int;
  merges_path : int;
  retired_parts : int;
  safety_checks : int;
  iface_bits_shipped : int;
  metrics : Metrics.t;
}

type outcome = { rotation : Rotation.t option; report : report }

(* Rebuild a Traverse.bfs_tree from the distributed election's per-node
   results, so the decomposition works on the tree the nodes actually
   agreed on. *)
let tree_of_states g states =
  let n = Gr.n g in
  let root = states.(0).Proto.leader in
  let parent = Array.make n (-1) in
  let dist = Array.make n (-1) in
  for v = 0 to n - 1 do
    parent.(v) <- states.(v).Proto.parent;
    dist.(v) <- states.(v).Proto.dist
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare dist.(a) dist.(b)) order;
  { Traverse.root; parent; dist; order }

let branch_max_map cost f xs =
  let out = ref [] in
  Costmodel.branch_max cost
    (List.map (fun x () -> out := (x, f x) :: !out) xs);
  List.map (fun x -> List.assq x !out) xs

let run ?(config = Network.Config.default) ?(mode = Part.Faithful)
    ?(checks = false) ?base_size g =
  if Gr.n g = 0 then invalid_arg "Embedder.run: empty network";
  if not (Traverse.is_connected g) then
    invalid_arg "Embedder.run: the network must be connected";
  (* The embedder threads one metrics timeline through several protocol
     runs and the cost model, then checks bounds post-hoc — so it adopts
     the observer's metrics sink (or makes its own) and forwards only the
     sinks, never a per-run bounds request, to the protocols below. *)
  let observe = config.Network.Config.observe in
  let metrics =
    match Observe.metrics observe with Some m -> m | None -> Metrics.create g
  in
  let trace = Observe.trace observe in
  let sinks = Observe.make ~metrics ?trace () in
  let bandwidth =
    match config.Network.Config.bandwidth with
    | Some b -> b
    | None -> Network.default_bandwidth g
  in
  (* The per-protocol config: same engine knobs, the embedder's own
     sinks, the resolved bandwidth. *)
  let pconfig =
    {
      config with
      Network.Config.observe = sinks;
      bandwidth = Some bandwidth;
    }
  in
  let round_clock () = Metrics.rounds metrics in
  (* Phase 1 (real protocols): leader election + BFS tree, then computing
     n over the tree — the paper's O(D) preliminaries (Section 2). *)
  let r0 = Metrics.rounds metrics in
  let states =
    Trace.with_span trace "leader-election+bfs" ~clock:round_clock (fun () ->
        Proto.leader_bfs ~config:pconfig g)
  in
  Metrics.phase metrics "leader-election+bfs" (Metrics.rounds metrics - r0);
  let bt = tree_of_states g states in
  let leader = bt.Traverse.root in
  let word = Part.word g in
  let r1 = Metrics.rounds metrics in
  let n_counted =
    Trace.with_span trace "count-n" ~clock:round_clock (fun () ->
        if Gr.n g = 1 then 1
        else
          Proto.convergecast ~config:pconfig g
            ~parent:bt.Traverse.parent ~root:leader
            ~values:(Array.make (Gr.n g) 1)
            ~op:( + ) ~value_bits:word)
  in
  assert (n_counted = Gr.n g);
  Metrics.phase metrics "count-n" (Metrics.rounds metrics - r1);
  let cost =
    Costmodel.create ~bandwidth ?trace ~round_base:(Metrics.rounds metrics) g
      metrics
  in
  let st = Merge.create g ~mode ~checks ~cost in
  let rec_tree = Decompose.recursion_tree ?base_size g bt in
  Costmodel.note cost "recursion-depth" (Decompose.depth rec_tree);
  Costmodel.note cost "recursion-calls" (Decompose.count_calls rec_tree);
  let rotation =
    try
      let rec process level call =
        (* The decomposition bookkeeping of one call: subtree sizes
           (convergecast), the splitter walk and the P0 numbering, all on
           the subtree's own tree edges. *)
        Costmodel.span_open cost (Printf.sprintf "recurse.d%d" level);
        Costmodel.charge_aggregate cost ~root:call.Decompose.root
          ~parent:(fun v -> bt.Traverse.parent.(v))
          ~members:call.Decompose.vertices ~bits:word;
        Costmodel.advance cost call.Decompose.subtree_depth;
        let part =
          match call.Decompose.hanging with
          | [] -> Merge.fresh_part st call.Decompose.p0
          | hanging ->
              let in_sub = Hashtbl.create (List.length call.Decompose.vertices) in
              List.iter
                (fun v -> Hashtbl.replace in_sub v ())
                call.Decompose.vertices;
              let child_ids = branch_max_map cost (process (level + 1)) hanging in
              let outcome =
                Schedule.run st ~p0:call.Decompose.p0 ~hanging:child_ids
                  ~in_subtree:(Hashtbl.mem in_sub)
              in
              outcome.Schedule.final_part
        in
        Costmodel.span_close cost
          ~attrs:
            [
              ("vertices", List.length call.Decompose.vertices);
              ("hanging", List.length call.Decompose.hanging);
              ("subtree_depth", call.Decompose.subtree_depth);
            ]
          ();
        part
      in
      let top =
        Costmodel.phase cost "recursive-embedding" (fun () ->
            process 0 rec_tree)
      in
      let final = Merge.part st top in
      (* Extract the rotation every node now holds. In Economy mode the
         final embedding is computed once here (the paper's nodes held it
         all along; only this extraction is mode-dependent). *)
      let emb =
        match final.Part.emb with
        | Some e -> e
        | None -> (
            match Constrained.embed g ~part:final.Part.vertices ~half:[] with
            | Some e -> e
            | None -> raise (Part.Nonplanar_detected "final embedding failed"))
      in
      Some (Constrained.rotation_of_full emb g)
    with Part.Nonplanar_detected _ -> None
  in
  Metrics.add_rounds metrics (Costmodel.clock cost);
  let s = st.Merge.stats in
  let report =
    {
      n = Gr.n g;
      m = Gr.m g;
      bandwidth;
      leader;
      bfs_depth = Traverse.depth bt;
      rounds = Metrics.rounds metrics;
      phases = Metrics.phases metrics;
      total_bits = Metrics.total_bits metrics;
      max_edge_bits = Metrics.max_edge_bits metrics;
      recursion_depth = Decompose.depth rec_tree;
      recursion_calls = Decompose.count_calls rec_tree;
      max_parts_at_restricted_merge = s.Merge.final_parts_max;
      merges_pairwise = s.Merge.pairwise;
      merges_star = s.Merge.star;
      merges_vertex = s.Merge.vertex_coordinated;
      merges_path = s.Merge.path_coordinated;
      retired_parts = s.Merge.retired;
      safety_checks = s.Merge.safety_checks;
      iface_bits_shipped = s.Merge.iface_bits_shipped;
      metrics;
    }
  in
  { rotation; report }
