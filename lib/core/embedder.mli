(** The distributed planar embedding algorithm of Theorem 1.1 —
    the repository's core entry point.

    On a connected planar network with [n] nodes and diameter [D], the run
    elects the maximum-id node and builds a BFS tree with real
    message-passing protocols, decomposes the tree by the recursive
    embedding order of Section 4, merges partial embeddings per Section 5,
    and ends with every node holding the clockwise cyclic order of its
    incident edges in one fixed planar drawing. Round complexity is
    measured (real rounds for the protocol phases, the documented cost
    model for the orchestrated phases) and is expected to scale as
    [O(D·min{log n, D})]; the trivial baseline of {!Baseline} scales as
    [O(n + D)].

    Non-planar inputs are rejected: some partial embedding fails, which —
    because the maintained partition is safe (Definition 3.1) — certifies
    a forbidden minor. *)

type report = {
  n : int;
  m : int;
  bandwidth : int;  (** bits per edge per round. *)
  leader : int;
  bfs_depth : int;
  rounds : int;  (** total simulated rounds. *)
  phases : (string * int) list;
  total_bits : int;
  max_edge_bits : int;  (** E7: worst pairwise communication. *)
  recursion_depth : int;
  recursion_calls : int;
  max_parts_at_restricted_merge : int;  (** E6. *)
  merges_pairwise : int;
  merges_star : int;
  merges_vertex : int;
  merges_path : int;
  retired_parts : int;
  safety_checks : int;  (** E8: validated merges (checks mode only). *)
  iface_bits_shipped : int;
  metrics : Metrics.t;
      (** the run's full accounting — per-round records, per-directed-edge
          loads and bursts, the largest single message — for the {!Bounds}
          checker and the {!Trace} JSON journal. *)
}

type outcome = {
  rotation : Rotation.t option;  (** [None] iff the input is not planar. *)
  report : report;
}

val run :
  ?config:Network.Config.t ->
  ?mode:Part.mode ->
  ?checks:bool ->
  ?base_size:int ->
  Gr.t ->
  outcome
(** @raise Invalid_argument on an empty or disconnected network.
    [mode] defaults to [Faithful]; [checks] (default off) validates every
    merge against the safety invariants.

    Every engine knob rides in [config] ({!Network.Config.t}, default
    {!Network.Config.default}) and is forwarded to the phase-1 protocol
    runs ({!Network.exec}'s sharded round loop): results and the whole
    observation timeline are bit-identical for any [domains]/[epoch]
    value. A config bandwidth of [None] resolves to
    {!Network.default_bandwidth}.

    A fault plan in the config ({!Fault.plan}) subjects the run's real
    message-passing — the phase-1 leader election, BFS construction and
    convergecast — to the plan's drops, duplicates, reordering, delays
    and crash-restarts, with the protocols {!Reliable}-wrapped so the
    result is still exact; the recursion's cost-model phases are
    orchestrated, not message-passing, and proceed unchanged. Rounds and
    fault events land on the same metrics/trace timeline as the clean
    run ([distplanar chaos] is the command-line front end; DESIGN.md §9
    specifies the model). Incompatible with [domains > 1], as at the
    engine level.

    Observation goes through the config's one [observe] sink: a metrics
    sink there becomes the run's accounting (and is returned in the
    report; otherwise the embedder creates its own), and a trace sink
    makes the run decompose into named spans on one round timeline: the
    phase-1 protocols (per-round events from the simulator), one
    [recurse.d<level>] span per recursion call, and one [schedule.merge]
    span per merge schedule, with part/survivor counts as span
    attributes. A bounds request inside [observe] is ignored — the
    embedder spans several protocol runs plus the cost model, so check
    {!Bounds} post-hoc on the report's metrics. *)
