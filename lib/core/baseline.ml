type report = {
  n : int;
  m : int;
  bandwidth : int;
  leader : int;
  bfs_depth : int;
  rounds : int;
  phases : (string * int) list;
  total_bits : int;
  max_edge_bits : int;
}

type outcome = { rotation : Rotation.t option; report : report }

let run ?bandwidth g =
  if Gr.n g = 0 then invalid_arg "Baseline.run: empty network";
  if not (Traverse.is_connected g) then
    invalid_arg "Baseline.run: the network must be connected";
  let metrics = Metrics.create g in
  let bandwidth =
    match bandwidth with Some b -> b | None -> Network.default_bandwidth g
  in
  let r0 = Metrics.rounds metrics in
  let states =
    Proto.leader_bfs
      ~config:
        (Network.Config.make ~observe:(Observe.of_metrics metrics) ~bandwidth ())
      g
  in
  Metrics.phase metrics "leader-election+bfs" (Metrics.rounds metrics - r0);
  let leader = states.(0).Proto.leader in
  let parent = Array.map (fun s -> s.Proto.parent) states in
  let cost = Costmodel.create ~bandwidth g metrics in
  let word = Part.word g in
  let members = List.init (Gr.n g) (fun v -> v) in
  (* Upcast: every vertex ships its incident higher-neighbor edge list
     (each edge reported exactly once, 2 ids per edge). *)
  Costmodel.phase cost "gather-topology" (fun () ->
      Costmodel.charge_tree cost ~root:leader
        ~parent:(fun v -> parent.(v))
        ~members
        ~bits_of:(fun v ->
          let higher =
            Gr.fold_neighbors g v ~init:0 ~f:(fun acc w ->
                if w > v then acc + 1 else acc)
          in
          2 * word * higher));
  (* The leader solves planarity locally (free computation in CONGEST). *)
  let rotation =
    match Planarity.embed g with
    | Planarity.Planar r -> Some r
    | Planarity.Nonplanar -> None
  in
  (* Downcast: each vertex receives its own rotation (deg(v) ids); on a
     non-planar input the verdict alone is broadcast. *)
  Costmodel.phase cost "scatter-rotations" (fun () ->
      match rotation with
      | Some _ ->
          Costmodel.charge_tree cost ~root:leader
            ~parent:(fun v -> parent.(v))
            ~members
            ~bits_of:(fun v -> word * Gr.degree g v)
      | None ->
          Costmodel.charge_aggregate cost ~root:leader
            ~parent:(fun v -> parent.(v))
            ~members ~bits:1);
  Metrics.add_rounds metrics (Costmodel.clock cost);
  {
    rotation;
    report =
      {
        n = Gr.n g;
        m = Gr.m g;
        bandwidth;
        leader;
        bfs_depth =
          Array.fold_left (fun acc s -> max acc s.Proto.dist) 0 states;
        rounds = Metrics.rounds metrics;
        phases = Metrics.phases metrics;
        total_bits = Metrics.total_bits metrics;
        max_edge_bits = Metrics.max_edge_bits metrics;
      };
  }
