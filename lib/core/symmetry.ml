type grouping = { stars : (int * int list) list; paths : int list list }

let part_level_rounds = 4

let check_proper g colors =
  Gr.iter_edges g (fun u v ->
      if colors.(u) = colors.(v) then
        invalid_arg "Symmetry.compute: coloring is not proper")

(* Pointer of u: the smallest-colored neighbor with a color below u's own
   (ties on color broken by id). None at local color minima. *)
let pointer g colors u =
  Gr.fold_neighbors g u ~init:None ~f:(fun acc w ->
      if colors.(w) < colors.(u) then
        match acc with
        | Some b
          when colors.(b) < colors.(w)
               || (colors.(b) = colors.(w) && b < w) ->
            acc
        | Some _ | None -> Some w
      else acc)

let compute g ~colors =
  let n = Gr.n g in
  if Array.length colors <> n then invalid_arg "Symmetry.compute: bad colors";
  check_proper g colors;
  let ptr = Array.init n (pointer g colors) in
  (* Stage 1 — stars: every local color minimum grabs the nodes pointing
     at it, pruned to a pairwise non-adjacent ("independent") leaf set so
     the group induces a star. *)
  let in_star = Array.make n false in
  let stars = ref [] in
  for u = 0 to n - 1 do
    if ptr.(u) = None then begin
      let claimants =
        Array.to_list
          (Array.of_seq
             (Seq.filter
                (fun w -> ptr.(w) = Some u)
                (Array.to_seq (Gr.neighbors g u))))
      in
      (* Keep a maximal pairwise non-adjacent subset (greedy by id). *)
      let leaves =
        List.fold_left
          (fun kept w ->
            if List.exists (fun x -> Gr.mem_edge g x w) kept then kept
            else w :: kept)
          [] (List.sort compare claimants)
      in
      if leaves <> [] then begin
        in_star.(u) <- true;
        List.iter (fun w -> in_star.(w) <- true) leaves;
        stars := (u, List.rev leaves) :: !stars
      end
    end
  done;
  (* Stage 2 — color-monotone paths over the remaining nodes: recompute
     pointers within the remainder; each node has out-degree <= 1, and
     keeping only the smallest-id in-pointer per node yields disjoint
     paths. Colors strictly decrease along pointers, so each path is
     color-monotone. *)
  let ptr2 =
    Array.init n (fun u ->
        if in_star.(u) then None
        else
          match pointer g colors u with
          | Some w when not in_star.(w) -> Some w
          | Some _ | None -> (
              (* The preferred target joined a star; settle for any other
                 smaller-colored free neighbor. *)
              Gr.fold_neighbors g u ~init:None ~f:(fun acc w ->
                  if
                    (not in_star.(w))
                    && colors.(w) < colors.(u)
                    && (match acc with
                       | Some b -> colors.(w) < colors.(b)
                       | None -> true)
                  then Some w
                  else acc)))
  in
  let chosen_in = Array.make n (-1) in
  for u = 0 to n - 1 do
    match ptr2.(u) with
    | Some w ->
        if chosen_in.(w) < 0 || u < chosen_in.(w) then chosen_in.(w) <- u
    | None -> ()
  done;
  (* Keep the pointer edge u -> ptr2(u) only if u is w's chosen in-node. *)
  let kept_out =
    Array.init n (fun u ->
        match ptr2.(u) with
        | Some w when chosen_in.(w) = u -> Some w
        | Some _ | None -> None)
  in
  let has_kept_in = Array.make n false in
  Array.iter (function Some w -> has_kept_in.(w) <- true | None -> ()) kept_out;
  let paths = ref [] in
  for u = 0 to n - 1 do
    if (not in_star.(u)) && not has_kept_in.(u) then begin
      (* u heads a maximal pointer path. *)
      let rec follow v acc =
        match kept_out.(v) with
        | Some w -> follow w (w :: acc)
        | None -> List.rev acc
      in
      paths := follow u [ u ] :: !paths
    end
  done;
  { stars = List.rev !stars; paths = List.rev !paths }

let check g ~colors grouping =
  let n = Gr.n g in
  let ok = ref true in
  let assigned = Array.make n 0 in
  List.iter
    (fun (c, leaves) ->
      if List.length leaves < 1 then ok := false;
      assigned.(c) <- assigned.(c) + 1;
      List.iter (fun w -> assigned.(w) <- assigned.(w) + 1) leaves;
      (* Induces a star: center adjacent to all leaves, leaves pairwise
         non-adjacent. *)
      List.iter (fun w -> if not (Gr.mem_edge g c w) then ok := false) leaves;
      List.iteri
        (fun i w ->
          List.iteri
            (fun j x -> if i < j && Gr.mem_edge g w x then ok := false)
            leaves)
        leaves)
    grouping.stars;
  List.iter
    (fun path ->
      (match path with [] -> ok := false | _ -> ());
      List.iter (fun v -> assigned.(v) <- assigned.(v) + 1) path;
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            if not (Gr.mem_edge g a b) then ok := false;
            if colors.(b) >= colors.(a) then ok := false;
            pairs rest
        | [ _ ] | [] -> ()
      in
      pairs path)
    grouping.paths;
  (* Exact cover of all nodes. *)
  Array.iter (fun c -> if c <> 1 then ok := false) assigned;
  !ok
