type report = {
  rounds : int;
  phases : (string * int) list;
  boruvka_phases : int;
  total_bits : int;
  max_edge_bits : int;
}

(* Weight with tie-breaking: distinct keys make the MST unique. *)
let key g ~weight u v =
  let (a, b) = Gr.normalize_edge u v in
  (weight a b, Gr.edge_index g a b)

let kruskal ~weight g =
  let edges =
    List.sort
      (fun (u1, v1) (u2, v2) ->
        compare (key g ~weight u1 v1) (key g ~weight u2 v2))
      (Gr.edges g)
  in
  let uf = Unionfind.create (Gr.n g) in
  List.filter (fun (u, v) -> Unionfind.union uf u v) edges

let run ?bandwidth ~weight g =
  if Gr.n g = 0 then invalid_arg "Mst.run: empty network";
  if not (Traverse.is_connected g) then
    invalid_arg "Mst.run: the network must be connected";
  let n = Gr.n g in
  let metrics = Metrics.create g in
  let bandwidth =
    match bandwidth with Some b -> b | None -> Network.default_bandwidth g
  in
  (* Preliminaries: real leader election + BFS (nodes learn n, ids). *)
  let r0 = Metrics.rounds metrics in
  let _states =
    Proto.leader_bfs
      ~config:
        (Network.Config.make ~observe:(Observe.of_metrics metrics) ~bandwidth ())
      g
  in
  Metrics.phase metrics "leader-election+bfs" (Metrics.rounds metrics - r0);
  let cost = Costmodel.create ~bandwidth g metrics in
  let word = Part.word g in
  let uf = Unionfind.create n in
  let mst = ref [] in
  let boruvka_phases = ref 0 in
  Costmodel.phase cost "boruvka" (fun () ->
      while Unionfind.count uf > 1 do
        incr boruvka_phases;
        if !boruvka_phases > 2 * n then failwith "Mst.run: no progress";
        (* Fragment spanning trees: BFS over the MST edges chosen so far. *)
        let forest = Gr.of_edges ~n !mst in
        let frag_tree = Hashtbl.create 16 in
        (* root vertex -> bfs tree of the forest *)
        let groups = Unionfind.groups uf in
        Hashtbl.iter
          (fun root members ->
            let _ = members in
            Hashtbl.replace frag_tree root (Traverse.bfs forest root))
          groups;
        (* Every fragment finds its minimum-weight outgoing edge by a
           convergecast over its fragment tree (each member contributes its
           best incident outgoing edge: 3 words — the edge and its weight);
           fragments work in parallel. *)
        let mwoe = Hashtbl.create 16 in
        Gr.iter_edges g (fun u v ->
            if not (Unionfind.same uf u v) then begin
              let k = key g ~weight u v in
              let consider root =
                match Hashtbl.find_opt mwoe root with
                | Some (k', _) when k' <= k -> ()
                | Some _ | None -> Hashtbl.replace mwoe root (k, (u, v))
              in
              consider (Unionfind.find uf u);
              consider (Unionfind.find uf v)
            end);
        Costmodel.branch_max cost
          (Hashtbl.fold
             (fun root members acc ->
               (fun () ->
                 let bt = Hashtbl.find frag_tree root in
                 Costmodel.charge_aggregate cost ~root
                   ~parent:(fun v -> bt.Traverse.parent.(v))
                   ~members ~bits:(3 * word))
               :: acc)
             groups []);
        (* Merge along the chosen edges, then broadcast the new fragment
           identities back down the (new) fragment trees. *)
        let chosen = Hashtbl.fold (fun _ (_, e) acc -> e :: acc) mwoe [] in
        List.iter
          (fun (u, v) ->
            if Unionfind.union uf u v then mst := Gr.normalize_edge u v :: !mst)
          chosen;
        let forest' = Gr.of_edges ~n !mst in
        Costmodel.branch_max cost
          (Hashtbl.fold
             (fun root members acc ->
               (fun () ->
                 let bt = Traverse.bfs forest' root in
                 Costmodel.charge_aggregate cost ~root
                   ~parent:(fun v -> bt.Traverse.parent.(v))
                   ~members ~bits:word)
               :: acc)
             (Unionfind.groups uf) [])
      done);
  Metrics.add_rounds metrics (Costmodel.clock cost);
  let report =
    {
      rounds = Metrics.rounds metrics;
      phases = Metrics.phases metrics;
      boruvka_phases = !boruvka_phases;
      total_bits = Metrics.total_bits metrics;
      max_edge_bits = Metrics.max_edge_bits metrics;
    }
  in
  (List.rev !mst, report)
