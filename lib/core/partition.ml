let induces_connected g vs =
  match vs with
  | [] -> true
  | _ ->
      let (h, _, _) = Gr.induced g vs in
      Traverse.is_connected h

let is_trivial g vs =
  let (h, _, _) = Gr.induced g vs in
  Traverse.is_connected h && Gr.m h = Gr.n h - 1

let complement_connected g vs =
  let in_part = Hashtbl.create (List.length vs) in
  List.iter (fun v -> Hashtbl.replace in_part v ()) vs;
  let rest =
    Gr.fold_vertices g ~init:[] ~f:(fun acc v ->
        if Hashtbl.mem in_part v then acc else v :: acc)
  in
  induces_connected g rest

let disjoint parts =
  let seen = Hashtbl.create 64 in
  List.for_all
    (List.for_all (fun v ->
         if Hashtbl.mem seen v then false
         else begin
           Hashtbl.replace seen v ();
           true
         end))
    parts

let is_safe g parts =
  disjoint parts
  && List.for_all (induces_connected g) parts
  && List.for_all
       (fun p -> is_trivial g p || complement_connected g p)
       parts

let half_edges g ~part_of id =
  let out = ref [] in
  Array.iteri
    (fun v p ->
      if p = id then
        Gr.iter_neighbors g v (fun w ->
            if part_of.(w) <> id then out := (v, w) :: !out))
    part_of;
  List.rev !out

let merge_is_safe g parts i j =
  let arr = Array.of_list parts in
  let k = Array.length arr in
  if i < 0 || j < 0 || i >= k || j >= k || i = j then
    invalid_arg "Partition.merge_is_safe: bad indices";
  let merged = arr.(i) @ arr.(j) in
  let rest =
    List.filteri (fun idx _ -> idx <> i && idx <> j) parts
  in
  is_safe g (merged :: rest)
