type outcome = {
  final_part : int;
  parts_at_restricted_merge : int;
  retired_parts : int;
}

(* Classification of a part's current connections within one call:
   which P0 positions it touches, which other alive parts, and whether it
   has edges leaving the call's subtree (G \ H). *)
type conn = { positions : int list; others : int list; gh : bool }

let classify st ~p0_pos ~in_subtree id =
  let half = Merge.half_of st id in
  let pos = Hashtbl.create 4 and oth = Hashtbl.create 4 in
  let gh = ref false in
  List.iter
    (fun (_u, v) ->
      match Hashtbl.find_opt p0_pos v with
      | Some i -> Hashtbl.replace pos i ()
      | None ->
          if not (in_subtree v) then gh := true
          else begin
            let q = st.Merge.part_of.(v) in
            if q >= 0 then Hashtbl.replace oth q ()
          end)
    half;
  {
    positions = List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) pos []);
    others = Hashtbl.fold (fun q () acc -> q :: acc) oth [];
    gh = !gh;
  }

(* Combined pipelined shipping of several interface payloads, each along
   its own path: the routes run concurrently, so the round cost is the
   longest path plus the worst per-edge backlog, while the edge-bit tallies
   are exact. *)
let charge_concurrent st shipments =
  let cost = st.Merge.cost in
  let g = st.Merge.g in
  let loads = Hashtbl.create 64 in
  let longest = ref 0 in
  List.iter
    (fun (path, bits) ->
      (match path with
      | [] | [ _ ] -> ()
      | first :: rest ->
          let prev = ref first in
          List.iter
            (fun v ->
              if not (Gr.mem_edge g !prev v) then raise Not_found;
              let key = (!prev, v) in
              let sofar = try Hashtbl.find loads key with Not_found -> 0 in
              Hashtbl.replace loads key (sofar + bits);
              prev := v)
            rest);
      longest := max !longest (List.length path - 1))
    shipments;
  let max_load = Hashtbl.fold (fun _ l acc -> max l acc) loads 0 in
  Hashtbl.iter (fun (u, v) l -> Costmodel.note_dir_bits cost ~u ~v l) loads;
  let b = Costmodel.bandwidth cost in
  if !longest > 0 || max_load > 0 then
    Costmodel.advance cost (!longest + ((max_load + b - 1) / b))

let run st ~p0 ~hanging ~in_subtree =
  let cost = st.Merge.cost in
  let word = Part.word st.Merge.g in
  st.Merge.stats.Merge.calls <- st.Merge.stats.Merge.calls + 1;
  Costmodel.span_open cost "schedule.merge";
  (* Step 0/1: create the trivial P0 part and number its vertices (the
     numbering travels down the path). *)
  let p0_part = Merge.fresh_part st p0 in
  Costmodel.charge_path cost p0 ~bits:word;
  let p0_pos = Hashtbl.create (List.length p0) in
  List.iteri (fun i v -> Hashtbl.replace p0_pos v i) p0;
  let p0_arr = Array.of_list p0 in
  let alive = Hashtbl.create (List.length hanging) in
  List.iter (fun id -> Hashtbl.replace alive id ()) hanging;
  let retired = ref [] in
  let retire id =
    Hashtbl.remove alive id;
    retired := id :: !retired;
    st.Merge.stats.Merge.retired <- st.Merge.stats.Merge.retired + 1
  in
  let sidelined = Hashtbl.create 8 in
  let alive_ids () = Hashtbl.fold (fun id () acc -> id :: acc) alive [] in
  let max_depth ids =
    List.fold_left (fun acc id -> max acc (Merge.part st id).Part.depth) 0 ids
  in
  (* Step 2: two functionally identical iterations. *)
  for _iter = 1 to 2 do
    let participants =
      List.filter (fun id -> not (Hashtbl.mem sidelined id)) (alive_ids ())
    in
    if participants <> [] then begin
      (* (a) lowest P0-connection of each part: one aggregation per part,
         all parts in parallel. *)
      Costmodel.branch_max cost
        (List.map
           (fun id () ->
             let p = Merge.part st id in
             Costmodel.charge_aggregate cost ~root:p.Part.leader
               ~parent:(Part.parent_fn p) ~members:p.Part.vertices ~bits:word)
           participants);
      let low = Hashtbl.create 16 in
      List.iter
        (fun id ->
          match (classify st ~p0_pos ~in_subtree id).positions with
          | i :: _ -> Hashtbl.replace low id i
          | [] ->
              (* A hanging part always touches P0 through its tree edge. *)
              invalid_arg "Schedule.run: hanging part without P0 connection")
        participants;
      (* (b) vertex-coordinated merges of same-color connected clusters. *)
      let by_color = Hashtbl.create 16 in
      List.iter
        (fun id ->
          let c = Hashtbl.find low id in
          let prev = try Hashtbl.find by_color c with Not_found -> [] in
          Hashtbl.replace by_color c (id :: prev))
        participants;
      let merged_now = ref [] in
      let cluster_jobs = ref [] in
      Hashtbl.iter
        (fun color ids ->
          match ids with
          | [] | [ _ ] -> ()
          | _ ->
              (* Connected clusters among the same-color parts. *)
              let arr = Array.of_list ids in
              let index = Hashtbl.create 8 in
              Array.iteri (fun i id -> Hashtbl.replace index id i) arr;
              let uf = Unionfind.create (Array.length arr) in
              Array.iteri
                (fun i id ->
                  List.iter
                    (fun q ->
                      match Hashtbl.find_opt index q with
                      | Some j -> ignore (Unionfind.union uf i j)
                      | None -> ())
                    (Merge.adjacent_parts st id))
                arr;
              let clusters = Unionfind.groups uf in
              Hashtbl.iter
                (fun _rep members ->
                  if List.length members >= 2 then begin
                    let ids = List.map (fun i -> arr.(i)) members in
                    let coord = p0_arr.(color) in
                    cluster_jobs := (color, coord, ids) :: !cluster_jobs
                  end)
                clusters)
        by_color;
      (* All clusters merge in parallel; inside a cluster the members ship
         their interfaces to the shared coordinator concurrently. *)
      Costmodel.branch_max cost
        (List.map
           (fun (_color, coord, ids) () ->
             List.iter (fun id -> Merge.ship_to_vertex st ~from_part:id coord) ids)
           !cluster_jobs);
      List.iter
        (fun (_color, coord, ids) ->
          List.iter (fun id -> Hashtbl.remove alive id) ids;
          let nid =
            Merge.merge st ~anchors:[ coord ] ~kind:Merge.Vertex_coordinated ids
          in
          Hashtbl.replace alive nid ();
          merged_now := nid :: !merged_now)
        !cluster_jobs;
      (* (c)/(d): retire parts whose only connection is one P0 vertex
         (and possibly G \ H): they deliver their edge order to it. *)
      List.iter
        (fun id ->
          if Hashtbl.mem alive id then begin
            let c = classify st ~p0_pos ~in_subtree id in
            match c.positions, c.others with
            | [ i ], [] ->
                Merge.ship_to_vertex st ~from_part:id p0_arr.(i);
                retire id
            | _ -> ()
          end)
        (alive_ids ());
      (* (f) symmetry breaking on the inter-part graph, colored by low
         connections (proper after the same-color merges). *)
      let participants =
        List.filter (fun id -> not (Hashtbl.mem sidelined id)) (alive_ids ())
      in
      if List.length participants >= 2 then begin
        let arr = Array.of_list participants in
        let index = Hashtbl.create 8 in
        Array.iteri (fun i id -> Hashtbl.replace index id i) arr;
        let edges = ref [] in
        Array.iteri
          (fun i id ->
            List.iter
              (fun q ->
                match Hashtbl.find_opt index q with
                | Some j when j > i -> edges := (i, j) :: !edges
                | Some _ | None -> ())
              (Merge.adjacent_parts st id))
          arr;
        let pg = Gr.of_edges ~n:(Array.length arr) !edges in
        let colors =
          Array.map
            (fun id ->
              match (classify st ~p0_pos ~in_subtree id).positions with
              | i :: _ -> i
              | [] -> invalid_arg "Schedule.run: part lost its P0 connection")
            arr
        in
        Costmodel.note cost "part-depth-max" (max_depth participants);
        Costmodel.advance cost
          (Symmetry.part_level_rounds * (max_depth participants + 1));
        let grouping = Symmetry.compute pg ~colors in
        (* (g) star merges on the V-sets. *)
        let do_group ids kind =
          List.iter (fun id -> Hashtbl.remove alive id) ids;
          let nid = Merge.merge st ~kind ids in
          Hashtbl.replace alive nid ()
        in
        Costmodel.branch_max cost
          (List.map
             (fun (c, leaves) () ->
               List.iter
                 (fun l ->
                   Merge.ship_between st ~from_part:arr.(l) ~to_part:arr.(c))
                 leaves)
             grouping.Symmetry.stars);
        List.iter
          (fun (c, leaves) ->
            do_group (arr.(c) :: List.map (fun l -> arr.(l)) leaves) Merge.Star)
          grouping.Symmetry.stars;
        (* (h)/(i): two-node paths merge pairwise; longer paths sit the
           next iteration out. *)
        Costmodel.branch_max cost
          (List.filter_map
             (fun path ->
               match path with
               | [ a; b ] ->
                   Some
                     (fun () ->
                       Merge.ship_between st ~from_part:arr.(b) ~to_part:arr.(a))
               | _ -> None)
             grouping.Symmetry.paths);
        List.iter
          (fun path ->
            match path with
            | [ a; b ] -> do_group [ arr.(a); arr.(b) ] Merge.Pairwise
            | _ :: _ :: _ ->
                List.iter
                  (fun i -> Hashtbl.replace sidelined arr.(i) ())
                  path
            | _ -> ())
          grouping.Symmetry.paths
      end
    end
  done;
  (* Steps 3-5: among parts connected to exactly two P0 vertices and
     nothing else, the coordinator keeps only the highest id per vertex
     pair; the rest deliver their orders and retire. *)
  let by_pair = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let c = classify st ~p0_pos ~in_subtree id in
      match c.positions, c.others, c.gh with
      | [ i; j ], [], false ->
          let prev = try Hashtbl.find by_pair (i, j) with Not_found -> [] in
          Hashtbl.replace by_pair (i, j) (id :: prev)
      | _ -> ())
    (alive_ids ());
  Hashtbl.iter
    (fun (i, j) ids ->
      match List.sort compare ids with
      | [] -> ()
      | sorted ->
          let keep = List.nth sorted (List.length sorted - 1) in
          List.iter
            (fun id ->
              if id <> keep then begin
                Merge.ship_to_vertex st ~from_part:id p0_arr.(i);
                Merge.ship_to_vertex st ~from_part:id p0_arr.(j);
                retire id
              end)
            sorted)
    by_pair;
  (* Step 6: the restricted path-coordinated merge. Every surviving part
     ships its interface to its lowest connection vertex and onward along
     P0 to the splitter end; the shipments share the path's edges, which
     is exactly where congestion is measured. *)
  let survivors = alive_ids () in
  let k = List.length survivors in
  if k > st.Merge.stats.Merge.final_parts_max then
    st.Merge.stats.Merge.final_parts_max <- k;
  let shipments =
    List.map
      (fun id ->
        let p = Merge.part st id in
        let c = classify st ~p0_pos ~in_subtree id in
        let i = match c.positions with i :: _ -> i | [] -> 0 in
        (* Aggregate internally first. *)
        Costmodel.charge_aggregate cost ~root:p.Part.leader
          ~parent:(Part.parent_fn p) ~members:p.Part.vertices
          ~bits:p.Part.iface_bits;
        let u = ref p.Part.leader in
        (try
           List.iter
             (fun v ->
               if Gr.mem_edge st.Merge.g v p0_arr.(i) then begin
                 u := v;
                 raise Exit
               end)
             p.Part.vertices
         with Exit -> ());
        let down = List.rev (Part.path_to_leader p !u) in
        (* Onward along P0 from position i to the splitter (the far end). *)
        let along = Array.to_list (Array.sub p0_arr i (Array.length p0_arr - i)) in
        (down @ along, p.Part.iface_bits))
      survivors
  in
  charge_concurrent st shipments;
  let everyone = (p0_part :: survivors) @ !retired in
  let final_part =
    match everyone with
    | [ only ] -> only
    | _ -> Merge.merge st ~kind:Merge.Path_coordinated everyone
  in
  Costmodel.span_close cost
    ~attrs:
      [
        ("p0_len", List.length p0);
        ("hanging", List.length hanging);
        ("survivors", k);
        ("retired", List.length !retired);
      ]
    ();
  {
    final_part;
    parts_at_restricted_merge = k;
    retired_parts = List.length !retired;
  }
