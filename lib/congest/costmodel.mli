(** Exact cost accounting for driver-orchestrated phases.

    The recursion of the embedding algorithm is orchestrated by a driver
    (the usual way to present a synchronous algorithm as globally scheduled
    phases). Each phase's communication is charged here, on the {e actual}
    trees, paths and payload sizes of the run, under the per-edge
    bandwidth [B]:

    - routing [s] bits along a path of [ℓ] edges, pipelined in
      [B]-bit chunks, takes [ℓ + ⌈s/B⌉ - 1] rounds;
    - a tree aggregation (or broadcast) where member [v] contributes
      [bits_of v] takes [depth + ⌈L/B⌉] rounds, where [L] is the heaviest
      per-edge load it induces (each member's payload loads every tree edge
      between it and the root) — the standard pipelining bound;
    - phases on vertex-disjoint parts run in parallel: {!branch_max}
      advances the clock by the maximum branch duration, which is how the
      paper's "recurse on all parts in parallel" is charged.

    All charged bits also land in the per-edge tallies of the underlying
    {!Metrics.t}, so congestion (experiment E7) reflects these phases
    too. *)

type t
(** One cost-model clock, bound to a graph and a metrics accumulator. *)

val create :
  ?bandwidth:int -> ?trace:Trace.t -> ?round_base:int -> Gr.t -> Metrics.t -> t
(** The metrics object receives every charge. Default bandwidth:
    {!Network.default_bandwidth}. When a [trace] is given, {!phase},
    {!span} and {!note} append span/note events to it, with round numbers
    offset by [round_base] (default 0) — the rounds the run had already
    consumed before this cost model took over the clock. *)

val bandwidth : t -> int
(** The per-edge bits-per-round budget every charge is computed under. *)

val word : t -> int
(** Bits of one vertex id: [⌈log2 n⌉]. *)

val clock : t -> int
(** Rounds elapsed so far in charged phases. *)

val now : t -> int
(** [round_base + clock]: the position on the run's unified timeline. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** Wrap the thunk in a trace span on the unified timeline (a no-op
    without a trace). The span closes even if the thunk raises. *)

val span_open : t -> string -> unit
(** Open a named trace span at the current round (see {!span_close}). *)

val span_close : t -> ?attrs:(string * int) list -> unit -> unit
(** Close the innermost open span. The open/close pair is the explicit
    variant of {!span}, for callers whose closing attributes are only
    known at the end (e.g. the merge schedule's survivor counts). *)

val note : t -> string -> int -> unit
(** Record a named scalar observation at the current round. *)

val advance : t -> int -> unit
(** Add a fixed number of rounds (e.g. [O(1)]-round local steps). *)

val charge_path : t -> int list -> bits:int -> unit
(** Route [bits] along the vertex path (consecutive vertices must be
    adjacent in the graph). A path of one vertex charges nothing. *)

val charge_tree : t -> root:int -> parent:(int -> int) -> members:int list -> bits_of:(int -> int) -> unit
(** Gather/scatter of {e distinct} payloads between [root] and [members]
    over the tree given by [parent]: member [v]'s [bits_of v] loads every
    tree edge between [v] and the root. Covers both directions — the
    formula is symmetric. *)

val charge_aggregate : t -> root:int -> parent:(int -> int) -> members:int list -> bits:int -> unit
(** Combining aggregation (convergecast of a fold, or a broadcast of one
    value): every tree edge on a member-root path carries [bits] once;
    takes [depth + ⌈bits/B⌉ - 1] rounds (pipelined in chunks). *)

val note_edge_bits : t -> int -> int -> unit
(** [note_edge_bits t e bits] adds [bits] to the per-edge tally of the
    edge with dense index [e] without advancing the clock — for callers
    that schedule several concurrent shipments and account rounds
    themselves (e.g. the restricted path-coordinated merge). *)

val note_dir_bits : t -> u:int -> v:int -> int -> unit
(** Direction-aware variant of {!note_edge_bits}: charges [u -> v], so
    the per-directed-edge tallies see it too. *)

val branch_max : t -> (unit -> unit) list -> unit
(** Run the branch thunks as parallel phases: each starts at the current
    clock; afterwards the clock is the maximum branch end. Edge-bit charges
    accumulate normally (branches are expected to touch disjoint edges). *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** Label the rounds consumed by the thunk in the metrics' phase table,
    and as a trace span when tracing. *)
