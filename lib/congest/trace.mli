(** Structured tracing of a CONGEST execution.

    A trace is an append-only journal of {e events} — named spans opened
    and closed at simulated rounds, per-round activity records, optional
    per-message records, and scalar notes — that decomposes a run into
    the phases the paper argues about (leader election, the recursion
    levels, the merge schedule of each call). {!Network.run} feeds round
    and message events; {!Costmodel} and the embedder feed spans; the
    result is written as a machine-readable JSON journal
    ({!write_json}) or summarized as a per-phase table ({!pp_summary}).

    Spans nest: {!span_open}/{!span_close} maintain a stack, and every
    closed span records its name, nesting depth, start and end rounds,
    and a list of integer attributes (recursion depth, part counts,
    payload sizes, ...). Round numbers are supplied by the caller — the
    trace itself holds no clock — so real simulator rounds and
    cost-model rounds land on one timeline.

    Traces are bounded: past [max_events] events the journal drops new
    events (counted in {!dropped}) rather than growing without limit, so
    tracing a large run degrades gracefully. *)

type attr = string * int
(** A named integer attribute attached to a span or note. *)

type event =
  | Span_open of { name : string; round : int }
      (** A named phase began at [round]. *)
  | Span_close of { name : string; round : int; attrs : attr list }
      (** The innermost open phase ended at [round]. *)
  | Round of { round : int; active : int; messages : int; bits : int }
      (** One executed simulator round: how many nodes computed, how many
          messages they sent, and the total bits of those messages. *)
  | Message of { round : int; src : int; dst : int; bits : int }
      (** Recorded only when the trace was created with
          [~keep_messages:true]. *)
  | Fault of { round : int; kind : string; src : int; dst : int }
      (** One injected fault (see {!Fault}): [kind] is ["drop"],
          ["duplicate"], ["reorder"], ["delay"], ["crash-lost"],
          ["crash"] or ["restart"]; node-level events carry the node in
          [src] and [-1] in [dst]. Always recorded (fault events are rare
          and load-bearing, unlike per-message records). *)
  | Note of { name : string; value : int; round : int }
      (** A named scalar observation. *)
(** Everything the journal can record. *)

type span = {
  name : string;
  depth : int;  (** nesting depth at open time (outermost = 0). *)
  start_round : int;
  end_round : int;
  attrs : attr list;
}
(** One completed span, assembled from its open/close event pair. *)

type t
(** A mutable, append-only trace journal. *)

val create : ?keep_messages:bool -> ?max_events:int -> unit -> t
(** A fresh, empty trace. [keep_messages] (default [false]) records
    every individual message — precise but heavy; [max_events] (default
    [200_000]) bounds the journal. *)

val keep_messages : t -> bool
(** Whether this trace records individual messages. *)

val span_open : t -> string -> round:int -> unit
(** Open a named span at the given round (see {!span_close}). *)

val span_close : t -> ?attrs:attr list -> round:int -> unit -> unit
(** Close the innermost open span. @raise Invalid_argument if none. *)

val with_span : t option -> string -> clock:(unit -> int) -> (unit -> 'a) -> 'a
(** [with_span tr name ~clock f] wraps [f] in a span whose start and end
    rounds are read from [clock]; a [None] trace runs [f] bare. The span
    is closed even if [f] raises. *)

val on_round : t -> round:int -> active:int -> messages:int -> bits:int -> unit
(** Record one executed simulator round ({!Network.exec} calls this). *)

val on_message : t -> round:int -> src:int -> dst:int -> bits:int -> unit
(** No-op unless [keep_messages] was set. *)

val on_fault : t -> round:int -> kind:string -> src:int -> dst:int -> unit
(** Record one injected fault on the round timeline (the fault-aware
    engine calls this; see the {!type:event} constructor for the kind
    vocabulary). *)

val note : t -> string -> int -> round:int -> unit
(** Record a named scalar observation at the given round. *)

val events : t -> event list
(** All recorded events, in order. *)

val spans : t -> span list
(** Completed spans, in order of their {e open} events. *)

val open_spans : t -> int
(** Spans opened but not yet closed (non-zero after an aborted run). *)

val open_span_names : t -> string list
(** The names of the spans still open, innermost first — after an
    aborted run, the head is the phase that was executing when the run
    died (the [trace] CLI prints it in its livelock diagnosis). *)

val dropped : t -> int
(** Events discarded because the [max_events] bound was hit. *)

val summary : t -> (string * int * int * int) list
(** Per-phase aggregation of the completed spans, in order of first
    appearance: [(name, count, total_rounds, max_rounds)] where a span
    contributes [end_round - start_round] rounds. Parallel branches
    overlap on the timeline, so totals are span-rounds, not wall-clock
    rounds. *)

val pp_summary : Format.formatter -> t -> unit
(** The {!summary} as an aligned table, plus a dropped-events warning
    when the journal overflowed. *)

val write_json :
  ?name:string ->
  ?meta:(string * int) list ->
  ?metrics:Metrics.t ->
  out_channel ->
  t ->
  unit
(** Emit the JSON journal (schema ["distplanar-trace/1"], documented in
    EXPERIMENTS.md): run metadata, completed spans, notes, the per-round
    histogram and per-directed-edge load table of [metrics] when given,
    fault events when any were recorded, and individual messages when
    kept. *)

val to_json_string :
  ?name:string -> ?meta:(string * int) list -> ?metrics:Metrics.t -> t -> string
(** {!write_json} into a string (tests diff against this). *)
