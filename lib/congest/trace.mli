(** Structured tracing of a CONGEST execution.

    A trace is an append-only journal of {e events} — named spans opened
    and closed at simulated rounds, per-round activity records, optional
    per-message records, and scalar notes — that decomposes a run into
    the phases the paper argues about (leader election, the recursion
    levels, the merge schedule of each call). {!Network.run} feeds round
    and message events; {!Costmodel} and the embedder feed spans; the
    result is written as a machine-readable JSON journal
    ({!write_json}) or summarized as a per-phase table ({!pp_summary}).

    Spans nest: {!span_open}/{!span_close} maintain a stack, and every
    closed span records its name, nesting depth, start and end rounds,
    and a list of integer attributes (recursion depth, part counts,
    payload sizes, ...). Round numbers are supplied by the caller — the
    trace itself holds no clock — so real simulator rounds and
    cost-model rounds land on one timeline.

    Traces are bounded: past [max_events] events the journal drops new
    events (counted in {!dropped}) rather than growing without limit, so
    tracing a large run degrades gracefully. *)

type attr = string * int
(** A named integer attribute attached to a span or note. *)

type event =
  | Span_open of { name : string; round : int }
  | Span_close of { name : string; round : int; attrs : attr list }
  | Round of { round : int; active : int; messages : int; bits : int }
      (** One executed simulator round: how many nodes computed, how many
          messages they sent, and the total bits of those messages. *)
  | Message of { round : int; src : int; dst : int; bits : int }
      (** Recorded only when the trace was created with
          [~keep_messages:true]. *)
  | Note of { name : string; value : int; round : int }

type span = {
  name : string;
  depth : int;  (** nesting depth at open time (outermost = 0). *)
  start_round : int;
  end_round : int;
  attrs : attr list;
}

type t

val create : ?keep_messages:bool -> ?max_events:int -> unit -> t
(** A fresh, empty trace. [keep_messages] (default [false]) records
    every individual message — precise but heavy; [max_events] (default
    [200_000]) bounds the journal. *)

val keep_messages : t -> bool

val span_open : t -> string -> round:int -> unit
val span_close : t -> ?attrs:attr list -> round:int -> unit -> unit
(** Close the innermost open span. @raise Invalid_argument if none. *)

val with_span : t option -> string -> clock:(unit -> int) -> (unit -> 'a) -> 'a
(** [with_span tr name ~clock f] wraps [f] in a span whose start and end
    rounds are read from [clock]; a [None] trace runs [f] bare. The span
    is closed even if [f] raises. *)

val on_round : t -> round:int -> active:int -> messages:int -> bits:int -> unit
val on_message : t -> round:int -> src:int -> dst:int -> bits:int -> unit
(** No-op unless [keep_messages] was set. *)

val note : t -> string -> int -> round:int -> unit

val events : t -> event list
(** All recorded events, in order. *)

val spans : t -> span list
(** Completed spans, in order of their {e open} events. *)

val open_spans : t -> int
(** Spans opened but not yet closed (non-zero after an aborted run). *)

val dropped : t -> int
(** Events discarded because the [max_events] bound was hit. *)

val summary : t -> (string * int * int * int) list
(** Per-phase aggregation of the completed spans, in order of first
    appearance: [(name, count, total_rounds, max_rounds)] where a span
    contributes [end_round - start_round] rounds. Parallel branches
    overlap on the timeline, so totals are span-rounds, not wall-clock
    rounds. *)

val pp_summary : Format.formatter -> t -> unit
(** The {!summary} as an aligned table, plus a dropped-events warning
    when the journal overflowed. *)

val write_json :
  ?name:string ->
  ?meta:(string * int) list ->
  ?metrics:Metrics.t ->
  out_channel ->
  t ->
  unit
(** Emit the JSON journal (schema ["distplanar-trace/1"], documented in
    EXPERIMENTS.md): run metadata, completed spans, notes, the per-round
    histogram and per-directed-edge load table of [metrics] when given,
    and individual messages when kept. *)

val to_json_string :
  ?name:string -> ?meta:(string * int) list -> ?metrics:Metrics.t -> t -> string
