type crash = { node : int; at : int; restart : int option }

type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  delay : float;
  max_delay : int;
  adversarial : bool;
  crashes : crash list;
  grace : int;
}

let default =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    delay = 0.;
    max_delay = 3;
    adversarial = false;
    crashes = [];
    grace = 8;
  }

type stats = {
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
  crash_lost : int;
  crashes : int;
  restarts : int;
}

let zero_stats =
  {
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    delayed = 0;
    crash_lost = 0;
    crashes = 0;
    restarts = 0;
  }

type plan = {
  spec : spec;
  seed : int;
  mutable state : int64;  (* splitmix64 stream position *)
  mutable stats : stats;
  by_node : (int, crash list) Hashtbl.t;
  horizon : int;
}

(* splitmix64: a tiny, well-mixed, platform-independent generator — the
   plan must not depend on Stdlib.Random's global state or algorithm. *)
let mix seed = Int64.logxor (Int64.of_int seed) 0x2545F4914F6CDD1DL

let next p =
  let open Int64 in
  p.state <- add p.state 0x9E3779B97F4A7C15L;
  let z = p.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform float in [0, 1): the top 53 bits of one draw. *)
let uniform p =
  Int64.to_float (Int64.shift_right_logical (next p) 11) *. 0x1p-53

(* Uniform int in [0, bound): modulo bias is irrelevant at fault-plan
   precision (bound is tiny against 2^62). *)
let below p bound =
  Int64.to_int (Int64.shift_right_logical (next p) 2) mod bound

let chance p prob = prob > 0. && uniform p < prob

let make ?(spec = default) ~seed () =
  let bad_prob x = not (x >= 0. && x <= 1.) in
  if bad_prob spec.drop || bad_prob spec.duplicate || bad_prob spec.reorder
     || bad_prob spec.delay
  then invalid_arg "Fault.make: probabilities must be within [0, 1]";
  if spec.max_delay < 1 then invalid_arg "Fault.make: max_delay must be >= 1";
  if spec.grace < 1 then invalid_arg "Fault.make: grace must be >= 1";
  let by_node = Hashtbl.create (List.length spec.crashes) in
  let horizon =
    List.fold_left
      (fun acc c ->
        if c.at < 0 then invalid_arg "Fault.make: crash round must be >= 0";
        (match c.restart with
        | Some r when r <= c.at ->
            invalid_arg "Fault.make: restart must come after the crash"
        | _ -> ());
        let sofar = try Hashtbl.find by_node c.node with Not_found -> [] in
        Hashtbl.replace by_node c.node (c :: sofar);
        max acc (match c.restart with Some r -> r | None -> c.at))
      0 spec.crashes
  in
  { spec; seed; state = mix seed; stats = zero_stats; by_node; horizon }

let spec p = p.spec
let seed p = p.seed
let stats p = p.stats
let horizon p = p.horizon
let grace p = p.spec.grace

let reset p =
  p.state <- mix p.seed;
  p.stats <- zero_stats

type delivery = { offset : int; key : int option }

let one_copy p =
  let offset =
    if chance p p.spec.delay then begin
      p.stats <- { p.stats with delayed = p.stats.delayed + 1 };
      1 + below p p.spec.max_delay
    end
    else 0
  in
  let key =
    if chance p p.spec.reorder then begin
      p.stats <- { p.stats with reordered = p.stats.reordered + 1 };
      Some (below p 0x40000000)
    end
    else None
  in
  { offset; key }

let fate p =
  if chance p p.spec.drop then begin
    p.stats <- { p.stats with dropped = p.stats.dropped + 1 };
    []
  end
  else if chance p p.spec.duplicate then begin
    p.stats <- { p.stats with duplicated = p.stats.duplicated + 1 };
    let a = one_copy p in
    let b = one_copy p in
    [ a; b ]
  end
  else [ one_copy p ]

let down p ~node ~round =
  match Hashtbl.find_opt p.by_node node with
  | None -> false
  | Some cs ->
      List.exists
        (fun c ->
          c.at <= round
          && match c.restart with None -> true | Some r -> round < r)
        cs

let transitions p ~round =
  List.filter_map
    (fun c ->
      if c.at = round then begin
        p.stats <- { p.stats with crashes = p.stats.crashes + 1 };
        Some (c.node, `Crash)
      end
      else if c.restart = Some round then begin
        p.stats <- { p.stats with restarts = p.stats.restarts + 1 };
        Some (c.node, `Restart)
      end
      else None)
    p.spec.crashes

let note_crash_lost p =
  p.stats <- { p.stats with crash_lost = p.stats.crash_lost + 1 }

let permute p a =
  let k = Array.length a in
  for i = k - 1 downto 1 do
    let j = below p (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done
