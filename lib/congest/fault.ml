type crash = { node : int; at : int; restart : int option }

type spec = {
  drop : float;
  duplicate : float;
  reorder : float;
  delay : float;
  max_delay : int;
  adversarial : bool;
  crashes : crash list;
  grace : int;
}

let default =
  {
    drop = 0.;
    duplicate = 0.;
    reorder = 0.;
    delay = 0.;
    max_delay = 3;
    adversarial = false;
    crashes = [];
    grace = 8;
  }

type stats = {
  dropped : int;
  duplicated : int;
  reordered : int;
  delayed : int;
  crash_lost : int;
  crashes : int;
  restarts : int;
}

let zero_stats =
  {
    dropped = 0;
    duplicated = 0;
    reordered = 0;
    delayed = 0;
    crash_lost = 0;
    crashes = 0;
    restarts = 0;
  }

(* A splitmix64 stream position. The plan owns one (the engine-visit
   stream of the sequential clocked engine); sharded runs derive keyed
   substreams — fresh positions seeded from (seed, shard, round, slot) —
   so fault decisions stay deterministic without a single stream forcing
   a total consumption order across domains. *)
type stream = { mutable pos : int64 }

type plan = {
  spec : spec;
  seed : int;
  stream : stream;
  mutable stats : stats;
  by_node : (int, crash list) Hashtbl.t;
  horizon : int;
}

(* splitmix64: a tiny, well-mixed, platform-independent generator — the
   plan must not depend on Stdlib.Random's global state or algorithm. *)
let mix seed = Int64.logxor (Int64.of_int seed) 0x2545F4914F6CDD1DL

let snext s =
  let open Int64 in
  s.pos <- add s.pos 0x9E3779B97F4A7C15L;
  let z = s.pos in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform float in [0, 1): the top 53 bits of one draw. *)
let suniform s =
  Int64.to_float (Int64.shift_right_logical (snext s) 11) *. 0x1p-53

(* Uniform int in [0, bound): modulo bias is irrelevant at fault-plan
   precision (bound is tiny against 2^62). *)
let sbelow s bound =
  Int64.to_int (Int64.shift_right_logical (snext s) 2) mod bound

let schance s prob = prob > 0. && suniform s < prob

let make ?(spec = default) ~seed () =
  let bad_prob x = not (x >= 0. && x <= 1.) in
  if bad_prob spec.drop || bad_prob spec.duplicate || bad_prob spec.reorder
     || bad_prob spec.delay
  then invalid_arg "Fault.make: probabilities must be within [0, 1]";
  if spec.max_delay < 1 then invalid_arg "Fault.make: max_delay must be >= 1";
  if spec.grace < 1 then invalid_arg "Fault.make: grace must be >= 1";
  let by_node = Hashtbl.create (List.length spec.crashes) in
  let horizon =
    List.fold_left
      (fun acc c ->
        if c.at < 0 then invalid_arg "Fault.make: crash round must be >= 0";
        (match c.restart with
        | Some r when r <= c.at ->
            invalid_arg "Fault.make: restart must come after the crash"
        | _ -> ());
        let sofar = try Hashtbl.find by_node c.node with Not_found -> [] in
        Hashtbl.replace by_node c.node (c :: sofar);
        max acc (match c.restart with Some r -> r | None -> c.at))
      0 spec.crashes
  in
  { spec; seed; stream = { pos = mix seed }; stats = zero_stats; by_node;
    horizon }

let spec p = p.spec
let seed p = p.seed
let stats p = p.stats
let horizon p = p.horizon
let grace p = p.spec.grace

let reset p =
  p.stream.pos <- mix p.seed;
  p.stats <- zero_stats

type delivery = { offset : int; key : int option }

let one_copy p s =
  let offset =
    if schance s p.spec.delay then begin
      p.stats <- { p.stats with delayed = p.stats.delayed + 1 };
      1 + sbelow s p.spec.max_delay
    end
    else 0
  in
  let key =
    if schance s p.spec.reorder then begin
      p.stats <- { p.stats with reordered = p.stats.reordered + 1 };
      Some (sbelow s 0x40000000)
    end
    else None
  in
  { offset; key }

let fate_on p s =
  if schance s p.spec.drop then begin
    p.stats <- { p.stats with dropped = p.stats.dropped + 1 };
    []
  end
  else if schance s p.spec.duplicate then begin
    p.stats <- { p.stats with duplicated = p.stats.duplicated + 1 };
    let a = one_copy p s in
    let b = one_copy p s in
    [ a; b ]
  end
  else [ one_copy p s ]

let fate p = fate_on p p.stream

let down p ~node ~round =
  match Hashtbl.find_opt p.by_node node with
  | None -> false
  | Some cs ->
      List.exists
        (fun c ->
          c.at <= round
          && match c.restart with None -> true | Some r -> round < r)
        cs

let transitions p ~round =
  List.filter_map
    (fun c ->
      if c.at = round then begin
        p.stats <- { p.stats with crashes = p.stats.crashes + 1 };
        Some (c.node, `Crash)
      end
      else if c.restart = Some round then begin
        p.stats <- { p.stats with restarts = p.stats.restarts + 1 };
        Some (c.node, `Restart)
      end
      else None)
    p.spec.crashes

let note_crash_lost p =
  p.stats <- { p.stats with crash_lost = p.stats.crash_lost + 1 }

let permute_on s a =
  let k = Array.length a in
  for i = k - 1 downto 1 do
    let j = sbelow s (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let permute p a = permute_on p.stream a

(* ------------------------------------------------------------------ *)
(* Keyed substreams (sharded fault decisions)                          *)
(* ------------------------------------------------------------------ *)

(* A substream's position is a splitmix64 finalization of
   (seed, shard, round, slot): well-separated keys give well-separated
   streams, and the derivation consumes nothing from the plan's own
   stream — the same (seed, key) always yields the same draws no matter
   how many other substreams were opened before it. Stats still tally
   into the shared plan, so substream draws must happen in a serial
   section (the sharded engine's network phase). *)
type sub = { sp : plan; sstream : stream }

let substream p ~shard ~round ~slot =
  let open Int64 in
  let h = ref (mix p.seed) in
  let absorb x =
    h := add !h (mul (of_int (x + 1)) 0x9E3779B97F4A7C15L);
    h := mul (logxor !h (shift_right_logical !h 30)) 0xBF58476D1CE4E5B9L
  in
  absorb shard;
  absorb round;
  absorb slot;
  { sp = p; sstream = { pos = !h } }

let sub_fate u = fate_on u.sp u.sstream
let sub_permute u a = permute_on u.sstream a
