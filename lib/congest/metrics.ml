type round_record = { round : int; active : int; messages : int; bits : int }

type t = {
  g : Gr.t;
  mutable rounds : int;
  mutable messages : int;
  mutable total_bits : int;
  edge_bits : int array;  (* per undirected edge, both directions *)
  dir_bits : int array;  (* 2m: per directed edge *)
  dir_msgs : int array;  (* 2m: messages per directed edge *)
  dir_burst : int array;  (* 2m: max bits in one round per directed edge *)
  mutable max_message_bits : int;
  mutable round_log_rev : round_record list;
  mutable phases : (string * int) list;
  mutable fault_counts : (string * int) list;  (* first-appearance order *)
}

let create g =
  let m = max 1 (Gr.m g) in
  {
    g;
    rounds = 0;
    messages = 0;
    total_bits = 0;
    edge_bits = Array.make m 0;
    dir_bits = Array.make (2 * m) 0;
    dir_msgs = Array.make (2 * m) 0;
    dir_burst = Array.make (2 * m) 0;
    max_message_bits = 0;
    round_log_rev = [];
    phases = [];
    fault_counts = [];
  }

let graph t = t.g
let rounds t = t.rounds
let messages t = t.messages
let total_bits t = t.total_bits
let max_edge_bits t = if Gr.m t.g = 0 then 0 else Array.fold_left max 0 t.edge_bits
let edge_bits t i = t.edge_bits.(i)
let max_message_bits t = t.max_message_bits
let max_round_edge_bits t = Array.fold_left max 0 t.dir_burst

let active_peak t =
  List.fold_left (fun acc r -> max acc r.active) 0 t.round_log_rev

let round_log t = List.rev t.round_log_rev

(* Directed slot of the edge {u, v} in direction u -> v: the normalized
   edge stores its endpoints as (min, max); slot 0 is min -> max. *)
let dir_index t u v =
  let e = Gr.edge_index t.g u v in
  (2 * e) + if u < v then 0 else 1

let iter_dir t f =
  for e = 0 to Gr.m t.g - 1 do
    let (u, v) = Gr.edge_of_index t.g e in
    List.iter
      (fun (src, dst, d) ->
        if t.dir_bits.(d) > 0 || t.dir_msgs.(d) > 0 then
          f ~src ~dst ~bits:t.dir_bits.(d) ~messages:t.dir_msgs.(d)
            ~burst:t.dir_burst.(d))
      [ (u, v, 2 * e); (v, u, (2 * e) + 1) ]
  done

let add_rounds t r = t.rounds <- t.rounds + r

let add_edge_bits_by_index t i bits =
  t.edge_bits.(i) <- t.edge_bits.(i) + bits;
  t.total_bits <- t.total_bits + bits

let add_dir_bits t ~u ~v ~bits =
  let d = dir_index t u v in
  t.dir_bits.(d) <- t.dir_bits.(d) + bits;
  add_edge_bits_by_index t (d / 2) bits

let add_message_at t ~dir ~bits =
  t.messages <- t.messages + 1;
  t.dir_msgs.(dir) <- t.dir_msgs.(dir) + 1;
  if bits > t.max_message_bits then t.max_message_bits <- bits;
  t.dir_bits.(dir) <- t.dir_bits.(dir) + bits;
  add_edge_bits_by_index t (dir / 2) bits

let add_message t ~u ~v ~bits = add_message_at t ~dir:(dir_index t u v) ~bits

let record_round t ~round ~active ~messages ~bits =
  t.round_log_rev <- { round; active; messages; bits } :: t.round_log_rev

let note_round_edge_at t ~dir ~bits =
  if bits > t.dir_burst.(dir) then t.dir_burst.(dir) <- bits

let note_round_edge t ~u ~v ~bits =
  note_round_edge_at t ~dir:(dir_index t u v) ~bits

let phase t name r = t.phases <- (name, r) :: t.phases
let phases t = List.rev t.phases

let note_fault t ~kind =
  let rec bump = function
    | [] -> [ (kind, 1) ]
    | (k, c) :: rest when k = kind -> (k, c + 1) :: rest
    | kv :: rest -> kv :: bump rest
  in
  t.fault_counts <- bump t.fault_counts

let faults t = t.fault_counts

let merge_into ~dst ~src =
  if Gr.n dst.g <> Gr.n src.g || Gr.m dst.g <> Gr.m src.g then
    invalid_arg "Metrics.merge_into: different graphs";
  dst.rounds <- dst.rounds + src.rounds;
  dst.messages <- dst.messages + src.messages;
  Array.iteri (fun i b -> add_edge_bits_by_index dst i b) src.edge_bits;
  Array.iteri (fun d b -> dst.dir_bits.(d) <- dst.dir_bits.(d) + b) src.dir_bits;
  Array.iteri (fun d c -> dst.dir_msgs.(d) <- dst.dir_msgs.(d) + c) src.dir_msgs;
  Array.iteri
    (fun d b -> if b > dst.dir_burst.(d) then dst.dir_burst.(d) <- b)
    src.dir_burst;
  if src.max_message_bits > dst.max_message_bits then
    dst.max_message_bits <- src.max_message_bits;
  dst.round_log_rev <- src.round_log_rev @ dst.round_log_rev;
  dst.phases <- List.rev_append (List.rev src.phases) dst.phases;
  List.iter
    (fun (kind, c) ->
      let rec add = function
        | [] -> [ (kind, c) ]
        | (k, c0) :: rest when k = kind -> (k, c0 + c) :: rest
        | kv :: rest -> kv :: add rest
      in
      dst.fault_counts <- add dst.fault_counts)
    src.fault_counts

let pp ppf t =
  Format.fprintf ppf
    "@[<v>rounds=%d messages=%d total_bits=%d max_edge_bits=%d \
     max_message_bits=%d max_round_edge_bits=%d"
    t.rounds t.messages t.total_bits (max_edge_bits t) t.max_message_bits
    (max_round_edge_bits t);
  List.iter (fun (name, r) -> Format.fprintf ppf "@   %-28s %6d rounds" name r)
    (phases t);
  List.iter
    (fun (kind, c) -> Format.fprintf ppf "@   faults: %-20s %6d" kind c)
    t.fault_counts;
  Format.fprintf ppf "@]"
