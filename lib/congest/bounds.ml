type verdict = {
  n : int;
  d : int;
  word : int;
  bandwidth : int;
  rounds : int;
  round_bound : int;
  round_constant : float;
  rounds_ok : bool;
  max_message_bits : int;
  message_bound : int;
  message_constant : float;
  message_ok : bool;
  max_round_edge_bits : int;
  burst_ok : bool;
}

let word_bits n =
  let n = max 2 n in
  let rec go k acc = if k <= 1 then acc else go (k / 2) (acc + 1) in
  go (n - 1) 1

let round_bound ?(c = 32) ~n ~d () = c * (d + 1) * min (word_bits n) (d + 1)

let check ?(c_rounds = 32) ?(c_bits = 16) ?bandwidth ~n ~d metrics =
  let word = word_bits n in
  let bandwidth = match bandwidth with Some b -> b | None -> 16 * word in
  let rounds = Metrics.rounds metrics in
  let unit_rounds = (d + 1) * min word (d + 1) in
  let round_bound = c_rounds * unit_rounds in
  let max_message_bits = Metrics.max_message_bits metrics in
  let message_bound = c_bits * word in
  let max_round_edge_bits = Metrics.max_round_edge_bits metrics in
  {
    n;
    d;
    word;
    bandwidth;
    rounds;
    round_bound;
    round_constant = float_of_int rounds /. float_of_int unit_rounds;
    rounds_ok = rounds <= round_bound;
    max_message_bits;
    message_bound;
    message_constant = float_of_int max_message_bits /. float_of_int word;
    message_ok = max_message_bits <= message_bound;
    max_round_edge_bits;
    burst_ok = max_round_edge_bits <= bandwidth;
  }

let ok v = v.rounds_ok && v.message_ok && v.burst_ok

let pp ppf v =
  let flag b = if b then "ok" else "EXCEEDED" in
  Format.fprintf ppf
    "@[<v>bounds (n=%d, D=%d, word=%d, B=%d):@ \
     rounds            : %d <= %d = c*(D+1)*min(log n, D+1)  [%s, observed \
     c=%.2f]@ \
     max message bits  : %d <= %d = c*log n  [%s, observed c=%.2f]@ \
     max round-edge    : %d <= %d = B  [%s]@]"
    v.n v.d v.word v.bandwidth v.rounds v.round_bound (flag v.rounds_ok)
    v.round_constant v.max_message_bits v.message_bound (flag v.message_ok)
    v.message_constant v.max_round_edge_bits v.bandwidth (flag v.burst_ok)

let assert_ok v =
  if not (ok v) then failwith (Format.asprintf "Bounds.assert_ok: %a" pp v)
