type attr = string * int

type event =
  | Span_open of { name : string; round : int }
  | Span_close of { name : string; round : int; attrs : attr list }
  | Round of { round : int; active : int; messages : int; bits : int }
  | Message of { round : int; src : int; dst : int; bits : int }
  | Fault of { round : int; kind : string; src : int; dst : int }
  | Note of { name : string; value : int; round : int }

type span = {
  name : string;
  depth : int;
  start_round : int;
  end_round : int;
  attrs : attr list;
}

type t = {
  keep_messages : bool;
  max_events : int;
  mutable events_rev : event list;
  mutable n_events : int;
  mutable dropped : int;
  mutable stack : (string * int * int) list;
      (* (name, start_round, open sequence number), innermost first *)
  mutable spans_rev : (int * span) list;  (* (open sequence number, span) *)
  mutable opened : int;
}

let create ?(keep_messages = false) ?(max_events = 200_000) () =
  {
    keep_messages;
    max_events;
    events_rev = [];
    n_events = 0;
    dropped = 0;
    stack = [];
    spans_rev = [];
    opened = 0;
  }

let keep_messages t = t.keep_messages

let push t ev =
  if t.n_events >= t.max_events then t.dropped <- t.dropped + 1
  else begin
    t.events_rev <- ev :: t.events_rev;
    t.n_events <- t.n_events + 1
  end

let span_open t name ~round =
  push t (Span_open { name; round });
  t.stack <- (name, round, t.opened) :: t.stack;
  t.opened <- t.opened + 1

let span_close t ?(attrs = []) ~round () =
  match t.stack with
  | [] -> invalid_arg "Trace.span_close: no open span"
  | (name, start_round, seq) :: rest ->
      t.stack <- rest;
      push t (Span_close { name; round; attrs });
      let span =
        { name; depth = List.length rest; start_round; end_round = round; attrs }
      in
      t.spans_rev <- (seq, span) :: t.spans_rev

let with_span tr name ~clock f =
  match tr with
  | None -> f ()
  | Some t ->
      span_open t name ~round:(clock ());
      let finish () = span_close t ~round:(clock ()) () in
      let result =
        try f ()
        with e ->
          finish ();
          raise e
      in
      finish ();
      result

let on_round t ~round ~active ~messages ~bits =
  push t (Round { round; active; messages; bits })

let on_message t ~round ~src ~dst ~bits =
  if t.keep_messages then push t (Message { round; src; dst; bits })

let on_fault t ~round ~kind ~src ~dst = push t (Fault { round; kind; src; dst })

let note t name value ~round = push t (Note { name; value; round })
let events t = List.rev t.events_rev

let spans t =
  List.map snd
    (List.sort (fun (a, _) (b, _) -> compare a b) t.spans_rev)

let open_spans t = List.length t.stack
let open_span_names t = List.map (fun (name, _, _) -> name) t.stack
let dropped t = t.dropped

let summary t =
  (* Aggregate by name, preserving order of first appearance. *)
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      let r = s.end_round - s.start_round in
      match Hashtbl.find_opt tbl s.name with
      | None ->
          Hashtbl.replace tbl s.name (1, r, r);
          order := s.name :: !order
      | Some (count, total, mx) ->
          Hashtbl.replace tbl s.name (count + 1, total + r, max mx r))
    (spans t);
  List.rev_map
    (fun name ->
      let (count, total, mx) = Hashtbl.find tbl name in
      (name, count, total, mx))
    !order

let pp_summary ppf t =
  Format.fprintf ppf "@[<v>%-28s %8s %12s %10s" "phase" "spans" "span-rounds"
    "max";
  List.iter
    (fun (name, count, total, mx) ->
      Format.fprintf ppf "@ %-28s %8d %12d %10d" name count total mx)
    (summary t);
  if t.dropped > 0 then
    Format.fprintf ppf "@ (journal overflowed: %d events dropped)" t.dropped;
  if open_spans t > 0 then
    Format.fprintf ppf "@ (%d spans left open by an aborted run)" (open_spans t);
  Format.fprintf ppf "@]"

(* JSON emission ------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let json_str b s =
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"'

let json_field b first key emit =
  if not !first then Buffer.add_char b ',';
  first := false;
  json_str b key;
  Buffer.add_char b ':';
  emit ()

let json_attrs b attrs =
  Buffer.add_char b '{';
  let first = ref true in
  List.iter
    (fun (k, v) ->
      json_field b first k (fun () -> Buffer.add_string b (string_of_int v)))
    attrs;
  Buffer.add_char b '}'

let json_list b xs emit =
  Buffer.add_char b '[';
  let first = ref true in
  List.iter
    (fun x ->
      if not !first then Buffer.add_char b ',';
      first := false;
      emit x)
    xs;
  Buffer.add_char b ']'

let to_buffer ?(name = "trace") ?(meta = []) ?metrics t b =
  Buffer.add_char b '{';
  let first = ref true in
  let int_field k v =
    json_field b first k (fun () -> Buffer.add_string b (string_of_int v))
  in
  json_field b first "schema" (fun () -> json_str b "distplanar-trace/1");
  json_field b first "name" (fun () -> json_str b name);
  json_field b first "meta" (fun () -> json_attrs b meta);
  json_field b first "spans" (fun () ->
      json_list b (spans t) (fun s ->
          Buffer.add_char b '{';
          let f = ref true in
          json_field b f "name" (fun () -> json_str b s.name);
          json_field b f "depth" (fun () ->
              Buffer.add_string b (string_of_int s.depth));
          json_field b f "start" (fun () ->
              Buffer.add_string b (string_of_int s.start_round));
          json_field b f "end" (fun () ->
              Buffer.add_string b (string_of_int s.end_round));
          json_field b f "rounds" (fun () ->
              Buffer.add_string b (string_of_int (s.end_round - s.start_round)));
          json_field b f "attrs" (fun () -> json_attrs b s.attrs);
          Buffer.add_char b '}'));
  json_field b first "notes" (fun () ->
      json_list b
        (List.filter_map
           (function Note { name; value; round } -> Some (name, value, round) | _ -> None)
           (events t))
        (fun (name, value, round) ->
          Buffer.add_char b '{';
          let f = ref true in
          json_field b f "name" (fun () -> json_str b name);
          json_field b f "value" (fun () ->
              Buffer.add_string b (string_of_int value));
          json_field b f "round" (fun () ->
              Buffer.add_string b (string_of_int round));
          Buffer.add_char b '}'));
  (match metrics with
  | None -> ()
  | Some m ->
      json_field b first "rounds" (fun () ->
          json_list b (Metrics.round_log m) (fun r ->
              Buffer.add_char b '{';
              let f = ref true in
              json_field b f "round" (fun () ->
                  Buffer.add_string b (string_of_int r.Metrics.round));
              json_field b f "active" (fun () ->
                  Buffer.add_string b (string_of_int r.Metrics.active));
              json_field b f "messages" (fun () ->
                  Buffer.add_string b (string_of_int r.Metrics.messages));
              json_field b f "bits" (fun () ->
                  Buffer.add_string b (string_of_int r.Metrics.bits));
              Buffer.add_char b '}'));
      json_field b first "edges" (fun () ->
          let rows = ref [] in
          Metrics.iter_dir m (fun ~src ~dst ~bits ~messages ~burst ->
              rows := (src, dst, bits, messages, burst) :: !rows);
          json_list b (List.rev !rows)
            (fun (src, dst, bits, messages, burst) ->
              Buffer.add_char b '{';
              let f = ref true in
              json_field b f "src" (fun () ->
                  Buffer.add_string b (string_of_int src));
              json_field b f "dst" (fun () ->
                  Buffer.add_string b (string_of_int dst));
              json_field b f "bits" (fun () ->
                  Buffer.add_string b (string_of_int bits));
              json_field b f "messages" (fun () ->
                  Buffer.add_string b (string_of_int messages));
              json_field b f "max_round_bits" (fun () ->
                  Buffer.add_string b (string_of_int burst));
              Buffer.add_char b '}')));
  let faults =
    List.filter_map
      (function
        | Fault { round; kind; src; dst } -> Some (round, kind, src, dst)
        | _ -> None)
      (events t)
  in
  if faults <> [] then
    json_field b first "faults" (fun () ->
        json_list b faults (fun (round, kind, src, dst) ->
            Buffer.add_char b '{';
            let f = ref true in
            json_field b f "round" (fun () ->
                Buffer.add_string b (string_of_int round));
            json_field b f "kind" (fun () -> json_str b kind);
            json_field b f "src" (fun () ->
                Buffer.add_string b (string_of_int src));
            json_field b f "dst" (fun () ->
                Buffer.add_string b (string_of_int dst));
            Buffer.add_char b '}'));
  if t.keep_messages then
    json_field b first "messages" (fun () ->
        json_list b
          (List.filter_map
             (function
               | Message { round; src; dst; bits } -> Some (round, src, dst, bits)
               | _ -> None)
             (events t))
          (fun (round, src, dst, bits) ->
            Buffer.add_char b '{';
            let f = ref true in
            json_field b f "round" (fun () ->
                Buffer.add_string b (string_of_int round));
            json_field b f "src" (fun () ->
                Buffer.add_string b (string_of_int src));
            json_field b f "dst" (fun () ->
                Buffer.add_string b (string_of_int dst));
            json_field b f "bits" (fun () ->
                Buffer.add_string b (string_of_int bits));
            Buffer.add_char b '}'));
  int_field "open_spans" (open_spans t);
  int_field "dropped_events" t.dropped;
  Buffer.add_char b '}'

let to_json_string ?name ?meta ?metrics t =
  let b = Buffer.create 4096 in
  to_buffer ?name ?meta ?metrics t b;
  Buffer.contents b

let write_json ?name ?meta ?metrics oc t =
  let b = Buffer.create 65536 in
  to_buffer ?name ?meta ?metrics t b;
  Buffer.output_buffer oc b;
  output_char oc '\n'
