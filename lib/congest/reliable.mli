(** Reliable, in-order, exactly-once delivery over a faulty network.

    {!wrap} turns any {!Network.protocol} into one that survives the
    message-level faults of a {!Fault.plan} — drops, duplicates,
    reordering, delay, adversarial inbox permutation — without changing
    the inner protocol at all. The classic machinery: every payload gets
    a per-link sequence number, receivers acknowledge cumulatively and
    deliver exactly once in sequence order (buffering out-of-order
    arrivals, discarding duplicates), and senders retransmit the oldest
    unacknowledged packet when its timeout expires. The inner protocol
    therefore sees exactly the inbox contract documented on
    {!Network.type-protocol} — ascending sender id, per-sender send
    order — even in adversarial delivery mode.

    Retransmission timers need a clock, which the fault-aware engine
    provides by stepping every live node every round; under the clean
    engine (no plan installed) nothing is ever lost, so no timer needs
    to fire and the wrapper is pure constant-factor overhead (one header
    per payload, one ack per inbox).

    What the wrapper cannot do: carry a message to a node that never
    comes back. Against crash-restart outages it recovers (deliveries to
    a down node are discarded by the engine, so the sender retransmits
    until the restart); against a {e permanent} crash the sender
    retransmits forever and the run ends with {!Network.No_quiescence} —
    reliable delivery to a dead peer is impossible, not expensive.

    DESIGN.md §9 specifies the interplay with each fault kind. *)

type 'm packet =
  | Data of { seq : int; payload : 'm }
      (** one inner-protocol message, tagged with its per-link sequence
          number. *)
  | Ack of { upto : int }
      (** cumulative acknowledgement: every sequence number [<= upto]
          of this link has been received. *)

type ('s, 'm) state
(** The wrapped per-node state: the inner state plus one send/receive
    channel per incident link. *)

val inner_state : ('s, 'm) state -> 's
(** The inner protocol's current state (e.g. to read final results out
    of a raw {!Network.exec} run on a wrapped protocol). *)

type counters = {
  mutable retransmits : int;  (** timed-out packets sent again. *)
  mutable dup_discards : int;  (** received copies discarded as already
                                   delivered or already buffered. *)
  mutable out_of_order : int;  (** arrivals ahead of the next expected
                                   sequence number, buffered. *)
}

val counters : unit -> counters
(** A fresh all-zero counter record to pass to {!wrap} when the
    recovery work itself is the measurement (bench/chaos.ml does). *)

val wrap :
  ?timeout:int ->
  ?stats:counters ->
  ('s, 'm) Network.protocol ->
  (('s, 'm) state, 'm packet) Network.protocol
(** [wrap proto] is the sequence-numbered, acknowledged, retransmitting
    version of [proto]. [timeout] (default [6], must be [>= 2]) is the
    number of rounds a sender waits on the oldest unacknowledged packet
    of a link before retransmitting it; keep it above the plan's
    [max_delay] plus the two-round ack round trip or spurious (harmless,
    but chatty) retransmissions occur. All [stats] updates across all
    nodes accumulate into the one record given.

    Overhead per message: a {!packet} header of {!header_bits} on every
    payload, one cumulative ack per received inbox, plus retransmissions
    under loss — budget bandwidth accordingly (or use {!exec}, which
    does). @raise Invalid_argument if [timeout < 2]. *)

val header_bits : int
(** Bits charged for a packet header (sequence number plus tag); an
    [Ack] costs exactly this, a [Data] costs this plus its payload. *)

val exec :
  ?domains:int ->
  ?bandwidth:int ->
  ?max_rounds:int ->
  ?observe:Observe.t ->
  ?faults:Fault.plan ->
  ?timeout:int ->
  ?stats:counters ->
  Gr.t ->
  ('s, 'm) Network.protocol ->
  's Network.run_result
(** Run [proto] wrapped, unwrap the result: drop-in for
    {!Network.exec} when the link layer should be reliable. [bandwidth]
    is the {e inner} protocol's per-edge budget (default
    {!Network.default_bandwidth}); the engine itself is given
    [3 * bandwidth + 128] bits so headers, acks and retransmissions fit
    — a constant factor, preserving the CONGEST [O(log n)] regime.
    [domains] passes through to the engine: with a plan installed,
    [domains > 1] runs the sharded clocked engine (deterministic per
    [(seed, domains)], stream-distinct across domain counts — see
    {!Network.exec}). The report (messages, bits, bursts) describes the
    wire, overhead included; the returned states are the inner ones.
    @raise Network.Bandwidth_exceeded, Network.No_quiescence,
    Invalid_argument as {!Network.exec}. *)
