type t = {
  g : Gr.t;
  bandwidth : int;
  metrics : Metrics.t;
  trace : Trace.t option;
  round_base : int;
  mutable clock : int;
}

let create ?bandwidth ?trace ?(round_base = 0) g metrics =
  let bandwidth =
    match bandwidth with Some b -> b | None -> Network.default_bandwidth g
  in
  { g; bandwidth; metrics; trace; round_base; clock = 0 }

let bandwidth t = t.bandwidth

let word t =
  let n = max 2 (Gr.n t.g) in
  let rec bits_needed k acc = if k <= 1 then acc else bits_needed (k / 2) (acc + 1) in
  bits_needed (n - 1) 1

let clock t = t.clock
let now t = t.round_base + t.clock
let advance t r = t.clock <- t.clock + r
let ceil_div a b = (a + b - 1) / b

let span_open t name =
  match t.trace with
  | Some tr -> Trace.span_open tr name ~round:(now t)
  | None -> ()

let span_close t ?attrs () =
  match t.trace with
  | Some tr -> Trace.span_close tr ?attrs ~round:(now t) ()
  | None -> ()

let span t name f =
  span_open t name;
  let result =
    try f ()
    with e ->
      span_close t ();
      raise e
  in
  span_close t ();
  result

let note t name value =
  match t.trace with
  | Some tr -> Trace.note tr name value ~round:(now t)
  | None -> ()

let charge_path t path ~bits =
  match path with
  | [] | [ _ ] -> ()
  | first :: rest ->
      let len = List.length rest in
      let prev = ref first in
      List.iter
        (fun v ->
          Metrics.add_dir_bits t.metrics ~u:!prev ~v ~bits;
          prev := v)
        rest;
      if bits > 0 then t.clock <- t.clock + len + ceil_div bits t.bandwidth - 1

let tree_loads t ~root ~parent ~members ~bits_of ~combining =
  (* Accumulate per-directed-edge (child -> parent) loads by walking each
     member to the root; with [combining] a later walk does not re-add
     bits to an edge already loaded (the fold combines). Returns
     (loads, depth). *)
  let loads = Hashtbl.create 64 in
  let depth = ref 0 in
  List.iter
    (fun v0 ->
      let bits = bits_of v0 in
      let d = ref 0 in
      let v = ref v0 in
      while !v <> root do
        let p = parent !v in
        if p = !v then invalid_arg "Costmodel: broken tree";
        if not (Gr.mem_edge t.g !v p) then raise Not_found;
        let key = (!v, p) in
        let sofar = try Hashtbl.find loads key with Not_found -> 0 in
        Hashtbl.replace loads key (if combining then max sofar bits else sofar + bits);
        incr d;
        v := p
      done;
      if !d > !depth then depth := !d)
    members;
  (loads, !depth)

let commit_loads t loads =
  Hashtbl.iter
    (fun (u, v) l -> Metrics.add_dir_bits t.metrics ~u ~v ~bits:l)
    loads

let charge_tree t ~root ~parent ~members ~bits_of =
  let (loads, depth) = tree_loads t ~root ~parent ~members ~bits_of ~combining:false in
  let max_load = Hashtbl.fold (fun _ l acc -> max l acc) loads 0 in
  commit_loads t loads;
  if max_load > 0 || depth > 0 then
    t.clock <- t.clock + depth + ceil_div max_load t.bandwidth

let charge_aggregate t ~root ~parent ~members ~bits =
  let (loads, depth) =
    tree_loads t ~root ~parent ~members ~bits_of:(fun _ -> bits) ~combining:true
  in
  commit_loads t loads;
  if depth > 0 || bits > 0 then
    t.clock <- t.clock + depth + max 0 (ceil_div bits t.bandwidth - 1)

let note_edge_bits t e bits = Metrics.add_edge_bits_by_index t.metrics e bits
let note_dir_bits t ~u ~v bits = Metrics.add_dir_bits t.metrics ~u ~v ~bits

let branch_max t branches =
  let t0 = t.clock in
  let finish =
    List.fold_left
      (fun acc f ->
        t.clock <- t0;
        f ();
        max acc t.clock)
      t0 branches
  in
  t.clock <- finish

let phase t name f =
  let r0 = t.clock in
  span_open t name;
  let result =
    try f ()
    with e ->
      span_close t ();
      raise e
  in
  span_close t ();
  Metrics.phase t.metrics name (t.clock - r0);
  result
