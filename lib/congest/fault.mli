(** Deterministic fault injection for the CONGEST engine.

    A {e fault plan} describes a controlled departure from the clean
    synchronous model: per-message drop / duplication / reordering
    probabilities, bounded extra delivery delay (asynchrony within the
    round structure), scheduled node crashes with optional restarts, and
    an adversarial delivery mode that permutes every inbox. Installing a
    plan in {!Network.exec} (its [?faults] argument) switches the engine
    to its fault-aware {e clocked} loop; with no plan installed the
    engine's behavior and performance are exactly those of the clean
    flat-array loop. The precise semantics of each fault kind are
    specified in DESIGN.md §9.

    {b Determinism.} Every random decision is drawn from one splitmix64
    stream owned by the plan and seeded at construction. The engine
    consumes the stream in a deterministic order (it is itself
    deterministic), so two runs of the same protocol on the same graph
    with plans built from the same spec and seed are identical — same
    states, same rounds, same fault events, same trace. [test_fault.ml]
    asserts this.

    With [domains > 1] the sharded clocked engine draws each decision
    from a keyed {!substream} instead — deterministic for a given
    [(seed, domains)], but {e stream-distinct} from the [domains = 1]
    run: the same seed produces an equally valid, different fault
    schedule at each domain count. See {!section:substreams}.

    A plan is mutable (the stream position and the {!stats} counters
    advance as the engine consults it); build a fresh plan, or
    {!reset} an existing one, for every run that must be reproducible. *)

type crash = {
  node : int;  (** the node that fails. *)
  at : int;  (** first round (within one [exec] run) the node is down. *)
  restart : int option;
      (** first round the node is up again; [None] = permanent crash. *)
}
(** One scheduled crash: the node takes no step and receives nothing in
    rounds [at <= r < restart]; it resumes from its {e held} state (a warm
    restart — crash amnesia is out of scope). Rounds are relative to the
    [exec] run the plan is installed in. *)

type spec = {
  drop : float;  (** per-message loss probability, in [[0,1]]. *)
  duplicate : float;  (** per-message duplication probability. *)
  reorder : float;
      (** per-copy probability of losing its place in the sender's FIFO
          order (the copy sorts under a random key instead of its send
          sequence number). *)
  delay : float;  (** per-copy probability of a late delivery. *)
  max_delay : int;
      (** a delayed copy arrives [1..max_delay] rounds after its normal
          next-round delivery (uniform); must be [>= 1]. *)
  adversarial : bool;
      (** permute every delivered inbox (seeded Fisher–Yates), voiding
          the sorted-by-sender delivery-order guarantee. *)
  crashes : crash list;
  grace : int;
      (** quiescence patience: the clocked loop stops only after [grace]
          consecutive rounds with no sends and nothing in flight (gives
          timer-driven protocols, e.g. {!Reliable} retransmission, room
          to wake up); must be [>= 1]. *)
}
(** What can go wrong, and how often. Build one by overriding
    {!default}: [{ Fault.default with drop = 0.05 }]. *)

val default : spec
(** The all-zero spec: no drops, no duplicates, no reordering, no
    delays ([max_delay = 3] for when [delay] is raised), no crashes,
    fair delivery, [grace = 8]. *)

type plan
(** A spec bound to a seeded random stream plus the run's fault
    counters. *)

val make : ?spec:spec -> seed:int -> unit -> plan
(** [make ~spec ~seed ()] compiles the spec (default {!default}) into a
    plan. @raise Invalid_argument if a probability is outside [[0,1]],
    [max_delay < 1], [grace < 1], or a crash has [at < 0] or
    [restart <= at]. *)

val spec : plan -> spec
val seed : plan -> int

val reset : plan -> unit
(** Rewind the random stream to the seed and zero the {!stats} — the
    plan will drive an identical run again. *)

type stats = {
  dropped : int;  (** messages lost on the wire. *)
  duplicated : int;  (** messages delivered twice. *)
  reordered : int;  (** copies that lost their FIFO place. *)
  delayed : int;  (** copies delivered late. *)
  crash_lost : int;  (** deliveries discarded at a down node. *)
  crashes : int;  (** crash transitions executed. *)
  restarts : int;  (** restart transitions executed. *)
}

val stats : plan -> stats
(** What the plan actually did to the run so far. Deterministic given
    the seed; equality of stats is part of the determinism contract. *)

(** {2 Engine-facing interface}

    The functions below are consulted by the fault-aware loop of
    {!Network.exec}; library users normally never call them. They mutate
    the plan's stream and counters, in engine-visit order, which is what
    makes the whole run reproducible. *)

type delivery = {
  offset : int;
      (** extra rounds beyond the normal next-round delivery ([0] =
          on time). *)
  key : int option;
      (** [Some k]: sort this copy under random key [k] instead of its
          send sequence number (a reordering). *)
}

val fate : plan -> delivery list
(** Decide what happens to one sent message: [[]] = dropped; one or (on
    duplication) two deliveries otherwise, each with its own delay and
    reordering draws. Updates {!stats}. *)

val down : plan -> node:int -> round:int -> bool
(** Is the node crashed (and not yet restarted) in this round? *)

val transitions : plan -> round:int -> (int * [ `Crash | `Restart ]) list
(** The crash/restart transitions scheduled for this round, in spec
    order. The engine calls this exactly once per round; the call counts
    the transitions into {!stats}. *)

val note_crash_lost : plan -> unit
(** Count one delivery discarded at a down node (the engine discards;
    the plan only keeps the score). *)

val permute : plan -> 'a array -> unit
(** Seeded in-place Fisher–Yates shuffle — the adversarial inbox
    permutation. Consumes no randomness on arrays shorter than 2. *)

(** {2:substreams Keyed substreams (sharded engine)}

    The sequential clocked engine consumes the plan's single stream in
    engine-visit order; a sharded visit order would scramble it. The
    sharded fault engine instead opens a fresh substream per decision
    point, keyed by [(shard, round, slot)] and derived from the plan's
    seed by splitmix64 finalization — no draw consumes another key's
    randomness, so the whole run is a pure function of
    [(seed, domains, spec, protocol, graph)]. Verdicts are
    {e seed-compatible but stream-distinct} from [domains = 1]: expect a
    different (equally valid) fault schedule per domain count.

    Substream draws tally {!stats} into the shared plan, so they must be
    made from a serial section — the sharded engine's network phase —
    never concurrently. *)

type sub
(** A keyed substream of a plan's randomness. *)

val substream : plan -> shard:int -> round:int -> slot:int -> sub
(** [substream p ~shard ~round ~slot] opens the substream for one
    decision point. The engine keys per-message fates by the sender's
    shard, the send round and the target dart slot, and adversarial
    inbox permutations by the recipient's shard, the delivery round and
    a slot offset past the dart range. *)

val sub_fate : sub -> delivery list
(** {!fate}, drawing from the substream (stats tally into the plan). *)

val sub_permute : sub -> 'a array -> unit
(** {!permute}, drawing from the substream. *)

val horizon : plan -> int
(** The last round mentioned by the crash schedule (0 if none): the
    clocked loop refuses to declare quiescence earlier, so a restart
    scheduled after a lull still happens. *)

val grace : plan -> int
(** The spec's quiescence patience (see {!type:spec}). *)
