exception Task_failed of { index : int; exn : exn }

let default_jobs () = Domain.recommended_domain_count ()

(* One flag per process: a pool task that opened its own parallel pool
   would multiply domains quadratically, so the second parallel map is
   rejected. Sequential maps (jobs <= 1 or n <= 1) never touch the flag —
   nesting those is harmless. *)
let busy = Atomic.make false

let run_seq n f =
  (* The sequential path keeps the parallel path's error envelope: stop
     at the first failure, report its index. *)
  Array.init n (fun i ->
      try f i with e -> raise (Task_failed { index = i; exn = e }))

let map ?jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  (* Oversubscription guard: a sweep cannot go faster than the hardware,
     and extra domains on a saturated host actively hurt (per-domain
     minor heaps multiply GC work while the cores time-slice). Results
     are jobs-independent by construction, so capping is unobservable
     except in wall time. *)
  let jobs = min jobs (default_jobs ()) in
  let jobs = min jobs n in
  if jobs <= 1 then run_seq n f
  else if not (Atomic.compare_and_set busy false true) then
    raise
      (Task_failed
         {
           index = 0;
           exn =
             Invalid_argument
               "Pool.map: nested parallel map — pool tasks must not open \
                their own pool";
         })
  else begin
    let chunk = (n + jobs - 1) / jobs in
    let results = Array.make n None in
    let filled = Array.make n false in
    let errors : (int * exn) option array = Array.make jobs None in
    let chunk_of j =
      let lo = j * chunk in
      let hi = min n (lo + chunk) in
      try
        for i = lo to hi - 1 do
          results.(i) <- Some (f i);
          filled.(i) <- true
        done
      with e ->
        (* The raise struck at the first unfilled slot of this chunk. *)
        let i = ref lo in
        while !i < hi && filled.(!i) do
          incr i
        done;
        errors.(j) <- Some (!i, e)
    in
    let workers =
      Array.init (jobs - 1) (fun j -> Domain.spawn (fun () -> chunk_of (j + 1)))
    in
    chunk_of 0;
    Array.iter Domain.join workers;
    Atomic.set busy false;
    (* Chunks are contiguous ascending, so the lowest erring chunk holds
       the lowest failing task index — the failure a sequential sweep
       would have reported. *)
    let first_err = ref None in
    for j = jobs - 1 downto 0 do
      match errors.(j) with Some _ as e -> first_err := e | None -> ()
    done;
    (match !first_err with
    | Some (index, exn) -> raise (Task_failed { index; exn })
    | None -> ());
    Array.map (function Some x -> x | None -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* Persistent pool with a shared task queue (work stealing)            *)
(* ------------------------------------------------------------------ *)

(* The round engine calls into the pool thousands of times per run, so a
   dispatch must cost a few atomic operations when the workers are hot.
   Workers first spin on the generation counter (cpu_relax), and only
   park on the condition variable after the spin budget runs out — a
   run on an oversubscribed or single-core machine degrades to ordinary
   blocking instead of livelocking.

   Tasks are claimed from one shared Atomic counter (fetch-and-add):
   whichever domain is free takes the next index, so an imbalanced task
   list cannot serialize on the slowest statically-assigned worker.
   Determinism is the caller's job and is easy to keep: tasks write to
   slot-indexed buffers, and the caller merges them in index order after
   [run] returns — which domain executed a task is then unobservable.

   Publication safety: [job]/[tasks] are plain fields written by the
   coordinator strictly before the Atomic bump of [gen]; a worker reads
   them only after observing the new generation, which establishes the
   happens-before edge. No worker can still be reading the previous
   run's fields when the coordinator writes, because [run] returns only
   after every party (workers and caller) has arrived for the current
   generation. *)
(* The three hot atomics live on distinct cache lines: [gen] is spun on
   by every parked-out worker, [next] is fetch-and-added once per task
   claim, and [arrived] once per party per dispatch. An [Atomic.t] is a
   two-word block, so allocating them back to back (as a record literal
   does) lands all three on one line and every claim invalidates every
   spinner. The pad arrays are allocated between the atomics and kept
   reachable from the record — the standard separation idiom until
   [Atomic.make_contended] (OCaml >= 5.2) is available here. *)
type t = {
  parties : int;
  mutable job : int -> unit;
  mutable tasks : int;
  gen : int Atomic.t;
  _pad_gen : int array;
  next : int Atomic.t;
  _pad_next : int array;
  arrived : int Atomic.t;
  _pad_arrived : int array;
  stop : bool Atomic.t;
  mutable err : (int * exn) option;  (* lowest failing index; under [em] *)
  em : Mutex.t;
  m : Mutex.t;
  cv : Condition.t;  (* wakes parked workers on a generation bump *)
  dm : Mutex.t;
  dcv : Condition.t;  (* wakes the coordinator when all parties arrived *)
  spin : int;
  mutable workers : unit Domain.t array;
  mutable live : bool;
}

let nop (_ : int) = ()

let record_err t i e =
  Mutex.lock t.em;
  (match t.err with
  | Some (i', _) when i' <= i -> ()
  | _ -> t.err <- Some (i, e));
  Mutex.unlock t.em

let claim_loop t f total =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add t.next 1 in
    if i >= total then continue := false
    else try f i with e -> record_err t i e
  done

let arrive t =
  if 1 + Atomic.fetch_and_add t.arrived 1 = t.parties then begin
    Mutex.lock t.dm;
    Condition.broadcast t.dcv;
    Mutex.unlock t.dm
  end

let worker_loop t =
  (* The baseline generation is the one the pool was created with, not a
     startup-time read: the coordinator may publish the first job before
     this domain gets scheduled, and reading [gen] here would silently
     skip that job — a missed generation deadlocks the arrival barrier. *)
  let last = ref 0 in
  let running = ref true in
  while !running do
    (* Spin, then park: the generation bump is the release signal. *)
    let spins = ref t.spin in
    while Atomic.get t.gen = !last && !spins > 0 do
      Domain.cpu_relax ();
      decr spins
    done;
    if Atomic.get t.gen = !last then begin
      Mutex.lock t.m;
      while Atomic.get t.gen = !last do
        Condition.wait t.cv t.m
      done;
      Mutex.unlock t.m
    end;
    last := Atomic.get t.gen;
    if Atomic.get t.stop then running := false
    else begin
      claim_loop t t.job t.tasks;
      arrive t
    end
  done

let create ?domains () =
  let parties =
    match domains with
    | None -> default_jobs ()
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Pool.create: domains must be at least 1"
  in
  (* Sequence the allocations so each pad array physically separates
     the atomic blocks it sits between (see the type's comment). *)
  let gen = Atomic.make 0 in
  let pad_gen = Array.make 15 0 in
  let next = Atomic.make 0 in
  let pad_next = Array.make 15 0 in
  let arrived = Atomic.make 0 in
  let pad_arrived = Array.make 15 0 in
  let t =
    {
      parties;
      job = nop;
      tasks = 0;
      gen;
      _pad_gen = pad_gen;
      next;
      _pad_next = pad_next;
      arrived;
      _pad_arrived = pad_arrived;
      stop = Atomic.make false;
      err = None;
      em = Mutex.create ();
      m = Mutex.create ();
      cv = Condition.create ();
      dm = Mutex.create ();
      dcv = Condition.create ();
      (* Spinning only pays when the workers can actually run in
         parallel with the coordinator; on a single-core host park
         immediately. *)
      spin = (if default_jobs () > 1 then 2000 else 1);
      workers = [||];
      live = true;
    }
  in
  t.workers <-
    Array.init (parties - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.parties

let publish t =
  Mutex.lock t.m;
  Atomic.incr t.gen;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let run t ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  if not t.live then invalid_arg "Pool.run: pool is shut down";
  if tasks > 0 then begin
    t.job <- f;
    t.tasks <- tasks;
    t.err <- None;
    Atomic.set t.next 0;
    Atomic.set t.arrived 0;
    publish t;
    claim_loop t f tasks;
    arrive t;
    (* Completion = every party arrived: all tasks were claimed and the
       claiming domains have finished running them. *)
    let spins = ref t.spin in
    while Atomic.get t.arrived < t.parties && !spins > 0 do
      Domain.cpu_relax ();
      decr spins
    done;
    if Atomic.get t.arrived < t.parties then begin
      Mutex.lock t.dm;
      while Atomic.get t.arrived < t.parties do
        Condition.wait t.dcv t.dm
      done;
      Mutex.unlock t.dm
    end;
    match t.err with
    | Some (index, exn) -> raise (Task_failed { index; exn })
    | None -> ()
  end

let shutdown t =
  if t.live then begin
    t.live <- false;
    Atomic.set t.stop true;
    publish t;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
