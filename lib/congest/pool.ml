exception Task_failed of { index : int; exn : exn }

let default_jobs () = Domain.recommended_domain_count ()

(* One flag per process: a pool task that opened its own parallel pool
   would multiply domains quadratically, so the second parallel map is
   rejected. Sequential maps (jobs <= 1 or n <= 1) never touch the flag —
   nesting those is harmless. *)
let busy = Atomic.make false

let run_seq n f =
  (* The sequential path keeps the parallel path's error envelope: stop
     at the first failure, report its index. *)
  Array.init n (fun i ->
      try f i with e -> raise (Task_failed { index = i; exn = e }))

let map ?jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative task count";
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 then run_seq n f
  else if not (Atomic.compare_and_set busy false true) then
    raise
      (Task_failed
         {
           index = 0;
           exn =
             Invalid_argument
               "Pool.map: nested parallel map — pool tasks must not open \
                their own pool";
         })
  else begin
    let chunk = (n + jobs - 1) / jobs in
    let results = Array.make n None in
    let filled = Array.make n false in
    let errors : (int * exn) option array = Array.make jobs None in
    let chunk_of j =
      let lo = j * chunk in
      let hi = min n (lo + chunk) in
      try
        for i = lo to hi - 1 do
          results.(i) <- Some (f i);
          filled.(i) <- true
        done
      with e ->
        (* The raise struck at the first unfilled slot of this chunk. *)
        let i = ref lo in
        while !i < hi && filled.(!i) do
          incr i
        done;
        errors.(j) <- Some (!i, e)
    in
    let workers =
      Array.init (jobs - 1) (fun j -> Domain.spawn (fun () -> chunk_of (j + 1)))
    in
    chunk_of 0;
    Array.iter Domain.join workers;
    Atomic.set busy false;
    (* Chunks are contiguous ascending, so the lowest erring chunk holds
       the lowest failing task index — the failure a sequential sweep
       would have reported. *)
    let first_err = ref None in
    for j = jobs - 1 downto 0 do
      match errors.(j) with Some _ as e -> first_err := e | None -> ()
    done;
    (match !first_err with
    | Some (index, exn) -> raise (Task_failed { index; exn })
    | None -> ());
    Array.map (function Some x -> x | None -> assert false) results
  end
