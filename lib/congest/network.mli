(** Synchronous message-passing engine for the CONGEST model.

    Execution proceeds in synchronous rounds. In each round every node
    reads the messages delivered over its incident edges, updates its
    state, and emits at most [bandwidth] bits per incident edge (the
    CONGEST restriction: one [O(log n)]-bit message per edge per round).
    Exceeding the budget raises {!Bandwidth_exceeded} — the simulator
    enforces the model rather than silently queueing.

    The engine runs until {e quiescence}: a round in which no node sends
    any message. Nodes in a real deployment would detect termination with
    standard echo techniques at the same asymptotic cost; the simulator
    plays the global observer, which is the usual convention for measuring
    round complexity.

    The entry point is {!exec}: a flat-array engine over the graph's dart
    tables ({!Gr.dart_offsets}) whose round loop allocates nothing beyond
    the message lists the protocol interface requires, and whose per-round
    cost is [O(active + messages)] rather than [O(n)]. Every knob — domain
    count, epoch width, bandwidth, observation sinks, fault plan — travels
    in one {!Config.t} value. The pre-redesign {!run} remains as a
    deprecated shim; its sole remaining purpose is to serve as the
    {e differential oracle} in [test/test_engine_diff.ml]. *)

type ('s, 'm) protocol = {
  init : Gr.t -> int -> 's * (int * 'm) list;
      (** initial state and round-0 outbox of each node. A node knows only
          its own id and its neighbor ids, as in the paper's input model. *)
  round : Gr.t -> int -> 's -> (int * 'm) list -> 's * (int * 'm) list;
      (** [round g v state inbox] processes the messages [(from, msg)]
          delivered this round and returns the new state and outbox
          [(to, msg)]. Destinations must be neighbors of [v].

          {b Delivery order guarantee:} the inbox is sorted by sender id
          (ascending), and several messages from the same sender arrive
          in the order that sender listed them in its outbox. Protocols
          may rely on this; it is deterministic by construction. *)
  msg_bits : 'm -> int;
      (** the size in bits charged for a message — the protocol declares
          its own coding, the engine enforces the budget. *)
}
(** A node-level synchronous protocol: what a node does at wake-up and
    in every round in which it receives mail. *)

exception Bandwidth_exceeded of { round : int; u : int; v : int; bits : int }
(** A node pushed more than [bandwidth] bits over one directed edge in
    one round — the CONGEST restriction, enforced rather than queued. *)

exception No_quiescence of { round : int; active : int; messages : int }
(** Raised by {!exec} when [max_rounds] elapse without quiescence:
    [round] is the livelock guard's limit, [active] the number of nodes
    still holding undelivered mail, [messages] the number of messages
    sent in the last executed round — enough to tell a protocol that
    never converges from one that is merely slow. *)

val default_bandwidth : Gr.t -> int
(** [16 * ceil(log2 n)] bits — the [O(log n)] budget with an explicit
    constant, recorded in every experiment output. *)

type report = {
  messages : int;  (** messages sent across the whole run. *)
  bits : int;  (** total bits of those messages. *)
  max_message_bits : int;  (** largest single message. *)
  max_round_edge_bits : int;
      (** largest per-directed-edge load within one round — the value the
          bandwidth budget was checked against. *)
  active_peak : int;  (** most nodes computing in any one round. *)
  verdict : Bounds.verdict option;
      (** present iff the observer carried a bounds request. *)
}
(** The engine's own summary of a run, tallied from flat counters
    independently of any {!Metrics.t} sink — available even under
    {!Observe.none}. *)

type 's run_result = { states : 's array; rounds : int; report : report }
(** What {!exec} returns: every node's final state, the number of rounds
    executed, and the engine's {!report}. *)

(** The run configuration. One value carries every engine knob, so call
    sites build it once — [Config.default |> Config.with_domains 4] —
    and thread it through {!Proto}, {!Embedder} and {!Certify} instead
    of re-threading five optional labels per layer. *)
module Config : sig
  type t = {
    domains : int;  (** domains executing the round loop (default 1). *)
    epoch : int;
        (** maximum rounds a shard may advance between barriers when the
            active set is provably shard-internal (default 8); [1]
            disables epoch batching. Ignored at [domains = 1]. *)
    steal : int;
        (** work-stealing granularity: width-1 rounds split the active
            list into up to [domains * steal] chunks claimed dynamically
            (default 4). Ignored at [domains = 1]. *)
    bandwidth : int option;  (** per-edge bits per round; default
            {!default_bandwidth}. *)
    max_rounds : int option;  (** livelock guard; default [16n + 64]. *)
    observe : Observe.t;  (** observation sinks (default {!Observe.none}). *)
    faults : Fault.plan option;
        (** fault plan; composes with any [domains] — see {!exec} for
            the per-domain-count determinism contract. *)
  }

  val default : t
  (** Sequential, unobserved, fault-free: [domains = 1], [epoch = 8],
      [steal = 4], default bandwidth and round guard. *)

  val with_domains : int -> t -> t
  val with_epoch : int -> t -> t
  val with_steal : int -> t -> t
  val with_bandwidth : int -> t -> t
  val with_max_rounds : int -> t -> t
  val with_observe : Observe.t -> t -> t
  val with_faults : Fault.plan -> t -> t

  val make :
    ?domains:int ->
    ?bandwidth:int ->
    ?max_rounds:int ->
    ?observe:Observe.t ->
    ?faults:Fault.plan ->
    ?epoch:int ->
    ?steal:int ->
    unit ->
    t
  (** Labelled constructor, for call sites migrating from the old
      optional-argument style: unspecified fields are {!default}'s. *)
end

val exec : ?config:Config.t -> Gr.t -> ('s, 'm) protocol -> 's run_result
(** Run to quiescence under [config] (default {!Config.default}). The
    final states, the executed round count and the {!report} come back
    together; everything else — a metrics accumulator, a trace journal,
    a bounds verdict — is requested via the config's [observe] sink.
    Successive runs on the same metrics sink continue one round
    timeline: this run's round numbers are offset by [Metrics.rounds]
    at entry.

    With no fault plan installed (the default) and one domain, the run
    executes on the clean flat-array loop — bit-identical to the
    pre-fault engine, allocation-free per round, delivery order exactly
    as documented on {!type:protocol}. Installing a {!Fault.plan}
    switches the run to the fault-aware {e clocked} loop: messages are
    dropped, duplicated, reordered or delayed and nodes crash and
    restart as the plan dictates; every live node then takes a step
    {e every} round (with an empty inbox when nothing arrived), which is
    the clock timeout-driven recovery layers such as {!Reliable} run on,
    and the run ends only after the plan's grace period of consecutive
    quiet rounds. Fault events are counted into the metrics sink
    ({!Metrics.faults}) and recorded on the trace timeline
    ({!Trace.on_fault}). Same plan spec + same seed + same [domains] ⇒
    identical run. DESIGN.md §9 specifies the fault model precisely.

    [domains > 1] runs the epoch-batched work-stealing engine: the node
    range splits into contiguous shards; width-1 rounds spread the
    {e active list} over up to [domains * steal] dynamically-claimed
    chunks, and when every active node is at least [e >= 2] hops from a
    shard boundary the shards advance [e] rounds between barriers
    (capped by [epoch]), merging deterministically afterwards. The
    result — states, rounds, report, and the full metrics/trace
    timelines — is {b bit-identical} to the sequential engine for every
    (domains, epoch, steal), including which error is raised and what
    the sinks saw before it; the differential suite pins this across
    domain counts and epoch widths. Observation is deferred: slots log
    events during the run and one serial pass at run end rebuilds the
    exact sequential metrics/trace timeline (an observed parallel run
    retains its event log for the run's duration; unobserved runs log
    nothing). One restriction comes with [domains > 1]: the protocol's
    [init] and [round] closures must be pure up to their returned
    values (they run concurrently for different nodes, and [init g 0]
    is called one extra time to seed internal storage).

    A fault plan {e composes} with [domains > 1]: the run executes on
    the sharded clocked engine — parallel compute over contiguous node
    shards, one serial network phase per round for everything
    order-sensitive — and every fault decision is drawn from a keyed
    {!Fault.substream}, making the run a pure function of
    (seed, domains, spec, protocol, graph). Runs are deterministic at
    every domain count but {e seed-compatible, stream-distinct} across
    domain counts: the same seed yields an equally valid, different
    fault schedule at [domains = 1] (which consumes one stream in
    engine-visit order) and at each [domains > 1]. Reproduce a faulted
    run by fixing both the seed and the domain count. [epoch]/[steal]
    are ignored on the clocked (and plain sequential) engines.
    DESIGN.md §9, §10 and §13 specify the fault model, the parallel
    engine and the epoch scheduler.
    @raise Bandwidth_exceeded when a node over-sends on an edge.
    @raise No_quiescence if [max_rounds] elapse without quiescence — a
    livelock guard for buggy protocols.
    @raise Invalid_argument if a node addresses a non-neighbor, or if
    [domains], [epoch] or [steal] is [< 1]. *)

val exec_opts :
  ?domains:int ->
  ?bandwidth:int ->
  ?max_rounds:int ->
  ?observe:Observe.t ->
  ?faults:Fault.plan ->
  Gr.t ->
  ('s, 'm) protocol ->
  's run_result
  [@@alert
    legacy
      "exec_opts is the pre-Config labelled signature; build a \
       Network.Config.t and call Network.exec ~config instead."]
(** The pre-{!Config} labelled signature, as a thin shim over {!exec}:
    equivalent to [exec ~config:(Config.make ...ARGS... ())]. Kept so
    historical call sites compile with a one-token rename; new code
    should build a {!Config.t}. *)

val run :
  ?bandwidth:int ->
  ?max_rounds:int ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  Gr.t ->
  ('s, 'm) protocol ->
  's array
  [@@alert
    legacy
      "Network.run is the pre-redesign engine kept solely as the \
       differential oracle for test_engine_diff; use Network.exec."]
(** The pre-redesign entry point, semantics preserved exactly (including
    its per-round hashtable implementation): returns bare final states,
    takes separate [?metrics]/[?trace] sinks, and signals a livelock by
    [Failure] rather than {!No_quiescence}.

    {b This shim exists solely as the differential oracle}: the
    engine-diff suite ([test/test_engine_diff.ml]) runs it side by side
    with {!exec} to pin the flat-array and parallel engines to the
    historical semantics bit for bit. It has no other callers, and new
    code must not add any.
    @raise Bandwidth_exceeded when a node over-sends on an edge.
    @raise Failure if [max_rounds] (default [16 * n + 64]) elapse without
    quiescence. *)
