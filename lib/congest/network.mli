(** Synchronous message-passing engine for the CONGEST model.

    Execution proceeds in synchronous rounds. In each round every node
    reads the messages delivered over its incident edges, updates its
    state, and emits at most [bandwidth] bits per incident edge (the
    CONGEST restriction: one [O(log n)]-bit message per edge per round).
    Exceeding the budget raises {!Bandwidth_exceeded} — the simulator
    enforces the model rather than silently queueing.

    The engine runs until {e quiescence}: a round in which no node sends
    any message. Nodes in a real deployment would detect termination with
    standard echo techniques at the same asymptotic cost; the simulator
    plays the global observer, which is the usual convention for measuring
    round complexity.

    The entry point is {!exec}: a flat-array engine over the graph's dart
    tables ({!Gr.dart_offsets}) whose round loop allocates nothing beyond
    the message lists the protocol interface requires, and whose per-round
    cost is [O(active + messages)] rather than [O(n)]. Observation —
    metrics, tracing, bound checking — is requested through one
    {!Observe.t} sink. The pre-redesign {!run} remains as a deprecated
    shim with the old per-round-hashtable implementation; it exists so the
    differential tests can pin [exec] to the historical semantics. *)

type ('s, 'm) protocol = {
  init : Gr.t -> int -> 's * (int * 'm) list;
      (** initial state and round-0 outbox of each node. A node knows only
          its own id and its neighbor ids, as in the paper's input model. *)
  round : Gr.t -> int -> 's -> (int * 'm) list -> 's * (int * 'm) list;
      (** [round g v state inbox] processes the messages [(from, msg)]
          delivered this round and returns the new state and outbox
          [(to, msg)]. Destinations must be neighbors of [v].

          {b Delivery order guarantee:} the inbox is sorted by sender id
          (ascending), and several messages from the same sender arrive
          in the order that sender listed them in its outbox. Protocols
          may rely on this; it is deterministic by construction. *)
  msg_bits : 'm -> int;
      (** the size in bits charged for a message — the protocol declares
          its own coding, the engine enforces the budget. *)
}
(** A node-level synchronous protocol: what a node does at wake-up and
    in every round in which it receives mail. *)

exception Bandwidth_exceeded of { round : int; u : int; v : int; bits : int }
(** A node pushed more than [bandwidth] bits over one directed edge in
    one round — the CONGEST restriction, enforced rather than queued. *)

exception No_quiescence of { round : int; active : int; messages : int }
(** Raised by {!exec} when [max_rounds] elapse without quiescence:
    [round] is the livelock guard's limit, [active] the number of nodes
    still holding undelivered mail, [messages] the number of messages
    sent in the last executed round — enough to tell a protocol that
    never converges from one that is merely slow. *)

val default_bandwidth : Gr.t -> int
(** [16 * ceil(log2 n)] bits — the [O(log n)] budget with an explicit
    constant, recorded in every experiment output. *)

type report = {
  messages : int;  (** messages sent across the whole run. *)
  bits : int;  (** total bits of those messages. *)
  max_message_bits : int;  (** largest single message. *)
  max_round_edge_bits : int;
      (** largest per-directed-edge load within one round — the value the
          bandwidth budget was checked against. *)
  active_peak : int;  (** most nodes computing in any one round. *)
  verdict : Bounds.verdict option;
      (** present iff the observer carried a bounds request. *)
}
(** The engine's own summary of a run, tallied from flat counters
    independently of any {!Metrics.t} sink — available even under
    {!Observe.none}. *)

type 's run_result = { states : 's array; rounds : int; report : report }
(** What {!exec} returns: every node's final state, the number of rounds
    executed, and the engine's {!report}. *)

val exec :
  ?domains:int ->
  ?bandwidth:int ->
  ?max_rounds:int ->
  ?observe:Observe.t ->
  ?faults:Fault.plan ->
  Gr.t ->
  ('s, 'm) protocol ->
  's run_result
(** Run to quiescence. The final states, the executed round count and
    the {!report} come back together; everything else — a metrics
    accumulator, a trace journal, a bounds verdict — is requested via
    [observe] (default {!Observe.none}). Successive runs on the same
    metrics sink continue one round timeline: this run's round numbers
    are offset by [Metrics.rounds] at entry.

    With no [faults] plan installed (the default) the run executes on
    the clean flat-array loop — bit-identical to the pre-fault engine,
    allocation-free per round, delivery order exactly as documented on
    {!type:protocol}. Installing a {!Fault.plan} switches the run to the
    fault-aware {e clocked} loop: messages are dropped, duplicated,
    reordered or delayed and nodes crash and restart as the plan
    dictates; every live node then takes a step {e every} round (with an
    empty inbox when nothing arrived), which is the clock
    timeout-driven recovery layers such as {!Reliable} run on, and the
    run ends only after the plan's grace period of consecutive quiet
    rounds. Fault events are counted into the metrics sink
    ({!Metrics.faults}) and recorded on the trace timeline
    ({!Trace.on_fault}). Same plan spec + same seed ⇒ identical run.
    DESIGN.md §9 specifies the fault model precisely.

    [domains] (default [1]) shards the round loop across that many OCaml
    domains: the node range splits into contiguous shards, one domain
    each, with a deterministic exchange at the round barrier. The result
    — states, rounds, report, and the full metrics/trace timelines — is
    {b bit-identical} to the sequential engine for every shard count
    (the differential suite pins this for shard counts 1, 2, 3 and 7),
    including which error is raised and what the sinks saw before it.
    Two restrictions come with [domains > 1]: the protocol's [init] and
    [round] closures must be pure up to their returned values (they run
    concurrently for different nodes, and [init g 0] is called one extra
    time to seed internal storage), and a {!Fault.plan} may not be
    combined with it — the clocked fault engine draws its seeded fault
    stream in engine-visit order, which sharding would scramble, so
    [exec] raises [Invalid_argument] rather than silently degrading.
    DESIGN.md §10 specifies the sharded engine.
    @raise Bandwidth_exceeded when a node over-sends on an edge.
    @raise No_quiescence if [max_rounds] (default [16 * n + 64]) elapse
    without quiescence — a livelock guard for buggy protocols.
    @raise Invalid_argument if a node addresses a non-neighbor, if
    [domains < 1], or if [faults] is combined with [domains > 1]. *)

val run :
  ?bandwidth:int ->
  ?max_rounds:int ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  Gr.t ->
  ('s, 'm) protocol ->
  's array
  [@@alert
    legacy
      "Network.run is the pre-redesign engine kept for differential \
       testing; use Network.exec, which returns a run_result and takes an \
       Observe.t sink."]
(** The pre-redesign entry point, semantics preserved exactly (including
    its per-round hashtable implementation): returns bare final states,
    takes separate [?metrics]/[?trace] sinks, and signals a livelock by
    [Failure] rather than {!No_quiescence}. Kept only so tests and
    benchmarks can run old and new engines side by side.
    @raise Bandwidth_exceeded when a node over-sends on an edge.
    @raise Failure if [max_rounds] (default [16 * n + 64]) elapse without
    quiescence. *)
