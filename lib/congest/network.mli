(** Synchronous message-passing engine for the CONGEST model.

    Execution proceeds in synchronous rounds. In each round every node
    reads the messages delivered over its incident edges, updates its
    state, and emits at most [bandwidth] bits per incident edge (the
    CONGEST restriction: one [O(log n)]-bit message per edge per round).
    Exceeding the budget raises {!Bandwidth_exceeded} — the simulator
    enforces the model rather than silently queueing.

    The engine runs until {e quiescence}: a round in which no node sends
    any message. Nodes in a real deployment would detect termination with
    standard echo techniques at the same asymptotic cost; the simulator
    plays the global observer, which is the usual convention for measuring
    round complexity. *)

type ('s, 'm) protocol = {
  init : Gr.t -> int -> 's * (int * 'm) list;
      (** initial state and round-0 outbox of each node. A node knows only
          its own id and its neighbor ids, as in the paper's input model. *)
  round : Gr.t -> int -> 's -> (int * 'm) list -> 's * (int * 'm) list;
      (** [round g v state inbox] processes the messages [(from, msg)]
          delivered this round and returns the new state and outbox
          [(to, msg)]. Destinations must be neighbors of [v].

          {b Delivery order guarantee:} the inbox is sorted by sender id
          (ascending), and several messages from the same sender arrive
          in the order that sender listed them in its outbox. Protocols
          may rely on this; it is deterministic by construction. *)
  msg_bits : 'm -> int;
}

exception Bandwidth_exceeded of { round : int; u : int; v : int; bits : int }

val default_bandwidth : Gr.t -> int
(** [16 * ceil(log2 n)] bits — the [O(log n)] budget with an explicit
    constant, recorded in every experiment output. *)

val run :
  ?bandwidth:int ->
  ?max_rounds:int ->
  ?metrics:Metrics.t ->
  ?trace:Trace.t ->
  Gr.t ->
  ('s, 'm) protocol ->
  's array
(** Run to quiescence and return the final states. Metrics (rounds,
    messages, per-edge and per-round records) accumulate into [metrics]
    when given; per-round (and, if kept, per-message) events are appended
    to [trace]. Successive runs on the same metrics continue one round
    timeline: this run's round numbers are offset by [Metrics.rounds] at
    entry.
    @raise Bandwidth_exceeded when a node over-sends on an edge.
    @raise Failure if [max_rounds] (default [16 * n + 64]) elapse without
    quiescence — a livelock guard for buggy protocols. *)
