type bfs_state = { leader : int; dist : int; parent : int }

let word_of g =
  let n = max 2 (Gr.n g) in
  let rec bits_needed k acc = if k <= 1 then acc else bits_needed (k / 2) (acc + 1) in
  bits_needed (n - 1) 1


(* Protocol entry points run clean by default; a config with a fault
   plan routes them through the reliable link layer over the fault-aware
   engine, so each primitive survives lossy links unmodified. *)
let exec_net ?(config = Network.Config.default) g proto =
  match config.Network.Config.faults with
  | None -> Network.exec ~config g proto
  | Some plan ->
      Reliable.exec ~domains:config.Network.Config.domains
        ?bandwidth:config.Network.Config.bandwidth
        ?max_rounds:config.Network.Config.max_rounds
        ~observe:config.Network.Config.observe ~faults:plan g proto

let leader_bfs ?config g =
  if Gr.n g = 0 then invalid_arg "Proto.leader_bfs: empty network";
  let word = word_of g in
  let announce g v st =
    List.rev
      (Gr.fold_neighbors g v ~init:[] ~f:(fun acc w ->
           (w, (st.leader, st.dist)) :: acc))
  in
  let proto =
    {
      Network.init =
        (fun g v ->
          let st = { leader = v; dist = 0; parent = v } in
          (st, announce g v st));
      round =
        (fun g v st inbox ->
          let best = ref st in
          List.iter
            (fun (from, (root, d)) ->
              let better =
                root > !best.leader
                || (root = !best.leader && d + 1 < !best.dist)
              in
              if better then best := { leader = root; dist = d + 1; parent = from })
            inbox;
          if !best = st then (st, []) else (!best, announce g v !best));
      msg_bits = (fun (_root, _d) -> 2 * word);
    }
  in
  (exec_net ?config g proto).Network.states

(* Convergecast over an explicitly given tree. Each node knows its child
   count (in a real network, children identify themselves during the BFS
   construction); leaves start, and a node fires the fold of its subtree
   as soon as all children reported. *)
type cc_state = { pending : int; acc : int; done_ : bool }

let children_counts n parent root =
  let cnt = Array.make n 0 in
  Array.iteri
    (fun v p -> if v <> root then cnt.(p) <- cnt.(p) + 1)
    parent;
  cnt

let convergecast ?config g ~parent ~root ~values ~op ~value_bits =
  let n = Gr.n g in
  if Array.length parent <> n || Array.length values <> n then
    invalid_arg "Proto.convergecast: bad arrays";
  let kids = children_counts n parent root in
  let proto =
    {
      Network.init =
        (fun _g v ->
          let st = { pending = kids.(v); acc = values.(v); done_ = false } in
          if st.pending = 0 && v <> root then
            ({ st with done_ = true }, [ (parent.(v), st.acc) ])
          else (st, []));
      round =
        (fun _g v st inbox ->
          if st.done_ then (st, [])
          else begin
            let acc =
              List.fold_left (fun acc (_from, x) -> op acc x) st.acc inbox
            in
            let pending = st.pending - List.length inbox in
            let st = { pending; acc; done_ = false } in
            if pending = 0 && v <> root then
              ({ st with done_ = true }, [ (parent.(v), acc) ])
            else (st, [])
          end);
      msg_bits = (fun _ -> value_bits);
    }
  in
  let r = exec_net ?config g proto in
  r.Network.states.(root).acc

let subtree_sizes ?config g ~parent ~root =
  let n = Gr.n g in
  if Array.length parent <> n then invalid_arg "Proto.subtree_sizes: bad parent";
  let word = word_of g in
  let kids = children_counts n parent root in
  let proto =
    {
      Network.init =
        (fun _g v ->
          let st = { pending = kids.(v); acc = 1; done_ = false } in
          if st.pending = 0 && v <> root then
            ({ st with done_ = true }, [ (parent.(v), st.acc) ])
          else (st, []));
      round =
        (fun _g v st inbox ->
          if st.done_ then (st, [])
          else begin
            let acc =
              List.fold_left (fun acc (_from, x) -> acc + x) st.acc inbox
            in
            let pending = st.pending - List.length inbox in
            let st = { pending; acc; done_ = false } in
            if pending = 0 && v <> root then
              ({ st with done_ = true }, [ (parent.(v), acc) ])
            else (st, [])
          end);
      msg_bits = (fun _ -> word);
    }
  in
  let r = exec_net ?config g proto in
  Array.map (fun st -> st.acc) r.Network.states

let broadcast ?config g ~parent ~root ~value ~value_bits =
  let n = Gr.n g in
  if Array.length parent <> n then invalid_arg "Proto.broadcast: bad parent";
  let kids = Array.make n [] in
  Array.iteri (fun v p -> if v <> root then kids.(p) <- v :: kids.(p)) parent;
  let proto =
    {
      Network.init =
        (fun _g v ->
          if v = root then
            (Some value, List.map (fun c -> (c, value)) kids.(v))
          else (None, []));
      round =
        (fun _g v st inbox ->
          match st, inbox with
          | Some _, _ -> (st, [])
          | None, (_, x) :: _ -> (Some x, List.map (fun c -> (c, x)) kids.(v))
          | None, [] -> (st, []));
      msg_bits = (fun _ -> value_bits);
    }
  in
  let r = exec_net ?config g proto in
  Array.map
    (function Some x -> x | None -> invalid_arg "Proto.broadcast: unreached node")
    r.Network.states
