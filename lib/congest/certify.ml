(* Proof-labeling certification of a planar embedding.

   The prover is centralized (it reads the accepted rotation system and
   writes certificates); the verifier is a genuine one-round CONGEST
   protocol on Network.exec. Soundness does not trust the prover: every
   field a node cannot check by itself is cross-checked against a
   neighbor's copy in the verification round, and the two global facts
   (the parent pointers form a spanning tree; the per-dart leader/dist
   fields count each face orbit exactly once) are pinned by local
   inequalities whose conjunction over all nodes implies them — see
   DESIGN.md §12 for the argument. *)

type t = {
  graph : Gr.t;
  root : int array;
  parent : int array;
  depth : int array;
  nv : int array;
  ne : int array;
  nf : int array;
  leader_u : int array;
  leader_v : int array;
  dist : int array;
}

(* ------------------------------------------------------------------ *)
(* Field widths and size accounting                                    *)
(* ------------------------------------------------------------------ *)

(* Bits to hold any value in [0 .. x] (at least 1). *)
let bits_for x =
  let rec go k acc = if k = 0 then acc else go (k lsr 1) (acc + 1) in
  if x <= 0 then 1 else go x 0

(* Declared field widths: ids are word-sized, counts and face distances
   sized to their ranges (an edge count is <= m, a face count and a
   face-walk distance are <= 2m = the dart count). *)
let widths g =
  let w_id = Bounds.word_bits (Gr.n g) in
  let w_edge = bits_for (Gr.m g) in
  let w_face = bits_for (2 * Gr.m g) in
  (w_id, w_edge, w_face, w_face)

type size = {
  nodes : int;
  total_bits : int;
  mean_bits : float;
  max_bits : int;
  word : int;
}

let size certs =
  let g = certs.graph in
  let n = Gr.n g in
  let (w_id, w_edge, w_face, w_dist) = widths g in
  (* root + parent + depth + nv are id-sized; ne and nf range-sized;
     each in-dart holds a leader name (an id pair) and a distance. *)
  let tree_bits = (4 * w_id) + w_edge + w_face in
  let dart_bits = (2 * w_id) + w_dist in
  let total = ref 0 and mx = ref 0 in
  for v = 0 to n - 1 do
    let b = tree_bits + (Gr.degree g v * dart_bits) in
    total := !total + b;
    if b > !mx then mx := b
  done;
  {
    nodes = n;
    total_bits = !total;
    mean_bits = float_of_int !total /. float_of_int (max 1 n);
    max_bits = !mx;
    word = w_id;
  }

(* ------------------------------------------------------------------ *)
(* The honest prover                                                   *)
(* ------------------------------------------------------------------ *)

let prove r =
  let g = Rotation.graph r in
  let n = Gr.n g in
  if n = 0 then invalid_arg "Certify.prove: empty graph";
  if not (Traverse.is_connected g) then
    invalid_arg "Certify.prove: disconnected graph";
  let root_id = n - 1 in
  let bt = Traverse.bfs g root_id in
  let darts = Gr.darts g in
  let leader_u = Array.make (max 1 darts) (-1) in
  let leader_v = Array.make (max 1 darts) (-1) in
  let dist = Array.make (max 1 darts) (-1) in
  let own_nf = Array.make n 0 in
  (* A dartless embedding (the single-vertex graph) has one face — the
     sphere around the lone vertex — with no orbit to walk. *)
  if darts = 0 then own_nf.(root_id) <- 1;
  List.iter
    (fun face ->
      let arr = Array.of_list face in
      let l = Array.length arr in
      (* Leader: the lexicographically least dart of the orbit. *)
      let p = ref 0 in
      for i = 1 to l - 1 do
        if arr.(i) < arr.(!p) then p := i
      done;
      let (lu, lv) = arr.(!p) in
      own_nf.(lv) <- own_nf.(lv) + 1;
      for i = 0 to l - 1 do
        let (u, v) = arr.(i) in
        let d = Gr.dart g ~src:u ~dst:v in
        leader_u.(d) <- lu;
        leader_v.(d) <- lv;
        dist.(d) <- (!p - i + l) mod l
      done)
    (Rotation.faces r);
  (* An edge is owned by its max-id endpoint; subtree sums accumulate
     in reverse BFS order, so children settle before their parent. *)
  let nv = Array.make n 1 in
  let ne =
    Array.init n (fun v ->
        Gr.fold_neighbors g v ~init:0 ~f:(fun acc u ->
            if u < v then acc + 1 else acc))
  in
  let nf = Array.copy own_nf in
  let order = bt.Traverse.order in
  for i = n - 1 downto 0 do
    let v = order.(i) in
    if v <> root_id then begin
      let p = bt.Traverse.parent.(v) in
      nv.(p) <- nv.(p) + nv.(v);
      ne.(p) <- ne.(p) + ne.(v);
      nf.(p) <- nf.(p) + nf.(v)
    end
  done;
  {
    graph = g;
    root = Array.make n root_id;
    parent = Array.copy bt.Traverse.parent;
    depth = Array.copy bt.Traverse.dist;
    nv;
    ne;
    nf;
    leader_u;
    leader_v;
    dist;
  }

(* ------------------------------------------------------------------ *)
(* Seeded corruption                                                   *)
(* ------------------------------------------------------------------ *)

let copy certs =
  {
    graph = certs.graph;
    root = Array.copy certs.root;
    parent = Array.copy certs.parent;
    depth = Array.copy certs.depth;
    nv = Array.copy certs.nv;
    ne = Array.copy certs.ne;
    nf = Array.copy certs.nf;
    leader_u = Array.copy certs.leader_u;
    leader_v = Array.copy certs.leader_v;
    dist = Array.copy certs.dist;
  }

let corrupt ~seed ~k certs =
  let g = certs.graph in
  let n = Gr.n g in
  if k < 0 || k > n then invalid_arg "Certify.corrupt: k out of range";
  let (w_id, w_edge, w_face, w_dist) = widths g in
  let t = copy certs in
  let rng = Random.State.make [| 0x5eed; seed |] in
  let offs = Gr.dart_offsets g in
  let ids = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- tmp;
    let v = ids.(i) in
    let deg = offs.(v + 1) - offs.(v) in
    (* One uniformly random bit among the node's fields, each within
       its declared width so the flip is never a no-op. *)
    let field = Random.State.int rng (6 + (3 * deg)) in
    let (arr, idx, width) =
      match field with
      | 0 -> (t.root, v, w_id)
      | 1 -> (t.parent, v, w_id)
      | 2 -> (t.depth, v, w_id)
      | 3 -> (t.nv, v, w_id)
      | 4 -> (t.ne, v, w_edge)
      | 5 -> (t.nf, v, w_face)
      | f ->
          let d = offs.(v) + ((f - 6) / 3) in
          (match (f - 6) mod 3 with
          | 0 -> (t.leader_u, d, w_id)
          | 1 -> (t.leader_v, d, w_id)
          | _ -> (t.dist, d, w_dist))
    in
    arr.(idx) <- arr.(idx) lxor (1 lsl Random.State.int rng width)
  done;
  t

(* ------------------------------------------------------------------ *)
(* The one-round verifier                                              *)
(* ------------------------------------------------------------------ *)

type state = {
  waiting : int;
  bad : int;
  sum_nv : int;
  sum_ne : int;
  sum_nf : int;
  settled : bool;
}

type msg = {
  m_root : int;
  m_parent : int;
  m_depth : int;
  m_nv : int;
  m_ne : int;
  m_nf : int;
  m_lu : int;
  m_lv : int;
  m_dist : int;
}

let reason_name = function
  | 0 -> "accepted"
  | 1 -> "root-id mismatch with a neighbor"
  | 2 -> "malformed parent/depth fields"
  | 3 -> "root self-check failed"
  | 4 -> "depth is not parent's depth + 1"
  | 5 -> "subtree sums do not add up"
  | 6 -> "Euler's formula fails at the root"
  | 7 -> "face-leader name changes along an orbit"
  | 8 -> "face distance fails to step down"
  | 9 -> "dart claims dist 0 without being its orbit's leader"
  | 10 -> "verification never completed"
  | r -> Printf.sprintf "unknown reason %d" r

(* Violations merge by min — commutative and associative, so the final
   verdict is independent of delivery order (the chaos property test
   relies on this). *)
let flag bad r = if bad = 0 then r else min bad r

let check_graphs name a b =
  if Gr.n a <> Gr.n b || Gr.darts a <> Gr.darts b then
    invalid_arg (name ^ ": certificates issued for a different graph")

let protocol r certs =
  let g = Rotation.graph r in
  check_graphs "Certify.protocol" g certs.graph;
  let n = Gr.n g in
  let (w_id, w_edge, w_face, w_dist) = widths g in
  let message_bits = (6 * w_id) + w_edge + w_face + w_dist in
  let offs = Gr.dart_offsets g in
  let own_ne =
    Array.init n (fun v ->
        Gr.fold_neighbors g v ~init:0 ~f:(fun acc u ->
            if u < v then acc + 1 else acc))
  in
  (* The node's own face-leader claims: in-darts at certified distance
     0 (the local zero-check below pins them to actual leader names). *)
  let own_nf =
    Array.init n (fun v ->
        if offs.(v + 1) = offs.(v) then
          (* Degree 0 only happens on the single-vertex network (prove
             rejects disconnected graphs): the dartless embedding has
             one face and no orbit to certify it. *)
          1
        else begin
          let c = ref 0 in
          for d = offs.(v) to offs.(v + 1) - 1 do
            if certs.dist.(d) = 0 then incr c
          done;
          !c
        end)
  in
  let local_bad v =
    let b = ref 0 in
    let rho = certs.root.(v)
    and p = certs.parent.(v)
    and d = certs.depth.(v) in
    if d < 0 then b := flag !b 2
    else if d = 0 then begin
      if not (v = rho && p = v) then b := flag !b 3
    end
    else if not (p >= 0 && p < n && p <> v && Gr.mem_edge g p v) then
      b := flag !b 2;
    if v = rho && d <> 0 then b := flag !b 3;
    for dt = offs.(v) to offs.(v + 1) - 1 do
      let dd = certs.dist.(dt) in
      if
        dd < 0
        || dd = 0
           && not
                (certs.leader_u.(dt) = Gr.dart_src g dt
                && certs.leader_v.(dt) = v)
      then b := flag !b 9
    done;
    !b
  in
  let absorb v st (u, m) =
    let b = ref st.bad in
    if m.m_root <> certs.root.(v) then b := flag !b 1;
    if u = certs.parent.(v) && certs.depth.(v) <> m.m_depth + 1 then
      b := flag !b 4;
    let d = Gr.dart g ~src:u ~dst:v in
    if m.m_lu <> certs.leader_u.(d) || m.m_lv <> certs.leader_v.(d) then
      b := flag !b 7;
    if m.m_dist > 0 && certs.dist.(d) <> m.m_dist - 1 then b := flag !b 8;
    let (snv, sne, snf) =
      if m.m_parent = v then
        (st.sum_nv + m.m_nv, st.sum_ne + m.m_ne, st.sum_nf + m.m_nf)
      else (st.sum_nv, st.sum_ne, st.sum_nf)
    in
    {
      st with
      waiting = st.waiting - 1;
      bad = !b;
      sum_nv = snv;
      sum_ne = sne;
      sum_nf = snf;
    }
  in
  let finalize v st =
    let b = ref st.bad in
    if
      certs.nv.(v) <> 1 + st.sum_nv
      || certs.ne.(v) <> own_ne.(v) + st.sum_ne
      || certs.nf.(v) <> own_nf.(v) + st.sum_nf
    then b := flag !b 5;
    if certs.root.(v) = v && certs.nv.(v) - certs.ne.(v) + certs.nf.(v) <> 2
    then b := flag !b 6;
    { st with bad = !b; settled = true }
  in
  {
    Network.init =
      (fun g v ->
        let rot_v = Rotation.rotation r v in
        let deg = Array.length rot_v in
        let st =
          {
            waiting = deg;
            bad = local_bad v;
            sum_nv = 0;
            sum_ne = 0;
            sum_nf = 0;
            settled = false;
          }
        in
        let st = if deg = 0 then finalize v st else st in
        let out = ref [] in
        for i = deg - 1 downto 0 do
          let w = rot_v.(i) in
          (* The recipient w holds the in-dart v -> w; its face-orbit
             predecessor is (pred -> v) where pred precedes w in v's
             clockwise order — exactly the dart record w must check
             its own against. *)
          let pred = rot_v.((i + deg - 1) mod deg) in
          let dp = Gr.dart g ~src:pred ~dst:v in
          out :=
            ( w,
              {
                m_root = certs.root.(v);
                m_parent = certs.parent.(v);
                m_depth = certs.depth.(v);
                m_nv = certs.nv.(v);
                m_ne = certs.ne.(v);
                m_nf = certs.nf.(v);
                m_lu = certs.leader_u.(dp);
                m_lv = certs.leader_v.(dp);
                m_dist = certs.dist.(dp);
              } )
            :: !out
        done;
        (st, !out));
    round =
      (fun _g v st inbox ->
        if st.settled || inbox = [] then (st, [])
        else begin
          let st = List.fold_left (fun st im -> absorb v st im) st inbox in
          let st = if st.waiting = 0 then finalize v st else st in
          (st, [])
        end);
    msg_bits = (fun _ -> message_bits);
  }

(* ------------------------------------------------------------------ *)
(* The run wrapper                                                     *)
(* ------------------------------------------------------------------ *)

type outcome = {
  accept : bool array;
  reasons : int array;
  all_accept : bool;
  rounds : int;
  report : Network.report;
  size : size;
}

let verify ?(config = Network.Config.default) r certs =
  let g = Rotation.graph r in
  check_graphs "Certify.verify" g certs.graph;
  let bandwidth =
    match config.Network.Config.bandwidth with
    | Some b -> b
    | None -> Network.default_bandwidth g
  in
  let faults = config.Network.Config.faults in
  let observe = config.Network.Config.observe in
  let proto = protocol r certs in
  (* A clean run self-checks the one-round claim: with d = 0 and
     c_rounds = 1 the Bounds round budget is exactly one round, and
     c_bits = 16 is the default per-message word budget. Under a fault
     plan the reliable layer legitimately takes extra rounds, so no
     bound is installed there. *)
  let observe =
    match (faults, Observe.bounds observe) with
    | Some _, _ | None, Some _ -> observe
    | None, None ->
        Observe.make
          ?metrics:(Observe.metrics observe)
          ?trace:(Observe.trace observe)
          ~bounds:(Observe.bounds_spec ~c_rounds:1 ~c_bits:16 ~d:0 ())
          ()
  in
  let clock () =
    match Observe.metrics observe with
    | Some m -> Metrics.rounds m
    | None -> 0
  in
  let run () =
    match faults with
    | None ->
        Network.exec
          ~config:
            {
              config with
              Network.Config.bandwidth = Some bandwidth;
              observe;
            }
          g proto
    | Some plan ->
        if config.Network.Config.domains > 1 then
          invalid_arg
            "Certify.verify: a fault plan requires domains = 1 — reliable \
             delivery runs on the sequential clocked engine";
        Reliable.exec ~bandwidth ~observe ~faults:plan g proto
  in
  let res = Trace.with_span (Observe.trace observe) "certify.verify" ~clock run in
  let states = res.Network.states in
  let reasons =
    Array.map (fun st -> if st.settled then st.bad else flag st.bad 10) states
  in
  let accept = Array.map (fun rsn -> rsn = 0) reasons in
  {
    accept;
    reasons;
    all_accept = Array.for_all (fun a -> a) accept;
    rounds = res.Network.rounds;
    report = res.Network.report;
    size = size certs;
  }
