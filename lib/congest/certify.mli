(** Compact distributed certification of a planar embedding
    (a proof-labeling scheme in the style of Feuilloley–Fraigniaud–
    Montealegre–Rapaport–Rémila–Todinca, {e Compact Distributed
    Certification of Planar Graphs}, PODC 2020 — see PAPERS.md).

    The embedder runs once; a production network re-verifies its output
    forever, locally, without re-running anything global. A centralized
    {e prover} ({!prove}) looks at the accepted rotation system and
    assigns every node a short {e certificate}; from then on, any node
    can trigger a {e verification round} ({!verify}): every node sends
    one [O(log n)]-bit message per incident edge, reads its neighbors'
    messages, and accepts or rejects — {b one} CONGEST round, no
    recursion, no leader. The scheme is

    - {e complete}: certificates produced by {!prove} from a genus-0
      rotation of a connected graph are accepted by every node, and
    - {e sound}: if the rotation system is {e not} a planar embedding,
      then {e no} certificate assignment whatsoever makes all nodes
      accept — at least one node rejects (the mutation suite in
      [test/test_certify.ml] attacks this claim mechanically).

    The certificate of node [v] is the spanning-tree record
    [(root, parent, depth)] plus Euler bookkeeping [(nv, ne, nf)] — the
    vertex / edge / face-leader counts of [v]'s subtree — and, for each
    in-dart [u -> v], the name of the dart leading its face orbit and
    the number of face-walk steps to it. Tree fields are [O(log n)]
    bits; each dart record is [O(log n)] bits, so a node stores
    [O((1 + deg v) log n)] bits and the whole network [O(n log n)] —
    by planarity the average degree is below 6, hence [O(log n)] bits
    per node amortized (DESIGN.md §12 gives the layout, the exact bit
    accounting and the soundness argument). Every verification message
    fits the default [16⌈log₂ n⌉] CONGEST bandwidth.

    Soundness rests on two locally-checkable global facts: the
    [(root, parent, depth)] fields form a spanning tree whose subtree
    sums pin [n], [m] and the face count [f] at the root, where Euler's
    formula [n - m + f = 2] is checked; and the per-dart
    [(leader, dist)] fields prove [f] counts {e face orbits} exactly
    once each — along every orbit the leader name must be constant,
    [dist] must step down by one, and a dart claiming [dist = 0] must
    {e be} the named leader, so each orbit contributes exactly one
    leader and over- or under-counting faces is impossible. *)

type t = {
  graph : Gr.t;  (** the network the certificates were issued for. *)
  root : int array;  (** per node: the claimed root (leader) id. *)
  parent : int array;  (** per node: spanning-tree parent ([root]'s is itself). *)
  depth : int array;  (** per node: spanning-tree depth. *)
  nv : int array;  (** per node: vertices in its subtree. *)
  ne : int array;  (** per node: edges owned by its subtree (an edge is
                       owned by its max-id endpoint). *)
  nf : int array;  (** per node: face leaders owned by its subtree (a
                       face is owned by the head of its leader dart). *)
  leader_u : int array;  (** per dart [d]: source of [d]'s face-orbit leader. *)
  leader_v : int array;  (** per dart [d]: head of [d]'s face-orbit leader. *)
  dist : int array;
      (** per dart [d]: face-walk steps from [d] to its orbit's leader. *)
}
(** A certificate assignment: one record per node, the per-dart fields
    stored flat over the graph's dense dart ids (node [v] holds the
    slots of its in-darts, [Gr.dart_offsets g.(v) ..]). The fields are
    exposed — the adversarial test suite mutates them directly; use
    {!prove} to build an honest assignment. *)

type size = {
  nodes : int;
  total_bits : int;  (** certificate bits across the whole network. *)
  mean_bits : float;  (** per-node average. *)
  max_bits : int;  (** the largest single node's certificate. *)
  word : int;  (** [⌈log₂ n⌉], the comparison yardstick. *)
}
(** Certificate-size accounting, from the declared field widths (ids
    [⌈log₂ n⌉] bits, counts and distances sized to their ranges). *)

val size : t -> size

val prove : Rotation.t -> t
(** The honest prover: BFS spanning tree from the maximum id (the
    repo's leader convention), subtree counts by reverse BFS order, and
    per-orbit leaders (the lexicographically least dart of each face)
    with exact face-walk distances. Works mechanically on {e any}
    rotation system of a connected graph — on a non-planar one the
    resulting certificates simply fail Euler at the root, which the
    negative tests rely on.
    @raise Invalid_argument on an empty or disconnected graph. *)

val corrupt : seed:int -> k:int -> t -> t
(** [corrupt ~seed ~k certs] is a fresh assignment in which [k] distinct
    nodes (chosen by the seeded stream) each had one uniformly random
    bit of their certificate flipped — any field, tree or dart slot,
    within its declared width, so the flip always changes the value.
    The original is untouched. Soundness demands every such corruption
    be rejected; [distplanar certify --corrupt k\@seed] asserts it.
    @raise Invalid_argument if [k < 0] or [k > n]. *)

(** {2 The one-round verifier} *)

type state = {
  waiting : int;  (** neighbors not yet heard from. *)
  bad : int;  (** smallest violated-check code so far; [0] = none. *)
  sum_nv : int;  (** children's subtree-vertex claims received so far. *)
  sum_ne : int;
  sum_nf : int;
  settled : bool;  (** all neighbors heard, final checks done. *)
}
(** The verifier's per-node protocol state. Violation codes (the [bad]
    field, smallest kept — the merge is order-independent, so the
    verdict is identical under any delivery schedule): [1] root-id
    mismatch with a neighbor, [2] malformed parent/depth fields, [3]
    root self-check failed, [4] depth not one more than the parent's,
    [5] subtree sums don't add up, [6] Euler's formula fails at the
    root, [7] face-leader name changes along an orbit, [8] face
    distance fails to step down, [9] a dart claims [dist = 0] without
    being its orbit's leader, [10] verification never completed.
    {!reason_name} renders them. *)

type msg
(** What a node sends each neighbor: its tree record plus the face
    record of the one dart whose orbit successor the recipient holds. *)

val protocol : Rotation.t -> t -> (state, msg) Network.protocol
(** The raw one-round protocol, exposed so the engine-differential
    suite can pin it bit-identical across engines and shard counts.
    Round 0 sends every certificate field once per incident edge;
    round 1 checks and quiesces. Pure closures — safe under
    [?domains]. *)

type outcome = {
  accept : bool array;  (** per-node verdict. *)
  reasons : int array;  (** per-node violation code ([0] = accepted). *)
  all_accept : bool;  (** the global verdict: every node accepted. *)
  rounds : int;  (** verification rounds executed — [1] on the clean
                     engine (0 on a single-node network). *)
  report : Network.report;
      (** the engine's wire accounting; on a clean (fault-free) run its
          [verdict] field carries the Bounds self-check of the one-round
          claim — [rounds <= 1] and every message within [16⌈log₂ n⌉]
          bits. *)
  size : size;  (** the certificate-size accounting of the run. *)
}

val verify : ?config:Network.Config.t -> Rotation.t -> t -> outcome
(** Run the distributed verifier on {!Network.exec} under [config]
    (default {!Network.Config.default}). Observation threads through
    the config's [observe] exactly as in {!Proto}: a metrics sink
    counts the certificate bits on the wire, a trace sink gets a
    [certify.verify] span, and unless the caller installed their own
    bounds request a clean run self-checks the one-round claim
    ([Observe.bounds_spec ~c_rounds:1 ~d:0]) and returns the verdict in
    [report]. A config with a fault plan routes the round through
    {!Reliable} on the fault-aware engine — more rounds (acks,
    retransmissions, the grace period), same verdict; incompatible with
    [domains > 1], as everywhere.
    @raise Invalid_argument if the certificates were issued for a
    different graph than the rotation's. *)

val reason_name : int -> string
(** Human-readable name of a violation code ([0] -> ["accepted"]). *)
