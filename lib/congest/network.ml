type ('s, 'm) protocol = {
  init : Gr.t -> int -> 's * (int * 'm) list;
  round : Gr.t -> int -> 's -> (int * 'm) list -> 's * (int * 'm) list;
  msg_bits : 'm -> int;
}

exception Bandwidth_exceeded of { round : int; u : int; v : int; bits : int }
exception No_quiescence of { round : int; active : int; messages : int }

let default_bandwidth g =
  let n = max 2 (Gr.n g) in
  let rec bits_needed k acc = if k <= 1 then acc else bits_needed (k / 2) (acc + 1) in
  16 * bits_needed (n - 1) 1

type report = {
  messages : int;
  bits : int;
  max_message_bits : int;
  max_round_edge_bits : int;
  active_peak : int;
  verdict : Bounds.verdict option;
}

type 's run_result = { states : 's array; rounds : int; report : report }

(* The run configuration: every engine knob in one value, so call sites
   thread one [Config.t] instead of re-threading five optional labels
   per layer. [default] is sequential, unobserved, fault-free. *)
module Config = struct
  type t = {
    domains : int;
    epoch : int;
    steal : int;
    bandwidth : int option;
    max_rounds : int option;
    observe : Observe.t;
    faults : Fault.plan option;
  }

  let default =
    {
      domains = 1;
      epoch = 8;
      steal = 4;
      bandwidth = None;
      max_rounds = None;
      observe = Observe.none;
      faults = None;
    }

  let with_domains domains c = { c with domains }
  let with_epoch epoch c = { c with epoch }
  let with_steal steal c = { c with steal }
  let with_bandwidth b c = { c with bandwidth = Some b }
  let with_max_rounds r c = { c with max_rounds = Some r }
  let with_observe observe c = { c with observe }
  let with_faults p c = { c with faults = Some p }

  let make ?(domains = 1) ?bandwidth ?max_rounds ?(observe = Observe.none)
      ?faults ?(epoch = 8) ?(steal = 4) () =
    { domains; epoch; steal; bandwidth; max_rounds; observe; faults }
end

(* In-place ascending heapsort of a.(0 .. k-1): the engine's worklists
   live in preallocated buffers, so the sort must not allocate. *)
let sort_prefix a k =
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec down i k =
    let l = (2 * i) + 1 in
    if l < k then begin
      let c = if l + 1 < k && a.(l + 1) > a.(l) then l + 1 else l in
      if a.(c) > a.(i) then begin
        swap c i;
        down c k
      end
    end
  in
  for i = (k / 2) - 1 downto 0 do
    down i k
  done;
  for j = k - 1 downto 1 do
    swap 0 j;
    down 0 j
  done

(* Rank of [v] in the sorted slice [a.(lo .. hi)], or -1. This is the
   engine's per-message neighbor lookup: the sender's own CSR slice is
   searched (cache-hot across a whole outbox) and the matching dart comes
   from the reversal involution — no cross-module call, no exception
   handler, no allocation. *)
let rec rank (a : int array) lo hi v =
  if lo > hi then -1
  else begin
    let mid = (lo + hi) / 2 in
    let y = a.(mid) in
    if y = v then mid
    else if y < v then rank a (mid + 1) hi v
    else rank a lo (mid - 1) v
  end

(* The flat-array engine. All per-round bookkeeping lives in arrays
   preallocated at entry and reused across rounds:

   - [box.(d)]      messages in flight on dart [d] (head = most recent);
                    a dart id is its slot in the CSR adjacency, so the
                    in-darts of a recipient are one contiguous range
                    ordered by sender — draining that range back-to-front
                    yields the documented delivery order with no sort;
   - [load.(d)]     bits pushed through dart [d] this round (the CONGEST
                    bandwidth budget is checked against it at send time);
   - [staged]/[has_mail]  worklist of recipients with mail, so a round
                    costs O(active slices + messages), never O(n).

   The engine itself allocates nothing per round; the only per-message
   allocations are the in-flight cons cells and the inbox lists handed
   to the protocol (inherent to the protocol's list-based interface).

   This is the zero-fault path: [exec] dispatches here whenever no fault
   plan is installed, so the loop below must stay bit-identical to the
   pre-fault engine (test_engine_diff.ml holds it to that). *)
let exec_clean ?bandwidth ?max_rounds ?(observe = Observe.none) g proto =
  let n = Gr.n g in
  let bandwidth =
    match bandwidth with Some b -> b | None -> default_bandwidth g
  in
  let max_rounds = match max_rounds with Some r -> r | None -> (16 * n) + 64 in
  let trace = Observe.trace observe in
  let metrics =
    (* A bounds request needs a metrics accumulator; conjure a private
       one when the caller did not supply a sink. *)
    match (Observe.metrics observe, Observe.bounds observe) with
    | None, Some _ -> Some (Metrics.create g)
    | m, _ -> m
  in
  (* Successive runs on the same metrics continue one timeline: rounds
     already accumulated offset this run's round numbers in the round log
     and the trace. *)
  let base = match metrics with Some m -> Metrics.rounds m | None -> 0 in
  let xadj = Gr.dart_offsets g in
  let srcs = Gr.dart_sources g in
  let dedge = Gr.dart_edges g in
  let rev = Gr.dart_reversals g in
  let nd = Array.length srcs in
  let box : 'm list array = Array.make (max 1 nd) [] in
  let load = Array.make (max 1 nd) 0 in
  let has_mail = Array.make (max 1 n) false in
  let staged = Array.make (max 1 n) 0 in
  let n_staged = ref 0 in
  let active_buf = Array.make (max 1 n) 0 in
  let inbox : (int * 'm) list array = Array.make (max 1 n) [] in
  let round = ref 0 in
  let msgs_round = ref 0 in
  let bits_round = ref 0 in
  let total_msgs = ref 0 in
  let total_bits = ref 0 in
  let max_msg_bits = ref 0 in
  let max_burst = ref 0 in
  let active_peak = ref 0 in
  let send u (v, msg) =
    let d =
      let s = rank srcs xadj.(u) (xadj.(u + 1) - 1) v in
      if s < 0 then
        invalid_arg
          (Printf.sprintf "Network.run: node %d sent to non-neighbor %d" u v);
      rev.(s)
    in
    let bits = proto.msg_bits msg in
    (match metrics with
    | Some m ->
        Metrics.add_message_at m
          ~dir:((2 * dedge.(d)) + if u < v then 0 else 1)
          ~bits
    | None -> ());
    (match trace with
    | Some tr -> Trace.on_message tr ~round:(base + !round) ~src:u ~dst:v ~bits
    | None -> ());
    incr msgs_round;
    bits_round := !bits_round + bits;
    if bits > !max_msg_bits then max_msg_bits := bits;
    (match box.(d) with
    | [] ->
        if not has_mail.(v) then begin
          has_mail.(v) <- true;
          staged.(!n_staged) <- v;
          incr n_staged
        end
    | _ :: _ -> ());
    box.(d) <- msg :: box.(d);
    let now = load.(d) + bits in
    load.(d) <- now;
    if now > !max_burst then max_burst := now;
    if now > bandwidth then
      raise (Bandwidth_exceeded { round = !round; u; v; bits = now })
  in
  (* Close the books on the round just computed: per-dart burst maxima
     (every loaded dart's head is a staged recipient, so scanning the
     staged slices covers exactly the loaded darts), the round record,
     and the engine's own flat counters. *)
  let commit_round ~active =
    (match metrics with
    | Some m ->
        for i = 0 to !n_staged - 1 do
          let v = staged.(i) in
          for d = xadj.(v) to xadj.(v + 1) - 1 do
            if load.(d) > 0 then
              Metrics.note_round_edge_at m
                ~dir:((2 * dedge.(d)) + if srcs.(d) < v then 0 else 1)
                ~bits:load.(d)
          done
        done;
        Metrics.record_round m ~round:(base + !round) ~active
          ~messages:!msgs_round ~bits:!bits_round
    | None -> ());
    (match trace with
    | Some tr ->
        Trace.on_round tr ~round:(base + !round) ~active ~messages:!msgs_round
          ~bits:!bits_round
    | None -> ());
    if active > !active_peak then active_peak := active;
    total_msgs := !total_msgs + !msgs_round;
    total_bits := !total_bits + !bits_round
  in
  let states =
    Array.init n (fun v ->
        let (s, out) = proto.init g v in
        List.iter (send v) out;
        s)
  in
  (* Round 0's spontaneous sends are checked and counted too; every node
     ran its init, so all n nodes are active. *)
  if !msgs_round > 0 then commit_round ~active:n;
  while !n_staged > 0 do
    if !round >= max_rounds then
      raise
        (No_quiescence
           { round = !round; active = !n_staged; messages = !msgs_round });
    incr round;
    (* Deliver: drain each staged recipient's in-dart range back-to-front
       into its inbox list — sorted by sender id by construction, with a
       sender's own messages kept in outbox order — and reset the dart
       state for the sends of this round. *)
    let k = !n_staged in
    Array.blit staged 0 active_buf 0 k;
    sort_prefix active_buf k;
    n_staged := 0;
    for i = 0 to k - 1 do
      let v = active_buf.(i) in
      has_mail.(v) <- false;
      let acc = ref [] in
      for d = xadj.(v + 1) - 1 downto xadj.(v) do
        (match box.(d) with
        | [] -> ()
        | msgs ->
            let u = srcs.(d) in
            List.iter (fun m -> acc := (u, m) :: !acc) msgs;
            box.(d) <- []);
        load.(d) <- 0
      done;
      inbox.(v) <- !acc
    done;
    msgs_round := 0;
    bits_round := 0;
    (* Compute: only the recipients run, in ascending id order, so
       metrics/trace record messages in the same order as the legacy
       engine's whole-network scan. *)
    for i = 0 to k - 1 do
      let v = active_buf.(i) in
      let (s, out) = proto.round g v states.(v) inbox.(v) in
      inbox.(v) <- [];
      states.(v) <- s;
      List.iter (send v) out
    done;
    commit_round ~active:k
  done;
  (match metrics with Some m -> Metrics.add_rounds m !round | None -> ());
  let verdict =
    match (Observe.bounds observe, metrics) with
    | Some b, Some m ->
        Some
          (Bounds.check ?c_rounds:b.Observe.c_rounds ?c_bits:b.Observe.c_bits
             ~bandwidth ~n ~d:b.Observe.d m)
    | _ -> None
  in
  {
    states;
    rounds = !round;
    report =
      {
        messages = !total_msgs;
        bits = !total_bits;
        max_message_bits = !max_msg_bits;
        max_round_edge_bits = !max_burst;
        active_peak = !active_peak;
        verdict;
      };
  }

(* The fault-aware clocked engine. [exec] dispatches here only when a
   fault plan is installed, so this loop is free to favor clarity over
   allocation discipline: deliveries live in a round-indexed pending
   table (messages can be delayed across rounds), and every live node
   takes a step every round — the clock that timeout-driven recovery
   layers ({!Reliable}) need in order to retransmit. Every random
   decision is drawn from the plan's seeded stream in engine-visit
   order, which makes the whole run reproducible from
   (protocol, graph, spec, seed). The semantics of each fault kind are
   specified in DESIGN.md §9. *)
let exec_faulty ~plan ?bandwidth ?max_rounds ?(observe = Observe.none) g proto =
  let n = Gr.n g in
  let bandwidth =
    match bandwidth with Some b -> b | None -> default_bandwidth g
  in
  let max_rounds = match max_rounds with Some r -> r | None -> (16 * n) + 64 in
  let trace = Observe.trace observe in
  let metrics =
    match (Observe.metrics observe, Observe.bounds observe) with
    | None, Some _ -> Some (Metrics.create g)
    | m, _ -> m
  in
  let base = match metrics with Some m -> Metrics.rounds m | None -> 0 in
  let xadj = Gr.dart_offsets g in
  let srcs = Gr.dart_sources g in
  let dedge = Gr.dart_edges g in
  let rev = Gr.dart_reversals g in
  let nd = Array.length srcs in
  (* A dart is a directed edge, so the metrics slot of each dart is
     fixed; memo it once instead of re-deriving it per message. *)
  let dir_of_dart = Array.make (max 1 nd) 0 in
  for v = 0 to n - 1 do
    for d = xadj.(v) to xadj.(v + 1) - 1 do
      dir_of_dart.(d) <- (2 * dedge.(d)) + if srcs.(d) < v then 0 else 1
    done
  done;
  let round = ref 0 in
  let msgs_round = ref 0 in
  let bits_round = ref 0 in
  let total_msgs = ref 0 in
  let total_bits = ref 0 in
  let max_msg_bits = ref 0 in
  let max_burst = ref 0 in
  let active_peak = ref 0 in
  (* Per-dart load of the current round, reset through the touched list
     at commit time. *)
  let load = Array.make (max 1 nd) 0 in
  let touched = ref [] in
  (* Deliveries in flight: delivery round -> (dst, src, key, seq, msg)
     list in reverse insertion order. [seq] is the global send sequence
     number; [key] is the inbox sort key — equal to [seq] normally, a
     random draw for a reordered copy. *)
  let pending : (int, (int * int * int * int * 'm) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let in_flight = ref 0 in
  let seq = ref 0 in
  let on_fault kind ~src ~dst =
    (match metrics with Some m -> Metrics.note_fault m ~kind | None -> ());
    match trace with
    | Some tr -> Trace.on_fault tr ~round:(base + !round) ~kind ~src ~dst
    | None -> ()
  in
  let schedule ~src ~dst msg (c : Fault.delivery) =
    if c.Fault.offset > 0 then on_fault "delay" ~src ~dst;
    let key =
      match c.Fault.key with
      | Some k ->
          on_fault "reorder" ~src ~dst;
          k
      | None -> !seq
    in
    let at = !round + 1 + c.Fault.offset in
    let sofar = try Hashtbl.find pending at with Not_found -> [] in
    Hashtbl.replace pending at ((dst, src, key, !seq, msg) :: sofar);
    incr seq;
    incr in_flight
  in
  let send u (v, msg) =
    let d =
      let s = rank srcs xadj.(u) (xadj.(u + 1) - 1) v in
      if s < 0 then
        invalid_arg
          (Printf.sprintf "Network.run: node %d sent to non-neighbor %d" u v);
      rev.(s)
    in
    let bits = proto.msg_bits msg in
    (match metrics with
    | Some m -> Metrics.add_message_at m ~dir:dir_of_dart.(d) ~bits
    | None -> ());
    (match trace with
    | Some tr -> Trace.on_message tr ~round:(base + !round) ~src:u ~dst:v ~bits
    | None -> ());
    incr msgs_round;
    bits_round := !bits_round + bits;
    if bits > !max_msg_bits then max_msg_bits := bits;
    if load.(d) = 0 then touched := d :: !touched;
    let now = load.(d) + bits in
    load.(d) <- now;
    if now > !max_burst then max_burst := now;
    if now > bandwidth then
      raise (Bandwidth_exceeded { round = !round; u; v; bits = now });
    (* The sender paid for the message (metrics, bandwidth); only now
       does the network decide its fate. *)
    match Fault.fate plan with
    | [] -> on_fault "drop" ~src:u ~dst:v
    | [ c ] -> schedule ~src:u ~dst:v msg c
    | cs ->
        on_fault "duplicate" ~src:u ~dst:v;
        List.iter (schedule ~src:u ~dst:v msg) cs
  in
  let commit_round ~active =
    (match metrics with
    | Some m ->
        List.iter
          (fun d ->
            Metrics.note_round_edge_at m ~dir:dir_of_dart.(d) ~bits:load.(d))
          !touched;
        Metrics.record_round m ~round:(base + !round) ~active
          ~messages:!msgs_round ~bits:!bits_round
    | None -> ());
    (match trace with
    | Some tr ->
        Trace.on_round tr ~round:(base + !round) ~active ~messages:!msgs_round
          ~bits:!bits_round
    | None -> ());
    if active > !active_peak then active_peak := active;
    total_msgs := !total_msgs + !msgs_round;
    total_bits := !total_bits + !bits_round
  in
  let reset_loads () =
    List.iter (fun d -> load.(d) <- 0) !touched;
    touched := []
  in
  let apply_transitions r =
    List.iter
      (fun (node, what) ->
        match what with
        | `Crash -> on_fault "crash" ~src:node ~dst:(-1)
        | `Restart -> on_fault "restart" ~src:node ~dst:(-1))
      (Fault.transitions plan ~round:r)
  in
  (* Round 0: crashes scheduled at round 0 apply first; a node that is
     down at round 0 still computes its initial state (the engine needs
     one) but takes no step — its spontaneous sends are suppressed. *)
  apply_transitions 0;
  let states =
    Array.init n (fun v ->
        let (s, out) = proto.init g v in
        if not (Fault.down plan ~node:v ~round:0) then List.iter (send v) out;
        s)
  in
  if !msgs_round > 0 then commit_round ~active:n;
  reset_loads ();
  (* Landed copies of the round being delivered: per-recipient reverse
     lists of (src, key, seq, msg), plus the list of recipients hit. *)
  let landed : (int * int * int * 'm) list array = Array.make (max 1 n) [] in
  let inbox : (int * 'm) list array = Array.make (max 1 n) [] in
  let idle = ref 0 in
  let grace = Fault.grace plan in
  let horizon = Fault.horizon plan in
  let pending_recipients () =
    let seen = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ copies ->
        List.iter (fun (dst, _, _, _, _) -> Hashtbl.replace seen dst ()) copies)
      pending;
    Hashtbl.length seen
  in
  if !msgs_round = 0 && !in_flight = 0 then idle := grace;
  (* The clocked loop: runs until [grace] consecutive rounds saw no send
     and nothing in flight, and the crash schedule's horizon has passed
     (a restart scheduled after a lull must still execute). A run whose
     init sent nothing, under a plan that schedules nothing, is over
     immediately — as in the clean engine. *)
  while not (!idle >= grace && !round >= horizon) do
    if !round >= max_rounds then
      raise
        (No_quiescence
           {
             round = !round;
             active = pending_recipients ();
             messages = !msgs_round;
           });
    incr round;
    let r = !round in
    apply_transitions r;
    (* Deliver: due copies land in their recipients' inboxes — unless
       the recipient is down, in which case the network discards them
       and keeps the score (a retransmission from the reliable layer,
       not the engine, is what carries data past an outage). *)
    let due = try List.rev (Hashtbl.find pending r) with Not_found -> [] in
    Hashtbl.remove pending r;
    List.iter
      (fun (dst, src, key, sq, msg) ->
        decr in_flight;
        if Fault.down plan ~node:dst ~round:r then begin
          Fault.note_crash_lost plan;
          on_fault "crash-lost" ~src ~dst
        end
        else landed.(dst) <- (src, key, sq, msg) :: landed.(dst))
      due;
    (* Sort each hit inbox by (sender, key, seq): with no reordered
       copies this is exactly the documented guarantee — ascending
       sender, per-sender send order. Adversarial mode then shuffles the
       whole inbox. Recipients are visited in ascending id order so the
       shuffles consume the plan's stream deterministically. *)
    let active = ref 0 in
    for v = 0 to n - 1 do
      match landed.(v) with
      | [] -> ()
      | copies ->
          incr active;
          landed.(v) <- [];
          let a = Array.of_list copies in
          Array.sort
            (fun (s1, k1, q1, _) (s2, k2, q2, _) ->
              compare (s1, k1, q1) (s2, k2, q2))
            a;
          if (Fault.spec plan).Fault.adversarial then Fault.permute plan a;
          inbox.(v) <-
            Array.fold_right (fun (src, _, _, m) acc -> (src, m) :: acc) a []
    done;
    msgs_round := 0;
    bits_round := 0;
    (* Compute: every live node steps, with an empty inbox if nothing
       arrived — the clock a recovery layer's retransmission timers run
       on. [active] keeps its metrics meaning: nodes that had mail. *)
    for v = 0 to n - 1 do
      if not (Fault.down plan ~node:v ~round:r) then begin
        let (s, out) = proto.round g v states.(v) inbox.(v) in
        inbox.(v) <- [];
        states.(v) <- s;
        List.iter (send v) out
      end
      else inbox.(v) <- []
    done;
    commit_round ~active:!active;
    reset_loads ();
    idle := if !msgs_round = 0 && !in_flight = 0 then !idle + 1 else 0
  done;
  (match metrics with Some m -> Metrics.add_rounds m !round | None -> ());
  let verdict =
    match (Observe.bounds observe, metrics) with
    | Some b, Some m ->
        Some
          (Bounds.check ?c_rounds:b.Observe.c_rounds ?c_bits:b.Observe.c_bits
             ~bandwidth ~n ~d:b.Observe.d m)
    | _ -> None
  in
  {
    states;
    rounds = !round;
    report =
      {
        messages = !total_msgs;
        bits = !total_bits;
        max_message_bits = !max_msg_bits;
        max_round_edge_bits = !max_burst;
        active_peak = !active_peak;
        verdict;
      };
  }

(* ------------------------------------------------------------------ *)
(* The epoch-batched work-stealing engine (Tier A of the multicore     *)
(* layer)                                                              *)
(* ------------------------------------------------------------------ *)

(* Growable int buffer, reused across rounds: per-slot stagings and
   event logs have no static bound, so they amortize to their peak and
   stay there. The header is padded past a cache line: adjacent slots'
   buffers are allocated back to back and their [len] fields are bumped
   concurrently by different domains — without the pad every push would
   false-share. *)
module Ibuf = struct
  type t = {
    mutable a : int array;
    mutable len : int;
    mutable _p0 : int;
    mutable _p1 : int;
    mutable _p2 : int;
    mutable _p3 : int;
    mutable _p4 : int;
    mutable _p5 : int;
  }

  let make cap =
    { a = Array.make (max 16 cap) 0; len = 0; _p0 = 0; _p1 = 0; _p2 = 0;
      _p3 = 0; _p4 = 0; _p5 = 0 }

  let clear t = t.len <- 0

  let push t x =
    let cap = Array.length t.a in
    if t.len = cap then begin
      let a' = Array.make (2 * cap) 0 in
      Array.blit t.a 0 a' 0 cap;
      t.a <- a'
    end;
    t.a.(t.len) <- x;
    t.len <- t.len + 1
end

(* Growable message buffer — [Ibuf] for 'm values (boundary-mail
   payloads, shard outboxes). Starts empty so no dummy element is
   needed; padded for the same false-sharing reason. *)
module Mbuf = struct
  type 'm t = {
    mutable a : 'm array;
    mutable len : int;
    mutable _p0 : int;
    mutable _p1 : int;
    mutable _p2 : int;
    mutable _p3 : int;
    mutable _p4 : int;
    mutable _p5 : int;
  }

  let make () =
    { a = [||]; len = 0; _p0 = 0; _p1 = 0; _p2 = 0; _p3 = 0; _p4 = 0;
      _p5 = 0 }

  let clear t = t.len <- 0

  let push t x =
    let cap = Array.length t.a in
    if t.len = cap then begin
      let a' = Array.make (max 16 (2 * cap)) x in
      Array.blit t.a 0 a' 0 cap;
      t.a <- a'
    end;
    t.a.(t.len) <- x;
    t.len <- t.len + 1
end

(* A slot aborts at its first error so its event buffer is exactly the
   prefix the sequential engine would have recorded before raising:
   [pos] is the buffered event count at the instant the error struck,
   [rnd] the absolute round (epoch tasks run several rounds between
   merges, so the slot must remember which one failed). *)
exception Stop_shard

type slot_error = { rnd : int; pos : int; err : exn }

(* Per-slot counters, one padded block per slot: in the width-1
   stolen-chunk path every send bumps its slot's counters, and with the
   old parallel arrays (sl_msgs/sl_bits/...) adjacent slots' counters
   shared cache lines — a measured overhead fraction on chunk-heavy
   workloads. 13 fields + header > 64 bytes keeps any two slots' hot
   fields on different lines. *)
type slot_acc = {
  mutable a_msgs : int;
  mutable a_bits : int;
  mutable a_maxmsg : int;
  mutable a_maxburst : int;
  mutable a_tick : int;  (* current sender's stamp for the load scratch *)
  mutable a_err : slot_error option;
  mutable _a0 : int;
  mutable _a1 : int;
  mutable _a2 : int;
  mutable _a3 : int;
  mutable _a4 : int;
  mutable _a5 : int;
  mutable _a6 : int;
  mutable _a7 : int;
}

let slot_acc () =
  { a_msgs = 0; a_bits = 0; a_maxmsg = 0; a_maxburst = 0; a_tick = 0;
    a_err = None;
    _a0 = 0; _a1 = 0; _a2 = 0; _a3 = 0; _a4 = 0; _a5 = 0; _a6 = 0; _a7 = 0 }

(* The parallel round engine. The node range is split into [k]
   contiguous shards; a persistent [Pool.t] of [k] domains executes the
   parallel sections, claiming tasks dynamically. Each global iteration
   picks one of two modes:

   {b Chunk mode} (epoch width 1 — the active set touches a shard
   boundary, or epochs are disabled). The {e sorted active list} — not
   the node range — is split into up to [k * steal] contiguous index
   chunks, so a wavefront concentrated in one shard still spreads over
   every domain, and the work-stealing pool keeps all domains busy even
   when chunk costs are skewed. Deliver and compute are separate pool
   dispatches (a barrier sits between them because sends may cross
   chunks); per-chunk counters, event logs and stagings then merge in
   chunk order, which equals ascending node order, which equals the
   sequential engine's visit order.

   {b Epoch mode} (width e >= 2). [dist.(v)] — precomputed once by
   multi-source BFS — is the hop distance from [v] to the nearest
   {e frontier} node (one with a neighbor in another shard). If every
   active node has [dist >= e], then inductively every node computing in
   local round j of the epoch has [dist >= e - (j - 1) >= 1], so {e no
   send leaves its shard for e rounds}: each shard runs e fused
   deliver+compute rounds against the shared dart state it exclusively
   owns, touching the pool barrier twice per epoch instead of twice per
   round. Boundary darts cannot be written during the epoch by
   construction — the "flush" of boundary traffic is the return to
   width-1 chunk mode as soon as the active set nears a frontier.
   Per-shard round logs (plain cumulative counters per local round) let
   the serial epoch merge fold per-round totals without touching a
   single message.

   {b Deferred observation.} Observation sinks no longer cost a serial
   replay per barrier. When no sink consumes per-message events (the
   benchmark hot path) the slots buffer nothing and the barriers fold
   plain counters. When observation is on, each slot appends its events
   to a persistent log, every committed round appends one {e frame}
   (round, active, totals, per-slot event watermarks) to a run-global
   frame log, and the whole timeline is merged {e once at run end} — a
   slot-order k-way walk of the frame log that replays messages, derives
   each round's first-touched recipients for burst accounting, and emits
   the round records. The price is retaining the event log for the whole
   run, the same order of memory a message-keeping trace already costs.

   {b Boundary mail.} Sends never write another shard's cache lines
   during a parallel section: a cross-shard message (sid u <> sid v) is
   staged in its slot's per-destination-shard buffer and flushed at the
   barrier — serially when light, by a pool dispatch over destination
   shards when heavy (each destination's box/has_mail cells then have
   exactly one writer, draining slots in order, which preserves the
   sequential per-dart cons order). Bandwidth is charged at send time
   from a slot-local per-outbox accumulator — all traffic on a dart in
   one round comes from its unique sender's single outbox — so the
   engine no longer keeps a shared per-dart load array at all.

   Both modes preserve bit-identity with [exec_clean] — states,
   rounds, report, metrics, trace — at every (domains, epoch, steal);
   the differential suite (test_engine_diff.ml) holds them to that.
   Error behavior is faithful too: each slot stops at its first error,
   the merge flushes the frame log and then replays exactly the event
   prefix the sequential engine would have recorded (slots below the
   failing one in full, the failing slot up to the error — for epochs,
   complete rounds before the failing round first), and re-raises the
   error the sequential sweep would have hit first: lowest
   (round, slot).

   Protocols must be pure (no shared mutable state in their closures):
   [init]/[round] of different nodes run concurrently, and [init] of
   node 0 is invoked one extra time to seed the states array. *)
let exec_parallel ~domains ~epoch ~steal ?bandwidth ?max_rounds
    ?(observe = Observe.none) g proto =
  let n = Gr.n g in
  let k = domains in
  let epoch_max = epoch in
  let bandwidth =
    match bandwidth with Some b -> b | None -> default_bandwidth g
  in
  let max_rounds = match max_rounds with Some r -> r | None -> (16 * n) + 64 in
  let trace = Observe.trace observe in
  let metrics =
    match (Observe.metrics observe, Observe.bounds observe) with
    | None, Some _ -> Some (Metrics.create g)
    | m, _ -> m
  in
  let base = match metrics with Some m -> Metrics.rounds m | None -> 0 in
  let xadj = Gr.dart_offsets g in
  let srcs = Gr.dart_sources g in
  let dedge = Gr.dart_edges g in
  let rev = Gr.dart_reversals g in
  let nd = Array.length srcs in
  (* Events are buffered as (dart, bits) pairs; the head table turns a
     dart back into its recipient at replay time. *)
  let head = Array.make (max 1 nd) 0 in
  for v = 0 to n - 1 do
    for d = xadj.(v) to xadj.(v + 1) - 1 do
      head.(d) <- v
    done
  done;
  (* Replay is only needed when a sink actually consumes per-message
     events; a trace that drops messages costs nothing in the slots. *)
  let observing =
    Option.is_some metrics
    || (match trace with Some tr -> Trace.keep_messages tr | None -> false)
  in
  let shard_lo = Array.init (k + 1) (fun i -> i * n / k) in
  (* Shard of each node: the boundary-mail test (stage iff
     sid u <> sid v) consults it on every chunk-mode send. *)
  let sid = Array.make (max 1 n) 0 in
  for i = 0 to k - 1 do
    for v = shard_lo.(i) to shard_lo.(i + 1) - 1 do
      sid.(v) <- i
    done
  done;
  (* Hop distance to the nearest shard frontier, the epoch-legality
     oracle: an epoch of width e is sound iff every active node is at
     distance >= e. Nodes in components with no frontier keep max_int —
     their activity can never leave the shard. *)
  let dist =
    if epoch_max <= 1 then [||]
    else begin
      let d = Array.make (max 1 n) max_int in
      let q = Array.make (max 1 n) 0 in
      let qt = ref 0 in
      for v = 0 to n - 1 do
        let frontier = ref false in
        let dd = ref xadj.(v) in
        while (not !frontier) && !dd < xadj.(v + 1) do
          if sid.(srcs.(!dd)) <> sid.(v) then frontier := true;
          incr dd
        done;
        if !frontier then begin
          d.(v) <- 0;
          q.(!qt) <- v;
          incr qt
        end
      done;
      let qh = ref 0 in
      while !qh < !qt do
        let u = q.(!qh) in
        incr qh;
        let du = d.(u) in
        for dd = xadj.(u) to xadj.(u + 1) - 1 do
          let w = srcs.(dd) in
          if d.(w) > du + 1 then begin
            d.(w) <- du + 1;
            q.(!qt) <- w;
            incr qt
          end
        done
      done;
      d
    end
  in
  let box : 'm list array = Array.make (max 1 nd) [] in
  let has_mail = Array.make (max 1 n) false in
  let staged = Array.make (max 1 n) 0 in
  let n_staged = ref 0 in
  let active_buf = Array.make (max 1 n) 0 in
  let n_active = ref 0 in
  let inbox : (int * 'm) list array = Array.make (max 1 n) [] in
  (* One extra (discarded) init of node 0 seeds the array; protocols are
     pure, so the real pass below overwrites it with the same value. *)
  let states = Array.make n (fst (proto.init g 0)) in
  let round = ref 0 in
  let msgs_round = ref 0 in
  let bits_round = ref 0 in
  let total_msgs = ref 0 in
  let total_bits = ref 0 in
  let max_msg_bits = ref 0 in
  let max_burst = ref 0 in
  let active_peak = ref 0 in
  (* Per-slot accumulators: a slot is a chunk in chunk mode (up to
     k * steal of them) or a shard in epoch mode (the first k). Counters
     fold at the merge, stagings dedupe there; event logs are
     append-only for the whole run and replay once at the end. *)
  let nslots = k * steal in
  let sl = Array.init nslots (fun _ -> slot_acc ()) in
  let sl_staged = Array.init nslots (fun _ -> Ibuf.make 64) in
  let sl_events =
    Array.init nslots (fun _ -> Ibuf.make (if observing then 256 else 16))
  in
  (* Slot-local per-round load scratch, indexed by the sender's
     adjacency rank: within one round all traffic on a dart comes from
     its unique sender's single outbox, so the bandwidth/burst
     accumulator needs no shared load array. [ld_cum.(slot).(o)] is the
     cumulative bits of the current sender's out-dart [o] (its rank in
     the sender's CSR slice); validity is a stamp compare against the
     slot's [a_tick], bumped once per sender — O(1) per send, no
     per-node clearing, no probe. *)
  let maxdeg =
    let m = ref 1 in
    for v = 0 to n - 1 do
      let d = xadj.(v + 1) - xadj.(v) in
      if d > !m then m := d
    done;
    !m
  in
  let ld_cum = Array.init nslots (fun _ -> Array.make maxdeg 0) in
  let ld_stp = Array.init nslots (fun _ -> Array.make maxdeg 0) in
  (* Boundary mail staged at send, per (slot, destination shard),
     flushed at the barrier. *)
  let ob_d = Array.init nslots (fun _ -> Array.init k (fun _ -> Ibuf.make 32)) in
  let ob_m : 'm Mbuf.t array array =
    Array.init nslots (fun _ -> Array.init k (fun _ -> Mbuf.make ()))
  in
  let fl_staged = Array.init k (fun _ -> Ibuf.make 64) in
  (* Epoch-mode per-shard logs. [sh_dstaged] accumulates the {e deduped}
     staged recipients of every local round in first-touch order;
     [sh_rlog] stores five ints per completed local round — cumulative
     messages, cumulative bits, active count, event watermark, staging
     watermark — so the merge can fold per-round deltas and slices.
     [sh_cur] is the shard's working (sorted) active list. *)
  let sh_dstaged = Array.init k (fun _ -> Ibuf.make 64) in
  let sh_rlog = Array.init k (fun _ -> Ibuf.make 80) in
  let sh_cur = Array.init k (fun _ -> Ibuf.make 64) in
  (* The run-global frame log (observing runs only): per committed round
     [rnd; nc; active; msgs; bits; wm_0 .. wm_{nc-1}], where wm_s is
     slot s's event-log length at commit. [cursor] tracks each slot's
     replay position during the run-end merge. *)
  let frames = Ibuf.make (if observing then 256 else 16) in
  let fpos = ref 0 in
  let cursor = Array.make nslots 0 in
  (* Merge-time per-dart load reconstruction: the burst accounting of
     every round replays into a scratch copy at merge time. [mstamp]
     and [rbuf] derive the round's first-touched recipients from the
     replayed events — exactly the sequential engine's staging set. *)
  let mload =
    if Option.is_some metrics then Array.make (max 1 nd) 0 else [||]
  in
  let mtouch = Ibuf.make 256 in
  let mstamp = Array.make (max 1 n) 0 in
  let rbuf = Ibuf.make 256 in
  let frame_no = ref 0 in
  let send slot rnd u (v, msg) =
    let s = rank srcs xadj.(u) (xadj.(u + 1) - 1) v in
    if s < 0 then begin
      sl.(slot).a_err <-
        Some
          {
            rnd;
            pos = sl_events.(slot).Ibuf.len;
            err =
              Invalid_argument
                (Printf.sprintf "Network.run: node %d sent to non-neighbor %d"
                   u v);
          };
      raise_notrace Stop_shard
    end;
    let d = rev.(s) in
    let bits = proto.msg_bits msg in
    if observing then begin
      Ibuf.push sl_events.(slot) d;
      Ibuf.push sl_events.(slot) bits
    end;
    let a = sl.(slot) in
    a.a_msgs <- a.a_msgs + 1;
    a.a_bits <- a.a_bits + bits;
    if bits > a.a_maxmsg then a.a_maxmsg <- bits;
    let o = s - xadj.(u) in
    let cum = ld_cum.(slot) and stp = ld_stp.(slot) in
    let now =
      if stp.(o) = a.a_tick then cum.(o) + bits else bits
    in
    cum.(o) <- now;
    stp.(o) <- a.a_tick;
    if now > a.a_maxburst then a.a_maxburst <- now;
    if now > bandwidth then begin
      (* The sequential engine records the violating message in its
         sinks before raising; [pos] already includes it. *)
      a.a_err <-
        Some
          {
            rnd;
            pos = sl_events.(slot).Ibuf.len;
            err = Bandwidth_exceeded { round = rnd; u; v; bits = now };
          };
      raise_notrace Stop_shard
    end;
    if sid.(u) = sid.(v) then begin
      (match box.(d) with
      | [] -> Ibuf.push sl_staged.(slot) v
      | _ :: _ -> ());
      box.(d) <- msg :: box.(d)
    end
    else begin
      Ibuf.push ob_d.(slot).(sid.(v)) d;
      Mbuf.push ob_m.(slot).(sid.(v)) msg
    end
  in
  (* Replay buffered event pairs [lo, hi) of a slot into the sinks as
     round [rnd]; with [tally] also rebuild the per-dart round loads and
     collect first-touched recipients for burst accounting. *)
  let replay ~rnd ~tally slot lo hi =
    let ev = sl_events.(slot).Ibuf.a in
    for j = lo to hi - 1 do
      let d = ev.(2 * j) and bits = ev.((2 * j) + 1) in
      let u = srcs.(d) and v = head.(d) in
      (match metrics with
      | Some m ->
          Metrics.add_message_at m
            ~dir:((2 * dedge.(d)) + if u < v then 0 else 1)
            ~bits;
          if tally then begin
            if mload.(d) = 0 then Ibuf.push mtouch d;
            mload.(d) <- mload.(d) + bits;
            if mstamp.(v) <> !frame_no then begin
              mstamp.(v) <- !frame_no;
              Ibuf.push rbuf v
            end
          end
      | None -> ());
      match trace with
      | Some tr -> Trace.on_message tr ~round:(base + rnd) ~src:u ~dst:v ~bits
      | None -> ()
    done
  in
  (* The deferred observation merge: walk the frame log once — at run
     end or at the error boundary — replaying each round's events in
     slot order (the sequential visit order), scanning the round's
     first-touched recipients' darts for the per-edge burst maxima, and
     emitting the round records. One serial pass over the whole
     timeline replaces the old serial replay inside every barrier. *)
  let flush_frames () =
    let fa = frames.Ibuf.a in
    while !fpos < frames.Ibuf.len do
      incr frame_no;
      let p = !fpos in
      let rnd = fa.(p) in
      let nc = fa.(p + 1) in
      let active = fa.(p + 2) in
      let msgs = fa.(p + 3) in
      let bits = fa.(p + 4) in
      let tally = Option.is_some metrics in
      Ibuf.clear rbuf;
      for s = 0 to nc - 1 do
        let wm = fa.(p + 5 + s) in
        replay ~rnd ~tally s (cursor.(s) / 2) (wm / 2);
        cursor.(s) <- wm
      done;
      (match metrics with
      | Some m ->
          for i = 0 to rbuf.Ibuf.len - 1 do
            let v = rbuf.Ibuf.a.(i) in
            for d = xadj.(v) to xadj.(v + 1) - 1 do
              if mload.(d) > 0 then
                Metrics.note_round_edge_at m
                  ~dir:((2 * dedge.(d)) + if srcs.(d) < v then 0 else 1)
                  ~bits:mload.(d)
            done
          done;
          for i = 0 to mtouch.Ibuf.len - 1 do
            mload.(mtouch.Ibuf.a.(i)) <- 0
          done;
          Ibuf.clear mtouch;
          Metrics.record_round m ~round:(base + rnd) ~active ~messages:msgs
            ~bits
      | None -> ());
      (match trace with
      | Some tr ->
          Trace.on_round tr ~round:(base + rnd) ~active ~messages:msgs ~bits
      | None -> ());
      fpos := p + 5 + nc
    done
  in
  (* First index in the sorted active prefix holding a node >= x. *)
  let lower_bound x =
    let rec go a b =
      if a >= b then a
      else begin
        let mid = (a + b) / 2 in
        if active_buf.(mid) < x then go (mid + 1) b else go a mid
      end
    in
    go 0 !n_active
  in
  (* Commit one chunk-mode (or init) round: when observing, append a
     frame for the run-end merge; totals fold either way. *)
  let commit_round ~nc ~active =
    if observing then begin
      Ibuf.push frames !round;
      Ibuf.push frames nc;
      Ibuf.push frames active;
      Ibuf.push frames !msgs_round;
      Ibuf.push frames !bits_round;
      for s = 0 to nc - 1 do
        Ibuf.push frames sl_events.(s).Ibuf.len
      done
    end;
    if active > !active_peak then active_peak := active;
    total_msgs := !total_msgs + !msgs_round;
    total_bits := !total_bits + !bits_round
  in
  let pool = Pool.create ~domains:k () in
  let shutdown () = Pool.shutdown pool in
  let fail_with e =
    shutdown ();
    raise e
  in
  (* Deliver the boundary mail staged during a width-1 section: walk
     destination shards, draining slots in ascending order — each
     destination's box/has_mail cells get exactly one writer, and slot
     order preserves the sequential per-dart cons order. Serial when the
     volume wouldn't pay for a dispatch. Flushing cannot fail: darts
     were resolved and bandwidth charged at send time. *)
  let flush_boundary nc =
    let total = ref 0 in
    for s = 0 to nc - 1 do
      for t = 0 to k - 1 do
        total := !total + ob_d.(s).(t).Ibuf.len
      done
    done;
    if !total > 0 then begin
      let flush_to t =
        let fs = fl_staged.(t) in
        for s = 0 to nc - 1 do
          let db = ob_d.(s).(t) and mb = ob_m.(s).(t) in
          for j = 0 to db.Ibuf.len - 1 do
            let d = db.Ibuf.a.(j) in
            let msg = mb.Mbuf.a.(j) in
            (match box.(d) with
            | [] ->
                let v = head.(d) in
                if not has_mail.(v) then begin
                  has_mail.(v) <- true;
                  Ibuf.push fs v
                end
            | _ :: _ -> ());
            box.(d) <- msg :: box.(d)
          done;
          Ibuf.clear db;
          Mbuf.clear mb
        done
      in
      if !total < 512 || k <= 1 then
        for t = 0 to k - 1 do
          flush_to t
        done
      else Pool.run pool ~tasks:k flush_to;
      for t = 0 to k - 1 do
        let fs = fl_staged.(t) in
        for j = 0 to fs.Ibuf.len - 1 do
          staged.(!n_staged) <- fs.Ibuf.a.(j);
          incr n_staged
        done;
        Ibuf.clear fs
      done
    end
  in
  (* Fold one width-1 parallel section (init or a chunked round) back
     into the global round state; on error, flush the frame log and
     replay only the sequential prefix of the failing round, then
     re-raise. Chunks are contiguous ascending slices of the visit
     order, so slot order = sequential order and the lowest erring slot
     holds the error a sequential sweep would hit first. *)
  let merge_slots nc =
    let erri = ref (-1) in
    for i = nc - 1 downto 0 do
      if sl.(i).a_err <> None then erri := i
    done;
    if !erri >= 0 then begin
      let { rnd; pos; err } =
        match sl.(!erri).a_err with Some e -> e | None -> assert false
      in
      if observing then begin
        flush_frames ();
        for i = 0 to !erri - 1 do
          replay ~rnd ~tally:false i
            (cursor.(i) / 2)
            (sl_events.(i).Ibuf.len / 2)
        done;
        replay ~rnd ~tally:false !erri (cursor.(!erri) / 2) (pos / 2)
      end;
      fail_with err
    end;
    flush_boundary nc;
    for i = 0 to nc - 1 do
      let a = sl.(i) in
      msgs_round := !msgs_round + a.a_msgs;
      bits_round := !bits_round + a.a_bits;
      if a.a_maxmsg > !max_msg_bits then max_msg_bits := a.a_maxmsg;
      if a.a_maxburst > !max_burst then max_burst := a.a_maxburst;
      let st = sl_staged.(i) in
      for j = 0 to st.Ibuf.len - 1 do
        let w = st.Ibuf.a.(j) in
        if not has_mail.(w) then begin
          has_mail.(w) <- true;
          staged.(!n_staged) <- w;
          incr n_staged
        end
      done;
      a.a_msgs <- 0;
      a.a_bits <- 0;
      a.a_maxmsg <- 0;
      a.a_maxburst <- 0;
      Ibuf.clear sl_staged.(i)
    done
  in
  (* One shard's whole epoch: up to [e] fused deliver+compute rounds
     against dart state no other domain touches (the epoch-legality
     invariant), logging enough per round for the serial merge to
     replay. Stops early when the shard's own activity dies out — no
     other shard can reactivate it mid-epoch. *)
  let shard_epoch i round_base e =
    let lrnd = ref round_base in
    try
      let a = lower_bound shard_lo.(i) and b = lower_bound shard_lo.(i + 1) in
      let cur = sh_cur.(i) in
      Ibuf.clear cur;
      for idx = a to b - 1 do
        Ibuf.push cur active_buf.(idx)
      done;
      let acount = ref cur.Ibuf.len in
      let raw = sl_staged.(i) in
      let dst = sh_dstaged.(i) in
      let rl = sh_rlog.(i) in
      let j = ref 0 in
      while !acount > 0 && !j < e do
        incr j;
        let rnd = round_base + !j in
        lrnd := rnd;
        (* Deliver to this shard's recipients only: their in-dart ranges
           were last written by this shard (local rounds) or before the
           epoch started (the dispatch barrier ordered those writes). *)
        for idx = 0 to !acount - 1 do
          let v = cur.Ibuf.a.(idx) in
          has_mail.(v) <- false;
          let acc = ref [] in
          for d = xadj.(v + 1) - 1 downto xadj.(v) do
            match box.(d) with
            | [] -> ()
            | msgs ->
                let u = srcs.(d) in
                List.iter (fun m -> acc := (u, m) :: !acc) msgs;
                box.(d) <- []
          done;
          inbox.(v) <- !acc
        done;
        Ibuf.clear raw;
        for idx = 0 to !acount - 1 do
          let v = cur.Ibuf.a.(idx) in
          let (s, out) = proto.round g v states.(v) inbox.(v) in
          inbox.(v) <- [];
          states.(v) <- s;
          sl.(i).a_tick <- sl.(i).a_tick + 1;
          List.iter (send i rnd v) out
        done;
        (* Dedup this round's raw (per-dart) stagings into the epoch log
           in first-touch order — the order the sequential engine stages
           these same recipients in. *)
        let dst0 = dst.Ibuf.len in
        for idx = 0 to raw.Ibuf.len - 1 do
          let w = raw.Ibuf.a.(idx) in
          if not has_mail.(w) then begin
            has_mail.(w) <- true;
            Ibuf.push dst w
          end
        done;
        Ibuf.push rl sl.(i).a_msgs;
        Ibuf.push rl sl.(i).a_bits;
        Ibuf.push rl !acount;
        Ibuf.push rl sl_events.(i).Ibuf.len;
        Ibuf.push rl dst.Ibuf.len;
        (* Next round's worklist: this round's staging, sorted. *)
        Ibuf.clear cur;
        for idx = dst0 to dst.Ibuf.len - 1 do
          Ibuf.push cur dst.Ibuf.a.(idx)
        done;
        sort_prefix cur.Ibuf.a cur.Ibuf.len;
        acount := cur.Ibuf.len
      done
    with
    | Stop_shard -> ()
    | e ->
        sl.(i).a_err <-
          Some { rnd = !lrnd; pos = sl_events.(i).Ibuf.len; err = e }
  in
  (* Serial epoch merge: fold the shards' round logs into per-round
     totals in shard order. Shard order per round = ascending node order
     = the sequential engine's visit order, because epochs only run when
     every send stays shard-internal. When observing, each local round
     appends one frame; messages replay at run end, not here. *)
  let merge_epoch () =
    let round_base = !round in
    let cnt i = sh_rlog.(i).Ibuf.len / 5 in
    (* Field f of shard i's local round j (1-based); 0 for j = 0. Fields:
       0 cumulative msgs, 1 cumulative bits, 2 active, 3 event
       watermark, 4 staging watermark. *)
    let rl_get i j f =
      if j = 0 then 0 else sh_rlog.(i).Ibuf.a.((5 * (j - 1)) + f)
    in
    (* Earliest error by (absolute round, shard) — the one the
       sequential sweep would have hit first. *)
    let err_slot = ref (-1) in
    let err_rnd = ref max_int in
    for i = k - 1 downto 0 do
      match sl.(i).a_err with
      | Some { rnd; _ } when rnd <= !err_rnd ->
          err_rnd := rnd;
          err_slot := i
      | _ -> ()
    done;
    let r_full =
      if !err_slot >= 0 then !err_rnd - round_base - 1
      else begin
        let r = ref 0 in
        for i = 0 to k - 1 do
          if cnt i > !r then r := cnt i
        done;
        !r
      end
    in
    for j = 1 to r_full do
      incr round;
      let m_j = ref 0 and b_j = ref 0 and a_j = ref 0 in
      for i = 0 to k - 1 do
        if cnt i >= j then begin
          m_j := !m_j + rl_get i j 0 - rl_get i (j - 1) 0;
          b_j := !b_j + rl_get i j 1 - rl_get i (j - 1) 1;
          a_j := !a_j + sh_rlog.(i).Ibuf.a.((5 * (j - 1)) + 2)
        end
      done;
      if observing then begin
        Ibuf.push frames !round;
        Ibuf.push frames k;
        Ibuf.push frames !a_j;
        Ibuf.push frames !m_j;
        Ibuf.push frames !b_j;
        (* A shard that died out before local round j keeps its final
           watermark — an empty replay slice at merge time. A shard that
           never ran this epoch has no log rows at all; its watermark is
           its event length as it stood, which the cursor already equals
           (rl_get would say 0 and rewind the cursor). *)
        for i = 0 to k - 1 do
          let wm =
            if cnt i = 0 then sl_events.(i).Ibuf.len
            else rl_get i (min j (cnt i)) 3
          in
          Ibuf.push frames wm
        done
      end;
      if !a_j > !active_peak then active_peak := !a_j;
      total_msgs := !total_msgs + !m_j;
      total_bits := !total_bits + !b_j;
      msgs_round := !m_j;
      bits_round := !b_j
    done;
    if !err_slot >= 0 then begin
      (* The failing round: shards below the erring one completed it (a
         same-round error in a lower shard would have been selected), so
         their events replay in full; the erring shard replays up to the
         error; higher shards never ran sequentially. No round record —
         the sequential engine raises before its commit. *)
      let slot = !err_slot in
      let jl = !err_rnd - round_base in
      let { rnd; pos; err } =
        match sl.(slot).a_err with Some e -> e | None -> assert false
      in
      incr round;
      if observing then begin
        flush_frames ();
        for i = 0 to slot - 1 do
          if cnt i >= jl then
            replay ~rnd ~tally:false i (cursor.(i) / 2) (rl_get i jl 3 / 2)
        done;
        replay ~rnd ~tally:false slot (cursor.(slot) / 2) (pos / 2)
      end;
      fail_with err
    end;
    (* Pending work for the next global iteration: each shard's final
       staging slice — already deduped, [has_mail] already set. Shards
       that died out mid-epoch contribute an empty slice. *)
    n_staged := 0;
    for i = 0 to k - 1 do
      let c = cnt i in
      if c > 0 then begin
        let dst = sh_dstaged.(i) in
        for idx = rl_get i (c - 1) 4 to rl_get i c 4 - 1 do
          staged.(!n_staged) <- dst.Ibuf.a.(idx);
          incr n_staged
        done
      end
    done;
    for i = 0 to k - 1 do
      let a = sl.(i) in
      if a.a_maxmsg > !max_msg_bits then max_msg_bits := a.a_maxmsg;
      if a.a_maxburst > !max_burst then max_burst := a.a_maxburst;
      a.a_msgs <- 0;
      a.a_bits <- 0;
      a.a_maxmsg <- 0;
      a.a_maxburst <- 0;
      Ibuf.clear sl_staged.(i);
      Ibuf.clear sh_dstaged.(i);
      Ibuf.clear sh_rlog.(i);
      Ibuf.clear sh_cur.(i)
    done
  in
  (* Init: chunked over contiguous node ranges (sends may cross shards
     here, so this is a width-1 section with the standard merge). *)
  let nc_init = max 1 (min nslots n) in
  Pool.run pool ~tasks:nc_init (fun c ->
      let lo = c * n / nc_init and hi = (c + 1) * n / nc_init in
      try
        for v = lo to hi - 1 do
          let (s, out) = proto.init g v in
          states.(v) <- s;
          sl.(c).a_tick <- sl.(c).a_tick + 1;
          List.iter (send c 0 v) out
        done
      with
      | Stop_shard -> ()
      | e ->
          sl.(c).a_err <-
            Some { rnd = 0; pos = sl_events.(c).Ibuf.len; err = e });
  merge_slots nc_init;
  if !msgs_round > 0 then commit_round ~nc:nc_init ~active:n;
  while !n_staged > 0 do
    if !round >= max_rounds then begin
      if observing then flush_frames ();
      fail_with
        (No_quiescence
           { round = !round; active = !n_staged; messages = !msgs_round })
    end;
    let kact = !n_staged in
    Array.blit staged 0 active_buf 0 kact;
    sort_prefix active_buf kact;
    n_active := kact;
    n_staged := 0;
    (* Epoch width: the least frontier distance over the active set,
       clamped by the configured maximum and the round budget. Width 1
       is chunk mode. *)
    let e =
      if epoch_max <= 1 then 1
      else begin
        let m = ref max_int in
        let i = ref 0 in
        while !i < kact && !m > 1 do
          let dv = dist.(active_buf.(!i)) in
          if dv < !m then m := dv;
          incr i
        done;
        max 1 (min (min !m epoch_max) (max_rounds - !round))
      end
    in
    msgs_round := 0;
    bits_round := 0;
    if e <= 1 then begin
      incr round;
      let rnd = !round in
      let nc = min nslots kact in
      Pool.run pool ~tasks:nc (fun c ->
          let lo = c * kact / nc and hi = (c + 1) * kact / nc in
          try
            for idx = lo to hi - 1 do
              let v = active_buf.(idx) in
              has_mail.(v) <- false;
              let acc = ref [] in
              for d = xadj.(v + 1) - 1 downto xadj.(v) do
                match box.(d) with
                | [] -> ()
                | msgs ->
                    let u = srcs.(d) in
                    List.iter (fun m -> acc := (u, m) :: !acc) msgs;
                    box.(d) <- []
              done;
              inbox.(v) <- !acc
            done
          with e ->
            sl.(c).a_err <-
              Some { rnd; pos = sl_events.(c).Ibuf.len; err = e });
      Pool.run pool ~tasks:nc (fun c ->
          let lo = c * kact / nc and hi = (c + 1) * kact / nc in
          try
            for idx = lo to hi - 1 do
              let v = active_buf.(idx) in
              let (s, out) = proto.round g v states.(v) inbox.(v) in
              inbox.(v) <- [];
              states.(v) <- s;
              sl.(c).a_tick <- sl.(c).a_tick + 1;
              List.iter (send c rnd v) out
            done
          with
          | Stop_shard -> ()
          | e ->
              sl.(c).a_err <-
                Some { rnd; pos = sl_events.(c).Ibuf.len; err = e });
      merge_slots nc;
      commit_round ~nc ~active:kact
    end
    else begin
      let round_base = !round in
      Pool.run pool ~tasks:k (fun i -> shard_epoch i round_base e);
      merge_epoch ()
    end
  done;
  if observing then flush_frames ();
  shutdown ();
  (match metrics with Some m -> Metrics.add_rounds m !round | None -> ());
  let verdict =
    match (Observe.bounds observe, metrics) with
    | Some b, Some m ->
        Some
          (Bounds.check ?c_rounds:b.Observe.c_rounds ?c_bits:b.Observe.c_bits
             ~bandwidth ~n ~d:b.Observe.d m)
    | _ -> None
  in
  {
    states;
    rounds = !round;
    report =
      {
        messages = !total_msgs;
        bits = !total_bits;
        max_message_bits = !max_msg_bits;
        max_round_edge_bits = !max_burst;
        active_peak = !active_peak;
        verdict;
      };
  }

(* The sharded fault-aware clocked engine: the clocked loop of
   [exec_faulty] with the compute phase parallelized over [k] contiguous
   node shards. Each shard steps its own nodes against shard-owned
   state/inbox cells and stages its sends as (sender, recipient, msg)
   triples; a {e serial} network phase then walks the staged sends in
   ascending shard order — which is ascending node order, the sequential
   engine's visit order — doing everything order-sensitive in one
   thread: metrics, trace, bandwidth accounting, fault fates, delivery
   scheduling and the plan's stats.

   Fault decisions come from keyed {!Fault.substream}s — per-message
   fates from [(sender's shard, send round, target dart)], adversarial
   inbox permutes from [(recipient's shard, delivery round, nd + v)] —
   so the run is a pure function of (seed, domains, spec, protocol,
   graph): deterministic at every domain count, but {e stream-distinct}
   from the [domains = 1] engine, which consumes one stream in visit
   order. All messages of one dart in one round draw from one substream
   (a per-dart table in the serial phase), keeping their fates
   independent draws rather than replays of the same position.

   Error faithfulness: a compute error in shard i suppresses the
   network phase for shards > i and for the erring shard's unstaged
   tail, so the error surfaces exactly after the sends a sequential
   sweep would have processed first; bandwidth violations raise from
   the serial phase mid-walk, as the sequential engine does. *)
let exec_faulty_par ~plan ~domains ?bandwidth ?max_rounds
    ?(observe = Observe.none) g proto =
  let n = Gr.n g in
  let k = domains in
  let bandwidth =
    match bandwidth with Some b -> b | None -> default_bandwidth g
  in
  let max_rounds = match max_rounds with Some r -> r | None -> (16 * n) + 64 in
  let trace = Observe.trace observe in
  let metrics =
    match (Observe.metrics observe, Observe.bounds observe) with
    | None, Some _ -> Some (Metrics.create g)
    | m, _ -> m
  in
  let base = match metrics with Some m -> Metrics.rounds m | None -> 0 in
  let xadj = Gr.dart_offsets g in
  let srcs = Gr.dart_sources g in
  let dedge = Gr.dart_edges g in
  let rev = Gr.dart_reversals g in
  let nd = Array.length srcs in
  let dir_of_dart = Array.make (max 1 nd) 0 in
  for v = 0 to n - 1 do
    for d = xadj.(v) to xadj.(v + 1) - 1 do
      dir_of_dart.(d) <- (2 * dedge.(d)) + if srcs.(d) < v then 0 else 1
    done
  done;
  let shard_lo = Array.init (k + 1) (fun i -> i * n / k) in
  let sid = Array.make (max 1 n) 0 in
  for i = 0 to k - 1 do
    for v = shard_lo.(i) to shard_lo.(i + 1) - 1 do
      sid.(v) <- i
    done
  done;
  let round = ref 0 in
  let msgs_round = ref 0 in
  let bits_round = ref 0 in
  let total_msgs = ref 0 in
  let total_bits = ref 0 in
  let max_msg_bits = ref 0 in
  let max_burst = ref 0 in
  let active_peak = ref 0 in
  (* Load/touched are only read and written by the serial network
     phase. *)
  let load = Array.make (max 1 nd) 0 in
  let touched = ref [] in
  let pending : (int, (int * int * int * int * 'm) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let in_flight = ref 0 in
  let seq = ref 0 in
  (* Per-shard staged sends of the current phase: (u, v) int pairs plus
     the message payloads, in the shard's node order. [sh_err] holds the
     shard's first compute error as (node, exn). *)
  let ob_uv = Array.init k (fun _ -> Ibuf.make 64) in
  let ob_m : 'm Mbuf.t array = Array.init k (fun _ -> Mbuf.make ()) in
  let sh_err : (int * exn) option array = Array.make k None in
  let pool = Pool.create ~domains:k () in
  let shutdown () = Pool.shutdown pool in
  let fail_with e =
    shutdown ();
    raise e
  in
  let on_fault kind ~src ~dst =
    (match metrics with Some m -> Metrics.note_fault m ~kind | None -> ());
    match trace with
    | Some tr -> Trace.on_fault tr ~round:(base + !round) ~kind ~src ~dst
    | None -> ()
  in
  let schedule ~src ~dst msg (c : Fault.delivery) =
    if c.Fault.offset > 0 then on_fault "delay" ~src ~dst;
    let key =
      match c.Fault.key with
      | Some key ->
          on_fault "reorder" ~src ~dst;
          key
      | None -> !seq
    in
    let at = !round + 1 + c.Fault.offset in
    let sofar = try Hashtbl.find pending at with Not_found -> [] in
    Hashtbl.replace pending at ((dst, src, key, !seq, msg) :: sofar);
    incr seq;
    incr in_flight
  in
  (* The serial network phase: walk the shards' staged sends in shard
     (= node) order, charging metrics and bandwidth and drawing each
     message's fate from the dart's keyed substream. A shard's compute
     error re-raises after its staged prefix — and before any higher
     shard's sends, which a sequential sweep would never have reached. *)
  let apply_sends r =
    let subs : (int, Fault.sub) Hashtbl.t = Hashtbl.create 16 in
    for i = 0 to k - 1 do
      Hashtbl.reset subs;
      let uv = ob_uv.(i) in
      let mb = ob_m.(i) in
      for j = 0 to (uv.Ibuf.len / 2) - 1 do
        let u = uv.Ibuf.a.(2 * j) in
        let v = uv.Ibuf.a.((2 * j) + 1) in
        let msg = mb.Mbuf.a.(j) in
        let d =
          let s = rank srcs xadj.(u) (xadj.(u + 1) - 1) v in
          if s < 0 then
            fail_with
              (Invalid_argument
                 (Printf.sprintf
                    "Network.run: node %d sent to non-neighbor %d" u v));
          rev.(s)
        in
        let bits = proto.msg_bits msg in
        (match metrics with
        | Some m -> Metrics.add_message_at m ~dir:dir_of_dart.(d) ~bits
        | None -> ());
        (match trace with
        | Some tr ->
            Trace.on_message tr ~round:(base + !round) ~src:u ~dst:v ~bits
        | None -> ());
        incr msgs_round;
        bits_round := !bits_round + bits;
        if bits > !max_msg_bits then max_msg_bits := bits;
        if load.(d) = 0 then touched := d :: !touched;
        let now = load.(d) + bits in
        load.(d) <- now;
        if now > !max_burst then max_burst := now;
        if now > bandwidth then
          fail_with (Bandwidth_exceeded { round = !round; u; v; bits = now });
        let sub =
          match Hashtbl.find_opt subs d with
          | Some sub -> sub
          | None ->
              let sub = Fault.substream plan ~shard:i ~round:r ~slot:d in
              Hashtbl.add subs d sub;
              sub
        in
        (match Fault.sub_fate sub with
        | [] -> on_fault "drop" ~src:u ~dst:v
        | [ c ] -> schedule ~src:u ~dst:v msg c
        | cs ->
            on_fault "duplicate" ~src:u ~dst:v;
            List.iter (schedule ~src:u ~dst:v msg) cs)
      done;
      Ibuf.clear uv;
      Mbuf.clear mb;
      match sh_err.(i) with Some (_, e) -> fail_with e | None -> ()
    done
  in
  let commit_round ~active =
    (match metrics with
    | Some m ->
        List.iter
          (fun d ->
            Metrics.note_round_edge_at m ~dir:dir_of_dart.(d) ~bits:load.(d))
          !touched;
        Metrics.record_round m ~round:(base + !round) ~active
          ~messages:!msgs_round ~bits:!bits_round
    | None -> ());
    (match trace with
    | Some tr ->
        Trace.on_round tr ~round:(base + !round) ~active ~messages:!msgs_round
          ~bits:!bits_round
    | None -> ());
    if active > !active_peak then active_peak := active;
    total_msgs := !total_msgs + !msgs_round;
    total_bits := !total_bits + !bits_round
  in
  let reset_loads () =
    List.iter (fun d -> load.(d) <- 0) !touched;
    touched := []
  in
  let apply_transitions r =
    List.iter
      (fun (node, what) ->
        match what with
        | `Crash -> on_fault "crash" ~src:node ~dst:(-1)
        | `Restart -> on_fault "restart" ~src:node ~dst:(-1))
      (Fault.transitions plan ~round:r)
  in
  apply_transitions 0;
  (* One extra (discarded) init of node 0 seeds the array (protocols are
     pure); shards then init their own nodes in parallel, staging the
     spontaneous sends of live nodes. *)
  let states = Array.make n (fst (proto.init g 0)) in
  let inbox : (int * 'm) list array = Array.make (max 1 n) [] in
  Pool.run pool ~tasks:k (fun i ->
      try
        for v = shard_lo.(i) to shard_lo.(i + 1) - 1 do
          let (s, out) = proto.init g v in
          states.(v) <- s;
          if not (Fault.down plan ~node:v ~round:0) then
            List.iter
              (fun (w, msg) ->
                Ibuf.push ob_uv.(i) v;
                Ibuf.push ob_uv.(i) w;
                Mbuf.push ob_m.(i) msg)
              out
        done
      with e ->
        (* proto.init is all that can raise here; record the node. *)
        (match sh_err.(i) with
        | None -> sh_err.(i) <- Some (shard_lo.(i), e)
        | Some _ -> ()));
  apply_sends 0;
  if !msgs_round > 0 then commit_round ~active:n;
  reset_loads ();
  let landed : (int * int * int * 'm) list array = Array.make (max 1 n) [] in
  let idle = ref 0 in
  let grace = Fault.grace plan in
  let horizon = Fault.horizon plan in
  let pending_recipients () =
    let seen = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ copies ->
        List.iter (fun (dst, _, _, _, _) -> Hashtbl.replace seen dst ()) copies)
      pending;
    Hashtbl.length seen
  in
  if !msgs_round = 0 && !in_flight = 0 then idle := grace;
  while not (!idle >= grace && !round >= horizon) do
    if !round >= max_rounds then
      fail_with
        (No_quiescence
           {
             round = !round;
             active = pending_recipients ();
             messages = !msgs_round;
           });
    incr round;
    let r = !round in
    apply_transitions r;
    let due = try List.rev (Hashtbl.find pending r) with Not_found -> [] in
    Hashtbl.remove pending r;
    List.iter
      (fun (dst, src, key, sq, msg) ->
        decr in_flight;
        if Fault.down plan ~node:dst ~round:r then begin
          Fault.note_crash_lost plan;
          on_fault "crash-lost" ~src ~dst
        end
        else landed.(dst) <- (src, key, sq, msg) :: landed.(dst))
      due;
    (* Sort each hit inbox by (sender, key, seq); adversarial mode then
       shuffles it from the recipient's keyed substream ([nd + v] cannot
       collide with a fate key, which is a dart slot). *)
    let active = ref 0 in
    for v = 0 to n - 1 do
      match landed.(v) with
      | [] -> ()
      | copies ->
          incr active;
          landed.(v) <- [];
          let a = Array.of_list copies in
          Array.sort
            (fun (s1, k1, q1, _) (s2, k2, q2, _) ->
              compare (s1, k1, q1) (s2, k2, q2))
            a;
          if (Fault.spec plan).Fault.adversarial then
            Fault.sub_permute
              (Fault.substream plan ~shard:sid.(v) ~round:r ~slot:(nd + v))
              a;
          inbox.(v) <-
            Array.fold_right (fun (src, _, _, m) acc -> (src, m) :: acc) a []
    done;
    msgs_round := 0;
    bits_round := 0;
    (* Compute: every live node steps. Shards own disjoint state/inbox
       ranges; sends are staged, so no shard writes outside its range. *)
    Pool.run pool ~tasks:k (fun i ->
        let v = ref shard_lo.(i) in
        let hi = shard_lo.(i + 1) in
        (try
           while !v < hi do
             let u = !v in
             if not (Fault.down plan ~node:u ~round:r) then begin
               let (s, out) = proto.round g u states.(u) inbox.(u) in
               inbox.(u) <- [];
               states.(u) <- s;
               List.iter
                 (fun (w, msg) ->
                   Ibuf.push ob_uv.(i) u;
                   Ibuf.push ob_uv.(i) w;
                   Mbuf.push ob_m.(i) msg)
                 out
             end
             else inbox.(u) <- [];
             incr v
           done
         with e ->
           match sh_err.(i) with
           | None -> sh_err.(i) <- Some (!v, e)
           | Some _ -> ()));
    apply_sends r;
    commit_round ~active:!active;
    reset_loads ();
    idle := if !msgs_round = 0 && !in_flight = 0 then !idle + 1 else 0
  done;
  shutdown ();
  (match metrics with Some m -> Metrics.add_rounds m !round | None -> ());
  let verdict =
    match (Observe.bounds observe, metrics) with
    | Some b, Some m ->
        Some
          (Bounds.check ?c_rounds:b.Observe.c_rounds ?c_bits:b.Observe.c_bits
             ~bandwidth ~n ~d:b.Observe.d m)
    | _ -> None
  in
  {
    states;
    rounds = !round;
    report =
      {
        messages = !total_msgs;
        bits = !total_bits;
        max_message_bits = !max_msg_bits;
        max_round_edge_bits = !max_burst;
        active_peak = !active_peak;
        verdict;
      };
  }

(* One entry point, four engines: the clean flat-array loop whenever no
   fault plan is installed and one domain suffices — kept bit-identical
   to the pre-fault engine and allocation-free per round — the
   epoch-batched work-stealing loop when [domains > 1] (bit-identical to
   the clean loop by construction), the sequential clocked fault-aware
   loop when a plan is installed, and the sharded clocked loop when a
   plan and [domains > 1] compose. The sharded clocked run is
   deterministic per (seed, domains) but stream-distinct from
   [domains = 1]: fault decisions come from keyed substreams instead of
   the sequential engine's single visit-order stream. [epoch]/[steal]
   only shape the fault-free parallel engine's schedule — elsewhere
   they are ignored. *)
let exec ?(config = Config.default) g proto =
  let { Config.domains; epoch; steal; bandwidth; max_rounds; observe; faults } =
    config
  in
  if domains < 1 then invalid_arg "Network.exec: domains must be at least 1";
  if epoch < 1 then invalid_arg "Network.exec: epoch must be at least 1";
  if steal < 1 then invalid_arg "Network.exec: steal must be at least 1";
  match faults with
  | Some plan ->
      let k = min domains (max 1 (Gr.n g)) in
      if k <= 1 then exec_faulty ~plan ?bandwidth ?max_rounds ~observe g proto
      else
        exec_faulty_par ~plan ~domains:k ?bandwidth ?max_rounds ~observe g
          proto
  | None ->
      let k = min domains (Gr.n g) in
      if k <= 1 then exec_clean ?bandwidth ?max_rounds ~observe g proto
      else
        exec_parallel ~domains:k ~epoch ~steal ?bandwidth ?max_rounds ~observe
          g proto

(* The pre-redesign labelled signature, now a thin shim over [Config]:
   call sites that have not migrated keep compiling with one rename. *)
let exec_opts ?(domains = 1) ?bandwidth ?max_rounds ?(observe = Observe.none)
    ?faults g proto =
  exec
    ~config:
      {
        Config.default with
        domains;
        bandwidth;
        max_rounds;
        observe;
        faults;
      }
    g proto

(* The pre-redesign engine, kept verbatim as the deprecated shim: the
   differential tests run it side by side with [exec] to pin the new
   engine to the old semantics bit for bit. *)
let run ?bandwidth ?max_rounds ?metrics ?trace g proto =
  let n = Gr.n g in
  let bandwidth = match bandwidth with Some b -> b | None -> default_bandwidth g in
  let max_rounds = match max_rounds with Some r -> r | None -> (16 * n) + 64 in
  let base = match metrics with Some m -> Metrics.rounds m | None -> 0 in
  let inits = Array.init n (fun v -> proto.init g v) in
  let states = Array.map fst inits in
  let outboxes = Array.map snd inits in
  let record_message round u v msg =
    if not (Gr.mem_edge g u v) then
      invalid_arg
        (Printf.sprintf "Network.run: node %d sent to non-neighbor %d" u v);
    let bits = proto.msg_bits msg in
    (match metrics with
    | Some m -> Metrics.add_message m ~u ~v ~bits
    | None -> ());
    (match trace with
    | Some tr -> Trace.on_message tr ~round:(base + round) ~src:u ~dst:v ~bits
    | None -> ());
    bits
  in
  let commit_round round ~active outs =
    let per_edge = Hashtbl.create 64 in
    let msgs = ref 0 and bits_total = ref 0 in
    Array.iteri
      (fun u out ->
        List.iter
          (fun (v, msg) ->
            let bits = record_message round u v msg in
            incr msgs;
            bits_total := !bits_total + bits;
            let key = (u, v) in
            let sofar = try Hashtbl.find per_edge key with Not_found -> 0 in
            let now = sofar + bits in
            if now > bandwidth then
              raise (Bandwidth_exceeded { round; u; v; bits = now });
            Hashtbl.replace per_edge key now)
          out)
      outs;
    (match metrics with
    | Some m ->
        Hashtbl.iter
          (fun (u, v) load -> Metrics.note_round_edge m ~u ~v ~bits:load)
          per_edge;
        Metrics.record_round m ~round:(base + round) ~active ~messages:!msgs
          ~bits:!bits_total
    | None -> ());
    match trace with
    | Some tr ->
        Trace.on_round tr ~round:(base + round) ~active ~messages:!msgs
          ~bits:!bits_total
    | None -> ()
  in
  let round = ref 0 in
  let some_sent = ref (Array.exists (fun out -> out <> []) outboxes) in
  if !some_sent then commit_round 0 ~active:n outboxes;
  while !some_sent do
    if !round >= max_rounds then
      failwith "Network.run: no quiescence before max_rounds";
    incr round;
    let inboxes = Array.make n [] in
    Array.iteri
      (fun u out ->
        List.iter (fun (v, msg) -> inboxes.(v) <- (u, msg) :: inboxes.(v)) out)
      outboxes;
    for v = 0 to n - 1 do
      outboxes.(v) <- [];
      if inboxes.(v) <> [] then
        inboxes.(v) <-
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(v))
    done;
    let active = ref 0 in
    for v = 0 to n - 1 do
      if inboxes.(v) <> [] then begin
        incr active;
        let (s, out) = proto.round g v states.(v) inboxes.(v) in
        states.(v) <- s;
        outboxes.(v) <- out
      end
    done;
    some_sent := Array.exists (fun out -> out <> []) outboxes;
    commit_round !round ~active:!active outboxes
  done;
  (match metrics with Some m -> Metrics.add_rounds m !round | None -> ());
  states
