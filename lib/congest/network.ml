type ('s, 'm) protocol = {
  init : Gr.t -> int -> 's * (int * 'm) list;
  round : Gr.t -> int -> 's -> (int * 'm) list -> 's * (int * 'm) list;
  msg_bits : 'm -> int;
}

exception Bandwidth_exceeded of { round : int; u : int; v : int; bits : int }

let default_bandwidth g =
  let n = max 2 (Gr.n g) in
  let rec bits_needed k acc = if k <= 1 then acc else bits_needed (k / 2) (acc + 1) in
  16 * bits_needed (n - 1) 1

let run ?bandwidth ?max_rounds ?metrics ?trace g proto =
  let n = Gr.n g in
  let bandwidth = match bandwidth with Some b -> b | None -> default_bandwidth g in
  let max_rounds = match max_rounds with Some r -> r | None -> (16 * n) + 64 in
  (* Successive runs on the same metrics continue one timeline: rounds
     already accumulated offset this run's round numbers in the round log
     and the trace. *)
  let base = match metrics with Some m -> Metrics.rounds m | None -> 0 in
  let inits = Array.init n (fun v -> proto.init g v) in
  let states = Array.map fst inits in
  let outboxes = Array.map snd inits in
  let record_message round u v msg =
    if not (Gr.mem_edge g u v) then
      invalid_arg
        (Printf.sprintf "Network.run: node %d sent to non-neighbor %d" u v);
    let bits = proto.msg_bits msg in
    (match metrics with
    | Some m -> Metrics.add_message m ~u ~v ~bits
    | None -> ());
    (match trace with
    | Some tr -> Trace.on_message tr ~round:(base + round) ~src:u ~dst:v ~bits
    | None -> ());
    bits
  in
  (* Check the per-directed-edge, per-round bandwidth budget of this
     round's sends, record them, and commit the round's activity record. *)
  let commit_round round ~active outs =
    let per_edge = Hashtbl.create 64 in
    let msgs = ref 0 and bits_total = ref 0 in
    Array.iteri
      (fun u out ->
        List.iter
          (fun (v, msg) ->
            let bits = record_message round u v msg in
            incr msgs;
            bits_total := !bits_total + bits;
            let key = (u, v) in
            let sofar = try Hashtbl.find per_edge key with Not_found -> 0 in
            let now = sofar + bits in
            if now > bandwidth then
              raise (Bandwidth_exceeded { round; u; v; bits = now });
            Hashtbl.replace per_edge key now)
          out)
      outs;
    (match metrics with
    | Some m ->
        Hashtbl.iter
          (fun (u, v) load -> Metrics.note_round_edge m ~u ~v ~bits:load)
          per_edge;
        Metrics.record_round m ~round:(base + round) ~active ~messages:!msgs
          ~bits:!bits_total
    | None -> ());
    match trace with
    | Some tr ->
        Trace.on_round tr ~round:(base + round) ~active ~messages:!msgs
          ~bits:!bits_total
    | None -> ()
  in
  let round = ref 0 in
  let some_sent = ref (Array.exists (fun out -> out <> []) outboxes) in
  (* Round 0's spontaneous sends are checked and counted too; every node
     ran its init, so all n nodes are active. *)
  if !some_sent then commit_round 0 ~active:n outboxes;
  while !some_sent do
    if !round >= max_rounds then
      failwith "Network.run: no quiescence before max_rounds";
    incr round;
    (* Deliver: inbox of v = messages addressed to v last round, sorted by
       sender id (ascending); a sender's own messages keep their outbox
       order. The sort makes delivery order a guarantee of the model
       rather than an accident of the engine's loop direction. *)
    let inboxes = Array.make n [] in
    Array.iteri
      (fun u out ->
        List.iter (fun (v, msg) -> inboxes.(v) <- (u, msg) :: inboxes.(v)) out)
      outboxes;
    for v = 0 to n - 1 do
      outboxes.(v) <- [];
      if inboxes.(v) <> [] then
        inboxes.(v) <-
          List.stable_sort
            (fun (a, _) (b, _) -> compare a b)
            (List.rev inboxes.(v))
    done;
    let active = ref 0 in
    for v = 0 to n - 1 do
      if inboxes.(v) <> [] then begin
        incr active;
        let (s, out) = proto.round g v states.(v) inboxes.(v) in
        states.(v) <- s;
        outboxes.(v) <- out
      end
    done;
    some_sent := Array.exists (fun out -> out <> []) outboxes;
    commit_round !round ~active:!active outboxes
  done;
  (match metrics with Some m -> Metrics.add_rounds m !round | None -> ());
  states
