type bounds = { d : int; c_rounds : int option; c_bits : int option }

type t = {
  metrics : Metrics.t option;
  trace : Trace.t option;
  bounds : bounds option;
}

let none = { metrics = None; trace = None; bounds = None }
let make ?metrics ?trace ?bounds () = { metrics; trace; bounds }
let of_metrics m = make ~metrics:m ()
let of_trace tr = make ~trace:tr ()
let bounds_spec ?c_rounds ?c_bits ~d () = { d; c_rounds; c_bits }
let metrics t = t.metrics
let trace t = t.trace
let bounds t = t.bounds
let sinks t = make ?metrics:t.metrics ?trace:t.trace ()
