(** Real message-passing protocols run on the {!Network} engine.

    These implement the paper's "preliminaries" phase (Section 2): from
    nothing but their own id and their neighbors' ids, the nodes elect the
    maximum-id vertex as the root [s*], build a BFS tree rooted there, and
    aggregate values (e.g. the node count [n]) over it. Each is checked
    against its centralized counterpart in the test suite.

    All entry points take one [?config] ({!Network.Config.t}, default
    {!Network.Config.default}) carrying every engine knob — observation
    sinks, bandwidth, domain count, epoch width, fault plan — and
    forward it to {!Network.exec}. Build it with the [with_*] pipeline
    or [Network.Config.make].

    A config with a fault plan runs the protocol {!Reliable}-wrapped on
    the fault-aware engine, so the primitive computes the same result
    over lossy, reordering, crash-restarting links — at the price of
    acknowledgement traffic, retransmission rounds and the plan's
    quiescence grace period. Without a plan, execution is the clean (or,
    at [domains > 1], the parallel) engine, bit-identical to the
    sequential behavior. As at the engine level, [domains > 1] cannot
    be combined with a fault plan — [Invalid_argument] is raised rather
    than silently degrading. *)

type bfs_state = {
  leader : int;  (** maximum id in the network. *)
  dist : int;  (** hop distance to the leader. *)
  parent : int;  (** BFS parent ([leader]'s parent is itself). *)
}
(** What every node knows when {!leader_bfs} quiesces. *)

val leader_bfs : ?config:Network.Config.t -> Gr.t -> bfs_state array
(** Flood the maximum id while relaxing distances: quiesces in [O(D)]
    rounds with every node knowing the leader, its BFS distance and a BFS
    parent. The network must be connected and non-empty. *)

val convergecast :
  ?config:Network.Config.t ->
  Gr.t ->
  parent:int array ->
  root:int ->
  values:int array ->
  op:(int -> int -> int) ->
  value_bits:int ->
  int
(** Aggregate [values] with the associative-commutative [op] up the given
    tree (leaves start; every node forwards the fold of its subtree):
    returns the root's total after [depth] rounds. *)

val subtree_sizes :
  ?config:Network.Config.t ->
  Gr.t ->
  parent:int array ->
  root:int ->
  int array
(** Every node learns the size of its own subtree of the given tree (the
    primitive behind the splitter search of Section 4): a convergecast in
    which each node retains its accumulated count. Takes [depth] rounds. *)

val broadcast :
  ?config:Network.Config.t ->
  Gr.t ->
  parent:int array ->
  root:int ->
  value:int ->
  value_bits:int ->
  int array
(** Push [value] from the root down the tree; returns each node's received
    copy. *)
