(** The unified observation sink of a CONGEST run.

    Everything the engine can report about an execution is requested
    through one value: a {!Metrics.t} accumulator for the quantitative
    record (rounds, per-edge loads, bursts), a {!Trace.t} journal for
    the event timeline, and an optional {!Bounds} specification that
    makes the run check itself against Theorem 1.1's inequalities and
    return the verdict in its report. {!Network.exec} fans each recorded
    event out to whichever sinks are present; an {!none} observer makes
    the engine run at full speed with only its own flat counters.

    The same value is accepted by the higher layers ({!Proto}, the
    embedder), so one observer threads a whole pipeline onto a single
    metrics timeline and trace journal — this replaces the pre-redesign
    pattern of separate [?metrics]/[?trace] optional arguments on every
    entry point. *)

type t
(** A bundle of observation requests: zero or one of each sink kind. *)

type bounds = {
  d : int;  (** the network diameter the caller measured or knows. *)
  c_rounds : int option;  (** round-bound constant; [None] = default. *)
  c_bits : int option;  (** message-bits constant; [None] = default. *)
}
(** A self-check request: the inputs {!Bounds.check} needs beyond what
    the run itself provides. Build one with {!bounds_spec}. *)

val none : t
(** Observe nothing: the engine keeps only the flat counters of its own
    {!Network.report}. *)

val make : ?metrics:Metrics.t -> ?trace:Trace.t -> ?bounds:bounds -> unit -> t
(** Compose an observer from the sinks given; omitted arguments mean
    "don't record that". [make ()] is {!none}. *)

val of_metrics : Metrics.t -> t
(** Shorthand for [make ~metrics ()]. *)

val of_trace : Trace.t -> t
(** Shorthand for [make ~trace ()]. *)

val bounds_spec : ?c_rounds:int -> ?c_bits:int -> d:int -> unit -> bounds
(** A bounds request: after the run, {!Network.exec} evaluates
    {!Bounds.check} (with the run's actual bandwidth) and stores the
    verdict in the result's report. If no metrics sink was given, the
    engine accumulates into a private one so the verdict is still
    computable. *)

val metrics : t -> Metrics.t option
(** The metrics sink, if one was requested. *)

val trace : t -> Trace.t option
(** The trace journal, if one was requested. *)

val bounds : t -> bounds option
(** The bounds request, if one was made. *)

val sinks : t -> t
(** The observer with any bounds request dropped — for layers (e.g. the
    embedder) that thread the metrics/trace sinks through many protocol
    runs and check bounds once, post-hoc, on the combined timeline. *)
