(** A fixed pool of domains for embarrassingly parallel run sweeps.

    This is Tier B of the multicore layer: where {!Network.exec}'s
    [?domains] parallelizes {e inside} one simulation, [Pool.map]
    parallelizes {e across} independent simulations — bench matrices,
    chaos seed sweeps, property-test family sweeps. Scheduling is
    chunked and static, so the assignment of tasks to domains depends
    only on [(jobs, n)] — never on timing — and results always come
    back in task order. Parallelism changes wall-clock time and nothing
    else.

    Tasks must be independent: they run concurrently on separate
    domains, so any shared mutable state (a common [Metrics.t] sink, a
    global [Random] state) is a race. Everything in this library is safe
    to use from pool tasks as long as each task builds its own sinks,
    graphs and fault plans. *)

exception Task_failed of { index : int; exn : exn }
(** A task raised: [index] is the task's position in [0 .. n-1] and
    [exn] the exception it raised. When several tasks fail in one sweep,
    the {e lowest} index is reported — the failure a sequential
    left-to-right sweep would have hit first, independent of timing. *)

val default_jobs : unit -> int
(** What the hardware offers: [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] computes [[| f 0; ...; f (n-1) |]], running tasks on
    up to [jobs] domains (default {!default_jobs}; values [<= 1] run
    sequentially in the calling domain, as do sweeps with [n <= 1]).
    Tasks are dealt to domains in contiguous chunks of [ceil(n / jobs)].

    Nested use is rejected: a task that itself calls [map] gets
    [Invalid_argument] (wrapped in {!Task_failed} like any other task
    error) — domains would multiply quadratically otherwise. Combining
    pool tasks with [Network.exec ?domains:k] for [k > 1] is the same
    mistake one level down and is also on the caller to avoid.
    @raise Task_failed re-raising the lowest-index task failure.
    @raise Invalid_argument if [n < 0]. *)
