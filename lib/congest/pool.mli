(** Domain pools for the multicore layer.

    Two shapes of parallelism live here:

    - {!map} is Tier B: embarrassingly parallel run sweeps — bench
      matrices, chaos seed sweeps, property-test family sweeps — with
      chunked {e static} scheduling, so the assignment of tasks to
      domains depends only on [(jobs, n)], never on timing.
    - {!t} is the engine tier: a {e persistent} pool with one shared
      task queue, built for {!Network.exec}'s round loop, which
      dispatches thousands of small parallel sections per run. Workers
      stay spawned across calls to {!run} and claim task indices
      dynamically (work stealing), so an imbalanced task list cannot
      serialize on the slowest statically-assigned worker. Determinism
      is preserved by construction on the caller's side: tasks write to
      task-indexed buffers and the caller merges them in index order
      after {!run} returns, which makes the executing domain
      unobservable.

    Tasks must be independent: they run concurrently on separate
    domains, so any shared mutable state (a common [Metrics.t] sink, a
    global [Random] state) is a race unless the tasks partition it.
    Everything in this library is safe to use from pool tasks as long
    as each task builds its own sinks, graphs and fault plans. *)

exception Task_failed of { index : int; exn : exn }
(** A task raised: [index] is the task's position in [0 .. n-1] and
    [exn] the exception it raised. When several tasks fail in one sweep,
    the {e lowest} index is reported — the failure a sequential
    left-to-right sweep would have hit first, independent of timing. *)

val default_jobs : unit -> int
(** What the hardware offers: [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] computes [[| f 0; ...; f (n-1) |]], running tasks on
    up to [jobs] domains (default {!default_jobs}; values [<= 1] run
    sequentially in the calling domain, as do sweeps with [n <= 1]).
    [jobs] is capped at {!default_jobs} — oversubscribing a host
    multiplies per-domain GC work while the cores time-slice, so a
    [--jobs 4] sweep on a 1-core container runs sequentially instead of
    3.5x slower. Results are identical at every jobs value; only wall
    time changes. Tasks are dealt to domains in contiguous chunks of
    [ceil(n / jobs)].

    Nested use is rejected: a task that itself calls [map] gets
    [Invalid_argument] (wrapped in {!Task_failed} like any other task
    error) — domains would multiply quadratically otherwise. Combining
    pool tasks with [Network.exec] at more than one domain is the same
    mistake one level down and is also on the caller to avoid.
    @raise Task_failed re-raising the lowest-index task failure.
    @raise Invalid_argument if [n < 0]. *)

(** {1 Persistent pools} *)

type t
(** A persistent pool of domains: [domains - 1] spawned workers plus the
    calling domain, which participates in every {!run}. Workers spin
    briefly then park between calls, so a hot round loop pays a few
    atomic operations per dispatch while an idle or single-core host
    degrades to ordinary blocking. *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [domains] parties total
    (default {!default_jobs}). The calling domain is one of them, so
    [domains = 1] spawns nothing and {!run} executes inline.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** Number of parties (domains) in the pool, counting the caller. *)

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] executes [f 0 .. f (tasks - 1)], claiming task
    indices dynamically from a shared counter across all parties, and
    returns only when {e every} party has finished — a full barrier, so
    all task effects are visible to the caller (and to every party on
    the next [run]) when it returns. [f] must not call back into the
    same pool. If tasks raise, the lowest failing index is re-raised as
    {!Task_failed} after the barrier; the other tasks still ran.
    @raise Invalid_argument if [tasks < 0] or the pool is shut down. *)

val shutdown : t -> unit
(** Stop and join the workers. Idempotent. Calling {!run} afterwards is
    an error. *)
