type 'm packet = Data of { seq : int; payload : 'm } | Ack of { upto : int }

(* One link's channel state, both directions. Mutable records owned by
   exactly one node: the engine hands a node its own state back each
   round, so in-place mutation is safe and keeps the wrapper simple. *)
type 'm chan = {
  peer : int;
  (* sender side *)
  mutable next_seq : int;
  mutable unacked : (int * 'm) list;  (* ascending seq *)
  mutable ticks : int;  (* rounds since the oldest unacked was (re)sent *)
  (* receiver side *)
  mutable expected : int;  (* next in-order seq *)
  mutable buffered : (int * 'm) list;  (* ascending seq, all > expected *)
  mutable ack_due : bool;
}

type ('s, 'm) state = { mutable inner : 's; chans : 'm chan array }

let inner_state st = st.inner

type counters = {
  mutable retransmits : int;
  mutable dup_discards : int;
  mutable out_of_order : int;
}

let counters () = { retransmits = 0; dup_discards = 0; out_of_order = 0 }

(* 32 bits of sequence number + 2 of tag: constant, documented, and far
   from wrapping in any simulated run. *)
let header_bits = 34

let wrap ?(timeout = 6) ?stats (p : ('s, 'm) Network.protocol) :
    (('s, 'm) state, 'm packet) Network.protocol =
  if timeout < 2 then invalid_arg "Reliable.wrap: timeout must be >= 2";
  let count f = match stats with Some c -> f c | None -> () in
  let chan_of v st =
    (* Degrees are small in CONGEST practice; a linear probe beats
       carrying a per-node index structure through the state. *)
    let rec find i =
      if i >= Array.length st.chans then
        invalid_arg
          (Printf.sprintf "Reliable: node has no link to %d" v)
      else if st.chans.(i).peer = v then st.chans.(i)
      else find (i + 1)
    in
    find 0
  in
  (* Assign sequence numbers in outbox order and emit the data packets;
     per-link FIFO is exactly what the receiver reconstructs. *)
  let post st outs =
    List.map
      (fun (w, m) ->
        let ch = chan_of w st in
        let s = ch.next_seq in
        ch.next_seq <- s + 1;
        if ch.unacked = [] then ch.ticks <- 0;
        ch.unacked <- ch.unacked @ [ (s, m) ];
        (w, Data { seq = s; payload = m }))
      outs
  in
  let init g v =
    let (s0, out0) = p.init g v in
    let peers =
      List.rev (Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> w :: acc))
    in
    let chans =
      Array.of_list
        (List.map
           (fun w ->
             {
               peer = w;
               next_seq = 0;
               unacked = [];
               ticks = 0;
               expected = 0;
               buffered = [];
               ack_due = false;
             })
           peers)
    in
    let st = { inner = s0; chans } in
    (st, post st out0)
  in
  let round g v st inbox =
    (* 1. Sort arrivals into the channels. Arrival order within the
       inbox is irrelevant — sequence numbers carry the order — which is
       precisely why the wrapper is immune to adversarial delivery. *)
    let delivered = Array.map (fun _ -> ref []) st.chans in
    let deliver_from idx ch =
      (* Drain the in-order prefix newly available on this channel. *)
      let rec drain () =
        match ch.buffered with
        | (s, m) :: rest when s = ch.expected ->
            ch.buffered <- rest;
            ch.expected <- s + 1;
            (delivered.(idx) : 'm list ref) := m :: !(delivered.(idx));
            drain ()
        | _ -> ()
      in
      drain ()
    in
    let chan_index u =
      let rec find i =
        if i >= Array.length st.chans then
          invalid_arg (Printf.sprintf "Reliable: packet from non-link %d" u)
        else if st.chans.(i).peer = u then i
        else find (i + 1)
      in
      find 0
    in
    List.iter
      (fun (u, pkt) ->
        let i = chan_index u in
        let ch = st.chans.(i) in
        match pkt with
        | Ack { upto } ->
            let before = ch.unacked in
            ch.unacked <- List.filter (fun (s, _) -> s > upto) before;
            (* Progress restarts the retransmission clock. *)
            if ch.unacked != before then ch.ticks <- 0
        | Data { seq; payload } ->
            ch.ack_due <- true;
            if seq < ch.expected then count (fun c ->
                c.dup_discards <- c.dup_discards + 1)
            else if seq = ch.expected then begin
              ch.expected <- seq + 1;
              (delivered.(i) : 'm list ref) := payload :: !(delivered.(i));
              deliver_from i ch
            end
            else begin
              (* Ahead of the expected seq: buffer once. *)
              if List.mem_assoc seq ch.buffered then
                count (fun c -> c.dup_discards <- c.dup_discards + 1)
              else begin
                count (fun c -> c.out_of_order <- c.out_of_order + 1);
                let rec insert = function
                  | [] -> [ (seq, payload) ]
                  | (s, _) :: _ as l when seq < s -> (seq, payload) :: l
                  | kv :: rest -> kv :: insert rest
                in
                ch.buffered <- insert ch.buffered
              end
            end)
      inbox;
    (* 2. Hand the inner protocol its newly deliverable messages, in the
       documented order: ascending sender id (channel arrays are built
       from the sorted neighbor slice), per-sender sequence order. *)
    let inner_inbox =
      Array.to_list st.chans
      |> List.mapi (fun i ch ->
             List.rev_map (fun m -> (ch.peer, m)) !(delivered.(i)))
      |> List.concat
    in
    let outs =
      if inner_inbox = [] then []
      else begin
        let (s', outs) = p.round g v st.inner inner_inbox in
        st.inner <- s';
        outs
      end
    in
    let data = post st outs in
    (* 3. Retransmission timers: the engine steps every live node every
       round under a fault plan, so [ticks] is a real clock. Only the
       oldest unacknowledged packet per link is retransmitted —
       cumulative acks make anything the receiver already buffered
       collapse the moment the gap closes. *)
    let retrans = ref [] in
    Array.iter
      (fun ch ->
        if ch.unacked <> [] then begin
          ch.ticks <- ch.ticks + 1;
          if ch.ticks >= timeout then begin
            let (s, m) = List.hd ch.unacked in
            count (fun c -> c.retransmits <- c.retransmits + 1);
            ch.ticks <- 0;
            retrans := (ch.peer, Data { seq = s; payload = m }) :: !retrans
          end
        end)
      st.chans;
    (* 4. One cumulative ack per link that received data this round. *)
    let acks = ref [] in
    Array.iter
      (fun ch ->
        if ch.ack_due then begin
          ch.ack_due <- false;
          acks := (ch.peer, Ack { upto = ch.expected - 1 }) :: !acks
        end)
      st.chans;
    (st, data @ List.rev !retrans @ List.rev !acks)
  in
  let msg_bits = function
    | Data { payload; _ } -> header_bits + p.msg_bits payload
    | Ack _ -> header_bits
  in
  { Network.init; round; msg_bits }

let exec ?domains ?bandwidth ?max_rounds ?observe ?faults ?timeout ?stats g p =
  let base =
    match bandwidth with Some b -> b | None -> Network.default_bandwidth g
  in
  let wrapped = wrap ?timeout ?stats p in
  let config =
    Network.Config.make ?domains
      ~bandwidth:((3 * base) + 128)
      ?max_rounds ?observe ?faults ()
  in
  let r = Network.exec ~config g wrapped in
  {
    Network.states = Array.map inner_state r.Network.states;
    rounds = r.Network.rounds;
    report = r.Network.report;
  }
