(** Checking a run against the paper's quantitative claims.

    Theorem 1.1: a planar embedding is computed in [O(D·min{log n, D})]
    CONGEST rounds with [O(log n)]-bit messages. Given the measured
    {!Metrics.t} of a run plus [n] and the diameter [D], this module
    evaluates the concrete inequalities

    - [rounds <= c_rounds · (D+1) · min(⌈log₂ n⌉, D+1)],
    - every single message carries at most [c_bits · ⌈log₂ n⌉] bits,
    - no directed edge carries more than [bandwidth] bits in one round,

    and reports the observed constants, so experiments and regression
    tests can assert the {e shape} of the theorem rather than eyeball
    tables. The default constants are deliberately generous (the
    reproduction targets asymptotics, not the paper's hidden constants);
    tests pin tighter ones per family. *)

type verdict = {
  n : int;
  d : int;  (** the diameter the caller measured or knows by construction. *)
  word : int;  (** [⌈log₂ n⌉]. *)
  bandwidth : int;
  rounds : int;
  round_bound : int;
  round_constant : float;
      (** observed [rounds / ((D+1)·min(⌈log₂ n⌉, D+1))]. *)
  rounds_ok : bool;
  max_message_bits : int;
  message_bound : int;
  message_constant : float;  (** observed [max_message_bits / ⌈log₂ n⌉]. *)
  message_ok : bool;
  max_round_edge_bits : int;
  burst_ok : bool;  (** [max_round_edge_bits <= bandwidth]. *)
}
(** One evaluated bound check: the three inequalities with the measured
    quantities, the bounds they were held against, and the observed
    constants. *)

val word_bits : int -> int
(** [⌈log₂ n⌉] (at least 1). *)

val round_bound : ?c:int -> n:int -> d:int -> unit -> int
(** [c · (d+1) · min(word_bits n, d+1)]; [c] defaults to 32. *)

val check :
  ?c_rounds:int ->
  ?c_bits:int ->
  ?bandwidth:int ->
  n:int ->
  d:int ->
  Metrics.t ->
  verdict
(** Evaluate the three inequalities on the metrics of a finished run.
    [c_rounds] defaults to 32; [c_bits] to 16 (the per-message budget is
    then exactly {!Network.default_bandwidth}); [bandwidth] to
    [16 · word_bits n]. *)

val ok : verdict -> bool
(** All three inequalities hold. *)

val pp : Format.formatter -> verdict -> unit
(** Human-readable rendering of a verdict, one inequality per line. *)

val assert_ok : verdict -> unit
(** @raise Failure with the pretty-printed verdict if any bound fails. *)
