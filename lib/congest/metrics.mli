(** Communication metrics of a CONGEST execution (real or cost-charged):
    rounds, message count, total bits, per-edge and per-directed-edge bit
    loads, the largest single message, and a per-round activity
    histogram.

    The per-edge tallies are the data behind experiment E7 ("no pair of
    adjacent nodes needs to exchange more than [Õ(D)] bits", Section 1.2
    of the paper); the per-round log and the per-directed-edge bursts are
    what the {!Trace} journal and the {!Bounds} checker consume.

    Two layers feed a [t]:
    - {!Network.run} records every real message with its direction
      ({!add_message}), the per-round totals ({!record_round}) and the
      per-edge-per-round bursts ({!note_round_edge});
    - {!Costmodel} records charged (pipelined) shipments via
      {!add_dir_bits} / {!add_edge_bits_by_index} — those are spread over
      many rounds by construction, so they contribute to totals but not
      to single-round bursts or the round log. *)

type round_record = {
  round : int;  (** position on the run's unified round timeline. *)
  active : int;  (** nodes that computed in this round. *)
  messages : int;  (** messages sent in this round. *)
  bits : int;  (** total bits of those messages. *)
}
(** One round's activity summary, as recorded by {!record_round}. *)

type t
(** A mutable metrics accumulator. *)

val create : Gr.t -> t
(** A fresh, all-zero accumulator for runs on the given graph. *)

val graph : t -> Gr.t
(** The graph the accumulator was created for. *)

val rounds : t -> int
(** Rounds accumulated so far (real and cost-charged). *)

val messages : t -> int
(** Real messages recorded so far. *)

val total_bits : t -> int
(** Total bits recorded so far (real messages plus charged shipments). *)

val max_edge_bits : t -> int
(** The largest number of bits exchanged over any single edge. *)

val edge_bits : t -> int -> int
(** Bits exchanged over the edge with the given dense index (both
    directions combined). *)

val max_message_bits : t -> int
(** The largest single message recorded by a real protocol run — the
    paper's [O(log n)] per-message budget is asserted against this. *)

val max_round_edge_bits : t -> int
(** The largest number of bits pushed through one directed edge in one
    real round (the CONGEST bandwidth is asserted against this). *)

val active_peak : t -> int
(** The most nodes active in any recorded round. *)

val round_log : t -> round_record list
(** The per-round activity records, in chronological order. Rounds of
    successive protocol runs on the same metrics continue the same
    timeline (they are offset by the rounds already accumulated). *)

val iter_dir :
  t ->
  (src:int -> dst:int -> bits:int -> messages:int -> burst:int -> unit) ->
  unit
(** Iterate over the directed edges that carried traffic: total [bits],
    message count and the largest single-round [burst] of the direction
    [src -> dst]. *)

val add_rounds : t -> int -> unit
(** Advance the round count by the given number of (real or charged)
    rounds. *)

val add_message : t -> u:int -> v:int -> bits:int -> unit
(** Record one real message of [bits] bits sent from [u] to [v].
    @raise Not_found if the edge does not exist. *)

val add_message_at : t -> dir:int -> bits:int -> unit
(** {!add_message} by precomputed directed slot [dir = 2·e + s] where [e]
    is the dense undirected edge index and [s] is [0] for the
    min-id → max-id direction, [1] otherwise. The flat-array engine
    derives [dir] from the dart tables in O(1) instead of re-resolving
    the edge per message. *)

val add_edge_bits_by_index : t -> int -> int -> unit
(** Low-level variant used by the cost model when the direction is
    unknown: adds to the undirected tallies only. *)

val add_dir_bits : t -> u:int -> v:int -> bits:int -> unit
(** Charge [bits] shipped from [u] to [v] (cost-model layer: updates the
    directed and undirected totals, but neither message counts nor
    bursts — charged shipments are pipelined over many rounds). *)

val record_round : t -> round:int -> active:int -> messages:int -> bits:int -> unit
(** Append one per-round activity record ({!Network.run} calls this for
    every executed round). *)

val note_round_edge : t -> u:int -> v:int -> bits:int -> unit
(** Record that the directed edge [u -> v] carried [bits] bits within a
    single round (feeds the burst maxima). *)

val note_round_edge_at : t -> dir:int -> bits:int -> unit
(** {!note_round_edge} by precomputed directed slot (see
    {!add_message_at}). *)

val phase : t -> string -> int -> unit
(** Record that a named phase consumed the given number of rounds (the
    rounds themselves must be added separately via {!add_rounds} — phases
    are an annotation for reporting). *)

val phases : t -> (string * int) list
(** Accumulated per-phase rounds, in execution order. *)

val note_fault : t -> kind:string -> unit
(** Count one injected fault of the given kind (the fault-aware engine
    calls this; the kind vocabulary is documented at
    {!Trace.type-event}). *)

val faults : t -> (string * int) list
(** Per-kind injected-fault counts, in order of first appearance —
    empty for a clean run. *)

val merge_into : dst:t -> src:t -> unit
(** Fold [src]'s counters into [dst] (same underlying graph required):
    rounds add up, edge loads add up, bursts and message maxima combine
    by max, round logs concatenate. Used to combine the real simulator
    runs of phase 1 with the cost-charged recursion phases. *)

val pp : Format.formatter -> t -> unit
(** Human-readable summary: rounds, messages, bits, maxima, per-phase
    rounds and fault counts (when any were injected). *)
