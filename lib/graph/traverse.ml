type bfs_tree = {
  root : int;
  parent : int array;
  dist : int array;
  order : int array;
}

let bfs g root =
  let n = Gr.n g in
  let parent = Array.make n (-1) in
  let dist = Array.make n (-1) in
  let order = Array.make n (-1) in
  let queue = Queue.create () in
  parent.(root) <- root;
  dist.(root) <- 0;
  Queue.add root queue;
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    Gr.iter_neighbors g v (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(v) + 1;
          parent.(w) <- v;
          Queue.add w queue
        end)
  done;
  let order = Array.sub order 0 !filled in
  { root; parent; dist; order }

let children t =
  let n = Array.length t.parent in
  let kids = Array.make n [] in
  for v = n - 1 downto 0 do
    if v <> t.root && t.parent.(v) >= 0 then
      kids.(t.parent.(v)) <- v :: kids.(t.parent.(v))
  done;
  kids

let depth t = Array.fold_left max 0 t.dist

let subtree_sizes _g t =
  let n = Array.length t.parent in
  let size = Array.make n 0 in
  (* Visit in reverse BFS order: children before parents. *)
  for i = Array.length t.order - 1 downto 0 do
    let v = t.order.(i) in
    size.(v) <- size.(v) + 1;
    if v <> t.root then size.(t.parent.(v)) <- size.(t.parent.(v)) + size.(v)
  done;
  size

let distances g source = (bfs g source).dist

let is_connected g =
  Gr.n g = 0 || Array.length (bfs g 0).order = Gr.n g

let components g =
  let n = Gr.n g in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let t = bfs g v in
      let comp = Array.to_list t.order in
      List.iter (fun w -> seen.(w) <- true) comp;
      comps := comp :: !comps
    end
  done;
  List.rev !comps

let eccentricity g v =
  let d = distances g v in
  Array.fold_left
    (fun acc x ->
      if x < 0 then invalid_arg "Traverse.eccentricity: disconnected graph"
      else max acc x)
    0 d

let diameter g =
  if not (is_connected g) then invalid_arg "Traverse.diameter: disconnected graph";
  Gr.fold_vertices g ~init:0 ~f:(fun acc v -> max acc (eccentricity g v))

type dfs_tree = {
  dfs_root : int;
  dfs_parent : int array;
  preorder : int array;
  pre_index : int array;
}

let dfs g root =
  let n = Gr.n g in
  let dfs_parent = Array.make n (-1) in
  let pre_index = Array.make n (-1) in
  let preorder = Array.make n (-1) in
  let filled = ref 0 in
  let visit v parent =
    dfs_parent.(v) <- parent;
    pre_index.(v) <- !filled;
    preorder.(!filled) <- v;
    incr filled
  in
  visit root root;
  let stack = Stack.create () in
  Stack.push (root, ref 0) stack;
  while not (Stack.is_empty stack) do
    let (v, next) = Stack.top stack in
    let nbrs = Gr.neighbors g v in
    if !next < Array.length nbrs then begin
      let w = nbrs.(!next) in
      incr next;
      if pre_index.(w) < 0 then begin
        visit w v;
        Stack.push (w, ref 0) stack
      end
    end
    else ignore (Stack.pop stack)
  done;
  { dfs_root = root; dfs_parent; preorder = Array.sub preorder 0 !filled; pre_index }

let tree_path t v =
  if v < 0 || v >= Array.length t.parent || t.dist.(v) < 0 then
    invalid_arg "Traverse.tree_path: vertex not reached";
  let rec up v acc = if v = t.root then v :: acc else up t.parent.(v) (v :: acc) in
  up v []
