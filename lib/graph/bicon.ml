type t = {
  g : Gr.t;
  n_components : int;
  comp_of_edge : int array;
  comp_edge_offsets : int array;
  comp_edge_list : int array;
  comp_vertex_offsets : int array;
  comp_vertex_list : int array;
  vertex_comp_offsets : int array;
  vertex_comp_list : int array;
  is_cut : bool array;
}

(* Iterative Tarjan lowpoint algorithm with an explicit edge stack. Each
   DFS frame records the vertex, its DFS parent and the index of the next
   neighbor to examine, so deep graphs never overflow the OCaml stack. *)
let decompose g =
  let n = Gr.n g in
  let m = Gr.m g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let is_cut = Array.make n false in
  let comp_of_edge = Array.make m (-1) in
  let n_components = ref 0 in
  let time = ref 0 in
  let edge_stack = Stack.create () in
  let pop_component u w =
    (* Pop edges down to and including (u, w); they form one component. *)
    let continue = ref true in
    while !continue do
      let (a, b) = Stack.pop edge_stack in
      comp_of_edge.(Gr.edge_index g a b) <- !n_components;
      if (a, b) = Gr.normalize_edge u w then continue := false
    done;
    incr n_components
  in
  for start = 0 to n - 1 do
    if disc.(start) < 0 then begin
      let root_children = ref 0 in
      (* Frame: (vertex, dfs parent, mutable next-neighbor index). *)
      let frames = Stack.create () in
      disc.(start) <- !time;
      low.(start) <- !time;
      incr time;
      Stack.push (start, -1, ref 0) frames;
      while not (Stack.is_empty frames) do
        let (u, parent, next) = Stack.top frames in
        let nbrs = Gr.neighbors g u in
        if !next < Array.length nbrs then begin
          let w = nbrs.(!next) in
          incr next;
          if disc.(w) < 0 then begin
            Stack.push (Gr.normalize_edge u w) edge_stack;
            if u = start then incr root_children;
            disc.(w) <- !time;
            low.(w) <- !time;
            incr time;
            Stack.push (w, u, ref 0) frames
          end
          else if w <> parent && disc.(w) < disc.(u) then begin
            Stack.push (Gr.normalize_edge u w) edge_stack;
            if disc.(w) < low.(u) then low.(u) <- disc.(w)
          end
        end
        else begin
          ignore (Stack.pop frames);
          if parent >= 0 then begin
            if low.(u) < low.(parent) then low.(parent) <- low.(u);
            if low.(u) >= disc.(parent) then begin
              if parent <> start then is_cut.(parent) <- true;
              pop_component parent u
            end
          end
        end
      done;
      if !root_children >= 2 then is_cut.(start) <- true
    end
  done;
  let k = !n_components in
  (* Flat CSR membership: counting sort of the edges by component id. *)
  let comp_edge_offsets = Array.make (k + 1) 0 in
  Array.iter
    (fun c -> comp_edge_offsets.(c + 1) <- comp_edge_offsets.(c + 1) + 1)
    comp_of_edge;
  for c = 1 to k do
    comp_edge_offsets.(c) <- comp_edge_offsets.(c) + comp_edge_offsets.(c - 1)
  done;
  let comp_edge_list = Array.make m (-1) in
  let fill = Array.copy comp_edge_offsets in
  for e = 0 to m - 1 do
    let c = comp_of_edge.(e) in
    comp_edge_list.(fill.(c)) <- e;
    fill.(c) <- fill.(c) + 1
  done;
  (* Vertex -> components, duplicate-free, via a last-seen-vertex stamp
     per component (each edge is scanned from both endpoints). *)
  let stamp = Array.make (max 1 k) (-1) in
  let vertex_comp_offsets = Array.make (n + 1) 0 in
  let count_by_vertex pass_list =
    Array.fill stamp 0 (max 1 k) (-1);
    for v = 0 to n - 1 do
      Gr.iter_neighbors g v (fun u ->
          let c = comp_of_edge.(Gr.edge_index g v u) in
          if stamp.(c) <> v then begin
            stamp.(c) <- v;
            match pass_list with
            | None ->
                vertex_comp_offsets.(v + 1) <- vertex_comp_offsets.(v + 1) + 1
            | Some (fill, list) ->
                list.(fill.(v)) <- c;
                fill.(v) <- fill.(v) + 1
          end)
    done
  in
  count_by_vertex None;
  for v = 1 to n do
    vertex_comp_offsets.(v) <- vertex_comp_offsets.(v) + vertex_comp_offsets.(v - 1)
  done;
  let vertex_comp_list = Array.make vertex_comp_offsets.(n) (-1) in
  let vfill = Array.copy vertex_comp_offsets in
  count_by_vertex (Some (vfill, vertex_comp_list));
  (* Component -> vertices: invert the vertex -> component table. *)
  let comp_vertex_offsets = Array.make (k + 1) 0 in
  Array.iter
    (fun c -> comp_vertex_offsets.(c + 1) <- comp_vertex_offsets.(c + 1) + 1)
    vertex_comp_list;
  for c = 1 to k do
    comp_vertex_offsets.(c) <- comp_vertex_offsets.(c) + comp_vertex_offsets.(c - 1)
  done;
  let comp_vertex_list = Array.make vertex_comp_offsets.(n) (-1) in
  let cfill = Array.copy comp_vertex_offsets in
  for v = 0 to n - 1 do
    for i = vertex_comp_offsets.(v) to vertex_comp_offsets.(v + 1) - 1 do
      let c = vertex_comp_list.(i) in
      comp_vertex_list.(cfill.(c)) <- v;
      cfill.(c) <- cfill.(c) + 1
    done
  done;
  {
    g;
    n_components = k;
    comp_of_edge;
    comp_edge_offsets;
    comp_edge_list;
    comp_vertex_offsets;
    comp_vertex_list;
    vertex_comp_offsets;
    vertex_comp_list;
    is_cut;
  }

let n_component_edges t c = t.comp_edge_offsets.(c + 1) - t.comp_edge_offsets.(c)

let iter_component_edges t c f =
  for i = t.comp_edge_offsets.(c) to t.comp_edge_offsets.(c + 1) - 1 do
    f t.comp_edge_list.(i)
  done

let component_edges t c =
  let out = ref [] in
  for i = t.comp_edge_offsets.(c + 1) - 1 downto t.comp_edge_offsets.(c) do
    out := Gr.edge_of_index t.g t.comp_edge_list.(i) :: !out
  done;
  !out

let iter_component_vertices t c f =
  for i = t.comp_vertex_offsets.(c) to t.comp_vertex_offsets.(c + 1) - 1 do
    f t.comp_vertex_list.(i)
  done

let component_vertices t c =
  let out = ref [] in
  for i = t.comp_vertex_offsets.(c + 1) - 1 downto t.comp_vertex_offsets.(c) do
    out := t.comp_vertex_list.(i) :: !out
  done;
  !out

let n_comps_of_vertex t v = t.vertex_comp_offsets.(v + 1) - t.vertex_comp_offsets.(v)

let comps_of_vertex t v =
  let out = ref [] in
  for i = t.vertex_comp_offsets.(v + 1) - 1 downto t.vertex_comp_offsets.(v) do
    out := t.vertex_comp_list.(i) :: !out
  done;
  !out

let paper_component_id t c =
  if n_component_edges t c = 0 then
    invalid_arg "Bicon.paper_component_id: empty component";
  let best = ref (Gr.edge_of_index t.g t.comp_edge_list.(t.comp_edge_offsets.(c))) in
  iter_component_edges t c (fun e ->
      let id = Gr.edge_of_index t.g e in
      if id < !best then best := id);
  !best

type block_cut_tree = {
  block_node : int array;
  cut_node : (int * int) list;
  tree : Gr.t;
}

let block_cut_tree _g t =
  let block_node = Array.init t.n_components (fun c -> c) in
  let next = ref t.n_components in
  let cut_node = ref [] in
  let edges = ref [] in
  Array.iteri
    (fun v cut ->
      if cut then begin
        let node = !next in
        incr next;
        cut_node := (v, node) :: !cut_node;
        for i = t.vertex_comp_offsets.(v) to t.vertex_comp_offsets.(v + 1) - 1 do
          edges := (node, block_node.(t.vertex_comp_list.(i))) :: !edges
        done
      end)
    t.is_cut;
  { block_node; cut_node = List.rev !cut_node; tree = Gr.of_edges ~n:!next !edges }
