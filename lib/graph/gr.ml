type edge = int * int

(* The core representation is CSR (compressed sparse row): [xadj] holds
   the n+1 slice offsets, [adjncy] the 2m neighbor ids (each slice
   sorted ascending). A {e dart} is a directed edge; its dense id is its
   slot in [adjncy], so the darts pointing {e into} a vertex [v] are the
   contiguous range [xadj.(v) .. xadj.(v+1) - 1], ordered by source id —
   exactly the delivery order the CONGEST engine guarantees.
   [dart_uedge] maps each dart to the dense index of its undirected edge
   in [edge_list]. [adj] materializes the per-vertex neighbor arrays for
   the legacy [neighbors] accessor (owned by the graph, like the CSR
   arrays). *)
type t = {
  n : int;
  xadj : int array;
  adjncy : int array;
  dart_uedge : int array;
  dart_rev : int array;  (* the opposite dart: rev of u -> v is v -> u *)
  edge_list : edge array;
  adj : int array array;
}

let normalize_edge u v =
  if u = v then invalid_arg "Gr.normalize_edge: self-loop";
  if u < v then (u, v) else (v, u)

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Gr: vertex %d out of range [0, %d)" v n)

(* CSR assembly from a lex-sorted, duplicate-free, normalized edge
   array; the array is kept as [edge_list] (ownership transfers). *)
let of_edge_list_owned ~n edge_list =
  let xadj = Array.make (n + 1) 0 in
  Array.iter
    (fun (u, v) ->
      xadj.(u + 1) <- xadj.(u + 1) + 1;
      xadj.(v + 1) <- xadj.(v + 1) + 1)
    edge_list;
  for v = 0 to n - 1 do
    xadj.(v + 1) <- xadj.(v + 1) + xadj.(v)
  done;
  let nd = xadj.(n) in
  let adjncy = Array.make nd 0 in
  let dart_uedge = Array.make nd 0 in
  let dart_rev = Array.make nd 0 in
  let fill = Array.sub xadj 0 n in
  (* [edge_list] is lex-sorted, so each slice comes out sorted: vertex
     [v] first receives its lower neighbors (edges [(u, v)], increasing
     [u]), then its higher neighbors (edges [(v, w)], increasing [w]).
     Slot [su] in [u]'s slice holds neighbor [v], i.e. the dart [v -> u];
     its reversal [u -> v] is the matching slot in [v]'s slice — both are
     known here, so the involution costs nothing extra to record. *)
  Array.iteri
    (fun e (u, v) ->
      let su = fill.(u) and sv = fill.(v) in
      adjncy.(su) <- v;
      dart_uedge.(su) <- e;
      adjncy.(sv) <- u;
      dart_uedge.(sv) <- e;
      dart_rev.(su) <- sv;
      dart_rev.(sv) <- su;
      fill.(u) <- su + 1;
      fill.(v) <- sv + 1)
    edge_list;
  let adj =
    Array.init n (fun v -> Array.sub adjncy xadj.(v) (xadj.(v + 1) - xadj.(v)))
  in
  { n; xadj; adjncy; dart_uedge; dart_rev; edge_list; adj }

let of_edges ~n edges =
  let raw =
    Array.of_list
      (List.map
         (fun (u, v) ->
           check_vertex n u;
           check_vertex n v;
           normalize_edge u v)
         edges)
  in
  Array.sort compare raw;
  let m =
    let cnt = ref 0 in
    Array.iteri
      (fun i e -> if i = 0 || raw.(i - 1) <> e then incr cnt)
      raw;
    !cnt
  in
  let edge_list = Array.make m (0, 0) in
  let j = ref 0 in
  Array.iteri
    (fun i e ->
      if i = 0 || raw.(i - 1) <> e then begin
        edge_list.(!j) <- e;
        incr j
      end)
    raw;
  of_edge_list_owned ~n edge_list

let of_normalized_sorted_unchecked ~n edge_list = of_edge_list_owned ~n edge_list

let empty n = of_edges ~n []
let n t = t.n
let m t = Array.length t.edge_list
let degree t v = t.xadj.(v + 1) - t.xadj.(v)
let neighbors t v = t.adj.(v)

let iter_neighbors t v f =
  for i = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    f t.adjncy.(i)
  done

let fold_neighbors t v ~init ~f =
  let acc = ref init in
  for i = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    acc := f !acc t.adjncy.(i)
  done;
  !acc

(* Slot of [x] in the sorted CSR slice [lo, hi) of [a], or -1. *)
let rec slice_find a lo hi x =
  if lo >= hi then -1
  else begin
    let mid = (lo + hi) / 2 in
    let y = a.(mid) in
    if y = x then mid
    else if y < x then slice_find a (mid + 1) hi x
    else slice_find a lo mid x
  end

let mem_edge t u v =
  u <> v
  && u >= 0 && v >= 0 && u < t.n && v < t.n
  && slice_find t.adjncy t.xadj.(v) t.xadj.(v + 1) u >= 0

let edges t = Array.to_list t.edge_list
let iter_edges t f = Array.iter (fun (u, v) -> f u v) t.edge_list

let fold_vertices t ~init ~f =
  let acc = ref init in
  for v = 0 to t.n - 1 do
    acc := f !acc v
  done;
  !acc

let darts t = Array.length t.adjncy

let dart t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n || src = dst then
    raise Not_found;
  let i = slice_find t.adjncy t.xadj.(dst) t.xadj.(dst + 1) src in
  if i < 0 then raise Not_found;
  i

let dart_src t d = t.adjncy.(d)
let dart_edge t d = t.dart_uedge.(d)
let dart_rev t d = t.dart_rev.(d)
let dart_offsets t = t.xadj
let dart_sources t = t.adjncy
let dart_edges t = t.dart_uedge
let dart_reversals t = t.dart_rev

let edge_index t u v =
  (* Self-loops are an [Invalid_argument], as they always were. *)
  ignore (normalize_edge u v : edge);
  t.dart_uedge.(dart t ~src:u ~dst:v)

let edge_of_index t i = t.edge_list.(i)

let induced t vs =
  let k = List.length vs in
  let old_of_new = Array.of_list vs in
  let new_idx = Hashtbl.create k in
  Array.iteri
    (fun i v ->
      check_vertex t.n v;
      if Hashtbl.mem new_idx v then invalid_arg "Gr.induced: duplicate vertex";
      Hashtbl.replace new_idx v i)
    old_of_new;
  let sub_edges = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt new_idx w with
          | Some j when i < j -> sub_edges := (i, j) :: !sub_edges
          | Some _ | None -> ())
        t.adj.(v))
    old_of_new;
  let h = of_edges ~n:k !sub_edges in
  (h, old_of_new, fun v -> Hashtbl.find new_idx v)

let add_edges t extra =
  of_edges ~n:t.n (extra @ Array.to_list t.edge_list)

let union_vertices t ~more extra =
  of_edges ~n:(t.n + more) (extra @ Array.to_list t.edge_list)

let relabel t perm =
  if Array.length perm <> t.n then invalid_arg "Gr.relabel: bad permutation";
  let seen = Array.make t.n false in
  Array.iter
    (fun p ->
      check_vertex t.n p;
      if seen.(p) then invalid_arg "Gr.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  of_edges ~n:t.n
    (Array.to_list (Array.map (fun (u, v) -> (perm.(u), perm.(v))) t.edge_list))

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d" t.n (m t);
  iter_edges t (fun u v -> Format.fprintf ppf "@ %d -- %d" u v);
  Format.fprintf ppf "@]"
