(* Rotation systems on the graph's dart table.

   The cyclic orders are validated once at construction and compiled to
   two flat arrays over the graph's dense dart ids: [pos] locates each
   dart inside its head's rotation, and [face_next] is the face-routing
   permutation next (u, v) = (v, succ_v u). Face tracing, genus and the
   Euler check are then orbit walks over an int array — no hashtables,
   no tuple keys — which matters because every accepted embedding of the
   LR kernel is re-validated here. *)

type t = {
  g : Gr.t;
  rot : int array array;
  pos : int array;  (* dart u->v to the index of u in rot.(v). *)
  face_next : int array;  (* dart-to-dart face successor. *)
}

(* Head (destination) of a dart: the source of its reversal. *)
let dart_dst g d = Gr.dart_src g (Gr.dart_rev g d)

let make g rot =
  let n = Gr.n g in
  if Array.length rot <> n then invalid_arg "Rotation.make: wrong length";
  let darts = Gr.darts g in
  let pos = Array.make (max 1 darts) (-1) in
  (* Permutation check with a stamp array: 2v marks "neighbor of v, not
     yet seen in the rotation", 2v+1 "already seen" (duplicate guard). *)
  let mark = Array.make (max 1 n) (-1) in
  for v = 0 to n - 1 do
    let r = rot.(v) in
    if Array.length r <> Gr.degree g v then
      invalid_arg "Rotation.make: rotation size mismatch";
    Gr.iter_neighbors g v (fun u -> mark.(u) <- 2 * v);
    Array.iteri
      (fun i u ->
        if u < 0 || u >= n || mark.(u) <> 2 * v then
          invalid_arg "Rotation.make: rotation is not a permutation of neighbors";
        mark.(u) <- (2 * v) + 1;
        pos.(Gr.dart g ~src:u ~dst:v) <- i)
      r
  done;
  let face_next = Array.make (max 1 darts) (-1) in
  for v = 0 to n - 1 do
    let r = rot.(v) in
    let deg = Array.length r in
    for i = 0 to deg - 1 do
      let u = r.(i) and w = r.((i + 1) mod deg) in
      face_next.(Gr.dart g ~src:u ~dst:v) <- Gr.dart g ~src:v ~dst:w
    done
  done;
  { g; rot = Array.map Array.copy rot; pos; face_next }

(* Hot-path constructor: trusts the caller that [rot.(v)] is a permutation
   of the neighbors of [v] and takes ownership of the arrays (no defensive
   copy). One pass per vertex: a single binary-search dart lookup per slot
   (reusing the precomputed reversal involution for the face successor)
   instead of [make]'s stamp-validation pass plus two lookups — roughly
   half the construction cost, which matters to callers that rebuild
   rotations per update (the incremental maintainer, Triangulate). *)
let unsafe_of_validated g rot =
  let n = Gr.n g in
  if Array.length rot <> n then
    invalid_arg "Rotation.unsafe_of_validated: wrong length";
  let darts = Gr.darts g in
  let pos = Array.make (max 1 darts) (-1) in
  let face_next = Array.make (max 1 darts) (-1) in
  let rev = Gr.dart_reversals g in
  let max_deg = ref 0 in
  for v = 0 to n - 1 do
    let d = Array.length rot.(v) in
    if d > !max_deg then max_deg := d
  done;
  let ds = Array.make (max 1 !max_deg) (-1) in
  for v = 0 to n - 1 do
    let r = rot.(v) in
    let deg = Array.length r in
    for i = 0 to deg - 1 do
      let d = Gr.dart g ~src:r.(i) ~dst:v in
      ds.(i) <- d;
      pos.(d) <- i
    done;
    for i = 0 to deg - 1 do
      (* next (u, v) = (v, succ_v u): the out-dart v -> r.(i+1) is the
         reversal of the in-dart r.(i+1) -> v computed above. *)
      face_next.(ds.(i)) <- rev.(ds.((i + 1) mod deg))
    done
  done;
  { g; rot; pos; face_next }

let rotation t v = t.rot.(v)
let graph t = t.g

let succ t v u =
  let d = Gr.dart t.g ~src:u ~dst:v in
  let r = t.rot.(v) in
  r.((t.pos.(d) + 1) mod Array.length r)

let mirror t =
  make t.g
    (Array.map (fun r -> Array.of_list (List.rev (Array.to_list r))) t.rot)

let of_sorted_adjacency g =
  make g (Array.init (Gr.n g) (fun v -> Array.copy (Gr.neighbors g v)))

(* Iterate the orbits of [face_next]: calls [start d] at the first dart
   of each face and [step d] for every dart (in face order). *)
let iter_faces t ~start ~step =
  let darts = Gr.darts t.g in
  let seen = Array.make (max 1 darts) false in
  for d0 = 0 to darts - 1 do
    if not seen.(d0) then begin
      start d0;
      let d = ref d0 in
      let continue = ref true in
      while !continue do
        seen.(!d) <- true;
        step !d;
        d := t.face_next.(!d);
        if !d = d0 then continue := false
      done
    end
  done

let faces t =
  let out = ref [] in
  let cur = ref [] in
  iter_faces t
    ~start:(fun _ ->
      if !cur <> [] then out := List.rev !cur :: !out;
      cur := [])
    ~step:(fun d -> cur := (Gr.dart_src t.g d, dart_dst t.g d) :: !cur);
  if !cur <> [] then out := List.rev !cur :: !out;
  List.rev !out

let face_count t =
  let k = ref 0 in
  iter_faces t ~start:(fun _ -> incr k) ~step:(fun _ -> ());
  !k

let genus t =
  (* Euler's formula per connected component: n_c - m_c + f_c = 2 - 2 g_c,
     where isolated vertices form components with one face each. *)
  let comps = Traverse.components t.g in
  let comp_of = Array.make (max 1 (Gr.n t.g)) (-1) in
  List.iteri (fun i vs -> List.iter (fun v -> comp_of.(v) <- i) vs) comps;
  let k = List.length comps in
  let nv = Array.make (max 1 k) 0
  and ne = Array.make (max 1 k) 0
  and nf = Array.make (max 1 k) 0 in
  List.iteri (fun i vs -> nv.(i) <- List.length vs) comps;
  Gr.iter_edges t.g (fun u _v -> ne.(comp_of.(u)) <- ne.(comp_of.(u)) + 1);
  iter_faces t
    ~start:(fun d -> nf.(comp_of.(Gr.dart_src t.g d)) <- nf.(comp_of.(Gr.dart_src t.g d)) + 1)
    ~step:(fun _ -> ());
  let total = ref 0 in
  for i = 0 to k - 1 do
    let f = if ne.(i) = 0 then 1 else nf.(i) in
    let chi = nv.(i) - ne.(i) + f in
    let two_g = 2 - chi in
    assert (two_g >= 0 && two_g mod 2 = 0);
    total := !total + (two_g / 2)
  done;
  !total

let is_planar_embedding t = genus t = 0

let face_of_dart t (u, v) =
  if not (Gr.mem_edge t.g u v) then
    invalid_arg "Rotation.face_of_dart: not an edge";
  let d0 = Gr.dart t.g ~src:u ~dst:v in
  let out = ref [] in
  let d = ref d0 in
  let continue = ref true in
  while !continue do
    out := (Gr.dart_src t.g !d, dart_dst t.g !d) :: !out;
    d := t.face_next.(!d);
    if !d = d0 then continue := false
  done;
  List.rev !out

let pp ppf t =
  Format.fprintf ppf "@[<v>rotation system (n=%d, m=%d, f=%d, genus=%d)"
    (Gr.n t.g) (Gr.m t.g) (face_count t) (genus t);
  Array.iteri
    (fun v r ->
      Format.fprintf ppf "@ %d: (%s)" v
        (String.concat " " (List.map string_of_int (Array.to_list r))))
    t.rot;
  Format.fprintf ppf "@]"
