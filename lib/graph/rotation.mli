(** Rotation systems (combinatorial embeddings) and their verification.

    A rotation system assigns to every vertex a cyclic (clockwise) order of
    its incident edges; by Edmonds' theorem (cited as [Edm60] in the paper)
    such a system determines an embedding of the graph on an orientable
    surface, and the embedding is planar iff the face count satisfies
    Euler's formula [n - m + f = 2] (for a connected graph).

    This module is the *independent verifier* used throughout the test
    suite: the distributed embedder's output is accepted only if
    {!is_planar_embedding} holds. *)

type t
(** A validated rotation system for a fixed graph. *)

val make : Gr.t -> int array array -> t
(** [make g rot] validates that [rot.(v)] is a permutation of
    [Gr.neighbors g v] for every [v] and packages the system.
    @raise Invalid_argument otherwise. *)

val unsafe_of_validated : Gr.t -> int array array -> t
(** [unsafe_of_validated g rot] packages a rotation system {e without} the
    permutation validation of {!make}, and {e takes ownership} of [rot]
    (no defensive copy — the caller must not mutate the arrays
    afterwards). Only the array lengths are checked.

    For callers that construct rotations correct by construction — the
    incremental maintainer's per-update materialization (every ring walk
    of its half-edge store lists each neighbor exactly once) and
    [Triangulate]'s fill-edge passes — this halves construction cost:
    one dart lookup per slot and no stamp pass. Behavior on valid input
    is identical to {!make} (pinned by the test suite); on input that is
    {e not} a neighbor permutation the resulting structure is garbage,
    which is why the name carries [unsafe_]. *)

val rotation : t -> int -> int array
(** The cyclic neighbor order at a vertex (starting point arbitrary). *)

val graph : t -> Gr.t

val succ : t -> int -> int -> int
(** [succ r v u] is the neighbor following [u] in the cyclic order at [v].
    @raise Not_found if [u] is not adjacent to [v]. *)

val of_sorted_adjacency : Gr.t -> t
(** The rotation that lists neighbors in increasing id order — usually not
    planar; a convenient arbitrary rotation for tests. *)

val mirror : t -> t
(** The reflected embedding: every cyclic order reversed. Mirroring
    preserves the genus (faces map to reversed faces), which is why a
    part's interface is only ever determined "up to a flip" (Figure 2 of
    the paper). *)

val faces : t -> (int * int) list list
(** Faces as orbits of directed darts under [next (u, v) = (v, succ v u)].
    Every dart appears in exactly one face. *)

val face_count : t -> int

val genus : t -> int
(** The orientable genus of the embedding, from Euler's formula
    [n - m + f = 2 - 2g] per connected component (computed component-wise
    and summed). [genus r = 0] iff the rotation system is planar. *)

val is_planar_embedding : t -> bool
(** [true] iff the rotation system embeds the graph in the plane
    (genus 0). Works for disconnected graphs (each component planar). *)

val face_of_dart : t -> int * int -> (int * int) list
(** The face containing the given directed dart.
    @raise Invalid_argument if the dart is not an edge of the graph. *)

val pp : Format.formatter -> t -> unit
