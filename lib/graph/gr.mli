(** Undirected simple graphs on vertices [0 .. n-1].

    This is the network substrate shared by all layers: the CONGEST
    simulator runs on a [Gr.t], the centralized planarity algorithms take a
    [Gr.t], and the distributed embedder's parts carry induced subgraphs.

    Graphs are immutable after construction. Vertices double as the unique
    node identifiers the CONGEST model assumes; [relabel] produces
    id-permuted copies for tests that must not depend on labeling. *)

type t

type edge = int * int
(** An undirected edge, normalized so that [fst e < snd e]. The paper's
    edge-ID [(min id, max id)] (its footnote 5) is exactly this pair. *)

val normalize_edge : int -> int -> edge
(** [normalize_edge u v] is the normalized edge [{u, v}].
    @raise Invalid_argument on a self-loop. *)

(** {1 Construction} *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph with [n] vertices and the given
    edges. Duplicate edges are collapsed.
    @raise Invalid_argument on self-loops or out-of-range endpoints. *)

val of_normalized_sorted_unchecked : n:int -> edge array -> t
(** CSR assembly from an edge array the caller guarantees is already
    normalized ([u < v]), lexicographically sorted, duplicate-free, and
    in range — the O(m log m) polymorphic sort and dedup of
    {!of_edges} are skipped and the array is owned by the graph
    afterwards. The incremental maintainer's scoped re-runs sit on this
    path: it rebuilds a scope subgraph per update, where the generic
    constructor's sort dominated the kernel itself. Violating the
    contract silently corrupts the dart tables. *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] vertices. *)

(** {1 Basic accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val degree : t -> int -> int
val neighbors : t -> int -> int array
(** Neighbors of a vertex in increasing order. The returned array is owned
    by the graph; callers must not mutate it. Callers that only iterate
    should prefer {!iter_neighbors} / {!fold_neighbors}, which expose no
    mutable escape hatch and allocate nothing. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbor of [v] in
    increasing order. Allocates nothing. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_neighbors g v ~init ~f] folds over the neighbors of [v] in
    increasing order. Allocates nothing beyond what [f] allocates. *)

val mem_edge : t -> int -> int -> bool
val edges : t -> edge list
(** All edges, normalized, in lexicographic order. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate over normalized edges. *)

val fold_vertices : t -> init:'a -> f:('a -> int -> 'a) -> 'a

(** {1 Edge indexing} *)

val edge_index : t -> int -> int -> int
(** A dense index in [0 .. m-1] for an existing edge, independent of
    endpoint order. @raise Not_found if the edge is absent. *)

val edge_of_index : t -> int -> edge

(** {1 Darts (directed edges)}

    A {e dart} is a directed edge [src -> dst] with a dense id in
    [0 .. darts g - 1]. Ids are grouped by head: the darts pointing into
    [dst] occupy the contiguous range
    [dart_offsets.(dst) .. dart_offsets.(dst+1) - 1], ordered by source
    id ascending — which is exactly the CONGEST engine's documented
    per-round delivery order, so the engine's flat per-dart accounting
    arrays double as sorted inboxes. *)

val darts : t -> int
(** Number of darts: [2 * m]. *)

val dart : t -> src:int -> dst:int -> int
(** The dense id of the dart [src -> dst], in [O(log (degree dst))] with
    no allocation. @raise Not_found if [{src, dst}] is not an edge. *)

val dart_src : t -> int -> int
(** The source endpoint of a dart. *)

val dart_edge : t -> int -> int
(** The dense {e undirected} edge index ({!edge_index}) under a dart. *)

val dart_rev : t -> int -> int
(** The opposite dart: the reversal of [src -> dst] is [dst -> src]. An
    involution, precomputed at construction. Combined with the sorted CSR
    slices this gives a per-node neighbor→dart index: the dart [u -> v] is
    [dart_rev] of the slot of [v] in [u]'s own adjacency slice — one rank
    search in the {e sender}'s slice (cache-hot across a whole outbox)
    instead of a binary search in each recipient's slice. *)

val dart_offsets : t -> int array
(** The CSR offsets ([n + 1] entries): the in-darts of [v] are the slots
    [dart_offsets.(v) .. dart_offsets.(v+1) - 1]. Owned by the graph;
    callers must not mutate. *)

val dart_sources : t -> int array
(** [dart_sources.(d)] is {!dart_src}[ g d], as a flat array for hot
    loops. Owned by the graph; callers must not mutate. *)

val dart_edges : t -> int array
(** [dart_edges.(d)] is {!dart_edge}[ g d], as a flat array for hot
    loops. Owned by the graph; callers must not mutate. *)

val dart_reversals : t -> int array
(** [dart_reversals.(d)] is {!dart_rev}[ g d], as a flat array for hot
    loops. Owned by the graph; callers must not mutate. *)

(** {1 Derived graphs} *)

val induced : t -> int list -> t * int array * (int -> int)
(** [induced g vs] is the subgraph induced by the (duplicate-free) vertex
    list [vs], as [(h, old_of_new, new_of_old)]: vertex [i] of [h]
    corresponds to [old_of_new.(i)] in [g], and [new_of_old v] maps a [g]
    vertex to its [h] index (or raises [Not_found] if [v] is not in [vs]). *)

val add_edges : t -> (int * int) list -> t
(** A copy of the graph with the given extra edges (duplicates collapsed). *)

val union_vertices : t -> more:int -> (int * int) list -> t
(** [union_vertices g ~more extra] extends [g] with [more] fresh vertices
    (numbered [n g .. n g + more - 1]) and the extra edges. Used by the
    apex/stub construction of the constrained embedder. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0 .. n-1]. *)

val pp : Format.formatter -> t -> unit
