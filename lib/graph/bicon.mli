(** Biconnected-component decomposition (Tarjan lowpoint algorithm).

    Section 3 of the paper represents each part's embedding freedom by its
    biconnected-component decomposition (Observation 3.2); this module is
    that decomposition, in the paper's distributed representation: every
    vertex knows the components it belongs to, every edge belongs to exactly
    one component, and a vertex is a cut vertex iff it belongs to two or
    more components. The implementation is iterative so that long paths
    (e.g. subdivided-[K4] lower-bound graphs) do not overflow the stack.

    Membership is stored as flat CSR arrays (component id per edge plus
    offset tables in both directions), so repeated consumers — the DMP
    per-block embedder, the interface trees, and the incremental
    maintainer's component-scoped re-runs — can walk a component without
    rebuilding association lists. The list-returning accessors below are
    thin conveniences over the arrays. *)

type t = {
  g : Gr.t;  (** the decomposed graph. *)
  n_components : int;
  comp_of_edge : int array;
      (** dense edge index (see {!Gr.edge_index}) to component id. *)
  comp_edge_offsets : int array;
      (** [n_components + 1] entries: the (dense indices of the) edges of
          component [c] are
          [comp_edge_list.(comp_edge_offsets.(c) .. comp_edge_offsets.(c+1) - 1)]. *)
  comp_edge_list : int array;  (** dense edge indices grouped by component. *)
  comp_vertex_offsets : int array;
      (** [n_components + 1] entries: the vertices of component [c] are
          [comp_vertex_list.(comp_vertex_offsets.(c) .. comp_vertex_offsets.(c+1) - 1)],
          duplicate-free. *)
  comp_vertex_list : int array;  (** vertices grouped by component. *)
  vertex_comp_offsets : int array;
      (** [n + 1] entries: the components containing vertex [v] are
          [vertex_comp_list.(vertex_comp_offsets.(v) .. vertex_comp_offsets.(v+1) - 1)],
          duplicate-free (empty for isolated vertices). *)
  vertex_comp_list : int array;  (** component ids grouped by vertex. *)
  is_cut : bool array;  (** cut (articulation) vertices. *)
}

val decompose : Gr.t -> t

val n_component_edges : t -> int -> int
(** Edge count of a component, in O(1). *)

val iter_component_edges : t -> int -> (int -> unit) -> unit
(** Iterate the dense edge indices of a component. Allocates nothing. *)

val component_edges : t -> int -> Gr.edge list
(** Edges of a component as normalized pairs. *)

val iter_component_vertices : t -> int -> (int -> unit) -> unit
(** Iterate the (duplicate-free) vertex set of a component. Allocates
    nothing. *)

val component_vertices : t -> int -> int list
(** Duplicate-free vertex set of a component. *)

val n_comps_of_vertex : t -> int -> int
(** Number of components containing a vertex, in O(1); [>= 2] iff the
    vertex is a cut vertex, [0] iff it is isolated. *)

val comps_of_vertex : t -> int -> int list
(** Component ids containing a vertex, duplicate-free. *)

val paper_component_id : t -> int -> Gr.edge
(** The paper's component ID: the smallest edge ID (normalized [(u, v)]
    pair, compared lexicographically) among the component's edges. *)

(** The block–cut tree: one node per biconnected component ("block") and one
    per cut vertex, with an edge whenever the cut vertex lies in the block.
    Figure 4(b) of the paper pictures exactly this tree for a part. *)
type block_cut_tree = {
  block_node : int array;  (** tree-node id of each component. *)
  cut_node : (int * int) list;  (** [(vertex, tree-node id)] for each cut vertex. *)
  tree : Gr.t;
}

val block_cut_tree : Gr.t -> t -> block_cut_tree
