type item = Internal of int | Half of int * int

type t = {
  part : int list;
  rot : (int, item array) Hashtbl.t;
  outer : (int * int) list;
}

let embed g ~part ~half =
  let in_part = Hashtbl.create (List.length part) in
  List.iter (fun v -> Hashtbl.replace in_part v ()) part;
  List.iter
    (fun (u, v) ->
      if not (Gr.mem_edge g u v) then
        invalid_arg "Constrained.embed: half edge is not a graph edge";
      if not (Hashtbl.mem in_part u) then
        invalid_arg "Constrained.embed: half edge inside endpoint not in part";
      if Hashtbl.mem in_part v then
        invalid_arg "Constrained.embed: half edge outside endpoint in part")
    half;
  let (h, old_of_new, new_of_old) = Gr.induced g part in
  let p = Gr.n h in
  let k = List.length half in
  let half_arr = Array.of_list half in
  (* Stub vertices p .. p+k-1, apex p+k (only when there are half edges). *)
  let apex = p + k in
  let aug =
    if k = 0 then h
    else
      Gr.union_vertices h ~more:(k + 1)
        (List.concat
           (List.mapi
              (fun i (u, _v) -> [ (new_of_old u, p + i); (p + i, apex) ])
              half))
  in
  match Planarity.embed aug with
  | Planarity.Nonplanar -> None
  | Planarity.Planar r ->
      let rot = Hashtbl.create p in
      List.iter
        (fun v ->
          let nv = new_of_old v in
          let items =
            Array.map
              (fun w ->
                if w < p then Internal old_of_new.(w)
                else begin
                  let (inside, outside) = half_arr.(w - p) in
                  assert (inside = v);
                  Half (inside, outside)
                end)
              (Rotation.rotation r nv)
          in
          Hashtbl.replace rot v items)
        part;
      let outer =
        if k = 0 then []
        else
          Array.to_list
            (Array.map (fun s -> half_arr.(s - p)) (Rotation.rotation r apex))
      in
      Some { part; rot; outer }

let rotation_of_full t g =
  let n = Gr.n g in
  if List.length t.part <> n then
    invalid_arg "Constrained.rotation_of_full: part does not cover the graph";
  let rot =
    Array.init n (fun v ->
        match Hashtbl.find_opt t.rot v with
        | None -> invalid_arg "Constrained.rotation_of_full: missing vertex"
        | Some items ->
            Array.map
              (function
                | Internal w -> w
                | Half _ ->
                    invalid_arg
                      "Constrained.rotation_of_full: residual half edge")
              items)
  in
  Rotation.make g rot

let check g ~part ~half t =
  let in_part = Hashtbl.create (List.length part) in
  List.iter (fun v -> Hashtbl.replace in_part v ()) part;
  let half_set = Hashtbl.create (List.length half) in
  List.iter (fun e -> Hashtbl.replace half_set e ()) half;
  let ok = ref (List.sort compare t.part = List.sort compare part) in
  (* Outer must be a permutation of half. *)
  if List.sort compare t.outer <> List.sort compare half then ok := false;
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.rot v with
      | None -> ok := false
      | Some items ->
          let internal = ref [] and halves = ref [] in
          Array.iter
            (function
              | Internal w ->
                  if not (Gr.mem_edge g v w && Hashtbl.mem in_part w) then
                    ok := false;
                  internal := w :: !internal
              | Half (u, w) ->
                  if u <> v || not (Hashtbl.mem half_set (u, w)) then ok := false;
                  halves := (u, w) :: !halves)
            items;
          (* Items must cover exactly the internal neighbors and this
             vertex's half edges, each once. *)
          let expected_internal =
            List.sort compare
              (List.filter (Hashtbl.mem in_part)
                 (Array.to_list (Gr.neighbors g v)))
          in
          if List.sort compare !internal <> expected_internal then ok := false;
          let expected_halves =
            List.sort compare (List.filter (fun (u, _) -> u = v) half)
          in
          if List.sort compare !halves <> expected_halves then ok := false)
    part;
  !ok
