(* Attachment order of a biconnected block: the cyclic order in which the
   given attachment vertices can appear around a common face. Computed by
   the apex construction on the block alone: one stub per attachment plus
   an apex; the rotation at the apex is the order. [None] if no embedding
   of the block puts all attachments on one face. *)
let attachment_order block_graph relevant =
  let p = Gr.n block_graph in
  let k = List.length relevant in
  let relevant_arr = Array.of_list relevant in
  let apex = p + k in
  let aug =
    Gr.union_vertices block_graph ~more:(k + 1)
      (List.concat (List.mapi (fun i v -> [ (v, p + i); (p + i, apex) ]) relevant))
  in
  match Planarity.embed aug with
  | Planarity.Nonplanar -> None
  | Planarity.Planar r ->
      Some
        (Array.to_list
           (Array.map (fun s -> relevant_arr.(s - p)) (Rotation.rotation r apex)))

let of_part g ~part ~half =
  let (h, old_of_new, new_of_old) = Gr.induced g part in
  (* Half-edges grouped by their inside endpoint, in h coordinates. *)
  let at = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      let hu = new_of_old u in
      let prev = try Hashtbl.find at hu with Not_found -> [] in
      Hashtbl.replace at hu ((u, v) :: prev))
    half;
  let leaves_at v =
    List.rev_map (fun e -> Pqtree.Leaf e) (try Hashtbl.find at v with Not_found -> [])
  in
  if Gr.m h = 0 then
    (* Single-vertex (or edgeless) part: all half-edges fan out of isolated
       vertices in any order. *)
    Some (Pqtree.P (List.concat_map leaves_at (List.init (Gr.n h) (fun i -> i))))
  else begin
    let dec = Bicon.decompose h in
    let exception Infeasible in
    (* Does the subtree hanging below carry any half-edge? Pruning empty
       branches keeps the interface tree proportional to the half-edges. *)
    let rec block_has_leaves b ~entry =
      List.exists
        (fun v -> v <> entry && vertex_has_leaves v ~from_block:b)
        (Bicon.component_vertices dec b)
    and vertex_has_leaves v ~from_block =
      Hashtbl.mem at v
      || List.exists
           (fun b' -> b' <> from_block && block_has_leaves b' ~entry:v)
           (Bicon.comps_of_vertex dec v)
    in
    (* The bundle of everything attached at vertex [v], seen from block
       [from_block] (or from nowhere for a root vertex): half-edges at [v]
       plus the other blocks through [v]; all freely permutable. *)
    let rec bundle v ~from_block =
      let subblocks =
        List.filter_map
          (fun b' ->
            if b' <> from_block && block_has_leaves b' ~entry:v then
              Some (block_node b' ~entry:v)
            else None)
          (Bicon.comps_of_vertex dec v)
      in
      Pqtree.P (leaves_at v @ subblocks)
    and block_node b ~entry =
      let vertices = Bicon.component_vertices dec b in
      let relevant =
        entry
        :: List.filter
             (fun v -> v <> entry && vertex_has_leaves v ~from_block:b)
             vertices
      in
      (* The induced subgraph of a block's vertices is the block itself:
         two blocks share at most one vertex, so no foreign edge fits. *)
      let (bg, b_old, b_new) = Gr.induced h vertices in
      match attachment_order bg (List.map b_new relevant) with
      | None -> raise Infeasible
      | Some order ->
          let order = List.map (fun i -> b_old.(i)) order in
          (* Linearize the cyclic order at the entry point. *)
          let rec rotate_to acc = function
            | [] -> invalid_arg "Iface: entry not in attachment order"
            | x :: rest when x = entry -> rest @ List.rev acc
            | x :: rest -> rotate_to (x :: acc) rest
          in
          let others = rotate_to [] order in
          Pqtree.Q (List.map (fun v -> bundle v ~from_block:b) others)
    in
    try
      if half = [] then Some (Pqtree.P [])
      else begin
        (* Root the block-cut structure at any vertex carrying a half-edge. *)
        let root =
          match half with
          | (u, _) :: _ -> new_of_old u
          | [] -> assert false
        in
        ignore old_of_new;
        Some (bundle root ~from_block:(-1))
      end
    with Infeasible -> None
  end

let compressed_bits g t =
  let word =
    let n = max 2 (Gr.n g) in
    let rec bits_needed k acc = if k <= 1 then acc else bits_needed (k / 2) (acc + 1) in
    bits_needed (n - 1) 1
  in
  let compressed = Pqtree.compress (fun (_inside, outside) -> outside) t in
  Pqtree.bits ~leaf_bits:(fun (_cls, _count) -> 2 * word) compressed
