(* The left-right planarity test (Brandes' formulation of de Fraysseix &
   Rosenstiehl) with embedding extraction.

   Linear-time skeleton, flat arrays throughout:

   1. Orientation DFS: orient every edge, computing height, lowpoint,
      second lowpoint and the nesting depth 2*lowpt + [chordal] of each
      oriented edge.
   2. Nesting-order sort: outgoing adjacency lists ordered by nesting
      depth via one global counting sort (keys are bounded by 2n).
   3. Testing DFS: the constraint stack of conflict pairs; same-side
      (aligned) and opposite-side (interleaved) constraints are merged
      per Brandes' rules; an unresolvable conflict means non-planar.
   4. Embedding: relative edge sides are resolved through the reference
      chains (sign), adjacency lists re-sorted by signed nesting depth,
      and a final DFS places each back edge next to its reference using
      per-vertex left/right insertion points.

   The rotation is produced on the graph's own dart table (one doubly
   linked cyclic list per vertex, entries indexed by dart id), then
   validated by the independent face-tracing Euler checker in
   [Rotation]; [Embedding_invalid] signals an internal inconsistency
   and is never raised on any input the test accepts (it exists so a
   kernel bug cannot masquerade as a verdict). *)

type result = Planar of Rotation.t | Nonplanar

exception Embedding_invalid of string

(* Internal: the input is rejected by the constraint phase. *)
exception Reject

(* ------------------------------------------------------------------ *)
(* Core state over a CSR adjacency view                                *)
(* ------------------------------------------------------------------ *)

(* The core runs on any CSR triple (off, nbr, eid): the slots of vertex
   [v] are [off.(v) .. off.(v+1) - 1], slot [s] holds the neighbor
   [nbr.(s)] and the dense undirected edge id [eid.(s)] (each edge
   appears in exactly two slots). For a [Gr.t] this is exactly the dart
   table; the masked entry point builds its own triple. *)
type core = {
  n : int;
  m : int;
  off : int array;
  nbr : int array;
  eid : int array;
  (* orientation of each edge; osrc = -1 means not yet oriented *)
  osrc : int array;
  odst : int array;
  height : int array;  (* DFS height per vertex; -1 = unvisited *)
  pedge : int array;  (* parent edge id per vertex; -1 = root *)
  lowpt : int array;
  lowpt2 : int array;
  nesting : int array;
  refe : int array;  (* reference edge (relative side); -1 = none *)
  side : int array;  (* +-1 *)
  lowpt_e : int array;  (* lowpoint edge; -1 = none *)
  sbottom : int array;  (* conflict-stack height at edge start *)
  mutable roots : int list;  (* DFS roots, one per component *)
  (* outgoing adjacency ordered by nesting depth (rebuilt for phase 4) *)
  oout : int array;  (* n + 1 offsets *)
  onbr : int array;
  oeid : int array;
}

let make_core ~n ~m ~off ~nbr ~eid =
  {
    n;
    m;
    off;
    nbr;
    eid;
    osrc = Array.make m (-1);
    odst = Array.make m (-1);
    height = Array.make n (-1);
    pedge = Array.make n (-1);
    lowpt = Array.make m 0;
    lowpt2 = Array.make m 0;
    nesting = Array.make m 0;
    refe = Array.make m (-1);
    side = Array.make m 1;
    lowpt_e = Array.make m (-1);
    sbottom = Array.make m 0;
    roots = [];
    oout = Array.make (n + 1) 0;
    onbr = Array.make m 0;
    oeid = Array.make m 0;
  }

(* ------------------------------------------------------------------ *)
(* Phase 1: orientation DFS                                            *)
(* ------------------------------------------------------------------ *)

(* Nesting depth of a freshly completed oriented edge [e] out of a
   vertex at height [hv], and the lowpoint update of its parent edge. *)
let finish_edge c pe hv e =
  c.nesting.(e) <- (2 * c.lowpt.(e)) + if c.lowpt2.(e) < hv then 1 else 0;
  if pe >= 0 then
    if c.lowpt.(e) < c.lowpt.(pe) then begin
      c.lowpt2.(pe) <- min c.lowpt.(pe) c.lowpt2.(e);
      c.lowpt.(pe) <- c.lowpt.(e)
    end
    else if c.lowpt.(e) > c.lowpt.(pe) then
      c.lowpt2.(pe) <- min c.lowpt2.(pe) c.lowpt.(e)
    else c.lowpt2.(pe) <- min c.lowpt2.(pe) c.lowpt2.(e)

let orient c =
  let ind = Array.init c.n (fun v -> c.off.(v)) in
  let stack = Stack.create () in
  for r = 0 to c.n - 1 do
    if c.height.(r) = -1 then begin
      (* every unvisited vertex roots a DFS (isolated ones trivially) *)
      c.height.(r) <- 0;
      c.roots <- r :: c.roots;
      Stack.push r stack;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        let pe = c.pedge.(v) and hv = c.height.(v) in
        let brk = ref false in
        while (not !brk) && ind.(v) < c.off.(v + 1) do
          let s = ind.(v) in
          let w = c.nbr.(s) and e = c.eid.(s) in
          if c.osrc.(e) = -1 then begin
            c.osrc.(e) <- v;
            c.odst.(e) <- w;
            if c.height.(w) = -1 then begin
              (* tree edge: descend, finish on resume *)
              c.lowpt.(e) <- hv;
              c.lowpt2.(e) <- hv;
              c.pedge.(w) <- e;
              c.height.(w) <- hv + 1;
              Stack.push v stack;
              Stack.push w stack;
              brk := true
            end
            else begin
              (* back edge *)
              c.lowpt.(e) <- c.height.(w);
              c.lowpt2.(e) <- hv;
              finish_edge c pe hv e;
              ind.(v) <- s + 1
            end
          end
          else if c.osrc.(e) = v && c.pedge.(w) = e then begin
            (* the tree edge we just returned from *)
            finish_edge c pe hv e;
            ind.(v) <- s + 1
          end
          else ind.(v) <- s + 1 (* oriented from the other endpoint *)
        done
      done
    end
  done;
  c.roots <- List.rev c.roots

(* ------------------------------------------------------------------ *)
(* Nesting-order adjacency (global counting sort, O(n + m))            *)
(* ------------------------------------------------------------------ *)

(* Sort all oriented edges by nesting depth at once, then scatter them
   to their source vertices in that order; per-vertex lists come out
   sorted because the scatter is stable. [lo] is the smallest possible
   key (negative once the depths are signed). *)
let order_adjacency c ~lo ~hi =
  let range = hi - lo + 1 in
  let count = Array.make (range + 1) 0 in
  for e = 0 to c.m - 1 do
    let k = c.nesting.(e) - lo in
    count.(k) <- count.(k) + 1
  done;
  let acc = ref 0 in
  for k = 0 to range do
    let t = count.(k) in
    count.(k) <- !acc;
    acc := !acc + t
  done;
  let sorted = Array.make c.m 0 in
  for e = 0 to c.m - 1 do
    let k = c.nesting.(e) - lo in
    sorted.(count.(k)) <- e;
    count.(k) <- count.(k) + 1
  done;
  let deg_out = Array.make c.n 0 in
  for e = 0 to c.m - 1 do
    deg_out.(c.osrc.(e)) <- deg_out.(c.osrc.(e)) + 1
  done;
  c.oout.(0) <- 0;
  for v = 0 to c.n - 1 do
    c.oout.(v + 1) <- c.oout.(v) + deg_out.(v)
  done;
  let cur = Array.sub c.oout 0 c.n in
  Array.iter
    (fun e ->
      let v = c.osrc.(e) in
      c.onbr.(cur.(v)) <- c.odst.(e);
      c.oeid.(cur.(v)) <- e;
      cur.(v) <- cur.(v) + 1)
    sorted

(* ------------------------------------------------------------------ *)
(* Phase 3: testing DFS with the conflict-pair stack                   *)
(* ------------------------------------------------------------------ *)

(* An interval of back edges on one side; (-1, -1) is the empty one. *)
type interval = { mutable lo : int; mutable hi : int }

type cpair = { l : interval; r : interval }

let ivl_empty i = i.lo = -1 && i.hi = -1

let swap_pair p =
  let llo = p.l.lo and lhi = p.l.hi in
  p.l.lo <- p.r.lo;
  p.l.hi <- p.r.hi;
  p.r.lo <- llo;
  p.r.hi <- lhi

(* Growable stack of conflict pairs. *)
type cstack = { mutable buf : cpair array; mutable len : int }

let dummy_pair () = { l = { lo = -1; hi = -1 }; r = { lo = -1; hi = -1 } }

let cstack_create () = { buf = Array.make 64 (dummy_pair ()); len = 0 }

let cpush s p =
  if s.len = Array.length s.buf then begin
    let nb = Array.make (2 * s.len) p in
    Array.blit s.buf 0 nb 0 s.len;
    s.buf <- nb
  end;
  s.buf.(s.len) <- p;
  s.len <- s.len + 1

let cpop s =
  s.len <- s.len - 1;
  s.buf.(s.len)

let ctop s = s.buf.(s.len - 1)

let lowest c p =
  if ivl_empty p.l then c.lowpt.(p.r.lo)
  else if ivl_empty p.r then c.lowpt.(p.l.lo)
  else min c.lowpt.(p.l.lo) c.lowpt.(p.r.lo)

let conflicting c i b = (not (ivl_empty i)) && i.hi <> -1 && c.lowpt.(i.hi) > c.lowpt.(b)

(* Merge the constraints of edge [ei] into those of its parent edge
   [pe]: same-side alignment for return edges not outlasting [pe],
   interval merging for the rest, and interleaving conflicts forced to
   opposite sides. @raise Reject when both sides conflict. *)
let add_constraints c s ei pe =
  let p = dummy_pair () in
  (* merge return edges of ei into p.r *)
  let brk = ref false in
  while not !brk do
    let q = cpop s in
    if not (ivl_empty q.l) then swap_pair q;
    if not (ivl_empty q.l) then raise Reject;
    if c.lowpt.(q.r.lo) > c.lowpt.(pe) then begin
      (* merge intervals *)
      if ivl_empty p.r then p.r.hi <- q.r.hi else c.refe.(p.r.lo) <- q.r.hi;
      p.r.lo <- q.r.lo
    end
    else
      (* align with the parent's lowpoint edge *)
      c.refe.(q.r.lo) <- c.lowpt_e.(pe);
    if s.len = c.sbottom.(ei) then brk := true
  done;
  (* merge conflicting return edges of earlier siblings into p.l *)
  while
    s.len > 0
    && (conflicting c (ctop s).l ei || conflicting c (ctop s).r ei)
  do
    let q = cpop s in
    if conflicting c q.r ei then swap_pair q;
    if conflicting c q.r ei then raise Reject;
    (* merge the interval below lowpt ei into p.r *)
    if p.r.lo <> -1 then c.refe.(p.r.lo) <- q.r.hi;
    if q.r.lo <> -1 then p.r.lo <- q.r.lo;
    if ivl_empty p.l then p.l.hi <- q.l.hi else c.refe.(p.l.lo) <- q.l.hi;
    p.l.lo <- q.l.lo
  done;
  if not (ivl_empty p.l && ivl_empty p.r) then cpush s p

(* Back edges returning to the parent [u] of the finished vertex are
   dropped from the stack; the parent edge inherits the side reference
   of a highest surviving return edge. *)
let remove_back_edges c s pe =
  let u = c.osrc.(pe) in
  let hu = c.height.(u) in
  (* drop entire conflict pairs ending at u *)
  let brk = ref false in
  while (not !brk) && s.len > 0 do
    if lowest c (ctop s) = hu then begin
      let p = cpop s in
      if p.l.lo <> -1 then c.side.(p.l.lo) <- -1
    end
    else brk := true
  done;
  if s.len > 0 then begin
    let p = cpop s in
    (* trim left interval *)
    while p.l.hi <> -1 && c.odst.(p.l.hi) = u do
      p.l.hi <- c.refe.(p.l.hi)
    done;
    if p.l.hi = -1 && p.l.lo <> -1 then begin
      (* just emptied *)
      c.refe.(p.l.lo) <- p.r.lo;
      c.side.(p.l.lo) <- -1;
      p.l.lo <- -1
    end;
    (* trim right interval *)
    while p.r.hi <> -1 && c.odst.(p.r.hi) = u do
      p.r.hi <- c.refe.(p.r.hi)
    done;
    if p.r.hi = -1 && p.r.lo <> -1 then begin
      c.refe.(p.r.lo) <- p.l.lo;
      c.side.(p.r.lo) <- -1;
      p.r.lo <- -1
    end;
    cpush s p
  end;
  if c.lowpt.(pe) < hu && s.len > 0 then begin
    (* the side of pe is the side of a highest return edge *)
    let t = ctop s in
    let hl = t.l.hi and hr = t.r.hi in
    c.refe.(pe) <-
      (if hl <> -1 && (hr = -1 || c.lowpt.(hl) > c.lowpt.(hr)) then hl else hr)
  end

(* The testing DFS. @raise Reject on a non-planar input. *)
let test_constraints c =
  let s = cstack_create () in
  let ind = Array.sub c.oout 0 c.n in
  let tinit = Array.make c.m false in
  let stack = Stack.create () in
  List.iter
    (fun root ->
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        let pe = c.pedge.(v) and hv = c.height.(v) in
        let skip_final = ref false in
        let brk = ref false in
        while (not !brk) && ind.(v) < c.oout.(v + 1) do
          let slot = ind.(v) in
          let w = c.onbr.(slot) and ei = c.oeid.(slot) in
          if (not tinit.(ei)) && c.pedge.(w) = ei then begin
            (* tree edge, first encounter: record the stack bottom and
               descend; the return-edge integration happens on resume *)
            c.sbottom.(ei) <- s.len;
            tinit.(ei) <- true;
            Stack.push v stack;
            Stack.push w stack;
            skip_final := true;
            brk := true
          end
          else begin
            if not tinit.(ei) then begin
              (* back edge *)
              c.sbottom.(ei) <- s.len;
              c.lowpt_e.(ei) <- ei;
              cpush s { l = { lo = -1; hi = -1 }; r = { lo = ei; hi = ei } }
            end;
            (* integrate new return edges *)
            if c.lowpt.(ei) < hv then begin
              if slot = c.oout.(v) then begin
                (* e_1 passes its constraints straight to the parent *)
                if pe >= 0 then c.lowpt_e.(pe) <- c.lowpt_e.(ei)
              end
              else add_constraints c s ei pe
            end;
            ind.(v) <- slot + 1
          end
        done;
        if (not !skip_final) && pe >= 0 then remove_back_edges c s pe
      done)
    c.roots

(* ------------------------------------------------------------------ *)
(* Phase 4: sign resolution and embedding                              *)
(* ------------------------------------------------------------------ *)

(* Resolve every edge's relative side to an absolute sign by following
   the reference chains once (memoized in place, so the total work is
   linear even though chains share suffixes). *)
let resolve_sides c =
  for e0 = 0 to c.m - 1 do
    if c.refe.(e0) <> -1 then begin
      let chain = ref [] in
      let cur = ref e0 in
      while c.refe.(!cur) <> -1 do
        chain := !cur :: !chain;
        cur := c.refe.(!cur)
      done;
      (* !cur is resolved; unwind from the deepest reference outwards *)
      let sgn = ref c.side.(!cur) in
      List.iter
        (fun x ->
          c.side.(x) <- c.side.(x) * !sgn;
          c.refe.(x) <- -1;
          sgn := c.side.(x))
        !chain
    end
  done

(* The embedding DFS, on the graph's dart table: [first], [nxt], [prv]
   hold one cyclic doubly linked list of darts per vertex. The half-edge
   "at [v] toward [w]" is the dart [w -> v], which lives in [v]'s own
   dart slice. *)
let embed_rotation c g =
  let darts = Gr.darts g in
  let nxt = Array.make (max 1 darts) (-1) in
  let prv = Array.make (max 1 darts) (-1) in
  let first = Array.make c.n (-1) in
  let he v w = Gr.dart g ~src:w ~dst:v in
  let insert_after d rd =
    let nx = nxt.(rd) in
    nxt.(rd) <- d;
    prv.(d) <- rd;
    nxt.(d) <- nx;
    prv.(nx) <- d
  in
  let add_first v w =
    let d = he v w in
    let f = first.(v) in
    if f = -1 then begin
      first.(v) <- d;
      nxt.(d) <- d;
      prv.(d) <- d
    end
    else begin
      insert_after d prv.(f);
      first.(v) <- d
    end
  in
  let add_cw v w ~ref_nbr =
    let d = he v w in
    insert_after d (he v ref_nbr)
  in
  let add_ccw v w ~ref_nbr =
    let d = he v w in
    let rd = he v ref_nbr in
    insert_after d prv.(rd);
    if first.(v) = rd then first.(v) <- d
  in
  (* initialize each vertex with its outgoing edges in nesting order *)
  for v = 0 to c.n - 1 do
    let prev = ref (-1) in
    for slot = c.oout.(v) to c.oout.(v + 1) - 1 do
      let w = c.onbr.(slot) in
      if !prev = -1 then add_first v w else add_cw v w ~ref_nbr:!prev;
      prev := w
    done
  done;
  (* the embedding DFS places the reverse half-edges *)
  let lref = Array.make c.n (-1) in
  let rref = Array.make c.n (-1) in
  let ind = Array.sub c.oout 0 c.n in
  let stack = Stack.create () in
  List.iter
    (fun root ->
      Stack.push root stack;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        let brk = ref false in
        while (not !brk) && ind.(v) < c.oout.(v + 1) do
          let slot = ind.(v) in
          let w = c.onbr.(slot) and ei = c.oeid.(slot) in
          ind.(v) <- slot + 1;
          if c.pedge.(w) = ei then begin
            (* tree edge: w's edge to its parent goes first at w; back
               edges from w's subtree insert next to this tree edge *)
            add_first w v;
            lref.(v) <- w;
            rref.(v) <- w;
            Stack.push v stack;
            Stack.push w stack;
            brk := true
          end
          else if c.side.(ei) = 1 then add_cw w v ~ref_nbr:rref.(w)
          else begin
            add_ccw w v ~ref_nbr:lref.(w);
            lref.(w) <- v
          end
        done
      done)
    c.roots;
  (* read the rotations off the linked lists *)
  Array.init c.n (fun v ->
      let deg = Gr.degree g v in
      if deg = 0 then [||]
      else begin
        let d0 = first.(v) in
        if d0 = -1 then
          raise (Embedding_invalid "vertex with edges but no rotation");
        let rot = Array.make deg (-1) in
        let d = ref d0 in
        for i = 0 to deg - 1 do
          rot.(i) <- Gr.dart_src g !d;
          d := nxt.(!d)
        done;
        if !d <> d0 then
          raise (Embedding_invalid "rotation list length mismatch");
        rot
      end)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let core_of_graph g =
  make_core ~n:(Gr.n g) ~m:(Gr.m g) ~off:(Gr.dart_offsets g)
    ~nbr:(Gr.dart_sources g) ~eid:(Gr.dart_edges g)

let embed g =
  let n = Gr.n g and m = Gr.m g in
  if n = 0 then Planar (Rotation.make g [||])
  else if m = 0 then
    Planar (Rotation.make g (Array.make n [||]))
  else if n >= 3 && m > (3 * n) - 6 then Nonplanar
  else begin
    let c = core_of_graph g in
    orient c;
    order_adjacency c ~lo:0 ~hi:(2 * n);
    match test_constraints c with
    | () ->
        resolve_sides c;
        for e = 0 to c.m - 1 do
          c.nesting.(e) <- c.nesting.(e) * c.side.(e)
        done;
        order_adjacency c ~lo:(-(2 * n)) ~hi:(2 * n);
        let rot = embed_rotation c g in
        let r =
          try Rotation.make g rot
          with Invalid_argument msg -> raise (Embedding_invalid msg)
        in
        if not (Rotation.is_planar_embedding r) then
          raise
            (Embedding_invalid
               "accepted input produced a rotation that fails the Euler \
                face-trace check");
        Planar r
    | exception Reject -> Nonplanar
  end

let is_planar g =
  let n = Gr.n g and m = Gr.m g in
  if m = 0 then true
  else if n >= 3 && m > (3 * n) - 6 then false
  else begin
    let c = core_of_graph g in
    orient c;
    order_adjacency c ~lo:0 ~hi:(2 * n);
    match test_constraints c with () -> true | exception Reject -> false
  end

let embed_exn g =
  match embed g with
  | Planar r -> r
  | Nonplanar -> invalid_arg "Lr.embed_exn: graph is not planar"

let is_planar_edges ~n edges ~mask =
  let m_all = Array.length edges in
  if Array.length mask <> m_all then
    invalid_arg "Lr.is_planar_edges: mask length mismatch";
  let deg = Array.make n 0 in
  let m = ref 0 in
  for i = 0 to m_all - 1 do
    if mask.(i) then begin
      let (u, v) = edges.(i) in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      incr m
    end
  done;
  let m = !m in
  if m = 0 then true
  else if n >= 3 && m > (3 * n) - 6 then false
  else begin
    let off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      off.(v + 1) <- off.(v) + deg.(v)
    done;
    let nbr = Array.make (2 * m) 0 in
    let eid = Array.make (2 * m) 0 in
    let cur = Array.sub off 0 n in
    let next_id = ref 0 in
    for i = 0 to m_all - 1 do
      if mask.(i) then begin
        let (u, v) = edges.(i) in
        let e = !next_id in
        incr next_id;
        nbr.(cur.(u)) <- v;
        eid.(cur.(u)) <- e;
        cur.(u) <- cur.(u) + 1;
        nbr.(cur.(v)) <- u;
        eid.(cur.(v)) <- e;
        cur.(v) <- cur.(v) + 1
      end
    done;
    let c = make_core ~n ~m ~off ~nbr ~eid in
    orient c;
    order_adjacency c ~lo:0 ~hi:(2 * n);
    match test_constraints c with () -> true | exception Reject -> false
  end
