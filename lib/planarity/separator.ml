type t = {
  separator : int list;
  components : int list list;
  balance : float;
}

let components_without g sep =
  let n = Gr.n g in
  let banned = Array.make n false in
  List.iter (fun v -> banned.(v) <- true) sep;
  let seen = Array.make n false in
  let comps = ref [] in
  for s = 0 to n - 1 do
    if (not banned.(s)) && not seen.(s) then begin
      let comp = ref [] in
      let queue = Queue.create () in
      seen.(s) <- true;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        comp := v :: !comp;
        Gr.iter_neighbors g v (fun w ->
            if (not banned.(w)) && not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
      done;
      comps := !comp :: !comps
    end
  done;
  !comps

let result_of g sep =
  let comps = components_without g sep in
  let biggest = List.fold_left (fun acc c -> max acc (List.length c)) 0 comps in
  {
    separator = List.sort_uniq compare sep;
    components = comps;
    balance = float_of_int biggest /. float_of_int (max 1 (Gr.n g));
  }

(* Greedily triangulate the faces of an embedding by adding diagonals
   (ear clipping on each boundary walk, skipping chords that already
   exist); iterate embed+triangulate until faces stabilize. Returns a
   supergraph of [g] on the same vertices. *)
let triangulate g =
  let current = ref g in
  let continue = ref true in
  let rounds = ref 0 in
  while !continue && !rounds < 5 do
    incr rounds;
    continue := false;
    match Planarity.embed !current with
    | Planarity.Nonplanar -> invalid_arg "Separator.triangulate: non-planar"
    | Planarity.Planar rot ->
        let added = Hashtbl.create 16 in
        let fresh = ref [] in
        List.iter
          (fun face ->
            (* Boundary walk as a vertex list. *)
            let poly = ref (List.map fst face) in
            let progress = ref true in
            while List.length !poly > 3 && !progress do
              progress := false;
              let arr = Array.of_list !poly in
              let k = Array.length arr in
              let i = ref 0 in
              let clipped = ref false in
              while (not !clipped) && !i < k do
                let a = arr.((!i + k - 1) mod k)
                and b = arr.(!i)
                and c = arr.((!i + 1) mod k) in
                if
                  a <> c && a <> b && b <> c
                  && (not (Gr.mem_edge !current a c))
                  && not (Hashtbl.mem added (Gr.normalize_edge a c))
                then begin
                  Hashtbl.replace added (Gr.normalize_edge a c) ();
                  fresh := (a, c) :: !fresh;
                  (* clip b out of the polygon *)
                  poly :=
                    List.filteri (fun j _ -> j <> !i) (Array.to_list arr);
                  clipped := true;
                  progress := true
                end
                else incr i
              done
            done)
          (Rotation.faces rot);
        if !fresh <> [] then begin
          current := Gr.add_edges !current !fresh;
          continue := true
        end
  done;
  !current

(* Fundamental cycle of a non-tree edge (u, v) w.r.t. a BFS tree: the two
   root paths up to the LCA plus the edge. *)
let fundamental_cycle bt u v =
  let open Traverse in
  let rec lift a b =
    (* climb the deeper one *)
    if a = b then a
    else if bt.dist.(a) >= bt.dist.(b) then lift bt.parent.(a) b
    else lift a bt.parent.(b)
  in
  let l = lift u v in
  let rec up x acc = if x = l then x :: acc else up bt.parent.(x) (x :: acc) in
  List.rev_append (up u []) (List.tl (up v []))

let separate g =
  let n = Gr.n g in
  if n = 0 then invalid_arg "Separator.separate: empty graph";
  if not (Traverse.is_connected g) then
    invalid_arg "Separator.separate: disconnected graph";
  if not (Planarity.is_planar g) then
    invalid_arg "Separator.separate: non-planar graph";
  if n <= 3 then result_of g []
  else begin
    let bt = Traverse.bfs g 0 in
    let h = Traverse.depth bt in
    let level_members = Array.make (h + 1) [] in
    Array.iter
      (fun v ->
        let l = bt.Traverse.dist.(v) in
        level_members.(l) <- v :: level_members.(l))
      bt.Traverse.order;
    let level_size l =
      if l < 0 || l > h then 0 else List.length level_members.(l)
    in
    let cum = Array.make (h + 2) 0 in
    for l = 0 to h do
      cum.(l + 1) <- cum.(l) + level_size l
    done;
    (* cum.(l+1) = vertices at levels <= l *)
    let lm =
      let rec find l = if cum.(l + 1) > n / 2 then l else find (l + 1) in
      find 0
    in
    let k = cum.(lm + 1) in
    let budget_top = 2.0 *. sqrt (float_of_int k) in
    let budget_bot = 2.0 *. sqrt (float_of_int (n - k + level_size lm)) in
    (* l1 <= lm minimizing over levels satisfying the sqrt budget (LT
       guarantees one exists); fall back to the minimizer otherwise. *)
    let pick lo hi budget slack_of =
      let best = ref lo and best_val = ref infinity in
      for l = lo to hi do
        let v = float_of_int (level_size l + (2 * slack_of l)) in
        if v < !best_val then begin
          best_val := v;
          best := l
        end
      done;
      ignore budget;
      !best
    in
    let l1 = pick 0 lm budget_top (fun l -> lm - l) in
    let l2 = pick (lm + 1) (h + 1) budget_bot (fun l -> l - lm - 1) in
    (* levels h+1 .. empty: an l2 beyond the depth means no bottom cut *)
    let levels_sep =
      level_members.(l1)
      @ (if l2 <= h then level_members.(l2) else [])
    in
    let middle = ref [] in
    for l = l1 + 1 to min (l2 - 1) h do
      middle := level_members.(l) @ !middle
    done;
    let middle = !middle in
    if 3 * List.length middle <= 2 * n then result_of g levels_sep
    else begin
      (* Phase 2: fundamental cycle in the shrunken middle graph. *)
      let mid_idx = Hashtbl.create (List.length middle) in
      List.iteri (fun i v -> Hashtbl.replace mid_idx v i) middle;
      let mid_arr = Array.of_list middle in
      let r = Array.length mid_arr in
      (* r is the contracted top ball *)
      let edges = ref [] in
      List.iter
        (fun v ->
          let iv = Hashtbl.find mid_idx v in
          Array.iter
            (fun w ->
              match Hashtbl.find_opt mid_idx w with
              | Some iw -> if iv < iw then edges := (iv, iw) :: !edges
              | None ->
                  if bt.Traverse.dist.(w) <= l1 then edges := (iv, r) :: !edges)
            (Gr.neighbors g v))
        middle;
      let shrunk = Gr.of_edges ~n:(r + 1) !edges in
      let tri = triangulate shrunk in
      let tbt = Traverse.bfs tri r in
      (* Candidate separators: levels plus each fundamental cycle's
         original vertices; keep the best balance, stop at <= 2/3. *)
      let tree_edge u v =
        tbt.Traverse.parent.(u) = v || tbt.Traverse.parent.(v) = u
      in
      let best = ref (result_of g levels_sep) in
      (try
         Gr.iter_edges tri (fun u v ->
             if not (tree_edge u v) then begin
               let cyc = fundamental_cycle tbt u v in
               let cyc_orig =
                 List.filter_map
                   (fun x -> if x < r then Some mid_arr.(x) else None)
                   cyc
               in
               let cand = result_of g (levels_sep @ cyc_orig) in
               if cand.balance < !best.balance then best := cand;
               if 3.0 *. !best.balance <= 2.0 then raise Exit
             end)
       with Exit -> ());
      !best
    end
  end

let check g t =
  let n = Gr.n g in
  let where = Array.make n (-2) in
  List.iter (fun v -> where.(v) <- -1) t.separator;
  let ok = ref true in
  List.iteri
    (fun i comp ->
      List.iter
        (fun v -> if where.(v) <> -2 then ok := false else where.(v) <- i)
        comp;
      (* Each component is connected. *)
      let (h, _, _) = Gr.induced g comp in
      if not (Traverse.is_connected h) then ok := false)
    t.components;
  (* Exact cover. *)
  Array.iter (fun w -> if w = -2 then ok := false) where;
  (* No edge between two different components. *)
  Gr.iter_edges g (fun u v ->
      if where.(u) >= 0 && where.(v) >= 0 && where.(u) <> where.(v) then
        ok := false);
  let biggest =
    List.fold_left (fun acc c -> max acc (List.length c)) 0 t.components
  in
  if abs_float (t.balance -. (float_of_int biggest /. float_of_int (max 1 n)))
     > 1e-9
  then ok := false;
  !ok
