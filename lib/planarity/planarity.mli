(** The planarity front: one [embed] entry point for every production
    caller, dispatching to a kernel.

    The default kernel is the linear-time left-right algorithm ({!Lr});
    the quadratic {!Dmp} kernel stays available behind the same
    interface as the differential oracle (the same pattern as the
    legacy [Network.run] shim kept beside [Network.exec]). Production
    code — [Baseline], [Separator], [Iface], [Constrained],
    [Kuratowski], the benches and the CLI — goes through this module;
    only the test suite and the kernel bench call {!Dmp} directly. *)

type result = Dmp.result = Planar of Rotation.t | Nonplanar
(** Re-exported from {!Dmp} so existing pattern matches keep working
    across the kernel swap. *)

type kernel =
  | LR  (** the linear-time left-right kernel ({!Lr}). *)
  | DMP  (** the quadratic oracle ({!Dmp}). *)

val default_kernel : kernel
(** [LR], unless the environment variable [DISTPLANAR_KERNEL] is set to
    ["dmp"] (read once at startup — an operational escape hatch for
    differential debugging without a rebuild).
    @raise Invalid_argument at module init on an unknown value. *)

val kernel_name : kernel -> string
val kernel_of_string : string -> kernel option

val embed : ?kernel:kernel -> Gr.t -> result
(** Planarity test plus embedding. Any simple graph, connected or not.
    Accepted LR rotations have passed the face-tracing Euler check. *)

val is_planar : ?kernel:kernel -> Gr.t -> bool

val embed_exn : ?kernel:kernel -> Gr.t -> Rotation.t
(** @raise Invalid_argument if the graph is not planar. *)
