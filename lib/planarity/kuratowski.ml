type kind = K5 | K33

let pp_kind ppf = function
  | K5 -> Format.pp_print_string ppf "K5"
  | K33 -> Format.pp_print_string ppf "K3,3"

let witness g =
  if Planarity.is_planar g then None
  else begin
    let n = Gr.n g in
    (* One pass: drop every edge whose removal keeps the graph non-planar.
       Each surviving edge was tested against a superset of the final set,
       so its removal from the final set leaves a subgraph of a planar
       graph — every survivor is critical.

       One shared edge array with an exclusion mask: each probe flips a
       single mask bit and runs the LR test straight off the masked
       array ([Lr.is_planar_edges] builds its CSR from it without
       constructing a [Gr.t]), instead of rebuilding the whole graph
       per candidate deletion. *)
    let edges = Array.of_list (Gr.edges g) in
    let mask = Array.make (Array.length edges) true in
    Array.iteri
      (fun i _ ->
        mask.(i) <- false;
        (* still non-planar without edge i: drop it for good (leave the
           bit off); otherwise the edge is critical — restore it. *)
        if Lr.is_planar_edges ~n edges ~mask then mask.(i) <- true)
      edges;
    let kept = ref [] in
    for i = Array.length edges - 1 downto 0 do
      if mask.(i) then kept := edges.(i) :: !kept
    done;
    Some !kept
  end

(* Suppress degree-2 vertices: replace every maximal path whose interior
   vertices have degree 2 by a single edge between its branch endpoints.
   Returns the branch vertices (old ids) and the edges between them, or
   None if suppression creates a self-loop or a parallel edge (then the
   input was not a subdivision of a simple branch graph). *)
let suppress g edges =
  let n = Gr.n g in
  let h = Gr.of_edges ~n edges in
  let branch v = Gr.degree h v >= 3 in
  let branches =
    List.filter branch (List.init n (fun v -> v))
  in
  if branches = [] then None
  else begin
    let result_edges = ref [] in
    let seen = Hashtbl.create 16 in
    let ok = ref true in
    (* Walk from each branch vertex along each incident path. *)
    List.iter
      (fun b ->
        Array.iter
          (fun first ->
            (* Follow the path b - first - ... until the next branch. *)
            let rec walk prev cur =
              if branch cur then cur
              else
                match Array.to_list (Gr.neighbors h cur) with
                | [ a; c ] -> walk cur (if a = prev then c else a)
                | _ ->
                    (* A dangling degree-1 path: not a subdivision. *)
                    ok := false;
                    cur
            in
            let other = walk b first in
            if !ok then begin
              if other = b then ok := false (* self-loop after suppression *)
              else begin
                let e = Gr.normalize_edge b other in
                (* Each path is seen from both ends; also reject parallel
                   paths between the same pair (key on the path's first
                   interior vertex to tell walks apart). *)
                let key = (e, min (min b first) other) in
                ignore key;
                if List.mem e !result_edges then begin
                  if Hashtbl.mem seen (e, 2) then ok := false
                  else Hashtbl.replace seen (e, 2) ()
                end
                else result_edges := e :: !result_edges
              end
            end)
          (Gr.neighbors h b))
      branches;
    if not !ok then None else Some (branches, !result_edges)
  end

let classify g edges =
  match suppress g edges with
  | None -> None
  | Some (branches, core_edges) -> (
      let k = List.length branches in
      let deg b =
        List.length (List.filter (fun (u, v) -> u = b || v = b) core_edges)
      in
      (* Also require the witness to use exactly the subdivision's edges:
         the degree-2 interior vertices are implied by the walks. *)
      match k, List.length core_edges with
      | 5, 10 when List.for_all (fun b -> deg b = 4) branches -> Some K5
      | 6, 9 when List.for_all (fun b -> deg b = 3) branches ->
          (* Check bipartiteness of the 6-vertex core. *)
          let idx = Hashtbl.create 6 in
          List.iteri (fun i b -> Hashtbl.replace idx b i) branches;
          let core =
            Gr.of_edges ~n:6
              (List.map
                 (fun (u, v) -> (Hashtbl.find idx u, Hashtbl.find idx v))
                 core_edges)
          in
          let color = Array.make 6 (-1) in
          let bipartite = ref true in
          let queue = Queue.create () in
          color.(0) <- 0;
          Queue.add 0 queue;
          while not (Queue.is_empty queue) do
            let v = Queue.pop queue in
            Array.iter
              (fun w ->
                if color.(w) < 0 then begin
                  color.(w) <- 1 - color.(v);
                  Queue.add w queue
                end
                else if color.(w) = color.(v) then bipartite := false)
              (Gr.neighbors core v)
          done;
          if !bipartite then Some K33 else None
      | _ -> None)

let witness_exn g =
  match witness g with
  | None -> invalid_arg "Kuratowski.witness_exn: the graph is planar"
  | Some edges -> (
      match classify g edges with
      | Some kind -> (edges, kind)
      | None ->
          invalid_arg
            "Kuratowski.witness_exn: extracted witness failed verification")
