(** Centralized planarity testing and embedding:
    the Demoucron–Malgrange–Pertuiset (DMP) algorithm.

    This is the repository's stand-in for the Hopcroft–Tarjan linear-time
    embedder the paper cites as the centralized baseline ([HT74]): DMP is
    quadratic but simple enough to be convincingly correct, which matters
    more here — it anchors the correctness of every distributed run (the
    CONGEST model grants nodes free local computation; the paper's footnote
    3 only requires poly(n)).

    The algorithm embeds each biconnected component separately (starting
    from a cycle and iteratively routing a path of some unembedded fragment
    through an admissible face) and then combines the blocks' rotations at
    cut vertices, which is always possible planarly. *)

type result =
  | Planar of Rotation.t  (** a verified-shape rotation system. *)
  | Nonplanar

exception
  No_progress of {
    fragments : int;  (** fragments still alive when the loop stalled. *)
    faces : int;  (** faces of the partial embedding at that point. *)
    embedded_edges : int;  (** edges already routed into the embedding. *)
    total_edges : int;  (** edges of the biconnected component. *)
  }
(** Raised if the fragment-embedding loop of a biconnected component stops
    making progress — an internal invariant violation, never expected on
    any input. The payload snapshots the loop state for diagnosis instead
    of a bare [Failure] string. *)

val embed : Gr.t -> result
(** Planarity test plus embedding. Works on any simple graph, connected or
    not (each component is embedded independently). *)

val is_planar : Gr.t -> bool

val embed_exn : Gr.t -> Rotation.t
(** @raise Invalid_argument if the graph is not planar. *)
