type result = Dmp.result = Planar of Rotation.t | Nonplanar

type kernel = LR | DMP

let kernel_name = function LR -> "lr" | DMP -> "dmp"

let kernel_of_string s =
  match String.lowercase_ascii s with
  | "lr" | "left-right" | "leftright" -> Some LR
  | "dmp" -> Some DMP
  | _ -> None

(* One env lookup at module initialization: the dispatch itself must stay
   free of per-call overhead (it sits under every embed of every sweep). *)
let default_kernel =
  match Sys.getenv_opt "DISTPLANAR_KERNEL" with
  | None -> LR
  | Some s -> (
      match kernel_of_string s with
      | Some k -> k
      | None ->
          invalid_arg
            (Printf.sprintf
               "DISTPLANAR_KERNEL=%S: unknown kernel (expected \"lr\" or \
                \"dmp\")"
               s))

let embed ?(kernel = default_kernel) g =
  match kernel with
  | DMP -> Dmp.embed g
  | LR -> (
      match Lr.embed g with
      | Lr.Planar r -> Planar r
      | Lr.Nonplanar -> Nonplanar)

let is_planar ?(kernel = default_kernel) g =
  match kernel with DMP -> Dmp.is_planar g | LR -> Lr.is_planar g

let embed_exn ?(kernel = default_kernel) g =
  match embed ~kernel g with
  | Planar r -> r
  | Nonplanar -> invalid_arg "Planarity.embed_exn: graph is not planar"
