type result = Planar of Rotation.t | Nonplanar

exception Reject

exception
  No_progress of {
    fragments : int;
    faces : int;
    embedded_edges : int;
    total_edges : int;
  }

(* A face of the partial embedding: a directed simple cycle of vertices.
   The embedded subgraph stays biconnected throughout (cycle + successive
   paths between embedded vertices), so boundaries are simple cycles. *)
type face = { cyc : int array; vset : (int, unit) Hashtbl.t }

let make_face cyc =
  let vset = Hashtbl.create (Array.length cyc) in
  Array.iter (fun v -> Hashtbl.replace vset v ()) cyc;
  { cyc; vset }

(* Find a cycle in a biconnected graph (n >= 3) by DFS: the first back edge
   closes a cycle with the tree path. Iterative to survive deep graphs. *)
let find_cycle g =
  let n = Gr.n g in
  let parent = Array.make n (-1) in
  let state = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let found = ref None in
  let stack = Stack.create () in
  state.(0) <- 1;
  Stack.push (0, ref 0) stack;
  while !found = None && not (Stack.is_empty stack) do
    let (u, next) = Stack.top stack in
    let nbrs = Gr.neighbors g u in
    if !next < Array.length nbrs then begin
      let w = nbrs.(!next) in
      incr next;
      if state.(w) = 0 then begin
        parent.(w) <- u;
        state.(w) <- 1;
        Stack.push (w, ref 0) stack
      end
      else if state.(w) = 1 && w <> parent.(u) then begin
        let rec up v acc = if v = w then v :: acc else up parent.(v) (v :: acc) in
        found := Some (up u [])
      end
    end
    else begin
      state.(u) <- 2;
      ignore (Stack.pop stack)
    end
  done;
  match !found with
  | Some c -> Array.of_list c
  | None -> invalid_arg "Dmp.find_cycle: acyclic graph"

(* A fragment relative to the embedded subgraph: either a chord (a single
   unembedded edge between embedded vertices) or a connected component of
   unembedded vertices together with its attachment vertices.

   Fragments are persistent across rounds: embedding a chord leaves all
   other fragments untouched, and embedding a path through a component
   fragment only that fragment is re-split — no global recomputation.
   Admissibility (which faces contain all attachments) is tracked lazily:
   each fragment remembers up to two admissible faces, and is rescanned
   only when one of them is destroyed by a face split (a watcher list per
   face triggers the rescan). *)
type fragment = {
  fid : int;
  attachments : int list;
  fvertices : int list;  (** unembedded component; [] for a chord. *)
  fchord : (int * int) option;
  mutable tracked : int list;  (** <= 2 alive admissible face ids. *)
  mutable falive : bool;
  mutable queued : bool;  (** already waiting for a rescan. *)
}

(* Split face [f] along the path [p] = [a; ...; b], where a and b lie on
   the face boundary. Returns the two replacement faces. *)
let split_face f p =
  let cyc = f.cyc in
  let k = Array.length cyc in
  let a = List.hd p in
  let b = List.nth p (List.length p - 1) in
  let pos v =
    let r = ref (-1) in
    Array.iteri (fun i x -> if x = v then r := i) cyc;
    if !r < 0 then invalid_arg "Dmp.split_face: endpoint not on face";
    !r
  in
  let ia = pos a and ib = pos b in
  let arc i j =
    let len = ((j - i + k) mod k) + 1 in
    Array.init len (fun t -> cyc.((i + t) mod k))
  in
  let interior = List.tl (List.rev (List.tl (List.rev p))) in
  let f1 = Array.append (arc ia ib) (Array.of_list (List.rev interior)) in
  let f2 = Array.append (arc ib ia) (Array.of_list interior) in
  (make_face f1, make_face f2)

let embed_biconnected g =
  let n = Gr.n g and m = Gr.m g in
  if m = 1 then begin
    let (u, v) = Gr.edge_of_index g 0 in
    let rot = Array.make n [||] in
    rot.(u) <- [| v |];
    rot.(v) <- [| u |];
    rot
  end
  else begin
    if n >= 3 && m > (3 * n) - 6 then raise Reject;
    let embedded_v = Array.make n false in
    let embedded_e = Array.make m false in
    (* ---- face store ---- *)
    let faces_alive : (int, face) Hashtbl.t = Hashtbl.create 64 in
    let by_vertex : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    (* Number of alive faces incident to each vertex, so fragments can be
       scanned from their least-crowded attachment (a high-degree vertex
       like the apex of the constrained embedder can sit on Θ(deg) faces,
       and anchoring scans there would be quadratic). *)
    let face_count_at = Array.make n 0 in
    let next_face = ref 0 in
    let add_face f =
      let id = !next_face in
      incr next_face;
      Hashtbl.replace faces_alive id f;
      Array.iter
        (fun v ->
          face_count_at.(v) <- face_count_at.(v) + 1;
          let prev = try Hashtbl.find by_vertex v with Not_found -> [] in
          Hashtbl.replace by_vertex v (id :: prev))
        f.cyc;
      id
    in
    let faces_at v =
      let ids = try Hashtbl.find by_vertex v with Not_found -> [] in
      let fresh = List.filter (Hashtbl.mem faces_alive) ids in
      if List.length fresh < List.length ids then
        Hashtbl.replace by_vertex v fresh;
      fresh
    in
    (* ---- fragment store ---- *)
    let frag_tbl : (int, fragment) Hashtbl.t = Hashtbl.create 64 in
    let next_frag = ref 0 in
    let alive_frags = Stack.create () in
    let ones = Stack.create () in
    let need_scan = Stack.create () in
    let watchers : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let n_alive = ref 0 in
    let add_fragment ~attachments ~fvertices ~fchord =
      let fid = !next_frag in
      incr next_frag;
      if attachments = [] then raise Reject;
      let f =
        {
          fid;
          attachments;
          fvertices;
          fchord;
          tracked = [];
          falive = true;
          queued = true;
        }
      in
      Hashtbl.replace frag_tbl fid f;
      Stack.push fid alive_frags;
      Stack.push fid need_scan;
      incr n_alive
    in
    let kill_fragment f =
      if f.falive then begin
        f.falive <- false;
        decr n_alive
      end
    in
    (* Registration is deduplicated: a fragment re-scanned many times while
       a popular face stays alive must not pile up watcher entries (that
       cascade was quadratic). *)
    let watch_set : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let watch face_id fid =
      if not (Hashtbl.mem watch_set (face_id, fid)) then begin
        Hashtbl.replace watch_set (face_id, fid) ();
        match Hashtbl.find_opt watchers face_id with
        | Some l -> l := fid :: !l
        | None -> Hashtbl.replace watchers face_id (ref [ fid ])
      end
    in
    let request_scan f =
      if f.falive && not f.queued then begin
        f.queued <- true;
        Stack.push f.fid need_scan
      end
    in
    (* Rescan a fragment's admissible faces (all candidate faces contain
       its anchor attachment). Raises Reject when none qualifies. *)
    let scan f =
      f.queued <- false;
      if f.falive then begin
        (* Anchor at the attachment incident to the fewest alive faces. *)
        let a0 =
          match f.attachments with
          | [] -> raise Reject
          | a :: rest ->
              List.fold_left
                (fun best a ->
                  if face_count_at.(a) < face_count_at.(best) then a else best)
                a rest
        in
        let found = ref [] in
        let count = ref 0 in
        List.iter
          (fun id ->
            if !count < 2 then begin
              let face = Hashtbl.find faces_alive id in
              if List.for_all (fun a -> Hashtbl.mem face.vset a) f.attachments
              then begin
                incr count;
                found := id :: !found
              end
            end)
          (faces_at a0);
        if !count = 0 then raise Reject;
        f.tracked <- !found;
        List.iter (fun id -> watch id f.fid) !found;
        if !count = 1 then Stack.push f.fid ones
      end
    in
    let drain_scans () =
      while not (Stack.is_empty need_scan) do
        let fid = Stack.pop need_scan in
        scan (Hashtbl.find frag_tbl fid)
      done
    in
    let kill_face face_id =
      (match Hashtbl.find_opt faces_alive face_id with
      | Some f ->
          Array.iter
            (fun v -> face_count_at.(v) <- face_count_at.(v) - 1)
            f.cyc
      | None -> ());
      Hashtbl.remove faces_alive face_id;
      (match Hashtbl.find_opt watchers face_id with
      | Some l ->
          List.iter
            (fun fid ->
              Hashtbl.remove watch_set (face_id, fid);
              request_scan (Hashtbl.find frag_tbl fid))
            !l;
          Hashtbl.remove watchers face_id
      | None -> ())
    in
    (* Choose the next fragment: one with a unique admissible face if any
       exists (after draining rescans this information is exact), else an
       arbitrary alive fragment. *)
    let choose () =
      drain_scans ();
      let result = ref None in
      while !result = None && not (Stack.is_empty ones) do
        let fid = Stack.pop ones in
        let f = Hashtbl.find frag_tbl fid in
        if
          f.falive
          && List.length f.tracked = 1
          && List.for_all (Hashtbl.mem faces_alive) f.tracked
        then result := Some f
      done;
      while !result = None do
        if Stack.is_empty alive_frags then raise Reject;
        let fid = Stack.pop alive_frags in
        let f = Hashtbl.find frag_tbl fid in
        if f.falive then begin
          (* Push back: the fragment survives until consumed. *)
          Stack.push fid alive_frags;
          result := Some f
        end
      done;
      match !result with Some f -> f | None -> assert false
    in
    (* Path through a component fragment from its anchor to another
       attachment, interior confined to the fragment's own vertices. *)
    let fragment_path f =
      match f.fchord with
      | Some (u, v) -> [ u; v ]
      | None ->
          let in_frag = Hashtbl.create (List.length f.fvertices) in
          List.iter (fun v -> Hashtbl.replace in_frag v ()) f.fvertices;
          let a = List.hd f.attachments in
          let prev = Hashtbl.create 16 in
          let queue = Queue.create () in
          let target = ref (-1) in
          Array.iter
            (fun w ->
              if Hashtbl.mem in_frag w && not (Hashtbl.mem prev w) then begin
                Hashtbl.replace prev w a;
                Queue.add w queue
              end)
            (Gr.neighbors g a);
          while !target < 0 && not (Queue.is_empty queue) do
            let v = Queue.pop queue in
            let nbrs = Gr.neighbors g v in
            let i = ref 0 in
            while !target < 0 && !i < Array.length nbrs do
              let w = nbrs.(!i) in
              incr i;
              if embedded_v.(w) then begin
                if w <> a then begin
                  Hashtbl.replace prev w v;
                  target := w
                end
              end
              else if Hashtbl.mem in_frag w && not (Hashtbl.mem prev w) then begin
                Hashtbl.replace prev w v;
                Queue.add w queue
              end
            done
          done;
          if !target < 0 then
            invalid_arg "Dmp: fragment with a single attachment (not biconnected?)";
          let rec back v acc =
            if v = a then v :: acc else back (Hashtbl.find prev v) (v :: acc)
          in
          back !target []
    in
    (* Discover the fragments inside a vertex set (all unembedded):
       connected components with their embedded attachments. *)
    let add_component_fragments vertex_pool =
      let pool = Hashtbl.create (List.length vertex_pool) in
      List.iter
        (fun v -> if not embedded_v.(v) then Hashtbl.replace pool v ())
        vertex_pool;
      let seen = Hashtbl.create (Hashtbl.length pool) in
      List.iter
        (fun s ->
          if Hashtbl.mem pool s && not (Hashtbl.mem seen s) then begin
            let comp = ref [] in
            let attach = Hashtbl.create 8 in
            let queue = Queue.create () in
            Hashtbl.replace seen s ();
            Queue.add s queue;
            while not (Queue.is_empty queue) do
              let v = Queue.pop queue in
              comp := v :: !comp;
              Array.iter
                (fun w ->
                  if embedded_v.(w) then Hashtbl.replace attach w ()
                  else if Hashtbl.mem pool w && not (Hashtbl.mem seen w) then begin
                    Hashtbl.replace seen w ();
                    Queue.add w queue
                  end)
                (Gr.neighbors g v)
            done;
            let attachments = Hashtbl.fold (fun v () acc -> v :: acc) attach [] in
            add_fragment ~attachments ~fvertices:!comp ~fchord:None
          end)
        vertex_pool
    in
    let add_chords_around newly_embedded =
      let seen_edges = Hashtbl.create 8 in
      List.iter
        (fun x ->
          Array.iter
            (fun y ->
              if embedded_v.(y) then begin
                let e = Gr.edge_index g x y in
                if (not embedded_e.(e)) && not (Hashtbl.mem seen_edges e) then begin
                  Hashtbl.replace seen_edges e ();
                  add_fragment ~attachments:[ x; y ] ~fvertices:[]
                    ~fchord:(Some (x, y))
                end
              end)
            (Gr.neighbors g x))
        newly_embedded
    in
    let embed_path p =
      let rec go = function
        | u :: (v :: _ as rest) ->
            embedded_e.(Gr.edge_index g u v) <- true;
            go rest
        | [ _ ] | [] -> ()
      in
      List.iter (fun v -> embedded_v.(v) <- true) p;
      go p
    in
    (* ---- initialization: a cycle and the fragments around it ---- *)
    let cycle = find_cycle g in
    Array.iter (fun v -> embedded_v.(v) <- true) cycle;
    let k = Array.length cycle in
    for i = 0 to k - 1 do
      embedded_e.(Gr.edge_index g cycle.(i) cycle.((i + 1) mod k)) <- true
    done;
    ignore (add_face (make_face cycle));
    ignore
      (add_face (make_face (Array.of_list (List.rev (Array.to_list cycle)))));
    add_component_fragments (List.init n (fun v -> v));
    add_chords_around (Array.to_list cycle);
    let remaining = ref (m - k) in
    let guard = ref 0 in
    while !remaining > 0 do
      incr guard;
      if !guard > (4 * m) + 16 then
        raise
          (No_progress
             {
               fragments = !n_alive;
               faces = Hashtbl.length faces_alive;
               embedded_edges = m - !remaining;
               total_edges = m;
             });
      let frag = choose () in
      let face_id =
        match frag.tracked with
        | id :: _ -> id
        | [] -> assert false
      in
      let face = Hashtbl.find faces_alive face_id in
      let p = fragment_path frag in
      embed_path p;
      remaining := !remaining - (List.length p - 1);
      kill_fragment frag;
      (* Face bookkeeping: the chosen face dies, its watchers rescan. *)
      let (f1, f2) = split_face face p in
      kill_face face_id;
      ignore (add_face f1);
      ignore (add_face f2);
      (* Fragment bookkeeping: only the consumed fragment's area changes. *)
      (match frag.fchord with
      | Some _ -> ()
      | None ->
          let interior =
            match p with
            | _ :: rest -> List.filter (fun v -> List.mem v frag.fvertices) rest
            | [] -> []
          in
          add_component_fragments frag.fvertices;
          add_chords_around interior)
    done;
    (* All edges embedded: no fragment can survive. *)
    assert (!n_alive = 0);
    (* Extract the rotation system: every consecutive u -> v -> w on a face
       defines succ_v(u) = w; following succ from any neighbor enumerates
       the cyclic order at v. *)
    let succ = Hashtbl.create (2 * m) in
    Hashtbl.iter
      (fun _id f ->
        let c = f.cyc in
        let k = Array.length c in
        for i = 0 to k - 1 do
          let u = c.(i) and v = c.((i + 1) mod k) and w = c.((i + 2) mod k) in
          Hashtbl.replace succ (v, u) w
        done)
      faces_alive;
    Array.init n (fun v ->
        let deg = Gr.degree g v in
        if deg = 0 then [||]
        else begin
          let first = (Gr.neighbors g v).(0) in
          let rot = Array.make deg first in
          for i = 1 to deg - 1 do
            rot.(i) <- Hashtbl.find succ (v, rot.(i - 1))
          done;
          assert (Hashtbl.find succ (v, rot.(deg - 1)) = first);
          rot
        end)
  end

let embed g =
  let n = Gr.n g in
  try
    let rot = Array.make n [||] in
    let have = Array.make n 0 in
    let dec = Bicon.decompose g in
    for v = 0 to n - 1 do
      rot.(v) <- Array.make (Gr.degree g v) (-1)
    done;
    for c = 0 to dec.Bicon.n_components - 1 do
      let vs = Bicon.component_vertices dec c in
      let (h, old_of_new, _new_of_old) = Gr.induced g vs in
      let sub_rot = embed_biconnected h in
      (* Concatenate this block's rotation at each of its vertices after
         whatever previous blocks contributed: blocks sharing a vertex can
         always be nested planarly into a corner of each other. *)
      Array.iteri
        (fun i r ->
          let v = old_of_new.(i) in
          Array.iter
            (fun w_new ->
              rot.(v).(have.(v)) <- old_of_new.(w_new);
              have.(v) <- have.(v) + 1)
            r)
        sub_rot
    done;
    for v = 0 to n - 1 do
      assert (have.(v) = Gr.degree g v)
    done;
    Planar (Rotation.make g rot)
  with Reject -> Nonplanar

let is_planar g = match embed g with Planar _ -> true | Nonplanar -> false

let embed_exn g =
  match embed g with
  | Planar r -> r
  | Nonplanar -> invalid_arg "Dmp.embed_exn: graph is not planar"
