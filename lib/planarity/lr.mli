(** Linear-time planarity testing and embedding: the left-right
    (de Fraysseix–Rosenstiehl / Brandes) algorithm.

    This is the production kernel behind {!Planarity.embed}: a DFS
    orientation with lowpoints and nesting-order sorted adjacency lists,
    the conflict-pair constraint stack, and rotation-system extraction
    from the resolved left/right edge sides. It replaces the quadratic
    {!Dmp} kernel on every hot path; DMP stays as the differential
    oracle (simple enough to be convincingly correct), and every
    rotation this module returns has already passed the independent
    face-tracing Euler check in {!Rotation}. *)

type result =
  | Planar of Rotation.t  (** a rotation system verified genus 0. *)
  | Nonplanar

exception Embedding_invalid of string
(** Internal-inconsistency alarm: the constraint phase accepted the
    input but the extracted rotation failed validation. Never raised on
    a correct build; it exists so a kernel bug cannot silently pass an
    invalid embedding downstream. *)

val embed : Gr.t -> result
(** Planarity test plus embedding, in [O(n + m)] time. Works on any
    simple graph, connected or not (each component roots its own DFS).
    Accepted inputs are re-validated by {!Rotation.is_planar_embedding}
    before being returned. *)

val is_planar : Gr.t -> bool
(** The test alone (orientation + constraint phases, no embedding
    extraction): the cheapest verdict, used by deletion loops such as
    {!Kuratowski.witness}. *)

val embed_exn : Gr.t -> Rotation.t
(** @raise Invalid_argument if the graph is not planar. *)

val is_planar_edges : n:int -> Gr.edge array -> mask:bool array -> bool
(** [is_planar_edges ~n edges ~mask] tests the graph on [n] vertices
    whose edge set is [edges.(i)] for every [i] with [mask.(i)]. The
    CSR adjacency is built directly from the masked array — no [Gr.t]
    construction, no sorting — so a caller probing many single-edge
    deletions (e.g. Kuratowski witness extraction) can reuse one edge
    array and flip mask bits in O(1) between probes. Edges must be
    normalized and duplicate-free among the unmasked entries. *)
