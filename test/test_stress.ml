(* Stress and failure-injection tests: extreme shapes (deep paths, huge
   stars, bridge-heavy caterpillars), tight bandwidth budgets, determinism
   of the pipeline, and degenerate sizes. These guard the iterative
   implementations (no stack overflows on Theta(n)-diameter graphs) and
   the simulator's model enforcement. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let embed_verified g =
  match (Embedder.run ~mode:Part.Economy g).Embedder.rotation with
  | None -> Alcotest.fail "planar input rejected"
  | Some r ->
      check_bool "genus 0" true (Rotation.is_planar_embedding r);
      r

(* ------------------------------------------------------------------ *)
(* Extreme shapes                                                      *)
(* ------------------------------------------------------------------ *)

let test_long_path () =
  (* Theta(n) diameter: exercises the iterative DFS/BFS code paths and the
     D-branch of min(log n, D). *)
  ignore (embed_verified (Gen.path 3000))

let test_long_cycle () = ignore (embed_verified (Gen.cycle 2500))

let test_huge_star () =
  let r = embed_verified (Gen.star 2000) in
  check "hub degree" 1999 (Array.length (Rotation.rotation r 0))

let test_caterpillar () =
  (* A path with a leaf at every vertex: n-1 bridges, every internal
     vertex is a cut vertex. *)
  let n = 500 in
  let spine = List.init (n - 1) (fun i -> (i, i + 1)) in
  let legs = List.init n (fun i -> (i, n + i)) in
  let g = Gr.of_edges ~n:(2 * n) (spine @ legs) in
  ignore (embed_verified g)

let test_deep_binary_tree () = ignore (embed_verified (Gen.binary_tree 2047))

let test_dense_maximal_planar () =
  let g = Gen.random_maximal_planar ~seed:31 1500 in
  let r = embed_verified g in
  (* Triangulations have exactly 2n - 4 faces. *)
  check "faces" ((2 * 1500) - 4) (Rotation.face_count r)

let test_large_nonplanar_rejected () =
  (* A big planar graph with one K5 wired into a corner. *)
  let g = Gen.random_maximal_planar ~seed:5 800 in
  let off = Gr.n g in
  let k5 = List.map (fun (u, v) -> (u + off, v + off)) (Gr.edges (Gen.k5 ())) in
  let bad = Gr.of_edges ~n:(off + 5) (((0, off) :: k5) @ Gr.edges g) in
  check_bool "rejected" true ((Embedder.run ~mode:Part.Economy bad).Embedder.rotation = None)

(* ------------------------------------------------------------------ *)
(* Bandwidth limits                                                    *)
(* ------------------------------------------------------------------ *)

let test_tight_bandwidth_ok () =
  (* The election messages are exactly 2 words; a budget of exactly two
     words must work and simply cost more rounds downstream. *)
  let g = Gen.grid 5 5 in
  let word = Part.word g in
  let o =
    Embedder.run ~config:(Network.Config.make ~bandwidth:(2 * word) ()) g
  in
  check_bool "planar" true (o.Embedder.rotation <> None);
  let fat =
    Embedder.run ~config:(Network.Config.make ~bandwidth:(64 * word) ()) g
  in
  check_bool "tight costs at least as much" true
    (o.Embedder.report.Embedder.rounds
    >= fat.Embedder.report.Embedder.rounds)

let test_too_tight_bandwidth_detected () =
  (* One word cannot carry the 2-word election message: the simulator must
     enforce the model rather than silently cheat. *)
  let g = Gen.grid 4 4 in
  let word = Part.word g in
  (try
     ignore (Embedder.run ~config:(Network.Config.make ~bandwidth:word ()) g);
     Alcotest.fail "expected Bandwidth_exceeded"
   with Network.Bandwidth_exceeded _ -> ())

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let rotations_equal r1 r2 g =
  let ok = ref true in
  for v = 0 to Gr.n g - 1 do
    if Rotation.rotation r1 v <> Rotation.rotation r2 v then ok := false
  done;
  !ok

let test_deterministic () =
  (* The algorithm is deterministic: two runs agree bit for bit. *)
  let g = Gen.random_maximal_planar ~seed:77 300 in
  let r1 = embed_verified g and r2 = embed_verified g in
  check_bool "same rotations" true (rotations_equal r1 r2 g);
  let o1 = Embedder.run ~mode:Part.Economy g
  and o2 = Embedder.run ~mode:Part.Economy g in
  check "same rounds" o1.Embedder.report.Embedder.rounds
    o2.Embedder.report.Embedder.rounds

(* ------------------------------------------------------------------ *)
(* Degenerate sizes                                                    *)
(* ------------------------------------------------------------------ *)

let test_tiny_graphs () =
  for n = 1 to 6 do
    let g = Gen.path n in
    ignore (embed_verified g)
  done;
  ignore (embed_verified (Gen.cycle 3));
  (try
     ignore (Embedder.run (Gr.empty 0));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_separator_tiny () =
  List.iter
    (fun n ->
      let s = Separator.separate (Gen.path n) in
      check_bool "check" true (Separator.check (Gen.path n) s))
    [ 1; 2; 3; 4; 5 ]

let test_mst_negative_weights () =
  let g = Gen.grid 4 4 in
  let weight u v = ((u * 13) + (v * 7)) mod 11 - 5 in
  let (mst, _) = Mst.run ~weight g in
  check_bool "matches kruskal" true
    (List.sort compare mst = List.sort compare (Mst.kruskal ~weight g))

(* ------------------------------------------------------------------ *)
(* Faithful mode at depth                                              *)
(* ------------------------------------------------------------------ *)

let test_faithful_with_checks_medium () =
  (* The most heavily instrumented configuration on a non-toy input. *)
  let g = Gen.random_planar ~seed:3 ~n:250 ~m:480 in
  let o = Embedder.run ~mode:Part.Faithful ~checks:true g in
  (match o.Embedder.rotation with
  | Some r -> check_bool "genus 0" true (Rotation.is_planar_embedding r)
  | None -> Alcotest.fail "rejected planar input");
  check_bool "many validated merges" true
    (o.Embedder.report.Embedder.safety_checks > 100)

let test_grid_shapes () =
  List.iter
    (fun (r, c) -> ignore (embed_verified (Gen.grid r c)))
    [ (1, 50); (2, 40); (3, 3); (50, 2); (7, 31) ]

let () =
  Alcotest.run "stress"
    [
      ( "shapes",
        [
          Alcotest.test_case "long path" `Quick test_long_path;
          Alcotest.test_case "long cycle" `Quick test_long_cycle;
          Alcotest.test_case "huge star" `Quick test_huge_star;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
          Alcotest.test_case "deep binary tree" `Quick test_deep_binary_tree;
          Alcotest.test_case "dense maximal planar" `Quick
            test_dense_maximal_planar;
          Alcotest.test_case "large nonplanar" `Quick
            test_large_nonplanar_rejected;
          Alcotest.test_case "grid shapes" `Quick test_grid_shapes;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "tight ok" `Quick test_tight_bandwidth_ok;
          Alcotest.test_case "too tight detected" `Quick
            test_too_tight_bandwidth_detected;
        ] );
      ( "determinism",
        [ Alcotest.test_case "bit-identical runs" `Quick test_deterministic ] );
      ( "degenerate",
        [
          Alcotest.test_case "tiny graphs" `Quick test_tiny_graphs;
          Alcotest.test_case "tiny separators" `Quick test_separator_tiny;
          Alcotest.test_case "negative weights" `Quick test_mst_negative_weights;
        ] );
      ( "instrumented",
        [
          Alcotest.test_case "faithful+checks" `Quick
            test_faithful_with_checks_medium;
        ] );
    ]
