(* Property sweep over the generator families and the simulator.

   Three groups:
   - rotation validity: on every family in Gen, the embedder's verdict
     matches the centralized DMP verdict, accepted rotations are genus-0,
     and their face count satisfies Euler's formula [n - m + f = 2]
     (computed independently through Dual);
   - determinism & quiescence: running a protocol or the full embedder
     twice on identical inputs yields bit-identical states, round counts
     and per-round metrics, and every tier-1 family quiesces strictly
     before the engine's round limit;
   - delivery order: the documented inbox guarantee (sorted by sender id,
     per-sender outbox order preserved) observed by order-sensitive
     protocols. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rotation validity + Euler across the families                       *)
(* ------------------------------------------------------------------ *)

let euler_holds r =
  let g = Rotation.graph r in
  let d = Dual.make r in
  Gr.n g - Gr.m g + Dual.n_faces d = 2

let verify_family name g =
  let centralized = Dmp.is_planar g in
  let o = Embedder.run g in
  match o.Embedder.rotation with
  | None ->
      check_bool (name ^ ": rejection matches DMP") false centralized
  | Some r ->
      check_bool (name ^ ": acceptance matches DMP") true centralized;
      check_bool (name ^ ": genus 0") true (Rotation.is_planar_embedding r);
      check_bool (name ^ ": Euler n-m+f=2") true (euler_holds r)

let fixed_families =
  [
    ("path 17", Gen.path 17);
    ("cycle 24", Gen.cycle 24);
    ("star 12", Gen.star 12);
    ("complete 4", Gen.complete 4);
    ("complete 5", Gen.complete 5);
    ("K2,3", Gen.complete_bipartite 2 3);
    ("K3,3", Gen.k33 ());
    ("K5", Gen.k5 ());
    ("petersen", Gen.petersen ());
    ("wheel 9", Gen.wheel 9);
    ("ladder 6", Gen.ladder 6);
    ("fan 11", Gen.fan 11);
    ("grid 4x5", Gen.grid 4 5);
    ("triangular grid 3x4", Gen.triangular_grid 3 4);
    ("toroidal grid 3x3", Gen.toroidal_grid 3 3);
    ("binary tree 15", Gen.binary_tree 15);
    ("K4 subdivision 3", Gen.k4_subdivision 3);
    ("subdivided wheel", Gen.subdivide (Gen.wheel 6) 2);
    ("subdivided K5", Gen.subdivide (Gen.k5 ()) 2);
  ]

let test_fixed_families () =
  (* The slowest sweep in the suite: every family runs a full embedder
     pipeline, and the runs are independent — exactly the shape the
     inter-run pool exists for. DOMAINS (the CI multicore job sets it)
     overrides the hardware default; failures unwrap to the underlying
     Alcotest error so the report reads as if the sweep were serial. *)
  let fams = Array.of_list fixed_families in
  let jobs =
    match Option.bind (Sys.getenv_opt "DOMAINS") int_of_string_opt with
    | Some k when k > 0 -> k
    | _ -> Pool.default_jobs ()
  in
  try
    ignore
      (Pool.map ~jobs (Array.length fams) (fun i ->
           let (name, g) = fams.(i) in
           verify_family name g))
  with Pool.Task_failed { exn; _ } -> raise exn

let seed_prop name build =
  QCheck.Test.make ~count:12 ~name
    QCheck.(int_range 0 10_000)
    (fun seed ->
      verify_family (Printf.sprintf "%s seed=%d" name seed) (build seed);
      true)

let random_family_props =
  [
    seed_prop "random tree" (fun seed -> Gen.random_tree ~seed 20);
    seed_prop "random maximal planar" (fun seed ->
        Gen.random_maximal_planar ~seed 30);
    seed_prop "random planar" (fun seed -> Gen.random_planar ~seed ~n:24 ~m:40);
    seed_prop "random outerplanar" (fun seed ->
        Gen.random_outerplanar ~seed ~n:20 ~chord_prob:0.5);
    seed_prop "random connected graph" (fun seed ->
        Gen.random_connected_graph ~seed ~n:16 ~m:24);
  ]

let test_relabelled () =
  (* Vertex numbering must not matter: relabel a grid by a random
     permutation and re-verify. *)
  List.iter
    (fun seed ->
      let g = Gen.grid 4 6 in
      let p = Gen.random_permutation ~seed (Gr.n g) in
      let edges =
        List.map (fun (u, v) -> (p.(u), p.(v))) (Gr.edges g)
      in
      let h = Gr.of_edges ~n:(Gr.n g) edges in
      verify_family (Printf.sprintf "relabelled grid seed=%d" seed) h)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Determinism & quiescence                                            *)
(* ------------------------------------------------------------------ *)

let metrics_equal name a b =
  check (name ^ ": rounds") (Metrics.rounds a) (Metrics.rounds b);
  check (name ^ ": messages") (Metrics.messages a) (Metrics.messages b);
  check (name ^ ": total bits") (Metrics.total_bits a) (Metrics.total_bits b);
  check (name ^ ": max message bits") (Metrics.max_message_bits a)
    (Metrics.max_message_bits b);
  check (name ^ ": max burst") (Metrics.max_round_edge_bits a)
    (Metrics.max_round_edge_bits b);
  check_bool (name ^ ": round log") true
    (Metrics.round_log a = Metrics.round_log b)

let test_protocol_deterministic () =
  List.iter
    (fun (name, g) ->
      let run () =
        let m = Metrics.create g in
        let states =
          Proto.leader_bfs
            ~config:(Network.Config.make ~observe:(Observe.of_metrics m) ())
            g
        in
        (states, m)
      in
      let (s1, m1) = run () in
      let (s2, m2) = run () in
      check_bool (name ^ ": identical states") true (s1 = s2);
      metrics_equal name m1 m2)
    [
      ("grid 6x6", Gen.grid 6 6);
      ("maxplanar 60", Gen.random_maximal_planar ~seed:7 60);
      ("cycle 30", Gen.cycle 30);
    ]

let rotations_equal r1 r2 =
  let g = Rotation.graph r1 in
  let ok = ref true in
  for v = 0 to Gr.n g - 1 do
    if Rotation.rotation r1 v <> Rotation.rotation r2 v then ok := false
  done;
  !ok

let test_embedder_deterministic () =
  List.iter
    (fun (name, g) ->
      let o1 = Embedder.run g in
      let o2 = Embedder.run g in
      let r1 = o1.Embedder.report and r2 = o2.Embedder.report in
      check (name ^ ": rounds") r1.Embedder.rounds r2.Embedder.rounds;
      check (name ^ ": total bits") r1.Embedder.total_bits
        r2.Embedder.total_bits;
      metrics_equal name r1.Embedder.metrics r2.Embedder.metrics;
      match (o1.Embedder.rotation, o2.Embedder.rotation) with
      | Some a, Some b ->
          check_bool (name ^ ": identical rotation") true (rotations_equal a b)
      | None, None -> Alcotest.failf "%s: expected planar" name
      | _ -> Alcotest.failf "%s: runs disagree on planarity" name)
    [
      ("grid 5x6", Gen.grid 5 6);
      ("cycle 30", Gen.cycle 30);
      ("maxplanar 80", Gen.random_maximal_planar ~seed:3 80);
      ("K4 subdivision 4", Gen.k4_subdivision 4);
    ]

let test_quiescence () =
  (* The engine's default limit is 16n + 64; every tier-1 family must
     quiesce strictly below it (leader_bfs is O(D) ≪ that). *)
  List.iter
    (fun (name, g) ->
      let m = Metrics.create g in
      let _ =
        Proto.leader_bfs
          ~config:(Network.Config.make ~observe:(Observe.of_metrics m) ())
          g
      in
      let limit = (16 * Gr.n g) + 64 in
      check_bool
        (Printf.sprintf "%s: quiesced (%d < %d)" name (Metrics.rounds m) limit)
        true
        (Metrics.rounds m < limit))
    [
      ("path 40", Gen.path 40);
      ("cycle 40", Gen.cycle 40);
      ("star 25", Gen.star 25);
      ("grid 7x7", Gen.grid 7 7);
      ("maxplanar 100", Gen.random_maximal_planar ~seed:11 100);
    ]

(* ------------------------------------------------------------------ *)
(* Delivery order                                                      *)
(* ------------------------------------------------------------------ *)

(* Leaves of a star send their id to the center in round 0; the center
   records its inbox verbatim. The documented guarantee says the inbox
   arrives sorted by sender id. *)
let collect_inbox_protocol =
  {
    Network.init =
      (fun _g v -> ([], if v = 0 then [] else [ (0, v) ]));
    round = (fun _g _v st inbox -> (st @ inbox, []));
    msg_bits = (fun _ -> 8);
  }

let test_inbox_sorted_by_sender () =
  let n = 12 in
  let g = Gen.star n in
  let states = (Network.exec g collect_inbox_protocol).Network.states in
  let senders = List.map fst states.(0) in
  check_bool "every leaf heard" true
    (List.length senders = n - 1);
  check_bool "inbox sorted by sender id" true
    (List.sort compare senders = senders)

(* One sender, several messages in one outbox: they must arrive in the
   order the sender listed them. *)
let test_same_sender_order () =
  let g = Gen.path 2 in
  let proto =
    {
      Network.init =
        (fun _g v -> ([], if v = 0 then [ (1, 10); (1, 20); (1, 30) ] else []));
      round = (fun _g _v st inbox -> (st @ inbox, []));
      msg_bits = (fun _ -> 8);
    }
  in
  (* Three messages share the edge in round 0; give them room. *)
  let states =
    (Network.exec ~config:(Network.Config.make ~bandwidth:64 ()) g proto)
      .Network.states
  in
  check_bool "outbox order preserved" true
    (states.(1) = [ (0, 10); (0, 20); (0, 30) ])

(* An order-observing protocol (its state folds the inbox in delivery
   order, non-commutatively) must still be reproducible run to run. *)
let test_order_observing_deterministic () =
  let g = Gen.grid 5 5 in
  let proto =
    {
      Network.init =
        (fun g v ->
          (v, List.map (fun u -> (u, v)) (Array.to_list (Gr.neighbors g v))));
      round =
        (fun _g _v st inbox ->
          (* Non-commutative fold: delivery order changes the state. *)
          (List.fold_left (fun acc (src, x) -> (acc * 31) + (src lxor x)) st inbox,
           []));
      msg_bits = (fun _ -> 16);
    }
  in
  let s1 = (Network.exec g proto).Network.states in
  let s2 = (Network.exec g proto).Network.states in
  check_bool "order-observing states identical" true (s1 = s2)

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest random_family_props in
  Alcotest.run "props"
    [
      ( "rotation validity",
        [
          Alcotest.test_case "fixed families" `Quick test_fixed_families;
          Alcotest.test_case "relabelled" `Quick test_relabelled;
        ]
        @ qcheck );
      ( "determinism",
        [
          Alcotest.test_case "protocol runs" `Quick test_protocol_deterministic;
          Alcotest.test_case "embedder runs" `Quick test_embedder_deterministic;
          Alcotest.test_case "quiescence" `Quick test_quiescence;
        ] );
      ( "delivery order",
        [
          Alcotest.test_case "sorted by sender" `Quick
            test_inbox_sorted_by_sender;
          Alcotest.test_case "same-sender order" `Quick test_same_sender_order;
          Alcotest.test_case "order-observing determinism" `Quick
            test_order_observing_deterministic;
        ] );
    ]
