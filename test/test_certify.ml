(* The certification tier's adversarial suite (ISSUE 6).

   Completeness: honest certificates over every generator family are
   accepted by every node, in exactly one round, at every shard count.

   Soundness is attacked mechanically: a seeded mutation harness with
   eight operators — rotation-level (dart swaps) and certificate-level
   (re-rooted tree edges, off-by-one depths, spliced counts, merged and
   split face orbits, root lies, raw bit flips) — where every generated
   mutant must be rejected by at least one node. The harness prints a
   kill matrix (operator x family) and fails if any mutant survives.

   The fault bridge re-runs the verifier through Reliable over a lossy
   plan and pins the verdict (in fact the full per-node reason array)
   bit-identical to the clean run: the min-merge of violation codes is
   delivery-order independent by construction. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let embed_exn ?kernel g =
  match Planarity.embed ?kernel g with
  | Planarity.Planar r -> r
  | Planarity.Nonplanar -> Alcotest.fail "family is planar but embed refused"

(* ------------------------------------------------------------------ *)
(* Families under test                                                 *)
(* ------------------------------------------------------------------ *)

let families =
  [
    ("path", Gen.path 9);
    ("cycle", Gen.cycle 12);
    ("star", Gen.star 8);
    ("wheel", Gen.wheel 11);
    ("ladder", Gen.ladder 7);
    ("fan", Gen.fan 9);
    ("grid", Gen.grid 6 7);
    ("bintree", Gen.binary_tree 15);
    ("k4subdiv", Gen.k4_subdivision 3);
    ("maxplanar", Gen.random_maximal_planar ~seed:11 60);
    ("outerplanar", Gen.random_outerplanar ~seed:7 ~n:40 ~chord_prob:0.3);
    ("randtree", Gen.random_tree ~seed:5 40);
  ]

(* ------------------------------------------------------------------ *)
(* Completeness                                                        *)
(* ------------------------------------------------------------------ *)

let test_clean_families_accept () =
  List.iter
    (fun (name, g) ->
      let r = embed_exn g in
      let certs = Certify.prove r in
      List.iter
        (fun domains ->
          let o =
            Certify.verify ~config:(Network.Config.make ~domains ()) r certs
          in
          check_bool
            (Printf.sprintf "%s accepts (domains=%d)" name domains)
            true o.Certify.all_accept;
          check
            (Printf.sprintf "%s rounds (domains=%d)" name domains)
            1 o.Certify.rounds;
          Array.iteri
            (fun v rsn ->
              check (Printf.sprintf "%s reason at %d" name v) 0 rsn)
            o.Certify.reasons;
          match o.Certify.report.Network.verdict with
          | None -> Alcotest.fail (name ^ ": no bounds verdict on clean run")
          | Some v ->
              check_bool (name ^ " one-round bound") true v.Bounds.rounds_ok;
              check_bool (name ^ " message bound") true v.Bounds.message_ok;
              check_bool (name ^ " burst bound") true v.Bounds.burst_ok)
        [ 1; 4 ])
    families

let test_single_and_pair () =
  (* n = 1: nothing on the wire, zero rounds, still accepted (the
     dartless embedding has one face). n = 2: one exchange, one round. *)
  let r1 = embed_exn (Gen.path 1) in
  let o1 = Certify.verify r1 (Certify.prove r1) in
  check_bool "n=1 accepts" true o1.Certify.all_accept;
  check "n=1 rounds" 0 o1.Certify.rounds;
  let r2 = embed_exn (Gen.path 2) in
  let o2 = Certify.verify r2 (Certify.prove r2) in
  check_bool "n=2 accepts" true o2.Certify.all_accept;
  check "n=2 rounds" 1 o2.Certify.rounds

let test_prove_rejects_bad_graphs () =
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Certify.prove: disconnected graph") (fun () ->
      let g = Gr.of_edges ~n:4 [ (0, 1); (2, 3) ] in
      ignore (Certify.prove (Rotation.of_sorted_adjacency g)))

let test_determinism () =
  let g = Gen.random_maximal_planar ~seed:3 80 in
  let r = embed_exn g in
  let certs = Certify.prove r in
  let o1 = Certify.verify r certs and o2 = Certify.verify r certs in
  check_bool "accept arrays" true (o1.Certify.accept = o2.Certify.accept);
  check_bool "reasons" true (o1.Certify.reasons = o2.Certify.reasons);
  check "rounds" o1.Certify.rounds o2.Certify.rounds;
  let certs' = Certify.prove r in
  check_bool "prover deterministic" true
    (certs.Certify.parent = certs'.Certify.parent
    && certs.Certify.dist = certs'.Certify.dist
    && certs.Certify.nf = certs'.Certify.nf)

let test_observability () =
  let g = Gen.grid 5 6 in
  let r = embed_exn g in
  let certs = Certify.prove r in
  let m = Metrics.create g in
  let tr = Trace.create () in
  let o =
    Certify.verify
      ~config:
        (Network.Config.make ~observe:(Observe.make ~metrics:m ~trace:tr ()) ())
      r certs
  in
  check_bool "accepts" true o.Certify.all_accept;
  check_bool "bits on the wire counted" true (Metrics.total_bits m > 0);
  let has_span =
    List.exists
      (function
        | Trace.Span_open { name = "certify.verify"; _ } -> true
        | _ -> false)
      (Trace.events tr)
  in
  check_bool "certify.verify span" true has_span

(* ------------------------------------------------------------------ *)
(* The mutation harness                                                *)
(* ------------------------------------------------------------------ *)

type mutation =
  | Swap_darts  (** swap two entries in one vertex's rotation, re-prove *)
  | Reroot_edge  (** re-point a node's parent at another neighbor *)
  | Depth_off_by_one
  | Count_splice  (** inflate one subtree-vertex count *)
  | Face_merge  (** relabel one orbit with another's leader, fix counts *)
  | Face_split  (** cut one orbit into two leaders, fix counts *)
  | Root_lie  (** one node claims a different root id *)
  | Bit_flip  (** Certify.corrupt, one random bit at one node *)

let mutation_name = function
  | Swap_darts -> "swap-darts"
  | Reroot_edge -> "reroot-edge"
  | Depth_off_by_one -> "depth-off-by-one"
  | Count_splice -> "count-splice"
  | Face_merge -> "face-merge"
  | Face_split -> "face-split"
  | Root_lie -> "root-lie"
  | Bit_flip -> "bit-flip"

let all_mutations =
  [
    Swap_darts;
    Reroot_edge;
    Depth_off_by_one;
    Count_splice;
    Face_merge;
    Face_split;
    Root_lie;
    Bit_flip;
  ]

let copy_certs (c : Certify.t) =
  {
    c with
    Certify.root = Array.copy c.Certify.root;
    parent = Array.copy c.Certify.parent;
    depth = Array.copy c.Certify.depth;
    nv = Array.copy c.Certify.nv;
    ne = Array.copy c.Certify.ne;
    nf = Array.copy c.Certify.nf;
    leader_u = Array.copy c.Certify.leader_u;
    leader_v = Array.copy c.Certify.leader_v;
    dist = Array.copy c.Certify.dist;
  }

(* Walk the (honest) parent chain adjusting the face counts, so a face
   mutant's subtree sums and Euler check still balance — rejection must
   then come from the face machinery itself, not the bookkeeping. *)
let bump_nf (c : Certify.t) x delta =
  let v = ref x in
  let continue_ = ref true in
  while !continue_ do
    c.Certify.nf.(!v) <- c.Certify.nf.(!v) + delta;
    if c.Certify.parent.(!v) = !v then continue_ := false
    else v := c.Certify.parent.(!v)
  done

let dart_of r (u, v) = Gr.dart (Rotation.graph r) ~src:u ~dst:v

(* What the harness produced: certificates to run against the (possibly
   mutated) rotation, plus the expected verdict. [`Reject] mutants must
   be killed; [`Oracle planar] mutants (rotation-level) must match the
   centralized genus oracle. *)
type mutant = {
  m_rot : Rotation.t;
  m_certs : Certify.t;
  expected : [ `Reject | `Oracle of bool ];
}

let mutate ~seed r (certs : Certify.t) kind : mutant option =
  let g = Rotation.graph r in
  let n = Gr.n g in
  if n < 2 then None
  else
    let rng = Random.State.make [| 0xbadf00d; seed |] in
    let pick_node pred =
      let cands = List.filter pred (List.init n (fun i -> i)) in
      match cands with
      | [] -> None
      | _ ->
          Some (List.nth cands (Random.State.int rng (List.length cands)))
    in
    let root = certs.Certify.root.(0) in
    match kind with
    | Swap_darts -> (
        match pick_node (fun v -> Gr.degree g v >= 3) with
        | None -> None
        | Some v ->
            let rot = Array.init n (fun u -> Array.copy (Rotation.rotation r u)) in
            let deg = Array.length rot.(v) in
            let i = Random.State.int rng deg in
            let j = (i + 1 + Random.State.int rng (deg - 1)) mod deg in
            let tmp = rot.(v).(i) in
            rot.(v).(i) <- rot.(v).(j);
            rot.(v).(j) <- tmp;
            let r' = Rotation.make g rot in
            Some
              {
                m_rot = r';
                m_certs = Certify.prove r';
                expected = `Oracle (Rotation.is_planar_embedding r');
              })
    | Reroot_edge -> (
        match
          pick_node (fun v -> v <> root && Gr.degree g v >= 2)
        with
        | None -> None
        | Some v ->
            let c = copy_certs certs in
            let p = c.Certify.parent.(v) in
            let others =
              Gr.fold_neighbors g v ~init:[] ~f:(fun acc u ->
                  if u <> p then u :: acc else acc)
            in
            let u = List.nth others (Random.State.int rng (List.length others)) in
            c.Certify.parent.(v) <- u;
            Some { m_rot = r; m_certs = c; expected = `Reject })
    | Depth_off_by_one -> (
        match pick_node (fun v -> v <> root) with
        | None -> None
        | Some v ->
            let c = copy_certs certs in
            c.Certify.depth.(v) <- c.Certify.depth.(v) + 1;
            Some { m_rot = r; m_certs = c; expected = `Reject })
    | Count_splice -> (
        match pick_node (fun _ -> true) with
        | None -> None
        | Some v ->
            let c = copy_certs certs in
            c.Certify.nv.(v) <- c.Certify.nv.(v) + 1;
            Some { m_rot = r; m_certs = c; expected = `Reject })
    | Face_merge -> (
        let faces = Array.of_list (Rotation.faces r) in
        if Array.length faces < 2 then None
        else
          let a = Random.State.int rng (Array.length faces) in
          let b =
            (a + 1 + Random.State.int rng (Array.length faces - 1))
            mod Array.length faces
          in
          let c = copy_certs certs in
          (* Orbit [b] pretends to belong to [a]'s face: rename its
             leaders; its own leader dart keeps dist 0 but no longer
             names itself, and the freed face leaves the books. *)
          let db = dart_of r (List.hd faces.(b)) in
          let (lu, lv) =
            let da = dart_of r (List.hd faces.(a)) in
            (c.Certify.leader_u.(da), c.Certify.leader_v.(da))
          in
          let old_owner = c.Certify.leader_v.(db) in
          List.iter
            (fun dpair ->
              let d = dart_of r dpair in
              c.Certify.leader_u.(d) <- lu;
              c.Certify.leader_v.(d) <- lv)
            faces.(b);
          bump_nf c old_owner (-1);
          Some { m_rot = r; m_certs = c; expected = `Reject })
    | Face_split -> (
        let faces =
          List.filter (fun f -> List.length f >= 2) (Rotation.faces r)
        in
        match faces with
        | [] -> None
        | _ ->
            let orbit =
              Array.of_list
                (List.nth faces (Random.State.int rng (List.length faces)))
            in
            let l = Array.length orbit in
            let c = copy_certs certs in
            let j = Random.State.int rng (l - 1) in
            (* Two arcs, each a run descending to its own new leader:
               dart i <= j points at orbit.(j), the rest at the end. *)
            let old_owner = c.Certify.leader_v.(dart_of r orbit.(0)) in
            let assign lo hi =
              let (lu, lv) = orbit.(hi) in
              for i = lo to hi do
                let d = dart_of r orbit.(i) in
                c.Certify.leader_u.(d) <- lu;
                c.Certify.leader_v.(d) <- lv;
                c.Certify.dist.(d) <- hi - i
              done
            in
            assign 0 j;
            assign (j + 1) (l - 1);
            bump_nf c old_owner (-1);
            bump_nf c (snd orbit.(j)) 1;
            bump_nf c (snd orbit.(l - 1)) 1;
            Some { m_rot = r; m_certs = c; expected = `Reject })
    | Root_lie -> (
        match pick_node (fun _ -> true) with
        | None -> None
        | Some v ->
            let c = copy_certs certs in
            let lie = (c.Certify.root.(v) + 1 + Random.State.int rng (n - 1)) mod n in
            c.Certify.root.(v) <- lie;
            Some { m_rot = r; m_certs = c; expected = `Reject })
    | Bit_flip ->
        Some
          {
            m_rot = r;
            m_certs = Certify.corrupt ~seed ~k:1 certs;
            expected = `Reject;
          }

(* Run the kill matrix: [seeds_per_cell] mutants per (operator, family)
   cell. Swap-darts mutants that stay planar (the oracle says genus 0)
   are completeness checks, not kills; cells where the operator does not
   apply (e.g. face-merge on a tree: one face) read "n/a". *)
let test_mutation_kill_matrix () =
  let seeds_per_cell = 5 in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s" "operator \\ family");
  List.iter
    (fun (name, _) -> Buffer.add_string buf (Printf.sprintf "%12s" name))
    families;
  Buffer.add_char buf '\n';
  let survivors = ref [] in
  List.iter
    (fun op ->
      Buffer.add_string buf (Printf.sprintf "%-18s" (mutation_name op));
      List.iter
        (fun (fam, g) ->
          let r = embed_exn g in
          let certs = Certify.prove r in
          let generated = ref 0 and killed = ref 0 in
          for seed = 0 to seeds_per_cell - 1 do
            match mutate ~seed r certs op with
            | None -> ()
            | Some { m_rot; m_certs; expected } -> (
                let o = Certify.verify m_rot m_certs in
                match expected with
                | `Reject ->
                    incr generated;
                    if not o.Certify.all_accept then incr killed
                    else
                      survivors :=
                        Printf.sprintf "%s/%s seed=%d" (mutation_name op) fam
                          seed
                        :: !survivors
                | `Oracle planar ->
                    if planar then (
                      (* A planar mutant re-proved honestly must accept:
                         the prover-verifier pair is complete on any
                         genus-0 rotation, not just the embedder's. *)
                      if not o.Certify.all_accept then
                        Alcotest.fail
                          (Printf.sprintf
                             "%s/%s seed=%d: planar mutant rejected"
                             (mutation_name op) fam seed))
                    else begin
                      incr generated;
                      if not o.Certify.all_accept then incr killed
                      else
                        survivors :=
                          Printf.sprintf "%s/%s seed=%d" (mutation_name op)
                            fam seed
                          :: !survivors
                    end)
          done;
          Buffer.add_string buf
            (if !generated = 0 then Printf.sprintf "%12s" "n/a"
             else Printf.sprintf "%12s" (Printf.sprintf "%d/%d" !killed !generated)))
        families;
      Buffer.add_char buf '\n')
    all_mutations;
  print_string (Buffer.contents buf);
  check_bool
    (Printf.sprintf "no surviving mutants (%s)"
       (String.concat ", " !survivors))
    true (!survivors = [])

let test_corrupt_is_rejected () =
  let g = Gen.random_maximal_planar ~seed:9 100 in
  let r = embed_exn g in
  let certs = Certify.prove r in
  List.iter
    (fun k ->
      for seed = 1 to 10 do
        let bad = Certify.corrupt ~seed ~k certs in
        let o = Certify.verify r bad in
        check_bool (Printf.sprintf "k=%d seed=%d rejected" k seed) false
          o.Certify.all_accept
      done)
    [ 1; 2; 5 ];
  (* k = 0 flips nothing: the copy still accepts. *)
  let o = Certify.verify r (Certify.corrupt ~seed:1 ~k:0 certs) in
  check_bool "k=0 accepts" true o.Certify.all_accept;
  Alcotest.check_raises "k too large"
    (Invalid_argument "Certify.corrupt: k out of range") (fun () ->
      ignore (Certify.corrupt ~seed:1 ~k:(Gr.n g + 1) certs))

(* The honest prover run on a genus-1 rotation: Euler fails at the root.
   Then the adversary forges planarity — splits two orbits (with the
   counts patched so subtree sums and Euler balance, f' = f + 2 exactly
   compensating genus 1) — and the face-orbit checks still refuse. *)
let test_torus_cannot_forge_planarity () =
  let g = Gen.toroidal_grid 5 5 in
  let r = Rotation.of_sorted_adjacency g in
  check_bool "torus rotation really is genus > 0" false
    (Rotation.is_planar_embedding r);
  let certs = Certify.prove r in
  let honest = Certify.verify r certs in
  check_bool "honest certs on a torus reject" false honest.Certify.all_accept;
  let rejected_at_root =
    honest.Certify.reasons.(certs.Certify.root.(0)) = 6
  in
  check_bool "honest rejection is the Euler check" true rejected_at_root;
  (* Forge: two face splits patch the books. *)
  let forged = ref certs in
  for seed = 0 to 1 do
    match mutate ~seed r !forged Face_split with
    | Some { m_certs; _ } -> forged := m_certs
    | None -> Alcotest.fail "face-split inapplicable on the torus"
  done;
  let o = Certify.verify r !forged in
  check_bool "forged counts still reject" false o.Certify.all_accept;
  let face_reason =
    Array.exists (fun rsn -> rsn = 7 || rsn = 8 || rsn = 9) o.Certify.reasons
  in
  check_bool "rejection comes from the face machinery" true face_reason

let test_nonplanar_rotations_reject () =
  List.iter
    (fun (name, g) ->
      let r = Rotation.of_sorted_adjacency g in
      if not (Rotation.is_planar_embedding r) then begin
        let o = Certify.verify r (Certify.prove r) in
        check_bool (name ^ " rejects") false o.Certify.all_accept
      end)
    [
      ("k5", Gen.k5 ());
      ("k33", Gen.k33 ());
      ("petersen", Gen.petersen ());
      ("toroidal", Gen.toroidal_grid 4 6);
      ("maxplanar-sorted", Gen.random_maximal_planar ~seed:2 40);
    ]

(* ------------------------------------------------------------------ *)
(* Certification x chaos: the fault bridge                              *)
(* ------------------------------------------------------------------ *)

let lossy rate =
  Fault.make
    ~spec:{ Fault.default with Fault.drop = rate; reorder = rate }
    ~seed:1234 ()

let test_verdict_survives_loss () =
  let run_cases certs_of =
    List.iter
      (fun (name, g) ->
        let r = embed_exn g in
        let certs = certs_of r in
        let clean = Certify.verify r certs in
        let zero =
          Certify.verify
            ~config:(Network.Config.make ~faults:(lossy 0.0) ())
            r certs
        in
        let noisy =
          Certify.verify
            ~config:(Network.Config.make ~faults:(lossy 0.05) ())
            r certs
        in
        check_bool (name ^ ": zero-rate accept map") true
          (clean.Certify.accept = zero.Certify.accept);
        check_bool (name ^ ": lossy accept map") true
          (clean.Certify.accept = noisy.Certify.accept);
        (* Stronger than the verdict: the violation codes merge by min,
           so even the per-node reasons are delivery-order invariant. *)
        check_bool (name ^ ": lossy reasons") true
          (clean.Certify.reasons = noisy.Certify.reasons);
        check_bool (name ^ ": reliable layer takes extra rounds") true
          (noisy.Certify.rounds >= clean.Certify.rounds))
      [ ("grid", Gen.grid 6 7); ("maxplanar", Gen.random_maximal_planar ~seed:21 60) ]
  in
  run_cases Certify.prove;
  run_cases (fun r -> Certify.corrupt ~seed:77 ~k:3 (Certify.prove r))

let test_faults_exclude_domains () =
  let g = Gen.grid 4 4 in
  let r = embed_exn g in
  let certs = Certify.prove r in
  check_bool "raises" true
    (try
       ignore
         (Certify.verify
            ~config:(Network.Config.make ~domains:4 ~faults:(lossy 0.05) ())
            r certs);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Kernel parity (PR 5 closure)                                        *)
(* ------------------------------------------------------------------ *)

let test_kernel_parity () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun kernel ->
          let r = embed_exn ~kernel g in
          let o = Certify.verify r (Certify.prove r) in
          check_bool
            (Printf.sprintf "%s via %s certifies" name
               (Planarity.kernel_name kernel))
            true o.Certify.all_accept)
        [ Planarity.LR; Planarity.DMP ])
    families

(* ------------------------------------------------------------------ *)
(* Random properties                                                   *)
(* ------------------------------------------------------------------ *)

let prop_clean_accept =
  QCheck.Test.make ~count:25 ~name:"random planar graphs certify"
    QCheck.(pair (int_range 3 120) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Gen.random_maximal_planar ~seed n in
      let r = embed_exn g in
      let o = Certify.verify r (Certify.prove r) in
      o.Certify.all_accept && o.Certify.rounds <= 1)

let prop_one_flip_killed =
  QCheck.Test.make ~count:50 ~name:"any single bit flip is rejected"
    QCheck.(pair (int_range 3 80) (int_range 0 10_000))
    (fun (n, seed) ->
      let g = Gen.random_maximal_planar ~seed:(seed + 1) n in
      let r = embed_exn g in
      let certs = Certify.prove r in
      let o = Certify.verify r (Certify.corrupt ~seed ~k:1 certs) in
      not o.Certify.all_accept)

let () =
  Alcotest.run "certify"
    [
      ( "completeness",
        [
          Alcotest.test_case "all families accept, 1 round, both engines"
            `Quick test_clean_families_accept;
          Alcotest.test_case "n=1 and n=2" `Quick test_single_and_pair;
          Alcotest.test_case "prove input validation" `Quick
            test_prove_rejects_bad_graphs;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "metrics and trace thread through" `Quick
            test_observability;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "mutation kill matrix" `Quick
            test_mutation_kill_matrix;
          Alcotest.test_case "seeded corruption rejected" `Quick
            test_corrupt_is_rejected;
          Alcotest.test_case "torus cannot forge planarity" `Quick
            test_torus_cannot_forge_planarity;
          Alcotest.test_case "non-planar rotations reject" `Quick
            test_nonplanar_rotations_reject;
        ] );
      ( "chaos bridge",
        [
          Alcotest.test_case "verdict invariant under loss" `Quick
            test_verdict_survives_loss;
          Alcotest.test_case "faults exclude domains" `Quick
            test_faults_exclude_domains;
        ] );
      ( "kernel parity",
        [ Alcotest.test_case "LR and DMP both certify" `Quick test_kernel_parity ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_clean_accept; prop_one_flip_killed ] );
    ]
