(* Differential testing of the two planarity kernels.

   The left-right kernel (Lr) is the production path; DMP stays in the
   tree as the independent oracle. Every group here cross-checks them:

   - fixed families: LR and DMP agree on every named Gen family, and
     every LR-accepted rotation passes the genus-0 Euler check;
   - qcheck sweeps: the same agreement on every random Gen family, plus
     instances perturbed by randomly added edges (which drives maximal
     planar inputs non-planar, exercising the Reject paths);
   - masked variants: [Lr.is_planar_edges] over a random exclusion mask
     agrees with DMP run on the graph built from the surviving edges
     (the exact access pattern of [Kuratowski.witness]);
   - Kuratowski witness at scale: one crossing edge added to a maximal
     planar graph on 2000 vertices yields a witness that is non-planar,
     edge-critical, and classified as a K5 or K3,3 subdivision;
   - the typed [Dmp.No_progress] diagnostic round-trips its payload. *)

let check_bool = Alcotest.(check bool)

let euler_ok r = Rotation.is_planar_embedding r

(* Both kernels on one graph: verdicts agree; an accepted rotation is
   Euler-valid. Returns the shared verdict. *)
let agree name g =
  let lr = Lr.embed g in
  let dmp = Dmp.embed g in
  match (lr, dmp) with
  | Lr.Planar r, Dmp.Planar _ ->
      check_bool (name ^ ": LR rotation is genus 0") true (euler_ok r);
      true
  | Lr.Nonplanar, Dmp.Nonplanar -> false
  | Lr.Planar _, Dmp.Nonplanar ->
      Alcotest.failf "%s: LR says planar, DMP says non-planar" name
  | Lr.Nonplanar, Dmp.Planar _ ->
      Alcotest.failf "%s: LR says non-planar, DMP says planar" name

(* ------------------------------------------------------------------ *)
(* Fixed families                                                      *)
(* ------------------------------------------------------------------ *)

let fixed_families =
  [
    ("empty 0", Gr.of_edges ~n:0 []);
    ("isolated 5", Gr.of_edges ~n:5 []);
    ("single edge", Gr.of_edges ~n:2 [ (0, 1) ]);
    ("path 17", Gen.path 17);
    ("cycle 24", Gen.cycle 24);
    ("star 12", Gen.star 12);
    ("complete 4", Gen.complete 4);
    ("complete 5", Gen.complete 5);
    ("complete 6", Gen.complete 6);
    ("K2,3", Gen.complete_bipartite 2 3);
    ("K3,3", Gen.k33 ());
    ("K3,4", Gen.complete_bipartite 3 4);
    ("K5", Gen.k5 ());
    ("petersen", Gen.petersen ());
    ("wheel 9", Gen.wheel 9);
    ("ladder 6", Gen.ladder 6);
    ("fan 11", Gen.fan 11);
    ("grid 4x5", Gen.grid 4 5);
    ("triangular grid 3x4", Gen.triangular_grid 3 4);
    ("toroidal grid 3x3", Gen.toroidal_grid 3 3);
    ("toroidal grid 4x5", Gen.toroidal_grid 4 5);
    ("binary tree 15", Gen.binary_tree 15);
    ("K4 subdivision 3", Gen.k4_subdivision 3);
    ("subdivided wheel", Gen.subdivide (Gen.wheel 6) 2);
    ("subdivided K5", Gen.subdivide (Gen.k5 ()) 2);
    ("subdivided K3,3", Gen.subdivide (Gen.k33 ()) 3);
    ("two triangles", Gr.of_edges ~n:6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ]);
  ]

let test_fixed_families () =
  List.iter (fun (name, g) -> ignore (agree name g)) fixed_families

(* ------------------------------------------------------------------ *)
(* qcheck sweeps                                                       *)
(* ------------------------------------------------------------------ *)

let seed_prop name build =
  QCheck.Test.make ~count:20 ~name
    QCheck.(int_range 0 100_000)
    (fun seed ->
      ignore (agree (Printf.sprintf "%s seed=%d" name seed) (build seed));
      true)

(* Add [k] pseudo-random non-edges to [g]; on a maximal planar input any
   single addition already crosses the 3n-6 edge bound. *)
let add_random_edges ~seed k g =
  let n = Gr.n g in
  let st = ref (seed * 2654435761 + 12345) in
  let next bound =
    st := (!st * 1103515245 + 12345) land 0x3FFFFFFF;
    !st mod bound
  in
  let added = ref [] and tries = ref 0 and got = ref 0 in
  while !got < k && !tries < 200 do
    incr tries;
    let u = next n and v = next n in
    if u <> v && not (Gr.mem_edge g u v)
       && not (List.mem (Gr.normalize_edge u v) !added)
    then begin
      added := Gr.normalize_edge u v :: !added;
      incr got
    end
  done;
  Gr.add_edges g !added

let random_family_props =
  [
    seed_prop "random tree" (fun seed -> Gen.random_tree ~seed 24);
    seed_prop "random maximal planar" (fun seed ->
        Gen.random_maximal_planar ~seed 40);
    seed_prop "random planar" (fun seed -> Gen.random_planar ~seed ~n:28 ~m:50);
    seed_prop "random outerplanar" (fun seed ->
        Gen.random_outerplanar ~seed ~n:24 ~chord_prob:0.5);
    seed_prop "random connected graph" (fun seed ->
        Gen.random_connected_graph ~seed ~n:18 ~m:30);
    seed_prop "maximal planar + 1 edge" (fun seed ->
        add_random_edges ~seed 1 (Gen.random_maximal_planar ~seed 30));
    seed_prop "maximal planar + 3 edges" (fun seed ->
        add_random_edges ~seed 3 (Gen.random_maximal_planar ~seed 30));
    seed_prop "outerplanar + random edges" (fun seed ->
        add_random_edges ~seed 4
          (Gen.random_outerplanar ~seed ~n:22 ~chord_prob:0.3));
    seed_prop "grid + random edges" (fun seed ->
        add_random_edges ~seed 2 (Gen.grid 5 6));
  ]

(* Masked-subset agreement: the exact access pattern of
   [Kuratowski.witness] — one shared edge array, some entries switched
   off — versus DMP on a graph rebuilt from the survivors. *)
let masked_prop =
  QCheck.Test.make ~count:40 ~name:"masked subsets agree with DMP"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:16 ~m:30 in
      let edges = Array.of_list (Gr.edges g) in
      let m = Array.length edges in
      let st = ref (seed + 17) in
      let mask =
        Array.init m (fun _ ->
            st := (!st * 1103515245 + 12345) land 0x3FFFFFFF;
            !st land 7 <> 0 (* keep ~7/8 of the edges *))
      in
      let survivors = ref [] in
      for i = m - 1 downto 0 do
        if mask.(i) then survivors := edges.(i) :: !survivors
      done;
      let sub = Gr.of_edges ~n:(Gr.n g) !survivors in
      Lr.is_planar_edges ~n:(Gr.n g) edges ~mask = Dmp.is_planar sub)

(* ------------------------------------------------------------------ *)
(* Kuratowski witness at scale                                         *)
(* ------------------------------------------------------------------ *)

let test_witness_maxplanar_2000 () =
  let n = 2000 in
  let g0 = Gen.random_maximal_planar ~seed:5 n in
  (* Maximal planar: m = 3n - 6, so any added edge forces non-planarity.
     Pick the first non-neighbor of vertex 0 as the crossing edge. *)
  let v = ref 2 in
  while Gr.mem_edge g0 0 !v do
    incr v
  done;
  let g = Gr.add_edges g0 [ (0, !v) ] in
  check_bool "perturbed graph is non-planar" false (Lr.is_planar g);
  match Kuratowski.witness g with
  | None -> Alcotest.fail "no witness extracted from a non-planar graph"
  | Some edges ->
      let w = Gr.of_edges ~n edges in
      check_bool "witness is non-planar" false (Lr.is_planar w);
      check_bool "witness is non-planar (DMP agrees)" false (Dmp.is_planar w);
      (* Edge-criticality: deleting any single witness edge restores
         planarity — the definition of an edge-minimal witness. *)
      let arr = Array.of_list edges in
      let mask = Array.make (Array.length arr) true in
      Array.iteri
        (fun i _ ->
          mask.(i) <- false;
          check_bool
            (Printf.sprintf "witness minus edge %d is planar" i)
            true
            (Lr.is_planar_edges ~n arr ~mask);
          mask.(i) <- true)
        arr;
      (match Kuratowski.classify g edges with
      | Some _ -> ()
      | None -> Alcotest.fail "witness did not classify as K5 or K3,3")

(* ------------------------------------------------------------------ *)
(* Typed no-progress diagnostic                                        *)
(* ------------------------------------------------------------------ *)

let test_no_progress_payload () =
  (* The exception never fires on real inputs (it flags a broken internal
     invariant); certify that the payload round-trips so a future trigger
     reports usable counts instead of a bare string. *)
  match
    raise
      (Dmp.No_progress
         { fragments = 3; faces = 7; embedded_edges = 11; total_edges = 13 })
  with
  | exception Dmp.No_progress { fragments; faces; embedded_edges; total_edges }
    ->
      Alcotest.(check (list int))
        "payload fields" [ 3; 7; 11; 13 ]
        [ fragments; faces; embedded_edges; total_edges ]
  | _ -> assert false

let () =
  let qcheck =
    List.map QCheck_alcotest.to_alcotest (random_family_props @ [ masked_prop ])
  in
  Alcotest.run "kernels"
    [
      ( "lr vs dmp",
        Alcotest.test_case "fixed families" `Quick test_fixed_families :: qcheck
      );
      ( "kuratowski",
        [
          Alcotest.test_case "witness maxplanar n=2000 + crossing edge" `Slow
            test_witness_maxplanar_2000;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "No_progress payload" `Quick
            test_no_progress_payload;
        ] );
    ]
