(* Differential test of the flat-array engine against the pre-redesign
   one.

   Network.run keeps the historical per-round-hashtable implementation
   precisely so this suite can execute both engines on the same protocol
   and graph and demand bit-identical final states, round counts,
   metrics (totals, bursts, per-directed-edge loads, the round log) and
   trace journals (including individual message events) — across every
   generator family, fixed and seeded, and across protocols that probe
   the delivery-order guarantee and multi-message edges. A final group
   checks the engines agree on errors too, and that the new round loop's
   allocation is independent of n. *)

[@@@alert "-legacy"]

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Probe protocols                                                     *)
(* ------------------------------------------------------------------ *)

let to_all g v msg =
  Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, msg) :: acc)

(* One spontaneous burst, then silence. *)
let hello =
  {
    Network.init = (fun g v -> (v, to_all g v v));
    round = (fun _g _v st _inbox -> (st, []));
    msg_bits = (fun _ -> 8);
  }

(* Max-id flood: multi-round, quiesces in O(D). *)
let flood =
  {
    Network.init = (fun g v -> (v, to_all g v v));
    round =
      (fun g v best inbox ->
        let best' = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
        if best' = best then (best, []) else (best', to_all g v best'));
    msg_bits = (fun _ -> 12);
  }

(* Order-observing: the state is a non-commutative fold of the inbox in
   delivery order, and keeps propagating for a fixed number of hops — any
   divergence in inbox ordering between the engines shows up in the final
   hashes. *)
let order_hash ttl =
  {
    Network.init = (fun g v -> ((v, ttl), to_all g v v));
    round =
      (fun g v (h, t) inbox ->
        let h' =
          List.fold_left
            (fun acc (src, x) -> (acc * 1_000_003) + (src lxor (x * 31)))
            h inbox
        in
        if t = 0 then ((h', 0), [])
        else ((h', t - 1), to_all g v (h' land 0xffff)));
    msg_bits = (fun _ -> 16);
  }

(* Several messages per edge per round: exercises per-sender outbox order
   and the cumulative per-edge load accounting. *)
let double_talk rounds_left =
  {
    Network.init =
      (fun g v ->
        ( rounds_left,
          Gr.fold_neighbors g v ~init:[] ~f:(fun acc w ->
              (w, 2 * v) :: (w, (2 * v) + 1) :: acc) ));
    round =
      (fun g v t inbox ->
        if t = 0 || inbox = [] then (t, [])
        else
          ( t - 1,
            Gr.fold_neighbors g v ~init:[] ~f:(fun acc w ->
                (w, t) :: (w, t + v) :: acc) ));
    msg_bits = (fun _ -> 8);
  }

(* The certification verifier (ISSUE 6) as a probe protocol: an init
   burst of record-carrying messages plus a one-round fold with a
   min-merge — pins the one-round verifier bit-identical across engines
   and shard counts. Non-planar families verify the certificates of an
   arbitrary rotation (they reject — the protocol still runs the same
   wire schedule, which is all this suite cares about). *)
let certify_proto g =
  let r =
    match Planarity.embed g with
    | Planarity.Planar r -> r
    | Planarity.Nonplanar -> Rotation.of_sorted_adjacency g
  in
  Certify.protocol r (Certify.prove r)

let run_legacy proto g =
  let m = Metrics.create g in
  let tr = Trace.create ~keep_messages:true () in
  let states = Network.run ~bandwidth:4096 ~metrics:m ~trace:tr g proto in
  (states, m, tr)

let run_exec proto g =
  let m = Metrics.create g in
  let tr = Trace.create ~keep_messages:true () in
  (* [faults] is left at its [None] default on purpose: every diff in
     this file also pins the dispatcher's no-plan path to the clean
     engine, so the fault layer cannot perturb a clean run even by one
     event. *)
  let r =
    Network.exec
      ~config:
        (Network.Config.make ~bandwidth:4096
           ~observe:(Observe.make ~metrics:m ~trace:tr ())
           ())
      g proto
  in
  (r, m, tr)

let run_exec_sharded ~domains ~epoch proto g =
  let m = Metrics.create g in
  let tr = Trace.create ~keep_messages:true () in
  let r =
    Network.exec
      ~config:
        (Network.Config.make ~domains ~epoch ~bandwidth:4096
           ~observe:(Observe.make ~metrics:m ~trace:tr ())
           ())
      g proto
  in
  (r, m, tr)

(* (domains, epoch) grid for the sequential-vs-sharded sweep: the ISSUE's
   {1,2,4} x {1,2,8} matrix, plus odd and more-shards-than-balance splits
   at the widest epoch. epoch = 1 pins the chunked (per-round barrier)
   scheduler, epoch > 1 the fused cross-round batching with its
   boundary-dart flush. domains = 1 must hit the sequential engine (the
   dispatcher's k <= 1 path) whatever the epoch. CI's multicore job adds
   its own shard count via DOMAINS. *)
let sweep_points =
  let base =
    [
      (1, 1); (1, 2); (1, 8);
      (2, 1); (2, 2); (2, 8);
      (4, 1); (4, 2); (4, 8);
      (3, 8); (7, 8);
    ]
  in
  match Sys.getenv_opt "DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some k when k > 1 && not (List.mem_assoc k base) ->
          base @ [ (k, 1); (k, 8) ]
      | _ -> base)
  | None -> base

let dir_table m =
  let rows = ref [] in
  Metrics.iter_dir m (fun ~src ~dst ~bits ~messages ~burst ->
      rows := (src, dst, bits, messages, burst) :: !rows);
  List.rev !rows

let metrics_equal name a b =
  check (name ^ ": rounds") (Metrics.rounds a) (Metrics.rounds b);
  check (name ^ ": messages") (Metrics.messages a) (Metrics.messages b);
  check (name ^ ": total bits") (Metrics.total_bits a) (Metrics.total_bits b);
  check (name ^ ": max edge bits") (Metrics.max_edge_bits a)
    (Metrics.max_edge_bits b);
  check (name ^ ": max message bits") (Metrics.max_message_bits a)
    (Metrics.max_message_bits b);
  check (name ^ ": max burst") (Metrics.max_round_edge_bits a)
    (Metrics.max_round_edge_bits b);
  check (name ^ ": active peak") (Metrics.active_peak a) (Metrics.active_peak b);
  check_bool (name ^ ": round log") true
    (Metrics.round_log a = Metrics.round_log b);
  check_bool (name ^ ": per-directed-edge table") true
    (dir_table a = dir_table b)

let diff_one name proto g =
  let (s_old, m_old, t_old) = run_legacy proto g in
  let (r_new, m_new, t_new) = run_exec proto g in
  check_bool (name ^ ": states") true (s_old = r_new.Network.states);
  check (name ^ ": result rounds") (Metrics.rounds m_old) r_new.Network.rounds;
  metrics_equal name m_old m_new;
  check_bool (name ^ ": trace events") true
    (Trace.events t_old = Trace.events t_new);
  (* The engine's own report must agree with the metrics sink. *)
  check (name ^ ": report messages") (Metrics.messages m_new)
    r_new.Network.report.Network.messages;
  check (name ^ ": report bits") (Metrics.total_bits m_new)
    r_new.Network.report.Network.bits;
  check (name ^ ": report max message") (Metrics.max_message_bits m_new)
    r_new.Network.report.Network.max_message_bits;
  check (name ^ ": report burst") (Metrics.max_round_edge_bits m_new)
    r_new.Network.report.Network.max_round_edge_bits;
  check (name ^ ": report active peak") (Metrics.active_peak m_new)
    r_new.Network.report.Network.active_peak

(* The sharded engine against the sequential one: same exec entry point,
   a [~domains ~epoch] config versus the default — states, rounds,
   report, the full metrics sink and the message-level trace journal must
   all be bit-identical at every (domains, epoch) point. The same grid
   point is exercised three ways, because the engine's deferred
   observation takes different paths for each: fully observed (metrics +
   message-keeping trace — per-slot event logs, frame log, run-end
   merge), metrics-only (same deferred path, no trace emission), and
   unobserved (the benchmark hot path: no event buffering at all, plain
   counter folds). *)
let diff_sharded name proto g =
  let (r_seq, m_seq, t_seq) = run_exec proto g in
  let bare config =
    Network.exec ~config:(Network.Config.with_bandwidth 4096 config) g proto
  in
  let r_bare = bare Network.Config.default in
  let metrics_only config =
    let m = Metrics.create g in
    let config =
      config
      |> Network.Config.with_bandwidth 4096
      |> Network.Config.with_observe (Observe.make ~metrics:m ())
    in
    (Network.exec ~config g proto, m)
  in
  let (r_mseq, m_mseq) = metrics_only Network.Config.default in
  List.iter
    (fun (k, e) ->
      let name = Printf.sprintf "%s[domains=%d,epoch=%d]" name k e in
      let (r_k, m_k, t_k) = run_exec_sharded ~domains:k ~epoch:e proto g in
      check_bool (name ^ ": states") true (r_seq.Network.states = r_k.Network.states);
      check (name ^ ": rounds") r_seq.Network.rounds r_k.Network.rounds;
      check_bool (name ^ ": report") true
        (r_seq.Network.report = r_k.Network.report);
      metrics_equal name m_seq m_k;
      check_bool (name ^ ": trace events") true
        (Trace.events t_seq = Trace.events t_k);
      let cfg = Network.Config.make ~domains:k ~epoch:e () in
      let r_b = bare cfg in
      check_bool (name ^ ": unobserved states") true
        (r_bare.Network.states = r_b.Network.states);
      check (name ^ ": unobserved rounds") r_bare.Network.rounds
        r_b.Network.rounds;
      check_bool (name ^ ": unobserved report") true
        (r_bare.Network.report = r_b.Network.report);
      let (r_m, m_m) = metrics_only cfg in
      check_bool (name ^ ": metrics-only states") true
        (r_mseq.Network.states = r_m.Network.states);
      check_bool (name ^ ": metrics-only report") true
        (r_mseq.Network.report = r_m.Network.report);
      metrics_equal (name ^ ": metrics-only") m_mseq m_m)
    sweep_points

let diff_all_protocols name g =
  let certify = certify_proto g in
  diff_one (name ^ "/hello") hello g;
  diff_one (name ^ "/flood") flood g;
  diff_one (name ^ "/order-hash") (order_hash 5) g;
  diff_one (name ^ "/double-talk") (double_talk 4) g;
  diff_one (name ^ "/certify") certify g;
  diff_sharded (name ^ "/hello") hello g;
  diff_sharded (name ^ "/flood") flood g;
  diff_sharded (name ^ "/order-hash") (order_hash 5) g;
  diff_sharded (name ^ "/double-talk") (double_talk 4) g;
  diff_sharded (name ^ "/certify") certify g

let fixed_families =
  [
    ("path 13", Gen.path 13);
    ("path 2", Gen.path 2);
    ("cycle 17", Gen.cycle 17);
    ("star 9", Gen.star 9);
    ("grid 5x7", Gen.grid 5 7);
    ("triangular grid 3x4", Gen.triangular_grid 3 4);
    ("toroidal grid 4x4", Gen.toroidal_grid 4 4);
    ("binary tree 15", Gen.binary_tree 15);
    ("complete 6", Gen.complete 6);
    ("K3,3", Gen.k33 ());
    ("petersen", Gen.petersen ());
    ("wheel 9", Gen.wheel 9);
    ("ladder 6", Gen.ladder 6);
    ("fan 11", Gen.fan 11);
  ]

let test_fixed_families () =
  List.iter (fun (name, g) -> diff_all_protocols name g) fixed_families

let seeded_props =
  let prop name build =
    QCheck.Test.make ~count:10 ~name
      QCheck.(int_range 0 10_000)
      (fun seed ->
        diff_all_protocols (Printf.sprintf "%s seed=%d" name seed) (build seed);
        true)
  in
  [
    prop "diff random connected" (fun seed ->
        Gen.random_connected_graph ~seed ~n:30 ~m:60);
    prop "diff random tree" (fun seed -> Gen.random_tree ~seed 40);
    prop "diff random maximal planar" (fun seed ->
        Gen.random_maximal_planar ~seed 40);
    prop "diff random outerplanar" (fun seed ->
        Gen.random_outerplanar ~seed ~n:25 ~chord_prob:0.4);
    prop "diff random planar" (fun seed ->
        Gen.random_planar ~seed ~n:24 ~m:40);
  ]

(* ------------------------------------------------------------------ *)
(* Error parity                                                        *)
(* ------------------------------------------------------------------ *)

let test_bandwidth_parity () =
  (* Two 10-bit messages on one edge against a 16-bit budget: both
     engines must blame the same edge at the same cumulative count. *)
  let g = Gen.path 2 in
  let proto =
    {
      Network.init = (fun _g v -> ((), [ (1 - v, 0); (1 - v, 1) ]));
      round = (fun _g _v st _inbox -> (st, []));
      msg_bits = (fun _ -> 10);
    }
  in
  let payload run =
    try
      run ();
      Alcotest.fail "expected Bandwidth_exceeded"
    with Network.Bandwidth_exceeded { round; u; v; bits } -> (round, u, v, bits)
  in
  let p_old = payload (fun () -> ignore (Network.run ~bandwidth:16 g proto)) in
  let p_new =
    payload (fun () ->
        ignore
          (Network.exec ~config:(Network.Config.make ~bandwidth:16 ()) g proto))
  in
  check_bool "identical Bandwidth_exceeded payloads" true (p_old = p_new);
  List.iter
    (fun (k, e) ->
      let p_shard =
        payload (fun () ->
            ignore
              (Network.exec
                 ~config:
                   (Network.Config.make ~domains:k ~epoch:e ~bandwidth:16 ())
                 g proto))
      in
      check_bool
        (Printf.sprintf "sharded Bandwidth_exceeded payload [%d,%d]" k e)
        true (p_old = p_shard))
    [ (2, 1); (2, 8) ]

(* A violation deep inside a fused epoch: a token walks a long path, and
   the node that receives it at hop [boom] over-sends against the budget.
   With few frontier nodes and long shard interiors the epoch scheduler
   runs many rounds between barriers, so the erring round sits mid-epoch;
   the raised payload and the observation prefix must still match the
   sequential run exactly — the merge may not replay past the error. *)
let test_epoch_oversend_parity () =
  let n = 24 and boom = 10 in
  let g = Gen.path n in
  let proto =
    {
      Network.init = (fun _g v -> ((), if v = 0 then [ (1, 1) ] else []));
      round =
        (fun _g v st inbox ->
          match inbox with
          | [ (_, t) ] ->
              if t = boom then (st, [ (v + 1, t); (v + 1, t) ])
              else if v + 1 < n then (st, [ (v + 1, t + 1) ])
              else (st, [])
          | _ -> (st, []));
      msg_bits = (fun _ -> 10);
    }
  in
  let observed config =
    let m = Metrics.create g in
    let tr = Trace.create ~keep_messages:true () in
    let config = Network.Config.with_observe (Observe.make ~metrics:m ~trace:tr ()) config in
    let p =
      try
        ignore (Network.exec ~config g proto);
        Alcotest.fail "expected Bandwidth_exceeded"
      with Network.Bandwidth_exceeded { round; u; v; bits } -> (round, u, v, bits)
    in
    (p, Metrics.messages m, Metrics.total_bits m, Trace.events tr)
  in
  let seq = observed (Network.Config.make ~bandwidth:16 ()) in
  let (p_seq, _, _, _) = seq in
  let (rnd, _, _, _) = p_seq in
  check "violation is mid-run" boom rnd;
  List.iter
    (fun (k, e) ->
      check_bool
        (Printf.sprintf "mid-epoch payload and prefix [domains=%d,epoch=%d]" k e)
        true
        (observed (Network.Config.make ~domains:k ~epoch:e ~bandwidth:16 ()) = seq))
    [ (2, 2); (2, 8); (3, 8); (4, 8) ]

let test_non_neighbor_parity () =
  let g = Gr.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let proto =
    {
      Network.init = (fun _g v -> ((), if v = 0 then [ (2, 0) ] else []));
      round = (fun _g _v st _inbox -> (st, []));
      msg_bits = (fun _ -> 1);
    }
  in
  let msg run =
    try
      run ();
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument m -> m
  in
  let m_old = msg (fun () -> ignore (Network.run g proto)) in
  let m_new = msg (fun () -> ignore (Network.exec g proto)) in
  Alcotest.(check string) "identical Invalid_argument messages" m_old m_new;
  List.iter
    (fun (k, e) ->
      let m_shard =
        msg (fun () ->
            ignore
              (Network.exec
                 ~config:(Network.Config.make ~domains:k ~epoch:e ())
                 g proto))
      in
      Alcotest.(check string)
        (Printf.sprintf "sharded Invalid_argument message [%d,%d]" k e)
        m_old m_shard)
    [ (2, 1); (2, 8) ]

(* A sharded run that dies must leave the same observation prefix the
   sequential engine leaves: everything the sinks saw before the raise,
   nothing more — even when the violation sits in a later shard, whose
   sibling shards had already buffered their own rounds' events. *)
let test_sharded_error_observation () =
  let g = Gen.path 4 in
  let proto =
    {
      (* Node 3 (the last shard under any split) over-sends at init;
         nodes 0..2 each send one legal message first. *)
      Network.init =
        (fun g v ->
          if v = 3 then ((), [ (2, 0); (2, 1) ])
          else ((), to_all g v v));
      round = (fun _g _v st _inbox -> (st, []));
      msg_bits = (fun _ -> 10);
    }
  in
  let observed (domains, epoch) =
    let m = Metrics.create g in
    let tr = Trace.create ~keep_messages:true () in
    (try
       ignore
         (Network.exec
            ~config:
              (Network.Config.make ~domains ~epoch ~bandwidth:16
                 ~observe:(Observe.make ~metrics:m ~trace:tr ())
                 ())
            g proto);
       Alcotest.fail "expected Bandwidth_exceeded"
     with Network.Bandwidth_exceeded _ -> ());
    (Metrics.messages m, Metrics.total_bits m, Trace.events tr)
  in
  let seq = observed (1, 8) in
  List.iter
    (fun (k, e) ->
      check_bool
        (Printf.sprintf "error-path observation prefix [domains=%d,epoch=%d]" k
           e)
        true
        (observed (k, e) = seq))
    [ (2, 1); (2, 8); (3, 1); (3, 8) ]

let test_domains_validation () =
  let g = Gen.path 4 in
  let expect_invalid what config =
    try
      ignore (Network.exec ~config g hello);
      Alcotest.fail ("expected Invalid_argument for " ^ what)
    with Invalid_argument _ -> ()
  in
  expect_invalid "domains=0" (Network.Config.make ~domains:0 ());
  expect_invalid "epoch=0" (Network.Config.make ~epoch:0 ());
  expect_invalid "steal=0" (Network.Config.make ~steal:0 ());
  expect_invalid "domains=-3" (Network.Config.default |> Network.Config.with_domains (-3));
  (* A fault plan composes with a sharded run: the sharded clocked
     engine accepts it and completes, at any epoch/steal setting (both
     are inert on the clocked engines). *)
  let fresh () = Fault.make ~spec:{ Fault.default with drop = 0.1 } ~seed:7 () in
  ignore
    (Network.exec
       ~config:(Network.Config.make ~domains:2 ~faults:(fresh ()) ())
       g hello);
  ignore
    (Network.exec
       ~config:(Network.Config.make ~domains:1 ~epoch:8 ~faults:(fresh ()) ())
       g hello);
  ignore
    (Network.exec
       ~config:(Network.Config.make ~domains:2 ~epoch:1 ~faults:(fresh ()) ())
       g hello)

(* The deprecated labelled entry point must stay a pure alias: same
   states, rounds, report, and observations as a config-driven exec. *)
let test_exec_opts_alias () =
  List.iter
    (fun (name, g) ->
      let m_a = Metrics.create g in
      let tr_a = Trace.create ~keep_messages:true () in
      let a =
        Network.exec
          ~config:
            (Network.Config.make ~bandwidth:4096
               ~observe:(Observe.make ~metrics:m_a ~trace:tr_a ())
               ())
          g flood
      in
      let m_b = Metrics.create g in
      let tr_b = Trace.create ~keep_messages:true () in
      let b =
        Network.exec_opts ~bandwidth:4096
          ~observe:(Observe.make ~metrics:m_b ~trace:tr_b ())
          g flood
      in
      check_bool (name ^ ": states") true (a.Network.states = b.Network.states);
      check (name ^ ": rounds") a.Network.rounds b.Network.rounds;
      check_bool (name ^ ": report") true (a.Network.report = b.Network.report);
      metrics_equal (name ^ " (exec_opts)") m_a m_b;
      check_bool (name ^ ": trace events") true
        (Trace.events tr_a = Trace.events tr_b))
    [ ("grid 5x7", Gen.grid 5 7); ("petersen", Gen.petersen ()) ]

let test_livelock_contracts () =
  (* Same livelock, two documented signals: Failure from the shim,
     No_quiescence from the new engine. *)
  let g = Gen.path 2 in
  let proto =
    {
      Network.init = (fun _g v -> ((), [ (1 - v, 0) ]));
      round = (fun _g v st _inbox -> (st, [ (1 - v, 0) ]));
      msg_bits = (fun _ -> 1);
    }
  in
  (try
     ignore (Network.run ~max_rounds:7 g proto);
     Alcotest.fail "expected Failure"
   with Failure _ -> ());
  (try
     ignore
       (Network.exec ~config:(Network.Config.make ~max_rounds:7 ()) g proto);
     Alcotest.fail "expected No_quiescence"
   with Network.No_quiescence { round; active; messages } ->
     check "round" 7 round;
     check "active" 2 active;
     check "messages" 2 messages);
  (* The sharded epoch scheduler must surface the identical payload: the
     livelock check fires at the same round with the same census even
     when that round closes mid-epoch. *)
  List.iter
    (fun (k, e) ->
      try
        ignore
          (Network.exec
             ~config:(Network.Config.make ~domains:k ~epoch:e ~max_rounds:7 ())
             g proto);
        Alcotest.fail "expected No_quiescence"
      with Network.No_quiescence { round; active; messages } ->
        check (Printf.sprintf "round [%d,%d]" k e) 7 round;
        check (Printf.sprintf "active [%d,%d]" k e) 2 active;
        check (Printf.sprintf "messages [%d,%d]" k e) 2 messages)
    [ (2, 1); (2, 8) ]

(* ------------------------------------------------------------------ *)
(* Allocation regression                                               *)
(* ------------------------------------------------------------------ *)

let words_now () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* A single token circling a large ring: exactly one active node and one
   message per round. If the round loop allocated O(n) per round (the old
   engine's fresh inbox array and whole-network scans), the words-per-
   round figure would be >= n; the flat-array loop must stay at a small
   constant (a handful of cons cells and tuples per delivered message). *)
let token_ring_words ?(config = Network.Config.default) n ttl =
  let g = Gen.cycle n in
  let next v src = if (v + 1) mod n = src then (v + n - 1) mod n else (v + 1) mod n in
  let proto =
    {
      Network.init = (fun _g v -> ((), if v = 0 then [ (1, ttl) ] else []));
      round =
        (fun _g v st inbox ->
          match inbox with
          | [ (src, t) ] when t > 0 -> (st, [ (next v src, t - 1) ])
          | _ -> (st, []));
      msg_bits = (fun _ -> 16);
    }
  in
  let before = words_now () in
  let r =
    Network.exec
      ~config:(Network.Config.with_max_rounds (ttl + 8) config)
      g proto
  in
  let after = words_now () in
  check "token ran out" (ttl + 1) r.Network.rounds;
  after -. before

let per_round_words config n =
  ignore (token_ring_words ~config n 16);
  (* warm-up *)
  let short = token_ring_words ~config n 500 in
  let long = token_ring_words ~config n 1_500 in
  (long -. short) /. 1_000.

let test_quiescent_round_allocation () =
  let n = 5_000 in
  let per_round = per_round_words Network.Config.default n in
  (* One active node, one message: a round's marginal allocation must be
     a small constant, nowhere near n words. *)
  check_bool
    (Printf.sprintf "per-round allocation is O(1): %.1f words/round" per_round)
    true
    (per_round < 100.)

(* The sharded engine without observation is the benchmark hot path: a
   round must not buffer events or frames (the deferred-observation
   machinery is for observed runs only), so its marginal allocation is
   the same small constant as the sequential engine's — not O(messages)
   of event log, and certainly not O(n). Chunk mode (epoch 1) and the
   fused scheduler (epoch 8) take different commit paths; both are
   pinned. *)
let test_parallel_round_allocation () =
  let n = 5_000 in
  List.iter
    (fun epoch ->
      let config = Network.Config.make ~domains:2 ~epoch () in
      let per_round = per_round_words config n in
      check_bool
        (Printf.sprintf
           "unobserved parallel rounds allocate O(1) [epoch=%d]: %.1f \
            words/round"
           epoch per_round)
        true
        (per_round < 100.))
    [ 1; 8 ]

let () =
  let seeded = List.map QCheck_alcotest.to_alcotest seeded_props in
  Alcotest.run "engine-diff"
    [
      ( "old vs new",
        [ Alcotest.test_case "fixed families" `Quick test_fixed_families ]
        @ seeded );
      ( "error parity",
        [
          Alcotest.test_case "bandwidth payloads" `Quick test_bandwidth_parity;
          Alcotest.test_case "mid-epoch over-send payloads" `Quick
            test_epoch_oversend_parity;
          Alcotest.test_case "non-neighbor messages" `Quick
            test_non_neighbor_parity;
          Alcotest.test_case "livelock contracts" `Quick test_livelock_contracts;
          Alcotest.test_case "sharded error observation" `Quick
            test_sharded_error_observation;
          Alcotest.test_case "config validation" `Quick test_domains_validation;
          Alcotest.test_case "exec_opts is a pure alias" `Quick
            test_exec_opts_alias;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "quiescent rounds allocate O(1)" `Quick
            test_quiescent_round_allocation;
          Alcotest.test_case "unobserved parallel rounds allocate O(1)" `Quick
            test_parallel_round_allocation;
        ] );
    ]
