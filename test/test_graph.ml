(* Unit and property tests for the graph substrate: Gr, Unionfind,
   Traverse, Bicon, Rotation, Gen. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Gr                                                                  *)
(* ------------------------------------------------------------------ *)

let test_of_edges_dedup () =
  let g = Gr.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (1, 2) ] in
  check "m" 2 (Gr.m g);
  check "deg 1" 2 (Gr.degree g 1)

let test_self_loop_rejected () =
  Alcotest.check_raises "self-loop" (Invalid_argument "Gr.normalize_edge: self-loop")
    (fun () -> ignore (Gr.of_edges ~n:2 [ (1, 1) ]))

let test_out_of_range_rejected () =
  (try
     ignore (Gr.of_edges ~n:2 [ (0, 5) ]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_neighbors_sorted () =
  let g = Gr.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Gr.neighbors g 2)

let test_mem_edge () =
  let g = Gr.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_bool "0-1" true (Gr.mem_edge g 0 1);
  check_bool "1-0" true (Gr.mem_edge g 1 0);
  check_bool "0-2" false (Gr.mem_edge g 0 2);
  check_bool "0-0" false (Gr.mem_edge g 0 0)

let test_edge_index_roundtrip () =
  let g = Gen.grid 3 4 in
  List.iter
    (fun (u, v) ->
      let i = Gr.edge_index g u v in
      Alcotest.(check (pair int int)) "roundtrip" (u, v) (Gr.edge_of_index g i);
      check "sym" i (Gr.edge_index g v u))
    (Gr.edges g)

let test_iter_fold_neighbors () =
  let g = Gr.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1); (0, 1) ] in
  for v = 0 to 4 do
    let seen = ref [] in
    Gr.iter_neighbors g v (fun w -> seen := w :: !seen);
    Alcotest.(check (array int))
      "iter matches neighbors" (Gr.neighbors g v)
      (Array.of_list (List.rev !seen));
    check "fold counts degree" (Gr.degree g v)
      (Gr.fold_neighbors g v ~init:0 ~f:(fun acc _ -> acc + 1))
  done

let test_darts () =
  let g = Gen.grid 3 4 in
  check "2m darts" (2 * Gr.m g) (Gr.darts g);
  let xadj = Gr.dart_offsets g in
  let srcs = Gr.dart_sources g in
  let dedge = Gr.dart_edges g in
  check "offsets length" (Gr.n g + 1) (Array.length xadj);
  for v = 0 to Gr.n g - 1 do
    (* A vertex's in-darts are its CSR slice: sources ascending, and each
       dart resolves back to its undirected edge. *)
    for i = xadj.(v) to xadj.(v + 1) - 1 do
      let u = srcs.(i) in
      check "dart lookup" i (Gr.dart g ~src:u ~dst:v);
      check "dart_src" u (Gr.dart_src g i);
      check "dart_edge" (Gr.edge_index g u v) (Gr.dart_edge g i);
      check "dart_edge (accessor array)" dedge.(i) (Gr.dart_edge g i);
      if i > xadj.(v) then
        check_bool "sources ascending" true (srcs.(i - 1) < u)
    done
  done;
  (try
     ignore (Gr.dart g ~src:0 ~dst:11);
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

let test_induced () =
  let g = Gen.cycle 6 in
  let (h, old_of_new, new_of_old) = Gr.induced g [ 0; 1; 2; 4 ] in
  check "n" 4 (Gr.n h);
  check "m" 2 (Gr.m h);
  (* edges 0-1 and 1-2 survive; 4 is isolated *)
  check_bool "0-1" true (Gr.mem_edge h (new_of_old 0) (new_of_old 1));
  check_bool "1-2" true (Gr.mem_edge h (new_of_old 1) (new_of_old 2));
  check "back" 4 old_of_new.(new_of_old 4)

let test_induced_duplicate_rejected () =
  (try
     ignore (Gr.induced (Gen.path 3) [ 0; 0 ]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_union_vertices () =
  let g = Gen.path 3 in
  let h = Gr.union_vertices g ~more:2 [ (3, 0); (4, 2); (3, 4) ] in
  check "n" 5 (Gr.n h);
  check "m" 5 (Gr.m h)

let test_relabel_preserves_degrees () =
  let g = Gen.random_connected_graph ~seed:7 ~n:20 ~m:40 in
  let perm = Gen.random_permutation ~seed:3 20 in
  let h = Gr.relabel g perm in
  for v = 0 to 19 do
    check "degree" (Gr.degree g v) (Gr.degree h perm.(v))
  done

(* ------------------------------------------------------------------ *)
(* Unionfind                                                           *)
(* ------------------------------------------------------------------ *)

let test_unionfind_basic () =
  let uf = Unionfind.create 5 in
  check "count" 5 (Unionfind.count uf);
  check_bool "union" true (Unionfind.union uf 0 1);
  check_bool "re-union" false (Unionfind.union uf 1 0);
  check_bool "same" true (Unionfind.same uf 0 1);
  check_bool "not same" false (Unionfind.same uf 0 2);
  check "count after" 4 (Unionfind.count uf)

let prop_unionfind_vs_naive =
  QCheck.Test.make ~name:"unionfind agrees with naive labels" ~count:100
    QCheck.(pair (int_range 1 30) (list (pair (int_range 0 29) (int_range 0 29))))
    (fun (n, ops) ->
      let ops = List.map (fun (a, b) -> (a mod n, b mod n)) ops in
      let uf = Unionfind.create n in
      let label = Array.init n (fun i -> i) in
      let relabel a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then
          Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Unionfind.union uf a b);
          relabel a b)
        ops;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Unionfind.same uf a b <> (label.(a) = label.(b)) then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Traverse                                                            *)
(* ------------------------------------------------------------------ *)

let test_bfs_path () =
  let g = Gen.path 6 in
  let t = Traverse.bfs g 0 in
  for v = 0 to 5 do
    check "dist" v t.Traverse.dist.(v)
  done;
  check "depth" 5 (Traverse.depth t)

let test_bfs_grid_distances () =
  let g = Gen.grid 4 5 in
  let t = Traverse.bfs g 0 in
  (* Manhattan distance from corner 0 = (r, c) -> r + c *)
  for r = 0 to 3 do
    for c = 0 to 4 do
      check "manhattan" (r + c) t.Traverse.dist.((r * 5) + c)
    done
  done

let test_tree_path () =
  let g = Gen.path 5 in
  let t = Traverse.bfs g 0 in
  Alcotest.(check (list int)) "path" [ 0; 1; 2; 3 ] (Traverse.tree_path t 3)

let test_subtree_sizes () =
  let g = Gen.binary_tree 7 in
  let t = Traverse.bfs g 0 in
  let sz = Traverse.subtree_sizes g t in
  check "root" 7 sz.(0);
  check "leaf" 1 sz.(6);
  check "internal" 3 sz.(1)

let test_components () =
  let g = Gr.of_edges ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  check "count" 3 (List.length (Traverse.components g));
  check_bool "connected" false (Traverse.is_connected g);
  check_bool "path connected" true (Traverse.is_connected (Gen.path 4))

let test_diameter_cycle () =
  check "even cycle" 4 (Traverse.diameter (Gen.cycle 8));
  check "odd cycle" 4 (Traverse.diameter (Gen.cycle 9));
  check "path" 7 (Traverse.diameter (Gen.path 8))

let test_diameter_k4_subdivision () =
  (* Two branch vertices are 2*s apart via... actually the farthest pair are
     midpoints of two disjoint segments: distance ~ s + s = 2s when s even.
     Just sanity-check the scaling: D grows linearly in s. *)
  let d3 = Traverse.diameter (Gen.k4_subdivision 3) in
  let d9 = Traverse.diameter (Gen.k4_subdivision 9) in
  check_bool "linear growth" true (d9 >= (2 * d3) + 2)

let test_dfs_path () =
  let g = Gen.path 5 in
  let t = Traverse.dfs g 0 in
  Alcotest.(check (array int)) "preorder" [| 0; 1; 2; 3; 4 |] t.Traverse.preorder;
  check "parent" 2 t.Traverse.dfs_parent.(3)

let test_dfs_deep_no_overflow () =
  (* The whole point of the iterative implementation. *)
  let g = Gen.path 50000 in
  let t = Traverse.dfs g 0 in
  check "reaches the end" 49999 t.Traverse.pre_index.(49999)

let prop_dfs_spans_component =
  QCheck.Test.make ~name:"dfs preorder covers the component, parents are edges"
    ~count:50
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:30 ~m:50 in
      let t = Traverse.dfs g 0 in
      Array.length t.Traverse.preorder = 30
      && Array.for_all
           (fun v ->
             v = 0 || Gr.mem_edge g v t.Traverse.dfs_parent.(v))
           t.Traverse.preorder
      (* parent precedes child in preorder *)
      && Array.for_all
           (fun v ->
             v = 0
             || t.Traverse.pre_index.(t.Traverse.dfs_parent.(v))
                < t.Traverse.pre_index.(v))
           t.Traverse.preorder)

let prop_bfs_dist_triangle =
  QCheck.Test.make ~name:"bfs distances are 1-Lipschitz along edges" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:30 ~m:60 in
      let t = Traverse.bfs g 0 in
      let ok = ref true in
      Gr.iter_edges g (fun u v ->
          if abs (t.Traverse.dist.(u) - t.Traverse.dist.(v)) > 1 then ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* Bicon                                                               *)
(* ------------------------------------------------------------------ *)

let test_bicon_cycle () =
  let g = Gen.cycle 7 in
  let d = Bicon.decompose g in
  check "one component" 1 d.Bicon.n_components;
  check_bool "no cut vertices" true (Array.for_all not d.Bicon.is_cut)

let test_bicon_path () =
  let g = Gen.path 5 in
  let d = Bicon.decompose g in
  check "components" 4 d.Bicon.n_components;
  check_bool "0 not cut" false d.Bicon.is_cut.(0);
  check_bool "4 not cut" false d.Bicon.is_cut.(4);
  for v = 1 to 3 do
    check_bool "internal cut" true d.Bicon.is_cut.(v)
  done

let test_bicon_two_triangles () =
  (* Two triangles sharing vertex 2. *)
  let g = Gr.of_edges ~n:5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  let d = Bicon.decompose g in
  check "components" 2 d.Bicon.n_components;
  check_bool "2 is cut" true d.Bicon.is_cut.(2);
  check "2 in both" 2 (Bicon.n_comps_of_vertex d 2);
  check "2 in both (list)" 2 (List.length (Bicon.comps_of_vertex d 2));
  check "0 in one" 1 (Bicon.n_comps_of_vertex d 0)

let test_bicon_paper_id () =
  let g = Gr.of_edges ~n:5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  let d = Bicon.decompose g in
  let ids = List.init d.Bicon.n_components (Bicon.paper_component_id d) in
  let sorted = List.sort compare ids in
  Alcotest.(check (list (pair int int))) "ids" [ (0, 1); (2, 3) ] sorted

let brute_force_cut_vertices g =
  let n = Gr.n g in
  let base = List.length (Traverse.components g) in
  Array.init n (fun v ->
      let others = List.filter (fun u -> u <> v) (List.init n (fun i -> i)) in
      let (h, _, _) = Gr.induced g others in
      (* v is a cut vertex iff removing it increases the component count
         (ignoring the trivial loss of v itself when it was isolated). *)
      let after = List.length (Traverse.components h) in
      let v_isolated = Gr.degree g v = 0 in
      after > base - (if v_isolated then 1 else 0))

let prop_cut_vertices_match_brute_force =
  QCheck.Test.make ~name:"bicon cut vertices match brute force" ~count:60
    QCheck.(pair (int_range 0 10000) (int_range 2 14))
    (fun (seed, n) ->
      let m = min (n * (n - 1) / 2) (n + (seed mod 7)) in
      let g = Gen.random_graph ~seed ~n ~m in
      let d = Bicon.decompose g in
      let brute = brute_force_cut_vertices g in
      d.Bicon.is_cut = brute)

let prop_each_edge_in_one_component =
  QCheck.Test.make ~name:"every edge lies in exactly one bicon component"
    ~count:60
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:25 ~m:40 in
      let d = Bicon.decompose g in
      let counted = Array.make (Gr.m g) 0 in
      for c = 0 to d.Bicon.n_components - 1 do
        List.iter
          (fun (u, v) ->
            let i = Gr.edge_index g u v in
            counted.(i) <- counted.(i) + 1)
          (Bicon.component_edges d c)
      done;
      Array.for_all (fun c -> c = 1) counted
      && Array.for_all (fun c -> c >= 0) d.Bicon.comp_of_edge)

let prop_flat_membership_consistent =
  (* The CSR tables must agree with comp_of_edge in both directions, and
     the vertex tables must agree with the edge tables. *)
  QCheck.Test.make ~name:"bicon flat CSR arrays consistent" ~count:80
    QCheck.(int_range 0 10000)
    (fun seed ->
      let n = 3 + (seed mod 20) in
      let m = min (n + (seed mod 9)) (n * (n - 1) / 2) in
      let g = Gen.random_graph ~seed ~n ~m in
      let d = Bicon.decompose g in
      let ok = ref true in
      (* Every edge appears in exactly its component's slice. *)
      for c = 0 to d.Bicon.n_components - 1 do
        Bicon.iter_component_edges d c (fun e ->
            if d.Bicon.comp_of_edge.(e) <> c then ok := false)
      done;
      if Array.length d.Bicon.comp_edge_list <> Gr.m g then ok := false;
      (* Vertex -> component lists are duplicate-free and match the
         component -> vertex lists. *)
      for v = 0 to Gr.n g - 1 do
        let comps = Bicon.comps_of_vertex d v in
        if List.length (List.sort_uniq compare comps) <> List.length comps
        then ok := false;
        List.iter
          (fun c ->
            if not (List.mem v (Bicon.component_vertices d c)) then ok := false)
          comps
      done;
      for c = 0 to d.Bicon.n_components - 1 do
        Bicon.iter_component_vertices d c (fun v ->
            if not (List.mem c (Bicon.comps_of_vertex d v)) then ok := false);
        (* The vertex set of a component is exactly the endpoints of its
           edges. *)
        let from_edges =
          List.sort_uniq compare
            (List.concat_map (fun (a, b) -> [ a; b ]) (Bicon.component_edges d c))
        in
        if List.sort compare (Bicon.component_vertices d c) <> from_edges then
          ok := false
      done;
      !ok)

let prop_cut_iff_two_components =
  QCheck.Test.make ~name:"cut vertex iff it belongs to >= 2 components"
    ~count:60
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:25 ~m:35 in
      let d = Bicon.decompose g in
      let ok = ref true in
      for v = 0 to Gr.n g - 1 do
        let cut = Bicon.n_comps_of_vertex d v >= 2 in
        if cut <> d.Bicon.is_cut.(v) then ok := false
      done;
      !ok)

let test_block_cut_tree () =
  let g = Gr.of_edges ~n:5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  let d = Bicon.decompose g in
  let bct = Bicon.block_cut_tree g d in
  (* 2 blocks + 1 cut vertex, cut vertex adjacent to both blocks. *)
  check "nodes" 3 (Gr.n bct.Bicon.tree);
  check "edges" 2 (Gr.m bct.Bicon.tree);
  check_bool "tree connected" true (Traverse.is_connected bct.Bicon.tree)

(* ------------------------------------------------------------------ *)
(* Rotation                                                            *)
(* ------------------------------------------------------------------ *)

let test_rotation_validation () =
  let g = Gen.cycle 4 in
  (try
     (* Wrong neighbor in rotation. *)
     ignore (Rotation.make g [| [| 1; 2 |]; [| 0; 2 |]; [| 1; 3 |]; [| 0; 2 |] |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_rotation_cycle_planar () =
  let r = Rotation.of_sorted_adjacency (Gen.cycle 5) in
  check "faces" 2 (Rotation.face_count r);
  check "genus" 0 (Rotation.genus r);
  check_bool "planar" true (Rotation.is_planar_embedding r)

let test_rotation_k4 () =
  (* A planar rotation of K4: vertex 3 inside triangle 0-1-2. *)
  let g = Gen.complete 4 in
  let rot = [| [| 1; 3; 2 |]; [| 2; 3; 0 |]; [| 0; 3; 1 |]; [| 0; 1; 2 |] |] in
  let r = Rotation.make g rot in
  check "genus" 0 (Rotation.genus r);
  check "faces" 4 (Rotation.face_count r)

let test_rotation_k4_twisted () =
  (* Swapping one rotation makes the K4 embedding toroidal. *)
  let g = Gen.complete 4 in
  let rot = [| [| 1; 2; 3 |]; [| 2; 3; 0 |]; [| 0; 3; 1 |]; [| 0; 1; 2 |] |] in
  let r = Rotation.make g rot in
  check_bool "not planar" true (Rotation.genus r > 0)

let test_faces_partition_darts () =
  let g = Gen.triangular_grid 3 3 in
  let r = Rotation.of_sorted_adjacency g in
  let total = List.fold_left (fun acc f -> acc + List.length f) 0 (Rotation.faces r) in
  check "darts" (2 * Gr.m g) total

let test_face_of_dart () =
  let r = Rotation.of_sorted_adjacency (Gen.cycle 4) in
  let f = Rotation.face_of_dart r (0, 1) in
  check "length" 4 (List.length f);
  check_bool "starts at dart" true (List.hd f = (0, 1))

let test_succ () =
  let g = Gen.star 4 in
  let r = Rotation.make g [| [| 2; 1; 3 |]; [| 0 |]; [| 0 |]; [| 0 |] |] in
  check "succ" 1 (Rotation.succ r 0 2);
  check "succ wrap" 2 (Rotation.succ r 0 3)

let test_mirror_roundtrip () =
  let g = Gen.complete 4 in
  let rot = [| [| 1; 3; 2 |]; [| 2; 3; 0 |]; [| 0; 3; 1 |]; [| 0; 1; 2 |] |] in
  let r = Rotation.make g rot in
  let m = Rotation.mirror r in
  check "mirror genus" (Rotation.genus r) (Rotation.genus m);
  Alcotest.(check (array int)) "double mirror" (Rotation.rotation r 0)
    (Rotation.rotation (Rotation.mirror m) 0)

let prop_mirror_preserves_genus =
  QCheck.Test.make ~name:"mirroring preserves genus and face count" ~count:40
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:12 ~m:20 in
      let r = Rotation.of_sorted_adjacency g in
      let m = Rotation.mirror r in
      Rotation.genus r = Rotation.genus m
      && Rotation.face_count r = Rotation.face_count m)

let prop_genus_label_invariant =
  QCheck.Test.make ~name:"genus of sorted-adjacency rotation is label-dependent but valid"
    ~count:40
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:12 ~m:20 in
      let r = Rotation.of_sorted_adjacency g in
      let genus = Rotation.genus r in
      (* Euler parity: n - m + f = 2 - 2g must hold exactly. *)
      genus >= 0
      && Gr.n g - Gr.m g + Rotation.face_count r = 2 - (2 * genus))

let prop_unsafe_of_validated_matches_make =
  (* The unvalidated fast path must package the exact same structure as
     [make] on every valid input: same cyclic orders, same successors,
     same faces, same genus. *)
  QCheck.Test.make ~name:"unsafe_of_validated behaves exactly like make"
    ~count:60
    QCheck.(int_range 0 10000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:14 ~m:22 in
      let rot = Array.init (Gr.n g) (fun v -> Array.copy (Gr.neighbors g v)) in
      (* Shuffle each order deterministically so the test is not about
         sorted adjacency only. *)
      let rng = Random.State.make [| seed; 77 |] in
      Array.iter
        (fun r ->
          for i = Array.length r - 1 downto 1 do
            let j = Random.State.int rng (i + 1) in
            let t = r.(i) in
            r.(i) <- r.(j);
            r.(j) <- t
          done)
        rot;
      let a = Rotation.make g rot in
      let b = Rotation.unsafe_of_validated g (Array.map Array.copy rot) in
      let ok = ref (Rotation.genus a = Rotation.genus b) in
      if Rotation.faces a <> Rotation.faces b then ok := false;
      for v = 0 to Gr.n g - 1 do
        if Rotation.rotation a v <> Rotation.rotation b v then ok := false;
        Gr.iter_neighbors g v (fun u ->
            if Rotation.succ a v u <> Rotation.succ b v u then ok := false)
      done;
      !ok)

let test_make_still_validates () =
  (* The checked constructor must keep rejecting garbage even though the
     unsafe path exists (pinning the satellite contract). *)
  let g = Gen.cycle 4 in
  (try
     ignore (Rotation.make g [| [| 1; 1 |]; [| 0; 2 |]; [| 1; 3 |]; [| 0; 2 |] |]);
     Alcotest.fail "duplicate neighbor accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Rotation.make g [| [| 1 |]; [| 0; 2 |]; [| 1; 3 |]; [| 0; 2 |] |]);
    Alcotest.fail "short rotation accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Gen                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gen_sizes () =
  check "path m" 9 (Gr.m (Gen.path 10));
  check "ladder m" 13 (Gr.m (Gen.ladder 5));
  check "fan m" 13 (Gr.m (Gen.fan 8));
  check "cycle m" 10 (Gr.m (Gen.cycle 10));
  check "star m" 9 (Gr.m (Gen.star 10));
  check "complete m" 45 (Gr.m (Gen.complete 10));
  check "k33 m" 9 (Gr.m (Gen.k33 ()));
  check "petersen m" 15 (Gr.m (Gen.petersen ()));
  check "wheel m" 18 (Gr.m (Gen.wheel 10));
  check "grid m" 17 (Gr.m (Gen.grid 3 4));
  check "tri grid m" 23 (Gr.m (Gen.triangular_grid 3 4));
  check "toroidal m" 24 (Gr.m (Gen.toroidal_grid 3 4))

let test_gen_k4_subdivision () =
  let g = Gen.k4_subdivision 5 in
  check "n" (4 + (6 * 4)) (Gr.n g);
  check "m" 30 (Gr.m g);
  (* Exactly four degree-3 vertices; the rest have degree 2. *)
  let deg3 = ref 0 in
  for v = 0 to Gr.n g - 1 do
    let d = Gr.degree g v in
    check_bool "deg 2 or 3" true (d = 2 || d = 3);
    if d = 3 then incr deg3
  done;
  check "four branch vertices" 4 !deg3

let test_gen_subdivide_identity () =
  let g = Gen.petersen () in
  check "same m" (Gr.m g) (Gr.m (Gen.subdivide g 1))

let test_gen_maximal_planar () =
  let g = Gen.random_maximal_planar ~seed:42 50 in
  check "m = 3n - 6" (3 * 50 - 6) (Gr.m g);
  check_bool "connected" true (Traverse.is_connected g)

let test_gen_random_planar () =
  let g = Gen.random_planar ~seed:5 ~n:40 ~m:70 in
  check "n" 40 (Gr.n g);
  check "m" 70 (Gr.m g);
  check_bool "connected" true (Traverse.is_connected g)

let test_gen_random_tree () =
  let g = Gen.random_tree ~seed:1 30 in
  check "m" 29 (Gr.m g);
  check_bool "connected" true (Traverse.is_connected g)

let test_gen_outerplanar_shape () =
  let g = Gen.random_outerplanar ~seed:9 ~n:20 ~chord_prob:0.7 in
  check_bool "connected" true (Traverse.is_connected g);
  check_bool "has cycle edges" true (Gr.m g >= 20);
  (* maximal outerplanar has at most 2n - 3 edges *)
  check_bool "edge bound" true (Gr.m g <= (2 * 20) - 3)

let test_gen_random_connected () =
  let g = Gen.random_connected_graph ~seed:2 ~n:25 ~m:50 in
  check "m" 50 (Gr.m g);
  check_bool "connected" true (Traverse.is_connected g)

let prop_permutation_valid =
  QCheck.Test.make ~name:"random_permutation is a permutation" ~count:50
    QCheck.(pair (int_range 0 1000) (int_range 1 50))
    (fun (seed, n) ->
      let p = Gen.random_permutation ~seed n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.for_all (fun b -> b) seen)

let () =
  Alcotest.run "graph"
    [
      ( "gr",
        [
          Alcotest.test_case "dedup" `Quick test_of_edges_dedup;
          Alcotest.test_case "self-loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "range" `Quick test_out_of_range_rejected;
          Alcotest.test_case "sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "mem_edge" `Quick test_mem_edge;
          Alcotest.test_case "edge_index" `Quick test_edge_index_roundtrip;
          Alcotest.test_case "iter/fold neighbors" `Quick
            test_iter_fold_neighbors;
          Alcotest.test_case "darts" `Quick test_darts;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "induced dup" `Quick test_induced_duplicate_rejected;
          Alcotest.test_case "union_vertices" `Quick test_union_vertices;
          Alcotest.test_case "relabel" `Quick test_relabel_preserves_degrees;
        ] );
      ( "unionfind",
        Alcotest.test_case "basic" `Quick test_unionfind_basic
        :: List.map QCheck_alcotest.to_alcotest [ prop_unionfind_vs_naive ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs grid" `Quick test_bfs_grid_distances;
          Alcotest.test_case "tree_path" `Quick test_tree_path;
          Alcotest.test_case "subtree sizes" `Quick test_subtree_sizes;
          Alcotest.test_case "dfs path" `Quick test_dfs_path;
          Alcotest.test_case "dfs deep" `Quick test_dfs_deep_no_overflow;
          QCheck_alcotest.to_alcotest prop_dfs_spans_component;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "diameter" `Quick test_diameter_cycle;
          Alcotest.test_case "k4 subdivision diameter" `Quick
            test_diameter_k4_subdivision;
          QCheck_alcotest.to_alcotest prop_bfs_dist_triangle;
        ] );
      ( "bicon",
        [
          Alcotest.test_case "cycle" `Quick test_bicon_cycle;
          Alcotest.test_case "path" `Quick test_bicon_path;
          Alcotest.test_case "two triangles" `Quick test_bicon_two_triangles;
          Alcotest.test_case "paper id" `Quick test_bicon_paper_id;
          Alcotest.test_case "block-cut tree" `Quick test_block_cut_tree;
          QCheck_alcotest.to_alcotest prop_cut_vertices_match_brute_force;
          QCheck_alcotest.to_alcotest prop_each_edge_in_one_component;
          QCheck_alcotest.to_alcotest prop_flat_membership_consistent;
          QCheck_alcotest.to_alcotest prop_cut_iff_two_components;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "validation" `Quick test_rotation_validation;
          Alcotest.test_case "cycle planar" `Quick test_rotation_cycle_planar;
          Alcotest.test_case "k4 planar" `Quick test_rotation_k4;
          Alcotest.test_case "k4 twisted" `Quick test_rotation_k4_twisted;
          Alcotest.test_case "darts partition" `Quick test_faces_partition_darts;
          Alcotest.test_case "face of dart" `Quick test_face_of_dart;
          Alcotest.test_case "succ" `Quick test_succ;
          Alcotest.test_case "mirror" `Quick test_mirror_roundtrip;
          QCheck_alcotest.to_alcotest prop_mirror_preserves_genus;
          QCheck_alcotest.to_alcotest prop_genus_label_invariant;
          QCheck_alcotest.to_alcotest prop_unsafe_of_validated_matches_make;
          Alcotest.test_case "make still validates" `Quick test_make_still_validates;
        ] );
      ( "gen",
        [
          Alcotest.test_case "sizes" `Quick test_gen_sizes;
          Alcotest.test_case "k4 subdivision" `Quick test_gen_k4_subdivision;
          Alcotest.test_case "subdivide k=1" `Quick test_gen_subdivide_identity;
          Alcotest.test_case "maximal planar" `Quick test_gen_maximal_planar;
          Alcotest.test_case "random planar" `Quick test_gen_random_planar;
          Alcotest.test_case "random tree" `Quick test_gen_random_tree;
          Alcotest.test_case "outerplanar" `Quick test_gen_outerplanar_shape;
          Alcotest.test_case "random connected" `Quick test_gen_random_connected;
          QCheck_alcotest.to_alcotest prop_permutation_valid;
        ] );
    ]
