(* Tests for the CONGEST simulator: the engine's bandwidth enforcement and
   quiescence semantics, the real protocols against their centralized
   counterparts, and the cost model's arithmetic. *)

let check = Alcotest.(check int)

(* Engine knobs ride in a Network.Config.t; this keeps the bodies short. *)
let cfg = Network.Config.make

(* ------------------------------------------------------------------ *)
(* Network engine                                                      *)
(* ------------------------------------------------------------------ *)

(* A one-shot protocol: every node sends its id to every neighbor once. *)
let hello_proto bits =
  {
    Network.init =
      (fun g v ->
        ((), Array.to_list (Array.map (fun w -> (w, v)) (Gr.neighbors g v))));
    round = (fun _g _v st _inbox -> (st, []));
    msg_bits = (fun _ -> bits);
  }

let test_quiescence () =
  let g = Gen.cycle 6 in
  let m = Metrics.create g in
  let r =
    Network.exec
      ~config:(cfg ~observe:(Observe.of_metrics m) ())
      g (hello_proto 8)
  in
  (* One spontaneous round of sends, then one delivery round. *)
  check "rounds" 1 (Metrics.rounds m);
  check "messages" 12 (Metrics.messages m);
  check "bits" (12 * 8) (Metrics.total_bits m);
  (* The engine's own report agrees with the metrics sink. *)
  check "result rounds" 1 r.Network.rounds;
  check "report messages" 12 r.Network.report.Network.messages;
  check "report bits" (12 * 8) r.Network.report.Network.bits;
  check "report max message" 8 r.Network.report.Network.max_message_bits;
  check "report burst" 8 r.Network.report.Network.max_round_edge_bits;
  check "report active peak" 6 r.Network.report.Network.active_peak

let test_report_without_sinks () =
  (* Observe.none: the flat counters are still tallied. *)
  let g = Gen.cycle 6 in
  let r = Network.exec g (hello_proto 8) in
  check "rounds" 1 r.Network.rounds;
  check "messages" 12 r.Network.report.Network.messages;
  Alcotest.(check bool) "no verdict" true (r.Network.report.Network.verdict = None)

let test_bounds_verdict () =
  (* A bounds request makes the run check itself even without a metrics
     sink. *)
  let g = Gen.cycle 8 in
  let r =
    Network.exec
      ~config:
        (cfg ~observe:(Observe.make ~bounds:(Observe.bounds_spec ~d:4 ()) ()) ())
      g (hello_proto 8)
  in
  match r.Network.report.Network.verdict with
  | None -> Alcotest.fail "expected a bounds verdict"
  | Some v -> Alcotest.(check bool) "bounds hold" true (Bounds.ok v)

let test_bandwidth_enforced () =
  let g = Gen.path 2 in
  (try
     ignore (Network.exec ~config:(cfg ~bandwidth:16 ()) g (hello_proto 17));
     Alcotest.fail "expected Bandwidth_exceeded"
   with Network.Bandwidth_exceeded { bits; _ } -> check "bits" 17 bits)

let test_bandwidth_cumulative () =
  (* Two messages of 10 bits to the same neighbor in one round must break a
     16-bit budget. *)
  let g = Gen.path 2 in
  let proto =
    {
      Network.init = (fun _g v -> ((), [ (1 - v, 0); (1 - v, 1) ]));
      round = (fun _g _v st _inbox -> (st, []));
      msg_bits = (fun _ -> 10);
    }
  in
  (try
     ignore (Network.exec ~config:(cfg ~bandwidth:16 ()) g proto);
     Alcotest.fail "expected Bandwidth_exceeded"
   with Network.Bandwidth_exceeded { bits; _ } -> check "bits" 20 bits)

let test_non_neighbor_rejected () =
  let g = Gr.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let proto =
    {
      Network.init = (fun _g v -> ((), if v = 0 then [ (2, 0) ] else []));
      round = (fun _g _v st _inbox -> (st, []));
      msg_bits = (fun _ -> 1);
    }
  in
  (try
     ignore (Network.exec g proto);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_livelock_guard () =
  (* A protocol that ping-pongs forever must hit max_rounds. *)
  let g = Gen.path 2 in
  let proto =
    {
      Network.init = (fun _g v -> ((), [ (1 - v, 0) ]));
      round = (fun _g v st _inbox -> (st, [ (1 - v, 0) ]));
      msg_bits = (fun _ -> 1);
    }
  in
  (try
     ignore (Network.exec ~config:(cfg ~max_rounds:10 ()) g proto);
     Alcotest.fail "expected No_quiescence"
   with Network.No_quiescence { round; active; messages } ->
     check "round" 10 round;
     (* Both endpoints of the path keep ping-ponging one message each. *)
     check "active" 2 active;
     check "messages" 2 messages)

(* ------------------------------------------------------------------ *)
(* Protocols vs centralized reference                                  *)
(* ------------------------------------------------------------------ *)

let test_leader_bfs_simple () =
  let g = Gen.path 5 in
  let states = Proto.leader_bfs g in
  Array.iteri
    (fun v st ->
      check "leader" 4 st.Proto.leader;
      check "dist" (4 - v) st.Proto.dist)
    states

let prop_leader_bfs_matches_centralized =
  QCheck.Test.make ~name:"leader_bfs agrees with centralized BFS from max id"
    ~count:60
    QCheck.(pair (int_range 0 100000) (int_range 2 40))
    (fun (seed, n) ->
      let g = Gen.random_connected_graph ~seed ~n ~m:(min (2 * n) (n * (n - 1) / 2)) in
      let states = Proto.leader_bfs g in
      let reference = Traverse.bfs g (n - 1) in
      let ok = ref true in
      Array.iteri
        (fun v st ->
          if st.Proto.leader <> n - 1 then ok := false;
          if st.Proto.dist <> reference.Traverse.dist.(v) then ok := false;
          (* The parent must be a neighbor one step closer. *)
          if v <> n - 1 then begin
            if not (Gr.mem_edge g v st.Proto.parent) then ok := false;
            if reference.Traverse.dist.(st.Proto.parent) <> st.Proto.dist - 1
            then ok := false
          end)
        states;
      !ok)

let prop_leader_bfs_rounds_linear_in_diameter =
  QCheck.Test.make ~name:"leader_bfs quiesces within O(D) rounds" ~count:30
    QCheck.(int_range 3 60)
    (fun n ->
      let g = Gen.cycle n in
      let m = Metrics.create g in
      let _ =
        Proto.leader_bfs ~config:(cfg ~observe:(Observe.of_metrics m) ()) g
      in
      let d = Traverse.diameter g in
      Metrics.rounds m <= (3 * d) + 3)

let test_convergecast_sum () =
  let g = Gen.binary_tree 15 in
  let bt = Traverse.bfs g 0 in
  let m = Metrics.create g in
  let total =
    Proto.convergecast
      ~config:(cfg ~observe:(Observe.of_metrics m) ())
      g ~parent:bt.Traverse.parent ~root:0
      ~values:(Array.init 15 (fun i -> i))
      ~op:( + ) ~value_bits:8
  in
  check "sum" (15 * 14 / 2) total;
  check "rounds = depth" (Traverse.depth bt) (Metrics.rounds m)

let prop_convergecast_max =
  QCheck.Test.make ~name:"convergecast computes max over random trees"
    ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 2 50))
    (fun (seed, n) ->
      let g = Gen.random_tree ~seed n in
      let bt = Traverse.bfs g 0 in
      let values = Array.init n (fun i -> (i * 7919) mod 1000) in
      let got =
        Proto.convergecast g ~parent:bt.Traverse.parent ~root:0 ~values
          ~op:max ~value_bits:10
      in
      got = Array.fold_left max 0 values)

let prop_subtree_sizes_protocol =
  QCheck.Test.make ~name:"subtree_sizes protocol matches centralized sizes"
    ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 2 50))
    (fun (seed, n) ->
      let g = Gen.random_connected_graph ~seed ~n ~m:(min (2 * n) (n * (n - 1) / 2)) in
      let bt = Traverse.bfs g 0 in
      let got = Proto.subtree_sizes g ~parent:bt.Traverse.parent ~root:0 in
      got = Traverse.subtree_sizes g bt)

let test_broadcast () =
  let g = Gen.random_tree ~seed:4 20 in
  let bt = Traverse.bfs g 0 in
  let m = Metrics.create g in
  let got =
    Proto.broadcast
      ~config:(cfg ~observe:(Observe.of_metrics m) ())
      g ~parent:bt.Traverse.parent ~root:0 ~value:42 ~value_bits:8
  in
  Array.iter (fun x -> check "value" 42 x) got;
  check "rounds = depth" (Traverse.depth bt) (Metrics.rounds m)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_charge_path () =
  let g = Gen.path 5 in
  let m = Metrics.create g in
  let c = Costmodel.create ~bandwidth:10 g m in
  Costmodel.charge_path c [ 0; 1; 2; 3 ] ~bits:25;
  (* 3 hops + ceil(25/10) - 1 = 3 + 3 - 1 = 5 rounds. *)
  check "rounds" 5 (Costmodel.clock c);
  check "edge bits" 25 (Metrics.edge_bits m (Gr.edge_index g 0 1));
  check "untouched edge" 0 (Metrics.edge_bits m (Gr.edge_index g 3 4))

let test_charge_path_trivial () =
  let g = Gen.path 3 in
  let m = Metrics.create g in
  let c = Costmodel.create ~bandwidth:10 g m in
  Costmodel.charge_path c [ 1 ] ~bits:100;
  Costmodel.charge_path c [] ~bits:100;
  check "no rounds" 0 (Costmodel.clock c)

let test_charge_tree_gather () =
  (* Star with center 0: each leaf ships 8 bits; the root edges each carry
     8 bits; depth 1, max load 8, B=8 -> 1 + 1 = 2 rounds. *)
  let g = Gen.star 5 in
  let m = Metrics.create g in
  let c = Costmodel.create ~bandwidth:8 g m in
  let bt = Traverse.bfs g 0 in
  Costmodel.charge_tree c ~root:0
    ~parent:(fun v -> bt.Traverse.parent.(v))
    ~members:[ 1; 2; 3; 4 ]
    ~bits_of:(fun _ -> 8);
  check "rounds" 2 (Costmodel.clock c);
  check "total" 32 (Metrics.total_bits m)

let test_charge_tree_loads_add_up () =
  (* Path rooted at 0: member 3's payload loads edges (0,1),(1,2),(2,3). *)
  let g = Gen.path 4 in
  let m = Metrics.create g in
  let c = Costmodel.create ~bandwidth:4 g m in
  let bt = Traverse.bfs g 0 in
  Costmodel.charge_tree c ~root:0
    ~parent:(fun v -> bt.Traverse.parent.(v))
    ~members:[ 3; 1 ]
    ~bits_of:(fun v -> if v = 3 then 8 else 4);
  check "edge 0-1 carries both" 12 (Metrics.edge_bits m (Gr.edge_index g 0 1));
  check "edge 2-3 carries one" 8 (Metrics.edge_bits m (Gr.edge_index g 2 3));
  (* depth 3 + ceil(12/4) = 6 *)
  check "rounds" 6 (Costmodel.clock c)

let test_charge_aggregate () =
  let g = Gen.path 4 in
  let m = Metrics.create g in
  let c = Costmodel.create ~bandwidth:4 g m in
  let bt = Traverse.bfs g 0 in
  Costmodel.charge_aggregate c ~root:0
    ~parent:(fun v -> bt.Traverse.parent.(v))
    ~members:[ 1; 2; 3 ] ~bits:8;
  (* Combining: every edge carries 8 bits once; depth 3 + ceil(8/4)-1. *)
  check "edge 0-1" 8 (Metrics.edge_bits m (Gr.edge_index g 0 1));
  check "rounds" 4 (Costmodel.clock c)

let test_branch_max () =
  let g = Gen.path 6 in
  let m = Metrics.create g in
  let c = Costmodel.create ~bandwidth:8 g m in
  Costmodel.branch_max c
    [
      (fun () -> Costmodel.advance c 5);
      (fun () -> Costmodel.advance c 11);
      (fun () -> Costmodel.advance c 2);
    ];
  check "max" 11 (Costmodel.clock c);
  Costmodel.advance c 1;
  check "sequential after" 12 (Costmodel.clock c)

let () =
  Alcotest.run "congest"
    [
      ( "network",
        [
          Alcotest.test_case "quiescence" `Quick test_quiescence;
          Alcotest.test_case "report without sinks" `Quick
            test_report_without_sinks;
          Alcotest.test_case "bounds verdict" `Quick test_bounds_verdict;
          Alcotest.test_case "bandwidth" `Quick test_bandwidth_enforced;
          Alcotest.test_case "bandwidth cumulative" `Quick
            test_bandwidth_cumulative;
          Alcotest.test_case "non-neighbor" `Quick test_non_neighbor_rejected;
          Alcotest.test_case "livelock guard" `Quick test_livelock_guard;
        ] );
      ( "protocols",
        [
          Alcotest.test_case "leader path" `Quick test_leader_bfs_simple;
          QCheck_alcotest.to_alcotest prop_leader_bfs_matches_centralized;
          QCheck_alcotest.to_alcotest prop_leader_bfs_rounds_linear_in_diameter;
          Alcotest.test_case "convergecast sum" `Quick test_convergecast_sum;
          QCheck_alcotest.to_alcotest prop_convergecast_max;
          QCheck_alcotest.to_alcotest prop_subtree_sizes_protocol;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
        ] );
      ( "costmodel",
        [
          Alcotest.test_case "path" `Quick test_charge_path;
          Alcotest.test_case "path trivial" `Quick test_charge_path_trivial;
          Alcotest.test_case "tree gather" `Quick test_charge_tree_gather;
          Alcotest.test_case "tree loads" `Quick test_charge_tree_loads_add_up;
          Alcotest.test_case "aggregate" `Quick test_charge_aggregate;
          Alcotest.test_case "branch max" `Quick test_branch_max;
        ] );
    ]
