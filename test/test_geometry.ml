(* Geometry pipeline tests (ISSUE 8).

   Three layers, in dependency order: the triangulation (planarity
   preserved, maximal, input rotation intact as a cyclic subsequence),
   the Schnyder drawing (grid bounds, distinct points, orientation
   validity, exhaustive no-crossing oracle on small inputs), and the
   face-routing engine (every random query on every planar family is
   Delivered over real edges — or Unreachable exactly when the
   endpoints sit in different components). *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let embed_exn g =
  match Planarity.embed g with
  | Planarity.Planar r -> r
  | Planarity.Nonplanar -> Alcotest.fail "family is planar but embed refused"

let families =
  [
    ("k4", Gen.complete 4);
    ("path", Gen.path 17);
    ("cycle", Gen.cycle 14);
    ("star", Gen.star 9);
    ("wheel", Gen.wheel 11);
    ("ladder", Gen.ladder 8);
    ("fan", Gen.fan 9);
    ("grid", Gen.grid 6 7);
    ("trigrid", Gen.triangular_grid 5 6);
    ("bintree", Gen.binary_tree 31);
    ("k4subdiv", Gen.k4_subdivision 4);
    ("maxplanar", Gen.random_maximal_planar ~seed:11 60);
    ("planar", Gen.random_planar ~seed:13 ~n:70 ~m:120);
    ("outerplanar", Gen.random_outerplanar ~seed:7 ~n:40 ~chord_prob:0.3);
    ("randtree", Gen.random_tree ~seed:5 40);
  ]

let disconnected =
  let base = Gen.grid 4 4 in
  let es = Gr.edges base in
  let shifted = List.map (fun (u, v) -> (u + 16, v + 16)) es in
  Gr.of_edges ~n:32 (es @ shifted)

(* ------------------------------------------------------------------ *)
(* Triangulation                                                       *)
(* ------------------------------------------------------------------ *)

(* The input rotation at every vertex must survive as a cyclic
   subsequence of the output rotation restricted to real edges. *)
let rotation_preserved r tri =
  let g = Rotation.graph r in
  let r' = Triangulate.rotation tri in
  let ok = ref true in
  for v = 0 to Gr.n g - 1 do
    let old_rot = Rotation.rotation r v in
    let real =
      Array.to_list (Rotation.rotation r' v)
      |> List.filter (fun u -> Gr.mem_edge g v u)
      |> Array.of_list
    in
    let d = Array.length old_rot in
    if d <> Array.length real then ok := false
    else if d > 0 then begin
      let shift = ref (-1) in
      for s = 0 to d - 1 do
        let all = ref true in
        for i = 0 to d - 1 do
          if real.((s + i) mod d) <> old_rot.(i) then all := false
        done;
        if !all then shift := s
      done;
      if !shift < 0 then ok := false
    end
  done;
  !ok

let test_triangulate_families () =
  List.iter
    (fun (name, g) ->
      let r = embed_exn g in
      let tri = Triangulate.make r in
      let g' = Triangulate.graph tri in
      let n = Gr.n g' in
      check_bool (name ^ ": output is planar") true
        (Rotation.is_planar_embedding (Triangulate.rotation tri));
      if n >= 3 then
        check (name ^ ": maximal planar edge count") ((3 * n) - 6) (Gr.m g');
      check
        (name ^ ": virtual count")
        (Gr.m g' - Gr.m g)
        (Triangulate.virtual_count tri);
      check_bool (name ^ ": rotation preserved") true (rotation_preserved r tri))
    (("two-grids", disconnected) :: families)

let test_triangulate_tiny () =
  List.iter
    (fun n ->
      let g = Gr.of_edges ~n [] in
      let r = embed_exn g in
      let tri = Triangulate.make r in
      check
        (Printf.sprintf "n=%d vertex count" n)
        n
        (Gr.n (Triangulate.graph tri)))
    [ 0; 1; 2 ];
  (* isolated vertices alongside an edge *)
  let g = Gr.of_edges ~n:5 [ (0, 1) ] in
  let tri = Triangulate.make (embed_exn g) in
  check "isolated: maximal" ((3 * 5) - 6) (Gr.m (Triangulate.graph tri))

let test_triangulate_rejects_nonplanar () =
  (* A K5 rotation system is planar as a map on some surface but not
     genus 0; Triangulate.make must refuse it. *)
  let g = Gen.complete 5 in
  let rot =
    Array.init 5 (fun v ->
        Array.of_list (List.filter (fun u -> u <> v) [ 0; 1; 2; 3; 4 ]))
  in
  let r = Rotation.make g rot in
  Alcotest.check_raises "nonplanar rotation refused"
    (Invalid_argument "Triangulate.make: rotation system is not planar")
    (fun () -> ignore (Triangulate.make r))

(* ------------------------------------------------------------------ *)
(* Schnyder drawing                                                    *)
(* ------------------------------------------------------------------ *)

let test_drawing_families () =
  List.iter
    (fun (name, g) ->
      let r = embed_exn g in
      let sch = Schnyder.draw r in
      let x, y = Schnyder.coords sch in
      let n = Gr.n g in
      let side = Schnyder.grid_side sch in
      if n >= 3 then check (name ^ ": grid side") (n - 2) side;
      check_bool (name ^ ": within grid") true (Drawing.within_grid ~x ~y ~side);
      check_bool (name ^ ": distinct points") true (Drawing.distinct ~x ~y);
      if n >= 3 then
        check_bool (name ^ ": orientation-valid") true
          (Drawing.valid_triangulation_drawing
             (Triangulate.rotation (Schnyder.triangulation sch))
             ~x ~y);
      (* The exhaustive O(m^2) oracle on the real graph's drawing: a
         sub-drawing of a plane drawing is plane. *)
      if Gr.m g <= 200 then
        check_bool (name ^ ": no crossings (exhaustive)") true
          (Drawing.first_crossing g ~x ~y = None))
    (("two-grids", disconnected) :: families)

let test_schnyder_trees () =
  (* Interior vertices have three distinct parents; roots have none in
     their own tree; every tree reaches its root. *)
  let g = Gen.random_maximal_planar ~seed:3 80 in
  let sch = Schnyder.draw (embed_exn g) in
  let r0, r1, r2 = Schnyder.roots sch in
  let roots = [| r0; r1; r2 |] in
  let n = Gr.n g in
  for i = 0 to 2 do
    check (Printf.sprintf "root %d is its own tree's root" i) (-1)
      (Schnyder.parent sch i roots.(i))
  done;
  for v = 0 to n - 1 do
    if v <> r0 && v <> r1 && v <> r2 then
      for i = 0 to 2 do
        let steps = ref 0 and u = ref v in
        while !u >= 0 && !steps <= n do
          u := Schnyder.parent sch i !u;
          incr steps
        done;
        check_bool
          (Printf.sprintf "tree %d from %d terminates" i v)
          true (!steps <= n)
      done
  done

(* Seeded sweep as a QCheck property: any planar graph family member
   drawn by the pipeline is a plane drawing. *)
let prop_drawing_plane =
  QCheck.Test.make ~count:40 ~name:"random planar graphs draw plane"
    QCheck.(pair (int_bound 1000) (int_range 4 60))
    (fun (seed, n) ->
      let g =
        if seed mod 2 = 0 then Gen.random_maximal_planar ~seed n
        else Gen.random_planar ~seed ~n ~m:(min ((3 * n) - 6) (2 * n))
      in
      match Planarity.embed g with
      | Planarity.Nonplanar -> false
      | Planarity.Planar r ->
          let sch = Schnyder.draw r in
          let x, y = Schnyder.coords sch in
          Drawing.within_grid ~x ~y ~side:(Schnyder.grid_side sch)
          && Drawing.distinct ~x ~y
          && Drawing.first_crossing g ~x ~y = None)

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let valid_path g src dst path =
  let rec edges_ok = function
    | a :: (b :: _ as tl) -> Gr.mem_edge g a b && edges_ok tl
    | _ -> true
  in
  (match path with v :: _ -> v = src | [] -> false)
  && (match List.rev path with v :: _ -> v = dst | [] -> false)
  && edges_ok path

let test_routing_delivers () =
  List.iter
    (fun (name, g) ->
      let e = Route.make (Schnyder.draw (embed_exn g)) in
      let n = Gr.n g in
      let rng = Random.State.make [| 97; n |] in
      for _ = 1 to 60 do
        let src = Random.State.int rng n and dst = Random.State.int rng n in
        match Route.route e src dst with
        | Route.Delivered { path; hops; greedy_hops; face_hops; _ } ->
            check_bool (name ^ ": path valid") true (valid_path g src dst path);
            check (name ^ ": hops = path length") (List.length path - 1) hops;
            check (name ^ ": hop split") hops (greedy_hops + face_hops);
            let dist = (Traverse.distances g src).(dst) in
            check_bool (name ^ ": stretch >= 1") true (hops >= dist)
        | Route.Unreachable ->
            let dist = (Traverse.distances g src).(dst) in
            check_bool (name ^ ": unreachable is real") true
              (dist < 0 && src <> dst)
        | Route.Stuck { at; hops } ->
            Alcotest.fail
              (Printf.sprintf "%s: stuck %d->%d at %d after %d hops" name src
                 dst at hops)
      done)
    (("two-grids", disconnected) :: families)

let test_routing_edge_cases () =
  let g = Gen.grid 5 5 in
  let e = Route.make (Schnyder.draw (embed_exn g)) in
  (match Route.route e 7 7 with
  | Route.Delivered { path; hops; _ } ->
      check "src=dst path" 1 (List.length path);
      check "src=dst hops" 0 hops
  | _ -> Alcotest.fail "src=dst must deliver");
  Alcotest.check_raises "out of range"
    (Invalid_argument "Route.route: vertex out of range") (fun () ->
      ignore (Route.route e 0 25));
  (* different components are Unreachable, same component delivers *)
  let e2 = Route.make (Schnyder.draw (embed_exn disconnected)) in
  (match Route.route e2 0 17 with
  | Route.Unreachable -> ()
  | _ -> Alcotest.fail "cross-component must be Unreachable");
  match Route.route e2 16 31 with
  | Route.Delivered _ -> ()
  | _ -> Alcotest.fail "same component must deliver"

let test_batch_matches_serial () =
  let g = Gen.random_maximal_planar ~seed:19 300 in
  let e = Route.make (Schnyder.draw (embed_exn g)) in
  let rng = Random.State.make [| 5; 300 |] in
  let pairs =
    Array.init 200 (fun _ ->
        (Random.State.int rng 300, Random.State.int rng 300))
  in
  let serial = Route.route_batch e pairs in
  let pool = Pool.create ~domains:4 () in
  let batched = Route.route_batch ~pool e pairs in
  Pool.shutdown pool;
  Array.iteri
    (fun i o ->
      check_bool
        (Printf.sprintf "query %d identical" i)
        true (o = serial.(i)))
    batched

let () =
  Alcotest.run "geometry"
    [
      ( "triangulate",
        [
          Alcotest.test_case "families" `Quick test_triangulate_families;
          Alcotest.test_case "tiny and isolated" `Quick test_triangulate_tiny;
          Alcotest.test_case "nonplanar refused" `Quick
            test_triangulate_rejects_nonplanar;
        ] );
      ( "drawing",
        [
          Alcotest.test_case "families" `Quick test_drawing_families;
          Alcotest.test_case "schnyder trees" `Quick test_schnyder_trees;
        ] );
      ( "routing",
        [
          Alcotest.test_case "delivery on all families" `Quick
            test_routing_delivers;
          Alcotest.test_case "edge cases" `Quick test_routing_edge_cases;
          Alcotest.test_case "batch matches serial" `Quick
            test_batch_matches_serial;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_drawing_plane ] );
    ]
