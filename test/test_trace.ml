(* Tests for the observability layer: the Bounds checker asserts the
   paper's Theorem 1.1 round bound and the O(log n) message budget on
   families with known diameter; the Trace journal is checked for span
   well-formedness and for emitting valid JSON (parsed by the minimal
   JSON reader below, mirroring the `python -m json.tool` acceptance
   gate); the Metrics round log is checked for internal consistency. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader (well-formedness oracle for the journal)      *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter (fun c -> expect c) word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance ()
          | Some '\\' -> Buffer.add_char b '\\'; advance ()
          | Some '/' -> Buffer.add_char b '/'; advance ()
          | Some 'b' -> Buffer.add_char b '\b'; advance ()
          | Some 'f' -> Buffer.add_char b '\012'; advance ()
          | Some 'n' -> Buffer.add_char b '\n'; advance ()
          | Some 'r' -> Buffer.add_char b '\r'; advance ()
          | Some 't' -> Buffer.add_char b '\t'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              (try Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
               with _ -> fail "bad \\u escape");
              pos := !pos + 4
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          if Char.code c < 0x20 then fail "control char in string";
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj key =
  match obj with
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> Alcotest.failf "missing JSON field %S" key)
  | _ -> Alcotest.fail "expected a JSON object"

let arr_len = function
  | Arr xs -> List.length xs
  | _ -> Alcotest.fail "expected a JSON array"

(* ------------------------------------------------------------------ *)
(* Theorem 1.1 bound checks on families with known diameter            *)
(* ------------------------------------------------------------------ *)

(* Observed round constants on these families sit at 3-6 (see the TRACE
   experiment); c = 12 gives 2x headroom while still failing loudly if a
   regression costs an extra log factor. *)
let c_rounds = 12

let assert_bounds name g ~d =
  let o = Embedder.run ~mode:Part.Economy g in
  let r = o.Embedder.report in
  check_bool (name ^ " planar") true (o.Embedder.rotation <> None);
  let v =
    Bounds.check ~c_rounds ~n:r.Embedder.n ~d ~bandwidth:r.Embedder.bandwidth
      r.Embedder.metrics
  in
  if not (Bounds.ok v) then
    Alcotest.failf "%s: %s" name (Format.asprintf "%a" Bounds.pp v)

let test_bounds_grid () =
  List.iter
    (fun (rows, cols) ->
      assert_bounds
        (Printf.sprintf "grid %dx%d" rows cols)
        (Gen.grid rows cols)
        ~d:(rows - 1 + cols - 1))
    [ (4, 4); (5, 8); (8, 8); (6, 10) ]

let test_bounds_cycle () =
  List.iter
    (fun n ->
      assert_bounds (Printf.sprintf "cycle %d" n) (Gen.cycle n) ~d:(n / 2))
    [ 8; 12; 20; 32; 64 ]

let test_bounds_negative () =
  (* A run that blows the round bound must be flagged, not excused. *)
  let g = Gen.cycle 8 in
  let m = Metrics.create g in
  Metrics.add_rounds m 1_000_000;
  let v = Bounds.check ~n:8 ~d:4 m in
  check_bool "rounds flagged" false v.Bounds.rounds_ok;
  check_bool "not ok" false (Bounds.ok v);
  (try
     Bounds.assert_ok v;
     Alcotest.fail "expected assert_ok to raise"
   with Failure _ -> ());
  let m2 = Metrics.create g in
  Metrics.add_message m2 ~u:0 ~v:1 ~bits:10_000;
  let v2 = Bounds.check ~n:8 ~d:4 m2 in
  check_bool "message flagged" false v2.Bounds.message_ok

(* ------------------------------------------------------------------ *)
(* Trace structure                                                     *)
(* ------------------------------------------------------------------ *)

let traced_run g =
  let tr = Trace.create () in
  let o =
    Embedder.run
      ~config:(Network.Config.make ~observe:(Observe.of_trace tr) ())
      ~mode:Part.Economy g
  in
  (tr, o)

let test_spans_well_formed () =
  let (tr, o) = traced_run (Gen.grid 6 6) in
  check_bool "planar" true (o.Embedder.rotation <> None);
  check "no dangling spans" 0 (Trace.open_spans tr);
  check "no dropped events" 0 (Trace.dropped tr);
  let spans = Trace.spans tr in
  check_bool "spans recorded" true (List.length spans > 0);
  List.iter
    (fun s ->
      check_bool
        (Printf.sprintf "span %s runs forward" s.Trace.name)
        true
        (s.Trace.end_round >= s.Trace.start_round);
      check_bool "non-negative depth" true (s.Trace.depth >= 0))
    spans;
  let names = List.map (fun (name, _, _, _) -> name) (Trace.summary tr) in
  List.iter
    (fun expected ->
      check_bool (expected ^ " present") true (List.mem expected names))
    [ "leader-election+bfs"; "count-n"; "recursive-embedding"; "recurse.d0";
      "schedule.merge" ]

let test_span_attrs () =
  let (tr, _) = traced_run (Gen.grid 5 5) in
  let merges =
    List.filter (fun s -> s.Trace.name = "schedule.merge") (Trace.spans tr)
  in
  check_bool "merge spans exist" true (merges <> []);
  List.iter
    (fun s ->
      List.iter
        (fun key ->
          check_bool (key ^ " attr present") true
            (List.mem_assoc key s.Trace.attrs))
        [ "p0_len"; "hanging"; "survivors"; "retired" ])
    merges

let test_event_cap () =
  let tr = Trace.create ~max_events:10 () in
  for i = 1 to 100 do
    Trace.note tr "x" i ~round:i
  done;
  check "kept" 10 (List.length (Trace.events tr));
  check "dropped" 90 (Trace.dropped tr)

(* ------------------------------------------------------------------ *)
(* Round log consistency                                               *)
(* ------------------------------------------------------------------ *)

let test_round_log_consistent () =
  let g = Gen.grid 6 6 in
  let m = Metrics.create g in
  let _ =
    Proto.leader_bfs
      ~config:(Network.Config.make ~observe:(Observe.of_metrics m) ())
      g
  in
  let log = Metrics.round_log m in
  check "one record per executed round" (Metrics.rounds m + 1)
    (List.length log);
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 log in
  check "messages add up" (Metrics.messages m) (sum (fun r -> r.Metrics.messages));
  check "bits add up" (Metrics.total_bits m) (sum (fun r -> r.Metrics.bits));
  List.iteri
    (fun i r -> check "rounds are contiguous" i r.Metrics.round)
    log;
  check_bool "active peak sane" true
    (Metrics.active_peak m > 0 && Metrics.active_peak m <= Gr.n g);
  check_bool "bursts respect the bandwidth" true
    (Metrics.max_round_edge_bits m <= Network.default_bandwidth g);
  check_bool "some message recorded" true (Metrics.max_message_bits m > 0)

let test_round_log_continues_across_runs () =
  (* Two protocol runs on one metrics object share a timeline. *)
  let g = Gen.binary_tree 15 in
  let m = Metrics.create g in
  let states =
    Proto.leader_bfs
      ~config:(Network.Config.make ~observe:(Observe.of_metrics m) ())
      g
  in
  let rounds_after_first = Metrics.rounds m in
  let parent = Array.map (fun s -> s.Proto.parent) states in
  let root = states.(0).Proto.leader in
  let _ =
    Proto.convergecast
      ~config:(Network.Config.make ~observe:(Observe.of_metrics m) ())
      g ~parent ~root
      ~values:(Array.make 15 1) ~op:( + ) ~value_bits:4
  in
  let log = Metrics.round_log m in
  check_bool "second run offset past the first" true
    (List.exists (fun r -> r.Metrics.round >= rounds_after_first) log);
  (* The second run's round 0 lands on the first run's final round number
     (one shared timeline), so the log is non-decreasing, not strict. *)
  let rs = List.map (fun r -> r.Metrics.round) log in
  check_bool "the timeline never goes backwards" true
    (List.sort compare rs = rs)

(* ------------------------------------------------------------------ *)
(* JSON journal                                                        *)
(* ------------------------------------------------------------------ *)

let test_json_well_formed () =
  let g = Gen.grid 6 6 in
  let tr = Trace.create () in
  let o =
    Embedder.run
      ~config:(Network.Config.make ~observe:(Observe.of_trace tr) ())
      ~mode:Part.Economy g
  in
  let r = o.Embedder.report in
  let s =
    Trace.to_json_string ~name:"grid-6x6"
      ~meta:[ ("n", r.Embedder.n); ("m", r.Embedder.m) ]
      ~metrics:r.Embedder.metrics tr
  in
  let j = parse_json s in
  (match field j "schema" with
  | Str "distplanar-trace/1" -> ()
  | _ -> Alcotest.fail "bad schema");
  (match field (field j "meta") "n" with
  | Num f -> check "meta n" (Gr.n g) (int_of_float f)
  | _ -> Alcotest.fail "meta.n not a number");
  check_bool "spans present" true (arr_len (field j "spans") > 0);
  check_bool "round histogram present" true (arr_len (field j "rounds") > 0);
  check_bool "edge table present" true (arr_len (field j "edges") > 0);
  (match field j "open_spans" with
  | Num 0.0 -> ()
  | _ -> Alcotest.fail "open_spans should be 0");
  (* Spot-check one span record's fields. *)
  match field j "spans" with
  | Arr (span :: _) ->
      List.iter
        (fun key -> ignore (field span key))
        [ "name"; "depth"; "start"; "end"; "rounds"; "attrs" ]
  | _ -> Alcotest.fail "no spans"

let test_json_messages_kept () =
  let g = Gen.cycle 6 in
  let m = Metrics.create g in
  let tr = Trace.create ~keep_messages:true () in
  let _ =
    Proto.leader_bfs
      ~config:
        (Network.Config.make ~observe:(Observe.make ~metrics:m ~trace:tr ()) ())
      g
  in
  let j = parse_json (Trace.to_json_string ~metrics:m tr) in
  check "every message in the journal" (Metrics.messages m)
    (arr_len (field j "messages"))

let test_json_escaping () =
  let tr = Trace.create () in
  Trace.span_open tr "quote\"back\\slash\ttab" ~round:0;
  Trace.span_close tr ~round:1 ();
  let j = parse_json (Trace.to_json_string ~name:"we\"ird" tr) in
  match field j "spans" with
  | Arr [ span ] -> (
      match field span "name" with
      | Str s -> Alcotest.(check string) "escaped name" "quote\"back\\slash\ttab" s
      | _ -> Alcotest.fail "span name not a string")
  | _ -> Alcotest.fail "expected one span"

let () =
  Alcotest.run "trace"
    [
      ( "bounds",
        [
          Alcotest.test_case "Theorem 1.1 on grids" `Quick test_bounds_grid;
          Alcotest.test_case "Theorem 1.1 on cycles" `Quick test_bounds_cycle;
          Alcotest.test_case "violations flagged" `Quick test_bounds_negative;
        ] );
      ( "spans",
        [
          Alcotest.test_case "well-formed" `Quick test_spans_well_formed;
          Alcotest.test_case "merge attrs" `Quick test_span_attrs;
          Alcotest.test_case "event cap" `Quick test_event_cap;
        ] );
      ( "round log",
        [
          Alcotest.test_case "consistent" `Quick test_round_log_consistent;
          Alcotest.test_case "continues across runs" `Quick
            test_round_log_continues_across_runs;
        ] );
      ( "json",
        [
          Alcotest.test_case "well-formed" `Quick test_json_well_formed;
          Alcotest.test_case "messages kept" `Quick test_json_messages_kept;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
        ] );
    ]
