(* Differential suite for the incremental maintainer (ISSUE 9).

   The core harness replays seeded churn traces over every generator
   family while mirroring the live edge set in a reference table: each
   insert's verdict is compared against a from-scratch kernel run on the
   mirror, each delete's boolean against mirror membership, and at every
   batch boundary the maintained rotation must (a) hold exactly the
   mirror's edges, (b) pass the Euler genus check, and (c) — whenever
   the graph is connected — produce a certificate that the distributed
   verifier accepts. Directed tests pin the individual update paths:
   a theta-graph insert that provably cannot ride the fast path, the
   non-planar rejection leaving the state untouched bit-for-bit, bridge
   links, stale-connectivity fallbacks, and the delete-triggered scoped
   re-decomposition. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let planar g =
  match Planarity.embed g with
  | Planarity.Planar _ -> true
  | Planarity.Nonplanar -> false

let sorted_edges l =
  List.sort compare (List.map (fun (u, v) -> (min u v, max u v)) l)

(* ------------------------------------------------------------------ *)
(* Mirror-differential trace replay                                    *)
(* ------------------------------------------------------------------ *)

let mirror_key n u v = if u < v then (u * n) + v else (v * n) + u

let accepted = function
  | Incremental.Fast | Incremental.Linked | Incremental.Reembedded _ -> true
  | Incremental.Rejected | Incremental.Duplicate -> false

let check_batch name inc mirror =
  check_bool (name ^ ": euler check") true (Incremental.validate inc);
  check (name ^ ": live edge count") (Hashtbl.length mirror) (Incremental.m inc);
  let got = sorted_edges (Incremental.live_edges inc) in
  let want =
    sorted_edges (Hashtbl.fold (fun _ e acc -> e :: acc) mirror [])
  in
  Alcotest.(check (list (pair int int))) (name ^ ": edge sets agree") want got;
  let r = Incremental.rotation inc in
  let g = Rotation.graph r in
  if Gr.m g > 0 && Traverse.is_connected g then begin
    let cert = Certify.prove r in
    let outcome = Certify.verify r cert in
    check_bool (name ^ ": certificate accepted") true outcome.Certify.all_accept
  end

let run_trace name ?(fresh_prob = 0.1) ?(insert_pct = 60) ?(updates = 300)
    ?(batch = 60) ~seed g =
  let n = Gr.n g in
  let tr = Churn.make ~seed ~updates ~insert_pct ~fresh_prob g in
  let g0 = Churn.initial_graph tr in
  check_bool (name ^ ": pool subset is planar") true (planar g0);
  let inc = Incremental.create g0 in
  let mirror = Hashtbl.create 64 in
  List.iter
    (fun (u, v) -> Hashtbl.replace mirror (mirror_key n u v) (min u v, max u v))
    tr.Churn.initial;
  check_batch (name ^ " @init") inc mirror;
  Array.iteri
    (fun i op ->
      (match op with
      | Churn.Insert (u, v) ->
          let k = mirror_key n u v in
          let res = Incremental.insert inc u v in
          if Hashtbl.mem mirror k then
            check_bool
              (Printf.sprintf "%s op %d: duplicate" name i)
              true
              (res = Incremental.Duplicate)
          else begin
            let g' =
              Gr.of_edges ~n
                ((u, v) :: Hashtbl.fold (fun _ e acc -> e :: acc) mirror [])
            in
            let expect = planar g' in
            check_bool
              (Printf.sprintf "%s op %d: insert (%d,%d) verdict" name i u v)
              expect (accepted res);
            if expect then Hashtbl.replace mirror k (min u v, max u v)
          end
      | Churn.Delete (u, v) ->
          let k = mirror_key n u v in
          let expect = Hashtbl.mem mirror k in
          check_bool
            (Printf.sprintf "%s op %d: delete (%d,%d) verdict" name i u v)
            expect
            (Incremental.delete inc u v);
          Hashtbl.remove mirror k);
      if (i + 1) mod batch = 0 then
        check_batch (Printf.sprintf "%s @%d" name (i + 1)) inc mirror)
    tr.Churn.ops;
  check_batch (name ^ " @end") inc mirror;
  (* Within-pool inserts of a planar pool can only be rejected when an
     accepted fresh edge is in the way; with fresh_prob = 0 none may be. *)
  if fresh_prob = 0.0 then
    check (name ^ ": no rejects within pool") 0 (Incremental.stats inc).rejected

let families =
  [
    ("grid", Gen.grid 12 10);
    ("trigrid", Gen.triangular_grid 9 9);
    ("maxplanar", Gen.random_maximal_planar ~seed:3 80);
    ("outerplanar", Gen.random_outerplanar ~seed:5 ~n:120 ~chord_prob:0.3);
    ("random-planar", Gen.random_planar ~seed:7 ~n:150 ~m:300);
    ("ladder", Gen.ladder 40);
    ("tree", Gen.random_tree ~seed:11 100);
    ("k4subdiv", Gen.k4_subdivision 10);
    ("fan", Gen.fan 30);
  ]

let test_differential_families () =
  List.iteri
    (fun i (name, g) -> run_trace name ~seed:(1000 + (17 * i)) g)
    families

let test_differential_insert_heavy () =
  run_trace "grid-heavy" ~seed:42 ~fresh_prob:0.0 ~insert_pct:95 ~updates:400
    (Gen.grid 14 10);
  run_trace "maxplanar-heavy" ~seed:43 ~fresh_prob:0.0 ~insert_pct:95
    ~updates:400
    (Gen.random_maximal_planar ~seed:9 120)

let test_differential_delete_heavy () =
  run_trace "grid-del" ~seed:44 ~fresh_prob:0.05 ~insert_pct:25 ~updates:400
    (Gen.grid 12 12)

(* ------------------------------------------------------------------ *)
(* Directed path coverage                                              *)
(* ------------------------------------------------------------------ *)

(* Theta-4: hubs 0, 1 joined by four length-2 paths through 2, 3, 4, 5,
   plus a pendant triangle 0-6-7 so the merge-back has non-scope darts
   to preserve at hub 0. Any plane embedding orders the four paths in a
   cycle, so exactly two pairs of middle vertices share no face: an
   insert between such a pair is planar but forces a scoped re-run. *)
let theta4 () =
  Gr.of_edges ~n:8
    [
      (0, 2); (2, 1); (0, 3); (3, 1); (0, 4); (4, 1); (0, 5); (5, 1);
      (0, 6); (6, 7); (7, 0);
    ]

let face_sharing_pairs r vs =
  let faces = Rotation.faces r in
  let share u v =
    List.exists
      (fun f ->
        List.exists (fun (s, _) -> s = u) f
        && List.exists (fun (s, _) -> s = v) f)
      faces
  in
  List.concat_map
    (fun u -> List.filter_map (fun v -> if u < v && share u v then Some (u, v) else None) vs)
    vs

let test_reembed_path () =
  let inc = Incremental.create (theta4 ()) in
  let middles = [ 2; 3; 4; 5 ] in
  let sharing = face_sharing_pairs (Incremental.rotation inc) middles in
  let non_sharing =
    List.filter
      (fun (u, v) -> not (List.mem (u, v) sharing))
      (List.concat_map
         (fun u ->
           List.filter_map (fun v -> if u < v then Some (u, v) else None) middles)
         middles)
  in
  check "exactly two non-face-sharing middle pairs" 2 (List.length non_sharing);
  let u, v = List.hd non_sharing in
  (match Incremental.insert inc u v with
  | Incremental.Reembedded k -> check_bool "scope is non-trivial" true (k >= 9)
  | other ->
      Alcotest.failf "expected Reembedded, got %s"
        (match other with
        | Incremental.Fast -> "Fast"
        | Incremental.Linked -> "Linked"
        | Incremental.Rejected -> "Rejected"
        | Incremental.Duplicate -> "Duplicate"
        | Incremental.Reembedded _ -> assert false));
  check "reembed counted once" 1 (Incremental.stats inc).reembedded;
  check_bool "still a plane embedding" true (Incremental.validate inc);
  check_bool "new edge present" true (Incremental.mem inc u v);
  check_bool "pendant triangle preserved" true
    (Incremental.mem inc 0 6 && Incremental.mem inc 6 7 && Incremental.mem inc 7 0);
  (* The whole graph (theta + chord + triangle) must still certify. *)
  let r = Incremental.rotation inc in
  let outcome = Certify.verify r (Certify.prove r) in
  check_bool "certifies after merge-back" true outcome.Certify.all_accept

let test_reject_leaves_state () =
  (* K5 minus an edge is planar; the missing edge must be rejected with
     no state change. *)
  let k5m = Gr.of_edges ~n:5 [ (0,1); (0,2); (0,3); (0,4); (1,2); (1,3); (1,4); (2,3); (2,4) ] in
  let inc = Incremental.create k5m in
  let before = sorted_edges (Incremental.live_edges inc) in
  let r_before = Incremental.rotation inc in
  check_bool "K5 completion rejected" true
    (Incremental.insert inc 3 4 = Incremental.Rejected);
  check "edge count unchanged" 9 (Incremental.m inc);
  Alcotest.(check (list (pair int int)))
    "edge set unchanged" before
    (sorted_edges (Incremental.live_edges inc));
  let r_after = Incremental.rotation inc in
  List.iter
    (fun v ->
      Alcotest.(check (array int))
        (Printf.sprintf "ring of %d unchanged" v)
        (Rotation.rotation r_before v) (Rotation.rotation r_after v))
    [ 0; 1; 2; 3; 4 ];
  check "rejection counted" 1 (Incremental.stats inc).rejected;
  (* K33 via its last edge, same story. *)
  let k33m = Gr.of_edges ~n:6 [ (0,3); (0,4); (0,5); (1,3); (1,4); (1,5); (2,3); (2,4) ] in
  let inc = Incremental.create k33m in
  check_bool "K33 completion rejected" true
    (Incremental.insert inc 2 5 = Incremental.Rejected);
  check_bool "still valid after rejection" true (Incremental.validate inc);
  (* And the maintainer keeps working after a rejection. *)
  check_bool "subsequent delete works" true (Incremental.delete inc 0 3);
  check_bool "K33 minus two edges accepted" true
    (accepted (Incremental.insert inc 2 5));
  check_bool "still valid" true (Incremental.validate inc)

let test_link_and_isolated () =
  let g = Gr.of_edges ~n:8 [ (0,1); (1,2); (2,0); (3,4); (4,5); (5,3) ] in
  let inc = Incremental.create g in
  check_bool "bridge is Linked" true
    (Incremental.insert inc 0 3 = Incremental.Linked);
  check_bool "valid after link" true (Incremental.validate inc);
  check_bool "second cross edge accepted" true (accepted (Incremental.insert inc 1 4));
  check_bool "valid after second cross" true (Incremental.validate inc);
  (* Isolated vertices attach via Linked. *)
  check_bool "attach isolated" true
    (Incremental.insert inc 2 6 = Incremental.Linked);
  check_bool "chain isolated" true
    (Incremental.insert inc 6 7 = Incremental.Linked);
  check_bool "valid with new pendants" true (Incremental.validate inc);
  check_bool "duplicate detected" true
    (Incremental.insert inc 0 1 = Incremental.Duplicate);
  check "edges" 10 (Incremental.m inc)

let test_delete_then_relink () =
  (* Deleting a bridge disconnects silently (connectivity records are
     conservative); the next cross insert must fall back to a link. *)
  let g = Gr.of_edges ~n:6 [ (0,1); (1,2); (2,0); (3,4); (4,5); (5,3) ] in
  let inc = Incremental.create g in
  check_bool "bridge in" true (accepted (Incremental.insert inc 0 3));
  check_bool "bridge out" true (Incremental.delete inc 0 3);
  check_bool "missing delete is false" false (Incremental.delete inc 0 3);
  check_bool "valid after bridge removal" true (Incremental.validate inc);
  check_bool "relink accepted" true (accepted (Incremental.insert inc 1 4));
  check_bool "valid after relink" true (Incremental.validate inc);
  check "exactly one missing delete" 1 (Incremental.stats inc).missing

let test_rescope_triggers () =
  let g = Gen.grid 10 10 in
  let inc = Incremental.create g in
  (* Scour one component record well past its live size. *)
  let removed = ref 0 in
  Gr.iter_edges g (fun u v ->
      if !removed < 140 && Incremental.delete inc u v then incr removed);
  check_bool "rescope ran" true ((Incremental.stats inc).rescopes >= 1);
  check_bool "valid after mass delete" true (Incremental.validate inc);
  (* The survivors still accept churn. *)
  let accepted_back = ref 0 in
  Gr.iter_edges g (fun u v ->
      if (not (Incremental.mem inc u v)) && accepted (Incremental.insert inc u v)
      then incr accepted_back);
  check "all grid edges reinsertable" (Gr.m g) (Incremental.m inc);
  check_bool "valid after refill" true (Incremental.validate inc)

let test_of_rotation_roundtrip () =
  let g = Gen.grid 6 6 in
  let r = Planarity.embed_exn g in
  let inc = Incremental.of_rotation r in
  check "same edge count" (Gr.m g) (Incremental.m inc);
  (* The starting embedding is kept verbatim. *)
  let r' = Incremental.rotation inc in
  for v = 0 to Gr.n g - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "ring of %d verbatim" v)
      (Rotation.rotation r v) (Rotation.rotation r' v)
  done;
  check_bool "nonplanar rotation refused" true
    (try
       ignore (Incremental.of_rotation (Rotation.make (Gen.toroidal_grid 4 4)
                                          (Array.init 16 (fun v -> Gr.neighbors (Gen.toroidal_grid 4 4) v))));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Intervalset / Relations units                                       *)
(* ------------------------------------------------------------------ *)

let test_intervalset_random () =
  let rng = Random.State.make [| 0xbeef |] in
  let s = Intervalset.create () in
  let reference = Hashtbl.create 64 in
  for _ = 1 to 4000 do
    let x = Random.State.int rng 200 in
    if Random.State.bool rng then begin
      Intervalset.add s x;
      Hashtbl.replace reference x ()
    end
    else begin
      Intervalset.remove s x;
      Hashtbl.remove reference x
    end
  done;
  check "cardinal matches" (Hashtbl.length reference) (Intervalset.cardinal s);
  for x = 0 to 200 do
    check_bool
      (Printf.sprintf "mem %d" x)
      (Hashtbl.mem reference x) (Intervalset.mem s x)
  done;
  (* Runs are sorted, disjoint, non-adjacent. *)
  let rec well_formed = function
    | (l1, h1) :: ((l2, _) :: _ as rest) ->
        l1 <= h1 && h1 + 2 <= l2 && well_formed rest
    | [ (l, h) ] -> l <= h
    | [] -> true
  in
  check_bool "runs well-formed" true (well_formed (Intervalset.intervals s));
  (* Iteration agrees with membership. *)
  let seen = ref 0 in
  Intervalset.iter s (fun x ->
      incr seen;
      check_bool "iterated element is member" true (Hashtbl.mem reference x));
  check "iteration covers cardinal" (Intervalset.cardinal s) !seen

let test_intervalset_union () =
  let rng = Random.State.make [| 0xcafe |] in
  for round = 1 to 20 do
    let a = Intervalset.create () and b = Intervalset.create () in
    let reference = Hashtbl.create 64 in
    for _ = 1 to 120 do
      let x = Random.State.int rng 300 in
      Intervalset.add a x;
      Hashtbl.replace reference x ()
    done;
    for _ = 1 to 120 do
      let x = Random.State.int rng 300 in
      Intervalset.add b x;
      Hashtbl.replace reference x ()
    done;
    Intervalset.union_into ~dst:a ~src:b;
    check
      (Printf.sprintf "round %d: union cardinal" round)
      (Hashtbl.length reference) (Intervalset.cardinal a);
    Hashtbl.iter
      (fun x () -> check_bool "union member" true (Intervalset.mem a x))
      reference
  done

let test_relations_payloads () =
  let merges = ref 0 in
  let r =
    Relations.create
      ~merge:(fun a b ->
        incr merges;
        a + b)
      ()
  in
  let a = Relations.fresh r 1 and b = Relations.fresh r 2 and c = Relations.fresh r 4 in
  check "three nodes" 3 (Relations.length r);
  let ab = Relations.union r a b in
  check "payload merged once" 1 !merges;
  check "merged sum" 3 (Relations.get r ab);
  check_bool "same after union" true (Relations.same r a b);
  let abc = Relations.union r ab c in
  check "sum of all" 7 (Relations.get r abc);
  check "idempotent union" abc (Relations.union r a c);
  check "no extra merges" 2 !merges;
  Relations.set r a 100;
  check "set replaces root payload" 100 (Relations.get r c)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "incremental"
    [
      ( "differential",
        [
          Alcotest.test_case "all families, mixed churn" `Quick
            test_differential_families;
          Alcotest.test_case "insert-heavy, within pool" `Quick
            test_differential_insert_heavy;
          Alcotest.test_case "delete-heavy" `Quick test_differential_delete_heavy;
        ] );
      ( "paths",
        [
          Alcotest.test_case "theta insert forces scoped re-run" `Quick
            test_reembed_path;
          Alcotest.test_case "rejection leaves state untouched" `Quick
            test_reject_leaves_state;
          Alcotest.test_case "links and isolated vertices" `Quick
            test_link_and_isolated;
          Alcotest.test_case "delete bridge then relink" `Quick
            test_delete_then_relink;
          Alcotest.test_case "deletes trigger scoped rescope" `Quick
            test_rescope_triggers;
          Alcotest.test_case "of_rotation keeps embedding" `Quick
            test_of_rotation_roundtrip;
        ] );
      ( "containers",
        [
          Alcotest.test_case "intervalset vs reference" `Quick
            test_intervalset_random;
          Alcotest.test_case "intervalset union" `Quick test_intervalset_union;
          Alcotest.test_case "relations payloads" `Quick test_relations_payloads;
        ] );
    ]
