(* The fault-injection layer: determinism of seeded fault plans, the
   semantics of each fault kind, and recovery through the Reliable
   link layer — up to the full embedder producing Euler-verified
   embeddings over lossy links (ISSUE 3 acceptance criteria).

   The companion guarantees — that with no plan installed the engine is
   bit-identical to the pre-fault one — live in test_engine_diff.ml. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let cfg = Network.Config.make

let to_all g v msg =
  Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, msg) :: acc)

(* Max-id flood: monotone, so it converges to the right answer under any
   delivery schedule in which every message (or a retransmission of its
   content) eventually arrives. *)
let flood =
  {
    Network.init = (fun g v -> (v, to_all g v v));
    round =
      (fun g v best inbox ->
        let best' = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
        if best' = best then (best, []) else (best', to_all g v best'));
    msg_bits = (fun _ -> 12);
  }

(* Each node posts k numbered messages to every neighbor in its round-0
   outbox; receivers accumulate (sender, value) in delivery order.
   Exposes exactly-once and per-sender-FIFO violations directly. *)
let streamer k =
  {
    Network.init =
      (fun g v ->
        let outs =
          Gr.fold_neighbors g v ~init:[] ~f:(fun acc w ->
              acc @ List.init k (fun i -> (w, (v, i + 1))))
        in
        ([], outs));
    round = (fun _g _v seen inbox -> (seen @ inbox, []));
    msg_bits = (fun _ -> 24);
  }

let lossy_spec =
  {
    Fault.default with
    Fault.drop = 0.1;
    duplicate = 0.05;
    reorder = 0.1;
    delay = 0.1;
    max_delay = 3;
  }

let fault_events tr =
  List.filter_map
    (function
      | Trace.Fault { round; kind; src; dst } -> Some (round, kind, src, dst)
      | _ -> None)
    (Trace.events tr)

let run_observed ?spec ?(domains = 1) ~seed g proto =
  let plan = Fault.make ?spec ~seed () in
  let m = Metrics.create g in
  let tr = Trace.create () in
  let r =
    Network.exec
      ~config:
        (cfg ~bandwidth:4096 ~domains
           ~observe:(Observe.make ~metrics:m ~trace:tr ())
           ~faults:plan ())
      g proto
  in
  (r, m, tr, plan)

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_same_seed_same_run () =
  let g = Gen.grid 6 7 in
  let (r1, m1, t1, p1) = run_observed ~spec:lossy_spec ~seed:42 g flood in
  let (r2, m2, t2, p2) = run_observed ~spec:lossy_spec ~seed:42 g flood in
  check_bool "states" true (r1.Network.states = r2.Network.states);
  check "rounds" r1.Network.rounds r2.Network.rounds;
  check_bool "fault stats" true (Fault.stats p1 = Fault.stats p2);
  check_bool "fault counts in metrics" true (Metrics.faults m1 = Metrics.faults m2);
  check_bool "trace events (incl. fault timeline)" true
    (Trace.events t1 = Trace.events t2);
  check_bool "round log" true (Metrics.round_log m1 = Metrics.round_log m2)

let test_reset_replays () =
  let g = Gen.grid 5 5 in
  let plan = Fault.make ~spec:lossy_spec ~seed:9 () in
  let r1 = Network.exec ~config:(cfg ~faults:plan ()) g flood in
  let s1 = Fault.stats plan in
  Fault.reset plan;
  let r2 = Network.exec ~config:(cfg ~faults:plan ()) g flood in
  check_bool "reset replays states" true (r1.Network.states = r2.Network.states);
  check "reset replays rounds" r1.Network.rounds r2.Network.rounds;
  check_bool "reset replays stats" true (s1 = Fault.stats plan)

let test_seeds_differ () =
  (* Not a tautology (two seeds could coincide), but these two do not —
     and must keep not doing so, or determinism is broken somewhere. *)
  let g = Gen.grid 6 7 in
  let (_, _, _, p1) = run_observed ~spec:lossy_spec ~seed:1 g flood in
  let (_, _, _, p2) = run_observed ~spec:lossy_spec ~seed:2 g flood in
  check_bool "different seeds draw different faults" false
    (Fault.stats p1 = Fault.stats p2)

(* ------------------------------------------------------------------ *)
(* Fault-kind semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_zero_fault_plan_is_benign () =
  (* An all-zero plan runs on the clocked engine — more rounds (the
     grace tail) but the same fixpoint for an idempotent protocol, and
     not a single fault event. *)
  let g = Gen.grid 5 6 in
  let clean = Network.exec ~config:(cfg ~bandwidth:4096 ()) g flood in
  let (r, m, tr, plan) = run_observed ~seed:7 g flood in
  check_bool "same final states" true (clean.Network.states = r.Network.states);
  check_bool "no fault events" true (fault_events tr = []);
  check_bool "no fault counts" true (Metrics.faults m = []);
  check_bool "no fault stats" true
    (Fault.stats plan
    = {
        Fault.dropped = 0;
        duplicated = 0;
        reordered = 0;
        delayed = 0;
        crash_lost = 0;
        crashes = 0;
        restarts = 0;
      });
  check_bool "grace tail adds rounds" true
    (r.Network.rounds >= clean.Network.rounds)

let test_drop_only_loses_messages () =
  let g = Gen.grid 8 8 in
  let spec = { Fault.default with Fault.drop = 0.2 } in
  let (_, m, tr, plan) = run_observed ~spec ~seed:3 g flood in
  let st = Fault.stats plan in
  check_bool "messages were dropped" true (st.Fault.dropped > 0);
  check "no duplicates" 0 st.Fault.duplicated;
  check "no reorders" 0 st.Fault.reordered;
  check "no delays" 0 st.Fault.delayed;
  check "metrics agree with plan" st.Fault.dropped
    (try List.assoc "drop" (Metrics.faults m) with Not_found -> 0);
  let traced_drops =
    List.length (List.filter (fun (_, k, _, _) -> k = "drop") (fault_events tr))
  in
  check "trace agrees with plan" st.Fault.dropped traced_drops

let test_crash_restart_schedule () =
  (* A silent outage in the middle of a flood: events on the timeline,
     stats counted, and — because flood keeps re-announcing only on
     improvement — the restarted node still converges via its neighbors'
     later traffic being... absent. So run reliable: the wrapper
     retransmits into the outage until the restart. *)
  let g = Gen.cycle 12 in
  let spec =
    {
      Fault.default with
      Fault.crashes = [ { Fault.node = 5; at = 2; restart = Some 9 } ];
    }
  in
  let plan = Fault.make ~spec ~seed:11 () in
  let tr = Trace.create () in
  let r =
    Reliable.exec ~observe:(Observe.of_trace tr) ~faults:plan g flood
  in
  let st = Fault.stats plan in
  check "one crash" 1 st.Fault.crashes;
  check "one restart" 1 st.Fault.restarts;
  check_bool "outage discarded deliveries" true (st.Fault.crash_lost > 0);
  let evs = fault_events tr in
  check_bool "crash event on timeline" true
    (List.exists (fun (r, k, s, d) -> k = "crash" && s = 5 && d = -1 && r >= 0) evs);
  check_bool "restart event on timeline" true
    (List.exists (fun (_, k, s, _) -> k = "restart" && s = 5) evs);
  (* Everyone, including the crashed node, ends with the true maximum. *)
  Array.iter (fun s -> check "flood fixpoint" 11 s) r.Network.states

let test_permanent_crash_blocks_reliable () =
  (* Reliable delivery to a dead node is impossible: the sender
     retransmits until the livelock guard trips. *)
  let g = Gen.path 3 in
  let spec =
    { Fault.default with Fault.crashes = [ { Fault.node = 2; at = 1; restart = None } ] }
  in
  let plan = Fault.make ~spec ~seed:1 () in
  (try
     ignore (Reliable.exec ~max_rounds:200 ~faults:plan g flood);
     Alcotest.fail "expected No_quiescence"
   with Network.No_quiescence _ -> ());
  check_bool "deliveries were discarded at the dead node" true
    ((Fault.stats plan).Fault.crash_lost > 0)

let test_spec_validation () =
  let expect_invalid name f =
    try
      ignore (f ());
      Alcotest.fail (name ^ ": expected Invalid_argument")
    with Invalid_argument _ -> ()
  in
  expect_invalid "drop > 1" (fun () ->
      Fault.make ~spec:{ Fault.default with Fault.drop = 1.5 } ~seed:0 ());
  expect_invalid "negative delay prob" (fun () ->
      Fault.make ~spec:{ Fault.default with Fault.delay = -0.1 } ~seed:0 ());
  expect_invalid "max_delay < 1" (fun () ->
      Fault.make ~spec:{ Fault.default with Fault.max_delay = 0 } ~seed:0 ());
  expect_invalid "grace < 1" (fun () ->
      Fault.make ~spec:{ Fault.default with Fault.grace = 0 } ~seed:0 ());
  expect_invalid "restart before crash" (fun () ->
      Fault.make
        ~spec:
          {
            Fault.default with
            Fault.crashes = [ { Fault.node = 0; at = 5; restart = Some 5 } ];
          }
        ~seed:0 ());
  expect_invalid "reliable timeout" (fun () -> Reliable.wrap ~timeout:1 flood)

(* ------------------------------------------------------------------ *)
(* Reliable recovery                                                   *)
(* ------------------------------------------------------------------ *)

let test_reliable_exactly_once_in_order () =
  (* Under drops + duplicates + reordering + delays + adversarial
     permutation, every receiver must see every sender's stream exactly
     once, in order. *)
  let g = Gen.grid 4 4 in
  let k = 6 in
  let spec = { lossy_spec with Fault.adversarial = true } in
  let plan = Fault.make ~spec ~seed:17 () in
  let stats = Reliable.counters () in
  let r = Reliable.exec ~bandwidth:4096 ~faults:plan ~stats g (streamer k) in
  check_bool "the recovery layer actually worked" true
    (stats.Reliable.retransmits > 0 || stats.Reliable.out_of_order > 0);
  Array.iteri
    (fun v seen ->
      List.iter
        (fun (from, (sender, _)) -> check "sender field consistent" sender from)
        seen;
      Gr.fold_neighbors g v ~init:() ~f:(fun () w ->
          let got =
            List.filter_map
              (fun (from, (_, x)) -> if from = w then Some x else None)
              seen
          in
          check_bool
            (Printf.sprintf "node %d got %d's full stream in order" v w)
            true
            (got = List.init k (fun i -> i + 1))))
    r.Network.states

let test_leader_bfs_over_lossy_links () =
  List.iter
    (fun (name, g) ->
      let plan = Fault.make ~spec:lossy_spec ~seed:23 () in
      let faulty = Proto.leader_bfs ~config:(cfg ~faults:plan ()) g in
      let clean = Proto.leader_bfs g in
      check_bool
        (name ^ ": leader election + BFS identical over lossy links")
        true
        (Array.for_all2
           (fun a b ->
             a.Proto.leader = b.Proto.leader && a.Proto.dist = b.Proto.dist)
           faulty clean))
    [
      ("grid 6x5", Gen.grid 6 5);
      ("cycle 20", Gen.cycle 20);
      ("random tree", Gen.random_tree ~seed:4 30);
      ("maximal planar", Gen.random_maximal_planar ~seed:5 30);
    ]

let embed_families =
  [
    ("grid 6x6", Gen.grid 6 6);
    ("cycle 24", Gen.cycle 24);
    ("wheel 12", Gen.wheel 12);
    ("binary tree 15", Gen.binary_tree 15);
    ("k4 subdivision", Gen.k4_subdivision 6);
    ("outerplanar", Gen.random_outerplanar ~seed:8 ~n:20 ~chord_prob:0.4);
    ("maximal planar", Gen.random_maximal_planar ~seed:8 35);
    ("random planar", Gen.random_planar ~seed:8 ~n:24 ~m:40);
  ]

let test_embedder_over_lossy_links () =
  (* The acceptance bar: drop rate 0.1 (plus the other message faults),
     embedder wrapped in reliable, Euler-verified embedding on all test
     families. *)
  List.iter
    (fun (name, g) ->
      let plan = Fault.make ~spec:lossy_spec ~seed:31 () in
      let o = Embedder.run ~config:(cfg ~faults:plan ()) g in
      match o.Embedder.rotation with
      | None -> Alcotest.fail (name ^ ": embedder lost a planar graph")
      | Some rot ->
          check_bool (name ^ ": Euler check passes") true
            (Rotation.is_planar_embedding rot);
          check_bool (name ^ ": faults actually fired") true
            ((Fault.stats plan).Fault.dropped > 0))
    embed_families

let test_embedder_determinism_under_faults () =
  let g = Gen.grid 6 6 in
  let run () =
    let plan = Fault.make ~spec:lossy_spec ~seed:13 () in
    let o = Embedder.run ~config:(cfg ~faults:plan ()) g in
    (o.Embedder.report.Embedder.rounds, Fault.stats plan)
  in
  let (r1, s1) = run () in
  let (r2, s2) = run () in
  check "same seed, same embedder rounds" r1 r2;
  check_bool "same seed, same fault stats" true (s1 = s2)

(* ------------------------------------------------------------------ *)
(* Sharded fault engine (faults x domains > 1)                         *)
(* ------------------------------------------------------------------ *)

let test_sharded_same_seed_same_run () =
  (* The PR 10 contract: a fault plan composes with [domains > 1] and
     the run is a pure function of (seed, domains) — states, rounds,
     fault stats, metrics and the trace timeline all replay exactly. *)
  let g = Gen.grid 6 7 in
  let (r1, m1, t1, p1) =
    run_observed ~spec:lossy_spec ~domains:2 ~seed:42 g flood
  in
  let (r2, m2, t2, p2) =
    run_observed ~spec:lossy_spec ~domains:2 ~seed:42 g flood
  in
  check_bool "states" true (r1.Network.states = r2.Network.states);
  check "rounds" r1.Network.rounds r2.Network.rounds;
  check_bool "report" true (r1.Network.report = r2.Network.report);
  check_bool "fault stats" true (Fault.stats p1 = Fault.stats p2);
  check_bool "fault counts in metrics" true
    (Metrics.faults m1 = Metrics.faults m2);
  check_bool "trace events (incl. fault timeline)" true
    (Trace.events t1 = Trace.events t2);
  check_bool "round log" true (Metrics.round_log m1 = Metrics.round_log m2)

let test_sharded_stream_distinct () =
  (* Documented, deliberate: the sharded engine draws fates from keyed
     substreams, so the same seed at a different domain count is a
     different (equally deterministic) fault schedule. If these two runs
     ever coincide, substream keying has silently collapsed. *)
  let g = Gen.grid 6 7 in
  let (_, _, t1, p1) = run_observed ~spec:lossy_spec ~domains:1 ~seed:42 g flood in
  let (_, _, t2, p2) = run_observed ~spec:lossy_spec ~domains:2 ~seed:42 g flood in
  check_bool "same seed, different domains: distinct fault timeline" false
    (Fault.stats p1 = Fault.stats p2 && Trace.events t1 = Trace.events t2)

let test_sharded_crash_schedule () =
  (* Deterministic scheduled faults must land on the same rounds no
     matter how the nodes are sharded: the crash/restart pair fires
     exactly once each, deliveries into the outage are discarded, and
     reliable flood still converges to the true maximum. *)
  let g = Gen.cycle 12 in
  let spec =
    {
      Fault.default with
      Fault.crashes = [ { Fault.node = 5; at = 2; restart = Some 9 } ];
    }
  in
  let run () =
    let plan = Fault.make ~spec ~seed:11 () in
    let r = Reliable.exec ~domains:2 ~faults:plan g flood in
    (r, Fault.stats plan)
  in
  let (r1, s1) = run () in
  let (r2, s2) = run () in
  check "one crash" 1 s1.Fault.crashes;
  check "one restart" 1 s1.Fault.restarts;
  check_bool "outage discarded deliveries" true (s1.Fault.crash_lost > 0);
  Array.iter (fun s -> check "flood fixpoint" 11 s) r1.Network.states;
  check_bool "sharded crash run replays" true
    (r1.Network.states = r2.Network.states
    && r1.Network.rounds = r2.Network.rounds
    && s1 = s2)

let test_sharded_embedder_over_lossy_links () =
  (* The end-to-end bar at domains = 2: the reliable-wrapped embedder
     over lossy links still produces Euler-verified embeddings, and the
     whole run replays for a fixed (seed, domains). *)
  List.iter
    (fun (name, g) ->
      let run () =
        let plan = Fault.make ~spec:lossy_spec ~seed:31 () in
        let o = Embedder.run ~config:(cfg ~faults:plan ~domains:2 ()) g in
        (o, Fault.stats plan)
      in
      let (o1, s1) = run () in
      let (_, s2) = run () in
      (match o1.Embedder.rotation with
      | None -> Alcotest.fail (name ^ ": embedder lost a planar graph")
      | Some rot ->
          check_bool (name ^ ": Euler check passes") true
            (Rotation.is_planar_embedding rot));
      check_bool (name ^ ": faults actually fired") true (s1.Fault.dropped > 0);
      check_bool (name ^ ": sharded run replays") true (s1 = s2))
    [
      ("grid 6x6", Gen.grid 6 6);
      ("wheel 12", Gen.wheel 12);
      ("maximal planar", Gen.random_maximal_planar ~seed:8 35);
    ]

let test_chaos_sweep_jobs_identical () =
  (* The `distplanar chaos --jobs/--domains` contract, pinned at the
     library level: a seed sweep over the sharded faulty engine prints
     byte-identical rows whether the sweep runs serially or fanned out
     over Pool.map — each run builds its own plan, so the only shared
     state is the read-only graph. *)
  let g = Gen.grid 6 6 in
  let one i =
    let seed = 100 + i in
    let plan = Fault.make ~spec:lossy_spec ~seed () in
    let o = Embedder.run ~config:(cfg ~faults:plan ~domains:2 ()) g in
    let s = Fault.stats plan in
    let verdict =
      match o.Embedder.rotation with
      | Some rot when Rotation.is_planar_embedding rot -> "planar, Euler ok"
      | Some _ -> "EULER CHECK FAILED"
      | None -> "NOT PLANAR"
    in
    Printf.sprintf
      "seed=%d rounds=%d drops=%d dups=%d reorders=%d delays=%d verdict=%s"
      seed o.Embedder.report.Embedder.rounds s.Fault.dropped s.Fault.duplicated
      s.Fault.reordered s.Fault.delayed verdict
  in
  let render jobs = Array.to_list (Pool.map ~jobs 6 one) in
  let serial = render 1 in
  let pooled = render 4 in
  List.iter
    (fun row ->
      check_bool (row ^ ": embeds correctly") true
        (String.length row > 0
        && String.sub row (String.length row - 8) 8 = "Euler ok"))
    serial;
  check_bool "pooled sweep output = serial sweep output" true (serial = pooled)

let () =
  Alcotest.run "fault"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
          Alcotest.test_case "reset replays" `Quick test_reset_replays;
          Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
        ] );
      ( "fault kinds",
        [
          Alcotest.test_case "zero-fault plan is benign" `Quick
            test_zero_fault_plan_is_benign;
          Alcotest.test_case "drop-only" `Quick test_drop_only_loses_messages;
          Alcotest.test_case "crash + restart" `Quick test_crash_restart_schedule;
          Alcotest.test_case "permanent crash blocks reliable" `Quick
            test_permanent_crash_blocks_reliable;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "reliable recovery",
        [
          Alcotest.test_case "exactly-once, in-order" `Quick
            test_reliable_exactly_once_in_order;
          Alcotest.test_case "leader+BFS over lossy links" `Quick
            test_leader_bfs_over_lossy_links;
          Alcotest.test_case "embedder over lossy links" `Quick
            test_embedder_over_lossy_links;
          Alcotest.test_case "embedder determinism under faults" `Quick
            test_embedder_determinism_under_faults;
        ] );
      ( "sharded faults",
        [
          Alcotest.test_case "same seed + domains, same run" `Quick
            test_sharded_same_seed_same_run;
          Alcotest.test_case "domain counts are stream-distinct" `Quick
            test_sharded_stream_distinct;
          Alcotest.test_case "crash schedule honored across shards" `Quick
            test_sharded_crash_schedule;
          Alcotest.test_case "embedder over lossy links, domains=2" `Quick
            test_sharded_embedder_over_lossy_links;
          Alcotest.test_case "chaos sweep: jobs don't change output" `Quick
            test_chaos_sweep_jobs_identical;
        ] );
    ]
