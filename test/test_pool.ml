(* Unit tests for the inter-run domain pool: deterministic ordering,
   lowest-index error propagation, nested-use rejection, and the edge
   cases of the chunked scheduler. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_ordering () =
  (* Results must land in task order for any job count, including more
     jobs than tasks. *)
  List.iter
    (fun jobs ->
      let r = Pool.map ~jobs 100 (fun i -> (i * i) + 1) in
      check (Printf.sprintf "length [jobs=%d]" jobs) 100 (Array.length r);
      Array.iteri
        (fun i x -> check (Printf.sprintf "slot %d [jobs=%d]" i jobs) ((i * i) + 1) x)
        r)
    [ 1; 2; 4; 7; 100; 200 ]

let test_empty_and_tiny () =
  check "n=0" 0 (Array.length (Pool.map ~jobs:4 0 (fun _ -> assert false)));
  check_bool "n=1" true (Pool.map ~jobs:4 1 (fun i -> i + 41) = [| 41 |]);
  (try
     ignore (Pool.map ~jobs:4 (-1) (fun i -> i));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_exception_propagation () =
  (* Two failing tasks; the lower index must win regardless of which
     chunk finishes first — and the same holds sequentially. *)
  let boom i = if i = 13 || i = 77 then failwith (string_of_int i) else i in
  List.iter
    (fun jobs ->
      try
        ignore (Pool.map ~jobs 100 boom);
        Alcotest.fail "expected Task_failed"
      with Pool.Task_failed { index; exn } ->
        check (Printf.sprintf "failing index [jobs=%d]" jobs) 13 index;
        check_bool "inner exception" true (exn = Failure "13"))
    [ 1; 4 ]

let test_nested_rejection () =
  (* On a single-core host the jobs cap collapses both maps to the
     sequential path, which never trips the nesting guard — nesting
     sequential maps is documented as harmless. *)
  if Pool.default_jobs () <= 1 then
    check_bool "sequential nesting is harmless" true
      (Pool.map ~jobs:2 4 (fun i ->
           if i = 0 then ignore (Pool.map ~jobs:2 4 (fun j -> j));
           i)
      = [| 0; 1; 2; 3 |])
  else
    try
      ignore
        (Pool.map ~jobs:2 4 (fun i ->
             if i = 0 then ignore (Pool.map ~jobs:2 4 (fun j -> j));
             i));
      Alcotest.fail "expected Task_failed wrapping Invalid_argument"
    with Pool.Task_failed { exn; _ } -> (
      match exn with
      | Pool.Task_failed { exn = Invalid_argument _; _ } | Invalid_argument _
        ->
          ()
      | e -> raise e)

let test_reuse_after_failure () =
  (* A failed sweep must release the pool for the next one. *)
  (try ignore (Pool.map ~jobs:2 4 (fun _ -> failwith "x")) with
  | Pool.Task_failed _ -> ());
  check_bool "pool usable again" true
    (Pool.map ~jobs:2 4 (fun i -> i) = [| 0; 1; 2; 3 |])

let test_runs_in_pool () =
  (* The advertised use: independent simulations in pool tasks, each
     with its own sinks — results identical to the serial sweep. *)
  let flood g =
    {
      Network.init =
        (fun g v ->
          (v, Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, v) :: acc)));
      round =
        (fun g v best inbox ->
          let best' = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
          if best' = best then (best, [])
          else
            ( best',
              Gr.fold_neighbors g v ~init:[] ~f:(fun acc w ->
                  (w, best') :: acc) ));
      msg_bits = (fun _ -> 12);
    }
    |> fun p -> Network.exec g p
  in
  let run i =
    let g = Gen.random_connected_graph ~seed:i ~n:40 ~m:80 in
    let r = flood g in
    (r.Network.states, r.Network.rounds, r.Network.report.Network.messages)
  in
  let serial = Array.init 8 run in
  let pooled = Pool.map ~jobs:4 8 run in
  check_bool "pooled sweep = serial sweep" true (serial = pooled)

(* ------------------------------------------------------------------ *)
(* Persistent pool (Pool.create / Pool.run / Pool.shutdown)            *)
(* ------------------------------------------------------------------ *)

let test_persistent_completes_all_tasks () =
  (* Work stealing may hand any task to any domain; every slot must be
     written exactly once per run, over many reuses of one pool. *)
  List.iter
    (fun domains ->
      let p = Pool.create ~domains () in
      check (Printf.sprintf "size [domains=%d]" domains) domains (Pool.size p);
      for round = 1 to 5 do
        let n = 1 + (round * 17) in
        let hits = Array.make n 0 in
        Pool.run p ~tasks:n (fun i -> hits.(i) <- hits.(i) + (i * round));
        Array.iteri
          (fun i x ->
            check
              (Printf.sprintf "slot %d [domains=%d round=%d]" i domains round)
              (i * round) x)
          hits
      done;
      Pool.shutdown p)
    [ 1; 2; 4; 7 ]

let test_persistent_zero_tasks_and_validation () =
  let p = Pool.create ~domains:2 () in
  Pool.run p ~tasks:0 (fun _ -> assert false);
  (try
     Pool.run p ~tasks:(-1) (fun _ -> ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Pool.shutdown p;
  (try
     Pool.run p ~tasks:1 (fun _ -> ());
     Alcotest.fail "expected Invalid_argument after shutdown"
   with Invalid_argument _ -> ());
  (* Shutdown is idempotent. *)
  Pool.shutdown p;
  try ignore (Pool.create ~domains:0 ()); Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_persistent_lowest_error_wins () =
  let p = Pool.create ~domains:4 () in
  (try
     Pool.run p ~tasks:100 (fun i ->
         if i = 13 || i = 77 then failwith (string_of_int i));
     Alcotest.fail "expected Task_failed"
   with Pool.Task_failed { index; exn } ->
     check "failing index" 13 index;
     check_bool "inner exception" true (exn = Failure "13"));
  (* A failed run must leave the pool usable. *)
  let hits = Array.make 8 false in
  Pool.run p ~tasks:8 (fun i -> hits.(i) <- true);
  check_bool "usable after failure" true (Array.for_all Fun.id hits);
  Pool.shutdown p

let test_persistent_matches_map () =
  (* The engine's usage shape: slot-indexed buffers merged in index
     order must equal the one-shot Pool.map of the same function. *)
  let f i = (i * 7919) mod 1000 in
  let expected = Pool.map ~jobs:1 64 f in
  let p = Pool.create ~domains:3 () in
  let got = Array.make 64 (-1) in
  Pool.run p ~tasks:64 (fun i -> got.(i) <- f i);
  Pool.shutdown p;
  check_bool "persistent run = map" true (got = expected)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "deterministic ordering" `Quick test_ordering;
          Alcotest.test_case "empty and tiny sweeps" `Quick test_empty_and_tiny;
          Alcotest.test_case "lowest-index error propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use rejected" `Quick test_nested_rejection;
          Alcotest.test_case "reuse after failure" `Quick
            test_reuse_after_failure;
          Alcotest.test_case "simulation sweep" `Quick test_runs_in_pool;
        ] );
      ( "persistent",
        [
          Alcotest.test_case "completes all tasks across reuses" `Quick
            test_persistent_completes_all_tasks;
          Alcotest.test_case "zero tasks and validation" `Quick
            test_persistent_zero_tasks_and_validation;
          Alcotest.test_case "lowest error wins, pool survives" `Quick
            test_persistent_lowest_error_wins;
          Alcotest.test_case "slot merge matches Pool.map" `Quick
            test_persistent_matches_map;
        ] );
    ]
