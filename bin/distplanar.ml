(* distplanar — command-line front end.

   Subcommands:
     embed    run the distributed embedding algorithm on a generated graph
              and print the per-node rotations plus the round/congestion
              report
     baseline run the trivial gather-everything algorithm for comparison
     check    centralized planarity test only (DMP)
     families list the available graph families

   Example:
     distplanar embed --family grid --rows 4 --cols 5 --rotations
     distplanar embed --family maxplanar -n 2000 --mode economy
     distplanar baseline --family k4subdiv --seglen 64 *)

open Cmdliner

let make_graph family n rows cols seglen seed m chord_prob =
  match family with
  | "path" -> Gen.path n
  | "cycle" -> Gen.cycle n
  | "star" -> Gen.star n
  | "tree" -> Gen.random_tree ~seed n
  | "binary-tree" -> Gen.binary_tree n
  | "grid" -> Gen.grid rows cols
  | "trigrid" -> Gen.triangular_grid rows cols
  | "wheel" -> Gen.wheel n
  | "maxplanar" -> Gen.random_maximal_planar ~seed n
  | "planar" ->
      let m = if m > 0 then m else min ((3 * n) - 6) (2 * n) in
      Gen.random_planar ~seed ~n ~m
  | "outerplanar" -> Gen.random_outerplanar ~seed ~n ~chord_prob
  | "k4subdiv" -> Gen.k4_subdivision seglen
  | "k4" -> Gen.complete 4
  | "k5" -> Gen.k5 ()
  | "k33" -> Gen.k33 ()
  | "petersen" -> Gen.petersen ()
  | "toroidal" -> Gen.toroidal_grid rows cols
  | other ->
      Printf.eprintf "unknown family %S; try `distplanar families'\n" other;
      exit 2

let family_doc =
  "Graph family: path, cycle, star, tree, binary-tree, grid, trigrid, \
   wheel, maxplanar, planar, outerplanar, k4subdiv, k4, k5, k33, petersen, \
   toroidal."

let family_t =
  Arg.(value & opt string "maxplanar" & info [ "family"; "f" ] ~doc:family_doc)

let n_t = Arg.(value & opt int 100 & info [ "n" ] ~doc:"Number of vertices.")
let rows_t = Arg.(value & opt int 8 & info [ "rows" ] ~doc:"Grid rows.")
let cols_t = Arg.(value & opt int 8 & info [ "cols" ] ~doc:"Grid columns.")

let seglen_t =
  Arg.(value & opt int 16 & info [ "seglen" ] ~doc:"K4-subdivision segment length.")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let m_t =
  Arg.(value & opt int 0 & info [ "m" ] ~doc:"Edge count for --family planar (0 = default).")

let chord_t =
  Arg.(value & opt float 0.5 & info [ "chord-prob" ] ~doc:"Outerplanar chord probability.")

let mode_t =
  let mode_conv =
    Arg.enum [ ("faithful", Part.Faithful); ("economy", Part.Economy) ]
  in
  Arg.(value & opt mode_conv Part.Faithful & info [ "mode" ] ~doc:"faithful | economy.")

let checks_t =
  Arg.(value & flag & info [ "checks" ] ~doc:"Validate safety invariants at every merge.")

let rotations_t =
  Arg.(value & flag & info [ "rotations" ] ~doc:"Print the per-node clockwise orders.")

let print_report_common ~phases ~rounds ~total_bits ~max_edge_bits =
  Printf.printf "rounds           : %d\n" rounds;
  List.iter (fun (name, r) -> Printf.printf "  %-28s %6d\n" name r) phases;
  Printf.printf "total bits       : %d\n" total_bits;
  Printf.printf "max bits per edge: %d\n" max_edge_bits

let print_rotation r =
  let g = Rotation.graph r in
  for v = 0 to Gr.n g - 1 do
    let order =
      String.concat " "
        (List.map string_of_int (Array.to_list (Rotation.rotation r v)))
    in
    Printf.printf "  %4d : (%s)\n" v order
  done

let graph_summary g =
  Printf.printf "graph            : n=%d m=%d%s\n" (Gr.n g) (Gr.m g)
    (if Traverse.is_connected g then
       Printf.sprintf " diameter=%d" (Traverse.diameter g)
     else " (disconnected)")

let embed_cmd =
  let run family n rows cols seglen seed m chord mode checks rotations =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let o = Embedder.run ~mode ~checks g in
    let r = o.Embedder.report in
    Printf.printf "algorithm        : distributed recursive embedding (Theorem 1.1)\n";
    Printf.printf "bandwidth        : %d bits/edge/round\n" r.Embedder.bandwidth;
    Printf.printf "leader           : %d (BFS depth %d)\n" r.Embedder.leader
      r.Embedder.bfs_depth;
    Printf.printf "recursion        : depth %d, %d calls, max %d parts at a \
                   restricted merge\n"
      r.Embedder.recursion_depth r.Embedder.recursion_calls
      r.Embedder.max_parts_at_restricted_merge;
    Printf.printf "merges           : %d pairwise, %d star, %d \
                   vertex-coordinated, %d path-coordinated, %d retired\n"
      r.Embedder.merges_pairwise r.Embedder.merges_star r.Embedder.merges_vertex
      r.Embedder.merges_path r.Embedder.retired_parts;
    if checks then
      Printf.printf "safety checks    : %d merges validated\n" r.Embedder.safety_checks;
    print_report_common ~phases:r.Embedder.phases ~rounds:r.Embedder.rounds
      ~total_bits:r.Embedder.total_bits ~max_edge_bits:r.Embedder.max_edge_bits;
    match o.Embedder.rotation with
    | None ->
        Printf.printf "verdict          : NOT PLANAR\n";
        exit 1
    | Some rot ->
        Printf.printf "verdict          : planar (independent Euler check: %s, %d faces)\n"
          (if Rotation.is_planar_embedding rot then "passed" else "FAILED")
          (Rotation.face_count rot);
        if rotations then print_rotation rot
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t $ mode_t $ checks_t $ rotations_t)
  in
  Cmd.v (Cmd.info "embed" ~doc:"Run the distributed planar embedding algorithm.") term

let baseline_cmd =
  let run family n rows cols seglen seed m chord rotations =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let o = Baseline.run g in
    let r = o.Baseline.report in
    Printf.printf "algorithm        : trivial gather-everything baseline (footnote 2)\n";
    print_report_common ~phases:r.Baseline.phases ~rounds:r.Baseline.rounds
      ~total_bits:r.Baseline.total_bits ~max_edge_bits:r.Baseline.max_edge_bits;
    match o.Baseline.rotation with
    | None ->
        Printf.printf "verdict          : NOT PLANAR\n";
        exit 1
    | Some rot ->
        Printf.printf "verdict          : planar (Euler check: %s)\n"
          (if Rotation.is_planar_embedding rot then "passed" else "FAILED");
        if rotations then print_rotation rot
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t $ rotations_t)
  in
  Cmd.v (Cmd.info "baseline" ~doc:"Run the O(n) gather-everything baseline.") term

let check_cmd =
  let run family n rows cols seglen seed m chord =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    match Planarity.embed g with
    | Planarity.Planar r ->
        Printf.printf "planar: yes (%d faces, genus %d)\n" (Rotation.face_count r)
          (Rotation.genus r)
    | Planarity.Nonplanar ->
        Printf.printf "planar: no\n";
        exit 1
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t)
  in
  Cmd.v (Cmd.info "check" ~doc:"Centralized planarity test.") term

let witness_cmd =
  let run family n rows cols seglen seed m chord =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    match Kuratowski.witness g with
    | None -> Printf.printf "planar: no Kuratowski witness exists\n"
    | Some edges ->
        let kind = Kuratowski.classify g edges in
        Printf.printf "non-planar; edge-minimal witness (%d edges, %s):\n"
          (List.length edges)
          (match kind with
          | Some Kuratowski.K5 -> "a K5 subdivision"
          | Some Kuratowski.K33 -> "a K3,3 subdivision"
          | None -> "UNCLASSIFIED (bug)");
        List.iter (fun (u, v) -> Printf.printf "  %d -- %d\n" u v) edges;
        exit 1
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t)
  in
  Cmd.v
    (Cmd.info "witness" ~doc:"Extract a Kuratowski non-planarity certificate.")
    term

let separator_cmd =
  let run family n rows cols seglen seed m chord =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let s = Separator.separate g in
    Printf.printf "separator (%d vertices, balance %.2f): %s\n"
      (List.length s.Separator.separator)
      s.Separator.balance
      (String.concat " " (List.map string_of_int s.Separator.separator));
    Printf.printf "components: %s\n"
      (String.concat " "
         (List.map
            (fun c -> string_of_int (List.length c))
            s.Separator.components));
    assert (Separator.check g s)
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t)
  in
  Cmd.v
    (Cmd.info "separator"
       ~doc:"Compute a balanced Lipton-Tarjan separator of a planar graph.")
    term

let trace_cmd =
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write the machine-readable JSON journal to $(docv).")
  in
  let keep_messages_t =
    Arg.(
      value & flag
      & info [ "keep-messages" ]
          ~doc:"Record every individual message in the journal (heavy).")
  in
  let run family n rows cols seglen seed m chord mode json keep_messages =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let d = Traverse.diameter g in
    let tr = Trace.create ~keep_messages () in
    let o =
      try
        Embedder.run
          ~config:(Network.Config.make ~observe:(Observe.of_trace tr) ())
          ~mode g
      with Network.No_quiescence { round; active; messages } ->
        (* A protocol that never goes quiet: say where it was stuck, not
           just that it was — the innermost still-open span is the
           protocol phase that was executing when the guard tripped. *)
        let stalled_in =
          match Trace.open_span_names tr with
          | [] -> "(no protocol phase was open)"
          | phase :: _ -> Printf.sprintf "protocol phase %S" phase
        in
        Printf.eprintf
          "trace: no quiescence after %d rounds — %d nodes still had \
           undelivered mail, the last round sent %d messages, and the run \
           stalled inside %s.\n"
          round active messages stalled_in;
        Printf.eprintf
          "trace: the last rounds of the journal show who kept talking:\n";
        Format.eprintf "%a@." Trace.pp_summary tr;
        exit 3
    in
    let r = o.Embedder.report in
    let metrics = r.Embedder.metrics in
    Printf.printf "algorithm        : distributed recursive embedding, traced\n";
    Printf.printf "bandwidth        : %d bits/edge/round\n" r.Embedder.bandwidth;
    Printf.printf "rounds           : %d (recursion depth %d, %d calls)\n"
      r.Embedder.rounds r.Embedder.recursion_depth r.Embedder.recursion_calls;
    Format.printf "@.%a@.@." Trace.pp_summary tr;
    (* The five busiest directed edges: where the congestion lives. *)
    let rows = ref [] in
    Metrics.iter_dir metrics (fun ~src ~dst ~bits ~messages ~burst ->
        rows := (bits, src, dst, messages, burst) :: !rows);
    let busiest =
      List.filteri
        (fun i _ -> i < 5)
        (List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare b a) !rows)
    in
    Printf.printf "busiest directed edges (bits, src->dst, messages, max round \
                   burst):\n";
    List.iter
      (fun (bits, src, dst, msgs, burst) ->
        Printf.printf "  %8d  %5d -> %-5d %6d %6d\n" bits src dst msgs burst)
      busiest;
    let log = Metrics.round_log metrics in
    Printf.printf "round histogram  : %d simulator rounds recorded, peak %d \
                   active nodes, %d total messages\n"
      (List.length log)
      (Metrics.active_peak metrics)
      (Metrics.messages metrics);
    Format.printf "@.%a@.@." Bounds.pp
      (Bounds.check ~n:r.Embedder.n ~d ~bandwidth:r.Embedder.bandwidth metrics);
    (match json with
    | None -> ()
    | Some file ->
        let meta =
          [
            ("n", r.Embedder.n);
            ("m", r.Embedder.m);
            ("diameter", d);
            ("bandwidth", r.Embedder.bandwidth);
            ("rounds", r.Embedder.rounds);
            ("recursion_depth", r.Embedder.recursion_depth);
            ("recursion_calls", r.Embedder.recursion_calls);
          ]
        in
        let oc =
          try open_out file
          with Sys_error msg ->
            Printf.eprintf "trace: cannot write JSON journal: %s\n" msg;
            exit 2
        in
        Trace.write_json ~name:family ~meta ~metrics oc tr;
        close_out oc;
        Printf.printf "JSON journal     : written to %s\n" file);
    match o.Embedder.rotation with
    | None ->
        Printf.printf "verdict          : NOT PLANAR\n";
        exit 1
    | Some rot ->
        Printf.printf "verdict          : planar (independent Euler check: %s)\n"
          (if Rotation.is_planar_embedding rot then "passed" else "FAILED")
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t $ mode_t $ json_t $ keep_messages_t)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the embedder with structured tracing: per-phase profile, \
          congestion hot spots, bound checks, optional JSON journal.")
    term

let chaos_cmd =
  let drop_t =
    Arg.(value & opt float 0.0 & info [ "drop" ] ~doc:"Per-message drop probability.")
  in
  let dup_t =
    Arg.(value & opt float 0.0 & info [ "dup-prob" ] ~doc:"Per-message duplication probability.")
  in
  let reorder_t =
    Arg.(value & opt float 0.0 & info [ "reorder-prob" ] ~doc:"Per-copy reordering probability.")
  in
  let delay_t =
    Arg.(value & opt float 0.0 & info [ "delay-prob" ] ~doc:"Per-copy late-delivery probability.")
  in
  let max_delay_t =
    Arg.(value & opt int 3 & info [ "max-delay" ] ~doc:"Maximum extra delivery delay in rounds.")
  in
  let adversarial_t =
    Arg.(value & flag & info [ "adversarial" ] ~doc:"Permute every delivered inbox (seeded).")
  in
  let crash_t =
    Arg.(
      value
      & opt_all string []
      & info [ "crash" ] ~docv:"NODE@AT[:RESTART]"
          ~doc:
            "Crash $(i,NODE) at round $(i,AT); with $(i,:RESTART), bring it \
             back at that round. Repeatable.")
  in
  let grace_t =
    Arg.(
      value & opt int 8
      & info [ "grace" ]
          ~doc:"Quiet rounds required before the clocked loop declares quiescence.")
  in
  let runs_t =
    Arg.(
      value & opt int 1
      & info [ "runs" ] ~doc:"Sweep this many consecutive seeds (seed, seed+1, ...).")
  in
  let jobs_t =
    Arg.(
      value & opt int 1
      & info [ "jobs" ]
          ~doc:
            "Run the seed sweep on this many domains (Pool.map): results and \
             output are identical to the serial sweep, only wall time \
             changes.")
  in
  let domains_t =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:
            "Run each faulty simulation on this many domains (the sharded \
             clocked engine). Deterministic per (seed, domains); composes \
             with --jobs. Note the fault schedule is seed-compatible but \
             stream-distinct across domain counts.")
  in
  let parse_crash s =
    let fail () =
      Printf.eprintf "chaos: cannot parse --crash %S (want NODE@AT[:RESTART])\n" s;
      exit 2
    in
    match String.split_on_char '@' s with
    | [ node; rest ] -> (
        let node = try int_of_string node with Failure _ -> fail () in
        match String.split_on_char ':' rest with
        | [ at ] -> (
            try { Fault.node; at = int_of_string at; restart = None }
            with Failure _ -> fail ())
        | [ at; restart ] -> (
            try
              {
                Fault.node;
                at = int_of_string at;
                restart = Some (int_of_string restart);
              }
            with Failure _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  let run family n rows cols seglen seed m chord mode drop dup reorder delay
      max_delay adversarial crash_specs grace runs jobs domains =
    (* The quickstart says `--family grid --n 1024`: for the grid families,
       an explicit --n with the rows/cols left at their defaults means a
       square sqrt(n) x sqrt(n) grid. *)
    let rows, cols =
      if
        (family = "grid" || family = "trigrid" || family = "toroidal")
        && rows = 8 && cols = 8 && n <> 100
      then
        let side = max 2 (int_of_float (sqrt (float_of_int n) +. 0.5)) in
        (side, side)
      else (rows, cols)
    in
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let crashes = List.map parse_crash crash_specs in
    let spec =
      {
        Fault.drop;
        duplicate = dup;
        reorder;
        delay;
        max_delay;
        adversarial;
        crashes;
        grace;
      }
    in
    let plan =
      try Fault.make ~spec ~seed ()
      with Invalid_argument msg ->
        Printf.eprintf "chaos: invalid fault spec: %s\n" msg;
        exit 2
    in
    Printf.printf
      "fault spec       : drop=%.3f dup=%.3f reorder=%.3f delay=%.3f (max %d \
       rounds) adversarial=%s crashes=%d grace=%d\n"
      drop dup reorder delay max_delay
      (if adversarial then "yes" else "no")
      (List.length crashes) grace;
    ignore plan;
    let clean = Embedder.run ~mode g in
    let clean_rounds = clean.Embedder.report.Embedder.rounds in
    Printf.printf "clean baseline   : %d rounds\n" clean_rounds;
    (* Each seed's run builds its own plan, runs, and returns a record;
       with --jobs the sweep fans out over the domain pool and the
       records come back in seed order, so the printed report is
       byte-identical to the serial one. *)
    let one i =
      let seed = seed + i in
      let plan = Fault.make ~spec ~seed () in
      let ok, verdict, rounds =
        match
          Embedder.run
            ~config:(Network.Config.make ~faults:plan ~domains ())
            ~mode g
        with
        | o -> (
            let r = o.Embedder.report.Embedder.rounds in
            match o.Embedder.rotation with
            | None -> (false, "NOT PLANAR", r)
            | Some rot ->
                if Rotation.is_planar_embedding rot then
                  (true, "planar, Euler ok", r)
                else (false, "EULER CHECK FAILED", r))
        | exception Network.No_quiescence { round; active; _ } ->
            ( false,
              Printf.sprintf "NO QUIESCENCE (%d nodes still active)" active,
              round )
      in
      (seed, ok, verdict, rounds, Fault.stats plan)
    in
    let rows =
      try Pool.map ~jobs runs one
      with Pool.Task_failed { exn; _ } -> raise exn
    in
    let failures = ref 0 in
    Array.iter
      (fun (seed, ok, verdict, rounds, s) ->
        if not ok then incr failures;
        Printf.printf
          "run seed=%-6d : rounds=%-6d (%+.1f%%)  drops=%d dups=%d reorders=%d \
           delays=%d crash-lost=%d crashes=%d restarts=%d  verdict=%s\n"
          seed rounds
          (100.0
          *. (float_of_int rounds -. float_of_int clean_rounds)
          /. float_of_int (max 1 clean_rounds))
          s.Fault.dropped s.Fault.duplicated s.Fault.reordered s.Fault.delayed
          s.Fault.crash_lost s.Fault.crashes s.Fault.restarts verdict)
      rows;
    Printf.printf "chaos verdict    : %d/%d runs embedded correctly\n"
      (runs - !failures) runs;
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t $ mode_t $ drop_t $ dup_t $ reorder_t $ delay_t $ max_delay_t
      $ adversarial_t $ crash_t $ grace_t $ runs_t $ jobs_t $ domains_t)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the embedder under a deterministic fault plan (drops, \
          duplicates, reordering, delays, crashes, adversarial delivery) \
          with the protocols Reliable-wrapped, and report per-run fault \
          counts and embedding verdicts.")
    term

let certify_cmd =
  let corrupt_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "corrupt" ] ~docv:"K@SEED"
          ~doc:
            "Flip one random certificate bit at each of $(i,K) distinct \
             nodes (chosen by $(i,SEED)) and assert the verifier rejects.")
  in
  let via_t =
    Arg.(
      value
      & opt (enum [ ("kernel", `Kernel); ("embedder", `Embedder) ]) `Kernel
      & info [ "via" ]
          ~doc:
            "Where the rotation comes from: the centralized planarity \
             $(b,kernel) or the full distributed $(b,embedder).")
  in
  let kernel_t =
    Arg.(
      value & opt string "lr"
      & info [ "kernel" ] ~doc:"Planarity kernel for --via kernel: lr | dmp.")
  in
  let domains_t =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~doc:"Run the verification round on this many domains.")
  in
  let epoch_t =
    Arg.(
      value & opt int 8
      & info [ "epoch" ]
          ~doc:"Maximum rounds a shard may advance between barriers.")
  in
  let parse_corrupt s =
    match String.split_on_char '@' s with
    | [ k; seed ] -> (
        match (int_of_string_opt k, int_of_string_opt seed) with
        | (Some k, Some seed) when k >= 0 -> (k, seed)
        | _ ->
            Printf.eprintf "certify: cannot parse --corrupt %S (want K@SEED)\n" s;
            exit 2)
    | _ ->
        Printf.eprintf "certify: cannot parse --corrupt %S (want K@SEED)\n" s;
        exit 2
  in
  let run family n rows cols seglen seed m chord via kernel corrupt domains
      epoch =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let rotation =
      match via with
      | `Kernel -> (
          let kernel =
            match Planarity.kernel_of_string kernel with
            | Some k -> k
            | None ->
                Printf.eprintf "certify: unknown kernel %S (want lr | dmp)\n"
                  kernel;
                exit 2
          in
          Printf.printf "rotation from    : %s kernel\n"
            (Planarity.kernel_name kernel);
          match Planarity.embed ~kernel g with
          | Planarity.Planar r -> r
          | Planarity.Nonplanar ->
              Printf.printf "verdict          : not planar — nothing to certify\n";
              exit 1)
      | `Embedder -> (
          Printf.printf "rotation from    : distributed embedder\n";
          match (Embedder.run g).Embedder.rotation with
          | Some r -> r
          | None ->
              Printf.printf "verdict          : not planar — nothing to certify\n";
              exit 1)
    in
    let certs = Certify.prove rotation in
    let corrupted = Option.map parse_corrupt corrupt in
    let certs =
      match corrupted with
      | None -> certs
      | Some (k, cseed) ->
          Printf.printf "corruption       : 1 bit at each of %d nodes (seed %d)\n"
            k cseed;
          Certify.corrupt ~seed:cseed ~k certs
    in
    let m = Metrics.create g in
    let o =
      Certify.verify
        ~config:
          (Network.Config.make ~domains ~epoch
             ~observe:(Observe.make ~metrics:m ()) ())
        rotation certs
    in
    let sz = o.Certify.size in
    Printf.printf "certificates     : mean %.1f bits/node (%.1f words), max \
                   %d bits, word %d bits\n"
      sz.Certify.mean_bits
      (sz.Certify.mean_bits /. float_of_int sz.Certify.word)
      sz.Certify.max_bits sz.Certify.word;
    Printf.printf "verification     : %d round(s), %d messages, %d bits on \
                   the wire\n"
      o.Certify.rounds (Metrics.messages m) (Metrics.total_bits m);
    (match o.Certify.report.Network.verdict with
    | Some v ->
        Printf.printf "one-round bound  : %s (rounds %d <= %d, max message \
                       %d <= %d bits)\n"
          (if v.Bounds.rounds_ok && v.Bounds.message_ok then "ok" else "VIOLATED")
          v.Bounds.rounds v.Bounds.round_bound v.Bounds.max_message_bits
          v.Bounds.message_bound
    | None -> ());
    let rejecting =
      Array.to_seq o.Certify.reasons
      |> Seq.mapi (fun v r -> (v, r))
      |> Seq.filter (fun (_, r) -> r <> 0)
      |> List.of_seq
    in
    (match rejecting with
    | [] -> ()
    | (v, r) :: _ ->
        Printf.printf "first rejection  : node %d (%s); %d node(s) reject\n" v
          (Certify.reason_name r) (List.length rejecting));
    match corrupted with
    | None ->
        Printf.printf "verdict          : %s\n"
          (if o.Certify.all_accept then "all nodes accept" else "REJECTED");
        if not o.Certify.all_accept then exit 1
    | Some _ ->
        Printf.printf "verdict          : %s\n"
          (if o.Certify.all_accept then "CORRUPTION NOT DETECTED"
           else "corruption detected, as demanded");
        if o.Certify.all_accept then exit 1
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t $ via_t $ kernel_t $ corrupt_t $ domains_t $ epoch_t)
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Assign every node an O(log n)-bit planarity certificate (the \
          proof-labeling prover) and re-verify the embedding in one CONGEST \
          round; with --corrupt, flip certificate bits and assert the \
          network rejects.")
    term

let route_cmd =
  let src_t =
    Arg.(value & opt int 0 & info [ "src" ] ~doc:"Source vertex of a single query.")
  in
  let dst_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "dst" ] ~doc:"Destination vertex of a single query.")
  in
  let batch_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:"Read queries from $(docv): one `src dst' pair per line.")
  in
  let random_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "random" ] ~docv:"K@SEED"
          ~doc:"Route $(i,K) random vertex pairs drawn with $(i,SEED).")
  in
  let jobs_t =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~doc:"Answer batched queries on this many domains.")
  in
  let path_t =
    Arg.(value & flag & info [ "path" ] ~doc:"Print the full route of each query.")
  in
  let parse_random s =
    match String.split_on_char '@' s with
    | [ k; seed ] -> (
        match (int_of_string_opt k, int_of_string_opt seed) with
        | (Some k, Some seed) when k > 0 -> (k, seed)
        | _ ->
            Printf.eprintf "route: cannot parse --random %S (want K@SEED)\n" s;
            exit 2)
    | _ ->
        Printf.eprintf "route: cannot parse --random %S (want K@SEED)\n" s;
        exit 2
  in
  let parse_batch n file =
    let ic =
      try open_in file
      with Sys_error msg ->
        Printf.eprintf "route: cannot read batch file: %s\n" msg;
        exit 2
    in
    let pairs = ref [] and line_no = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr line_no;
         match
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         with
         | [] -> ()
         | [ a; b ] -> (
             match (int_of_string_opt a, int_of_string_opt b) with
             | (Some s, Some d) when s >= 0 && s < n && d >= 0 && d < n ->
                 pairs := (s, d) :: !pairs
             | _ ->
                 Printf.eprintf "route: %s:%d: bad query %S\n" file !line_no line;
                 exit 2)
         | _ ->
             Printf.eprintf "route: %s:%d: bad query %S\n" file !line_no line;
             exit 2
       done
     with End_of_file -> close_in ic);
    Array.of_list (List.rev !pairs)
  in
  let run family n rows cols seglen seed m chord src dst batch random jobs
      show_path =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let rot =
      match Planarity.embed g with
      | Planarity.Planar r -> r
      | Planarity.Nonplanar ->
          Printf.printf "verdict          : not planar — cannot draw\n";
          exit 1
    in
    let t0 = Unix.gettimeofday () in
    let sch = Schnyder.draw rot in
    let engine = Route.make sch in
    let build = Unix.gettimeofday () -. t0 in
    Printf.printf "drawing          : %dx%d grid, %d virtual edges, built in \
                   %.3f s\n"
      (Schnyder.grid_side sch) (Schnyder.grid_side sch)
      (Triangulate.virtual_count (Schnyder.triangulation sch))
      build;
    let nv = Gr.n g in
    let pairs =
      match (batch, random) with
      | Some file, _ -> parse_batch nv file
      | None, Some spec ->
          let k, rseed = parse_random spec in
          let rng = Random.State.make [| rseed; nv |] in
          Array.init k (fun _ ->
              (Random.State.int rng nv, Random.State.int rng nv))
      | None, None -> (
          match dst with
          | Some d when src >= 0 && src < nv && d >= 0 && d < nv ->
              [| (src, d) |]
          | Some _ ->
              Printf.eprintf "route: --src/--dst out of range (n=%d)\n" nv;
              exit 2
          | None ->
              Printf.eprintf
                "route: give --dst (with --src), --batch or --random\n";
              exit 2)
    in
    let pool = if jobs > 1 then Some (Pool.create ~domains:jobs ()) else None in
    let t1 = Unix.gettimeofday () in
    let outs = Route.route_batch ?pool engine pairs in
    let elapsed = Unix.gettimeofday () -. t1 in
    Option.iter Pool.shutdown pool;
    let delivered = ref 0 and unreachable = ref 0 and stuck = ref 0 in
    let hops_total = ref 0 and recov_total = ref 0 in
    Array.iteri
      (fun i o ->
        let s, d = pairs.(i) in
        match o with
        | Route.Delivered { path; hops; greedy_hops; face_hops; recoveries } ->
            incr delivered;
            hops_total := !hops_total + hops;
            recov_total := !recov_total + recoveries;
            if show_path || Array.length pairs = 1 then begin
              Printf.printf "%d -> %d: %d hops (%d greedy, %d face, %d \
                             recoveries)\n"
                s d hops greedy_hops face_hops recoveries;
              if show_path then
                Printf.printf "  %s\n"
                  (String.concat " " (List.map string_of_int path))
            end
        | Route.Unreachable ->
            incr unreachable;
            if show_path || Array.length pairs = 1 then
              Printf.printf "%d -> %d: unreachable\n" s d
        | Route.Stuck { at; hops } ->
            incr stuck;
            Printf.printf "%d -> %d: STUCK at %d after %d hops\n" s d at hops)
      outs;
    Printf.printf "queries          : %d total, %d delivered, %d unreachable, \
                   %d stuck\n"
      (Array.length pairs) !delivered !unreachable !stuck;
    if !delivered > 0 then
      Printf.printf "delivered        : %.1f hops/query mean, %d recoveries, \
                     %.0f queries/s (%d job%s)\n"
        (float_of_int !hops_total /. float_of_int !delivered)
        !recov_total
        (float_of_int (Array.length pairs) /. max 1e-9 elapsed)
        jobs
        (if jobs = 1 then "" else "s");
    if !stuck > 0 then exit 1
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t $ src_t $ dst_t $ batch_t $ random_t $ jobs_t $ path_t)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Draw the graph on the integer grid (Schnyder coordinates) and \
          answer point-to-point queries with greedy-face-greedy geographic \
          routing over real edges only.")
    term

let churn_cmd =
  let updates_t =
    Arg.(
      value & opt int 1000
      & info [ "updates" ] ~doc:"Number of churn updates to replay.")
  in
  let insert_pct_t =
    Arg.(
      value & opt int 60
      & info [ "insert-pct" ]
          ~doc:"Percentage of updates that are insertions (0-100).")
  in
  let fresh_t =
    Arg.(
      value & opt float 0.0
      & info [ "fresh-prob" ]
          ~doc:
            "Probability that an insert proposes a random non-pool pair \
             (exercises the non-planarity rejection path).")
  in
  let hold_t =
    Arg.(
      value & opt float 0.3
      & info [ "hold" ]
          ~doc:"Fraction of the pool edges held out of the initial graph.")
  in
  let trace_seed_t =
    Arg.(
      value & opt int 7
      & info [ "trace-seed" ] ~doc:"Seed of the churn trace generator.")
  in
  let verify_t =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-check the final embedding: Euler genus plus, when the \
             graph is connected, a full certificate round-trip.")
  in
  let run family n rows cols seglen seed m chord updates insert_pct fresh hold
      tseed verify =
    let g = make_graph family n rows cols seglen seed m chord in
    graph_summary g;
    let tr =
      try
        Churn.make ~seed:tseed ~updates ~insert_pct ~fresh_prob:fresh ~hold g
      with Invalid_argument msg ->
        Printf.eprintf "churn: %s\n" msg;
        exit 2
    in
    let g0 = Churn.initial_graph tr in
    let inc =
      try Incremental.create g0
      with Invalid_argument msg ->
        Printf.eprintf "churn: %s\n" msg;
        exit 2
    in
    let t0 = Unix.gettimeofday () in
    Churn.replay inc tr;
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "trace            : %d updates (%d%% inserts, fresh %.2f, \
                   hold %.2f, seed %d)\n"
      updates insert_pct fresh hold tseed;
    Printf.printf "initial edges    : %d of %d pool edges\n"
      (List.length tr.Churn.initial)
      (Gr.m g);
    Printf.printf "replay           : %.3fs (%.0f updates/s)\n" wall
      (float_of_int updates /. max 1e-9 wall);
    Format.printf "%a@." Incremental.pp_stats (Incremental.stats inc);
    Printf.printf "final edges      : %d\n" (Incremental.m inc);
    if verify then begin
      let euler_ok = Incremental.validate inc in
      Printf.printf "euler check      : %s\n"
        (if euler_ok then "passed" else "FAILED");
      let r = Incremental.rotation inc in
      let cert_line =
        if Incremental.m inc = 0 then "skipped (no edges)"
        else if not (Traverse.is_connected (Rotation.graph r)) then
          "skipped (graph is disconnected)"
        else if (Certify.verify r (Certify.prove r)).Certify.all_accept then
          "accepted"
        else "REJECTED"
      in
      Printf.printf "certificate      : %s\n" cert_line;
      if (not euler_ok) || cert_line = "REJECTED" then exit 1
    end
  in
  let term =
    Term.(
      const run $ family_t $ n_t $ rows_t $ cols_t $ seglen_t $ seed_t $ m_t
      $ chord_t $ updates_t $ insert_pct_t $ fresh_t $ hold_t $ trace_seed_t
      $ verify_t)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Maintain the embedding incrementally under a seeded \
          insert/delete trace (face-splice fast path, scoped kernel \
          re-runs) and report the update-path breakdown.")
    term

let families_cmd =
  let run () = print_endline family_doc in
  Cmd.v (Cmd.info "families" ~doc:"List graph families.") Term.(const run $ const ())

let () =
  let doc =
    "Distributed planar embedding in the CONGEST model (reproduction of \
     Ghaffari & Haeupler, PODC 2016)."
  in
  let info = Cmd.info "distplanar" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ embed_cmd; baseline_cmd; check_cmd; witness_cmd; separator_cmd;
         trace_cmd; chaos_cmd; certify_cmd; route_cmd; churn_cmd; families_cmd ]))
