(* ad-hoc differential fuzz: Lr vs Dmp on random graphs across densities *)
let () =
  let fails = ref 0 in
  let checked = ref 0 in
  let rng = Random.State.make [| 0xC0FFEE |] in
  for _ = 1 to 4000 do
    let n = 2 + Random.State.int rng 24 in
    let maxm = n * (n - 1) / 2 in
    let m = Random.State.int rng (min (3 * n) maxm + 1) in
    let edges = ref [] in
    let attempts = ref 0 in
    while List.length !edges < m && !attempts < 10 * m + 20 do
      incr attempts;
      let u = Random.State.int rng n and v = Random.State.int rng n in
      if u <> v then begin
        let e = Gr.normalize_edge u v in
        if not (List.mem e !edges) then edges := e :: !edges
      end
    done;
    let g = Gr.of_edges ~n !edges in
    incr checked;
    let lr = Lr.embed g in
    let dmp_p = Dmp.is_planar g in
    (match lr, dmp_p with
     | Lr.Planar r, true ->
         if not (Rotation.is_planar_embedding r) then begin
           incr fails; Printf.printf "BAD EMBED n=%d m=%d\n" n (Gr.m g)
         end
     | Lr.Nonplanar, false -> ()
     | Lr.Planar _, false -> incr fails; Printf.printf "LR planar, DMP non n=%d m=%d\n" n (Gr.m g)
     | Lr.Nonplanar, true -> incr fails; Printf.printf "LR non, DMP planar n=%d m=%d\n" n (Gr.m g));
    if Lr.is_planar g <> dmp_p then begin
      incr fails; Printf.printf "is_planar mismatch n=%d m=%d\n" n (Gr.m g)
    end
  done;
  Printf.printf "fuzz done: %d graphs, %d failures\n" !checked !fails;
  if !fails > 0 then exit 1
