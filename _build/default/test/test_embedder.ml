(* Integration and property tests for the distributed embedding pipeline:
   decomposition invariants (Lemmas 4.1-4.3), partition safety
   (Definition 3.1), end-to-end correctness on planar and non-planar
   inputs, baseline agreement, and the round/congestion bounds the paper
   claims. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Partition predicates                                                *)
(* ------------------------------------------------------------------ *)

let test_partition_predicates () =
  let g = Gen.cycle 6 in
  check_bool "connected part" true (Partition.induces_connected g [ 0; 1; 2 ]);
  check_bool "disconnected part" false (Partition.induces_connected g [ 0; 2 ]);
  check_bool "path is trivial" true (Partition.is_trivial g [ 0; 1; 2 ]);
  check_bool "cycle is non-trivial" false
    (Partition.is_trivial g [ 0; 1; 2; 3; 4; 5 ]);
  check_bool "complement connected" true (Partition.complement_connected g [ 0 ]);
  (* Removing two opposite vertices disconnects the cycle. *)
  check_bool "complement disconnected" false
    (Partition.complement_connected g [ 0; 3 ])

let test_safety_definition () =
  let g = Gen.cycle 6 in
  (* Trivial parts are exempt from the complement condition. *)
  check_bool "two trivial arcs safe" true
    (Partition.is_safe g [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]);
  (* A non-trivial part with disconnected complement is unsafe. *)
  let g2 = Gr.add_edges (Gen.cycle 6) [ (0, 2) ] in
  check_bool "non-trivial triangle part, complement disconnected" false
    (Partition.is_safe g2 [ [ 0; 1; 2; 3 ]; [ 4 ]; [ 5 ] ]
    && not (Partition.is_safe g2 [ [ 0; 1; 2; 3 ] ]));
  (* Overlapping parts are rejected. *)
  check_bool "overlap" false (Partition.is_safe g [ [ 0; 1 ]; [ 1; 2 ] ])

let test_merge_safety_figure6 () =
  (* Figure 6's idea: merging two parts is unsafe when their union's
     complement disconnects. On a cycle, merging two antipodal arcs into a
     non-trivial part that separates the rest is unsafe. *)
  let g = Gen.cycle 8 in
  let parts = [ [ 0; 1 ]; [ 4; 5 ]; [ 2; 3 ]; [ 6; 7 ] ] in
  check_bool "partition safe" true (Partition.is_safe g parts);
  (* Merging adjacent arcs [0;1] and [2;3] gives a path - still trivial,
     safe. *)
  check_bool "adjacent merge safe" true (Partition.merge_is_safe g parts 0 2)

let test_half_edges () =
  let g = Gen.cycle 4 in
  let part_of = [| 0; 0; 1; 1 |] in
  let h0 = List.sort compare (Partition.half_edges g ~part_of 0) in
  Alcotest.(check (list (pair int int))) "half edges" [ (0, 3); (1, 2) ] h0

(* ------------------------------------------------------------------ *)
(* Decomposition (Section 4)                                           *)
(* ------------------------------------------------------------------ *)

let prop_decomposition_invariants =
  QCheck.Test.make ~name:"recursion tree satisfies Lemmas 4.1/4.2" ~count:60
    QCheck.(pair (int_range 0 100000) (int_range 2 80))
    (fun (seed, n) ->
      let m = max (n - 1) (min ((3 * n) - 6) (2 * n)) in
      let g = Gen.random_planar ~seed ~n ~m in
      let bt = Traverse.bfs g (n - 1) in
      let tree = Decompose.recursion_tree g bt in
      Decompose.check g bt tree)

let prop_recursion_depth_bound =
  QCheck.Test.make ~name:"recursion depth is O(min(log n, bfs depth))"
    ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 2 300))
    (fun (seed, n) ->
      let m = max (n - 1) (min ((3 * n) - 6) (2 * n)) in
      let g = Gen.random_planar ~seed ~n ~m in
      let bt = Traverse.bfs g (n - 1) in
      let tree = Decompose.recursion_tree g bt in
      let d = Decompose.depth tree in
      let log15 =
        int_of_float (ceil (log (float_of_int n) /. log 1.5)) + 1
      in
      d <= min log15 (Traverse.depth bt + 1))

let test_decompose_path () =
  (* A path rooted at one end: P0 runs from the root to the centroid. *)
  let g = Gen.path 9 in
  let bt = Traverse.bfs g 0 in
  let tree = Decompose.recursion_tree g bt in
  check_bool "check" true (Decompose.check g bt tree);
  (* The splitter of a rooted path is near the middle. *)
  check_bool "splitter balanced" true (abs (tree.Decompose.splitter - 4) <= 1)

let test_splitter_star () =
  (* In a star rooted at the center, the center itself is the splitter. *)
  let g = Gen.star 9 in
  let bt = Traverse.bfs g 0 in
  let tree = Decompose.recursion_tree g bt in
  check "splitter" 0 tree.Decompose.splitter;
  check "p0 is the center" 1 (List.length tree.Decompose.p0);
  check "eight hanging leaves" 8 (List.length tree.Decompose.hanging)

(* ------------------------------------------------------------------ *)
(* End-to-end                                                          *)
(* ------------------------------------------------------------------ *)

let embed_ok ?mode ?checks g =
  let o = Embedder.run ?mode ?checks g in
  match o.Embedder.rotation with
  | None -> Alcotest.fail "embedder rejected a planar graph"
  | Some r ->
      check_bool "independent Euler verification" true
        (Rotation.is_planar_embedding r);
      o

let test_families_end_to_end () =
  List.iter
    (fun (name, g) ->
      ignore (embed_ok ~checks:true g);
      ignore name)
    [
      ("single", Gr.empty 1);
      ("edge", Gen.path 2);
      ("path", Gen.path 17);
      ("cycle", Gen.cycle 11);
      ("star", Gen.star 9);
      ("tree", Gen.binary_tree 25);
      ("k4", Gen.complete 4);
      ("wheel", Gen.wheel 9);
      ("grid", Gen.grid 5 6);
      ("trigrid", Gen.triangular_grid 4 5);
      ("k4subdiv", Gen.k4_subdivision 5);
      ("maxplanar", Gen.random_maximal_planar ~seed:7 60);
    ]

let test_nonplanar_end_to_end () =
  List.iter
    (fun g ->
      let o = Embedder.run g in
      check_bool "rejected" true (o.Embedder.rotation = None))
    [
      Gen.k5 ();
      Gen.k33 ();
      Gen.petersen ();
      Gen.complete 6;
      Gen.toroidal_grid 4 4;
      Gen.subdivide (Gen.k5 ()) 3;
    ]

let test_disconnected_rejected () =
  let g = Gr.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  (try
     ignore (Embedder.run g);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let prop_random_planar_end_to_end =
  QCheck.Test.make
    ~name:"random planar graphs embed end-to-end (checks on, genus 0)"
    ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 2 60))
    (fun (seed, n) ->
      let m = min ((3 * n) - 6) (max (n - 1) (2 * n - 4)) in
      let m = max (n - 1) m in
      let g = Gen.random_planar ~seed ~n ~m in
      let o = Embedder.run ~checks:true g in
      match o.Embedder.rotation with
      | None -> false
      | Some r -> Rotation.is_planar_embedding r)

let prop_random_nonplanar_rejected =
  QCheck.Test.make
    ~name:"dense random connected graphs are rejected (m > 3n - 6)"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let n = 12 in
      let g = Gen.random_connected_graph ~seed ~n ~m:40 in
      (Embedder.run g).Embedder.rotation = None)

let prop_verdict_matches_dmp =
  QCheck.Test.make
    ~name:"distributed verdict always matches the centralized verdict"
    ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 2 25))
    (fun (seed, n) ->
      let m = min (n * (n - 1) / 2) (max (n - 1) (2 * n)) in
      let g = Gen.random_connected_graph ~seed ~n ~m in
      let ours = (Embedder.run g).Embedder.rotation <> None in
      ours = Dmp.is_planar g)

let prop_economy_same_verdict_and_costs_close =
  QCheck.Test.make
    ~name:"economy mode: same verdict, round counts within 2x of faithful"
    ~count:15
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = Gen.random_planar ~seed ~n:60 ~m:110 in
      let f = Embedder.run ~mode:Part.Faithful g in
      let e = Embedder.run ~mode:Part.Economy g in
      (f.Embedder.rotation <> None)
      = (e.Embedder.rotation <> None)
      && 2 * e.Embedder.report.Embedder.rounds
         >= f.Embedder.report.Embedder.rounds
      && 2 * f.Embedder.report.Embedder.rounds
         >= e.Embedder.report.Embedder.rounds)

let test_report_sanity () =
  let g = Gen.grid 6 6 in
  let o = embed_ok ~checks:true g in
  let r = o.Embedder.report in
  check "n" 36 r.Embedder.n;
  check "m" 60 r.Embedder.m;
  check "leader is max id" 35 r.Embedder.leader;
  check_bool "rounds positive" true (r.Embedder.rounds > 0);
  check_bool "phases recorded" true (List.length r.Embedder.phases >= 3);
  check_bool "safety checks ran" true (r.Embedder.safety_checks > 0);
  check_bool "recursion happened" true (r.Embedder.recursion_calls > 1);
  check_bool "bits shipped" true (r.Embedder.iface_bits_shipped > 0)

let prop_rounds_scale_with_bfs_depth_times_log =
  (* Theorem 1.1's shape: simulated rounds stay within a generous constant
     of D * min(log n, D) + log-sized overheads. The constant here is loose
     on purpose (we guard the asymptotic shape, not the constant). *)
  QCheck.Test.make ~name:"rounds bounded by c * (D+1) * min(log n, D+1)"
    ~count:15
    QCheck.(pair (int_range 0 100000) (int_range 30 200))
    (fun (seed, n) ->
      let g = Gen.random_planar ~seed ~n ~m:(min ((3 * n) - 6) (2 * n)) in
      let o = Embedder.run ~mode:Part.Economy g in
      let d = o.Embedder.report.Embedder.bfs_depth + 1 in
      let logn = int_of_float (ceil (log (float_of_int n) /. log 2.0)) + 1 in
      o.Embedder.report.Embedder.rounds <= 60 * d * min logn (d + 1))

let prop_lower_bound_rounds_at_least_depth =
  (* Footnote 1: coordination across Theta(D) hops is unavoidable; our
     implementation indeed always spends at least the BFS depth. *)
  QCheck.Test.make ~name:"rounds >= BFS depth on K4 subdivisions" ~count:10
    QCheck.(int_range 2 40)
    (fun seglen ->
      let g = Gen.k4_subdivision seglen in
      let o = Embedder.run ~mode:Part.Economy g in
      o.Embedder.report.Embedder.rounds >= o.Embedder.report.Embedder.bfs_depth)

let test_baseline_agrees () =
  List.iter
    (fun g ->
      let b = Baseline.run g in
      match b.Baseline.rotation with
      | None -> Alcotest.fail "baseline rejected planar input"
      | Some r -> check_bool "baseline genus 0" true (Rotation.is_planar_embedding r))
    [ Gen.grid 5 5; Gen.random_maximal_planar ~seed:3 80; Gen.path 40 ];
  List.iter
    (fun g ->
      check_bool "baseline rejects" true ((Baseline.run g).Baseline.rotation = None))
    [ Gen.k5 (); Gen.petersen () ]

let prop_baseline_rounds_linear =
  QCheck.Test.make ~name:"baseline rounds grow linearly in n" ~count:10
    QCheck.(int_range 50 400)
    (fun n ->
      let g = Gen.random_maximal_planar ~seed:5 n in
      let b = Baseline.run g in
      let r = b.Baseline.report.Baseline.rounds in
      (* Gathering 3n-6 edge records of 2 log n bits at 16 log n bits/round
         is about (3/8) n rounds, plus BFS and scatter. *)
      r >= n / 8 && r <= 4 * n + 100)

let test_relabeling_invariance () =
  let g = Gen.random_maximal_planar ~seed:13 40 in
  let perm = Gen.random_permutation ~seed:14 40 in
  let h = Gr.relabel g perm in
  let og = Embedder.run g and oh = Embedder.run h in
  check_bool "same verdict" true
    ((og.Embedder.rotation <> None) = (oh.Embedder.rotation <> None))

let () =
  Alcotest.run "embedder"
    [
      ( "partition",
        [
          Alcotest.test_case "predicates" `Quick test_partition_predicates;
          Alcotest.test_case "safety (def 3.1)" `Quick test_safety_definition;
          Alcotest.test_case "merge safety (fig 6)" `Quick
            test_merge_safety_figure6;
          Alcotest.test_case "half edges" `Quick test_half_edges;
        ] );
      ( "decompose",
        [
          QCheck_alcotest.to_alcotest prop_decomposition_invariants;
          QCheck_alcotest.to_alcotest prop_recursion_depth_bound;
          Alcotest.test_case "path" `Quick test_decompose_path;
          Alcotest.test_case "star splitter" `Quick test_splitter_star;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "planar families" `Quick test_families_end_to_end;
          Alcotest.test_case "nonplanar families" `Quick
            test_nonplanar_end_to_end;
          Alcotest.test_case "disconnected" `Quick test_disconnected_rejected;
          QCheck_alcotest.to_alcotest prop_random_planar_end_to_end;
          QCheck_alcotest.to_alcotest prop_random_nonplanar_rejected;
          QCheck_alcotest.to_alcotest prop_verdict_matches_dmp;
          QCheck_alcotest.to_alcotest prop_economy_same_verdict_and_costs_close;
          Alcotest.test_case "report sanity" `Quick test_report_sanity;
          Alcotest.test_case "relabeling" `Quick test_relabeling_invariance;
        ] );
      ( "complexity-shape",
        [
          QCheck_alcotest.to_alcotest prop_rounds_scale_with_bfs_depth_times_log;
          QCheck_alcotest.to_alcotest prop_lower_bound_rounds_at_least_depth;
          Alcotest.test_case "baseline agrees" `Quick test_baseline_agrees;
          QCheck_alcotest.to_alcotest prop_baseline_rounds_linear;
        ] );
    ]
