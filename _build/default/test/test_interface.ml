(* Tests for the interface layer: PQ-trees (Observation 3.2 / Figure 4
   operations), the outer-face-constrained embedder (Figure 1(b)) and the
   interface construction from biconnected decompositions. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Pqtree                                                              *)
(* ------------------------------------------------------------------ *)

let test_leaves () =
  let t = Pqtree.Q [ Pqtree.Leaf 1; Pqtree.P [ Pqtree.Leaf 2; Pqtree.Leaf 3 ]; Pqtree.Leaf 4 ] in
  Alcotest.(check (list int)) "leaves" [ 1; 2; 3; 4 ] (Pqtree.leaves t);
  check "size" 6 (Pqtree.size t)

let test_flip () =
  let t = Pqtree.Q [ Pqtree.Leaf 1; Pqtree.Leaf 2; Pqtree.Leaf 3 ] in
  let f = Pqtree.flip t ~path:[] in
  Alcotest.(check (list int)) "flipped" [ 3; 2; 1 ] (Pqtree.leaves f)

let test_flip_nested () =
  (* Flipping a Q node mirrors everything inside it. *)
  let t =
    Pqtree.Q
      [ Pqtree.Leaf 0; Pqtree.Q [ Pqtree.Leaf 1; Pqtree.Leaf 2 ]; Pqtree.Leaf 3 ]
  in
  let f = Pqtree.flip t ~path:[] in
  Alcotest.(check (list int)) "mirror" [ 3; 2; 1; 0 ] (Pqtree.leaves f);
  let g = Pqtree.flip t ~path:[ 1 ] in
  Alcotest.(check (list int)) "inner flip" [ 0; 2; 1; 3 ] (Pqtree.leaves g)

let test_flip_wrong_node () =
  let t = Pqtree.P [ Pqtree.Leaf 1; Pqtree.Leaf 2 ] in
  (try
     ignore (Pqtree.flip t ~path:[]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_permute () =
  let t = Pqtree.P [ Pqtree.Leaf 1; Pqtree.Leaf 2; Pqtree.Leaf 3 ] in
  let p = Pqtree.permute t ~path:[] ~perm:[| 2; 0; 1 |] in
  Alcotest.(check (list int)) "permuted" [ 3; 1; 2 ] (Pqtree.leaves p)

let test_permute_invalid () =
  let t = Pqtree.P [ Pqtree.Leaf 1; Pqtree.Leaf 2 ] in
  (try
     ignore (Pqtree.permute t ~path:[] ~perm:[| 0; 0 |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_enumerate_q () =
  (* A Q over three leaves has exactly two orders: forward and mirror. *)
  let t = Pqtree.Q [ Pqtree.Leaf 1; Pqtree.Leaf 2; Pqtree.Leaf 3 ] in
  check "count" 2 (Pqtree.count_orders t)

let test_enumerate_p () =
  (* A P over three leaves has all 3! linear orders. *)
  let t = Pqtree.P [ Pqtree.Leaf 1; Pqtree.Leaf 2; Pqtree.Leaf 3 ] in
  check "count" 6 (Pqtree.count_orders t)

let test_enumerate_mixed () =
  (* Q [a, P[b, c]]: orders a b c / a c b / and mirrors c b a / b c a. *)
  let t =
    Pqtree.Q [ Pqtree.Leaf 'a'; Pqtree.P [ Pqtree.Leaf 'b'; Pqtree.Leaf 'c' ] ]
  in
  check "count" 4 (Pqtree.count_orders t)

let prop_flip_permute_preserve_leafset =
  QCheck.Test.make ~name:"flips/permutations preserve the leaf multiset"
    ~count:100
    QCheck.(int_range 0 1000)
    (fun seed ->
      (* Build a small random tree deterministically from the seed. *)
      let rng = Random.State.make [| seed |] in
      let next_leaf = ref 0 in
      let rec build depth =
        if depth = 0 || Random.State.int rng 3 = 0 then begin
          incr next_leaf;
          Pqtree.Leaf !next_leaf
        end
        else
          let k = 2 + Random.State.int rng 2 in
          let children = List.init k (fun _ -> build (depth - 1)) in
          if Random.State.bool rng then Pqtree.Q children else Pqtree.P children
      in
      let t = Pqtree.Q [ build 2; build 2 ] in
      let flipped = Pqtree.flip t ~path:[] in
      List.sort compare (Pqtree.leaves t)
      = List.sort compare (Pqtree.leaves flipped))

let prop_enumerated_orders_closed_under_mirror =
  QCheck.Test.make ~name:"order sets of Q-rooted trees are mirror-closed"
    ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let next_leaf = ref 0 in
      let leaf () = incr next_leaf; Pqtree.Leaf !next_leaf in
      let t =
        Pqtree.Q
          [
            leaf ();
            (if Random.State.bool rng then Pqtree.P [ leaf (); leaf () ]
             else Pqtree.Q [ leaf (); leaf () ]);
            leaf ();
          ]
      in
      let orders = Pqtree.enumerate_orders t in
      List.for_all (fun o -> List.mem (List.rev o) orders) orders)

let test_compress_runs () =
  (* Three consecutive leaves of the same class collapse into one. *)
  let t =
    Pqtree.Q
      [ Pqtree.Leaf (1, 'x'); Pqtree.Leaf (2, 'x'); Pqtree.Leaf (3, 'y') ]
  in
  let c = Pqtree.compress snd t in
  (match c with
  | Pqtree.Q [ Pqtree.Leaf ('x', 2); Pqtree.Leaf ('y', 1) ] -> ()
  | _ -> Alcotest.fail "unexpected compression");
  (* A P node merges same-class leaves regardless of position. *)
  let t2 =
    Pqtree.P
      [ Pqtree.Leaf (1, 'x'); Pqtree.Leaf (2, 'y'); Pqtree.Leaf (3, 'x') ]
  in
  (match Pqtree.compress snd t2 with
  | Pqtree.P [ Pqtree.Leaf ('x', 2); Pqtree.Leaf ('y', 1) ] -> ()
  | _ -> Alcotest.fail "unexpected P compression")

let test_compress_flattens_single_child () =
  let t = Pqtree.Q [ Pqtree.P [ Pqtree.Leaf (1, 'x') ] ] in
  (match Pqtree.compress snd t with
  | Pqtree.Leaf ('x', 1) -> ()
  | _ -> Alcotest.fail "expected full flattening")

let test_bits_monotone_under_compression () =
  let t =
    Pqtree.Q (List.init 20 (fun i -> Pqtree.Leaf (i, i mod 2)))
  in
  let before = Pqtree.bits ~leaf_bits:(fun _ -> 16) t in
  let after =
    Pqtree.bits ~leaf_bits:(fun _ -> 16) (Pqtree.compress snd t)
  in
  check_bool "compression never grows" true (after <= before)

(* ------------------------------------------------------------------ *)
(* Constrained (apex) embedding                                        *)
(* ------------------------------------------------------------------ *)

let test_constrained_whole_graph () =
  let g = Gen.grid 4 4 in
  match Constrained.embed g ~part:(List.init 16 (fun i -> i)) ~half:[] with
  | None -> Alcotest.fail "grid part failed"
  | Some t ->
      let r = Constrained.rotation_of_full t g in
      check "genus" 0 (Rotation.genus r)

let test_constrained_partial () =
  (* Left half of a 4x4 grid; half-embedded edges cross to the right. *)
  let g = Gen.grid 4 4 in
  let part = [ 0; 1; 4; 5; 8; 9; 12; 13 ] in
  let half = List.map (fun r -> ((r * 4) + 1, (r * 4) + 2)) [ 0; 1; 2; 3 ] in
  (match Constrained.embed g ~part ~half with
  | None -> Alcotest.fail "half grid failed"
  | Some t ->
      check_bool "structure valid" true (Constrained.check g ~part ~half t);
      check "outer order covers all half edges" 4 (List.length t.Constrained.outer))

let test_constrained_rejects_bad_half () =
  let g = Gen.grid 2 2 in
  (try
     ignore (Constrained.embed g ~part:[ 0; 1 ] ~half:[ (0, 3) ]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_constrained_detects_impossible () =
  (* K5 minus a vertex's edges... simpler: part = K4 inside K5: the four
     half-embedded edges to the apex vertex of K5 recreate K5, which is
     not planar. *)
  let g = Gen.k5 () in
  let part = [ 0; 1; 2; 3 ] in
  let half = List.map (fun u -> (u, 4)) [ 0; 1; 2; 3 ] in
  check_bool "impossible" true (Constrained.embed g ~part ~half = None)

let prop_constrained_parts_of_planar_graphs_embed =
  QCheck.Test.make
    ~name:"BFS-subtree parts of planar graphs embed with their half edges on one face"
    ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 8 40))
    (fun (seed, n) ->
      let g = Gen.random_planar ~seed ~n ~m:(min ((3 * n) - 6) (2 * n)) in
      let bt = Traverse.bfs g (n - 1) in
      (* Take the subtree under some child of the root: a hanging part. *)
      let kids = Traverse.children bt in
      match kids.(n - 1) with
      | [] -> QCheck.assume_fail ()
      | c :: _ ->
          let rec collect v = v :: List.concat_map collect kids.(v) in
          let part = collect c in
          let in_part = Hashtbl.create 16 in
          List.iter (fun v -> Hashtbl.replace in_part v ()) part;
          let half =
            List.concat_map
              (fun v ->
                List.filter_map
                  (fun w ->
                    if Hashtbl.mem in_part w then None else Some (v, w))
                  (Array.to_list (Gr.neighbors g v)))
              part
          in
          (match Constrained.embed g ~part ~half with
          | None -> false
          | Some t -> Constrained.check g ~part ~half t))

(* ------------------------------------------------------------------ *)
(* Iface                                                               *)
(* ------------------------------------------------------------------ *)

let test_iface_single_vertex () =
  let g = Gen.star 4 in
  (* Part = the center; half edges to all leaves, freely permutable. *)
  match Iface.of_part g ~part:[ 0 ] ~half:[ (0, 1); (0, 2); (0, 3) ] with
  | None -> Alcotest.fail "star center failed"
  | Some t ->
      check "leaves" 3 (List.length (Pqtree.leaves t));
      check "orders" 6 (Pqtree.count_orders t)

let test_iface_path_part () =
  (* Part = middle path of a longer path graph; two half edges, fixed
     (up to mirror) order. *)
  let g = Gen.path 6 in
  match Iface.of_part g ~part:[ 2; 3 ] ~half:[ (2, 1); (3, 4) ] with
  | None -> Alcotest.fail "path part failed"
  | Some t ->
      check "leaves" 2 (List.length (Pqtree.leaves t));
      check_bool "both orders realizable" true (Pqtree.count_orders t <= 2)

let cyclic_equal a b =
  let n = List.length a in
  n = List.length b
  && (n = 0
     ||
     let arr = Array.of_list b in
     let rec rot k =
       k < n && (List.mapi (fun i _ -> arr.((i + k) mod n)) a = a || rot (k + 1))
     in
     rot 0)

let distinct_cyclic_orders t =
  List.fold_left
    (fun classes o ->
      if List.exists (cyclic_equal o) classes then classes else o :: classes)
    []
    (Pqtree.enumerate_orders t)

let test_iface_cycle_part () =
  (* A cycle part with three half edges at distinct vertices: the cyclic
     order is fixed up to a mirror flip, so there are at most 2 distinct
     cyclic orders (the linear enumeration reads each rotation point). *)
  let base = Gen.cycle 3 in
  let g = Gr.union_vertices base ~more:3 [ (0, 3); (1, 4); (2, 5) ] in
  match Iface.of_part g ~part:[ 0; 1; 2 ] ~half:[ (0, 3); (1, 4); (2, 5) ] with
  | None -> Alcotest.fail "cycle part failed"
  | Some t ->
      check "leaves" 3 (List.length (Pqtree.leaves t));
      check_bool "Q-like rigidity" true
        (List.length (distinct_cyclic_orders t) <= 2)

let test_iface_leafset_matches_half () =
  let g = Gen.grid 3 4 in
  let part = [ 0; 1; 4; 5; 8; 9 ] in
  let in_part = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace in_part v ()) part;
  let half =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun w -> if Hashtbl.mem in_part w then None else Some (v, w))
          (Array.to_list (Gr.neighbors g v)))
      part
  in
  match Iface.of_part g ~part ~half with
  | None -> Alcotest.fail "grid part failed"
  | Some t ->
      check_bool "leafset" true
        (List.sort compare (Pqtree.leaves t) = List.sort compare half)

let prop_realized_outer_order_is_in_interface =
  QCheck.Test.make
    ~name:"realized outer order is one of the interface's cyclic orders"
    ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      (* Small outerplanar part inside a slightly bigger planar graph. *)
      let base = Gen.random_outerplanar ~seed ~n:5 ~chord_prob:0.5 in
      let stubs = List.init 4 (fun i -> (i mod 5, 5 + i)) in
      let g = Gr.union_vertices base ~more:5 ((5, 9) :: (6, 9) :: (7, 9) :: (8, 9) :: stubs) in
      let part = [ 0; 1; 2; 3; 4 ] in
      let half = stubs in
      match Constrained.embed g ~part ~half, Iface.of_part g ~part ~half with
      | Some emb, Some t ->
          let realized = List.map snd emb.Constrained.outer in
          let orders =
            List.map (List.map snd) (Pqtree.enumerate_orders t)
          in
          List.exists (fun o -> cyclic_equal o realized || cyclic_equal (List.rev o) realized) orders
      | _ -> false)

let () =
  Alcotest.run "interface"
    [
      ( "pqtree",
        [
          Alcotest.test_case "leaves" `Quick test_leaves;
          Alcotest.test_case "flip" `Quick test_flip;
          Alcotest.test_case "flip nested" `Quick test_flip_nested;
          Alcotest.test_case "flip wrong node" `Quick test_flip_wrong_node;
          Alcotest.test_case "permute" `Quick test_permute;
          Alcotest.test_case "permute invalid" `Quick test_permute_invalid;
          Alcotest.test_case "enumerate Q" `Quick test_enumerate_q;
          Alcotest.test_case "enumerate P" `Quick test_enumerate_p;
          Alcotest.test_case "enumerate mixed" `Quick test_enumerate_mixed;
          QCheck_alcotest.to_alcotest prop_flip_permute_preserve_leafset;
          QCheck_alcotest.to_alcotest prop_enumerated_orders_closed_under_mirror;
          Alcotest.test_case "compress runs" `Quick test_compress_runs;
          Alcotest.test_case "compress flattens" `Quick
            test_compress_flattens_single_child;
          Alcotest.test_case "compress bits" `Quick
            test_bits_monotone_under_compression;
        ] );
      ( "constrained",
        [
          Alcotest.test_case "whole graph" `Quick test_constrained_whole_graph;
          Alcotest.test_case "partial" `Quick test_constrained_partial;
          Alcotest.test_case "bad half" `Quick test_constrained_rejects_bad_half;
          Alcotest.test_case "impossible" `Quick
            test_constrained_detects_impossible;
          QCheck_alcotest.to_alcotest
            prop_constrained_parts_of_planar_graphs_embed;
        ] );
      ( "iface",
        [
          Alcotest.test_case "single vertex" `Quick test_iface_single_vertex;
          Alcotest.test_case "path part" `Quick test_iface_path_part;
          Alcotest.test_case "cycle part" `Quick test_iface_cycle_part;
          Alcotest.test_case "leafset" `Quick test_iface_leafset_matches_half;
          QCheck_alcotest.to_alcotest prop_realized_outer_order_is_in_interface;
        ] );
    ]
