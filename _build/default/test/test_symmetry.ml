(* Property tests for the Lemma 5.3 symmetry-breaking routine: star groups
   must be disjoint induced stars of size >= 2, path groups must be
   color-monotone paths, and together they must cover every node exactly
   once. Inputs are the outerplanar part graphs the embedder feeds it. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let distinct_colors n = Array.init n (fun i -> i)

let test_single_node () =
  let g = Gr.empty 1 in
  let grp = Symmetry.compute g ~colors:[| 0 |] in
  check "no stars" 0 (List.length grp.Symmetry.stars);
  check "one singleton path" 1 (List.length grp.Symmetry.paths);
  check_bool "valid" true (Symmetry.check g ~colors:[| 0 |] grp)

let test_single_edge () =
  let g = Gen.path 2 in
  let colors = [| 1; 0 |] in
  let grp = Symmetry.compute g ~colors in
  check_bool "valid" true (Symmetry.check g ~colors grp);
  (* Both nodes end up grouped together (star or 2-path). *)
  let covered =
    List.length grp.Symmetry.stars + List.length grp.Symmetry.paths
  in
  check "one group" 1 covered

let test_improper_coloring_rejected () =
  let g = Gen.path 2 in
  (try
     ignore (Symmetry.compute g ~colors:[| 3; 3 |]);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_star_graph () =
  (* Star with center colored 0: all leaves point to the center. *)
  let g = Gen.star 6 in
  let colors = distinct_colors 6 in
  let grp = Symmetry.compute g ~colors in
  check_bool "valid" true (Symmetry.check g ~colors grp);
  (match grp.Symmetry.stars with
  | [ (0, leaves) ] -> check "all leaves" 5 (List.length leaves)
  | _ -> Alcotest.fail "expected one star centered at 0")

let test_monotone_path_graph () =
  (* A path colored decreasingly: nodes chain toward the minimum. *)
  let n = 7 in
  let g = Gen.path n in
  let colors = Array.init n (fun i -> n - i) in
  let grp = Symmetry.compute g ~colors in
  check_bool "valid" true (Symmetry.check g ~colors grp)

let prop_valid_on_outerplanar =
  QCheck.Test.make ~name:"grouping is valid on random outerplanar graphs"
    ~count:120
    QCheck.(pair (int_range 0 100000) (int_range 3 60))
    (fun (seed, n) ->
      let g = Gen.random_outerplanar ~seed ~n ~chord_prob:0.4 in
      let colors = Gen.random_permutation ~seed:(seed + 1) n in
      let grp = Symmetry.compute g ~colors in
      Symmetry.check g ~colors grp)

let prop_valid_on_trees =
  QCheck.Test.make ~name:"grouping is valid on random trees" ~count:80
    QCheck.(pair (int_range 0 100000) (int_range 1 60))
    (fun (seed, n) ->
      let g = Gen.random_tree ~seed n in
      let colors = Gen.random_permutation ~seed:(seed + 3) n in
      let grp = Symmetry.compute g ~colors in
      Symmetry.check g ~colors grp)

let prop_progress_on_outerplanar =
  (* The point of the routine (property (1) in Section 5.3): most parts
     get to merge. We require that at least half the non-isolated nodes
     land in a group of size >= 2 — empirically the routine does much
     better; this guards against regressions that silently stop merging. *)
  QCheck.Test.make ~name:"at least half the non-isolated nodes are grouped"
    ~count:60
    QCheck.(pair (int_range 0 100000) (int_range 4 60))
    (fun (seed, n) ->
      let g = Gen.random_outerplanar ~seed ~n ~chord_prob:0.5 in
      let colors = Gen.random_permutation ~seed:(seed + 7) n in
      let grp = Symmetry.compute g ~colors in
      let grouped = Hashtbl.create n in
      List.iter
        (fun (c, leaves) ->
          Hashtbl.replace grouped c ();
          List.iter (fun v -> Hashtbl.replace grouped v ()) leaves)
        grp.Symmetry.stars;
      List.iter
        (fun p ->
          if List.length p >= 2 then
            List.iter (fun v -> Hashtbl.replace grouped v ()) p)
        grp.Symmetry.paths;
      let non_isolated = ref 0 in
      for v = 0 to n - 1 do
        if Gr.degree g v > 0 then incr non_isolated
      done;
      2 * Hashtbl.length grouped >= !non_isolated)

let prop_paths_are_monotone_and_real =
  QCheck.Test.make ~name:"path groups follow edges with decreasing colors"
    ~count:80
    QCheck.(int_range 0 100000)
    (fun seed ->
      let n = 30 in
      let g = Gen.random_outerplanar ~seed ~n ~chord_prob:0.3 in
      let colors = Gen.random_permutation ~seed:(seed + 11) n in
      let grp = Symmetry.compute g ~colors in
      List.for_all
        (fun path ->
          let rec go = function
            | a :: (b :: _ as rest) ->
                Gr.mem_edge g a b && colors.(b) < colors.(a) && go rest
            | [ _ ] | [] -> true
          in
          go path)
        grp.Symmetry.paths)

let () =
  Alcotest.run "symmetry"
    [
      ( "units",
        [
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "improper coloring" `Quick
            test_improper_coloring_rejected;
          Alcotest.test_case "star graph" `Quick test_star_graph;
          Alcotest.test_case "monotone path" `Quick test_monotone_path_graph;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_valid_on_outerplanar;
            prop_valid_on_trees;
            prop_progress_on_outerplanar;
            prop_paths_are_monotone_and_real;
          ] );
    ]
