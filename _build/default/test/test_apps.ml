(* Tests for the application-layer modules built on the embedding:
   Kuratowski witnesses (non-planarity certificates), the dual of an
   embedding, and the distributed Borůvka MST (the part-II downstream
   consumer). *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Kuratowski                                                          *)
(* ------------------------------------------------------------------ *)

let test_planar_no_witness () =
  check_bool "grid" true (Kuratowski.witness (Gen.grid 4 4) = None);
  check_bool "tree" true (Kuratowski.witness (Gen.binary_tree 15) = None);
  check_bool "k4" true (Kuratowski.witness (Gen.complete 4) = None)

let test_k5_witness () =
  let (edges, kind) = Kuratowski.witness_exn (Gen.k5 ()) in
  check "edges" 10 (List.length edges);
  check_bool "kind" true (kind = Kuratowski.K5)

let test_k33_witness () =
  let (edges, kind) = Kuratowski.witness_exn (Gen.k33 ()) in
  check "edges" 9 (List.length edges);
  check_bool "kind" true (kind = Kuratowski.K33)

let test_petersen_witness () =
  (* The Petersen graph contains K3,3 subdivisions (it has no K5
     subdivision: max degree 3). *)
  let (_, kind) = Kuratowski.witness_exn (Gen.petersen ()) in
  check_bool "kind" true (kind = Kuratowski.K33)

let test_subdivided_witnesses () =
  let (_, k5) = Kuratowski.witness_exn (Gen.subdivide (Gen.k5 ()) 4) in
  check_bool "k5" true (k5 = Kuratowski.K5);
  let (_, k33) = Kuratowski.witness_exn (Gen.subdivide (Gen.k33 ()) 3) in
  check_bool "k33" true (k33 = Kuratowski.K33)

let test_classify_rejects_nonwitness () =
  let g = Gen.k5 () in
  (* A proper subset of K5's edges is not a Kuratowski subdivision. *)
  let edges = List.filteri (fun i _ -> i < 8) (Gr.edges g) in
  check_bool "reject" true (Kuratowski.classify g edges = None);
  (* A planar graph's full edge set is not one either. *)
  let h = Gen.wheel 6 in
  check_bool "wheel" true (Kuratowski.classify h (Gr.edges h) = None)

let prop_witness_on_noisy_nonplanar =
  QCheck.Test.make
    ~name:"witnesses extract and verify from nonplanar graphs with planar noise"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      (* A subdivided Kuratowski graph unioned with a random planar graph,
         plus a few connecting edges. *)
      let core =
        if seed mod 2 = 0 then Gen.subdivide (Gen.k5 ()) 2
        else Gen.subdivide (Gen.k33 ()) 2
      in
      let noise = Gen.random_planar ~seed ~n:20 ~m:30 in
      let off = Gr.n core in
      let edges =
        Gr.edges core
        @ List.map (fun (u, v) -> (u + off, v + off)) (Gr.edges noise)
        @ [ (0, off); (1, off + 1) ]
      in
      let g = Gr.of_edges ~n:(off + 20) edges in
      match Kuratowski.witness g with
      | None -> false
      | Some w -> (
          match Kuratowski.classify g w with
          | Some k ->
              (* The witness core must match what we planted (the noise is
                 planar, so only the planted subdivision can survive). *)
              if seed mod 2 = 0 then k = Kuratowski.K5 else k = Kuratowski.K33
          | None -> false))

let prop_witness_is_minimal =
  QCheck.Test.make ~name:"removing any witness edge leaves a planar subgraph"
    ~count:10
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = Gen.random_connected_graph ~seed ~n:12 ~m:32 in
      match Kuratowski.witness g with
      | None -> Dmp.is_planar g
      | Some w ->
          (not (Dmp.is_planar (Gr.of_edges ~n:(Gr.n g) w)))
          && List.for_all
               (fun e ->
                 Dmp.is_planar
                   (Gr.of_edges ~n:(Gr.n g)
                      (List.filter (fun e' -> e' <> e) w)))
               w)

(* ------------------------------------------------------------------ *)
(* Dual                                                                *)
(* ------------------------------------------------------------------ *)

let test_dual_cycle () =
  let d = Dual.make (Dmp.embed_exn (Gen.cycle 6)) in
  check "faces" 2 (Dual.n_faces d);
  check "degree" 6 (Dual.degree d 0);
  (* Simple dual of a cycle: two faces, one (collapsed) edge. *)
  check "dual m" 1 (Gr.m (Dual.simple d))

let test_dual_tree_selfloops () =
  (* A tree has one face; every edge is a bridge (self-loop in the raw
     dual), so the simple dual has no edges. *)
  let d = Dual.make (Dmp.embed_exn (Gen.binary_tree 7)) in
  check "faces" 1 (Dual.n_faces d);
  check "simple dual edges" 0 (Gr.m (Dual.simple d));
  (* Every adjacency entry crosses back into the same face. *)
  check_bool "self adjacency" true
    (List.for_all (fun (f, _) -> f = 0) (Dual.adjacency d 0))

let test_dual_grid () =
  let g = Gen.grid 3 4 in
  let d = Dual.make (Dmp.embed_exn g) in
  (* 2x3 inner cells + outer face. *)
  check "faces" 7 (Dual.n_faces d);
  check_bool "dual connected" true (Traverse.is_connected (Dual.simple d))

let prop_dual_degree_sum =
  QCheck.Test.make ~name:"face degrees sum to 2m" ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 3 40))
    (fun (seed, n) ->
      let g = Gen.random_planar ~seed ~n ~m:(max (n - 1) (min ((3 * n) - 6) (2 * n))) in
      let d = Dual.make (Dmp.embed_exn g) in
      let total = ref 0 in
      for f = 0 to Dual.n_faces d - 1 do
        total := !total + Dual.degree d f
      done;
      !total = 2 * Gr.m g)

let prop_dual_euler =
  QCheck.Test.make ~name:"dual face count matches Euler's formula" ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 3 40))
    (fun (seed, n) ->
      let g = Gen.random_planar ~seed ~n ~m:(max (n - 1) (min ((3 * n) - 6) (2 * n))) in
      let d = Dual.make (Dmp.embed_exn g) in
      Dual.n_faces d = 2 - Gr.n g + Gr.m g)

let prop_dual_darts_consistent =
  QCheck.Test.make ~name:"dart face lookup matches the boundary lists"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = Gen.random_planar ~seed ~n:25 ~m:45 in
      let d = Dual.make (Dmp.embed_exn g) in
      let ok = ref true in
      for f = 0 to Dual.n_faces d - 1 do
        List.iter
          (fun dart -> if Dual.face_of_dart d dart <> f then ok := false)
          (Dual.boundary d f)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* MST                                                                 *)
(* ------------------------------------------------------------------ *)

let weight_fn seed u v = (((u + 3) * 7919 * (seed + 1)) + ((v + 11) * 104729)) mod 1000

let test_mst_path () =
  let g = Gen.path 6 in
  let (mst, rep) = Mst.run ~weight:(fun _ _ -> 1) g in
  check "edges" 5 (List.length mst);
  check_bool "phases" true (rep.Mst.boruvka_phases <= 3)

let test_mst_single_vertex () =
  let (mst, _) = Mst.run ~weight:(fun _ _ -> 1) (Gr.empty 1) in
  check "edges" 0 (List.length mst)

let test_mst_disconnected_rejected () =
  (try
     ignore (Mst.run ~weight:(fun _ _ -> 1) (Gr.of_edges ~n:4 [ (0, 1); (2, 3) ]));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let prop_mst_matches_kruskal =
  QCheck.Test.make ~name:"distributed MST equals Kruskal's" ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 2 60))
    (fun (seed, n) ->
      let g =
        Gen.random_connected_graph ~seed ~n
          ~m:(min (n * (n - 1) / 2) (2 * n))
      in
      let weight = weight_fn seed in
      let (mst, _) = Mst.run ~weight g in
      List.sort compare mst = List.sort compare (Mst.kruskal ~weight g))

let prop_mst_is_spanning_tree =
  QCheck.Test.make ~name:"MST output is a spanning tree" ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = Gen.random_maximal_planar ~seed 40 in
      let (mst, _) = Mst.run ~weight:(weight_fn seed) g in
      let t = Gr.of_edges ~n:40 mst in
      Gr.m t = 39 && Traverse.is_connected t)

let prop_mst_phase_bound =
  QCheck.Test.make ~name:"Boruvka uses at most log2 n phases" ~count:20
    QCheck.(pair (int_range 0 100000) (int_range 2 80))
    (fun (seed, n) ->
      let g = Gen.random_connected_graph ~seed ~n ~m:(min (n * (n - 1) / 2) (2 * n)) in
      let (_, rep) = Mst.run ~weight:(weight_fn seed) g in
      rep.Mst.boruvka_phases
      <= int_of_float (ceil (log (float_of_int n) /. log 2.0)) + 1)

(* ------------------------------------------------------------------ *)
(* Separator                                                           *)
(* ------------------------------------------------------------------ *)

let test_separator_rejects_bad_inputs () =
  (try
     ignore (Separator.separate (Gen.k5 ()));
     Alcotest.fail "expected Invalid_argument (non-planar)"
   with Invalid_argument _ -> ());
  (try
     ignore (Separator.separate (Gr.of_edges ~n:4 [ (0, 1); (2, 3) ]));
     Alcotest.fail "expected Invalid_argument (disconnected)"
   with Invalid_argument _ -> ())

let test_separator_star () =
  (* The star's center is the canonical separator. *)
  let s = Separator.separate (Gen.star 50) in
  check_bool "check" true (Separator.check (Gen.star 50) s);
  check_bool "balanced" true (s.Separator.balance <= 2.0 /. 3.0)

let test_separator_grid () =
  let g = Gen.grid 16 16 in
  let s = Separator.separate g in
  check_bool "check" true (Separator.check g s);
  check_bool "balanced" true (s.Separator.balance <= 2.0 /. 3.0);
  (* O(sqrt n): a 16x16 grid should be cut by about one row/column. *)
  check_bool "size" true (List.length s.Separator.separator <= 40)

let prop_separator_valid_and_balanced =
  QCheck.Test.make
    ~name:"separators are valid, 2/3-balanced and O(sqrt n) on planar families"
    ~count:30
    QCheck.(pair (int_range 0 100000) (int_range 10 200))
    (fun (seed, n) ->
      let g =
        match seed mod 4 with
        | 0 -> Gen.random_maximal_planar ~seed n
        | 1 -> Gen.random_planar ~seed ~n ~m:(max (n - 1) (min ((3 * n) - 6) (2 * n)))
        | 2 -> Gen.random_tree ~seed n
        | _ -> Gen.random_outerplanar ~seed ~n ~chord_prob:0.5
      in
      let s = Separator.separate g in
      Separator.check g s
      && s.Separator.balance <= 2.0 /. 3.0 +. 1e-9
      && float_of_int (List.length s.Separator.separator)
         <= (4.0 *. sqrt (float_of_int n)) +. 4.0)

let prop_separator_exact_cover =
  QCheck.Test.make ~name:"separator + components cover every vertex once"
    ~count:25
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = Gen.random_planar ~seed ~n:60 ~m:110 in
      let s = Separator.separate g in
      let total =
        List.length s.Separator.separator
        + List.fold_left (fun acc c -> acc + List.length c) 0
            s.Separator.components
      in
      total = Gr.n g)

let () =
  Alcotest.run "apps"
    [
      ( "kuratowski",
        [
          Alcotest.test_case "planar" `Quick test_planar_no_witness;
          Alcotest.test_case "k5" `Quick test_k5_witness;
          Alcotest.test_case "k33" `Quick test_k33_witness;
          Alcotest.test_case "petersen" `Quick test_petersen_witness;
          Alcotest.test_case "subdivided" `Quick test_subdivided_witnesses;
          Alcotest.test_case "classify rejects" `Quick
            test_classify_rejects_nonwitness;
          QCheck_alcotest.to_alcotest prop_witness_on_noisy_nonplanar;
          QCheck_alcotest.to_alcotest prop_witness_is_minimal;
        ] );
      ( "dual",
        [
          Alcotest.test_case "cycle" `Quick test_dual_cycle;
          Alcotest.test_case "tree" `Quick test_dual_tree_selfloops;
          Alcotest.test_case "grid" `Quick test_dual_grid;
          QCheck_alcotest.to_alcotest prop_dual_degree_sum;
          QCheck_alcotest.to_alcotest prop_dual_euler;
          QCheck_alcotest.to_alcotest prop_dual_darts_consistent;
        ] );
      ( "separator",
        [
          Alcotest.test_case "bad inputs" `Quick test_separator_rejects_bad_inputs;
          Alcotest.test_case "star" `Quick test_separator_star;
          Alcotest.test_case "grid" `Quick test_separator_grid;
          QCheck_alcotest.to_alcotest prop_separator_valid_and_balanced;
          QCheck_alcotest.to_alcotest prop_separator_exact_cover;
        ] );
      ( "mst",
        [
          Alcotest.test_case "path" `Quick test_mst_path;
          Alcotest.test_case "single vertex" `Quick test_mst_single_vertex;
          Alcotest.test_case "disconnected" `Quick test_mst_disconnected_rejected;
          QCheck_alcotest.to_alcotest prop_mst_matches_kruskal;
          QCheck_alcotest.to_alcotest prop_mst_is_spanning_tree;
          QCheck_alcotest.to_alcotest prop_mst_phase_bound;
        ] );
    ]
