test/test_symmetry.ml: Alcotest Array Gen Gr Hashtbl List QCheck QCheck_alcotest Symmetry
