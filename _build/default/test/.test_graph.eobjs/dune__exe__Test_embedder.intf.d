test/test_embedder.mli:
