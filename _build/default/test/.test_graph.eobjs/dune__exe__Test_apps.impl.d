test/test_apps.ml: Alcotest Dmp Dual Gen Gr Kuratowski List Mst QCheck QCheck_alcotest Separator Traverse
