test/test_stress.ml: Alcotest Array Embedder Gen Gr List Mst Network Part Rotation Separator
