test/test_interface.mli:
