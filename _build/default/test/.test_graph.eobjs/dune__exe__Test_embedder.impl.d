test/test_embedder.ml: Alcotest Baseline Decompose Dmp Embedder Gen Gr List Part Partition QCheck QCheck_alcotest Rotation Traverse
