test/test_planarity.ml: Alcotest Array Dmp Gen Gr List QCheck QCheck_alcotest Rotation
