test/test_graph.ml: Alcotest Array Bicon Gen Gr List QCheck QCheck_alcotest Rotation Traverse Unionfind
