test/test_congest.ml: Alcotest Array Costmodel Gen Gr Metrics Network Proto QCheck QCheck_alcotest Traverse
