test/test_interface.ml: Alcotest Array Constrained Gen Gr Hashtbl Iface List Pqtree QCheck QCheck_alcotest Random Rotation Traverse
