(* Tests for the centralized planarity substrate (DMP). The key soundness
   oracle is independent of DMP: a claimed embedding must pass the
   Euler-formula face-tracing check in Rotation. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let assert_planar ?(msg = "planar") g =
  match Dmp.embed g with
  | Dmp.Nonplanar -> Alcotest.failf "%s: DMP rejected a planar graph" msg
  | Dmp.Planar r ->
      check_bool (msg ^ ": verified genus 0") true
        (Rotation.is_planar_embedding r);
      r

let assert_nonplanar ?(msg = "nonplanar") g =
  match Dmp.embed g with
  | Dmp.Nonplanar -> ()
  | Dmp.Planar _ -> Alcotest.failf "%s: DMP accepted a non-planar graph" msg

(* ------------------------------------------------------------------ *)
(* Known planar families                                               *)
(* ------------------------------------------------------------------ *)

let test_planar_families () =
  ignore (assert_planar ~msg:"K1" (Gr.empty 1));
  ignore (assert_planar ~msg:"K2" (Gen.path 2));
  ignore (assert_planar ~msg:"path" (Gen.path 12));
  ignore (assert_planar ~msg:"cycle" (Gen.cycle 9));
  ignore (assert_planar ~msg:"star" (Gen.star 10));
  ignore (assert_planar ~msg:"tree" (Gen.binary_tree 31));
  ignore (assert_planar ~msg:"K4" (Gen.complete 4));
  ignore (assert_planar ~msg:"wheel" (Gen.wheel 12));
  ignore (assert_planar ~msg:"grid" (Gen.grid 5 7));
  ignore (assert_planar ~msg:"triangular grid" (Gen.triangular_grid 4 6));
  ignore (assert_planar ~msg:"K2,n" (Gen.complete_bipartite 2 8));
  ignore (assert_planar ~msg:"ladder" (Gen.ladder 10));
  ignore (assert_planar ~msg:"fan" (Gen.fan 12))

let test_nonplanar_families () =
  assert_nonplanar ~msg:"K5" (Gen.k5 ());
  assert_nonplanar ~msg:"K6" (Gen.complete 6);
  assert_nonplanar ~msg:"K3,3" (Gen.k33 ());
  assert_nonplanar ~msg:"K3,4" (Gen.complete_bipartite 3 4);
  assert_nonplanar ~msg:"Petersen" (Gen.petersen ());
  assert_nonplanar ~msg:"toroidal grid" (Gen.toroidal_grid 4 4)

let test_subdivision_preserves () =
  assert_nonplanar ~msg:"subdivided K5" (Gen.subdivide (Gen.k5 ()) 3);
  assert_nonplanar ~msg:"subdivided K3,3" (Gen.subdivide (Gen.k33 ()) 2);
  ignore (assert_planar ~msg:"subdivided K4" (Gen.k4_subdivision 4))

let test_disconnected () =
  (* Two disjoint planar pieces: K4 on 0-3 and a triangle on 4-6, plus an
     isolated vertex 7. *)
  let edges =
    Gr.edges (Gen.complete 4)
    @ [ (4, 5); (5, 6); (4, 6) ]
  in
  let g = Gr.of_edges ~n:8 edges in
  ignore (assert_planar ~msg:"disconnected planar" g);
  (* Disjoint union with a K5 must be rejected. *)
  let k5_edges = List.map (fun (u, v) -> (u + 8, v + 8)) (Gr.edges (Gen.k5 ())) in
  assert_nonplanar ~msg:"disconnected with K5" (Gr.of_edges ~n:13 (edges @ k5_edges))

let test_blocks_combined () =
  (* A chain of K4 blocks sharing cut vertices: planar, rotations must
     concatenate consistently. *)
  let block k = List.map (fun (u, v) -> (u + (3 * k), v + (3 * k))) (Gr.edges (Gen.complete 4)) in
  let g = Gr.of_edges ~n:13 (block 0 @ block 1 @ block 2 @ block 3) in
  let r = assert_planar ~msg:"K4 chain" g in
  (* Cut vertices have degree 6 = two blocks of 3. *)
  check "cut degree" 6 (Array.length (Rotation.rotation r 3))

let test_maximal_planar_face_count () =
  let g = Gen.random_maximal_planar ~seed:11 40 in
  let r = assert_planar ~msg:"maximal planar" g in
  (* A triangulation has exactly 2n - 4 faces. *)
  check "faces" ((2 * 40) - 4) (Rotation.face_count r)

let test_dense_reject_fast () =
  (* m > 3n - 6 must be rejected (the early counting bound). *)
  assert_nonplanar ~msg:"dense" (Gen.random_graph ~seed:3 ~n:12 ~m:40)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_random_planar_accepted =
  QCheck.Test.make ~name:"random planar graphs embed with genus 0" ~count:60
    QCheck.(pair (int_range 0 100000) (int_range 3 60))
    (fun (seed, n) ->
      let max_m = (3 * n) - 6 in
      let m = max (n - 1) (min max_m (n - 1 + (seed mod (max 1 (max_m - n + 2))))) in
      let g = Gen.random_planar ~seed ~n ~m in
      match Dmp.embed g with
      | Dmp.Nonplanar -> false
      | Dmp.Planar r -> Rotation.is_planar_embedding r)

let prop_label_invariance =
  QCheck.Test.make ~name:"planarity verdict is invariant under relabeling"
    ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let n = 14 in
      let g = Gen.random_graph ~seed ~n ~m:(min 24 (n * (n - 1) / 2)) in
      let perm = Gen.random_permutation ~seed:(seed + 1) n in
      Dmp.is_planar g = Dmp.is_planar (Gr.relabel g perm))

let prop_subdivision_invariance =
  QCheck.Test.make ~name:"planarity verdict is invariant under subdivision"
    ~count:30
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = Gen.random_graph ~seed ~n:10 ~m:17 in
      Dmp.is_planar g = Dmp.is_planar (Gen.subdivide g 2))

let prop_outerplanar_is_planar =
  QCheck.Test.make ~name:"generated outerplanar graphs are planar (and stay planar with an apex)"
    ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 3 40))
    (fun (seed, n) ->
      let g = Gen.random_outerplanar ~seed ~n ~chord_prob:0.6 in
      (* Outerplanarity: adding an apex adjacent to every vertex keeps the
         graph planar. *)
      let apex = Gr.n g in
      let augmented =
        Gr.union_vertices g ~more:1 (List.init (Gr.n g) (fun v -> (apex, v)))
      in
      Dmp.is_planar g && Dmp.is_planar augmented)

let prop_embedding_covers_graph =
  QCheck.Test.make ~name:"DMP rotation is over the exact input graph" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let g = Gen.random_planar ~seed ~n:30 ~m:50 in
      match Dmp.embed g with
      | Dmp.Nonplanar -> false
      | Dmp.Planar r ->
          let ok = ref true in
          for v = 0 to Gr.n g - 1 do
            let rot = Rotation.rotation r v in
            if Array.length rot <> Gr.degree g v then ok := false;
            Array.iter (fun u -> if not (Gr.mem_edge g u v) then ok := false) rot
          done;
          !ok)

let prop_trees_embed_uniquely_flat =
  QCheck.Test.make ~name:"trees embed with exactly one face" ~count:40
    QCheck.(pair (int_range 0 100000) (int_range 2 50))
    (fun (seed, n) ->
      let g = Gen.random_tree ~seed n in
      match Dmp.embed g with
      | Dmp.Nonplanar -> false
      | Dmp.Planar r -> Rotation.face_count r = 1)

let () =
  Alcotest.run "planarity"
    [
      ( "dmp-units",
        [
          Alcotest.test_case "planar families" `Quick test_planar_families;
          Alcotest.test_case "nonplanar families" `Quick test_nonplanar_families;
          Alcotest.test_case "subdivision" `Quick test_subdivision_preserves;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "blocks" `Quick test_blocks_combined;
          Alcotest.test_case "triangulation faces" `Quick
            test_maximal_planar_face_count;
          Alcotest.test_case "dense reject" `Quick test_dense_reject_fast;
        ] );
      ( "dmp-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_planar_accepted;
            prop_label_invariance;
            prop_subdivision_invariance;
            prop_outerplanar_is_planar;
            prop_embedding_covers_graph;
            prop_trees_embed_uniquely_flat;
          ] );
    ]
