type call = {
  root : int;
  vertices : int list;
  subtree_depth : int;
  splitter : int;
  p0 : int list;
  hanging : call list;
  level : int;
}

let splitter_of_subtree ~sizes ~children ~total root =
  let rec walk v =
    let heavy =
      List.fold_left
        (fun acc c -> match acc with
          | Some h when sizes h >= sizes c -> acc
          | _ -> Some c)
        None (children v)
    in
    match heavy with
    | Some h when 2 * sizes h > total -> walk h
    | Some _ | None -> v
  in
  walk root

let subtree_vertices children root =
  let out = ref [] in
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    out := v :: !out;
    List.iter (fun c -> Stack.push c stack) (children v)
  done;
  !out

let recursion_tree ?(base_size = 2) g bt =
  (* Base calls reuse their whole subtree as P0, which must be a path; a
     subtree of at most two vertices always is. *)
  let base_size = min base_size 2 in
  let n = Array.length bt.Traverse.parent in
  let kids_arr = Traverse.children bt in
  let children v = kids_arr.(v) in
  (* Global subtree sizes: within any subtree T_s, a vertex's subtree size
     equals its global one. *)
  let sizes_arr = Traverse.subtree_sizes g bt in
  let sizes v = sizes_arr.(v) in
  ignore n;
  let rec build level root =
    let vertices = subtree_vertices children root in
    let total = List.length vertices in
    let subtree_depth =
      List.fold_left
        (fun acc v -> max acc (bt.Traverse.dist.(v) - bt.Traverse.dist.(root)))
        0 vertices
    in
    if total <= base_size then
      (* Base case: the whole subtree is the (path or single-vertex) P0,
         ordered from the root down. *)
      let p0 =
        List.sort
          (fun a b -> compare bt.Traverse.dist.(a) bt.Traverse.dist.(b))
          vertices
      in
      { root; vertices; subtree_depth; splitter = root; p0; hanging = []; level }
    else begin
      let v = splitter_of_subtree ~sizes ~children ~total root in
      (* P0: the tree path root .. v. *)
      let rec up x acc =
        if x = root then x :: acc else up bt.Traverse.parent.(x) (x :: acc)
      in
      let p0 = up v [] in
      let on_p0 = Hashtbl.create (List.length p0) in
      List.iter (fun x -> Hashtbl.replace on_p0 x ()) p0;
      let hanging =
        List.concat_map
          (fun x ->
            List.filter_map
              (fun c ->
                if Hashtbl.mem on_p0 c then None
                else Some (build (level + 1) c))
              (children x))
          p0
      in
      { root; vertices; subtree_depth; splitter = v; p0; hanging; level }
    end
  in
  build 0 bt.Traverse.root

let rec depth call =
  List.fold_left (fun acc c -> max acc (depth c)) call.level call.hanging

let rec count_calls call =
  List.fold_left (fun acc c -> acc + count_calls c) 1 call.hanging

let check g bt call =
  let ok = ref true in
  let fail () = ok := false in
  let rec go call =
    let total = List.length call.vertices in
    (* P0 is the tree path root .. splitter. *)
    (match call.p0 with
    | [] -> fail ()
    | first :: _ ->
        if first <> call.root then fail ();
        let rec pairs = function
          | a :: (b :: _ as rest) ->
              if bt.Traverse.parent.(b) <> a then fail ();
              pairs rest
          | [ last ] -> if call.hanging <> [] && last <> call.splitter then fail ()
          | [] -> ()
        in
        pairs call.p0);
    (* P0 induces a path (no chords: Lemma 4.1). *)
    let (p0g, _, _) = Gr.induced g call.p0 in
    if Gr.m p0g <> List.length call.p0 - 1 then fail ();
    (* Parts partition the subtree. *)
    let all = call.p0 @ List.concat_map (fun c -> c.vertices) call.hanging in
    if List.sort compare all <> List.sort compare call.vertices then fail ();
    List.iter
      (fun child ->
        (* Lemma 4.2: size and depth bounds. *)
        if 3 * List.length child.vertices > 2 * total then fail ();
        if child.subtree_depth >= call.subtree_depth && call.subtree_depth > 0
        then fail ();
        if not (Partition.induces_connected g child.vertices) then fail ();
        go child)
      call.hanging
  in
  go call;
  !ok
