(** Distributed minimum spanning tree — the downstream consumer.

    The whole point of the paper's embedding algorithm is the follow-up
    work it enables: part II of the project ([GH16], cited in the paper)
    computes MST and min-cut in planar networks in [Õ(D)] rounds, using
    the planar embedding of part I as a black box to build low-congestion
    shortcuts. This module provides the classic distributed MST the
    program starts from — Borůvka/GHS-style fragment merging with honest
    CONGEST cost accounting — so the repository demonstrates an actual
    consumer of the embedding pipeline's substrate (simulator, cost model,
    fragment machinery). The shortcut acceleration itself belongs to the
    part II paper and is documented as out of scope in DESIGN.md.

    Weights are made distinct by tie-breaking on edge ids (the standard
    trick), so the MST is unique and testable against a centralized
    Kruskal reference. *)

type report = {
  rounds : int;
  phases : (string * int) list;
  boruvka_phases : int;  (** ≤ log2 n. *)
  total_bits : int;
  max_edge_bits : int;
}

val run :
  ?bandwidth:int ->
  weight:(int -> int -> int) ->
  Gr.t ->
  Gr.edge list * report
(** [run ~weight g] returns the MST edges (n-1 of them) of the connected
    network [g] under [weight u v] (evaluated once per edge, symmetric by
    normalization). @raise Invalid_argument on an empty or disconnected
    network. *)

val kruskal : weight:(int -> int -> int) -> Gr.t -> Gr.edge list
(** Centralized reference with the same tie-breaking. *)
