(** Global state of the distributed embedding run, and the merge patterns
    of Section 5.2 of the paper.

    Every merge goes through {!merge}: old parts disappear, their union
    becomes a fresh part (re-embedded with its half-embedded edges on one
    face), and the network is charged for the {e update instructions}
    disseminated inside the new part. The pattern-specific interface
    shipments are charged by the caller with {!ship_to_vertex} /
    {!ship_between}, which route the parts' compressed interface summaries
    over real tree paths and edges of the graph.

    With [checks] on, every merge is validated against the safety
    invariants of {!Partition} (Definition 3.1 / Proposition 5.2), feeding
    experiment E8. *)

type kind = Pairwise | Star | Vertex_coordinated | Path_coordinated

type stats = {
  mutable pairwise : int;
  mutable star : int;
  mutable vertex_coordinated : int;
  mutable path_coordinated : int;
  mutable retired : int;
  mutable safety_checks : int;
  mutable calls : int;  (** recursion calls processed. *)
  mutable final_parts_max : int;
      (** most parts entering any restricted path-coordinated merge. *)
  mutable iface_bits_shipped : int;
}

type t = {
  g : Gr.t;
  mode : Part.mode;
  checks : bool;
  cost : Costmodel.t;
  part_of : int array;  (** vertex -> part id; [-1] before assignment. *)
  parts : (int, Part.t) Hashtbl.t;  (** alive parts. *)
  mutable next_id : int;
  stats : stats;
}

val create : Gr.t -> mode:Part.mode -> checks:bool -> cost:Costmodel.t -> t
val part : t -> int -> Part.t

val half_of : t -> int -> (int * int) list
(** Current half-embedded edges of a part (recomputed from [part_of]). *)

val fresh_part : t -> ?anchors:int list -> int list -> int
(** Turn unassigned vertices into a new part; returns its id. *)

val ship_to_vertex : t -> from_part:int -> int -> unit
(** Charge aggregating the part's compressed interface to its leader and
    routing it to the given vertex (which must be adjacent to the part). *)

val ship_between : t -> from_part:int -> to_part:int -> unit
(** Charge shipping [from_part]'s interface to [to_part]'s leader across a
    connecting edge. *)

val merge : t -> ?anchors:int list -> kind:kind -> int list -> int
(** Merge the given (≥ 2, pairwise distinct, union-connected) parts into a
    fresh one; returns its id. @raise Part.Nonplanar_detected when the
    union admits no valid partial embedding. *)

val adjacent_parts : t -> int -> int list
(** Ids of distinct parts sharing an edge with the given part. *)

val connecting_edge : t -> from_part:int -> to_part:int -> int * int
(** Some edge [(u, v)] with [u] in [from_part], [v] in [to_part].
    @raise Not_found if none exists. *)
