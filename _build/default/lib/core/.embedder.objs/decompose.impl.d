lib/core/decompose.ml: Array Gr Hashtbl List Partition Stack Traverse
