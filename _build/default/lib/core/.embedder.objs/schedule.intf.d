lib/core/schedule.mli: Merge
