lib/core/mst.mli: Gr
