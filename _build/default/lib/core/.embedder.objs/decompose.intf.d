lib/core/decompose.mli: Gr Traverse
