lib/core/merge.ml: Array Costmodel Gr Hashtbl List Part Partition Printf
