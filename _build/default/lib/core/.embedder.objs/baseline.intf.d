lib/core/baseline.mli: Gr Rotation
