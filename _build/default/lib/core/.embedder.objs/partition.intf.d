lib/core/partition.mli: Gr
