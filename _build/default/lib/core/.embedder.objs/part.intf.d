lib/core/part.mli: Constrained Gr Hashtbl
