lib/core/merge.mli: Costmodel Gr Hashtbl Part
