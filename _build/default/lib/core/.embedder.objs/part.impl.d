lib/core/part.ml: Array Bicon Constrained Gr Hashtbl List Printf Traverse
