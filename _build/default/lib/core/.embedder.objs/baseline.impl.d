lib/core/baseline.ml: Array Costmodel Dmp Gr List Metrics Network Part Proto Rotation Traverse
