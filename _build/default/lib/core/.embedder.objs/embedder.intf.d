lib/core/embedder.mli: Gr Part Rotation
