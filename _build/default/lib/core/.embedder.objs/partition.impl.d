lib/core/partition.ml: Array Gr Hashtbl List Traverse
