lib/core/symmetry.ml: Array Gr List Seq
