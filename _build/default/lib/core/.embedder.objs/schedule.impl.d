lib/core/schedule.ml: Array Costmodel Gr Hashtbl List Merge Part Symmetry Unionfind
