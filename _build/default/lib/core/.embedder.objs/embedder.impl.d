lib/core/embedder.ml: Array Constrained Costmodel Decompose Gr Hashtbl List Merge Metrics Network Part Proto Rotation Schedule Traverse
