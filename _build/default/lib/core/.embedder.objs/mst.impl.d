lib/core/mst.ml: Array Costmodel Gr Hashtbl List Metrics Network Part Proto Traverse Unionfind
