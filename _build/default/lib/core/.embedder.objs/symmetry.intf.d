lib/core/symmetry.mli: Gr
