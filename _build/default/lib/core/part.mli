(** Parts of the embedding algorithm's partition (Section 3 of the paper).

    A part is a connected set of vertices together with the distributed
    machinery the algorithm maintains for it: a leader, a low-depth
    spanning tree used for internal upcasts/downcasts, the current partial
    embedding (all half-embedded edges on one face, via the apex
    construction of {!Constrained}), and the size of its compressed
    interface summary — the number of bits the part ships when it takes
    part in a merge.

    {e Anchors} implement step 2(e) of the Section 5.3 algorithm: when a
    vertex-coordinated merge around a [P0]-vertex [i] could blow up a
    part's diameter, the paper "splits off a copy" of [i] into the part.
    Here the copy is realized by letting the part's spanning tree route
    through [i] (the congestion on [i]'s real edges is charged normally),
    which restores [O(D)] depth exactly as in the paper. *)

type mode =
  | Faithful
      (** maintain a real partial embedding at every merge (catches
          non-planarity early; interface sizes are the realized ones). *)
  | Economy
      (** skip intermediate embeddings; interface sizes are estimated from
          the biconnected structure. For large benchmark sweeps; the
          ablation experiment compares the two cost profiles. *)

type t = {
  id : int;
  vertices : int list;
  leader : int;  (** maximum id in the part. *)
  tree_parent : (int, int) Hashtbl.t;
      (** spanning-tree parent (global ids) of every member and anchor;
          the leader maps to itself. *)
  depth : int;
  anchors : int list;
  trivial : bool;  (** induces a tree (Definition preceding Def. 3.1). *)
  n_bicon : int;  (** biconnected components of the induced subgraph. *)
  half : (int * int) list;  (** half-embedded edges at creation time. *)
  emb : Constrained.t option;  (** partial embedding ([Faithful] mode). *)
  iface_bits : int;  (** compressed interface size in bits. *)
}

exception Nonplanar_detected of string
(** Raised as soon as some partial embedding fails — for a safe partition
    this certifies the whole network non-planar. *)

val create :
  Gr.t ->
  mode:mode ->
  classify:(int -> int) ->
  half:(int * int) list ->
  id:int ->
  vertices:int list ->
  anchors:int list ->
  t
(** Build a part over the given (connected) vertex set. [classify] maps an
    outside endpoint to its communication class (the embedder passes the
    endpoint's current part id): consecutive half-embedded edges of the
    same class collapse into one compressed interface leaf — the paper's
    "only essential degrees of freedom" compression (its Section 7.1.4).
    @raise Nonplanar_detected in [Faithful] mode when no embedding places
    all half-embedded edges on one face. *)

val size : t -> int
val mem : t -> int -> bool

val path_to_leader : t -> int -> int list
(** Tree path from a member (or anchor) up to the leader, inclusive. *)

val parent_fn : t -> int -> int
(** The spanning-tree parent as a function (for cost charging). *)

val word : Gr.t -> int
(** Bits of one identifier. *)
