(** The unrestricted path-coordinated merge of Section 5.3 of the paper —
    the merge phase of one recursion call.

    Given the call's trivial path part [P0] and its hanging parts
    [P1 .. Pk] (each already internally embedded by the child recursions),
    the schedule reduces the number of parts to (empirically) [O(D)] by the
    paper's steps:

    + number the [P0] vertices;
    + twice: recompute each part's lowest [P0]-connection ("color"),
      vertex-coordinated-merge same-color connected clusters around their
      shared connection vertex (splitting off a copy of the coordinator as
      the merged part's {e anchor}), retire parts whose only connection is
      a single [P0]-vertex (and possibly [G∖H]), run the Lemma 5.3
      symmetry breaking on the properly colored inter-part graph, star-merge
      its star groups and pairwise-merge its two-node paths, and sideline
      longer color-monotone paths for the next iteration;
    + retire all but the highest-id part among those connecting exactly the
      same two [P0]-vertices and nothing else (steps 3–5);
    + finish with the restricted path-coordinated merge: the surviving
      parts ship their compressed interfaces along [P0] (the congestion
      this causes on the path's edges is charged for real), and the whole
      subtree becomes a single part.

    Returns the id of the part covering the call's entire subtree. *)

type outcome = {
  final_part : int;
  parts_at_restricted_merge : int;
      (** how many parts survived into step 6 — experiment E6 checks this
          stays [O(D)]. *)
  retired_parts : int;
}

val run :
  Merge.t ->
  p0:int list ->
  hanging:int list ->
  in_subtree:(int -> bool) ->
  outcome
