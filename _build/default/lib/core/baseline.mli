(** The trivial algorithm the paper's Theorem 1.1 is measured against
    (its footnote 2): gather the whole topology at the leader over the BFS
    tree, solve planarity locally, and push each node's rotation back down.

    In the CONGEST model this costs [O(n + D)] rounds (the tree edges near
    the root carry [Θ(m)] edge descriptions of [2·⌈log n⌉] bits each at
    [B] bits per round, pipelined), which on planar graphs is [O(n)].
    Experiments E1/E2 plot this against the recursive algorithm. *)

type report = {
  n : int;
  m : int;
  bandwidth : int;
  leader : int;
  bfs_depth : int;
  rounds : int;
  phases : (string * int) list;
  total_bits : int;
  max_edge_bits : int;
}

type outcome = { rotation : Rotation.t option; report : report }

val run : ?bandwidth:int -> Gr.t -> outcome
(** @raise Invalid_argument on an empty or disconnected network. *)
