(** The partition invariants of Section 3 and Section 5.1 of the paper, as
    executable predicates.

    These back the [checks] mode of the embedder (every merge it performs
    is validated against them) and the E8 experiment. *)

val induces_connected : Gr.t -> int list -> bool
(** Every part must induce a connected subgraph. *)

val is_trivial : Gr.t -> int list -> bool
(** A part is trivial iff it induces a tree (so a trivial part has no
    embedding freedom of its own). *)

val complement_connected : Gr.t -> int list -> bool
(** Is [G \ P] connected (vacuously true when the part covers [G])? *)

val is_safe : Gr.t -> int list list -> bool
(** Definition 3.1: all parts induce connected subgraphs, they partition a
    subset of the vertices disjointly, and every {e non-trivial} part has a
    connected complement. (Vertices outside all parts are treated as a
    virtual final part, matching the algorithm's "rest of the graph".) *)

val half_edges : Gr.t -> part_of:int array -> int -> (int * int) list
(** The half-embedded edges of the part with the given id: edges with
    exactly their [(inside, outside)] orientation, [inside] in the part.
    [part_of] maps each vertex to its part id ([-1] for "no part yet"). *)

val merge_is_safe : Gr.t -> int list list -> int -> int -> bool
(** Definition 5.1: merging parts [i] and [j] of the given partition (by
    index) yields again a safe partition. *)
