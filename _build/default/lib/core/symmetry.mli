(** The symmetry-breaking routine of Lemma 5.3.

    Input: the inter-part graph of one recursion call (an outerplanar
    graph: the parts hang off the path [P0] inside a planar graph) with a
    proper node coloring — the paper colors each part by its lowest
    [P0]-connection point, and after the same-color vertex-coordinated
    merges, adjacent parts have distinct colors.

    Output, computed from [O(1)] rounds' worth of neighborhood information
    (which Remark 1 turns into [O(D)] network rounds per part-level round):

    - disjoint {e star groups} of size at least two, each inducing a star;
    - a partition of the remaining ("contracted", in the paper's phrasing)
      nodes into {e color-monotone paths} (colors strictly decrease along
      each path; singleton paths are allowed for nodes nothing points at).

    The PODC extended abstract defers the concrete algorithm to its full
    version; this implementation uses minimum-color pointer forests (each
    node points to its smallest-colored smaller neighbor, so pointer chains
    are automatically color-monotone) and is validated by the property
    tests of [test_symmetry.ml] and measured by experiments E5/E6. See
    DESIGN.md, "Substitutions". *)

type grouping = {
  stars : (int * int list) list;
      (** [(center, leaves)]: disjoint, sizes ≥ 2, each inducing a star. *)
  paths : int list list;
      (** color-monotone paths (decreasing color), partitioning every node
          that is in no star. *)
}

val compute : Gr.t -> colors:int array -> grouping
(** @raise Invalid_argument if the coloring is not proper. *)

val part_level_rounds : int
(** The number of part-level communication rounds the routine needs (a
    constant, as Lemma 5.3 requires); each costs [O(max part depth)]
    network rounds by Remark 1. *)

val check : Gr.t -> colors:int array -> grouping -> bool
(** Test oracle for the guarantees listed above. *)
