(** The recursive embedding order of Section 4 of the paper.

    Starting from a BFS tree [T] rooted at the globally elected vertex
    [s*], each recursion step takes the subtree [T_s] below a vertex [s],
    finds a {e splitter} vertex [v] whose removal leaves components of at
    most [2|T_s|/3] vertices, and partitions [T_s] into the tree path
    [P0 = s..v] and the subtrees hanging off [P0]. The hanging subtrees are
    recursed on; [P0] is trivial (a BFS-tree path cannot carry chords —
    Lemma 4.1), so the partition is safe.

    Lemma 4.2: every hanging part has at most [2|T_s|/3] vertices and its
    subtree depth strictly decreases, so the recursion depth is at most
    [min{log_1.5 n, depth(T)}] (Lemma 4.3). *)

type call = {
  root : int;  (** [s], the subtree's root. *)
  vertices : int list;  (** the vertices of [T_s]. *)
  subtree_depth : int;  (** depth of [T_s] (0 for a single vertex). *)
  splitter : int;  (** [v]; equal to [root] in base-case calls. *)
  p0 : int list;  (** the tree path [s .. v] (the whole call in base cases). *)
  hanging : call list;  (** the recursive calls on [P1 .. Pk]. *)
  level : int;  (** recursion depth of this call (root call = 0). *)
}

val splitter_of_subtree :
  sizes:(int -> int) -> children:(int -> int list) -> total:int -> int -> int
(** [splitter_of_subtree ~sizes ~children ~total s] walks from [s] toward
    the heaviest child until every component of [T_s - v] (children
    subtrees and the part above [v]) has at most [total / 2] — hence
    certainly [2·total/3] — vertices. [sizes] gives subtree sizes within
    [T_s]. *)

val recursion_tree : ?base_size:int -> Gr.t -> Traverse.bfs_tree -> call
(** Build the whole recursion tree below the BFS root. Calls with at most
    [base_size] (default 2) vertices become leaves whose [p0] covers the
    entire subtree. *)

val depth : call -> int
(** Maximum [level] in the tree. *)

val count_calls : call -> int

val check : Gr.t -> Traverse.bfs_tree -> call -> bool
(** Test oracle: all Lemma 4.1/4.2 properties hold throughout the tree —
    parts are disjoint, cover the subtree, sizes shrink by the 2/3 factor,
    [p0] induces a path, and each hanging part is connected. *)
