type mode = Faithful | Economy

type t = {
  id : int;
  vertices : int list;
  leader : int;
  tree_parent : (int, int) Hashtbl.t;
  depth : int;
  anchors : int list;
  trivial : bool;
  n_bicon : int;
  half : (int * int) list;
  emb : Constrained.t option;
  iface_bits : int;
}

exception Nonplanar_detected of string

let word g =
  let n = max 2 (Gr.n g) in
  let rec bits_needed k acc = if k <= 1 then acc else bits_needed (k / 2) (acc + 1) in
  bits_needed (n - 1) 1

(* Number of maximal runs in a cyclic sequence after classifying: the
   number of class transitions around the cycle, at least one. *)
let cyclic_runs classify = function
  | [] -> 0
  | [ _ ] -> 1
  | l ->
      let arr = Array.of_list (List.map classify l) in
      let k = Array.length arr in
      let transitions = ref 0 in
      for i = 0 to k - 1 do
        if arr.(i) <> arr.((i + 1) mod k) then incr transitions
      done;
      max 1 !transitions

let create g ~mode ~classify ~half ~id ~vertices ~anchors =
  let leader = List.fold_left max (List.hd vertices) vertices in
  (* Spanning tree over the part plus its anchors (the "split-off copies"
     of P0 coordinators), rooted at the leader. *)
  let span_set = List.sort_uniq compare (anchors @ vertices) in
  let (span_g, old_of_new, new_of_old) = Gr.induced g span_set in
  let bfs = Traverse.bfs span_g (new_of_old leader) in
  let tree_parent = Hashtbl.create (List.length span_set) in
  List.iter
    (fun v ->
      let nv = new_of_old v in
      if bfs.Traverse.dist.(nv) < 0 then
        invalid_arg
          (Printf.sprintf "Part.create: part %d is not connected (vertex %d)" id v);
      Hashtbl.replace tree_parent v old_of_new.(bfs.Traverse.parent.(nv)))
    span_set;
  let depth = Traverse.depth bfs in
  (* Structure of the induced subgraph proper (without anchors). *)
  let (sub, _, _) = Gr.induced g vertices in
  let trivial = Gr.m sub = List.length vertices - 1 in
  let dec = Bicon.decompose sub in
  let n_bicon = dec.Bicon.n_components in
  let emb =
    match mode with
    | Economy -> None
    | Faithful -> (
        match Constrained.embed g ~part:vertices ~half with
        | Some e -> Some e
        | None ->
            raise
              (Nonplanar_detected
                 (Printf.sprintf
                    "part %d admits no embedding with its half-embedded \
                     edges on one face"
                    id)))
  in
  let w = word g in
  let iface_bits =
    (* Compressed interface: one (class, count) leaf per maximal run of
       half-embedded edges with the same outside endpoint, plus 2 bits of
       structure per biconnected component. In Economy mode the realized
       outer order is unknown; the number of distinct outside endpoints is
       the run-count estimate. *)
    let runs =
      match emb with
      | Some e -> cyclic_runs (fun (_u, v) -> classify v) e.Constrained.outer
      | None ->
          List.length
            (List.sort_uniq compare (List.map (fun (_u, v) -> classify v) half))
    in
    2 + (runs * (2 + (2 * w))) + (2 * n_bicon)
  in
  {
    id;
    vertices;
    leader;
    tree_parent;
    depth;
    anchors;
    trivial;
    n_bicon;
    half;
    emb;
    iface_bits;
  }

let size t = List.length t.vertices
let mem t v = Hashtbl.mem t.tree_parent v && not (List.mem v t.anchors)

let path_to_leader t v =
  let rec up v acc =
    let p = Hashtbl.find t.tree_parent v in
    if p = v then List.rev (v :: acc) else up p (v :: acc)
  in
  up v []

let parent_fn t v = Hashtbl.find t.tree_parent v
