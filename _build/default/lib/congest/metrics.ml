type t = {
  g : Gr.t;
  mutable rounds : int;
  mutable messages : int;
  mutable total_bits : int;
  edge_bits : int array;
  mutable phases : (string * int) list;
}

let create g =
  {
    g;
    rounds = 0;
    messages = 0;
    total_bits = 0;
    edge_bits = Array.make (max 1 (Gr.m g)) 0;
    phases = [];
  }

let graph t = t.g
let rounds t = t.rounds
let messages t = t.messages
let total_bits t = t.total_bits
let max_edge_bits t = if Gr.m t.g = 0 then 0 else Array.fold_left max 0 t.edge_bits
let edge_bits t i = t.edge_bits.(i)
let add_rounds t r = t.rounds <- t.rounds + r

let add_edge_bits_by_index t i bits =
  t.edge_bits.(i) <- t.edge_bits.(i) + bits;
  t.total_bits <- t.total_bits + bits

let add_message t ~u ~v ~bits =
  t.messages <- t.messages + 1;
  add_edge_bits_by_index t (Gr.edge_index t.g u v) bits

let phase t name r = t.phases <- (name, r) :: t.phases
let phases t = List.rev t.phases

let merge_into ~dst ~src =
  if Gr.n dst.g <> Gr.n src.g || Gr.m dst.g <> Gr.m src.g then
    invalid_arg "Metrics.merge_into: different graphs";
  dst.rounds <- dst.rounds + src.rounds;
  dst.messages <- dst.messages + src.messages;
  Array.iteri (fun i b -> add_edge_bits_by_index dst i b) src.edge_bits;
  dst.phases <- List.rev_append (List.rev src.phases) dst.phases

let pp ppf t =
  Format.fprintf ppf
    "@[<v>rounds=%d messages=%d total_bits=%d max_edge_bits=%d" t.rounds
    t.messages t.total_bits (max_edge_bits t);
  List.iter (fun (name, r) -> Format.fprintf ppf "@   %-28s %6d rounds" name r)
    (phases t);
  Format.fprintf ppf "@]"
