(** Communication metrics of a CONGEST execution (real or cost-charged):
    rounds, message count, total bits, and per-edge bit loads.

    The per-edge tallies are the data behind experiment E7 ("no pair of
    adjacent nodes needs to exchange more than [Õ(D)] bits", Section 1.2 of
    the paper). *)

type t

val create : Gr.t -> t

val graph : t -> Gr.t
val rounds : t -> int
val messages : t -> int
val total_bits : t -> int

val max_edge_bits : t -> int
(** The largest number of bits exchanged over any single edge. *)

val edge_bits : t -> int -> int
(** Bits exchanged over the edge with the given dense index. *)

val add_rounds : t -> int -> unit
val add_message : t -> u:int -> v:int -> bits:int -> unit
(** Record one message of [bits] bits over edge [{u, v}].
    @raise Not_found if the edge does not exist. *)

val add_edge_bits_by_index : t -> int -> int -> unit
(** Low-level variant used by the cost model. *)

val phase : t -> string -> int -> unit
(** Record that a named phase consumed the given number of rounds (the
    rounds themselves must be added separately via {!add_rounds} — phases
    are an annotation for reporting). *)

val phases : t -> (string * int) list
(** Accumulated per-phase rounds, in execution order. *)

val merge_into : dst:t -> src:t -> unit
(** Fold [src]'s counters into [dst] (same underlying graph required):
    rounds add up, edge loads add up. Used to combine the real simulator
    runs of phase 1 with the cost-charged recursion phases. *)

val pp : Format.formatter -> t -> unit
