lib/congest/proto.ml: Array Gr List Network
