lib/congest/metrics.ml: Array Format Gr List
