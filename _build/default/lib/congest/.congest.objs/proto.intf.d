lib/congest/proto.mli: Gr Metrics
