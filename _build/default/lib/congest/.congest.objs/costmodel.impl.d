lib/congest/costmodel.ml: Gr Hashtbl List Metrics Network
