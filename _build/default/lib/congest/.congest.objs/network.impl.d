lib/congest/network.ml: Array Gr Hashtbl List Metrics Printf
