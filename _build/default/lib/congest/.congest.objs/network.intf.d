lib/congest/network.mli: Gr Metrics
