lib/congest/costmodel.mli: Gr Metrics
