lib/congest/metrics.mli: Format Gr
