(** Synchronous message-passing engine for the CONGEST model.

    Execution proceeds in synchronous rounds. In each round every node
    reads the messages delivered over its incident edges, updates its
    state, and emits at most [bandwidth] bits per incident edge (the
    CONGEST restriction: one [O(log n)]-bit message per edge per round).
    Exceeding the budget raises {!Bandwidth_exceeded} — the simulator
    enforces the model rather than silently queueing.

    The engine runs until {e quiescence}: a round in which no node sends
    any message. Nodes in a real deployment would detect termination with
    standard echo techniques at the same asymptotic cost; the simulator
    plays the global observer, which is the usual convention for measuring
    round complexity. *)

type ('s, 'm) protocol = {
  init : Gr.t -> int -> 's * (int * 'm) list;
      (** initial state and round-0 outbox of each node. A node knows only
          its own id and its neighbor ids, as in the paper's input model. *)
  round : Gr.t -> int -> 's -> (int * 'm) list -> 's * (int * 'm) list;
      (** [round g v state inbox] processes the messages [(from, msg)]
          delivered this round and returns the new state and outbox
          [(to, msg)]. Destinations must be neighbors of [v]. *)
  msg_bits : 'm -> int;
}

exception Bandwidth_exceeded of { round : int; u : int; v : int; bits : int }

val default_bandwidth : Gr.t -> int
(** [16 * ceil(log2 n)] bits — the [O(log n)] budget with an explicit
    constant, recorded in every experiment output. *)

val run :
  ?bandwidth:int ->
  ?max_rounds:int ->
  ?metrics:Metrics.t ->
  Gr.t ->
  ('s, 'm) protocol ->
  's array
(** Run to quiescence and return the final states. Metrics (rounds,
    messages, per-edge bits) accumulate into [metrics] when given.
    @raise Bandwidth_exceeded when a node over-sends on an edge.
    @raise Failure if [max_rounds] (default [16 * n + 64]) elapse without
    quiescence — a livelock guard for buggy protocols. *)
