type ('s, 'm) protocol = {
  init : Gr.t -> int -> 's * (int * 'm) list;
  round : Gr.t -> int -> 's -> (int * 'm) list -> 's * (int * 'm) list;
  msg_bits : 'm -> int;
}

exception Bandwidth_exceeded of { round : int; u : int; v : int; bits : int }

let default_bandwidth g =
  let n = max 2 (Gr.n g) in
  let rec bits_needed k acc = if k <= 1 then acc else bits_needed (k / 2) (acc + 1) in
  16 * bits_needed (n - 1) 1

let run ?bandwidth ?max_rounds ?metrics g proto =
  let n = Gr.n g in
  let bandwidth = match bandwidth with Some b -> b | None -> default_bandwidth g in
  let max_rounds = match max_rounds with Some r -> r | None -> (16 * n) + 64 in
  let inits = Array.init n (fun v -> proto.init g v) in
  let states = Array.map fst inits in
  let outboxes = Array.map snd inits in
  let record_message round u v msg =
    if not (Gr.mem_edge g u v) then
      invalid_arg
        (Printf.sprintf "Network.run: node %d sent to non-neighbor %d" u v);
    let bits = proto.msg_bits msg in
    (match metrics with
    | Some m -> Metrics.add_message m ~u ~v ~bits
    | None -> ());
    ignore round;
    bits
  in
  let check_budgets round outs =
    (* Per directed edge, per round: total bits must fit the budget. *)
    let per_edge = Hashtbl.create 64 in
    Array.iteri
      (fun u out ->
        List.iter
          (fun (v, msg) ->
            let bits = record_message round u v msg in
            let key = (u, v) in
            let sofar = try Hashtbl.find per_edge key with Not_found -> 0 in
            let now = sofar + bits in
            if now > bandwidth then
              raise (Bandwidth_exceeded { round; u; v; bits = now });
            Hashtbl.replace per_edge key now)
          out)
      outs
  in
  let round = ref 0 in
  let some_sent = ref (Array.exists (fun out -> out <> []) outboxes) in
  (* Round 0's spontaneous sends are checked and counted too. *)
  if !some_sent then check_budgets 0 outboxes;
  while !some_sent do
    if !round >= max_rounds then
      failwith "Network.run: no quiescence before max_rounds";
    incr round;
    (* Deliver: inbox of v = messages addressed to v last round. *)
    let inboxes = Array.make n [] in
    Array.iteri
      (fun u out ->
        List.iter (fun (v, msg) -> inboxes.(v) <- (u, msg) :: inboxes.(v)) out)
      outboxes;
    for v = 0 to n - 1 do
      outboxes.(v) <- []
    done;
    for v = 0 to n - 1 do
      if inboxes.(v) <> [] then begin
        let (s, out) = proto.round g v states.(v) inboxes.(v) in
        states.(v) <- s;
        outboxes.(v) <- out
      end
    done;
    some_sent := Array.exists (fun out -> out <> []) outboxes;
    if !some_sent then check_budgets !round outboxes
  done;
  (match metrics with Some m -> Metrics.add_rounds m !round | None -> ());
  states
