type t = {
  n_components : int;
  comp_of_edge : int array;
  components : Gr.edge list array;
  comps_of_vertex : int list array;
  is_cut : bool array;
}

(* Iterative Tarjan lowpoint algorithm with an explicit edge stack. Each
   DFS frame records the vertex, its DFS parent and the index of the next
   neighbor to examine, so deep graphs never overflow the OCaml stack. *)
let decompose g =
  let n = Gr.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let is_cut = Array.make n false in
  let comp_of_edge = Array.make (Gr.m g) (-1) in
  let components = ref [] in
  let n_components = ref 0 in
  let time = ref 0 in
  let edge_stack = Stack.create () in
  let pop_component u w =
    (* Pop edges down to and including (u, w); they form one component. *)
    let comp = ref [] in
    let continue = ref true in
    while !continue do
      let (a, b) = Stack.pop edge_stack in
      comp := (a, b) :: !comp;
      comp_of_edge.(Gr.edge_index g a b) <- !n_components;
      if (a, b) = Gr.normalize_edge u w then continue := false
    done;
    components := !comp :: !components;
    incr n_components
  in
  for start = 0 to n - 1 do
    if disc.(start) < 0 then begin
      let root_children = ref 0 in
      (* Frame: (vertex, dfs parent, mutable next-neighbor index). *)
      let frames = Stack.create () in
      disc.(start) <- !time;
      low.(start) <- !time;
      incr time;
      Stack.push (start, -1, ref 0) frames;
      while not (Stack.is_empty frames) do
        let (u, parent, next) = Stack.top frames in
        let nbrs = Gr.neighbors g u in
        if !next < Array.length nbrs then begin
          let w = nbrs.(!next) in
          incr next;
          if disc.(w) < 0 then begin
            Stack.push (Gr.normalize_edge u w) edge_stack;
            if u = start then incr root_children;
            disc.(w) <- !time;
            low.(w) <- !time;
            incr time;
            Stack.push (w, u, ref 0) frames
          end
          else if w <> parent && disc.(w) < disc.(u) then begin
            Stack.push (Gr.normalize_edge u w) edge_stack;
            if disc.(w) < low.(u) then low.(u) <- disc.(w)
          end
        end
        else begin
          ignore (Stack.pop frames);
          if parent >= 0 then begin
            if low.(u) < low.(parent) then low.(parent) <- low.(u);
            if low.(u) >= disc.(parent) then begin
              if parent <> start then is_cut.(parent) <- true;
              pop_component parent u
            end
          end
        end
      done;
      if !root_children >= 2 then is_cut.(start) <- true
    end
  done;
  let components = Array.of_list (List.rev !components) in
  let comps_of_vertex = Array.make n [] in
  Array.iteri
    (fun c edges ->
      let seen = Hashtbl.create 8 in
      let touch v =
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.replace seen v ();
          comps_of_vertex.(v) <- c :: comps_of_vertex.(v)
        end
      in
      List.iter
        (fun (a, b) ->
          touch a;
          touch b)
        edges)
    components;
  {
    n_components = !n_components;
    comp_of_edge;
    components;
    comps_of_vertex;
    is_cut;
  }

let paper_component_id t c =
  match List.sort compare t.components.(c) with
  | [] -> invalid_arg "Bicon.paper_component_id: empty component"
  | e :: _ -> e

let component_vertices t c =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let touch v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.replace seen v ();
      out := v :: !out
    end
  in
  List.iter
    (fun (a, b) ->
      touch a;
      touch b)
    t.components.(c);
  List.rev !out

type block_cut_tree = {
  block_node : int array;
  cut_node : (int * int) list;
  tree : Gr.t;
}

let block_cut_tree _g t =
  let block_node = Array.init t.n_components (fun c -> c) in
  let next = ref t.n_components in
  let cut_node = ref [] in
  let edges = ref [] in
  Array.iteri
    (fun v cut ->
      if cut then begin
        let node = !next in
        incr next;
        cut_node := (v, node) :: !cut_node;
        List.iter (fun c -> edges := (node, block_node.(c)) :: !edges)
          t.comps_of_vertex.(v)
      end)
    t.is_cut;
  { block_node; cut_node = List.rev !cut_node; tree = Gr.of_edges ~n:!next !edges }
