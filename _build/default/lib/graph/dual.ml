type t = {
  rotation : Rotation.t;
  faces : (int * int) list array;
  face_of : (int * int, int) Hashtbl.t;
  simple : Gr.t Lazy.t;
}

let make rotation =
  let faces = Array.of_list (Rotation.faces rotation) in
  let face_of = Hashtbl.create 64 in
  Array.iteri
    (fun i boundary -> List.iter (fun d -> Hashtbl.replace face_of d i) boundary)
    faces;
  let simple =
    lazy
      (let g = Rotation.graph rotation in
       let edges = ref [] in
       Gr.iter_edges g (fun u v ->
           let f1 = Hashtbl.find face_of (u, v)
           and f2 = Hashtbl.find face_of (v, u) in
           if f1 <> f2 then edges := (f1, f2) :: !edges);
       Gr.of_edges ~n:(Array.length faces) !edges)
  in
  { rotation; faces; face_of; simple }

let rotation t = t.rotation
let n_faces t = Array.length t.faces
let face_of_dart t d = Hashtbl.find t.face_of d
let boundary t f = t.faces.(f)
let degree t f = List.length t.faces.(f)

let adjacency t f =
  let g = Rotation.graph t.rotation in
  List.map
    (fun (u, v) ->
      (Hashtbl.find t.face_of (v, u), Gr.edge_index g u v))
    t.faces.(f)

let simple t = Lazy.force t.simple

let dual_distance t f1 f2 =
  let g = simple t in
  (Traverse.bfs g f1).Traverse.dist.(f2)
