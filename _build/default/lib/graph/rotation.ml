type t = {
  g : Gr.t;
  rot : int array array;
  (* (v, u) -> neighbor following u in the cyclic order at v. *)
  succ_tbl : (int * int, int) Hashtbl.t;
}

let make g rot =
  let n = Gr.n g in
  if Array.length rot <> n then invalid_arg "Rotation.make: wrong length";
  let succ_tbl = Hashtbl.create (2 * Gr.m g) in
  for v = 0 to n - 1 do
    let nbrs = Gr.neighbors g v in
    let r = rot.(v) in
    if Array.length r <> Array.length nbrs then
      invalid_arg "Rotation.make: rotation size mismatch";
    let expected = Hashtbl.create (Array.length nbrs) in
    Array.iter (fun u -> Hashtbl.replace expected u ()) nbrs;
    Array.iteri
      (fun i u ->
        if not (Hashtbl.mem expected u) then
          invalid_arg "Rotation.make: rotation is not a permutation of neighbors";
        Hashtbl.remove expected u;
        let next = r.((i + 1) mod Array.length r) in
        Hashtbl.replace succ_tbl (v, u) next)
      r;
    if Hashtbl.length expected <> 0 then
      invalid_arg "Rotation.make: rotation is not a permutation of neighbors"
  done;
  { g; rot = Array.map Array.copy rot; succ_tbl }

let rotation t v = t.rot.(v)
let graph t = t.g
let succ t v u = Hashtbl.find t.succ_tbl (v, u)

let mirror t =
  make t.g
    (Array.map
       (fun r -> Array.of_list (List.rev (Array.to_list r)))
       t.rot)

let of_sorted_adjacency g =
  make g (Array.init (Gr.n g) (fun v -> Array.copy (Gr.neighbors g v)))

(* Darts are numbered 2*e and 2*e+1 for edge index e = (u, v) normalized:
   2*e is u->v, 2*e+1 is v->u. *)
let dart_id t (u, v) =
  let e = Gr.edge_index t.g u v in
  if u < v then 2 * e else (2 * e) + 1

let dart_of_id t d =
  let (u, v) = Gr.edge_of_index t.g (d / 2) in
  if d land 1 = 0 then (u, v) else (v, u)

let next_dart t (u, v) = (v, succ t v u)

let faces t =
  let m = Gr.m t.g in
  let seen = Array.make (2 * m) false in
  let out = ref [] in
  for d = 0 to (2 * m) - 1 do
    if not seen.(d) then begin
      let face = ref [] in
      let cur = ref d in
      let continue = ref true in
      while !continue do
        seen.(!cur) <- true;
        let dart = dart_of_id t !cur in
        face := dart :: !face;
        let nxt = dart_id t (next_dart t dart) in
        if nxt = d then continue := false else cur := nxt
      done;
      out := List.rev !face :: !out
    end
  done;
  List.rev !out

let face_count t = List.length (faces t)

let genus t =
  (* Euler's formula per connected component: n_c - m_c + f_c = 2 - 2 g_c,
     where isolated vertices form components with one face each. *)
  let comps = Traverse.components t.g in
  let comp_of = Array.make (Gr.n t.g) (-1) in
  List.iteri (fun i vs -> List.iter (fun v -> comp_of.(v) <- i) vs) comps;
  let k = List.length comps in
  let nv = Array.make k 0 and ne = Array.make k 0 and nf = Array.make k 0 in
  List.iteri (fun i vs -> nv.(i) <- List.length vs) comps;
  Gr.iter_edges t.g (fun u _v -> ne.(comp_of.(u)) <- ne.(comp_of.(u)) + 1);
  List.iter
    (fun face ->
      match face with
      | (u, _) :: _ -> nf.(comp_of.(u)) <- nf.(comp_of.(u)) + 1
      | [] -> ())
    (faces t);
  let total = ref 0 in
  for i = 0 to k - 1 do
    let f = if ne.(i) = 0 then 1 else nf.(i) in
    let chi = nv.(i) - ne.(i) + f in
    let two_g = 2 - chi in
    assert (two_g >= 0 && two_g mod 2 = 0);
    total := !total + (two_g / 2)
  done;
  !total

let is_planar_embedding t = genus t = 0

let face_of_dart t (u, v) =
  if not (Gr.mem_edge t.g u v) then
    invalid_arg "Rotation.face_of_dart: not an edge";
  let start = (u, v) in
  let rec go cur acc =
    let nxt = next_dart t cur in
    if nxt = start then List.rev (cur :: acc) else go nxt (cur :: acc)
  in
  go start []

let pp ppf t =
  Format.fprintf ppf "@[<v>rotation system (n=%d, m=%d, f=%d, genus=%d)"
    (Gr.n t.g) (Gr.m t.g) (face_count t) (genus t);
  Array.iteri
    (fun v r ->
      Format.fprintf ppf "@ %d: (%s)" v
        (String.concat " " (List.map string_of_int (Array.to_list r))))
    t.rot;
  Format.fprintf ppf "@]"
