type edge = int * int

type t = {
  n : int;
  adj : int array array;
  edge_list : edge array;
  (* Maps a normalized edge to its dense index in [edge_list]. *)
  edge_idx : (edge, int) Hashtbl.t;
}

let normalize_edge u v =
  if u = v then invalid_arg "Gr.normalize_edge: self-loop";
  if u < v then (u, v) else (v, u)

let check_vertex n v =
  if v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Gr: vertex %d out of range [0, %d)" v n)

let of_edges ~n edges =
  let seen = Hashtbl.create (List.length edges) in
  let add (u, v) =
    check_vertex n u;
    check_vertex n v;
    let e = normalize_edge u v in
    if not (Hashtbl.mem seen e) then Hashtbl.replace seen e ()
  in
  List.iter add edges;
  let edge_list = Hashtbl.fold (fun e () acc -> e :: acc) seen [] in
  let edge_list = Array.of_list (List.sort compare edge_list) in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edge_list;
  Array.iter (fun a -> Array.sort compare a) adj;
  let edge_idx = Hashtbl.create (Array.length edge_list) in
  Array.iteri (fun i e -> Hashtbl.replace edge_idx e i) edge_list;
  { n; adj; edge_list; edge_idx }

let empty n = of_edges ~n []
let n t = t.n
let m t = Array.length t.edge_list
let degree t v = Array.length t.adj.(v)
let neighbors t v = t.adj.(v)
let mem_edge t u v = u <> v && Hashtbl.mem t.edge_idx (normalize_edge u v)
let edges t = Array.to_list t.edge_list
let iter_edges t f = Array.iter (fun (u, v) -> f u v) t.edge_list

let fold_vertices t ~init ~f =
  let acc = ref init in
  for v = 0 to t.n - 1 do
    acc := f !acc v
  done;
  !acc

let edge_index t u v = Hashtbl.find t.edge_idx (normalize_edge u v)
let edge_of_index t i = t.edge_list.(i)

let induced t vs =
  let k = List.length vs in
  let old_of_new = Array.of_list vs in
  let new_idx = Hashtbl.create k in
  Array.iteri
    (fun i v ->
      check_vertex t.n v;
      if Hashtbl.mem new_idx v then invalid_arg "Gr.induced: duplicate vertex";
      Hashtbl.replace new_idx v i)
    old_of_new;
  let sub_edges = ref [] in
  Array.iteri
    (fun i v ->
      Array.iter
        (fun w ->
          match Hashtbl.find_opt new_idx w with
          | Some j when i < j -> sub_edges := (i, j) :: !sub_edges
          | Some _ | None -> ())
        t.adj.(v))
    old_of_new;
  let h = of_edges ~n:k !sub_edges in
  (h, old_of_new, fun v -> Hashtbl.find new_idx v)

let add_edges t extra =
  of_edges ~n:t.n (extra @ Array.to_list t.edge_list)

let union_vertices t ~more extra =
  of_edges ~n:(t.n + more) (extra @ Array.to_list t.edge_list)

let relabel t perm =
  if Array.length perm <> t.n then invalid_arg "Gr.relabel: bad permutation";
  let seen = Array.make t.n false in
  Array.iter
    (fun p ->
      check_vertex t.n p;
      if seen.(p) then invalid_arg "Gr.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  of_edges ~n:t.n
    (Array.to_list (Array.map (fun (u, v) -> (perm.(u), perm.(v))) t.edge_list))

let pp ppf t =
  Format.fprintf ppf "@[<v>graph n=%d m=%d" t.n (m t);
  iter_edges t (fun u v -> Format.fprintf ppf "@ %d -- %d" u v);
  Format.fprintf ppf "@]"
