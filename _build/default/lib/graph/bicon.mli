(** Biconnected-component decomposition (Tarjan lowpoint algorithm).

    Section 3 of the paper represents each part's embedding freedom by its
    biconnected-component decomposition (Observation 3.2); this module is
    that decomposition, in the paper's distributed representation: every
    vertex knows the components it belongs to, every edge belongs to exactly
    one component, and a vertex is a cut vertex iff it belongs to two or
    more components. The implementation is iterative so that long paths
    (e.g. subdivided-[K4] lower-bound graphs) do not overflow the stack. *)

type t = {
  n_components : int;
  comp_of_edge : int array;  (** dense edge index (see {!Gr.edge_index}) to component id. *)
  components : Gr.edge list array;  (** edges of each component. *)
  comps_of_vertex : int list array;  (** component ids containing each vertex, duplicate-free. *)
  is_cut : bool array;  (** cut (articulation) vertices. *)
}

val decompose : Gr.t -> t

val paper_component_id : t -> int -> Gr.edge
(** The paper's component ID: the smallest edge ID (normalized [(u, v)]
    pair, compared lexicographically) among the component's edges. *)

val component_vertices : t -> int -> int list
(** Duplicate-free vertex set of a component. *)

(** The block–cut tree: one node per biconnected component ("block") and one
    per cut vertex, with an edge whenever the cut vertex lies in the block.
    Figure 4(b) of the paper pictures exactly this tree for a part. *)
type block_cut_tree = {
  block_node : int array;  (** tree-node id of each component. *)
  cut_node : (int * int) list;  (** [(vertex, tree-node id)] for each cut vertex. *)
  tree : Gr.t;
}

val block_cut_tree : Gr.t -> t -> block_cut_tree
