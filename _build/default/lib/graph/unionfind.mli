(** Disjoint-set (union–find) structure over integers [0 .. n-1].

    Uses path compression and union by rank; amortized near-constant time
    per operation. Used by graph generators, connectivity checks and the
    embedder's merge scheduling. *)

type t

val create : int -> t
(** [create n] is a fresh structure with singletons [{0}, ..., {n-1}]. *)

val find : t -> int -> int
(** [find t x] is the canonical representative of [x]'s set. *)

val union : t -> int -> int -> bool
(** [union t x y] merges the sets of [x] and [y]. Returns [true] if the two
    were in distinct sets (i.e. a merge actually happened). *)

val same : t -> int -> int -> bool
(** [same t x y] is [true] iff [x] and [y] are in the same set. *)

val count : t -> int
(** Number of distinct sets currently in the structure. *)

val groups : t -> (int, int list) Hashtbl.t
(** [groups t] maps each representative to the members of its set. *)
