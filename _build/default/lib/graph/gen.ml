let state seed = Random.State.make [| seed; 0x9e3779b9 |]

let path n =
  Gr.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Gr.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  Gr.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Gr.of_edges ~n !edges

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Gr.of_edges ~n:(a + b) !edges

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel: need n >= 4";
  let rim = n - 1 in
  let hub = n - 1 in
  let edges =
    List.init rim (fun i -> (i, (i + 1) mod rim))
    @ List.init rim (fun i -> (hub, i))
  in
  Gr.of_edges ~n edges

let ladder k =
  if k < 2 then invalid_arg "Gen.ladder: need k >= 2";
  let rail = List.init (k - 1) (fun i -> [ (i, i + 1); (k + i, k + i + 1) ]) in
  let rungs = List.init k (fun i -> (i, k + i)) in
  Gr.of_edges ~n:(2 * k) (rungs @ List.concat rail)

let fan n =
  if n < 2 then invalid_arg "Gen.fan: need n >= 2";
  let path = List.init (n - 2) (fun i -> (i, i + 1)) in
  let spokes = List.init (n - 1) (fun i -> (n - 1, i)) in
  Gr.of_edges ~n (path @ spokes)

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid: need positive dims";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Gr.of_edges ~n:(rows * cols) !edges

let triangular_grid rows cols =
  let g = grid rows cols in
  let id r c = (r * cols) + c in
  let diags = ref [] in
  for r = 0 to rows - 2 do
    for c = 0 to cols - 2 do
      diags := (id r c, id (r + 1) (c + 1)) :: !diags
    done
  done;
  Gr.add_edges g !diags

let toroidal_grid rows cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.toroidal_grid: need dims >= 3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Gr.of_edges ~n:(rows * cols) !edges

let binary_tree n =
  Gr.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i + 1, i / 2)))

let k5 () = complete 5
let k33 () = complete_bipartite 3 3

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  let spokes = List.init 5 (fun i -> (i, 5 + i)) in
  Gr.of_edges ~n:10 (outer @ inner @ spokes)

let subdivide g k =
  if k < 1 then invalid_arg "Gen.subdivide: need k >= 1";
  if k = 1 then g
  else begin
    let n0 = Gr.n g in
    let next = ref n0 in
    let edges = ref [] in
    Gr.iter_edges g (fun u v ->
        let prev = ref u in
        for _ = 1 to k - 1 do
          edges := (!prev, !next) :: !edges;
          prev := !next;
          incr next
        done;
        edges := (!prev, v) :: !edges);
    Gr.of_edges ~n:!next !edges
  end

let k4_subdivision seglen = subdivide (complete 4) seglen

let random_tree ~seed n =
  let rng = state seed in
  Gr.of_edges ~n
    (List.init (max 0 (n - 1)) (fun i ->
         (i + 1, Random.State.int rng (i + 1))))

let random_maximal_planar ~seed n =
  if n < 3 then invalid_arg "Gen.random_maximal_planar: need n >= 3";
  let rng = state seed in
  let edges = ref [ (0, 1); (1, 2); (0, 2) ] in
  (* Growable face list; a face is an (a, b, c) triangle. *)
  let faces = ref [| (0, 1, 2); (0, 1, 2) |] in
  let nfaces = ref 2 in
  let push face =
    if !nfaces = Array.length !faces then begin
      let bigger = Array.make (2 * !nfaces) (0, 0, 0) in
      Array.blit !faces 0 bigger 0 !nfaces;
      faces := bigger
    end;
    !faces.(!nfaces) <- face;
    incr nfaces
  in
  for v = 3 to n - 1 do
    let i = Random.State.int rng !nfaces in
    let (a, b, c) = !faces.(i) in
    edges := (v, a) :: (v, b) :: (v, c) :: !edges;
    !faces.(i) <- (a, b, v);
    push (b, c, v);
    push (a, c, v)
  done;
  Gr.of_edges ~n !edges

let sample_without_replacement rng pool k =
  (* Partial Fisher–Yates over a copy of the pool. *)
  let a = Array.copy pool in
  let len = Array.length a in
  if k > len then invalid_arg "Gen: sample too large";
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (len - i) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list (Array.sub a 0 k)

let spanning_tree_plus_extras rng g m =
  let n = Gr.n g in
  if m < n - 1 then invalid_arg "Gen: m < n - 1";
  let all = Array.of_list (Gr.edges g) in
  if m > Array.length all then invalid_arg "Gen: m exceeds available edges";
  (* Random spanning tree: scan edges in random order, keep tree edges. *)
  let order = Array.copy all in
  for i = Array.length order - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  let uf = Unionfind.create n in
  let tree = ref [] and rest = ref [] in
  Array.iter
    (fun (u, v) ->
      if Unionfind.union uf u v then tree := (u, v) :: !tree
      else rest := (u, v) :: !rest)
    order;
  let extra = m - List.length !tree in
  let extras = sample_without_replacement rng (Array.of_list !rest) extra in
  Gr.of_edges ~n (extras @ !tree)

let random_planar ~seed ~n ~m =
  if n <= 2 then begin
    (* Degenerate sizes (every such graph is planar). *)
    if m < max 0 (n - 1) || m > n * (n - 1) / 2 then
      invalid_arg "Gen.random_planar: bad m for tiny n";
    Gr.of_edges ~n (if n = 2 && m = 1 then [ (0, 1) ] else [])
  end
  else begin
    let rng = state seed in
    let maximal = random_maximal_planar ~seed:(seed + 1) n in
    if m > Gr.m maximal then invalid_arg "Gen.random_planar: m > 3n - 6";
    spanning_tree_plus_extras rng maximal m
  end

let random_outerplanar ~seed ~n ~chord_prob =
  if n < 3 then invalid_arg "Gen.random_outerplanar: need n >= 3";
  let rng = state seed in
  let chords = ref [] in
  (* Random triangulation of the polygon 0 .. n-1 by recursive splitting. *)
  let rec split i j =
    if j - i >= 2 then begin
      let k = i + 1 + Random.State.int rng (j - i - 1) in
      if k - i > 1 then chords := (i, k) :: !chords;
      if j - k > 1 then chords := (k, j) :: !chords;
      split i k;
      split k j
    end
  in
  split 0 (n - 1);
  let kept =
    List.filter (fun _ -> Random.State.float rng 1.0 < chord_prob) !chords
  in
  Gr.add_edges (cycle n) kept

let random_graph ~seed ~n ~m =
  let rng = state seed in
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Gen.random_graph: too many edges";
  let chosen = Hashtbl.create m in
  let edges = ref [] in
  while List.length !edges < m do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let e = Gr.normalize_edge u v in
      if not (Hashtbl.mem chosen e) then begin
        Hashtbl.replace chosen e ();
        edges := e :: !edges
      end
    end
  done;
  Gr.of_edges ~n !edges

let random_connected_graph ~seed ~n ~m =
  if m < n - 1 then invalid_arg "Gen.random_connected_graph: m < n - 1";
  let rng = state seed in
  let tree = random_tree ~seed:(seed + 17) n in
  let tree_edges = Gr.edges tree in
  let chosen = Hashtbl.create m in
  List.iter (fun e -> Hashtbl.replace chosen e ()) tree_edges;
  let edges = ref tree_edges in
  let count = ref (List.length tree_edges) in
  let max_m = n * (n - 1) / 2 in
  if m > max_m then invalid_arg "Gen.random_connected_graph: too many edges";
  while !count < m do
    let u = Random.State.int rng n and v = Random.State.int rng n in
    if u <> v then begin
      let e = Gr.normalize_edge u v in
      if not (Hashtbl.mem chosen e) then begin
        Hashtbl.replace chosen e ();
        edges := e :: !edges;
        incr count
      end
    end
  done;
  Gr.of_edges ~n !edges

let random_permutation ~seed n =
  let rng = state seed in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a
