(** Graph generators: the workload families for the tests, examples and the
    experiment harness.

    Deterministic given the [seed] argument. Planar families include the
    paper's lower-bound construction ({!k4_subdivision}, its footnote 1) and
    random maximal planar graphs with logarithmic diameter (the regime where
    [O(D log n)] beats the trivial [O(n)] most clearly). *)

(** {1 Deterministic families} *)

val path : int -> Gr.t
val cycle : int -> Gr.t
val star : int -> Gr.t
(** [star n] has center [0] and leaves [1 .. n-1]. *)

val complete : int -> Gr.t
val complete_bipartite : int -> int -> Gr.t
val wheel : int -> Gr.t
(** [wheel n] is a cycle on [n-1] vertices plus a hub adjacent to all;
    [n >= 4]. *)

val ladder : int -> Gr.t
(** [ladder k]: two parallel [k]-vertex paths joined by rungs ([2k]
    vertices); planar and biconnected for [k >= 2]. *)

val fan : int -> Gr.t
(** [fan n]: a path on [0 .. n-2] plus a hub [n-1] adjacent to every path
    vertex; a maximal outerplanar graph. [n >= 2]. *)

val grid : int -> int -> Gr.t
(** [grid rows cols]: the planar [rows × cols] mesh; vertex [(r, c)] is
    numbered [r * cols + c]. *)

val triangular_grid : int -> int -> Gr.t
(** [grid] plus one diagonal per cell — a planar triangulation-like mesh. *)

val toroidal_grid : int -> int -> Gr.t
(** Grid with wraparound in both dimensions: non-planar for sizes ≥ 3×3
    (genus 1). A negative test family. *)

val binary_tree : int -> Gr.t
(** Complete-ish binary tree on [n] vertices (vertex [i]'s parent is
    [(i-1)/2]). *)

val k5 : unit -> Gr.t
val k33 : unit -> Gr.t
val petersen : unit -> Gr.t

val k4_subdivision : int -> Gr.t
(** [k4_subdivision seglen] replaces every edge of [K4] with a path of
    [seglen] edges — the paper's [Ω(D)] lower-bound graph (footnote 1):
    its diameter is [Θ(seglen)] and its four degree-3 vertices must output
    mutually consistent clockwise orders. [seglen >= 1]. *)

val subdivide : Gr.t -> int -> Gr.t
(** [subdivide g k] replaces every edge with a path of [k] edges ([k >= 1];
    [k = 1] is the identity). Subdivision preserves (non-)planarity. *)

(** {1 Random families} *)

val random_tree : seed:int -> int -> Gr.t
(** Random recursive tree: vertex [i] attaches to a uniform earlier vertex. *)

val random_maximal_planar : seed:int -> int -> Gr.t
(** Random Apollonian triangulation on [n >= 3] vertices: [3n - 6] edges,
    maximal planar, diameter [O(log n)] with high probability. *)

val random_planar : seed:int -> n:int -> m:int -> Gr.t
(** Connected random planar graph: a spanning tree of a random maximal
    planar graph plus a random sample of its remaining edges, for any
    [n - 1 <= m <= 3n - 6]. *)

val random_outerplanar : seed:int -> n:int -> chord_prob:float -> Gr.t
(** Cycle on [n >= 3] vertices plus a random non-crossing chord set (each
    chord of a random polygon triangulation kept with probability
    [chord_prob]); always outerplanar and biconnected. *)

val random_graph : seed:int -> n:int -> m:int -> Gr.t
(** Uniform-ish random simple graph with [m] distinct edges (not
    necessarily connected or planar). *)

val random_connected_graph : seed:int -> n:int -> m:int -> Gr.t
(** Random spanning tree plus random extra edges; [m >= n - 1]. *)

val random_permutation : seed:int -> int -> int array
(** A uniformly random permutation of [0 .. n-1] (Fisher–Yates); used to
    relabel graphs so tests don't depend on vertex numbering. *)
