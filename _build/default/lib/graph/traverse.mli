(** Centralized graph traversals: BFS, DFS, connectivity, distances.

    These are the reference implementations that both the tests and the
    driver-side bookkeeping of the distributed embedder use; the simulator's
    distributed BFS is checked against [bfs] in the test suite. *)

type bfs_tree = {
  root : int;
  parent : int array;  (** [parent.(root) = root]; [-1] for unreached. *)
  dist : int array;  (** hop distance from the root; [-1] for unreached. *)
  order : int array;  (** vertices in nondecreasing distance order. *)
}

val bfs : Gr.t -> int -> bfs_tree

val children : bfs_tree -> int list array
(** Children lists of the BFS tree, indexed by vertex. *)

val depth : bfs_tree -> int
(** Maximum distance from the root over reached vertices. *)

val subtree_sizes : Gr.t -> bfs_tree -> int array
(** [subtree_sizes g t] gives, for each vertex, the number of vertices in
    its subtree of the BFS tree (itself included). *)

val is_connected : Gr.t -> bool

val components : Gr.t -> int list list
(** Connected components as vertex lists. *)

val eccentricity : Gr.t -> int -> int
(** Largest hop distance from the vertex; @raise Invalid_argument if the
    graph is disconnected. *)

val diameter : Gr.t -> int
(** Exact diameter by all-pairs BFS — O(n·m), meant for test and experiment
    graphs. @raise Invalid_argument if the graph is disconnected. *)

val distances : Gr.t -> int -> int array
(** Hop distances from a source; [-1] for unreachable vertices. *)

type dfs_tree = {
  dfs_root : int;
  dfs_parent : int array;  (** [dfs_parent.(root) = root]; [-1] unreached. *)
  preorder : int array;  (** reached vertices in DFS preorder. *)
  pre_index : int array;  (** position in [preorder]; [-1] unreached. *)
}

val dfs : Gr.t -> int -> dfs_tree
(** Iterative depth-first search (safe on [Θ(n)]-diameter graphs);
    neighbors are explored in increasing id order. *)

val tree_path : bfs_tree -> int -> int list
(** [tree_path t v] is the path from the root to [v] along tree parents
    (inclusive). @raise Invalid_argument if [v] was not reached. *)
