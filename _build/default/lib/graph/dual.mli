(** The dual of a combinatorial embedding.

    Once a rotation system is known (the embedder's output), the faces of
    the embedding are concrete objects; the dual graph has one vertex per
    face and one edge per primal edge, connecting the faces on its two
    sides. The dual is where many planar-graph algorithms live (cuts are
    dual cycles, face routing walks dual paths), which is exactly why the
    paper treats computing the embedding as "the first algorithmic step".

    The raw dual of a planar graph is a multigraph (a bridge yields a
    self-loop, two faces can share several edges); {!adjacency} exposes it
    with multiplicity while {!simple} collapses it for algorithms that
    want a {!Gr.t}. *)

type t

val make : Rotation.t -> t
(** Builds the face structure of the given rotation system (any genus;
    pair with {!Rotation.is_planar_embedding} when planarity matters). *)

val rotation : t -> Rotation.t
val n_faces : t -> int

val face_of_dart : t -> int * int -> int
(** The face whose boundary traverses the given dart.
    @raise Not_found if the dart is not in the graph. *)

val boundary : t -> int -> (int * int) list
(** The directed boundary walk of a face. *)

val degree : t -> int -> int
(** Boundary length of a face (counts repeated edges twice, so the sum of
    all degrees is [2m]). *)

val adjacency : t -> int -> (int * int) list
(** [adjacency d f] lists [(f', e)] pairs: one per boundary dart of [f],
    where [e] is the primal edge's dense index and [f'] the face on the
    other side (possibly [f] itself across a bridge). *)

val simple : t -> Gr.t
(** The dual as a simple graph (self-loops dropped, parallel edges
    collapsed); vertex [i] is face [i]. *)

val dual_distance : t -> int -> int -> int
(** Hop distance between two faces in the simple dual; [-1] if separated
    (cannot happen for a connected primal graph). *)
