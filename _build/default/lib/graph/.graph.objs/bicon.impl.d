lib/graph/bicon.ml: Array Gr Hashtbl List Stack
