lib/graph/unionfind.mli: Hashtbl
