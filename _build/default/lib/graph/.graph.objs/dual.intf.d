lib/graph/dual.mli: Gr Rotation
