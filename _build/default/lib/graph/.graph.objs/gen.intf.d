lib/graph/gen.mli: Gr
