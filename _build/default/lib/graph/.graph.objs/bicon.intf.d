lib/graph/bicon.mli: Gr
