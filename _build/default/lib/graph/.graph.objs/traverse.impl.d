lib/graph/traverse.ml: Array Gr List Queue Stack
