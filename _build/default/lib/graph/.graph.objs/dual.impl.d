lib/graph/dual.ml: Array Gr Hashtbl Lazy List Rotation Traverse
