lib/graph/gen.ml: Array Gr Hashtbl List Random Unionfind
