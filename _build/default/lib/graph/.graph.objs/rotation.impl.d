lib/graph/rotation.ml: Array Format Gr Hashtbl List String Traverse
