lib/graph/gr.mli: Format
