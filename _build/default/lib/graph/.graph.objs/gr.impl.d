lib/graph/gr.ml: Array Format Hashtbl List Printf
