lib/graph/traverse.mli: Gr
