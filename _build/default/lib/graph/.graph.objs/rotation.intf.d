lib/graph/rotation.mli: Format Gr
