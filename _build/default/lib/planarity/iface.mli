(** Interfaces of parts (Observation 3.2): the PQ-tree over a part's
    half-embedded edges, built from its biconnected-component
    decomposition.

    Children of a Q node follow the fixed cyclic order of attachment
    points around one biconnected component (free only up to a flip,
    Figure 2); children of a P node hang at a cut vertex or fan out of a
    single vertex and may be permuted freely (Figure 3). Leaves are the
    part's half-embedded edges as [(inside, outside)] global pairs.

    The distributed algorithm never ships a part's vertices — only this
    summary (in compressed form, {!Pqtree.compress}) travels to merge
    coordinators; its {!Pqtree.bits} size is what the cost model charges. *)

val of_part :
  Gr.t -> part:int list -> half:(int * int) list -> (int * int) Pqtree.t option
(** [of_part g ~part ~half] is the interface tree of the (connected) part,
    or [None] if some biconnected component of the part cannot place its
    attachment points on a single face — which, for a safe partition of a
    planar network, never happens.

    When the part has no half-embedded edges the result is an empty P
    node. *)

val compressed_bits : Gr.t -> (int * int) Pqtree.t -> int
(** The number of bits the part ships for this interface: the
    {!Pqtree.compress}ed tree (classifying each half-edge by its outside
    endpoint) at [O(log n)] bits per compressed leaf. *)
