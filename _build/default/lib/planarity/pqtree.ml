type 'a t = Leaf of 'a | Q of 'a t list | P of 'a t list

let rec leaves = function
  | Leaf a -> [ a ]
  | Q cs | P cs -> List.concat_map leaves cs

let rec size = function
  | Leaf _ -> 1
  | Q cs | P cs -> 1 + List.fold_left (fun acc c -> acc + size c) 0 cs

let rec map f = function
  | Leaf a -> Leaf (f a)
  | Q cs -> Q (List.map (map f) cs)
  | P cs -> P (List.map (map f) cs)

(* The mirror image of a partial embedding: every nested orientation flips,
   so the whole leaf sequence reverses. *)
let rec mirror = function
  | Leaf a -> Leaf a
  | Q cs -> Q (List.rev_map mirror cs)
  | P cs -> P (List.rev_map mirror cs)

let rec replace_at t path f =
  match path with
  | [] -> f t
  | i :: rest -> (
      let sub cs =
        if i < 0 || i >= List.length cs then
          invalid_arg "Pqtree: invalid path"
        else
          List.mapi (fun j c -> if j = i then replace_at c rest f else c) cs
      in
      match t with
      | Leaf _ -> invalid_arg "Pqtree: path descends into a leaf"
      | Q cs -> Q (sub cs)
      | P cs -> P (sub cs))

let flip t ~path =
  replace_at t path (function
    | Q _ as node -> mirror node
    | Leaf _ | P _ -> invalid_arg "Pqtree.flip: not a Q node")

let permute t ~path ~perm =
  replace_at t path (function
    | P cs ->
        let k = List.length cs in
        if Array.length perm <> k then invalid_arg "Pqtree.permute: bad size";
        let seen = Array.make k false in
        Array.iter
          (fun i ->
            if i < 0 || i >= k || seen.(i) then
              invalid_arg "Pqtree.permute: not a permutation";
            seen.(i) <- true)
          perm;
        let arr = Array.of_list cs in
        P (Array.to_list (Array.map (fun i -> arr.(i)) perm))
    | Leaf _ | Q _ -> invalid_arg "Pqtree.permute: not a P node")

let permutations l =
  (* Index-based so that structurally equal children stay distinct. *)
  let arr = Array.of_list l in
  let n = Array.length arr in
  let rec go remaining =
    if remaining = [] then [ [] ]
    else
      List.concat_map
        (fun i ->
          let rest = List.filter (fun j -> j <> i) remaining in
          List.map (fun p -> i :: p) (go rest))
        remaining
  in
  List.map (List.map (fun i -> arr.(i))) (go (List.init n (fun i -> i)))

let rec orders t =
  match t with
  | Leaf a -> [ [ a ] ]
  | Q cs ->
      let pick = product (List.map orders cs) in
      let forward = List.map List.concat pick in
      let backward = List.map List.rev forward in
      forward @ backward
  | P cs ->
      List.concat_map
        (fun perm -> List.map List.concat (product (List.map orders perm)))
        (permutations cs)

and product = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

let enumerate_orders t = List.sort_uniq compare (orders t)
let count_orders t = List.length (enumerate_orders t)

let rec compress classify t =
  match t with
  | Leaf a -> Leaf (classify a, 1)
  | Q cs -> normalize (Q (merge_runs (List.map (compress classify) cs)))
  | P cs ->
      let cs = List.map (compress classify) cs in
      let leaves_, others =
        List.partition (function Leaf _ -> true | Q _ | P _ -> false) cs
      in
      (* Order around a P node is free, so same-class leaves merge
         unconditionally. *)
      let tally = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (function
          | Leaf (c, k) ->
              if not (Hashtbl.mem tally c) then order := c :: !order;
              Hashtbl.replace tally c
                (k + try Hashtbl.find tally c with Not_found -> 0)
          | Q _ | P _ -> assert false)
        leaves_;
      let merged =
        List.rev_map (fun c -> Leaf (c, Hashtbl.find tally c)) !order
      in
      normalize (P (merged @ others))

and merge_runs cs =
  match cs with
  | Leaf (c1, k1) :: Leaf (c2, k2) :: rest when c1 = c2 ->
      merge_runs (Leaf (c1, k1 + k2) :: rest)
  | c :: rest -> c :: merge_runs rest
  | [] -> []

and normalize = function
  | Q [ c ] | P [ c ] -> c
  | t -> t

let rec bits ~leaf_bits = function
  | Leaf a -> 2 + leaf_bits a
  | Q cs | P cs ->
      List.fold_left (fun acc c -> acc + bits ~leaf_bits c) 2 cs

let rec pp pp_leaf ppf = function
  | Leaf a -> Format.fprintf ppf "%a" pp_leaf a
  | Q cs ->
      Format.fprintf ppf "@[<hov 1>[%a]@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space (pp pp_leaf))
        cs
  | P cs ->
      Format.fprintf ppf "@[<hov 1>(%a)@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space (pp pp_leaf))
        cs
