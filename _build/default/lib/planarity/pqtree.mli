(** PQ/PC-style interface trees — Observation 3.2 of the paper.

    The {e interface} of a part is the set of cyclic orders of its
    half-embedded edges that some planar embedding of the part realizes.
    The paper observes that this set is exactly captured by the part's
    biconnected-component decomposition: each biconnected component
    contributes a fixed cyclic order up to a flip (a {e Q node}), and each
    cut vertex lets the components around it be permuted freely (a
    {e P node}). Leaves are the half-embedded edges themselves.

    This module is the data structure (the paper's stand-in for compressed
    PQ-trees, see Section 1.2 and Section 7.1.4 of its full version): it
    supports the two degrees of freedom of Figure 4 — flipping a Q node and
    permuting a P node — plus the run-length compression used to bound the
    bits the distributed algorithm ships between part coordinators. *)

type 'a t =
  | Leaf of 'a
  | Q of 'a t list  (** fixed order, free only up to reversal. *)
  | P of 'a t list  (** freely permutable children. *)

val leaves : 'a t -> 'a list
(** Left-to-right leaf sequence (one representative order). *)

val size : 'a t -> int
(** Total node count. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val flip : 'a t -> path:int list -> 'a t
(** [flip t ~path] reverses the children of the Q node reached by following
    child indices [path] from the root (Figure 4(c)).
    @raise Invalid_argument if the path is invalid or reaches a non-Q node. *)

val permute : 'a t -> path:int list -> perm:int array -> 'a t
(** [permute t ~path ~perm] reorders the children of the P node at [path]
    by the permutation [perm] (Figure 4(d)).
    @raise Invalid_argument if the path is invalid, the node is not a P
    node, or [perm] is not a permutation of its children. *)

val enumerate_orders : 'a t -> 'a list list
(** All leaf orders obtainable by flips and permutations, as linear
    sequences read from the root (exponential; for tests on small trees).
    Duplicates are removed. *)

val count_orders : 'a t -> int
(** [List.length (enumerate_orders t)] without materializing duplicates
    naively — still exponential in the worst case; tests only. *)

val compress : ('a -> 'b) -> 'a t -> ('b * int) t
(** [compress classify t] collapses maximal runs of same-class sibling
    leaves into a single [(class, run-length)] leaf and flattens
    single-child internal nodes. This is the "essential degrees of freedom"
    compression: half-embedded edges that attach consecutively to the same
    destination need not be distinguished when shipping an interface. *)

val bits : leaf_bits:('a -> int) -> 'a t -> int
(** Serialized size in bits: 2 bits of structure per node plus
    [leaf_bits] per leaf — the quantity charged to the network when a part
    ships its interface to a merge coordinator. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
