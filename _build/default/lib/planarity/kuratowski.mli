(** Non-planarity certificates: Kuratowski subdivisions.

    When the embedder rejects a network, this module produces a checkable
    witness: an edge-minimal non-planar subgraph, which by Kuratowski's
    theorem is a subdivision of [K5] or [K3,3]. Extraction uses the
    one-pass edge-filtering argument — the "non-planar" property is
    monotone under edge addition, so after a single pass in which every
    edge whose removal preserves non-planarity is dropped, each surviving
    edge is critical.

    The witness is verified independently by {!classify}: suppressing
    degree-2 vertices must yield exactly [K5] (5 vertices of degree 4, 10
    edges) or [K3,3] (6 vertices of degree 3, 9 edges, bipartite). *)

type kind = K5 | K33

val witness : Gr.t -> Gr.edge list option
(** [witness g] is [None] when [g] is planar; otherwise the edges of an
    edge-minimal non-planar subgraph of [g]. Costs [O(m)] planarity
    tests. *)

val classify : Gr.t -> Gr.edge list -> kind option
(** [classify g edges] checks that [edges] (a subset of [g]'s edges)
    induce a subdivision of a Kuratowski graph and says which one;
    [None] if the edge set is not such a subdivision. *)

val witness_exn : Gr.t -> Gr.edge list * kind
(** @raise Invalid_argument if the graph is planar or the extracted
    witness fails verification (which would indicate a bug). *)

val pp_kind : Format.formatter -> kind -> unit
