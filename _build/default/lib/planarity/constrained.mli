(** Outer-face-constrained embedding of a part — the Figure 1(b)
    construction of the paper.

    A {e part} is a vertex subset [P] of the network [G]; its
    {e half-embedded edges} have exactly one endpoint inside [P]. The
    safety property (Definition 3.1) guarantees that [G \ P] is connected
    whenever [P] is non-trivial, so contracting [G \ P] to a single {e apex}
    node preserves planarity, and in any planar embedding of [P] all
    half-embedded edges must reach a single face.

    [embed] realizes this: it embeds the subgraph induced by [P], augmented
    with one {e stub} vertex per half-embedded edge and an apex adjacent to
    all stubs. The result is a partial embedding of [P] with every
    half-embedded edge on one (outer) face, together with the realized
    cyclic order of the half-embedded edges around that face — the part's
    realized {e interface} order. If the augmented graph is not planar then
    (for a safe partition) the whole network is not planar. *)

type item =
  | Internal of int
      (** an embedded edge to the given part vertex (global id). *)
  | Half of int * int
      (** a half-embedded edge [(inside, outside)] in global ids. *)

type t = {
  part : int list;  (** the part's vertices, global ids. *)
  rot : (int, item array) Hashtbl.t;
      (** clockwise cyclic order of items around each part vertex. *)
  outer : (int * int) list;
      (** cyclic order of half-embedded edges [(inside, outside)] around
          the shared face. *)
}

val embed : Gr.t -> part:int list -> half:(int * int) list -> t option
(** [embed g ~part ~half] is [None] iff the apex-augmented part is not
    planar. [half] must list edges of [g] with exactly their inside
    endpoint in [part]; @raise Invalid_argument otherwise. *)

val rotation_of_full : t -> Gr.t -> Rotation.t
(** When the part covers the whole (connected) graph — so there are no
    half-embedded edges — extract the plain rotation system.
    @raise Invalid_argument if some half-embedded edges remain. *)

val check : Gr.t -> part:int list -> half:(int * int) list -> t -> bool
(** Structural validation used by the test-suite: rotations cover exactly
    the internal edges plus the given half-edges, and [outer] is a
    permutation of [half]. *)
