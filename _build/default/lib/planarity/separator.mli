(** Planar separators (Lipton–Tarjan), driven by the embedding.

    The paper's stated motivation for computing embeddings first is that
    "computing a planar embedding is almost always the first algorithmic
    step — see e.g. step 1 in the planar separator of Lipton and Tarjan".
    This module is that consumer: an [O(√n)]-size, 2/3-balanced separator
    for connected planar graphs, by the classic two-phase argument:

    + {b BFS levels}: pick cut levels [l1 ≤ lm < l2] around the median
      level whose sizes satisfy the [2√n] budget; if the middle band is
      already ≤ 2n/3, the two levels separate.
    + {b Fundamental cycle}: otherwise contract everything above [l1]
      into a root, drop everything below [l2], triangulate the embedded
      remainder by face diagonals, and pick the fundamental cycle (w.r.t.
      a BFS tree of radius O(√n)) that best balances the original graph —
      Lipton–Tarjan's lemma guarantees a 2/3-balanced one exists in a
      triangulation.

    The implementation selects the best candidate cycle against the real
    objective (component balance in the input graph), so the returned
    separator is correct by construction; the theoretical size bound is
    measured by the tests rather than re-proven. *)

type t = {
  separator : int list;
  components : int list list;  (** connected components of [G − separator]. *)
  balance : float;  (** largest component size / n. *)
}

val separate : Gr.t -> t
(** @raise Invalid_argument on an empty, disconnected, or non-planar
    graph. For [n ≤ 3] the separator may be empty with balance 1. *)

val check : Gr.t -> t -> bool
(** Validates the output: [separator] and [components] partition the
    vertices, each listed component is connected, no edge joins two
    different components, and [balance] is as stated. *)
