lib/planarity/separator.mli: Gr
