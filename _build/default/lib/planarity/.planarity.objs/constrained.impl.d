lib/planarity/constrained.ml: Array Dmp Gr Hashtbl List Rotation
