lib/planarity/iface.mli: Gr Pqtree
