lib/planarity/dmp.ml: Array Bicon Gr Hashtbl List Queue Rotation Stack
