lib/planarity/constrained.mli: Gr Hashtbl Rotation
