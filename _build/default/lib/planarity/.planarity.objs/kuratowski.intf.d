lib/planarity/kuratowski.mli: Format Gr
