lib/planarity/separator.ml: Array Dmp Gr Hashtbl List Queue Rotation Traverse
