lib/planarity/pqtree.mli: Format
