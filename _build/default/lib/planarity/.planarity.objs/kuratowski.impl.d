lib/planarity/kuratowski.ml: Array Dmp Format Gr Hashtbl List Queue
