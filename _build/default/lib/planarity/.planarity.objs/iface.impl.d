lib/planarity/iface.ml: Array Bicon Dmp Gr Hashtbl List Pqtree Rotation
