lib/planarity/dmp.mli: Gr Rotation
