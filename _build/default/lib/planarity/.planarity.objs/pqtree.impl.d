lib/planarity/pqtree.ml: Array Format Hashtbl List
