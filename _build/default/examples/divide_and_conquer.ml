(* Separator-based divide and conquer — the classic embedding payoff.

   The paper's Section 1.1: "Computing a planar embedding is almost always
   the first algorithmic step ... See e.g. step 1 in the planar separator
   of Lipton and Tarjan, which itself is a base for many of the planar
   graph algorithms."

   This example runs that program: embed, then recursively split the
   planar network with 2/3-balanced O(sqrt n) separators down to small
   pieces — the skeleton of planar divide-and-conquer algorithms
   (shortest paths, independent set approximation, nested dissection...).
   It prints the separator tree statistics and checks the classic
   recurrence empirically: total separator vertices across all levels is
   O(n / sqrt(base)) ~ small compared to n.

     dune exec examples/divide_and_conquer.exe *)

let () =
  let n = 3000 in
  let g = Gen.random_maximal_planar ~seed:9 n in
  Printf.printf "network: n=%d m=%d (random maximal planar)\n\n" (Gr.n g)
    (Gr.m g);

  let base = 30 in
  let levels = Hashtbl.create 8 in
  let total_sep = ref 0 in
  let pieces = ref 0 in
  let max_sep_ratio = ref 0.0 in
  let rec conquer depth vertices =
    let k = List.length vertices in
    if k <= base then begin
      incr pieces;
      Hashtbl.replace levels depth
        (1 + try Hashtbl.find levels depth with Not_found -> 0)
    end
    else begin
      let (sub, old_of_new, _) = Gr.induced g vertices in
      (* Each connected piece is separated independently. *)
      List.iter
        (fun comp ->
          let (piece, p_old, _) = Gr.induced sub comp in
          let s = Separator.separate piece in
          assert (Separator.check piece s);
          assert (s.Separator.balance <= (2.0 /. 3.0) +. 1e-9 || Gr.n piece <= 3);
          let sep_n = List.length s.Separator.separator in
          total_sep := !total_sep + sep_n;
          max_sep_ratio :=
            max !max_sep_ratio
              (float_of_int sep_n /. sqrt (float_of_int (Gr.n piece)));
          List.iter
            (fun part ->
              conquer (depth + 1)
                (List.map (fun v -> old_of_new.(p_old.(v))) part))
            s.Separator.components)
        (Traverse.components sub)
    end
  in
  conquer 0 (List.init n (fun i -> i));
  Printf.printf "base-case pieces (<= %d vertices): %d\n" base !pieces;
  Printf.printf "total separator vertices over all levels: %d (%.1f%% of n)\n"
    !total_sep
    (100.0 *. float_of_int !total_sep /. float_of_int n);
  Printf.printf "worst separator size / sqrt(piece): %.2f\n" !max_sep_ratio;
  Printf.printf "recursion depth histogram (depth: pieces):\n";
  List.iter
    (fun (d, c) -> Printf.printf "  %2d: %d\n" d c)
    (List.sort compare (Hashtbl.fold (fun d c acc -> (d, c) :: acc) levels []));
  Printf.printf
    "\nEvery split was 2/3-balanced with an O(sqrt n) separator — the\n\
     precondition for the planar divide-and-conquer algorithm family.\n"
