(* The Omega(D) lower bound, footnote 1 of the paper.

   Take K4 and replace each of its six edges by a path of Theta(D) hops.
   In any planar embedding the four degree-3 branch vertices must output
   clockwise orders that are mutually consistent: K4 drawn in the plane
   always has one vertex inside the triangle of the other three, and the
   orientation choices of far-apart branch vertices constrain each other.
   Since they are Theta(D) hops apart, Omega(D) rounds are unavoidable —
   even with unbounded message sizes.

   This example (a) shows the measured rounds growing linearly with D
   while n only grows by the same factor, and (b) exhibits the
   consistency the lower bound talks about: the cyclic orientation of the
   three segment-neighbors around each branch vertex, which together
   always form a coherent "one vertex inside" configuration.

     dune exec examples/lower_bound_k4.exe *)

let orientation_of_branch g rot v =
  (* For branch vertex v, map each incident segment to the K4 endpoint it
     leads to (walk the degree-2 path), giving v's clockwise order of the
     other three branch vertices. *)
  let next_on_path prev cur =
    match Array.to_list (Gr.neighbors g cur) with
    | [ a; b ] -> if a = prev then b else a
    | _ -> cur
  in
  Array.map
    (fun s ->
      let rec walk prev cur =
        if Gr.degree g cur = 3 then cur else walk cur (next_on_path prev cur)
      in
      walk v s)
    (Rotation.rotation rot v)

let () =
  Printf.printf "%8s %8s %6s %10s %10s\n" "seglen" "n" "D" "rounds" "rounds/D";
  List.iter
    (fun seglen ->
      let g = Gen.k4_subdivision seglen in
      let d = Traverse.diameter g in
      let o = Embedder.run ~mode:Part.Economy g in
      let rounds = o.Embedder.report.Embedder.rounds in
      assert (rounds >= d);
      Printf.printf "%8d %8d %6d %10d %10.1f\n" seglen (Gr.n g) d rounds
        (float_of_int rounds /. float_of_int d))
    [ 2; 4; 8; 16; 32; 64 ];

  Printf.printf
    "\nRounds grow linearly with D: the lower-bound family really does pin\n\
     the cost to the diameter (the normalized column is flat-ish).\n\n";

  (* Now the consistency story on one instance. *)
  let g = Gen.k4_subdivision 8 in
  match (Embedder.run g).Embedder.rotation with
  | None -> failwith "subdivided K4 is planar"
  | Some rot ->
      assert (Rotation.is_planar_embedding rot);
      let branches =
        List.filter (fun v -> Gr.degree g v = 3) (List.init (Gr.n g) (fun i -> i))
      in
      Printf.printf
        "clockwise order of the other branch vertices, as seen by each\n\
         degree-3 vertex (%d hops apart):\n" (8 * 2);
      List.iter
        (fun v ->
          let o = orientation_of_branch g rot v in
          Printf.printf "  branch %3d sees (%s)\n" v
            (String.concat " " (List.map string_of_int (Array.to_list o))))
        branches;
      Printf.printf
        "\nThese four cyclic orders are exactly a planar K4: embedding the\n\
         4-cycle orders as a rotation system of K4 must give genus 0.\n";
      let k4 = Gen.complete 4 in
      let idx = Array.of_list branches in
      let back = Hashtbl.create 4 in
      Array.iteri (fun i v -> Hashtbl.replace back v i) idx;
      let k4rot =
        Array.map
          (fun v ->
            Array.map (fun w -> Hashtbl.find back w) (orientation_of_branch g rot v))
          idx
      in
      let r = Rotation.make k4 k4rot in
      Printf.printf "contracted K4 rotation genus: %d (%s)\n" (Rotation.genus r)
        (if Rotation.genus r = 0 then "consistent — as the lower bound demands"
         else "INCONSISTENT");
      assert (Rotation.genus r = 0)
