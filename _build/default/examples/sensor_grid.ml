(* Scenario: a city-scale sensor mesh preparing for face routing.

   Planar embeddings are what make geographic/face routing possible in
   wireless meshes: once every node knows the clockwise order of its
   links, greedy-face routing (GFG/GPSR-style) can guarantee delivery by
   walking face boundaries. This example builds a damaged street-grid
   mesh (a grid with a percentage of failed links), computes the
   combinatorial embedding with the distributed algorithm, and then uses
   the embedding: it traces the mesh's faces ("city blocks") and walks
   the boundary of the face a chosen dart lies on, exactly the primitive
   a face-routing forwarding plane needs.

     dune exec examples/sensor_grid.exe *)

let () =
  let rows = 12 and cols = 18 in
  let full = Gen.grid rows cols in
  (* Knock out ~20% of the links (deterministically), keeping the mesh
     connected: drop a shuffled prefix of non-bridge edges. *)
  let rng = Random.State.make [| 2026 |] in
  let edges = Array.of_list (Gr.edges full) in
  for i = Array.length edges - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = edges.(i) in
    edges.(i) <- edges.(j);
    edges.(j) <- t
  done;
  let target_failures = Gr.m full / 5 in
  let kept = ref (Array.to_list edges) in
  let failed = ref 0 in
  Array.iter
    (fun e ->
      if !failed < target_failures then begin
        let without = List.filter (fun e' -> e' <> e) !kept in
        let candidate = Gr.of_edges ~n:(rows * cols) without in
        if Traverse.is_connected candidate then begin
          kept := without;
          incr failed
        end
      end)
    edges;
  let g = Gr.of_edges ~n:(rows * cols) !kept in
  Printf.printf "sensor mesh: %dx%d grid, %d/%d links up, diameter %d\n\n"
    rows cols (Gr.m g) (Gr.m full) (Traverse.diameter g);

  let ours = Embedder.run ~mode:Part.Economy g in
  let base = Baseline.run g in
  Printf.printf "distributed embedding : %6d rounds\n"
    ours.Embedder.report.Embedder.rounds;
  Printf.printf "gather-all baseline   : %6d rounds\n"
    base.Baseline.report.Baseline.rounds;
  Printf.printf "max bits on any link  : %6d (ours)\n\n"
    ours.Embedder.report.Embedder.max_edge_bits;

  match ours.Embedder.rotation with
  | None -> failwith "mesh should be planar"
  | Some rot ->
      assert (Rotation.is_planar_embedding rot);
      let faces = Rotation.faces rot in
      let sizes = List.map List.length faces in
      let blocks = List.length faces in
      Printf.printf "face structure: %d faces (city blocks), sizes %d..%d\n"
        blocks
        (List.fold_left min max_int sizes)
        (List.fold_left max 0 sizes);
      (* The face-routing primitive: from a dart (u -> v), walk the face
         boundary. A packet that hits a routing void at u toward v would
         traverse exactly this cycle of links. *)
      let (u, v) = List.hd (Gr.edges g) in
      let boundary = Rotation.face_of_dart rot (u, v) in
      Printf.printf
        "\nface-routing walk from dart %d->%d (the face a stuck packet \
         would traverse):\n  %s\n"
        u v
        (String.concat " -> "
           (List.map (fun (a, _) -> string_of_int a) boundary));
      (* Sanity: the walk returns to its starting dart. *)
      assert (List.hd boundary = (u, v));
      Printf.printf
        "\nwith every node knowing its clockwise link order, \
         face/perimeter routing is now a local rule.\n"
