examples/planarity_zoo.ml: Dmp Embedder Gen Gr List Printf Rotation
