examples/quickstart.mli:
