examples/sensor_grid.ml: Array Baseline Embedder Gen Gr List Part Printf Random Rotation String Traverse
