examples/lower_bound_k4.ml: Array Embedder Gen Gr Hashtbl List Part Printf Rotation String Traverse
