examples/divide_and_conquer.ml: Array Gen Gr Hashtbl List Printf Separator Traverse
