examples/lower_bound_k4.mli:
