examples/planarity_zoo.mli:
