examples/interface_demo.mli:
