examples/planar_mst.ml: Dmp Embedder Gen Gr List Mst Part Printf Rotation Traverse
