examples/interface_demo.ml: Array Bicon Constrained Format Gen Gr Iface List Partition Pqtree Printf String
