examples/quickstart.ml: Array Baseline Embedder Gr List Printf Rotation String Traverse
