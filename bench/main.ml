(* Experiment harness: one entry per "table/figure" of the reproduction.

   The PODC'16 paper is a theory paper whose evaluation is its theorems;
   DESIGN.md (Section 5) maps each quantitative claim to an experiment id
   E1..E9 below, plus T0 (Bechamel wall-clock micro-benchmarks of the
   computational kernels). Running without arguments executes everything:

     dune exec bench/main.exe            # all experiments, default sizes
     dune exec bench/main.exe -- e3 e7   # a subset
     dune exec bench/main.exe -- --quick # smaller sweeps (CI-friendly)

   Round counts are simulated CONGEST rounds at bandwidth 16·⌈log2 n⌉
   bits/edge/round; "ours" is the recursive embedding algorithm
   (Theorem 1.1), "base" the trivial gather-everything algorithm
   (footnote 2 of the paper). *)

let quick = ref false
let huge = ref false
let trace_file = ref None

let log2_ceil n =
  int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.0))

let header title claim =
  Printf.printf "\n=== %s ===\n%s\n\n" title claim

let row fmt = Printf.printf fmt

(* Workloads --------------------------------------------------------- *)

let maxplanar n = Gen.random_maximal_planar ~seed:(42 + n) n

let sizes_maxplanar () =
  if !quick then [ 250; 500; 1000; 2000 ]
  else if !huge then
    (* --huge: the LR kernel keeps the leader's local computation linear,
       so the E1/E2 sweeps can afford the 32k/64k tier that the DMP-era
       harness never reached. *)
    [ 250; 500; 1000; 2000; 4000; 8000; 16000; 32000; 64000 ]
  else [ 250; 500; 1000; 2000; 4000; 8000; 16000 ]

let grids () =
  if !quick then [ (8, 8); (16, 16); (24, 24) ]
  else [ (8, 8); (16, 16); (24, 24); (32, 32); (40, 40); (56, 56) ]

let seglens () =
  if !quick then [ 4; 8; 16; 32 ] else [ 4; 8; 16; 32; 64; 128; 256 ]

let run_ours g = Embedder.run ~mode:Part.Economy g
let run_base g = Baseline.run g

let verified o g =
  ignore g;
  match o.Embedder.rotation with
  | Some r -> if Rotation.is_planar_embedding r then "ok" else "BAD"
  | None -> "REJECTED"

(* E1 ----------------------------------------------------------------- *)

let e1 () =
  header "E1  Theorem 1.1: rounds scale as O(D * min(log n, D))"
    "Claim: on planar networks the algorithm runs in O(D min(log n, D))\n\
     rounds. Family: random maximal planar graphs (D = O(log n)), so the\n\
     normalized column rounds / ((D+1) * min(log2 n, D+1)) should stay\n\
     roughly flat while n grows 64x.";
  row "%8s %8s %5s %7s %10s %14s %9s\n" "n" "m" "D" "recdep" "rounds"
    "norm(D*minlog)" "verify";
  List.iter
    (fun n ->
      let g = maxplanar n in
      let o = run_ours g in
      let r = o.Embedder.report in
      let d = r.Embedder.bfs_depth + 1 in
      let norm =
        float_of_int r.Embedder.rounds
        /. float_of_int (d * min (log2_ceil n) d)
      in
      row "%8d %8d %5d %7d %10d %14.1f %9s\n" r.Embedder.n r.Embedder.m
        r.Embedder.bfs_depth r.Embedder.recursion_depth r.Embedder.rounds norm
        (verified o g))
    (sizes_maxplanar ())

(* E2 ----------------------------------------------------------------- *)

let e2 () =
  header "E2  Theorem 1.1 vs the trivial O(n) baseline (footnote 2)"
    "Claim: gathering the topology costs O(n) rounds while the recursive\n\
     algorithm costs O(D min(log n, D)); on low-diameter planar graphs the\n\
     recursive algorithm must win for large n (crossover), while on\n\
     high-diameter graphs (grids, subdivisions) the baseline keeps winning\n\
     at these sizes since D*log n ~ n there.";
  row "%-14s %8s %5s %10s %10s %9s\n" "family" "n" "D" "ours" "base"
    "ours/base";
  let entry name g =
    let o = run_ours g and b = run_base g in
    let ro = o.Embedder.report.Embedder.rounds
    and rb = b.Baseline.report.Baseline.rounds in
    row "%-14s %8d %5d %10d %10d %9.2f\n" name (Gr.n g)
      o.Embedder.report.Embedder.bfs_depth ro rb
      (float_of_int ro /. float_of_int rb)
  in
  List.iter (fun n -> entry "maxplanar" (maxplanar n)) (sizes_maxplanar ());
  List.iter (fun (r, c) -> entry "grid" (Gen.grid r c)) (grids ());
  List.iter
    (fun s -> entry "k4-subdiv" (Gen.k4_subdivision s))
    (if !quick then [ 16; 64 ] else [ 16; 64; 256 ])

(* E3 ----------------------------------------------------------------- *)

let e3 () =
  header "E3  The Omega(D) lower bound family (footnote 1)"
    "Claim: on K4 with every edge subdivided into a Theta(D)-hop path, any\n\
     planar embedding algorithm needs Omega(D) rounds (the four degree-3\n\
     vertices must agree on mutually consistent orientations). Measured:\n\
     rounds >= D always, and rounds / (D * min(log n, D)) stays bounded.";
  row "%8s %8s %6s %10s %10s %14s %9s\n" "seglen" "n" "D" "rounds" "rounds/D"
    "norm(D*minlog)" "verify";
  List.iter
    (fun s ->
      let g = Gen.k4_subdivision s in
      let d = Traverse.diameter g in
      let o = run_ours g in
      let r = o.Embedder.report in
      assert (r.Embedder.rounds >= d);
      let dd = d + 1 in
      row "%8d %8d %6d %10d %10.1f %14.1f %9s\n" s (Gr.n g) d
        r.Embedder.rounds
        (float_of_int r.Embedder.rounds /. float_of_int dd)
        (float_of_int r.Embedder.rounds
        /. float_of_int (dd * min (log2_ceil (Gr.n g)) dd))
        (verified o g))
    (seglens ())

(* E4 ----------------------------------------------------------------- *)

let e4 () =
  header "E4  Lemmas 4.2/4.3: the recursive embedding order"
    "Claim: each recursion call splits its subtree so that every hanging\n\
     part keeps at most 2/3 of the vertices and strictly smaller depth;\n\
     hence the recursion depth is at most min(log_1.5 n, depth(T)).\n\
     'check' runs the full per-call invariant oracle (Decompose.check).";
  row "%-14s %8s %7s %8s %9s %12s %6s\n" "family" "n" "depth" "calls" "bound"
    "bfs-depth" "check";
  let entry name g =
    let bt = Traverse.bfs g (Gr.n g - 1) in
    let tree = Decompose.recursion_tree g bt in
    let d = Decompose.depth tree in
    let bound =
      min
        (int_of_float (ceil (log (float_of_int (Gr.n g)) /. log 1.5)) + 1)
        (Traverse.depth bt + 1)
    in
    assert (d <= bound);
    row "%-14s %8d %7d %8d %9d %12d %6s\n" name (Gr.n g) d
      (Decompose.count_calls tree) bound (Traverse.depth bt)
      (if Decompose.check g bt tree then "ok" else "FAIL")
  in
  List.iter (fun n -> entry "maxplanar" (maxplanar n)) (sizes_maxplanar ());
  List.iter (fun (r, c) -> entry "grid" (Gen.grid r c)) (grids ());
  entry "path" (Gen.path (if !quick then 500 else 4000));
  entry "star" (Gen.star 500)

(* E5 ----------------------------------------------------------------- *)

let e5 () =
  header "E5  Lemma 5.3: deterministic symmetry breaking on part graphs"
    "Claim: on a properly colored outerplanar graph, O(1) part-level\n\
     rounds suffice to output disjoint induced stars (size >= 2) plus a\n\
     partition of the rest into color-monotone paths. Measured: validity\n\
     (the Symmetry.check oracle) and how much of the graph gets grouped\n\
     for merging.";
  row "%8s %8s %7s %7s %10s %10s %6s\n" "n" "m" "stars" "paths" "grouped%"
    "singles%" "check";
  List.iter
    (fun n ->
      let g = Gen.random_outerplanar ~seed:((n * 3) + 1) ~n ~chord_prob:0.5 in
      let colors = Gen.random_permutation ~seed:n n in
      let grp = Symmetry.compute g ~colors in
      let grouped = Hashtbl.create n in
      List.iter
        (fun (c, leaves) ->
          Hashtbl.replace grouped c ();
          List.iter (fun v -> Hashtbl.replace grouped v ()) leaves)
        grp.Symmetry.stars;
      let singles = ref 0 in
      List.iter
        (fun p ->
          if List.length p >= 2 then
            List.iter (fun v -> Hashtbl.replace grouped v ()) p
          else incr singles)
        grp.Symmetry.paths;
      row "%8d %8d %7d %7d %9.1f%% %9.1f%% %6s\n" n (Gr.m g)
        (List.length grp.Symmetry.stars)
        (List.length grp.Symmetry.paths)
        (100.0 *. float_of_int (Hashtbl.length grouped) /. float_of_int n)
        (100.0 *. float_of_int !singles /. float_of_int n)
        (if Symmetry.check g ~colors grp then "ok" else "FAIL"))
    (if !quick then [ 50; 200; 1000 ] else [ 50; 200; 1000; 5000; 20000 ])

(* E6 ----------------------------------------------------------------- *)

let e6 () =
  header "E6  Section 5.3: parts surviving into the restricted merge"
    "Claim: after the two merge/retire iterations, at most O(D) parts\n\
     remain, so the final path-coordinated merge fits the path's capacity.\n\
     Measured: the max number of parts entering step 6 over all calls,\n\
     against the call path length (<= D).";
  row "%-14s %8s %5s %10s %12s\n" "family" "n" "D" "max-parts" "parts/(D+1)";
  let entry name g =
    let o = run_ours g in
    let r = o.Embedder.report in
    let d = r.Embedder.bfs_depth + 1 in
    row "%-14s %8d %5d %10d %12.2f\n" name (Gr.n g) r.Embedder.bfs_depth
      r.Embedder.max_parts_at_restricted_merge
      (float_of_int r.Embedder.max_parts_at_restricted_merge /. float_of_int d)
  in
  List.iter (fun n -> entry "maxplanar" (maxplanar n)) (sizes_maxplanar ());
  List.iter (fun (r, c) -> entry "grid" (Gen.grid r c)) (grids ());
  List.iter
    (fun (r, c) -> entry "wide-grid" (Gen.grid r c))
    (if !quick then [ (6, 100) ] else [ (6, 100); (6, 400); (10, 400) ])

(* E7 ----------------------------------------------------------------- *)

let e7 () =
  header "E7  Communication: no edge carries more than ~O(D log^2 n) bits"
    "Claim (Section 1.2): no pair of adjacent nodes needs to exchange\n\
     omega~(D) bits. Measured: the heaviest per-edge bit load across the\n\
     whole run, normalized by (D+1) * B where B = 16 log n is one round's\n\
     edge capacity (so the column is 'rounds worth of traffic on the\n\
     busiest edge'; it must not blow up with n).";
  row "%-14s %8s %5s %14s %15s %12s\n" "family" "n" "D" "max-edge-bits"
    "maxedge/(D+1)B" "total-Mbits";
  let entry name g =
    let o = run_ours g in
    let r = o.Embedder.report in
    let d = r.Embedder.bfs_depth + 1 in
    row "%-14s %8d %5d %14d %15.2f %12.2f\n" name (Gr.n g)
      r.Embedder.bfs_depth r.Embedder.max_edge_bits
      (float_of_int r.Embedder.max_edge_bits
      /. float_of_int (d * r.Embedder.bandwidth))
      (float_of_int r.Embedder.total_bits /. 1e6)
  in
  List.iter (fun n -> entry "maxplanar" (maxplanar n)) (sizes_maxplanar ());
  List.iter (fun (r, c) -> entry "grid" (Gen.grid r c)) (grids ());
  List.iter
    (fun s -> entry "k4-subdiv" (Gen.k4_subdivision s))
    (if !quick then [ 32 ] else [ 32; 128 ])

(* E8 ----------------------------------------------------------------- *)

let e8 () =
  header "E8  Safety invariants hold at every merge (Def 3.1 / Prop 5.2)"
    "Claim: the maintained partition is always safe: parts stay connected\n\
     and every non-trivial part keeps a connected complement. Measured:\n\
     runs with checks enabled; every merge is validated (a violation\n\
     aborts the run). 'checks' counts validated merges.";
  row "%-14s %8s %8s %8s %8s %9s\n" "family" "n" "checks" "merges" "retired"
    "verify";
  let entry name g =
    let o = Embedder.run ~checks:true g in
    let r = o.Embedder.report in
    let merges =
      r.Embedder.merges_pairwise + r.Embedder.merges_star
      + r.Embedder.merges_vertex + r.Embedder.merges_path
    in
    row "%-14s %8d %8d %8d %8d %9s\n" name (Gr.n g) r.Embedder.safety_checks
      merges r.Embedder.retired_parts (verified o g)
  in
  List.iter
    (fun n -> entry "maxplanar" (maxplanar n))
    (if !quick then [ 100; 300 ] else [ 100; 300; 1000 ]);
  entry "grid" (Gen.grid 12 12);
  entry "k4-subdiv" (Gen.k4_subdivision 12);
  entry "tree" (Gen.random_tree ~seed:5 400);
  entry "outerplanar" (Gen.random_outerplanar ~seed:9 ~n:300 ~chord_prob:0.6)

(* E9 ----------------------------------------------------------------- *)

let e9 () =
  header "E9  Ablation: faithful vs economy cost accounting"
    "The faithful mode re-derives a real partial embedding at every merge\n\
     (realized interface sizes); economy mode estimates interface sizes\n\
     from the biconnected structure. Claim: the two cost profiles agree\n\
     closely, which justifies using economy mode for the large sweeps.";
  row "%8s %5s %12s %12s %8s\n" "n" "D" "faithful" "economy" "ratio";
  List.iter
    (fun n ->
      let g = maxplanar n in
      let f = Embedder.run ~mode:Part.Faithful g in
      let e = Embedder.run ~mode:Part.Economy g in
      let rf = f.Embedder.report.Embedder.rounds
      and re = e.Embedder.report.Embedder.rounds in
      row "%8d %5d %12d %12d %8.2f\n" n f.Embedder.report.Embedder.bfs_depth rf
        re
        (float_of_int re /. float_of_int rf))
    (if !quick then [ 100; 300; 1000 ] else [ 100; 300; 1000; 3000 ])

(* E10 ---------------------------------------------------------------- *)

let e10 () =
  header "E10 Application: Lipton-Tarjan separators from the embedding"
    "The paper's motivation (Section 1.1): the embedding is 'step 1 in the\n\
     planar separator of Lipton and Tarjan'. Measured: separator size\n\
     (expected O(sqrt n)) and balance (largest remaining component <= 2/3)\n\
     across planar families, all validated by Separator.check.";
  row "%-14s %8s %6s %10s %9s %6s\n" "family" "n" "sep" "sep/sqrt-n" "balance"
    "check";
  let entry name g =
    let s = Separator.separate g in
    row "%-14s %8d %6d %10.2f %9.2f %6s\n" name (Gr.n g)
      (List.length s.Separator.separator)
      (float_of_int (List.length s.Separator.separator)
      /. sqrt (float_of_int (Gr.n g)))
      s.Separator.balance
      (if Separator.check g s && s.Separator.balance <= 2.0 /. 3.0 +. 1e-9
       then "ok"
       else "FAIL")
  in
  List.iter
    (fun n -> entry "maxplanar" (maxplanar n))
    (if !quick then [ 250; 1000 ] else [ 250; 1000; 4000 ]);
  List.iter (fun (r, c) -> entry "grid" (Gen.grid r c)) (grids ());
  entry "tree" (Gen.random_tree ~seed:8 2000);
  entry "outerplanar" (Gen.random_outerplanar ~seed:8 ~n:1000 ~chord_prob:0.5);
  entry "k4-subdiv" (Gen.k4_subdivision 64)

(* E11 ---------------------------------------------------------------- *)

let e11 () =
  header "E11 Downstream consumer: distributed MST (part II's starting point)"
    "The paper's program ([GH16]) computes MST in planar networks using the\n\
     embedding as a black box. Measured here: the classic Boruvka fragment\n\
     merging on the same simulated networks, verified against Kruskal;\n\
     part II's shortcut acceleration is out of scope (DESIGN.md 3.6).";
  row "%-14s %8s %5s %8s %10s %8s\n" "family" "n" "D" "phases" "rounds"
    "=kruskal";
  let entry name g =
    let weight u v = (((u + 1) * 48271) lxor ((v + 1) * 16807)) mod 1000 in
    let (mst, rep) = Mst.run ~weight g in
    let same =
      List.sort compare mst = List.sort compare (Mst.kruskal ~weight g)
    in
    row "%-14s %8d %5d %8d %10d %8s\n" name (Gr.n g)
      (Traverse.diameter g) rep.Mst.boruvka_phases rep.Mst.rounds
      (if same then "yes" else "NO")
  in
  List.iter
    (fun n -> entry "maxplanar" (maxplanar n))
    (if !quick then [ 250; 1000 ] else [ 250; 1000; 4000 ]);
  List.iter (fun (r, c) -> entry "grid" (Gen.grid r c))
    (if !quick then [ (16, 16) ] else [ (16, 16); (32, 32) ]);
  entry "k4-subdiv" (Gen.k4_subdivision 32)

(* T0: Bechamel micro-benchmarks -------------------------------------- *)

let micro () =
  header "T0  Bechamel micro-benchmarks (wall-clock of the kernels)"
    "Estimated execution time per run (OLS fit against run count).";
  let open Bechamel in
  let g500 = maxplanar 500 in
  let grid = Gen.grid 20 20 in
  let rot = Planarity.embed_exn g500 in
  let outer = Gen.random_outerplanar ~seed:3 ~n:400 ~chord_prob:0.5 in
  let colors = Gen.random_permutation ~seed:4 400 in
  let tests =
    [
      Test.make ~name:"lr-embed-maxplanar500"
        (Staged.stage (fun () -> ignore (Lr.embed g500)));
      Test.make ~name:"dmp-embed-maxplanar500"
        (Staged.stage (fun () -> ignore (Dmp.embed g500)));
      Test.make ~name:"bicon-decompose-maxplanar500"
        (Staged.stage (fun () -> ignore (Bicon.decompose g500)));
      Test.make ~name:"face-trace-maxplanar500"
        (Staged.stage (fun () -> ignore (Rotation.faces rot)));
      Test.make ~name:"leader-bfs-sim-grid20x20"
        (Staged.stage (fun () -> ignore (Proto.leader_bfs grid)));
      Test.make ~name:"symmetry-outerplanar400"
        (Staged.stage (fun () -> ignore (Symmetry.compute outer ~colors)));
      Test.make ~name:"embedder-economy-grid20x20"
        (Staged.stage (fun () -> ignore (Embedder.run ~mode:Part.Economy grid)));
      Test.make ~name:"baseline-grid20x20"
        (Staged.stage (fun () -> ignore (Baseline.run grid)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:100
      ~quota:(Time.second (if !quick then 0.25 else 0.5))
      ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"kernels" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) -> row "%-44s %14.1f us/run\n" name (ns /. 1e3))
    (List.sort compare rows)

(* TRACE: instrumented profile ---------------------------------------- *)

let trace_run file =
  header "TRACE  instrumented profile of one embedder run"
    "A full Theorem 1.1 run on a random maximal planar graph with the\n\
     structured trace enabled: per-round records from the simulator\n\
     phases, one span per recursion call and merge schedule, per-phase\n\
     summary below, machine-readable JSON journal written to the given\n\
     file, and the Bounds checker's verdict on the paper's claims.";
  let n = if !quick then 250 else 1000 in
  let g = maxplanar n in
  let tr = Trace.create () in
  let o =
    Embedder.run
      ~config:(Network.Config.make ~observe:(Observe.of_trace tr) ())
      ~mode:Part.Economy g
  in
  let r = o.Embedder.report in
  let d = Traverse.diameter g in
  let meta =
    [
      ("n", r.Embedder.n);
      ("m", r.Embedder.m);
      ("diameter", d);
      ("bandwidth", r.Embedder.bandwidth);
      ("rounds", r.Embedder.rounds);
      ("recursion_depth", r.Embedder.recursion_depth);
      ("recursion_calls", r.Embedder.recursion_calls);
    ]
  in
  let oc =
    try open_out file
    with Sys_error msg ->
      Printf.eprintf "--trace: cannot write JSON journal: %s\n" msg;
      exit 2
  in
  Trace.write_json ~name:(Printf.sprintf "maxplanar-%d" n) ~meta
    ~metrics:r.Embedder.metrics oc tr;
  close_out oc;
  Format.printf "%a@.@." Trace.pp_summary tr;
  Format.printf "%a@.@." Bounds.pp
    (Bounds.check ~n:r.Embedder.n ~d r.Embedder.metrics);
  Printf.printf "verify: %s — JSON journal written to %s\n" (verified o g) file

(* Driver -------------------------------------------------------------- *)

let all_experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        quick := true;
        parse acc rest
    | "--huge" :: rest ->
        huge := true;
        parse acc rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse acc rest
    | [ "--trace" ] ->
        prerr_endline "--trace needs an output file (e.g. --trace out.json)";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let chosen =
    match args with
    | [] when !trace_file <> None -> []
    | [] -> all_experiments
    | names ->
        List.map
          (fun name ->
            match
              List.assoc_opt (String.lowercase_ascii name) all_experiments
            with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf
                  "unknown experiment %S (known: %s, plus --quick)\n" name
                  (String.concat ", " (List.map fst all_experiments));
                exit 2)
          names
  in
  Printf.printf
    "distplanar experiment harness — reproduction of Ghaffari & Haeupler,\n\
     PODC 2016 (see DESIGN.md section 5 and EXPERIMENTS.md)%s\n"
    (if !quick then " [--quick sizes]" else "");
  (match !trace_file with Some file -> trace_run file | None -> ());
  List.iter (fun (_name, f) -> f ()) chosen
