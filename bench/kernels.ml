(* Planarity-kernel benchmark: the left-right production kernel (Lr)
   against the DMP oracle, wall-clock and allocated words per embed.

   Every case is verified before it is timed: both kernels run once,
   their verdicts must agree, and an accepted LR rotation must pass the
   genus-0 Euler check — a case that fails verification poisons the run
   (nonzero exit) and its timings are not reported.

     dune exec bench/kernels.exe              # full sweep, up to n=30000
     dune exec bench/kernels.exe -- --quick   # CI smoke: n<=2500 tier;
                                              # exit 1 on disagreement,
                                              # invalid rotation, or LR
                                              # slower than DMP at n>=2000
     dune exec bench/kernels.exe -- --out F   # write the JSON to F

   Results go to BENCH_kernels.json and stdout. *)

let words_now () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

(* Best wall of [reps] runs (quietest machine moment), allocation from
   the first — allocation is deterministic per run. *)
let measure ~reps f =
  Gc.full_major ();
  let w0 = words_now () in
  ignore (f ());
  let w1 = words_now () in
  let best = ref infinity in
  for _ = 1 to reps do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  (!best, w1 -. w0)

type case = {
  name : string;
  n : int;
  m : int;
  planar : bool;
  lr_wall : float;
  dmp_wall : float;
  lr_words : float;
  dmp_words : float;
  agree : bool;
  euler_ok : bool;
}

let run_case ~reps name g =
  let n = Gr.n g and m = Gr.m g in
  (* Verification pass: verdict agreement + rotation validity, before
     any timing. *)
  let lr = Lr.embed g in
  let dmp = Dmp.embed g in
  let agree =
    match (lr, dmp) with
    | Lr.Planar _, Dmp.Planar _ | Lr.Nonplanar, Dmp.Nonplanar -> true
    | _ -> false
  in
  let planar = match lr with Lr.Planar _ -> true | Lr.Nonplanar -> false in
  let euler_ok =
    match lr with
    | Lr.Planar r -> Rotation.is_planar_embedding r
    | Lr.Nonplanar -> true
  in
  let (lr_wall, lr_words) = measure ~reps (fun () -> Lr.embed g) in
  let (dmp_wall, dmp_words) = measure ~reps (fun () -> Dmp.embed g) in
  let c =
    { name; n; m; planar; lr_wall; dmp_wall; lr_words; dmp_words; agree;
      euler_ok }
  in
  Printf.printf
    "%-26s n=%-6d m=%-6d %-9s  lr %8.4fs %11.0fw   dmp %8.4fs %11.0fw   \
     %6.1fx wall %6.1fx words  %s\n%!"
    c.name c.n c.m
    (if c.planar then "planar" else "nonplanar")
    c.lr_wall c.lr_words c.dmp_wall c.dmp_words
    (c.dmp_wall /. max 1e-9 c.lr_wall)
    (c.dmp_words /. max 1. c.lr_words)
    (if c.agree && c.euler_ok then "ok"
     else if not c.agree then "DISAGREE"
     else "BAD ROTATION");
  c

(* Workloads ---------------------------------------------------------- *)

let maxplanar n = Gen.random_maximal_planar ~seed:(42 + n) n

(* One crossing edge on a maximal planar graph: the canonical reject. *)
let maxplanar_plus_edge n =
  let g = maxplanar n in
  let v = ref 2 in
  while Gr.mem_edge g 0 !v do
    incr v
  done;
  Gr.add_edges g [ (0, !v) ]

let cases quick =
  let mp = if quick then [ 500; 2000 ] else [ 500; 2000; 8000; 30000 ] in
  let gr = if quick then [ 22; 50 ] else [ 22; 50; 100; 173 ] in
  let op = if quick then [ 500; 2000 ] else [ 500; 2000; 8000; 30000 ] in
  let k4 = if quick then [ 80; 333 ] else [ 80; 333; 1333; 5000 ] in
  let rejects = if quick then [ 500; 2000 ] else [ 500; 2000; 8000; 30000 ] in
  (* Toroidal grids reject with m = 2n < 3n-6, so LR cannot shortcut on
     the edge count and must walk into a constraint conflict. *)
  let torus = if quick then [ 22; 50 ] else [ 22; 50; 100; 173 ] in
  List.concat
    [
      List.map
        (fun n -> (Printf.sprintf "maxplanar-%d" n, maxplanar n))
        mp;
      List.map (fun s -> (Printf.sprintf "grid-%dx%d" s s, Gen.grid s s)) gr;
      List.map
        (fun n ->
          ( Printf.sprintf "outerplanar-%d" n,
            Gen.random_outerplanar ~seed:(7 + n) ~n ~chord_prob:0.5 ))
        op;
      List.map
        (fun s -> (Printf.sprintf "k4-subdiv-%d" s, Gen.k4_subdivision s))
        k4;
      List.map
        (fun n -> (Printf.sprintf "nonplanar-maxp-%d" n, maxplanar_plus_edge n))
        rejects;
      List.map
        (fun s ->
          (Printf.sprintf "nonplanar-torus-%dx%d" s s, Gen.toroidal_grid s s))
        torus;
    ]

(* JSON ---------------------------------------------------------------- *)

let json_of_cases cases =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"planarity-kernels-lr-vs-dmp\",\n";
  Buffer.add_string b "  \"unit\": { \"wall\": \"seconds\", \"alloc\": \"words\" },\n";
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"m\": %d, \"planar\": %b,\n\
           \      \"lr_wall_s\": %.6f, \"dmp_wall_s\": %.6f, \
            \"wall_speedup\": %.2f,\n\
           \      \"lr_alloc_words\": %.0f, \"dmp_alloc_words\": %.0f, \
            \"alloc_ratio\": %.2f,\n\
           \      \"agree\": %b, \"euler_ok\": %b }%s\n"
           c.name c.n c.m c.planar c.lr_wall c.dmp_wall
           (c.dmp_wall /. max 1e-9 c.lr_wall)
           c.lr_words c.dmp_words
           (c.dmp_words /. max 1. c.lr_words)
           c.agree c.euler_ok
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Driver -------------------------------------------------------------- *)

let () =
  let quick = ref false in
  let out = ref "BENCH_kernels.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | [ "--out" ] ->
        prerr_endline "kernels: --out expects a file name";
        exit 2
    | arg :: _ ->
        Printf.eprintf "kernels: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !quick then 2 else 3 in
  Printf.printf
    "planarity kernels: left-right (production) vs DMP (oracle)%s\n\n"
    (if !quick then " [--quick]" else "");
  let results = List.map (fun (name, g) -> run_case ~reps name g) (cases !quick) in
  let oc = open_out !out in
  output_string oc (json_of_cases results);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  let bad_verify =
    List.filter (fun c -> (not c.agree) || not c.euler_ok) results
  in
  let bad_speed =
    (* LR must never lose to DMP once the instance is non-trivial. *)
    List.filter (fun c -> c.n >= 2000 && c.lr_wall > c.dmp_wall) results
  in
  List.iter
    (fun c ->
      Printf.eprintf "kernels: verification failed on %s (%s)\n" c.name
        (if not c.agree then "verdict disagreement" else "invalid rotation"))
    bad_verify;
  List.iter
    (fun c ->
      Printf.eprintf "kernels: LR slower than DMP on %s (%.4fs vs %.4fs)\n"
        c.name c.lr_wall c.dmp_wall)
    bad_speed;
  if bad_verify <> [] || bad_speed <> [] then exit 1
