(* Scaling benchmark for the multicore layer.

   Two sections:

     tier-a   strong scaling of the epoch-sharded round loop: the same
              run across (domains, epoch) points on a dense flood and on
              the embedder's phase-1 protocols, with every sharded
              result checked bit-identical to the sequential one before
              its time is reported. The epoch sweep at domains = 4 shows
              what cross-round batching buys: epoch = 1 is the
              barrier-per-round scheduler, epoch = 8 lets interior
              shards run eight fused rounds per barrier.
     tier-a/f strong scaling of the sharded clocked fault engine: the
              same faulted embedder run at domains = 1 and domains = 4,
              each point run twice and gated on determinism (identical
              replay) and an Euler-verified embedding. Fault schedules
              are stream-distinct across domain counts, so the d=4
              result is compared against its own replay, not d=1.
     tier-b   pool throughput: a seeded chaos sweep (independent
              fault-injected embedder runs) executed serially and then
              through Pool.map, results compared run by run. Gated at
              any core count: the pooled sweep may cost at most 1/0.9
              of the serial wall (the jobs cap means a 1-core pooled
              sweep is the sequential path plus noise).

   Wall-clock time is what parallelism buys, so this bench measures
   Unix.gettimeofday, not CPU time — on a single-core machine the
   sharded runs pay barrier overhead and the pool pays scheduling for no
   speedup, and the JSON records exactly that, along with the measured
   core count ("cores") so readers can tell a scaling result from a
   single-core smoke run.

     dune exec bench/parallel.exe              # full sweep
     dune exec bench/parallel.exe -- --quick   # CI smoke: small cases;
                                               # identity and the pool
                                               # gate always enforced,
                                               # the flood speedup gate
                                               # only when cores >= 4
     dune exec bench/parallel.exe -- --out F   # write the JSON to F *)

let to_all g v msg =
  Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, msg) :: acc)

let flood =
  {
    Network.init = (fun g v -> (v, to_all g v v));
    round =
      (fun g v best inbox ->
        let best' = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
        if best' = best then (best, []) else (best', to_all g v best'));
    msg_bits = (fun _ -> 12);
  }

let wall f =
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* The sweep: scaling over domains at the default epoch, plus the epoch
   sweep at four domains (ISSUE: what does batching buy at fixed
   parallelism?). The (1, 8) point is the sequential baseline — at one
   domain the dispatcher takes the sequential engine and epoch is moot. *)
let sweep_points = [ (1, 8); (2, 8); (4, 1); (4, 2); (4, 8); (8, 8) ]

(* ------------------------------------------------------------------ *)
(* Tier A: one run, sharded                                            *)
(* ------------------------------------------------------------------ *)

type scaling = {
  a_name : string;
  a_n : int;
  a_rounds : int;
  a_flood : bool;  (* subject to the quick-mode wall gate *)
  (* (domains, epoch, wall seconds, identical-to-sequential) per point *)
  a_points : (int * int * float * bool) list;
}

let scale_flood name g =
  let cfg ~domains ~epoch =
    Network.Config.make ~domains ~epoch ~bandwidth:4096 ()
  in
  let (base, base_wall) =
    wall (fun () -> Network.exec ~config:(cfg ~domains:1 ~epoch:8) g flood)
  in
  let points =
    List.map
      (fun (d, e) ->
        if d = 1 then (1, e, base_wall, true)
        else begin
          let (r, w) =
            wall (fun () ->
                Network.exec ~config:(cfg ~domains:d ~epoch:e) g flood)
          in
          ( d,
            e,
            w,
            r.Network.states = base.Network.states
            && r.Network.rounds = base.Network.rounds
            && r.Network.report = base.Network.report )
        end)
      sweep_points
  in
  {
    a_name = name;
    a_n = Gr.n g;
    a_rounds = base.Network.rounds;
    a_flood = true;
    a_points = points;
  }

let rot_table r =
  let g = Rotation.graph r in
  Array.init (Gr.n g) (fun v -> Rotation.rotation r v)

let fingerprint (o : Embedder.outcome) =
  ( (match o.Embedder.rotation with
    | Some r -> Some (rot_table r)
    | None -> None),
    o.Embedder.report.Embedder.rounds )

let scale_embedder name g =
  let outcome d e =
    Embedder.run ~config:(Network.Config.make ~domains:d ~epoch:e ()) g
  in
  let (base, base_wall) = wall (fun () -> outcome 1 8) in
  let fp0 = fingerprint base in
  let points =
    List.map
      (fun (d, e) ->
        if d = 1 then (1, e, base_wall, true)
        else begin
          let (o, w) = wall (fun () -> outcome d e) in
          (d, e, w, fingerprint o = fp0)
        end)
      sweep_points
  in
  {
    a_name = name;
    a_n = Gr.n g;
    a_rounds = base.Embedder.report.Embedder.rounds;
    a_flood = false;
    a_points = points;
  }

let print_scaling c =
  Printf.printf "tier-a   %-24s n=%-7d rounds=%-5d " c.a_name c.a_n c.a_rounds;
  let w1 =
    match c.a_points with (1, _, w, _) :: _ -> w | _ -> assert false
  in
  List.iter
    (fun (d, e, w, ok) ->
      Printf.printf " d=%d/e=%d %7.3fs (%4.2fx)%s" d e w (w1 /. max 1e-9 w)
        (if ok then "" else " MISMATCH"))
    c.a_points;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Tier A, faulted: the sharded clocked fault engine                   *)
(* ------------------------------------------------------------------ *)

type faulted = {
  f_name : string;
  f_n : int;
  (* (domains, wall seconds, deterministic replay + Euler-verified) *)
  f_points : (int * float * bool) list;
}

let scale_faulted name g =
  (* Faults compose with domains > 1 since PR 10; the schedule is
     stream-distinct across domain counts, so each point's correctness
     check is "run twice, byte-identical, Euler-verified" rather than a
     diff against the d=1 run. *)
  let run d =
    let plan =
      Fault.make ~spec:{ Fault.default with drop = 0.05 } ~seed:42 ()
    in
    let o = Embedder.run ~config:(Network.Config.make ~faults:plan ~domains:d ()) g in
    (o, Fault.stats plan)
  in
  let point d =
    let ((o1, s1), w) = wall (fun () -> run d) in
    let (o2, s2) = run d in
    let euler =
      match o1.Embedder.rotation with
      | Some rot -> Rotation.is_planar_embedding rot
      | None -> false
    in
    (d, w, euler && fingerprint o1 = fingerprint o2 && s1 = s2)
  in
  let points = List.map point [ 1; 4 ] in
  let c = { f_name = name; f_n = Gr.n g; f_points = points } in
  Printf.printf "tier-a/f %-24s n=%-7d " c.f_name c.f_n;
  List.iter
    (fun (d, w, ok) ->
      Printf.printf " d=%d %7.3fs%s" d w (if ok then "" else " MISMATCH"))
    c.f_points;
  print_newline ();
  c

(* ------------------------------------------------------------------ *)
(* Tier B: many runs, pooled                                           *)
(* ------------------------------------------------------------------ *)

type pool_case = {
  b_name : string;
  b_runs : int;
  b_jobs : int;
  serial_wall : float;
  pooled_wall : float;
  b_identical : bool;
}

let chaos_sweep name g ~runs ~jobs =
  (* Independent fault-injected embedder runs, one plan per seed — the
     `distplanar chaos --runs` shape. Each task builds every bit of its
     own state, so pooling it is exactly the advertised use. *)
  let one i =
    let plan = Fault.make ~spec:{ Fault.default with drop = 0.05 } ~seed:(100 + i) () in
    let o = Embedder.run ~config:(Network.Config.make ~faults:plan ()) g in
    let st = Fault.stats plan in
    ( o.Embedder.report.Embedder.rounds,
      st.Fault.dropped,
      match o.Embedder.rotation with
      | Some r ->
          Array.to_list
            (Array.init
               (Gr.n (Rotation.graph r))
               (fun v -> Rotation.rotation r v))
      | None -> [] )
  in
  let (serial, serial_wall) = wall (fun () -> Array.init runs one) in
  let (pooled, pooled_wall) = wall (fun () -> Pool.map ~jobs runs one) in
  let c =
    {
      b_name = name;
      b_runs = runs;
      b_jobs = jobs;
      serial_wall;
      pooled_wall;
      b_identical = serial = pooled;
    }
  in
  Printf.printf
    "tier-b   %-24s %d runs  serial %7.3fs   pool(jobs=%d) %7.3fs (%4.2fx)  %s\n%!"
    c.b_name c.b_runs c.serial_wall c.b_jobs c.pooled_wall
    (c.serial_wall /. max 1e-9 c.pooled_wall)
    (if c.b_identical then "identical" else "MISMATCH");
  c

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json ~cores ~tier_a ~tier_f ~tier_b =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"congest-multicore-scaling\",\n";
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b "  \"unit\": { \"wall\": \"seconds\" },\n";
  Buffer.add_string b "  \"tier_a_strong_scaling\": [\n";
  List.iteri
    (fun i c ->
      let w1 = match c.a_points with (1, _, w, _) :: _ -> w | _ -> 0. in
      Buffer.add_string b
        (Printf.sprintf "    { \"name\": %S, \"n\": %d, \"rounds\": %d, \"points\": [\n"
           c.a_name c.a_n c.a_rounds);
      List.iteri
        (fun j (d, e, w, ok) ->
          Buffer.add_string b
            (Printf.sprintf
               "      { \"domains\": %d, \"epoch\": %d, \"wall_s\": %.6f, \
                \"speedup\": %.3f, \"identical\": %b }%s\n"
               d e w (w1 /. max 1e-9 w) ok
               (if j = List.length c.a_points - 1 then "" else ",")))
        c.a_points;
      Buffer.add_string b
        (Printf.sprintf "    ] }%s\n"
           (if i = List.length tier_a - 1 then "" else ",")))
    tier_a;
  Buffer.add_string b "  ],\n  \"tier_a_faulted\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf "    { \"name\": %S, \"n\": %d, \"points\": [\n"
           c.f_name c.f_n);
      List.iteri
        (fun j (d, w, ok) ->
          Buffer.add_string b
            (Printf.sprintf
               "      { \"domains\": %d, \"wall_s\": %.6f, \
                \"deterministic_euler_ok\": %b }%s\n"
               d w ok
               (if j = List.length c.f_points - 1 then "" else ",")))
        c.f_points;
      Buffer.add_string b
        (Printf.sprintf "    ] }%s\n"
           (if i = List.length tier_f - 1 then "" else ",")))
    tier_f;
  Buffer.add_string b "  ],\n  \"tier_b_pool_throughput\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"runs\": %d, \"jobs\": %d, \
            \"serial_wall_s\": %.6f,\n\
           \      \"pooled_wall_s\": %.6f, \"throughput_ratio\": %.3f, \
            \"identical\": %b }%s\n"
           c.b_name c.b_runs c.b_jobs c.serial_wall c.pooled_wall
           (c.serial_wall /. max 1e-9 c.pooled_wall)
           c.b_identical
           (if i = List.length tier_b - 1 then "" else ",")))
    tier_b;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let quick = ref false in
  let out = ref "BENCH_parallel.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | arg :: _ ->
        Printf.eprintf "parallel: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cores = Domain.recommended_domain_count () in
  Printf.printf "cores: %d (Domain.recommended_domain_count)\n%!" cores;
  let tier_a, tier_f, tier_b =
    if !quick then begin
      let a1 = scale_flood "grid-60x60/flood" (Gen.grid 60 60) in
      print_scaling a1;
      let a2 = scale_embedder "grid-16x16/embedder" (Gen.grid 16 16) in
      print_scaling a2;
      let f1 = scale_faulted "grid-12x12/embedder+drop" (Gen.grid 12 12) in
      let b1 = chaos_sweep "grid-10x10/chaos" (Gen.grid 10 10) ~runs:8 ~jobs:4 in
      ([ a1; a2 ], [ f1 ], [ b1 ])
    end
    else begin
      let a1 = scale_flood "grid-250x400/flood" (Gen.grid 250 400) in
      print_scaling a1;
      let a2 = scale_embedder "grid-40x40/embedder" (Gen.grid 40 40) in
      print_scaling a2;
      let f1 = scale_faulted "grid-24x24/embedder+drop" (Gen.grid 24 24) in
      let b1 = chaos_sweep "grid-16x16/chaos" (Gen.grid 16 16) ~runs:16 ~jobs:4 in
      ([ a1; a2 ], [ f1 ], [ b1 ])
    end
  in
  let oc = open_out !out in
  output_string oc (json ~cores ~tier_a ~tier_f ~tier_b);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  (* Correctness is gated unconditionally: a sharded or pooled run that
     differs from the sequential one — or a faulted sharded run that
     fails to replay or to embed — is a bug at any core count. *)
  let mismatches =
    List.length
      (List.concat_map
         (fun c -> List.filter (fun (_, _, _, ok) -> not ok) c.a_points)
         tier_a)
    + List.length
        (List.concat_map
           (fun c -> List.filter (fun (_, _, ok) -> not ok) c.f_points)
           tier_f)
    + List.length (List.filter (fun c -> not c.b_identical) tier_b)
  in
  if mismatches > 0 then begin
    Printf.eprintf "parallel: %d result(s) differ from sequential\n" mismatches;
    exit 1
  end;
  (* The pool must never lose to the serial sweep by more than measurement
     noise, at ANY core count: with the jobs cap, a 1-core pooled sweep IS
     the sequential path, and on a multicore host Pool.map should win, not
     merely break even. Gate: pooled throughput >= 0.9x serial. *)
  let pool_slow =
    List.filter (fun c -> c.pooled_wall > c.serial_wall /. 0.9) tier_b
  in
  List.iter
    (fun c ->
      Printf.eprintf
        "parallel: pooled sweep below 0.9x serial throughput on %s \
         (serial %.3fs, pooled %.3fs)\n"
        c.b_name c.serial_wall c.pooled_wall)
    pool_slow;
  if pool_slow <> [] then exit 1;
  (* The speedup gate needs hardware parallelism to be meaningful; on a
     single- or dual-core runner it is reported but not enforced. On a
     >= 4-core runner the bar is a real win: the epoch-sharded flood at
     four domains must beat the sequential wall outright (< 1.0x). *)
  if !quick && cores >= 4 then begin
    let slow =
      List.filter
        (fun c ->
          c.a_flood
          &&
          let ws = List.map (fun (d, e, w, _) -> ((d, e), w)) c.a_points in
          let w1 = List.assoc (1, 8) ws in
          let w4 = List.assoc (4, 8) ws in
          w4 >= 1.0 *. w1)
        tier_a
    in
    List.iter
      (fun c ->
        Printf.eprintf
          "parallel: domains=4/epoch=8 failed to beat the sequential wall \
           on %s\n"
          c.a_name)
      slow;
    if slow <> [] then exit 1
  end
  else if !quick then
    Printf.printf
      "speedup gate skipped: only %d core(s) available, need >= 4\n" cores
