(* Routing-tier benchmark: query throughput and stretch versus n across
   the generator families.

   Every case is validated before it is timed: the Schnyder drawing must
   lie on the grid with distinct points (plus the exhaustive O(m²)
   no-crossing oracle on small cases), and every sampled query must be
   Delivered — a single Stuck outcome poisons the run (nonzero exit).
   Stretch (hops / BFS distance) is computed outside the timed region.

     dune exec bench/routing.exe              # full sweep, up to n=30000
     dune exec bench/routing.exe -- --quick   # CI smoke: small tier,
                                              # exit 1 on any gate
     dune exec bench/routing.exe -- --out F   # write the JSON to F

   Results go to BENCH_routing.json and stdout. Pooled throughput is
   measured on Pool.default_jobs domains — the "cores" field records
   what this machine actually had, so cross-machine numbers are not
   comparable unless it matches. *)

let measure ~reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

type case = {
  name : string;
  n : int;
  m : int;
  grid_side : int;
  virtual_edges : int;
  build_wall : float;
  queries : int;
  delivered : int;
  unreachable : int;
  stuck : int;
  qps_serial : float;
  qps_pooled : float;
  jobs : int;
  mean_stretch : float;
  max_stretch : float;
  mean_hops : float;
  recoveries : int;
  drawing_ok : bool;
}

let run_case ~reps ~jobs name g =
  let n = Gr.n g and m = Gr.m g in
  let r =
    match Planarity.embed g with
    | Planarity.Planar r -> r
    | Planarity.Nonplanar ->
        Printf.eprintf "routing bench: %s is not planar\n" name;
        exit 2
  in
  let t0 = Unix.gettimeofday () in
  let sch = Schnyder.draw r in
  let engine = Route.make sch in
  let build_wall = Unix.gettimeofday () -. t0 in
  (* Drawing gate before any timing. *)
  let x, y = Schnyder.coords sch in
  let drawing_ok =
    Drawing.within_grid ~x ~y ~side:(Schnyder.grid_side sch)
    && Drawing.distinct ~x ~y
    && (m > 3000 || Drawing.first_crossing g ~x ~y = None)
  in
  let queries = min 2000 (4 * n) in
  let rng = Random.State.make [| 1009; n |] in
  let pairs =
    Array.init queries (fun _ ->
        (Random.State.int rng n, Random.State.int rng n))
  in
  let outs = Route.route_batch engine pairs in
  let delivered = ref 0 and unreachable = ref 0 and stuck = ref 0 in
  let hops_total = ref 0 and recoveries = ref 0 in
  let sum_stretch = ref 0.0 and max_stretch = ref 0.0 and n_stretch = ref 0 in
  let dist_cache = Hashtbl.create 64 in
  let dist s d =
    let a =
      match Hashtbl.find_opt dist_cache s with
      | Some a -> a
      | None ->
          let a = Traverse.distances (Route.graph engine) s in
          Hashtbl.replace dist_cache s a;
          a
    in
    a.(d)
  in
  Array.iteri
    (fun i o ->
      let s, d = pairs.(i) in
      match o with
      | Route.Delivered { hops; recoveries = rc; _ } ->
          incr delivered;
          hops_total := !hops_total + hops;
          recoveries := !recoveries + rc;
          if hops > 0 then begin
            let bfs = dist s d in
            if bfs > 0 then begin
              let st = float_of_int hops /. float_of_int bfs in
              sum_stretch := !sum_stretch +. st;
              incr n_stretch;
              if st > !max_stretch then max_stretch := st
            end
          end
      | Route.Unreachable -> incr unreachable
      | Route.Stuck _ -> incr stuck)
    outs;
  let qps_serial =
    let w = measure ~reps (fun () -> Route.route_batch engine pairs) in
    float_of_int queries /. max 1e-9 w
  in
  let pool = Pool.create ~domains:jobs () in
  let qps_pooled =
    let w = measure ~reps (fun () -> Route.route_batch ~pool engine pairs) in
    float_of_int queries /. max 1e-9 w
  in
  Pool.shutdown pool;
  let c =
    {
      name;
      n;
      m;
      grid_side = Schnyder.grid_side sch;
      virtual_edges = Triangulate.virtual_count (Schnyder.triangulation sch);
      build_wall;
      queries;
      delivered = !delivered;
      unreachable = !unreachable;
      stuck = !stuck;
      qps_serial;
      qps_pooled;
      jobs;
      mean_stretch = !sum_stretch /. float_of_int (max 1 !n_stretch);
      max_stretch = !max_stretch;
      mean_hops = float_of_int !hops_total /. float_of_int (max 1 !delivered);
      recoveries = !recoveries;
      drawing_ok;
    }
  in
  Printf.printf
    "%-18s n=%-6d m=%-6d build %7.3fs  q=%-5d del=%-5d stuck=%d  %9.0f q/s \
     serial %9.0f q/s x%d  stretch %5.2f (max %7.2f)  %s\n\
     %!"
    c.name c.n c.m c.build_wall c.queries c.delivered c.stuck c.qps_serial
    c.qps_pooled c.jobs c.mean_stretch c.max_stretch
    (if c.stuck = 0 && c.drawing_ok then "ok" else "FAIL");
  c

(* Workloads ---------------------------------------------------------- *)

let cases quick =
  let mp = if quick then [ 500; 2000 ] else [ 500; 2000; 8000; 30000 ] in
  let gr = if quick then [ 22; 50 ] else [ 22; 50; 100; 173 ] in
  let op = if quick then [ 500; 2000 ] else [ 500; 2000; 8000; 30000 ] in
  let k4 = if quick then [ 80; 333 ] else [ 80; 333; 1333; 5000 ] in
  List.concat
    [
      List.map
        (fun n ->
          ( Printf.sprintf "maxplanar-%d" n,
            Gen.random_maximal_planar ~seed:(42 + n) n ))
        mp;
      List.map (fun s -> (Printf.sprintf "grid-%dx%d" s s, Gen.grid s s)) gr;
      List.map
        (fun n ->
          ( Printf.sprintf "outerplanar-%d" n,
            Gen.random_outerplanar ~seed:(7 + n) ~n ~chord_prob:0.5 ))
        op;
      List.map
        (fun s -> (Printf.sprintf "k4-subdiv-%d" s, Gen.k4_subdivision s))
        k4;
    ]

(* JSON ---------------------------------------------------------------- *)

let json_of_cases jobs cases =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"routing-throughput-stretch\",\n";
  Buffer.add_string b
    "  \"unit\": { \"wall\": \"seconds\", \"throughput\": \"queries/s\" },\n";
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" jobs);
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"m\": %d, \"grid_side\": %d, \
            \"virtual_edges\": %d,\n\
           \      \"build_wall_s\": %.6f, \"queries\": %d, \"delivered\": \
            %d, \"unreachable\": %d, \"stuck\": %d,\n\
           \      \"qps_serial\": %.0f, \"qps_pooled\": %.0f, \"jobs\": %d,\n\
           \      \"mean_stretch\": %.3f, \"max_stretch\": %.2f, \
            \"mean_hops\": %.2f, \"recoveries\": %d, \"drawing_ok\": %b }%s\n"
           c.name c.n c.m c.grid_side c.virtual_edges c.build_wall c.queries
           c.delivered c.unreachable c.stuck c.qps_serial c.qps_pooled c.jobs
           c.mean_stretch c.max_stretch c.mean_hops c.recoveries c.drawing_ok
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Driver -------------------------------------------------------------- *)

let () =
  let quick = ref false in
  let out = ref "BENCH_routing.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | [ "--out" ] ->
        prerr_endline "routing: --out expects a file name";
        exit 2
    | arg :: _ ->
        Printf.eprintf "routing: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !quick then 2 else 3 in
  let jobs = Pool.default_jobs () in
  Printf.printf
    "routing tier: Schnyder drawing + greedy-face-greedy queries (%d \
     domains)%s\n\n"
    jobs
    (if !quick then " [--quick]" else "");
  let results =
    List.map (fun (name, g) -> run_case ~reps ~jobs name g) (cases !quick)
  in
  let oc = open_out !out in
  output_string oc (json_of_cases jobs results);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  (* Gates: a single stuck query, an invalid drawing, or an undelivered
     same-component pair poisons the run. *)
  let bad =
    List.filter
      (fun c ->
        c.stuck > 0 || (not c.drawing_ok)
        || c.delivered + c.unreachable <> c.queries)
      results
  in
  List.iter
    (fun c ->
      Printf.eprintf
        "routing: gate failed on %s (delivered=%d/%d stuck=%d drawing_ok=%b)\n"
        c.name c.delivered c.queries c.stuck c.drawing_ok)
    bad;
  if bad <> [] then exit 1
