(* Certification-tier benchmark: certificate bits versus n and
   prover / verifier wall time across the generator families.

   Every case is verified before it is timed: the honest certificates
   must be accepted by every node in at most one round, a handful of
   seeded one-bit corruptions must all be rejected, and the mean
   certificate must stay within 32 words (32·⌈log₂ n⌉ bits — the
   O(log n) claim with its constant pinned). A case that fails any of
   these poisons the run (nonzero exit).

     dune exec bench/certify_bench.exe              # full sweep, up to n=30000
     dune exec bench/certify_bench.exe -- --quick   # CI smoke: small tier,
                                              # exit 1 on any gate
     dune exec bench/certify_bench.exe -- --out F   # write the JSON to F

   Results go to BENCH_certify.json and stdout. *)

let measure ~reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let t1 = Unix.gettimeofday () in
    if t1 -. t0 < !best then best := t1 -. t0
  done;
  !best

type case = {
  name : string;
  n : int;
  m : int;
  word : int;
  total_bits : int;
  mean_bits : float;
  max_bits : int;
  prove_wall : float;
  verify_wall : float;
  rounds : int;
  accept : bool;
  bounds_ok : bool;
  mutants_tried : int;
  mutants_rejected : int;
}

let mutant_seeds = [ 1; 2; 3; 4; 5 ]

let run_case ~reps name g =
  let n = Gr.n g and m = Gr.m g in
  let r =
    match Planarity.embed g with
    | Planarity.Planar r -> r
    | Planarity.Nonplanar ->
        Printf.eprintf "certify bench: %s is not planar\n" name;
        exit 2
  in
  (* Verification pass before any timing. *)
  let certs = Certify.prove r in
  let o = Certify.verify r certs in
  let sz = o.Certify.size in
  let bounds_ok =
    match o.Certify.report.Network.verdict with
    | Some v -> v.Bounds.rounds_ok && v.Bounds.message_ok && v.Bounds.burst_ok
    | None -> false
  in
  let rejected =
    List.fold_left
      (fun acc seed ->
        let bad = Certify.corrupt ~seed ~k:1 certs in
        if (Certify.verify r bad).Certify.all_accept then acc else acc + 1)
      0 mutant_seeds
  in
  let prove_wall = measure ~reps (fun () -> Certify.prove r) in
  let verify_wall = measure ~reps (fun () -> Certify.verify r certs) in
  let c =
    {
      name;
      n;
      m;
      word = sz.Certify.word;
      total_bits = sz.Certify.total_bits;
      mean_bits = sz.Certify.mean_bits;
      max_bits = sz.Certify.max_bits;
      prove_wall;
      verify_wall;
      rounds = o.Certify.rounds;
      accept = o.Certify.all_accept;
      bounds_ok;
      mutants_tried = List.length mutant_seeds;
      mutants_rejected = rejected;
    }
  in
  Printf.printf
    "%-18s n=%-6d m=%-6d word=%-2d mean=%7.1fb (%4.1fw) max=%6db  prove \
     %8.4fs  verify %8.4fs  rounds=%d  %s\n\
     %!"
    c.name c.n c.m c.word c.mean_bits
    (c.mean_bits /. float_of_int c.word)
    c.max_bits c.prove_wall c.verify_wall c.rounds
    (if c.accept && c.bounds_ok && c.mutants_rejected = c.mutants_tried then
       "ok"
     else "FAIL");
  c

(* Workloads ---------------------------------------------------------- *)

let cases quick =
  let mp = if quick then [ 500; 2000 ] else [ 500; 2000; 8000; 30000 ] in
  let gr = if quick then [ 22; 50 ] else [ 22; 50; 100; 173 ] in
  let op = if quick then [ 500; 2000 ] else [ 500; 2000; 8000; 30000 ] in
  let k4 = if quick then [ 80; 333 ] else [ 80; 333; 1333; 5000 ] in
  List.concat
    [
      List.map
        (fun n ->
          ( Printf.sprintf "maxplanar-%d" n,
            Gen.random_maximal_planar ~seed:(42 + n) n ))
        mp;
      List.map (fun s -> (Printf.sprintf "grid-%dx%d" s s, Gen.grid s s)) gr;
      List.map
        (fun n ->
          ( Printf.sprintf "outerplanar-%d" n,
            Gen.random_outerplanar ~seed:(7 + n) ~n ~chord_prob:0.5 ))
        op;
      List.map
        (fun s -> (Printf.sprintf "k4-subdiv-%d" s, Gen.k4_subdivision s))
        k4;
    ]

(* JSON ---------------------------------------------------------------- *)

let json_of_cases cases =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"certify-prove-verify\",\n";
  Buffer.add_string b
    "  \"unit\": { \"wall\": \"seconds\", \"size\": \"bits\" },\n";
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"m\": %d, \"word_bits\": %d,\n\
           \      \"total_bits\": %d, \"mean_bits\": %.1f, \
            \"mean_words\": %.2f, \"max_bits\": %d,\n\
           \      \"prove_wall_s\": %.6f, \"verify_wall_s\": %.6f, \
            \"rounds\": %d,\n\
           \      \"accept\": %b, \"bounds_ok\": %b, \
            \"mutants_rejected\": \"%d/%d\" }%s\n"
           c.name c.n c.m c.word c.total_bits c.mean_bits
           (c.mean_bits /. float_of_int c.word)
           c.max_bits c.prove_wall c.verify_wall c.rounds c.accept c.bounds_ok
           c.mutants_rejected c.mutants_tried
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Driver -------------------------------------------------------------- *)

let () =
  let quick = ref false in
  let out = ref "BENCH_certify.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | [ "--out" ] ->
        prerr_endline "certify: --out expects a file name";
        exit 2
    | arg :: _ ->
        Printf.eprintf "certify: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let reps = if !quick then 2 else 3 in
  Printf.printf "certification tier: prover and one-round verifier%s\n\n"
    (if !quick then " [--quick]" else "");
  let results =
    List.map (fun (name, g) -> run_case ~reps name g) (cases !quick)
  in
  let oc = open_out !out in
  output_string oc (json_of_cases results);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  (* Gates: any clean family rejecting, any surviving mutant, more than
     one verification round, a failed Bounds verdict, or a mean
     certificate above 32 words poisons the run. *)
  let bad =
    List.filter
      (fun c ->
        (not c.accept) || (not c.bounds_ok) || c.rounds > 1
        || c.mutants_rejected < c.mutants_tried
        || c.mean_bits > 32. *. float_of_int c.word)
      results
  in
  List.iter
    (fun c ->
      Printf.eprintf
        "certify: gate failed on %s (accept=%b bounds=%b rounds=%d \
         mutants=%d/%d mean=%.1fb word=%d)\n"
        c.name c.accept c.bounds_ok c.rounds c.mutants_rejected
        c.mutants_tried c.mean_bits c.word)
    bad;
  if bad <> [] then exit 1
