(* Microbenchmark: the flat-array round engine (Network.exec) on its
   own — wall time and allocated words of a bare run per protocol shape,
   plus two identity gates that cost nothing to keep honest:

     - observation must be free of behavior: a run observed through a
       metrics sink must end in the same states after the same rounds as
       a bare run;
     - the deprecated labelled alias (Network.exec_opts) must be a true
       alias of [exec ~config] — same states, rounds and report.

   The engine-vs-legacy-shim comparison this file used to make is gone
   with the legacy engine's callers: [Network.run] survives only as the
   differential oracle inside test/test_engine_diff.ml. Results go to
   BENCH_engine.json and stdout.

     dune exec bench/engine.exe              # full sweep, grids to n=100k
     dune exec bench/engine.exe -- --quick   # CI smoke: small cases only,
                                             # exit 1 on any identity gate
     dune exec bench/engine.exe -- --out F   # write the JSON to F *)

[@@@alert "-legacy"]
(* for the exec_opts-is-an-alias gate below, nothing else *)

let to_all g v msg =
  Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, msg) :: acc)

(* Dense activity: max-id flood, every node re-announces on improvement. *)
let flood =
  {
    Network.init = (fun g v -> (v, to_all g v v));
    round =
      (fun g v best inbox ->
        let best' = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
        if best' = best then (best, []) else (best', to_all g v best'));
    msg_bits = (fun _ -> 12);
  }

(* Wavefront activity: single-source reachability, every node announces
   exactly once, so most rounds touch only the frontier. *)
let bfs_wave =
  {
    Network.init =
      (fun g v -> if v = 0 then (true, to_all g v 1) else (false, []));
    round =
      (fun g v reached inbox ->
        if reached || inbox = [] then (reached, [])
        else (true, to_all g v 1));
    msg_bits = (fun _ -> 8);
  }

(* Point activity: one token circling a ring — one active node and one
   message per round, the worst case for an O(n)-per-round loop. *)
let token_ring n ttl =
  {
    Network.init = (fun _g v -> ((), if v = 0 then [ (1, ttl) ] else []));
    round =
      (fun _g v st inbox ->
        match inbox with
        | [ (src, t) ] when t > 0 ->
            let w =
              if (v + 1) mod n = src then (v + n - 1) mod n else (v + 1) mod n
            in
            (st, [ (w, t - 1) ])
        | _ -> (st, []));
    msg_bits = (fun _ -> 16);
  }

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let words_now () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let measure f =
  Gc.full_major ();
  let w0 = words_now () in
  let t0 = Sys.time () in
  let x = f () in
  let t1 = Sys.time () in
  let w1 = words_now () in
  (x, t1 -. t0, w1 -. w0)

type case = {
  name : string;
  n : int;
  m : int;
  rounds : int;
  wall : float;
  words : float;
  identical : bool;
}

(* A case is split into two closures so the driver can schedule them
   differently: the identity pass (observed run + alias run, results
   compared — CPU-bound and independent across cases, so it fans out
   over the Pool when --jobs asks) and the timing pass (a bare run whose
   wall-clock number is the product, so it always runs serially on an
   otherwise idle process). The closures hide the per-case state type,
   which lets heterogeneous protocols share one case list. *)
type prepared = {
  p_name : string;
  p_n : int;
  p_m : int;
  p_identity : unit -> bool * int;  (* identical?, rounds *)
  p_timing : unit -> float * float * bool;
}

let config = Network.Config.make ~bandwidth:4096 ()

let prep name g proto =
  let identity () =
    let bare = Network.exec ~config g proto in
    let m = Metrics.create g in
    let observed =
      Network.exec
        ~config:(Network.Config.with_observe (Observe.of_metrics m) config)
        g proto
    in
    let aliased = Network.exec_opts ~bandwidth:4096 g proto in
    ( bare.Network.states = observed.Network.states
      && bare.Network.rounds = observed.Network.rounds
      && Metrics.rounds m = bare.Network.rounds
      && aliased.Network.states = bare.Network.states
      && aliased.Network.rounds = bare.Network.rounds
      && aliased.Network.report = bare.Network.report,
      bare.Network.rounds )
  in
  let timing () =
    let (r, wall, words) = measure (fun () -> Network.exec ~config g proto) in
    (wall, words, Array.length r.Network.states = Gr.n g)
  in
  {
    p_name = name;
    p_n = Gr.n g;
    p_m = Gr.m g;
    p_identity = identity;
    p_timing = timing;
  }

let run_cases ~jobs prepped =
  let arr = Array.of_list prepped in
  let identities =
    Pool.map ~jobs (Array.length arr) (fun i -> arr.(i).p_identity ())
  in
  List.mapi
    (fun i p ->
      let (id_ok, rounds) = identities.(i) in
      let (wall, words, sized_ok) = p.p_timing () in
      let c =
        {
          name = p.p_name;
          n = p.p_n;
          m = p.p_m;
          rounds;
          wall;
          words;
          identical = id_ok && sized_ok;
        }
      in
      Printf.printf "%-28s n=%-7d rounds=%-5d  %8.3fs %12.0fw  %s\n%!" c.name
        c.n c.rounds c.wall c.words
        (if c.identical then "identical" else "MISMATCH");
      c)
    prepped

let json_of_cases cases =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"congest-engine-exec\",\n";
  Buffer.add_string b "  \"unit\": { \"wall\": \"seconds\", \"alloc\": \"words\" },\n";
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"m\": %d, \"rounds\": %d,\n\
           \      \"wall_s\": %.6f, \"alloc_words\": %.0f, \"identical\": %b \
            }%s\n"
           c.name c.n c.m c.rounds c.wall c.words c.identical
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let quick = ref false in
  let out = ref "BENCH_engine.json" in
  let jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--jobs" :: k :: rest -> (
        match int_of_string_opt k with
        | Some k when k >= 1 ->
            jobs := k;
            parse rest
        | _ ->
            Printf.eprintf "engine: --jobs expects a positive integer\n";
            exit 2)
    | arg :: _ ->
        Printf.eprintf "engine: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let prepped =
    if !quick then
      [
        prep "grid-100x100/flood" (Gen.grid 100 100) flood;
        prep "grid-100x100/bfs-wave" (Gen.grid 100 100) bfs_wave;
        (let n = 10_000 in
         prep "cycle-10k/token-ring" (Gen.cycle n) (token_ring n 2_000));
      ]
    else
      [
        prep "grid-100x100/flood" (Gen.grid 100 100) flood;
        prep "grid-100x100/bfs-wave" (Gen.grid 100 100) bfs_wave;
        prep "grid-250x400/flood" (Gen.grid 250 400) flood;
        prep "grid-250x400/bfs-wave" (Gen.grid 250 400) bfs_wave;
        prep "cycle-10k/flood" (Gen.cycle 10_000) flood;
        (let n = 100_000 in
         prep "cycle-100k/token-ring" (Gen.cycle n) (token_ring n 5_000));
      ]
  in
  let cases = run_cases ~jobs:!jobs prepped in
  let oc = open_out !out in
  output_string oc (json_of_cases cases);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  let broken = List.filter (fun c -> not c.identical) cases in
  if broken <> [] then begin
    List.iter
      (fun c -> Printf.eprintf "engine: identity gate failed on %s\n" c.name)
      broken;
    exit 1
  end
