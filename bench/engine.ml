(* Microbenchmark: the flat-array engine (Network.exec) against the
   pre-redesign one (Network.run, kept as the legacy shim).

   Each case runs one protocol on one graph through both engines,
   checking the results are identical (final states, round counts,
   per-edge metrics) and measuring wall time and allocated words of a
   bare, unobserved run. Results go to BENCH_engine.json and stdout.

     dune exec bench/engine.exe              # full sweep, grids to n=100k
     dune exec bench/engine.exe -- --quick   # CI smoke: small grid only,
                                             # exit 1 if exec is slower
     dune exec bench/engine.exe -- --out F   # write the JSON to F *)

[@@@alert "-legacy"]

let to_all g v msg =
  Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, msg) :: acc)

(* Dense activity: max-id flood, every node re-announces on improvement. *)
let flood =
  {
    Network.init = (fun g v -> (v, to_all g v v));
    round =
      (fun g v best inbox ->
        let best' = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
        if best' = best then (best, []) else (best', to_all g v best'));
    msg_bits = (fun _ -> 12);
  }

(* Wavefront activity: single-source reachability, every node announces
   exactly once, so most rounds touch only the frontier. *)
let bfs_wave =
  {
    Network.init =
      (fun g v -> if v = 0 then (true, to_all g v 1) else (false, []));
    round =
      (fun g v reached inbox ->
        if reached || inbox = [] then (reached, [])
        else (true, to_all g v 1));
    msg_bits = (fun _ -> 8);
  }

(* Point activity: one token circling a ring — one active node and one
   message per round, the worst case for an O(n)-per-round loop. *)
let token_ring n ttl =
  {
    Network.init = (fun _g v -> ((), if v = 0 then [ (1, ttl) ] else []));
    round =
      (fun _g v st inbox ->
        match inbox with
        | [ (src, t) ] when t > 0 ->
            let w =
              if (v + 1) mod n = src then (v + n - 1) mod n else (v + 1) mod n
            in
            (st, [ (w, t - 1) ])
        | _ -> (st, []));
    msg_bits = (fun _ -> 16);
  }

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let words_now () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let measure f =
  Gc.full_major ();
  let w0 = words_now () in
  let t0 = Sys.time () in
  let x = f () in
  let t1 = Sys.time () in
  let w1 = words_now () in
  (x, t1 -. t0, w1 -. w0)

let dir_table m =
  let rows = ref [] in
  Metrics.iter_dir m (fun ~src ~dst ~bits ~messages ~burst ->
      rows := (src, dst, bits, messages, burst) :: !rows);
  List.rev !rows

type case = {
  name : string;
  n : int;
  m : int;
  rounds : int;
  old_wall : float;
  new_wall : float;
  old_words : float;
  new_words : float;
  identical : bool;
}

(* A case is split into two closures so the driver can schedule them
   differently: the identity pass (both engines, observed, results
   compared — CPU-bound and independent across cases, so it fans out
   over the Pool when --jobs asks) and the timing pass (bare runs whose
   wall-clock numbers are the product, so it always runs serially on an
   otherwise idle process). The closures hide the per-case state type,
   which lets heterogeneous protocols share one case list. *)
type prepared = {
  p_name : string;
  p_n : int;
  p_m : int;
  p_identity : unit -> bool * int;  (* identical?, rounds *)
  p_timing : unit -> float * float * float * float * bool;
}

let prep name g proto =
  let identity () =
    let m_old = Metrics.create g in
    let s_old_obs = Network.run ~bandwidth:4096 ~metrics:m_old g proto in
    let m_new = Metrics.create g in
    let r_obs =
      Network.exec ~bandwidth:4096 ~observe:(Observe.of_metrics m_new) g proto
    in
    ( s_old_obs = r_obs.Network.states
      && Metrics.rounds m_old = r_obs.Network.rounds
      && Metrics.messages m_old = Metrics.messages m_new
      && Metrics.total_bits m_old = Metrics.total_bits m_new
      && Metrics.max_message_bits m_old = Metrics.max_message_bits m_new
      && Metrics.max_round_edge_bits m_old = Metrics.max_round_edge_bits m_new
      && Metrics.round_log m_old = Metrics.round_log m_new
      && dir_table m_old = dir_table m_new,
      r_obs.Network.rounds )
  in
  let timing () =
    let (s_old, old_wall, old_words) =
      measure (fun () -> Network.run ~bandwidth:4096 g proto)
    in
    let (r_new, new_wall, new_words) =
      measure (fun () -> Network.exec ~bandwidth:4096 g proto)
    in
    (old_wall, old_words, new_wall, new_words, s_old = r_new.Network.states)
  in
  {
    p_name = name;
    p_n = Gr.n g;
    p_m = Gr.m g;
    p_identity = identity;
    p_timing = timing;
  }

let run_cases ~jobs prepped =
  let arr = Array.of_list prepped in
  let identities =
    Pool.map ~jobs (Array.length arr) (fun i -> arr.(i).p_identity ())
  in
  List.mapi
    (fun i p ->
      let (id_ok, rounds) = identities.(i) in
      let (old_wall, old_words, new_wall, new_words, states_ok) =
        p.p_timing ()
      in
      let c =
        {
          name = p.p_name;
          n = p.p_n;
          m = p.p_m;
          rounds;
          old_wall;
          new_wall;
          old_words;
          new_words;
          identical = id_ok && states_ok;
        }
      in
      Printf.printf
        "%-28s n=%-7d rounds=%-5d  old %8.3fs %12.0fw   new %8.3fs %12.0fw   \
         %5.1fx wall %6.1fx words  %s\n%!"
        c.name c.n c.rounds c.old_wall c.old_words c.new_wall c.new_words
        (c.old_wall /. max 1e-9 c.new_wall)
        (c.old_words /. max 1. c.new_words)
        (if c.identical then "identical" else "MISMATCH");
      c)
    prepped

let json_of_cases cases =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"congest-engine-old-vs-new\",\n";
  Buffer.add_string b "  \"unit\": { \"wall\": \"seconds\", \"alloc\": \"words\" },\n";
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"m\": %d, \"rounds\": %d,\n\
           \      \"old_wall_s\": %.6f, \"new_wall_s\": %.6f, \
            \"wall_speedup\": %.2f,\n\
           \      \"old_alloc_words\": %.0f, \"new_alloc_words\": %.0f, \
            \"alloc_ratio\": %.2f,\n\
           \      \"identical\": %b }%s\n"
           c.name c.n c.m c.rounds c.old_wall c.new_wall
           (c.old_wall /. max 1e-9 c.new_wall)
           c.old_words c.new_words
           (c.old_words /. max 1. c.new_words)
           c.identical
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let quick = ref false in
  let out = ref "BENCH_engine.json" in
  let jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--jobs" :: k :: rest -> (
        match int_of_string_opt k with
        | Some k when k >= 1 ->
            jobs := k;
            parse rest
        | _ ->
            Printf.eprintf "engine: --jobs expects a positive integer\n";
            exit 2)
    | arg :: _ ->
        Printf.eprintf "engine: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let prepped =
    if !quick then
      [
        prep "grid-100x100/flood" (Gen.grid 100 100) flood;
        prep "grid-100x100/bfs-wave" (Gen.grid 100 100) bfs_wave;
        (let n = 10_000 in
         prep "cycle-10k/token-ring" (Gen.cycle n) (token_ring n 2_000));
      ]
    else
      [
        prep "grid-100x100/flood" (Gen.grid 100 100) flood;
        prep "grid-100x100/bfs-wave" (Gen.grid 100 100) bfs_wave;
        prep "grid-250x400/flood" (Gen.grid 250 400) flood;
        prep "grid-250x400/bfs-wave" (Gen.grid 250 400) bfs_wave;
        prep "cycle-10k/flood" (Gen.cycle 10_000) flood;
        (let n = 100_000 in
         prep "cycle-100k/token-ring" (Gen.cycle n) (token_ring n 5_000));
      ]
  in
  let cases = run_cases ~jobs:!jobs prepped in
  let oc = open_out !out in
  output_string oc (json_of_cases cases);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  let broken = List.filter (fun c -> not c.identical) cases in
  if broken <> [] then begin
    List.iter
      (fun c -> Printf.eprintf "engine: results differ on %s\n" c.name)
      broken;
    exit 1
  end;
  (* CI gate: the redesign must never lose to the engine it replaced. *)
  let slower = List.filter (fun c -> c.new_wall > c.old_wall) cases in
  if !quick && slower <> [] then begin
    List.iter
      (fun c ->
        Printf.eprintf "engine: exec slower than legacy on %s (%.3fs vs %.3fs)\n"
          c.name c.new_wall c.old_wall)
      slower;
    exit 1
  end
