(* Chaos benchmark: what fault injection and the reliable link layer
   cost, and how the embedder degrades (in rounds, never in
   correctness) as links get worse.

   Three sections, all seeded and reproducible:

     overhead   Reliable.exec with an all-zero fault plan vs a raw
                Network.exec of the same protocol — the price of the
                clocked engine plus sequence numbers, acks and the
                retransmission machinery when nothing ever goes wrong.
     sweep      Embedder.run ~faults across drop rates on grid and
                cycle networks: rounds-to-completion vs loss, with the
                Euler verdict checked on every run.
     crash      a crash-restart outage under leader election + BFS with
                reliable links: the run recovers and agrees with the
                clean one.

   Results go to BENCH_chaos.json and stdout.

     dune exec bench/chaos.exe              # full sweep
     dune exec bench/chaos.exe -- --quick   # CI smoke: small cases,
                                            # exit 1 on any wrong result
     dune exec bench/chaos.exe -- --out F   # write the JSON to F *)

let to_all g v msg =
  Gr.fold_neighbors g v ~init:[] ~f:(fun acc w -> (w, msg) :: acc)

(* Max-id flood — dense traffic, a fixpoint every node can verify. *)
let flood =
  {
    Network.init = (fun g v -> (v, to_all g v v));
    round =
      (fun g v best inbox ->
        let best' = List.fold_left (fun acc (_, x) -> max acc x) best inbox in
        if best' = best then (best, []) else (best', to_all g v best'));
    msg_bits = (fun _ -> 20);
  }

let measure f =
  Gc.full_major ();
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

let zero_plan ~seed = Fault.make ~spec:Fault.default ~seed ()

(* ------------------------------------------------------------------ *)
(* Section 1: reliable-link overhead with nothing going wrong          *)
(* ------------------------------------------------------------------ *)

type overhead = {
  o_name : string;
  o_n : int;
  clean_rounds : int;
  reliable_rounds : int;
  clean_wall : float;
  reliable_wall : float;
  retransmits : int;
  o_ok : bool;
}

let run_overhead name g =
  let clean, clean_wall =
    measure (fun () ->
        Network.exec ~config:(Network.Config.make ~bandwidth:4096 ()) g flood)
  in
  let stats = Reliable.counters () in
  let reliable, reliable_wall =
    measure (fun () ->
        Reliable.exec ~bandwidth:4096 ~faults:(zero_plan ~seed:1) ~stats g flood)
  in
  let c =
    {
      o_name = name;
      o_n = Gr.n g;
      clean_rounds = clean.Network.rounds;
      reliable_rounds = reliable.Network.rounds;
      clean_wall;
      reliable_wall;
      retransmits = stats.Reliable.retransmits;
      (* With zero faults nothing is ever lost: the reliable run must
         reach the same fixpoint and never retransmit. *)
      o_ok =
        reliable.Network.states = clean.Network.states
        && stats.Reliable.retransmits = 0;
    }
  in
  Printf.printf
    "overhead %-16s n=%-6d clean %4d rounds %7.3fs   reliable %4d rounds \
     %7.3fs   (x%.2f rounds, %d retransmits)  %s\n%!"
    c.o_name c.o_n c.clean_rounds c.clean_wall c.reliable_rounds
    c.reliable_wall
    (float_of_int c.reliable_rounds /. float_of_int (max 1 c.clean_rounds))
    c.retransmits
    (if c.o_ok then "ok" else "WRONG RESULT");
  c

(* ------------------------------------------------------------------ *)
(* Section 2: embedder rounds-to-completion vs drop rate               *)
(* ------------------------------------------------------------------ *)

type sweep = {
  s_name : string;
  s_n : int;
  drop : float;
  s_seed : int;
  s_clean_rounds : int;
  s_rounds : int;
  dropped : int;
  euler_ok : bool;
}

let run_sweep ?(jobs = 1) name g ~drops ~seed =
  let clean = Embedder.run g in
  let clean_rounds = clean.Embedder.report.Embedder.rounds in
  (* Each drop rate is an independent fault-injected run with its own
     plan, so the sweep fans out over the Pool when --jobs asks; records
     come back in drop order and are printed serially, so the output and
     the JSON are byte-identical at any job count. The wall-timed
     overhead section and the sequential crash section stay serial. *)
  let drops = Array.of_list drops in
  let rows =
    Pool.map ~jobs (Array.length drops) (fun i ->
        let drop = drops.(i) in
        let plan = Fault.make ~spec:{ Fault.default with drop } ~seed () in
        let o = Embedder.run ~config:(Network.Config.make ~faults:plan ()) g in
        let st = Fault.stats plan in
        let euler_ok =
          match o.Embedder.rotation with
          | Some rot -> Rotation.is_planar_embedding rot
          | None -> false
        in
        {
          s_name = name;
          s_n = Gr.n g;
          drop;
          s_seed = seed;
          s_clean_rounds = clean_rounds;
          s_rounds = o.Embedder.report.Embedder.rounds;
          dropped = st.Fault.dropped;
          euler_ok;
        })
  in
  Array.to_list rows
  |> List.map (fun c ->
         Printf.printf
           "sweep    %-16s n=%-6d drop=%.2f  %5d rounds (clean %5d, %+.1f%%)  \
            %5d dropped  %s\n%!"
           c.s_name c.s_n c.drop c.s_rounds c.s_clean_rounds
           (100.0
           *. (float_of_int c.s_rounds -. float_of_int c.s_clean_rounds)
           /. float_of_int (max 1 c.s_clean_rounds))
           c.dropped
           (if c.euler_ok then "euler ok" else "EULER FAILED");
         c)

(* ------------------------------------------------------------------ *)
(* Section 3: crash-restart recovery under reliable leader+BFS         *)
(* ------------------------------------------------------------------ *)

type crash_case = {
  c_name : string;
  c_n : int;
  c_node : int;
  c_at : int;
  c_restart : int;
  c_clean_rounds : int;
  c_rounds : int;
  crash_lost : int;
  c_ok : bool;
}

let run_crash name g ~node ~at ~restart =
  let bandwidth = Network.default_bandwidth g in
  let clean = Metrics.create g in
  let clean_states =
    Proto.leader_bfs
      ~config:
        (Network.Config.make ~observe:(Observe.of_metrics clean) ~bandwidth ())
      g
  in
  let spec =
    { Fault.default with crashes = [ { Fault.node; at; restart = Some restart } ] }
  in
  let plan = Fault.make ~spec ~seed:5 () in
  let m = Metrics.create g in
  let states =
    Proto.leader_bfs
      ~config:
        (Network.Config.make ~observe:(Observe.of_metrics m) ~faults:plan
           ~bandwidth ())
      g
  in
  let st = Fault.stats plan in
  let agree = ref true in
  Array.iteri
    (fun v s ->
      if
        s.Proto.leader <> clean_states.(v).Proto.leader
        || s.Proto.dist <> clean_states.(v).Proto.dist
      then agree := false)
    states;
  let c =
    {
      c_name = name;
      c_n = Gr.n g;
      c_node = node;
      c_at = at;
      c_restart = restart;
      c_clean_rounds = Metrics.rounds clean;
      c_rounds = Metrics.rounds m;
      crash_lost = st.Fault.crash_lost;
      c_ok = !agree && st.Fault.crashes = 1 && st.Fault.restarts = 1;
    }
  in
  Printf.printf
    "crash    %-16s n=%-6d node %d down [%d,%d)  %4d rounds (clean %4d)  \
     %d deliveries lost  %s\n%!"
    c.c_name c.c_n c.c_node c.c_at c.c_restart c.c_rounds c.c_clean_rounds
    c.crash_lost
    (if c.c_ok then "recovered, agrees with clean run" else "WRONG RESULT");
  c

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json ~overheads ~sweeps ~crashes =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"congest-chaos\",\n";
  Buffer.add_string b "  \"unit\": { \"wall\": \"seconds\" },\n";
  Buffer.add_string b "  \"reliable_overhead\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"clean_rounds\": %d, \
            \"reliable_rounds\": %d,\n\
           \      \"round_ratio\": %.3f, \"clean_wall_s\": %.6f, \
            \"reliable_wall_s\": %.6f,\n\
           \      \"retransmits\": %d, \"ok\": %b }%s\n"
           c.o_name c.o_n c.clean_rounds c.reliable_rounds
           (float_of_int c.reliable_rounds /. float_of_int (max 1 c.clean_rounds))
           c.clean_wall c.reliable_wall c.retransmits c.o_ok
           (if i = List.length overheads - 1 then "" else ",")))
    overheads;
  Buffer.add_string b "  ],\n  \"drop_sweep\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"drop\": %.2f, \"seed\": %d, \
            \"clean_rounds\": %d,\n\
           \      \"rounds\": %d, \"round_overhead\": %.3f, \"dropped\": %d, \
            \"euler_ok\": %b }%s\n"
           c.s_name c.s_n c.drop c.s_seed c.s_clean_rounds c.s_rounds
           (float_of_int c.s_rounds /. float_of_int (max 1 c.s_clean_rounds))
           c.dropped c.euler_ok
           (if i = List.length sweeps - 1 then "" else ",")))
    sweeps;
  Buffer.add_string b "  ],\n  \"crash_recovery\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"n\": %d, \"node\": %d, \"down_at\": %d, \
            \"restart_at\": %d,\n\
           \      \"clean_rounds\": %d, \"rounds\": %d, \"crash_lost\": %d, \
            \"ok\": %b }%s\n"
           c.c_name c.c_n c.c_node c.c_at c.c_restart c.c_clean_rounds
           c.c_rounds c.crash_lost c.c_ok
           (if i = List.length crashes - 1 then "" else ",")))
    crashes;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  let quick = ref false in
  let out = ref "BENCH_chaos.json" in
  let jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | "--jobs" :: k :: rest -> (
        match int_of_string_opt k with
        | Some k when k >= 1 ->
            jobs := k;
            parse rest
        | _ ->
            Printf.eprintf "chaos: --jobs expects a positive integer\n";
            exit 2)
    | arg :: _ ->
        Printf.eprintf "chaos: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let drops = [ 0.0; 0.02; 0.05; 0.1 ] in
  (* Sequence the cases explicitly: effectful calls inside tuple and
     list literals would evaluate (and print) right to left. *)
  let overheads, sweeps, crashes =
    if !quick then begin
      let o1 = run_overhead "grid-12x12" (Gen.grid 12 12) in
      let s1 =
        run_sweep ~jobs:!jobs "grid-12x12" (Gen.grid 12 12)
          ~drops:[ 0.0; 0.05 ] ~seed:11
      in
      let c1 = run_crash "cycle-64" (Gen.cycle 64) ~node:5 ~at:4 ~restart:12 in
      ([ o1 ], s1, [ c1 ])
    end
    else begin
      let o1 = run_overhead "grid-32x32" (Gen.grid 32 32) in
      let o2 = run_overhead "cycle-1k" (Gen.cycle 1_000) in
      let s1 = run_sweep ~jobs:!jobs "grid-24x24" (Gen.grid 24 24) ~drops ~seed:11 in
      let s2 = run_sweep ~jobs:!jobs "cycle-128" (Gen.cycle 128) ~drops ~seed:11 in
      let s3 =
        run_sweep ~jobs:!jobs "maxplanar-400"
          (Gen.random_maximal_planar ~seed:3 400)
          ~drops ~seed:11
      in
      let c1 = run_crash "cycle-64" (Gen.cycle 64) ~node:5 ~at:4 ~restart:12 in
      let c2 =
        run_crash "grid-16x16" (Gen.grid 16 16) ~node:17 ~at:3 ~restart:20
      in
      ([ o1; o2 ], s1 @ s2 @ s3, [ c1; c2 ])
    end
  in
  let oc = open_out !out in
  output_string oc (json ~overheads ~sweeps ~crashes);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  (* CI gate: every fault-injected run must still compute the right
     answer — degradation is allowed in rounds, never in results. *)
  let wrong =
    List.length (List.filter (fun c -> not c.o_ok) overheads)
    + List.length (List.filter (fun c -> not c.euler_ok) sweeps)
    + List.length (List.filter (fun c -> not c.c_ok) crashes)
  in
  if wrong > 0 then begin
    Printf.eprintf "chaos: %d case(s) produced a wrong result\n" wrong;
    exit 1
  end
