(* Churn-tier benchmark: incremental embedding maintenance versus
   from-scratch re-embedding under seeded insert/delete traces.

   Each case replays a within-pool trace (Churn.make, fresh_prob = 0, so
   no update is ever rejected) through Incremental and reports
   updates/sec. The from-scratch baseline is sampled honestly rather
   than replayed: a handful of snapshots of the evolving edge set are
   re-embedded with Planarity.embed and the mean wall gives the cost a
   full re-run would pay per update ("scratch_sampled" records how many
   snapshots were timed). The final state is Euler-validated and the
   trace must produce zero rejections — a violation poisons the run.

     dune exec bench/churn_bench.exe              # full sweep, up to n = 100k
     dune exec bench/churn_bench.exe -- --quick   # CI smoke; exits 1 if the
                                            # incremental path is not
                                            # >= 5x from-scratch on the
                                            # insert-heavy grid at n>=10k
     dune exec bench/churn_bench.exe -- --out F   # write the JSON to F

   Results go to BENCH_churn.json and stdout. Everything here is
   single-threaded — "cores": 1 is recorded so numbers are comparable
   across machines. *)

type case = {
  name : string;
  family : string;
  n : int;
  m_pool : int;
  updates : int;
  insert_pct : int;
  inc_wall : float;
  ups : float;
  scratch_wall : float;  (* mean from-scratch embed wall on snapshots *)
  scratch_sampled : int;
  speedup : float;
  fast : int;
  linked : int;
  reembedded : int;
  rejected : int;
  rescopes : int;
  kernel_edges : int;
  face_steps : int;
  valid : bool;
}

let snapshot_walls g0 tr samples =
  (* Edge sets at evenly spaced points of the trace, each embedded from
     scratch once. *)
  let n = tr.Churn.n in
  let present = Hashtbl.create 256 in
  let key u v = if u < v then (u * n) + v else (v * n) + u in
  List.iter
    (fun (u, v) -> Hashtbl.replace present (key u v) (u, v))
    tr.Churn.initial;
  ignore g0;
  let total = Array.length tr.Churn.ops in
  let marks =
    Array.init samples (fun i -> ((i + 1) * total / samples) - 1)
  in
  let walls = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun i op ->
      (match op with
      | Churn.Insert (u, v) -> Hashtbl.replace present (key u v) (u, v)
      | Churn.Delete (u, v) -> Hashtbl.remove present (key u v));
      if !next < samples && i = marks.(!next) then begin
        incr next;
        let edges = Hashtbl.fold (fun _ e acc -> e :: acc) present [] in
        let g = Gr.of_edges ~n edges in
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        (match Planarity.embed g with
        | Planarity.Planar _ -> ()
        | Planarity.Nonplanar ->
            prerr_endline "churn bench: within-pool snapshot not planar";
            exit 2);
        walls := (Unix.gettimeofday () -. t0) :: !walls
      end)
    tr.Churn.ops;
  !walls

let run_case ~samples name family insert_pct mk =
  (* The pool graph is built here, per case, and dropped with the case:
     keeping all sweep graphs live at once (~2 GB at the 100k tier)
     inflates every major-GC slice and was measurably poisoning the
     allocation-heavy incremental loop far more than the scratch
     baseline. *)
  let g = mk () in
  let n = Gr.n g and m_pool = Gr.m g in
  (* At the 100k tier a slow-path re-embed scopes a block within a
     constant of the whole graph, so per-update cost grows with n; cap
     the trace there to keep the full sweep's wall sane. *)
  let updates =
    max 2000 (min (m_pool / 2) (if n >= 50000 then 8000 else 20000))
  in
  let tr = Churn.make ~seed:(77 + n + insert_pct) ~updates ~insert_pct g in
  let g0 = Churn.initial_graph tr in
  let inc = Incremental.create g0 in
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  Churn.replay inc tr;
  let inc_wall = Unix.gettimeofday () -. t0 in
  let valid = Incremental.validate inc in
  let s = Incremental.stats inc in
  let walls = snapshot_walls g0 tr samples in
  let scratch_wall =
    List.fold_left ( +. ) 0.0 walls /. float_of_int (max 1 (List.length walls))
  in
  let ups = float_of_int updates /. max 1e-9 inc_wall in
  let speedup = scratch_wall /. max 1e-9 (inc_wall /. float_of_int updates) in
  let c =
    {
      name;
      family;
      n;
      m_pool;
      updates;
      insert_pct;
      inc_wall;
      ups;
      scratch_wall;
      scratch_sampled = List.length walls;
      speedup;
      fast = s.Incremental.fast;
      linked = s.Incremental.linked;
      reembedded = s.Incremental.reembedded;
      rejected = s.Incremental.rejected;
      rescopes = s.Incremental.rescopes;
      kernel_edges = s.Incremental.kernel_edges;
      face_steps = s.Incremental.face_steps;
      valid;
    }
  in
  Printf.printf
    "%-22s n=%-7d m=%-7d upd=%-6d %3d%%ins  %9.0f up/s  scratch %8.4fs/emb  \
     %7.1fx  fast=%-6d reemb=%-4d resc=%-3d fsteps=%-8d %s\n\
     %!"
    c.name c.n c.m_pool c.updates c.insert_pct c.ups c.scratch_wall c.speedup
    c.fast c.reembedded c.rescopes c.face_steps
    (if c.valid && c.rejected = 0 then "ok" else "FAIL");
  c

(* Workloads ----------------------------------------------------------- *)

let cases quick =
  let mixes = if quick then [ 90 ] else [ 90; 50 ] in
  let grids = if quick then [ 100 ] else [ 50; 100; 224; 316 ] in
  let mps = if quick then [ 2000 ] else [ 2000; 20000; 100000 ] in
  let ops = if quick then [] else [ 2000; 20000; 100000 ] in
  List.concat
    [
      List.concat_map
        (fun s ->
          List.map
            (fun pct ->
              ( Printf.sprintf "grid-%dx%d-i%d" s s pct,
                "grid",
                pct,
                fun () -> Gen.grid s s ))
            mixes)
        grids;
      List.concat_map
        (fun n ->
          List.map
            (fun pct ->
              ( Printf.sprintf "maxplanar-%d-i%d" n pct,
                "maxplanar",
                pct,
                fun () -> Gen.random_maximal_planar ~seed:(42 + n) n ))
            mixes)
        mps;
      List.concat_map
        (fun n ->
          List.map
            (fun pct ->
              ( Printf.sprintf "outerplanar-%d-i%d" n pct,
                "outerplanar",
                pct,
                fun () -> Gen.random_outerplanar ~seed:(7 + n) ~n ~chord_prob:0.5 ))
            mixes)
        ops;
      (* One delete-heavy mix to exercise the rescope machinery at scale. *)
      (if quick then []
       else [ ("grid-100x100-i25", "grid", 25, fun () -> Gen.grid 100 100) ]);
    ]

(* JSON ----------------------------------------------------------------- *)

let json_of_cases cases =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"benchmark\": \"incremental-churn\",\n";
  Buffer.add_string b
    "  \"unit\": { \"wall\": \"seconds\", \"throughput\": \"updates/s\" },\n";
  Buffer.add_string b "  \"cores\": 1,\n";
  Buffer.add_string b
    "  \"baseline\": \"from-scratch Planarity.embed on sampled snapshots\",\n";
  Buffer.add_string b "  \"cases\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": %S, \"family\": %S, \"n\": %d, \"m_pool\": %d, \
            \"updates\": %d, \"insert_pct\": %d,\n\
           \      \"inc_wall_s\": %.6f, \"updates_per_s\": %.0f, \
            \"scratch_embed_wall_s\": %.6f, \"scratch_sampled\": %d, \
            \"speedup\": %.1f,\n\
           \      \"fast\": %d, \"linked\": %d, \"reembedded\": %d, \
            \"rejected\": %d, \"rescopes\": %d, \"kernel_edges\": %d, \
            \"face_steps\": %d, \"valid\": %b }%s\n"
           c.name c.family c.n c.m_pool c.updates c.insert_pct c.inc_wall
           c.ups c.scratch_wall c.scratch_sampled c.speedup c.fast c.linked
           c.reembedded c.rejected c.rescopes c.kernel_edges c.face_steps
           c.valid
           (if i = List.length cases - 1 then "" else ",")))
    cases;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Driver --------------------------------------------------------------- *)

let () =
  let quick = ref false in
  let out = ref "BENCH_churn.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--out" :: file :: rest ->
        out := file;
        parse rest
    | [ "--out" ] ->
        prerr_endline "churn: --out expects a file name";
        exit 2
    | arg :: _ ->
        Printf.eprintf "churn: unknown argument %s\n" arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* A larger minor heap for both sides of the comparison: the scope
     re-embeds and the scratch baseline are equally allocation-heavy,
     and the 256k-word default promotes half their short-lived arrays. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 };
  let samples = if !quick then 3 else 5 in
  Printf.printf
    "churn tier: incremental maintenance vs from-scratch embedding \
     (single-threaded)%s\n\n"
    (if !quick then " [--quick]" else "");
  let results =
    List.map
      (fun (name, family, pct, mk) -> run_case ~samples name family pct mk)
      (cases !quick)
  in
  let oc = open_out !out in
  output_string oc (json_of_cases results);
  close_out oc;
  Printf.printf "\nwrote %s\n" !out;
  (* Gates: every final state Euler-valid, zero rejections on within-pool
     traces, and the incremental path at least 5x from-scratch on the
     insert-heavy grid at n >= 10k. *)
  let bad = List.filter (fun c -> (not c.valid) || c.rejected > 0) results in
  List.iter
    (fun c ->
      Printf.eprintf "churn: gate failed on %s (valid=%b rejected=%d)\n"
        c.name c.valid c.rejected)
    bad;
  (* The wall-clock gate is a same-machine ratio, but on a single-core
     runner both sides contend with everything else on the box and the
     ratio gets noisy — report it there without enforcing, same pattern
     as the scaling bench's skipped wall gates. *)
  let cores = Domain.recommended_domain_count () in
  let slow =
    if cores >= 2 then
      List.filter
        (fun c ->
          c.family = "grid" && c.n >= 10000 && c.insert_pct >= 90
          && c.speedup < 5.0)
        results
    else begin
      Printf.printf
        "speedup gate skipped: only %d core(s) available, need >= 2\n" cores;
      []
    end
  in
  List.iter
    (fun c ->
      Printf.eprintf "churn: speedup gate failed on %s (%.1fx < 5x)\n" c.name
        c.speedup)
    slow;
  if bad <> [] || slow <> [] then exit 1
